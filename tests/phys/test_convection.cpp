#include "phys/convection.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::phys {
namespace {

using util::celsius;
using util::metres_per_second;
using util::micrometres;

const WireGeometry kWire{micrometres(4.0), micrometres(300.0)};

TEST(Reynolds, LinearInSpeedAndDiameter) {
  const auto w = water_properties(celsius(15.0));
  const double re1 = reynolds(w, metres_per_second(1.0), micrometres(4.0));
  const double re2 = reynolds(w, metres_per_second(2.0), micrometres(4.0));
  const double re3 = reynolds(w, metres_per_second(1.0), micrometres(8.0));
  EXPECT_NEAR(re2 / re1, 2.0, 1e-12);
  EXPECT_NEAR(re3 / re1, 2.0, 1e-12);
}

TEST(Reynolds, UsesAbsoluteSpeed) {
  const auto w = water_properties(celsius(15.0));
  EXPECT_DOUBLE_EQ(reynolds(w, metres_per_second(-1.0), micrometres(4.0)),
                   reynolds(w, metres_per_second(1.0), micrometres(4.0)));
}

TEST(KramersNusselt, ReducesToConductionFloorAtRest) {
  const double pr = 7.0;
  const double nu0 = kramers_nusselt(0.0, pr);
  EXPECT_NEAR(nu0, 0.42 * std::pow(pr, 0.2), 1e-12);
}

TEST(KramersNusselt, GrowsAsSqrtRe) {
  const double pr = 7.0;
  const double nu_lo = kramers_nusselt(4.0, pr) - kramers_nusselt(0.0, pr);
  const double nu_hi = kramers_nusselt(16.0, pr) - kramers_nusselt(0.0, pr);
  EXPECT_NEAR(nu_hi / nu_lo, 2.0, 1e-9);
}

TEST(KramersNusselt, RejectsNonPhysical) {
  EXPECT_THROW((void)kramers_nusselt(-1.0, 7.0), std::invalid_argument);
  EXPECT_THROW((void)kramers_nusselt(1.0, 0.0), std::invalid_argument);
}

TEST(FilmCoefficient, WaterVastlyExceedsAir) {
  const auto w = water_properties(celsius(15.0));
  const auto a = air_properties(celsius(15.0));
  const double hw = film_coefficient(w, metres_per_second(1.0), kWire);
  const double ha = film_coefficient(a, metres_per_second(1.0), kWire);
  EXPECT_GT(hw / ha, 20.0);
}

TEST(KingCoefficients, ExponentIsHalf) {
  const auto w = water_properties(celsius(15.0));
  EXPECT_DOUBLE_EQ(king_coefficients(w, kWire).n, 0.5);
}

TEST(KingCoefficients, ConsistentWithConvectiveLoss) {
  const auto w = water_properties(celsius(15.0));
  const auto [a, b, n] = king_coefficients(w, kWire);
  const double v = 1.3;
  const auto q =
      convective_loss(w, kWire, metres_per_second(v), util::kelvin(5.0));
  EXPECT_NEAR(q.value(), 5.0 * (a + b * std::pow(v, n)), 1e-12);
}

TEST(ConvectiveLoss, ZeroOvertemperatureMeansZeroLoss) {
  const auto w = water_properties(celsius(15.0));
  EXPECT_DOUBLE_EQ(
      convective_loss(w, kWire, metres_per_second(1.0), util::kelvin(0.0)).value(),
      0.0);
}

TEST(ConvectiveLoss, SymmetricInFlowDirection) {
  const auto w = water_properties(celsius(15.0));
  EXPECT_DOUBLE_EQ(
      convective_loss(w, kWire, metres_per_second(1.0), util::kelvin(5.0)).value(),
      convective_loss(w, kWire, metres_per_second(-1.0), util::kelvin(5.0))
          .value());
}

TEST(WireGeometry, SurfaceAreaIsLateralCylinder) {
  EXPECT_NEAR(kWire.surface_area().value(),
              3.14159265358979 * 4e-6 * 300e-6, 1e-15);
}

/// King's-law shape property: Q(ΔT, v) strictly increasing in both arguments.
class KingMonotoneTest
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(KingMonotoneTest, LossIncreasesWithSpeedAndOvertemp) {
  const auto [v, dt] = GetParam();
  const auto w = water_properties(celsius(15.0));
  const double q0 =
      convective_loss(w, kWire, metres_per_second(v), util::kelvin(dt)).value();
  const double q_faster =
      convective_loss(w, kWire, metres_per_second(v + 0.1), util::kelvin(dt))
          .value();
  const double q_hotter =
      convective_loss(w, kWire, metres_per_second(v), util::kelvin(dt + 1.0))
          .value();
  EXPECT_GT(q_faster, q0);
  EXPECT_GT(q_hotter, q0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KingMonotoneTest,
    ::testing::Values(std::pair{0.0, 2.0}, std::pair{0.05, 5.0},
                      std::pair{0.5, 5.0}, std::pair{1.0, 10.0},
                      std::pair{2.5, 5.0}, std::pair{2.5, 15.0}));

}  // namespace
}  // namespace aqua::phys
