#include "phys/resistor.hpp"

#include <gtest/gtest.h>

namespace aqua::phys {
namespace {

using util::celsius;
using util::kelvin;
using util::ohms;

const TcrResistorSpec kHeaterSpec{ohms(50.0), ohms(0.5), celsius(20.0), 3.3e-3,
                                  0.0};

TEST(TcrResistor, PaperEquationOne) {
  // R = R0·(1 + a·(T − Tref)) — paper Eq. (1).
  const TcrResistor r{kHeaterSpec};
  EXPECT_DOUBLE_EQ(r.resistance(celsius(20.0)).value(), 50.0);
  EXPECT_DOUBLE_EQ(r.resistance(celsius(30.0)).value(),
                   50.0 * (1.0 + 3.3e-3 * 10.0));
  EXPECT_DOUBLE_EQ(r.resistance(celsius(10.0)).value(),
                   50.0 * (1.0 - 3.3e-3 * 10.0));
}

TEST(TcrResistor, InverseLinearRoundTrip) {
  const TcrResistor r{kHeaterSpec};
  for (double tc : {0.0, 15.0, 25.0, 60.0}) {
    const auto res = r.resistance(celsius(tc));
    EXPECT_NEAR(util::to_celsius(r.temperature_for(res)), tc, 1e-9);
  }
}

TEST(TcrResistor, QuadraticTermAndInverse) {
  TcrResistorSpec spec = kHeaterSpec;
  spec.beta = 1e-6;
  const TcrResistor r{spec};
  const double dt = 40.0;
  EXPECT_DOUBLE_EQ(r.resistance(celsius(60.0)).value(),
                   50.0 * (1.0 + 3.3e-3 * dt + 1e-6 * dt * dt));
  EXPECT_NEAR(util::to_celsius(r.temperature_for(r.resistance(celsius(60.0)))),
              60.0, 1e-6);
}

TEST(TcrResistor, ToleranceDrawStaysWithinSpec) {
  util::Rng rng{11};
  for (int i = 0; i < 200; ++i) {
    const TcrResistor r{kHeaterSpec, rng};
    EXPECT_GE(r.r0().value(), 49.5);
    EXPECT_LE(r.r0().value(), 50.5);
  }
}

TEST(TcrResistor, ToleranceDrawsSpread) {
  util::Rng rng{12};
  const TcrResistor a{kHeaterSpec, rng};
  const TcrResistor b{kHeaterSpec, rng};
  EXPECT_NE(a.r0().value(), b.r0().value());
}

TEST(TcrResistor, DriftShiftsR0) {
  TcrResistor r{kHeaterSpec};
  r.apply_drift(ohms(0.25));
  EXPECT_DOUBLE_EQ(r.r0().value(), 50.25);
  EXPECT_DOUBLE_EQ(r.resistance(celsius(20.0)).value(), 50.25);
}

TEST(TcrResistor, RejectsNonPositiveNominal) {
  TcrResistorSpec bad = kHeaterSpec;
  bad.nominal = ohms(0.0);
  EXPECT_THROW(TcrResistor{bad}, std::invalid_argument);
}

TEST(TcrResistor, ReferenceSpecMatchesPaper) {
  // Rt = 2000 ± 30 Ω.
  const TcrResistorSpec ref{ohms(2000.0), ohms(30.0), celsius(20.0), 3.3e-3, 0.0};
  util::Rng rng{13};
  const TcrResistor r{ref, rng};
  EXPECT_GE(r.r0().value(), 1970.0);
  EXPECT_LE(r.r0().value(), 2030.0);
}

}  // namespace
}  // namespace aqua::phys
