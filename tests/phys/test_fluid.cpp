#include "phys/fluid.hpp"

#include <gtest/gtest.h>

namespace aqua::phys {
namespace {

using util::celsius;

TEST(WaterProperties, MatchesHandbookAt20C) {
  const auto w = water_properties(celsius(20.0));
  EXPECT_NEAR(w.density, 998.2, 0.5);
  EXPECT_NEAR(w.dynamic_viscosity, 1.002e-3, 0.05e-3);
  EXPECT_NEAR(w.thermal_conductivity, 0.598, 0.01);
  EXPECT_NEAR(w.specific_heat, 4184.0, 10.0);
  EXPECT_NEAR(w.prandtl(), 7.0, 0.4);
}

TEST(WaterProperties, DensityPeaksNear4C) {
  const double d2 = water_properties(celsius(2.0)).density;
  const double d4 = water_properties(celsius(4.0)).density;
  const double d6 = water_properties(celsius(6.0)).density;
  EXPECT_GT(d4, d2);
  EXPECT_GT(d4, d6);
  EXPECT_NEAR(d4, 1000.0, 0.1);
}

TEST(WaterProperties, ViscosityFallsWithTemperature) {
  EXPECT_GT(water_properties(celsius(5.0)).dynamic_viscosity,
            water_properties(celsius(50.0)).dynamic_viscosity);
}

TEST(WaterProperties, ConductivityRisesWithTemperature) {
  EXPECT_LT(water_properties(celsius(5.0)).thermal_conductivity,
            water_properties(celsius(60.0)).thermal_conductivity);
}

TEST(WaterProperties, ThrowsOutsideRange) {
  EXPECT_THROW((void)water_properties(celsius(-20.0)), std::invalid_argument);
  EXPECT_THROW((void)water_properties(celsius(150.0)), std::invalid_argument);
}

TEST(AirProperties, MatchesHandbookAt20C) {
  const auto a = air_properties(celsius(20.0));
  EXPECT_NEAR(a.density, 1.204, 0.01);
  EXPECT_NEAR(a.dynamic_viscosity, 1.81e-5, 0.05e-5);
  EXPECT_NEAR(a.thermal_conductivity, 0.0257, 0.001);
  EXPECT_NEAR(a.prandtl(), 0.71, 0.03);
}

TEST(AirProperties, DensityScalesWithPressure) {
  const auto p1 = air_properties(celsius(20.0), util::bar(1.0));
  const auto p2 = air_properties(celsius(20.0), util::bar(2.0));
  EXPECT_NEAR(p2.density / p1.density, 2.0, 1e-9);
}

TEST(AirProperties, ThrowsOutsideRange) {
  EXPECT_THROW((void)air_properties(util::Kelvin{100.0}), std::invalid_argument);
}

TEST(Properties, DispatchMatchesDirectCalls) {
  const auto t = celsius(15.0);
  EXPECT_DOUBLE_EQ(properties(Medium::kWater, t).density,
                   water_properties(t).density);
  EXPECT_DOUBLE_EQ(properties(Medium::kAir, t).density,
                   air_properties(t).density);
}

/// Water vs air: the contrast that drives the paper's design choices — water
/// removes vastly more heat.
TEST(Properties, WaterIsFarMoreConductiveThanAir) {
  const auto w = water_properties(celsius(15.0));
  const auto a = air_properties(celsius(15.0));
  EXPECT_GT(w.thermal_conductivity / a.thermal_conductivity, 20.0);
  EXPECT_GT(w.density / a.density, 700.0);
}

class WaterRangeTest : public ::testing::TestWithParam<double> {};

TEST_P(WaterRangeTest, AllPropertiesPositiveAndFinite) {
  const auto w = water_properties(celsius(GetParam()));
  EXPECT_GT(w.density, 0.0);
  EXPECT_GT(w.dynamic_viscosity, 0.0);
  EXPECT_GT(w.thermal_conductivity, 0.0);
  EXPECT_GT(w.specific_heat, 0.0);
  EXPECT_GT(w.prandtl(), 1.0);   // water stays above 1 in 0-90 °C
  EXPECT_LT(w.prandtl(), 14.0);
}

INSTANTIATE_TEST_SUITE_P(ZeroTo90C, WaterRangeTest,
                         ::testing::Values(0.0, 5.0, 10.0, 15.0, 20.0, 30.0,
                                           40.0, 55.0, 70.0, 90.0));

}  // namespace
}  // namespace aqua::phys
