#include "phys/membrane.hpp"

#include <gtest/gtest.h>

namespace aqua::phys {
namespace {

using util::bar;
using util::micrometres;

TEST(Membrane, FilledSurvivesPaperPressures) {
  // Paper §5: tested 0–3 bar with peaks of 7 bar, membrane intact.
  const MembraneSpec filled{};  // backside_filled = true by default
  EXPECT_TRUE(survives(filled, bar(3.0)));
  EXPECT_TRUE(survives(filled, bar(7.0)));
}

TEST(Membrane, UnfilledFailsUnderLinePressure) {
  // Without the organic fill the bare 2 µm stack cannot take bar-level loads
  // — the reason the paper fills the cavity.
  MembraneSpec open = MembraneSpec{};
  open.backside_filled = false;
  EXPECT_FALSE(survives(open, bar(2.0)));
}

TEST(Membrane, StressScalesLinearlyWithPressure) {
  const MembraneSpec spec{};
  const double s1 = peak_stress(spec, bar(1.0));
  const double s3 = peak_stress(spec, bar(3.0));
  EXPECT_NEAR(s3 / s1, 3.0, 1e-12);
}

TEST(Membrane, ThinnerMembraneSeesMoreStress) {
  MembraneSpec thin{};
  thin.thickness = micrometres(1.0);
  const MembraneSpec nominal{};
  EXPECT_GT(peak_stress(thin, bar(1.0)), peak_stress(nominal, bar(1.0)));
}

TEST(Membrane, SafetyFactorDecreasesWithPressure) {
  const MembraneSpec spec{};
  EXPECT_GT(pressure_safety_factor(spec, bar(1.0)),
            pressure_safety_factor(spec, bar(7.0)));
}

TEST(Membrane, DeflectionPositiveAndFillStiffens) {
  MembraneSpec open{};
  open.backside_filled = false;
  const MembraneSpec filled{};
  const double w_open = center_deflection(open, bar(1.0));
  const double w_filled = center_deflection(filled, bar(1.0));
  EXPECT_GT(w_open, 0.0);
  EXPECT_LT(w_filled, w_open);
}

TEST(Membrane, EdgeConductanceScalesWithThickness) {
  MembraneSpec thick{};
  thick.thickness = micrometres(4.0);
  const MembraneSpec nominal{};
  const double g_nom = edge_conductance(nominal, micrometres(300.0));
  const double g_thick = edge_conductance(thick, micrometres(300.0));
  EXPECT_NEAR(g_thick / g_nom, 2.0, 1e-12);
}

TEST(Membrane, EdgeConductanceIsSmall) {
  // The membrane's purpose: thermally isolate the wires (paper §2). The edge
  // leak must be small against water convection (~mW/K scale).
  const MembraneSpec spec{};
  EXPECT_LT(edge_conductance(spec, micrometres(300.0)), 1e-4);
}

TEST(Membrane, BacksideFillLessConductiveThanWater) {
  MembraneSpec open{};
  open.backside_filled = false;
  const MembraneSpec filled{};
  const auto area = util::SquareMetres{4e-9};
  EXPECT_LT(backside_conductance(filled, area), backside_conductance(open, area));
}

TEST(Membrane, RejectsBadGeometry) {
  MembraneSpec bad{};
  bad.thickness = micrometres(0.0);
  EXPECT_THROW((void)peak_stress(bad, bar(1.0)), std::invalid_argument);
}

class PressureSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(PressureSweepTest, FilledSafetyMonotone) {
  const MembraneSpec spec{};
  const double p = GetParam();
  EXPECT_GE(pressure_safety_factor(spec, bar(p)),
            pressure_safety_factor(spec, bar(p + 0.5)));
}

INSTANTIATE_TEST_SUITE_P(ZeroToTenBar, PressureSweepTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0,
                                           9.5));

}  // namespace
}  // namespace aqua::phys
