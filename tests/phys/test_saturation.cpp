#include "phys/saturation.hpp"

#include <gtest/gtest.h>

namespace aqua::phys {
namespace {

using util::bar;
using util::celsius;

TEST(Saturation, VapourPressureAtBoilingPoint) {
  EXPECT_NEAR(vapour_pressure(celsius(100.0)).value(), 101325.0, 1500.0);
}

TEST(Saturation, VapourPressureAt20C) {
  EXPECT_NEAR(vapour_pressure(celsius(20.0)).value(), 2339.0, 60.0);
}

TEST(Saturation, SaturationTemperatureInvertsVapourPressure) {
  for (double tc : {20.0, 40.0, 60.0, 80.0, 99.0}) {
    const auto p = vapour_pressure(celsius(tc));
    EXPECT_NEAR(util::to_celsius(saturation_temperature(p)), tc, 1e-6);
  }
}

TEST(Saturation, BoilingPointRisesWithPressure) {
  EXPECT_GT(saturation_temperature(bar(3.0)).value(),
            saturation_temperature(bar(1.0)).value());
}

TEST(Saturation, GasSolubilityFallsWithTemperature) {
  EXPECT_GT(relative_gas_solubility(celsius(5.0)),
            relative_gas_solubility(celsius(35.0)));
  EXPECT_NEAR(relative_gas_solubility(celsius(25.0)), 1.0, 1e-12);
}

TEST(BubbleOnset, PressureSuppressesOutgassing) {
  // Paper §5: the line ran at 0–3 bar; higher pressure keeps gas dissolved
  // and raises the safe overtemperature.
  const auto onset_1bar =
      bubble_onset_overtemperature(celsius(15.0), bar(1.0), 1.0);
  const auto onset_3bar =
      bubble_onset_overtemperature(celsius(15.0), bar(3.0), 1.0);
  EXPECT_GT(onset_3bar.value(), onset_1bar.value());
}

TEST(BubbleOnset, AirSaturatedWaterHasFiniteOnsetAt1Bar) {
  const auto onset = bubble_onset_overtemperature(celsius(15.0), bar(1.0), 1.0);
  EXPECT_GT(onset.value(), 5.0);
  EXPECT_LT(onset.value(), 40.0);
}

TEST(BubbleOnset, DegassedWaterOnlyBoils) {
  const auto onset = bubble_onset_overtemperature(celsius(15.0), bar(1.0), 0.0);
  // Boiling onset at 1 bar from 15 °C bulk: ~85 K.
  EXPECT_NEAR(onset.value(), 85.0, 3.0);
}

TEST(BubbleOnset, SupersaturatedWaterBubblesImmediately) {
  const auto onset = bubble_onset_overtemperature(celsius(15.0), bar(1.0), 2.0);
  EXPECT_LT(onset.value(),
            bubble_onset_overtemperature(celsius(15.0), bar(1.0), 1.0).value());
}

TEST(BubbleOnset, NeverNegative) {
  const auto onset = bubble_onset_overtemperature(celsius(15.0), bar(0.5), 3.0);
  EXPECT_GE(onset.value(), 0.0);
}

TEST(BubbleOnset, RejectsNegativeSaturation) {
  EXPECT_THROW(
      (void)bubble_onset_overtemperature(celsius(15.0), bar(1.0), -0.1),
      std::invalid_argument);
}

TEST(Saturation, VapourPressureRangeChecks) {
  EXPECT_THROW((void)vapour_pressure(celsius(-10.0)), std::invalid_argument);
  EXPECT_THROW((void)saturation_temperature(util::pascals(0.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace aqua::phys
