#include "phys/carbonate.hpp"

#include <gtest/gtest.h>

namespace aqua::phys {
namespace {

using util::celsius;

TEST(Carbonate, SolubilityIsRetrograde) {
  // Inverse-solubility salt: hotter water dissolves less CaCO3.
  EXPECT_GT(caco3_solubility_mg_per_l(celsius(10.0)),
            caco3_solubility_mg_per_l(celsius(40.0)));
  EXPECT_GT(caco3_solubility_mg_per_l(celsius(40.0)),
            caco3_solubility_mg_per_l(celsius(80.0)));
}

TEST(Carbonate, SolubilityAnchoredToPotableWaterEquilibrium) {
  // ~330 mg/L at 15 °C (typical hard tap water sits near saturation), falling
  // with temperature.
  EXPECT_NEAR(caco3_solubility_mg_per_l(celsius(15.0)), 330.0, 1.0);
  EXPECT_NEAR(caco3_solubility_mg_per_l(celsius(25.0)), 265.0, 10.0);
}

TEST(Carbonate, SaturationRisesWithWallTemperature) {
  const WaterChemistry hard{300.0, 250.0, 7.8};
  EXPECT_GT(saturation_ratio(hard, celsius(40.0)),
            saturation_ratio(hard, celsius(15.0)));
}

TEST(Carbonate, HardWaterNearSaturationAtBulkTemperature) {
  // The regime the paper's sensor lives in: the bulk water does not scale the
  // pipe, only the heated element tips over S = 1.
  const WaterChemistry hard{300.0, 250.0, 7.8};
  EXPECT_LT(saturation_ratio(hard, celsius(15.0)), 1.0);
  EXPECT_GT(saturation_ratio(hard, celsius(15.0)), 0.4);
}

TEST(Carbonate, SoftWaterStaysUndersaturatedOnCoolWalls) {
  const WaterChemistry soft{30.0, 25.0, 7.0};
  EXPECT_LT(saturation_ratio(soft, celsius(15.0)), 1.0);
}

TEST(Carbonate, HardWaterScalesHotWalls) {
  const WaterChemistry hard{300.0, 250.0, 7.8};
  EXPECT_GT(saturation_ratio(hard, celsius(40.0)), 1.0);
}

TEST(Carbonate, GrowthPositiveWhenSupersaturated) {
  const WaterChemistry hard{300.0, 250.0, 7.8};
  const ScalingKinetics k{};
  EXPECT_GT(deposit_growth_rate(k, hard, celsius(40.0), 0.0), 0.0);
}

TEST(Carbonate, DissolutionWhenUndersaturatedWithDeposit) {
  const WaterChemistry soft{30.0, 25.0, 7.0};
  const ScalingKinetics k{};
  EXPECT_LT(deposit_growth_rate(k, soft, celsius(15.0), 1e-6), 0.0);
  // But a clean surface cannot go negative.
  EXPECT_DOUBLE_EQ(deposit_growth_rate(k, soft, celsius(15.0), 0.0), 0.0);
}

TEST(Carbonate, PassivationSuppressesGrowth) {
  const WaterChemistry hard{300.0, 250.0, 7.8};
  ScalingKinetics bare{};
  ScalingKinetics passivated{};
  passivated.surface_reactivity = 0.02;  // PECVD SiN
  const double g_bare = deposit_growth_rate(bare, hard, celsius(40.0), 0.0);
  const double g_pass =
      deposit_growth_rate(passivated, hard, celsius(40.0), 0.0);
  EXPECT_NEAR(g_pass / g_bare, 0.02, 1e-12);
}

TEST(Carbonate, GrowthSelfLimitsWithThickness) {
  const WaterChemistry hard{300.0, 250.0, 7.8};
  const ScalingKinetics k{};
  EXPECT_GT(deposit_growth_rate(k, hard, celsius(40.0), 0.0),
            deposit_growth_rate(k, hard, celsius(40.0), 20e-6));
}

TEST(Carbonate, GrowthRateRejectsNegativeThickness) {
  const ScalingKinetics k{};
  EXPECT_THROW((void)deposit_growth_rate(k, WaterChemistry{}, celsius(20.0), -1.0),
               std::invalid_argument);
}

TEST(Carbonate, DepositResistanceScalesLinearly) {
  const auto area = util::SquareMetres{1e-6};
  const double r1 = deposit_thermal_resistance(1e-6, area);
  const double r2 = deposit_thermal_resistance(2e-6, area);
  EXPECT_NEAR(r2 / r1, 2.0, 1e-12);
  // 1 µm calcite over 1 mm²: R = 1e-6/(2.2·1e-6) ≈ 0.4545 K/W.
  EXPECT_NEAR(r1, 0.4545, 0.001);
}

TEST(Carbonate, DepositResistanceValidation) {
  EXPECT_THROW((void)deposit_thermal_resistance(-1.0, util::SquareMetres{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)deposit_thermal_resistance(1.0, util::SquareMetres{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace aqua::phys
