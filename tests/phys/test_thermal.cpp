#include "phys/thermal.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::phys {
namespace {

using util::celsius;
using util::Seconds;
using util::watts;

TEST(ThermalNetwork, SingleNodeRelaxesToBoundary) {
  ThermalNetwork net;
  const auto node = net.add_node(1.0, celsius(50.0));
  const auto bath = net.add_boundary(celsius(20.0));
  net.connect(node, bath, 2.0);  // tau = C/G = 0.5 s
  for (int i = 0; i < 100; ++i) net.step(Seconds{0.1});
  EXPECT_NEAR(util::to_celsius(net.temperature(node)), 20.0, 1e-6);
}

TEST(ThermalNetwork, ExponentialStepIsExactForOneNode) {
  ThermalNetwork net;
  const auto node = net.add_node(1.0, celsius(50.0));
  const auto bath = net.add_boundary(celsius(20.0));
  net.connect(node, bath, 2.0);
  net.step(Seconds{0.25});  // one big step: exact exp(-dt/tau)
  const double expected = 20.0 + 30.0 * std::exp(-0.25 / 0.5);
  EXPECT_NEAR(util::to_celsius(net.temperature(node)), expected, 1e-9);
}

TEST(ThermalNetwork, PowerInjectionSteadyState) {
  ThermalNetwork net;
  const auto node = net.add_node(1e-3, celsius(20.0));
  const auto bath = net.add_boundary(celsius(20.0));
  net.connect(node, bath, 0.5);
  net.set_power(node, watts(1.0));  // ΔT = P/G = 2 K
  for (int i = 0; i < 10000; ++i) net.step(Seconds{1e-3});
  EXPECT_NEAR(util::to_celsius(net.temperature(node)), 22.0, 1e-6);
}

TEST(ThermalNetwork, StableForVeryLargeSteps) {
  // Stiff case: tiny capacitance, big conductance, dt >> tau.
  ThermalNetwork net;
  const auto node = net.add_node(1e-8, celsius(90.0));
  const auto bath = net.add_boundary(celsius(10.0));
  net.connect(node, bath, 1.0);  // tau = 10 ns
  net.step(Seconds{1.0});        // 1e8 times tau
  EXPECT_NEAR(util::to_celsius(net.temperature(node)), 10.0, 1e-9);
}

TEST(ThermalNetwork, SettleMatchesLongIntegration) {
  ThermalNetwork net;
  const auto a = net.add_node(1e-4, celsius(20.0));
  const auto b = net.add_node(2e-4, celsius(20.0));
  const auto bath = net.add_boundary(celsius(15.0));
  net.connect(a, b, 0.3);
  net.connect(b, bath, 0.7);
  net.connect(a, bath, 0.1);
  net.set_power(a, watts(0.05));

  ThermalNetwork net2 = net;  // value semantics: same topology/state
  for (int i = 0; i < 200000; ++i) net.step(Seconds{1e-4});
  net2.settle();
  EXPECT_NEAR(net.temperature(a).value(), net2.temperature(a).value(), 1e-6);
  EXPECT_NEAR(net.temperature(b).value(), net2.temperature(b).value(), 1e-6);
}

TEST(ThermalNetwork, TwoNodeEnergyPartition) {
  // Node heated between two baths splits ΔT by conductance ratio.
  ThermalNetwork net;
  const auto node = net.add_node(1e-3, celsius(0.0));
  const auto hot = net.add_boundary(celsius(100.0));
  const auto cold = net.add_boundary(celsius(0.0));
  net.connect(node, hot, 1.0);
  net.connect(node, cold, 3.0);
  net.settle();
  EXPECT_NEAR(util::to_celsius(net.temperature(node)), 25.0, 1e-9);
}

TEST(ThermalNetwork, ConductanceUpdate) {
  ThermalNetwork net;
  const auto node = net.add_node(1e-3, celsius(20.0));
  const auto bath = net.add_boundary(celsius(20.0));
  const auto edge = net.connect(node, bath, 0.5);
  net.set_power(node, watts(1.0));
  net.settle();
  EXPECT_NEAR(util::to_celsius(net.temperature(node)), 22.0, 1e-9);
  net.set_conductance(edge, 1.0);
  net.settle();
  EXPECT_NEAR(util::to_celsius(net.temperature(node)), 21.0, 1e-9);
  EXPECT_DOUBLE_EQ(net.conductance(edge), 1.0);
}

TEST(ThermalNetwork, IsolatedNodeIntegratesPower) {
  ThermalNetwork net;
  const auto node = net.add_node(2.0, celsius(20.0));
  net.set_power(node, watts(4.0));
  net.step(Seconds{1.0});  // dT = P·dt/C = 2 K
  EXPECT_NEAR(util::to_celsius(net.temperature(node)), 22.0, 1e-12);
}

TEST(ThermalNetwork, BoundaryTemperatureUpdates) {
  ThermalNetwork net;
  const auto node = net.add_node(1e-6, celsius(20.0));
  const auto bath = net.add_boundary(celsius(20.0));
  net.connect(node, bath, 1.0);
  net.set_boundary_temperature(bath, celsius(35.0));
  net.settle();
  EXPECT_NEAR(util::to_celsius(net.temperature(node)), 35.0, 1e-9);
}

TEST(ThermalNetwork, DecayCacheTransparentAcrossDtChanges) {
  // The per-node exp(-dt·Σg/C) memo is keyed on its exact argument. A single
  // node relaxing to a bath has the closed form T = Tb + (T0−Tb)·Πexp(−dtᵢ/τ),
  // so stepping dt1, dt1, dt2, dt1 exposes any stale cache hit: reusing dt2's
  // decay for the final dt1 step would miss the expected value by far more
  // than rounding.
  ThermalNetwork net;
  const double cap = 1e-6, g = 2e-3;  // tau = 0.5 ms
  const auto n = net.add_node(cap, celsius(40.0));
  const auto bath = net.add_boundary(celsius(20.0));
  net.connect(n, bath, g);
  const double dts[] = {1e-4, 1e-4, 2.5e-4, 1e-4};
  double expected_delta = 20.0;
  for (const double dt : dts) {
    net.step(Seconds{dt});
    expected_delta *= std::exp(-dt * g / cap);
  }
  EXPECT_NEAR(net.temperature(n).value() - celsius(20.0).value(),
              expected_delta, 1e-9);
}

TEST(ThermalNetwork, DecayCacheInvalidatedByConductanceChange) {
  // Changing an edge conductance changes Σg/C; the memo must recompute, and
  // the result must equal a network built with that conductance directly.
  ThermalNetwork net;
  const auto n = net.add_node(1e-6, celsius(30.0));
  const auto bath = net.add_boundary(celsius(20.0));
  const auto e = net.connect(n, bath, 1e-3);
  net.step(Seconds{1e-3});  // primes the cache at g = 1e-3
  net.set_conductance(e, 4e-3);
  net.step(Seconds{1e-3});

  ThermalNetwork twin;
  const auto tn = twin.add_node(1e-6, celsius(30.0));
  const auto tb = twin.add_boundary(celsius(20.0));
  (void)twin.connect(tn, tb, 1e-3);
  twin.step(Seconds{1e-3});
  twin.set_conductance(0, 4e-3);
  twin.step(Seconds{1e-3});
  EXPECT_EQ(net.temperature(n).value(), twin.temperature(tn).value());
}

TEST(ThermalNetwork, StepAfterSettleUsesSameAdjacency) {
  // settle() and step() share the CSR adjacency; growing the network after a
  // settle must rebuild it rather than read stale rows.
  ThermalNetwork net;
  const auto a = net.add_node(1e-6, celsius(25.0));
  const auto bath = net.add_boundary(celsius(15.0));
  net.connect(a, bath, 2e-3);
  net.settle();
  EXPECT_NEAR(util::to_celsius(net.temperature(a)), 15.0, 1e-9);
  const auto b = net.add_node(1e-6, celsius(40.0));
  net.connect(a, b, 2e-3);
  net.settle();
  EXPECT_NEAR(util::to_celsius(net.temperature(b)), 15.0, 1e-6);
  net.set_power(b, watts(1e-3));
  net.step(Seconds{1e-3});
  EXPECT_GT(net.temperature(b).value(), net.temperature(a).value());
}

TEST(ThermalNetwork, InputValidation) {
  ThermalNetwork net;
  EXPECT_THROW((void)net.add_node(0.0, celsius(20.0)), std::invalid_argument);
  const auto n = net.add_node(1.0, celsius(20.0));
  EXPECT_THROW((void)net.connect(n, 99, 1.0), std::out_of_range);
  EXPECT_THROW((void)net.connect(n, n, -1.0), std::invalid_argument);
  EXPECT_THROW(net.set_boundary_temperature(n, celsius(0.0)),
               std::invalid_argument);
  EXPECT_THROW((void)net.temperature(99), std::out_of_range);
}

}  // namespace
}  // namespace aqua::phys
