#include "isif/firmware.hpp"

#include <gtest/gtest.h>

namespace aqua::isif {
namespace {

using util::hertz;

TEST(Firmware, TasksRunAtDivisors) {
  Firmware fw{LeonSpec{}, hertz(2000.0)};
  int fast = 0, slow = 0;
  fw.add_task("fast", 1, 100, [&] { ++fast; });
  fw.add_task("slow", 10, 100, [&] { ++slow; });
  for (int i = 0; i < 100; ++i) fw.tick();
  EXPECT_EQ(fast, 100);
  EXPECT_EQ(slow, 10);
}

TEST(Firmware, LoadAccounting) {
  // Budget: 40e6 / 2000 = 20000 cycles per tick. A 2000-cycle task every
  // tick is 10 % load.
  Firmware fw{LeonSpec{}, hertz(2000.0)};
  fw.add_task("law", 1, 2000, [] {});
  for (int i = 0; i < 50; ++i) fw.tick();
  EXPECT_NEAR(fw.average_load(), 0.10, 1e-9);
  EXPECT_NEAR(fw.peak_load(), 0.10, 1e-9);
  EXPECT_FALSE(fw.watchdog_tripped());
}

TEST(Firmware, PeakVsAverageWithSlowTask) {
  Firmware fw{LeonSpec{}, hertz(2000.0)};
  fw.add_task("base", 1, 1000, [] {});
  fw.add_task("burst", 10, 10000, [] {});
  for (int i = 0; i < 100; ++i) fw.tick();
  EXPECT_NEAR(fw.average_load(), (1000.0 + 1000.0) / 20000.0, 1e-9);
  EXPECT_NEAR(fw.peak_load(), 11000.0 / 20000.0, 1e-9);
}

TEST(Firmware, WatchdogTripsOnOverrun) {
  Firmware fw{LeonSpec{}, hertz(2000.0)};
  fw.add_task("hog", 1, 30000, [] {});  // > 20000-cycle budget
  fw.tick();
  EXPECT_TRUE(fw.watchdog_tripped());
}

TEST(Firmware, TickCountsAndRateAccessors) {
  Firmware fw{LeonSpec{}, hertz(500.0)};
  for (int i = 0; i < 7; ++i) fw.tick();
  EXPECT_EQ(fw.ticks(), 7);
  EXPECT_DOUBLE_EQ(fw.base_rate().value(), 500.0);
}

TEST(Firmware, Validation) {
  EXPECT_THROW((Firmware{LeonSpec{}, hertz(0.0)}), std::invalid_argument);
  Firmware fw{LeonSpec{}, hertz(100.0)};
  EXPECT_THROW(fw.add_task("x", 0, 10, [] {}), std::invalid_argument);
  EXPECT_THROW(fw.add_task("x", 1, -1, [] {}), std::invalid_argument);
}

TEST(Firmware, PaperScaleControlLoopIsLightLoad) {
  // The MAF conditioning firmware (PI + two filters) at 2 kHz must be a small
  // fraction of a 40 MHz LEON — that is what makes software IPs viable.
  Firmware fw{LeonSpec{}, hertz(2000.0)};
  fw.add_task("pi", 1, 95, [] {});
  fw.add_task("dir", 1, 72, [] {});
  fw.add_task("iir", 200, 114, [] {});
  for (int i = 0; i < 2000; ++i) fw.tick();
  EXPECT_LT(fw.average_load(), 0.02);
  EXPECT_FALSE(fw.watchdog_tripped());
}

}  // namespace
}  // namespace aqua::isif
