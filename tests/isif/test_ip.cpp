#include "isif/ip.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace aqua::isif {
namespace {

using util::hertz;

TEST(IirIp, HardwareAndBitExactSoftwareMatch) {
  // The paper's §3 claim: software IPs have "an exact matching with hardware
  // devices". Same Q23 datapath → identical outputs, bit for bit.
  const std::vector<dsp::BiquadCoefficients> sections{
      {0.02008, 0.04017, 0.02008, -1.56102, 0.64135}};  // ~ fc/fs = 0.05 LP
  IirIp hw{sections, IpImpl::kHardwareFixed};
  IirIp sw{sections, IpImpl::kSoftwareFixed};
  for (int i = 0; i < 500; ++i) {
    const double x = std::sin(0.1 * i) * 0.5;
    ASSERT_DOUBLE_EQ(hw.process(x), sw.process(x)) << "sample " << i;
  }
}

TEST(IirIp, FloatPrototypeDiffersFromSiliconSlightly) {
  const std::vector<dsp::BiquadCoefficients> sections{
      {0.02008, 0.04017, 0.02008, -1.56102, 0.64135}};
  IirIp hw{sections, IpImpl::kHardwareFixed};
  IirIp fl{sections, IpImpl::kSoftwareFloat};
  double max_diff = 0.0, max_val = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double x = std::sin(0.1 * i) * 0.5;
    const double a = hw.process(x), b = fl.process(x);
    max_diff = std::max(max_diff, std::abs(a - b));
    max_val = std::max(max_val, std::abs(b));
  }
  EXPECT_GT(max_diff, 0.0);            // not bit-identical
  EXPECT_LT(max_diff, 1e-3 * max_val + 1e-4);  // but functionally equivalent
}

TEST(IirIp, CycleCostsFollowImplementation) {
  const std::vector<dsp::BiquadCoefficients> two_sections{
      {1, 0, 0, 0, 0}, {1, 0, 0, 0, 0}};
  const CycleCosts costs{};
  EXPECT_EQ(IirIp(two_sections, IpImpl::kHardwareFixed).cycles_per_sample(), 0);
  EXPECT_EQ(IirIp(two_sections, IpImpl::kSoftwareFixed).cycles_per_sample(),
            costs.sample_overhead + 2 * costs.per_biquad_section);
  EXPECT_EQ(IirIp(two_sections, IpImpl::kSoftwareFloat).cycles_per_sample(),
            costs.sample_overhead + 2 * costs.per_biquad_section);
}

TEST(IirIp, DcGainPreservedInFixedPoint) {
  const std::vector<dsp::BiquadCoefficients> sections{
      {0.00024132, 0.00048264, 0.00024132, -1.95558, 0.95654}};
  IirIp hw{sections, IpImpl::kHardwareFixed};
  double y = 0.0;
  for (int i = 0; i < 20000; ++i) y = hw.process(0.5);
  EXPECT_NEAR(y, 0.5, 0.01);
}

TEST(IirIp, ResetClearsBothPaths) {
  const std::vector<dsp::BiquadCoefficients> sections{
      {0.1, 0.0, 0.0, -0.9, 0.0}};
  IirIp ip{sections, IpImpl::kSoftwareFixed};
  for (int i = 0; i < 50; ++i) (void)ip.process(1.0);
  ip.reset();
  EXPECT_NEAR(ip.process(0.0), 0.0, 1e-12);
}

TEST(IirIp, RejectsEmptySections) {
  EXPECT_THROW((IirIp{{}, IpImpl::kHardwareFixed}), std::invalid_argument);
}

TEST(PiIp, HardwareAndBitExactSoftwareMatch) {
  const dsp::PidGains gains{0.5, 20.0, 0.0};
  const dsp::PidLimits limits{0.0, 1.0};
  PiIp hw{gains, limits, hertz(2000.0), IpImpl::kHardwareFixed};
  PiIp sw{gains, limits, hertz(2000.0), IpImpl::kSoftwareFixed};
  for (int i = 0; i < 2000; ++i) {
    const double e = 0.1 * std::sin(0.01 * i);
    ASSERT_DOUBLE_EQ(hw.update(e), sw.update(e)) << "sample " << i;
  }
}

TEST(PiIp, FloatPathTracksFixedClosely) {
  const dsp::PidGains gains{0.5, 20.0, 0.0};
  const dsp::PidLimits limits{0.0, 1.0};
  PiIp fx{gains, limits, hertz(2000.0), IpImpl::kHardwareFixed};
  PiIp fl{gains, limits, hertz(2000.0), IpImpl::kSoftwareFloat};
  double max_diff = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double e = 0.05 * std::sin(0.01 * i) + 0.01;
    max_diff = std::max(max_diff, std::abs(fx.update(e) - fl.update(e)));
  }
  EXPECT_LT(max_diff, 0.01);
}

TEST(PiIp, SaturatesAtLimits) {
  PiIp ip{{0.0, 100.0, 0.0}, {0.0, 1.0}, hertz(100.0), IpImpl::kSoftwareFixed};
  double u = 0.0;
  for (int i = 0; i < 1000; ++i) u = ip.update(1.0);
  EXPECT_DOUBLE_EQ(u, 1.0);
  // And recovers when the error flips (anti-windup).
  int steps = 0;
  while (ip.update(-0.5) >= 1.0 && steps < 100) ++steps;
  EXPECT_LT(steps, 5);
}

TEST(PiIp, ResetPreloads) {
  PiIp ip{{0.2, 10.0, 0.0}, {0.0, 1.0}, hertz(100.0), IpImpl::kSoftwareFloat};
  ip.reset(0.4);
  EXPECT_NEAR(ip.output(), 0.4, 1e-6);
  EXPECT_NEAR(ip.update(0.0), 0.4, 1e-6);
}

TEST(PiIp, FixedPathResetBackCalculatesInQ23) {
  // Regression: the Q23 reset used to fold the proportional term into the
  // integrator, so resuming under a standing error bumped the output by
  // kp·error. Back-calculated, the resume step adds only ki·e·dt.
  const dsp::PidGains gains{0.6, 30.0, 0.0};
  const dsp::PidLimits limits{0.0, 1.0};
  PiIp ip{gains, limits, hertz(2000.0), IpImpl::kHardwareFixed};
  const double held = 0.9, error = 0.08;
  ip.reset(held, error);
  EXPECT_DOUBLE_EQ(ip.output(), held);
  const double resumed = ip.update(error);
  // Q23 quantisation of gains and error allows ~1e-6 slack.
  EXPECT_NEAR(resumed, held + 30.0 * error / 2000.0, 1e-5);
  EXPECT_LT(resumed, 1.0);  // the old behaviour landed on the rail
}

TEST(PiIp, HardwareAndBitExactSoftwareMatchThroughReset) {
  const dsp::PidGains gains{0.5, 20.0, 0.0};
  const dsp::PidLimits limits{0.0, 1.0};
  PiIp hw{gains, limits, hertz(2000.0), IpImpl::kHardwareFixed};
  PiIp sw{gains, limits, hertz(2000.0), IpImpl::kSoftwareFixed};
  for (int i = 0; i < 200; ++i) {
    const double e = 0.1 * std::sin(0.05 * i);
    ASSERT_DOUBLE_EQ(hw.update(e), sw.update(e)) << "sample " << i;
  }
  hw.reset(0.42, 0.03);
  sw.reset(0.42, 0.03);
  for (int i = 0; i < 200; ++i) {
    const double e = 0.1 * std::sin(0.05 * i) + 0.02;
    ASSERT_DOUBLE_EQ(hw.update(e), sw.update(e)) << "post-reset sample " << i;
  }
}

TEST(PiIp, CycleCosts) {
  const CycleCosts costs{};
  PiIp hw{{1, 1, 0}, {}, hertz(100.0), IpImpl::kHardwareFixed};
  PiIp sw{{1, 1, 0}, {}, hertz(100.0), IpImpl::kSoftwareFixed};
  EXPECT_EQ(hw.cycles_per_sample(), 0);
  EXPECT_EQ(sw.cycles_per_sample(), costs.sample_overhead + costs.pi_controller);
}

}  // namespace
}  // namespace aqua::isif
