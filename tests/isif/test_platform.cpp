#include "isif/platform.hpp"

#include <gtest/gtest.h>

namespace aqua::isif {
namespace {

using util::Rng;

TEST(Isif, HasFourChannelsAndSixDacs) {
  Isif soc{IsifConfig{}, Rng{1}};
  for (int i = 0; i < Isif::kChannelCount; ++i)
    EXPECT_NO_THROW((void)soc.channel(i));
  for (int i = 0; i < Isif::kDacCount; ++i) EXPECT_NO_THROW((void)soc.dac(i));
  EXPECT_THROW((void)soc.channel(4), std::out_of_range);
  EXPECT_THROW((void)soc.dac(6), std::out_of_range);
  EXPECT_THROW((void)soc.channel(-1), std::out_of_range);
}

TEST(Isif, DacBitWidthsMatchPaper) {
  // "configurable 12 bit and 10 bit thermometer DACs" — 4× 12-bit, 2× 10-bit.
  Isif soc{IsifConfig{}, Rng{2}};
  EXPECT_EQ(soc.dac(0).dac().max_code(), 4095);
  EXPECT_EQ(soc.dac(3).dac().max_code(), 4095);
  EXPECT_EQ(soc.dac(4).dac().max_code(), 1023);
  EXPECT_EQ(soc.dac(5).dac().max_code(), 1023);
}

TEST(Isif, RegistersConfigureChannelGain) {
  Isif soc{IsifConfig{}, Rng{3}};
  soc.registers().write_field("CH0_CFG", "gain_sel", 5);  // gain 32
  soc.registers().write_field("CH2_CFG", "gain_sel", 0);  // gain 1
  soc.apply_registers();
  EXPECT_DOUBLE_EQ(soc.channel(0).gain(), 32.0);
  EXPECT_DOUBLE_EQ(soc.channel(2).gain(), 1.0);
}

TEST(Isif, RegisterMapHasChannelAndDacEntries) {
  Isif soc{IsifConfig{}, Rng{4}};
  EXPECT_TRUE(soc.registers().has("CH0_CFG"));
  EXPECT_TRUE(soc.registers().has("CH3_CFG"));
  EXPECT_TRUE(soc.registers().has("DAC_CFG"));
}

TEST(Isif, FirmwareBaseRateIsDecimatedChannelRate) {
  IsifConfig cfg;
  cfg.channel.modulator_clock = util::hertz(256e3);
  cfg.channel.decimation = 128;
  Isif soc{cfg, Rng{5}};
  EXPECT_DOUBLE_EQ(soc.firmware().base_rate().value(), 2000.0);
}

TEST(Isif, ChannelsHaveIndependentNoiseStreams) {
  Isif soc{IsifConfig{}, Rng{6}};
  // Drive both with the same input; decimated codes should differ (different
  // offset/noise draws), proving the RNG split.
  std::int32_t c0 = 0, c1 = 0;
  for (int i = 0; i < 128 * 8; ++i) {
    if (auto s = soc.channel(0).tick(util::millivolts(3.0))) c0 = s->code;
    if (auto s = soc.channel(1).tick(util::millivolts(3.0))) c1 = s->code;
  }
  EXPECT_NE(c0, c1);
}

}  // namespace
}  // namespace aqua::isif
