#include "isif/dac_ctrl.hpp"

#include <gtest/gtest.h>

namespace aqua::isif {
namespace {

using util::Rng;
using util::Seconds;
using util::volts;

analog::ThermometerDacSpec fast_spec() {
  analog::ThermometerDacSpec s;
  s.bits = 12;
  s.full_scale = volts(4.0);
  s.element_mismatch_sigma = 0.0;
  s.settling_tau = Seconds{0.0};
  return s;
}

TEST(DacController, UnlimitedSlewJumpsImmediately) {
  DacController ctl{fast_spec(), Rng{1}, 0};
  ctl.request_code(3000);
  (void)ctl.update(Seconds{1e-6});
  EXPECT_EQ(ctl.current_code(), 3000);
}

TEST(DacController, SlewLimitedApproach) {
  DacController ctl{fast_spec(), Rng{1}, 100};
  ctl.request_code(1000);
  (void)ctl.update(Seconds{1e-6});
  EXPECT_EQ(ctl.current_code(), 100);
  for (int i = 0; i < 8; ++i) (void)ctl.update(Seconds{1e-6});
  EXPECT_EQ(ctl.current_code(), 900);
  for (int i = 0; i < 5; ++i) (void)ctl.update(Seconds{1e-6});
  EXPECT_EQ(ctl.current_code(), 1000);  // clamps at target
}

TEST(DacController, SlewWorksDownward) {
  DacController ctl{fast_spec(), Rng{1}, 50};
  ctl.request_code(200);
  for (int i = 0; i < 10; ++i) (void)ctl.update(Seconds{1e-6});
  ctl.request_code(0);
  (void)ctl.update(Seconds{1e-6});
  EXPECT_EQ(ctl.current_code(), 150);
}

TEST(DacController, RequestVoltageMapsToCode) {
  DacController ctl{fast_spec(), Rng{1}, 0};
  ctl.request_voltage(volts(2.0));
  (void)ctl.update(Seconds{1e-6});
  EXPECT_NEAR(ctl.dac().static_output().value(), 2.0, 4.0 / 4095.0);
}

TEST(DacController, TargetClamped) {
  DacController ctl{fast_spec(), Rng{1}, 0};
  ctl.request_code(999999);
  EXPECT_EQ(ctl.target_code(), 4095);
  ctl.request_code(-10);
  EXPECT_EQ(ctl.target_code(), 0);
}

TEST(DacController, RejectsNegativeSlew) {
  EXPECT_THROW((DacController{fast_spec(), Rng{1}, -1}), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::isif
