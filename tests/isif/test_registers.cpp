#include "isif/registers.hpp"

#include <gtest/gtest.h>

namespace aqua::isif {
namespace {

TEST(Registers, DefineAndRawAccess) {
  RegisterFile regs;
  regs.define("CTRL", {{"en", 0, 1}, {"gain", 1, 3}});
  EXPECT_TRUE(regs.has("CTRL"));
  EXPECT_FALSE(regs.has("NOPE"));
  EXPECT_EQ(regs.read_raw("CTRL"), 0u);
  regs.write_raw("CTRL", 0xF);
  EXPECT_EQ(regs.read_raw("CTRL"), 0xFu);
}

TEST(Registers, FieldPackingIsolated) {
  RegisterFile regs;
  regs.define("CFG", {{"lo", 0, 4}, {"hi", 4, 4}});
  regs.write_field("CFG", "lo", 0x5);
  regs.write_field("CFG", "hi", 0xA);
  EXPECT_EQ(regs.read_raw("CFG"), 0xA5u);
  EXPECT_EQ(regs.read_field("CFG", "lo"), 0x5u);
  EXPECT_EQ(regs.read_field("CFG", "hi"), 0xAu);
  // Rewriting one field leaves the other intact.
  regs.write_field("CFG", "lo", 0x1);
  EXPECT_EQ(regs.read_field("CFG", "hi"), 0xAu);
}

TEST(Registers, OversizedFieldValueRejected) {
  RegisterFile regs;
  regs.define("R", {{"f", 0, 2}});
  EXPECT_THROW(regs.write_field("R", "f", 4), std::invalid_argument);
  regs.write_field("R", "f", 3);  // max value fits
  EXPECT_EQ(regs.read_field("R", "f"), 3u);
}

TEST(Registers, UnknownRegisterOrFieldThrows) {
  RegisterFile regs;
  regs.define("R", {{"f", 0, 2}});
  EXPECT_THROW((void)regs.read_raw("X"), std::out_of_range);
  EXPECT_THROW(regs.write_field("R", "g", 0), std::out_of_range);
}

TEST(Registers, DuplicateAndBadGeometryRejected) {
  RegisterFile regs;
  regs.define("R", {{"f", 0, 2}});
  EXPECT_THROW(regs.define("R", {}), std::invalid_argument);
  EXPECT_THROW(regs.define("B", {{"f", 30, 4}}), std::invalid_argument);
  EXPECT_THROW(regs.define("C", {{"f", 0, 0}}), std::invalid_argument);
}

TEST(Registers, FullWidthField) {
  RegisterFile regs;
  regs.define("W", {{"all", 0, 32}});
  regs.write_field("W", "all", 0xDEADBEEF);
  EXPECT_EQ(regs.read_field("W", "all"), 0xDEADBEEFu);
}

TEST(Registers, NamesListed) {
  RegisterFile regs;
  regs.define("A", {});
  regs.define("B", {});
  const auto names = regs.register_names();
  EXPECT_EQ(names.size(), 2u);
}

}  // namespace
}  // namespace aqua::isif
