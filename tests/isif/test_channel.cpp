#include "isif/channel.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

namespace aqua::isif {
namespace {

using util::hertz;
using util::millivolts;
using util::Rng;
using util::volts;

ChannelConfig quiet_config() {
  ChannelConfig c;
  c.amp.offset_sigma = volts(0.0);
  c.amp.noise_density = 0.0;
  c.amp.flicker_density_1hz = 0.0;
  c.adc.dither_lsb = 0.0;
  return c;
}

double settled_reading(InputChannel& ch, util::Volts in, int blocks = 60) {
  double acc = 0.0;
  int n = 0;
  const int total = ch.config().decimation * blocks;
  for (int i = 0; i < total; ++i) {
    if (auto s = ch.tick(in)) {
      if (++n > blocks / 2) acc += s->value;
    }
  }
  return acc / (n - blocks / 2);
}

TEST(InputChannel, OutputCadence) {
  InputChannel ch{quiet_config(), Rng{1}};
  int samples = 0;
  for (int i = 0; i < 128 * 5; ++i)
    if (ch.tick(volts(0.0))) ++samples;
  EXPECT_EQ(samples, 5);
  EXPECT_DOUBLE_EQ(ch.output_rate().value(), 256e3 / 128.0);
}

TEST(InputChannel, DcAccuracy) {
  InputChannel ch{quiet_config(), Rng{2}};
  EXPECT_NEAR(settled_reading(ch, millivolts(5.0)), 5e-3, 5e-5);
}

TEST(InputChannel, NegativeInputsSymmetric) {
  InputChannel ch1{quiet_config(), Rng{3}};
  InputChannel ch2{quiet_config(), Rng{3}};
  const double pos = settled_reading(ch1, millivolts(20.0));
  const double neg = settled_reading(ch2, millivolts(-20.0));
  EXPECT_NEAR(pos, -neg, 2e-5);
}

TEST(InputChannel, GainReferencesInputCorrectly) {
  ChannelConfig c = quiet_config();
  c.amp.gain = 64.0;
  InputChannel ch{c, Rng{4}};
  EXPECT_NEAR(settled_reading(ch, millivolts(2.0)), 2e-3, 2e-5);
}

TEST(InputChannel, InputReferredLsbShrinksWithGain) {
  ChannelConfig lo = quiet_config();
  lo.amp.gain = 1.0;
  ChannelConfig hi = quiet_config();
  hi.amp.gain = 64.0;
  InputChannel a{lo, Rng{5}}, b{hi, Rng{5}};
  EXPECT_NEAR(a.input_referred_lsb().value() / b.input_referred_lsb().value(),
              64.0, 1e-9);
}

TEST(InputChannel, OverloadFlagged) {
  ChannelConfig c = quiet_config();
  c.amp.gain = 1.0;
  InputChannel ch{c, Rng{6}};
  bool overloaded = false;
  for (int i = 0; i < 128 * 4; ++i)
    if (auto s = ch.tick(volts(1.59)))  // ≈ ADC full scale
      overloaded = overloaded || s->overload;
  EXPECT_TRUE(overloaded);
}

TEST(InputChannel, NoiseFloorGivesUsefulEnob) {
  // With realistic amp noise the settled std dev should still resolve well
  // below a millivolt input-referred (the paper's 16-bit channel).
  InputChannel ch{ChannelConfig{}, Rng{7}};
  std::vector<double> vals;
  for (int i = 0; i < 128 * 400; ++i)
    if (auto s = ch.tick(millivolts(10.0))) vals.push_back(s->value);
  // Drop the pipeline fill-in transient (CIC + anti-alias settling).
  vals.erase(vals.begin(), vals.begin() + 50);
  double mean = 0.0;
  for (double v : vals) mean += v;
  mean /= vals.size();
  double var = 0.0;
  for (double v : vals) var += (v - mean) * (v - mean);
  const double sd = std::sqrt(var / vals.size());
  EXPECT_LT(sd, 100e-6);
  EXPECT_NEAR(mean, 10e-3, 2e-3);  // offset dominates the bias budget
}

TEST(InputChannel, ResetClearsPipeline) {
  InputChannel ch{quiet_config(), Rng{8}};
  for (int i = 0; i < 1000; ++i) (void)ch.tick(volts(0.1));
  ch.reset();
  // After reset, the first decimated sample comes a full block later.
  int ticks_to_sample = 0;
  while (!ch.tick(volts(0.0))) ++ticks_to_sample;
  EXPECT_EQ(ticks_to_sample, 127);
}

TEST(InputChannel, ProcessFrameBitIdenticalToTicks) {
  // The heart of the block-execution contract: with every noise source live,
  // the fused frame path must reproduce the scalar tick path byte for byte —
  // codes, values, overload flags — because it performs the same draws and
  // the same FP operations in the same order (DESIGN.md §9).
  ChannelConfig cfg{};  // default = full noise + dither
  InputChannel scalar{cfg, Rng{41}};
  InputChannel block{cfg, Rng{41}};
  const int dec = cfg.decimation;
  std::vector<double> frame(static_cast<size_t>(dec));
  for (int f = 0; f < 25; ++f) {
    for (int i = 0; i < dec; ++i)
      frame[static_cast<size_t>(i)] =
          5e-3 * std::sin(0.002 * (f * dec + i)) + ((f == 11) ? 2.0 : 0.0);
    std::optional<ChannelSample> want;
    for (int i = 0; i < dec; ++i) {
      auto s = scalar.tick(volts(frame[static_cast<size_t>(i)]));
      if (s) want = s;
    }
    ASSERT_TRUE(want.has_value()) << "frame " << f;
    const ChannelSample got = block.process_frame(frame);
    EXPECT_EQ(want->code, got.code) << "frame " << f;
    EXPECT_EQ(want->value, got.value) << "frame " << f;
    EXPECT_EQ(want->overload, got.overload) << "frame " << f;
  }
}

TEST(InputChannel, ProcessFrameInterleavesWithTicks) {
  // Frames and scalar ticks can be mixed freely at frame boundaries without
  // disturbing the RNG stream positions.
  ChannelConfig cfg{};
  InputChannel scalar{cfg, Rng{42}};
  InputChannel mixed{cfg, Rng{42}};
  const int dec = cfg.decimation;
  std::vector<double> frame(static_cast<size_t>(dec), 1e-3);
  for (int f = 0; f < 8; ++f) {
    std::optional<ChannelSample> want;
    for (int i = 0; i < dec; ++i)
      if (auto s = scalar.tick(volts(1e-3))) want = s;
    std::optional<ChannelSample> got;
    if (f % 2 == 0) {
      got = mixed.process_frame(frame);
    } else {
      for (int i = 0; i < dec; ++i)
        if (auto s = mixed.tick(volts(1e-3))) got = s;
    }
    ASSERT_TRUE(want && got) << f;
    EXPECT_EQ(want->code, got->code) << f;
    EXPECT_EQ(want->value, got->value) << f;
  }
}

TEST(InputChannel, ProcessFrameRejectsWrongSizeAndMisalignment) {
  InputChannel ch{quiet_config(), Rng{43}};
  std::vector<double> wrong(17, 0.0);
  EXPECT_THROW((void)ch.process_frame(wrong), std::logic_error);
  std::vector<double> frame(128, 0.0);
  (void)ch.tick(volts(0.0));  // knock the channel off the frame boundary
  EXPECT_EQ(ch.frame_phase(), 1);
  EXPECT_THROW((void)ch.process_frame(frame), std::logic_error);
  ch.reset();  // reset realigns
  EXPECT_EQ(ch.frame_phase(), 0);
  EXPECT_NO_THROW((void)ch.process_frame(frame));
}

TEST(InputChannel, ResetReplaysFramesBitIdentically) {
  ChannelConfig cfg{};
  InputChannel ch{cfg, Rng{44}};
  std::vector<double> frame(static_cast<size_t>(cfg.decimation));
  for (size_t i = 0; i < frame.size(); ++i) frame[i] = 2e-3 * std::cos(0.1 * i);
  std::vector<std::int32_t> first;
  for (int f = 0; f < 5; ++f) first.push_back(ch.process_frame(frame).code);
  ch.reset();
  for (int f = 0; f < 5; ++f)
    EXPECT_EQ(first[static_cast<size_t>(f)], ch.process_frame(frame).code) << f;
}

TEST(InputChannel, Validation) {
  ChannelConfig bad = quiet_config();
  bad.output_bits = 4;
  EXPECT_THROW((InputChannel{bad, Rng{1}}), std::invalid_argument);
}

class ChannelDcSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChannelDcSweep, MonotoneTransfer) {
  const double mv = GetParam();
  InputChannel a{quiet_config(), Rng{11}}, b{quiet_config(), Rng{11}};
  EXPECT_LT(settled_reading(a, millivolts(mv)),
            settled_reading(b, millivolts(mv + 5.0)));
}

INSTANTIATE_TEST_SUITE_P(Sweep, ChannelDcSweep,
                         ::testing::Values(-40.0, -20.0, -5.0, 0.0, 5.0, 20.0,
                                           40.0));

}  // namespace
}  // namespace aqua::isif
