#include "isif/selftest.hpp"

#include <gtest/gtest.h>

namespace aqua::isif {
namespace {

using util::Rng;

ChannelConfig quiet_config() {
  ChannelConfig c;
  c.amp.offset_sigma = util::volts(0.0);
  c.amp.noise_density = 0.0;
  c.amp.flicker_density_1hz = 0.0;
  return c;
}

TEST(SelfTest, HealthyChannelPasses) {
  InputChannel ch{quiet_config(), Rng{1}};
  const auto result = run_channel_self_test(ch);
  EXPECT_TRUE(result.pass);
  EXPECT_NEAR(result.measured_gain, 1.0, 0.02);
}

TEST(SelfTest, PassesWithRealisticNoise) {
  InputChannel ch{ChannelConfig{}, Rng{2}};
  const auto result = run_channel_self_test(ch);
  EXPECT_TRUE(result.pass);
}

TEST(SelfTest, DetectsDegradedAmplifierBandwidth) {
  // An aging/damaged readout stage whose bandwidth collapsed to 20 Hz
  // attenuates the 100 Hz test tone — the self-test flags it even though DC
  // conversion still "works".
  ChannelConfig degraded = quiet_config();
  degraded.amp.bandwidth = util::hertz(20.0);
  InputChannel ch{degraded, Rng{3}};
  const auto result = run_channel_self_test(ch);
  EXPECT_FALSE(result.pass);
  EXPECT_LT(result.measured_gain, 0.5);
}

TEST(SelfTest, DetectsDeadAdc) {
  // Saturated/stuck ΣΔ: emulate by driving amplitude far beyond the stable
  // range so the modulator clips and the tone amplitude collapses.
  InputChannel ch{quiet_config(), Rng{4}};
  ChannelSelfTest hot{};
  hot.amplitude = util::volts(0.5);  // × gain 16 = 8 V at a 1.6 V ADC
  const auto result = run_channel_self_test(ch, hot);
  EXPECT_FALSE(result.pass);
  EXPECT_LT(result.measured_gain, 0.9);
}

TEST(SelfTest, ChannelUsableAfterTest) {
  InputChannel ch{quiet_config(), Rng{5}};
  (void)run_channel_self_test(ch);
  // Normal conversion still works post-test (reset path).
  double acc = 0.0;
  int n = 0;
  for (int i = 0; i < 128 * 40; ++i)
    if (auto s = ch.tick(util::millivolts(5.0)))
      if (++n > 20) acc += s->value;
  EXPECT_NEAR(acc / (n - 20), 5e-3, 2e-4);
}

TEST(SelfTest, Validation) {
  InputChannel ch{quiet_config(), Rng{6}};
  ChannelSelfTest bad{};
  bad.tone = util::hertz(1e6);
  EXPECT_THROW((void)run_channel_self_test(ch, bad), std::invalid_argument);
  ChannelSelfTest short_test{};
  short_test.periods = 2;
  EXPECT_THROW((void)run_channel_self_test(ch, short_test),
               std::invalid_argument);
}

}  // namespace
}  // namespace aqua::isif
