// Campaign-at-scale determinism: a seeded random fault campaign over a
// 1k-sensor fleet must produce a bit-identical CampaignSummary — trace
// checksum, every outcome timestamp, every detection latency — whether the
// epochs run serially or sharded over a pool(8) persistent worker team
// (run_campaign wraps its loop in a TeamSession). This is the end-to-end
// proof that injection, supervision and the sharded epoch loop compose
// without breaking the determinism contract.
#include <cstddef>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rig.hpp"
#include "fault/campaign.hpp"
#include "fleet/fleet.hpp"
#include "fleet/supervisor.hpp"
#include "util/thread_pool.hpp"

namespace aqua::fault {
namespace {

using util::Seconds;

struct District {
  hydro::WaterNetwork net;
  std::vector<fleet::SensorPlacement> placements;
};

// 32 replicas of the bench district = 1024 sensors, hydraulically
// independent so 1k-sensor epochs stay affordable in tier 1.
District make_district(std::size_t replicas) {
  District d;
  for (std::size_t rep = 0; rep < replicas; ++rep) {
    const auto res = d.net.add_reservoir(45.0);
    const auto hub = d.net.add_junction(2.0, 0.002);
    const auto first_pipe = d.net.pipe_count();
    d.net.add_pipe(res, hub, util::metres(200.0), util::millimetres(250.0));
    for (int chain = 0; chain < 4; ++chain) {
      auto prev = hub;
      for (int k = 0; k < 8; ++k) {
        if (d.net.pipe_count() - first_pipe >= 32) break;
        const auto next = d.net.add_junction(1.5 - 0.1 * k, 0.002);
        d.net.add_pipe(prev, next, util::metres(250.0),
                       util::millimetres(150.0 - 14.0 * k));
        prev = next;
      }
    }
  }
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p)
    d.placements.push_back(fleet::SensorPlacement{p, 0.0});
  return d;
}

CampaignSummary run_scaled_campaign(unsigned threads) {
  constexpr std::size_t kReplicas = 32;  // 1024 sensors
  District d = make_district(kReplicas);
  fleet::FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 424242;
  cfg.epoch = Seconds{0.02};
  fleet::FleetEngine engine(d.net, d.placements, cfg);
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);

  fleet::FleetSupervisor supervisor(engine, fleet::SupervisorConfig{});
  // Counter-based schedule: 24 events over 1024 sensors, pure function of the
  // seed — identical on both runs by construction, so any divergence below
  // comes from the engine/supervisor loop, not the schedule.
  const FaultCampaign campaign = FaultCampaign::random(
      2026, 24, engine.size(), Seconds{0.02}, Seconds{0.10});
  return run_campaign(engine, supervisor, campaign, Seconds{0.12}, pool.get());
}

TEST(FaultCampaignScale, ThousandSensorSummaryBitIdenticalSerialVsPool8) {
  const CampaignSummary serial = run_scaled_campaign(0);
  const CampaignSummary pooled = run_scaled_campaign(8);

  EXPECT_EQ(serial.sensors, 1024u);
  EXPECT_EQ(serial.epochs, pooled.epochs);
  EXPECT_EQ(serial.sim_time_s, pooled.sim_time_s);
  EXPECT_EQ(serial.injected, pooled.injected);
  EXPECT_GT(serial.injected, 0);
  EXPECT_EQ(serial.hard_injected, pooled.hard_injected);
  EXPECT_EQ(serial.hard_detected, pooled.hard_detected);
  EXPECT_EQ(serial.transient_injected, pooled.transient_injected);
  EXPECT_EQ(serial.transient_detected, pooled.transient_detected);
  EXPECT_EQ(serial.transient_recovered, pooled.transient_recovered);
  EXPECT_EQ(serial.failed_permanently, pooled.failed_permanently);
  EXPECT_EQ(serial.quarantine_flaps, pooled.quarantine_flaps);
  EXPECT_EQ(serial.trace_checksum, pooled.trace_checksum);

  ASSERT_EQ(serial.outcomes.size(), pooled.outcomes.size());
  for (std::size_t k = 0; k < serial.outcomes.size(); ++k) {
    const FaultOutcome& a = serial.outcomes[k];
    const FaultOutcome& b = pooled.outcomes[k];
    EXPECT_EQ(a.injected, b.injected) << "event " << k;
    EXPECT_EQ(a.injected_t_s, b.injected_t_s) << "event " << k;
    EXPECT_EQ(a.quarantined_t_s, b.quarantined_t_s) << "event " << k;
    EXPECT_EQ(a.detection_epochs, b.detection_epochs) << "event " << k;
    EXPECT_EQ(a.recovered_t_s, b.recovered_t_s) << "event " << k;
  }
}

}  // namespace
}  // namespace aqua::fault
