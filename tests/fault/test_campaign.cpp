// Fault-injection campaigns: counter-based schedule reproducibility, the
// injector's apply/ramp/expire mechanics, and the headline end-to-end
// guarantees — every hard fault detected and quarantined within bounded
// epochs, transients recovered through backoff re-commission, zero quarantine
// flaps, graceful-degradation localization with part of the fleet dead, and
// bit-identical campaign outcomes at any thread count.
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/monitor.hpp"
#include "core/rig.hpp"
#include "fault/campaign.hpp"
#include "fleet/fleet.hpp"
#include "fleet/supervisor.hpp"
#include "util/thread_pool.hpp"

namespace aqua::fault {
namespace {

using util::Seconds;

struct District {
  hydro::WaterNetwork net;
  std::vector<fleet::SensorPlacement> placements;
  std::vector<hydro::WaterNetwork::PipeId> pipes;
  hydro::WaterNetwork::NodeId n2 = 0;
};

// The 10-pipe looped district of tests/fleet/test_fleet_determinism.cpp.
District make_district() {
  District d;
  const auto res = d.net.add_reservoir(40.0);
  const auto n1 = d.net.add_junction(2.0, 0.0015);
  const auto n2 = d.net.add_junction(2.0, 0.0025);
  const auto n3 = d.net.add_junction(1.5, 0.0025);
  const auto n4 = d.net.add_junction(1.0, 0.0020);
  const auto n5 = d.net.add_junction(1.0, 0.0020);
  const auto n6 = d.net.add_junction(0.5, 0.0015);
  const auto n7 = d.net.add_junction(0.5, 0.0015);
  using util::metres;
  using util::millimetres;
  d.net.add_pipe(res, n1, metres(300.0), millimetres(200.0));
  d.net.add_pipe(n1, n2, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n1, n3, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n2, n4, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n3, n5, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n2, n3, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n4, n6, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n5, n7, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n4, n5, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n6, n7, metres(250.0), millimetres(80.0));
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p) {
    d.placements.push_back(fleet::SensorPlacement{p, 0.0});
    d.pipes.push_back(p);
  }
  d.n2 = n2;
  return d;
}

fleet::FleetConfig make_config() {
  fleet::FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 20260805;
  cfg.epoch = Seconds{0.25};
  return cfg;
}

fleet::SupervisorConfig make_supervisor_config() {
  fleet::SupervisorConfig cfg;
  cfg.health.stuck_count = 6;  // catch dead channels inside the event windows
  return cfg;
}

// The scripted campaign the end-to-end tests drive: one event per layer.
//   sensor 3 membrane   (hard, permanent)   t=1.0
//   sensor 1 moisture   (hard, permanent)   t=1.5
//   sensor 4 watchdog   (hard, transient)   t=2.0
//   sensor 2 stuck bits (hard, transient)   t=1.5, 6 s window
//   sensor 0 brownout   (soft, transient)   t=2.5, 5 s window
FaultCampaign make_scripted_campaign() {
  FaultCampaign campaign{7};
  campaign
      .add({3, FaultKind::kMembraneOverpressure, Seconds{1.0}, Seconds{1.0},
            0.8})
      .add({1, FaultKind::kMoistureIngress, Seconds{1.5}, Seconds{1.0}, 0.9})
      .add({4, FaultKind::kWatchdogOverrun, Seconds{2.0}, Seconds{1.0}, 0.7})
      .add({2, FaultKind::kAdcStuckBits, Seconds{1.5}, Seconds{6.0}, 0.9})
      .add({0, FaultKind::kDacBrownout, Seconds{2.5}, Seconds{5.0}, 1.0});
  return campaign;
}

CampaignSummary run_scripted(unsigned threads, Seconds duration,
                             std::vector<fleet::NodeHealthState>* states_out =
                                 nullptr) {
  District d = make_district();
  fleet::FleetEngine engine(d.net, d.placements, make_config());
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  engine.commission(Seconds{0.2}, pool.get());
  fleet::FleetSupervisor supervisor(engine, make_supervisor_config());
  CampaignSummary summary = run_campaign(
      engine, supervisor, make_scripted_campaign(), duration, pool.get());
  if (states_out != nullptr)
    for (std::size_t i = 0; i < engine.size(); ++i)
      states_out->push_back(supervisor.state(i));
  return summary;
}

// --- schedule determinism ---------------------------------------------------

TEST(FaultCampaign, RandomScheduleIsReproducible) {
  const FaultCampaign a = FaultCampaign::random(42, 8, 10, Seconds{0.5},
                                                Seconds{6.0});
  const FaultCampaign b = FaultCampaign::random(42, 8, 10, Seconds{0.5},
                                                Seconds{6.0});
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t k = 0; k < a.events().size(); ++k) {
    EXPECT_EQ(a.events()[k].kind, b.events()[k].kind);
    EXPECT_EQ(a.events()[k].sensor, b.events()[k].sensor);
    EXPECT_EQ(a.events()[k].start.value(), b.events()[k].start.value());
    EXPECT_EQ(a.events()[k].duration.value(), b.events()[k].duration.value());
    EXPECT_EQ(a.events()[k].severity, b.events()[k].severity);
  }
}

TEST(FaultCampaign, EventKDependsOnlyOnSeedAndK) {
  // Counter-based streams: growing the campaign must not reshuffle the
  // existing events — event k is a pure function of (seed, k).
  const FaultCampaign small = FaultCampaign::random(9, 3, 10, Seconds{0.5},
                                                    Seconds{6.0});
  const FaultCampaign large = FaultCampaign::random(9, 12, 10, Seconds{0.5},
                                                    Seconds{6.0});
  for (std::size_t k = 0; k < small.events().size(); ++k) {
    EXPECT_EQ(small.events()[k].kind, large.events()[k].kind);
    EXPECT_EQ(small.events()[k].start.value(),
              large.events()[k].start.value());
    EXPECT_EQ(small.events()[k].severity, large.events()[k].severity);
  }
}

TEST(FaultCampaign, DifferentSeedsDiffer) {
  const FaultCampaign a = FaultCampaign::random(1, 8, 10, Seconds{0.5},
                                                Seconds{6.0});
  const FaultCampaign b = FaultCampaign::random(2, 8, 10, Seconds{0.5},
                                                Seconds{6.0});
  bool any_difference = false;
  for (std::size_t k = 0; k < a.events().size(); ++k)
    if (a.events()[k].start.value() != b.events()[k].start.value())
      any_difference = true;
  EXPECT_TRUE(any_difference);
}

TEST(FaultCampaign, Validation) {
  FaultCampaign campaign;
  EXPECT_THROW(
      campaign.add({0, FaultKind::kBubbleAdhesion, Seconds{1.0}, Seconds{1.0},
                    1.5}),
      std::invalid_argument);
  EXPECT_THROW(FaultCampaign::random(1, 4, 0, Seconds{0.0}, Seconds{1.0}),
               std::invalid_argument);
  EXPECT_THROW(FaultCampaign::random(1, 4, 10, Seconds{2.0}, Seconds{1.0}),
               std::invalid_argument);
}

TEST(FaultKinds, TaxonomyIsConsistent) {
  for (int k = 0; k < kFaultKindCount; ++k) {
    const FaultKind kind = static_cast<FaultKind>(k);
    EXPECT_NE(fault_kind_label(kind), nullptr);
    // Permanent physical damage is exactly the non-transient set.
    const bool permanent = kind == FaultKind::kMembraneOverpressure ||
                           kind == FaultKind::kMoistureIngress;
    EXPECT_EQ(fault_kind_is_transient(kind), !permanent);
    if (permanent) {
      EXPECT_TRUE(fault_kind_is_hard(kind));
    }
  }
}

// --- injector mechanics -----------------------------------------------------

TEST(FaultInjector, SurfaceEventRampsAndDetaches) {
  District d = make_district();
  fleet::FleetEngine engine(d.net, d.placements, make_config());
  FaultCampaign campaign;
  campaign.add({2, FaultKind::kBubbleAdhesion, Seconds{1.0}, Seconds{2.0},
                1.0});
  FaultInjector injector(engine, campaign);

  injector.update(Seconds{0.5});
  EXPECT_FALSE(injector.started(0));
  auto& die = engine.node(2).anemometer().die();
  EXPECT_EQ(die.fouling_a().bubble_coverage(), 0.0);

  injector.update(Seconds{1.5});  // mid-ramp (half the 1 s ramp window)
  EXPECT_TRUE(injector.started(0));
  EXPECT_EQ(injector.injections(), 1);
  const double mid = die.fouling_a().bubble_coverage();
  EXPECT_GT(mid, 0.0);

  injector.update(Seconds{2.5});  // fully developed
  EXPECT_GT(die.fouling_a().bubble_coverage(), mid);

  injector.update(Seconds{3.5});  // past start+duration: the bubble detaches
  EXPECT_TRUE(injector.expired(0));
  EXPECT_EQ(die.fouling_a().bubble_coverage(), 0.0);
  EXPECT_EQ(die.fouling_b().bubble_coverage(), 0.0);
}

TEST(FaultInjector, ChannelEventAppliesAndClears) {
  District d = make_district();
  fleet::FleetEngine engine(d.net, d.placements, make_config());
  FaultCampaign campaign;
  campaign.add({1, FaultKind::kAdcStuckBits, Seconds{1.0}, Seconds{2.0}, 1.0});
  FaultInjector injector(engine, campaign);

  injector.update(Seconds{1.0});
  auto& channel = engine.node(1).anemometer().platform().channel(0);
  EXPECT_NE(channel.injected_fault().stuck_high, 0u);

  injector.update(Seconds{3.0});
  EXPECT_EQ(channel.injected_fault().stuck_high, 0u);
}

TEST(FaultInjector, InjectionIsRecordedInFlightRecorder) {
  District d = make_district();
  fleet::FleetEngine engine(d.net, d.placements, make_config());
  FaultCampaign campaign;
  campaign.add({5, FaultKind::kMembraneOverpressure, Seconds{0.5},
                Seconds{1.0}, 1.0});
  FaultInjector injector(engine, campaign);
  injector.update(Seconds{0.5});

  bool recorded = false;
  for (const auto& e : engine.node(5).anemometer().flight().events())
    if (e.kind == obs::FlightRecordKind::kFaultInjected) recorded = true;
  EXPECT_TRUE(recorded);
  EXPECT_GE(injector.injection_time_s(0), 0.0);
}

TEST(FaultInjector, RejectsOutOfRangeSensor) {
  District d = make_district();
  fleet::FleetEngine engine(d.net, d.placements, make_config());
  FaultCampaign campaign;
  campaign.add({99, FaultKind::kBubbleAdhesion, Seconds{1.0}, Seconds{1.0},
                1.0});
  EXPECT_THROW(FaultInjector(engine, campaign), std::invalid_argument);
}

// --- end-to-end campaign guarantees ----------------------------------------

TEST(FaultCampaignEndToEnd, HardFaultsDetectedTransientsRecoveredNoFlaps) {
  std::vector<fleet::NodeHealthState> states;
  const CampaignSummary s = run_scripted(0, Seconds{20.0}, &states);

  EXPECT_EQ(s.injected, 5);
  EXPECT_EQ(s.hard_injected, 4);

  // Gate 1: every hard fault detected, within bounded epochs of injection.
  EXPECT_EQ(s.hard_detected, s.hard_injected);
  for (const FaultOutcome& o : s.outcomes) {
    if (!o.hard) continue;
    ASSERT_GE(o.quarantined_t_s, 0.0) << fault_kind_label(o.event.kind);
    EXPECT_LE(o.detection_epochs, 24) << fault_kind_label(o.event.kind);
  }

  // Gate 2: the recoverable hard faults come back through backoff
  // re-commission once their cause clears; the permanent ones never do.
  EXPECT_EQ(states[4], fleet::NodeHealthState::kHealthy);  // watchdog
  EXPECT_EQ(states[2], fleet::NodeHealthState::kHealthy);  // stuck bits
  EXPECT_EQ(states[3], fleet::NodeHealthState::kFailed);   // membrane
  EXPECT_EQ(states[1], fleet::NodeHealthState::kFailed);   // moisture
  EXPECT_EQ(s.failed_permanently, 2);
  for (const FaultOutcome& o : s.outcomes) {
    if (o.event.kind == FaultKind::kWatchdogOverrun ||
        o.event.kind == FaultKind::kAdcStuckBits) {
      EXPECT_GE(o.recovered_t_s, 0.0) << fault_kind_label(o.event.kind);
    }
  }

  // Gate 3: zero quarantine flaps — no sensor without an injected fault was
  // ever quarantined.
  EXPECT_EQ(s.quarantine_flaps, 0);
}

TEST(FaultCampaignEndToEnd, SerialAndParallelCampaignsAreBitIdentical) {
  std::vector<fleet::NodeHealthState> serial_states;
  std::vector<fleet::NodeHealthState> parallel_states;
  const CampaignSummary serial =
      run_scripted(0, Seconds{12.0}, &serial_states);
  const CampaignSummary parallel =
      run_scripted(8, Seconds{12.0}, &parallel_states);

  EXPECT_EQ(serial.trace_checksum, parallel.trace_checksum);
  EXPECT_EQ(serial.hard_detected, parallel.hard_detected);
  EXPECT_EQ(serial.transient_detected, parallel.transient_detected);
  EXPECT_EQ(serial.transient_recovered, parallel.transient_recovered);
  EXPECT_EQ(serial.quarantine_flaps, parallel.quarantine_flaps);
  EXPECT_EQ(serial.failed_permanently, parallel.failed_permanently);
  ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
  for (std::size_t k = 0; k < serial.outcomes.size(); ++k) {
    EXPECT_EQ(serial.outcomes[k].injected_t_s,
              parallel.outcomes[k].injected_t_s);
    EXPECT_EQ(serial.outcomes[k].quarantined_t_s,
              parallel.outcomes[k].quarantined_t_s);
    EXPECT_EQ(serial.outcomes[k].detection_epochs,
              parallel.outcomes[k].detection_epochs);
    EXPECT_EQ(serial.outcomes[k].recovered_t_s,
              parallel.outcomes[k].recovered_t_s);
  }
  EXPECT_EQ(serial_states, parallel_states);
}

TEST(FaultCampaignEndToEnd, MaskedLocalizationSurvivesQuarantines) {
  District d = make_district();
  fleet::FleetEngine engine(d.net, d.placements, make_config());
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});

  cta::LeakLocalizer localizer(d.net, d.pipes, util::metres_per_second(0.02));
  localizer.set_probe_emitter(2e-4);  // heavily loaded district
  localizer.calibrate();

  engine.commission(Seconds{0.2});
  fleet::FleetSupervisor supervisor(engine, make_supervisor_config());

  // Kill two sensors for good, run the campaign to quiescence.
  FaultCampaign campaign{11};
  campaign
      .add({3, FaultKind::kMembraneOverpressure, Seconds{0.5}, Seconds{1.0},
            0.9})
      .add({6, FaultKind::kMoistureIngress, Seconds{0.5}, Seconds{1.0}, 0.9});
  (void)run_campaign(engine, supervisor, campaign, Seconds{14.0});
  ASSERT_EQ(supervisor.count_in(fleet::NodeHealthState::kFailed), 2u);

  // Spring a leak at a junction the surviving sensors still observe.
  d.net.set_leak(d.n2, 1e-3);
  for (int e = 0; e < 16; ++e) {
    engine.step_epoch();
    supervisor.poll();
  }

  const fleet::MaskedEstimates masked = engine.latest_estimates_masked();
  EXPECT_EQ(masked.valid_count(), engine.size() - 2);
  EXPECT_EQ(masked.valid[3], 0);
  EXPECT_EQ(masked.valid[6], 0);
  for (const double v : masked.values) EXPECT_TRUE(std::isfinite(v));
  EXPECT_EQ(masked.values[3], 0.0);  // pinned, no stale replay

  EXPECT_TRUE(localizer.leak_detected(masked.values, masked.valid));
  const auto hypotheses = localizer.locate(masked.values, masked.valid);
  ASSERT_FALSE(hypotheses.empty());
  for (const cta::LeakHypothesis& h : hypotheses) {
    EXPECT_TRUE(std::isfinite(h.estimated_flow_m3s));
    EXPECT_TRUE(std::isfinite(h.residual_norm));
  }
  // Bounded localization error: the true junction ranks in the top 3 even
  // with two sensors dark.
  std::size_t rank = 0;
  for (std::size_t c = 0; c < hypotheses.size(); ++c)
    if (hypotheses[c].node == d.n2) rank = c + 1;
  EXPECT_GE(rank, 1u);
  EXPECT_LE(rank, 3u);
}

TEST(FaultCampaignEndToEnd, ZeroValidSensorsDegradeToSilence) {
  District d = make_district();
  fleet::FleetEngine engine(d.net, d.placements, make_config());
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  cta::LeakLocalizer localizer(d.net, d.pipes, util::metres_per_second(0.02));
  localizer.set_probe_emitter(2e-4);
  localizer.calibrate();
  engine.commission(Seconds{0.2});
  engine.run(Seconds{0.5});
  for (std::size_t i = 0; i < engine.size(); ++i)
    engine.set_estimate_valid(i, false);

  const fleet::MaskedEstimates masked = engine.latest_estimates_masked();
  EXPECT_EQ(masked.valid_count(), 0u);
  EXPECT_FALSE(localizer.leak_detected(masked.values, masked.valid));
  EXPECT_TRUE(localizer.locate(masked.values, masked.valid).empty());
}

}  // namespace
}  // namespace aqua::fault
