// ChannelBatch: lane-remainder bit-identity (any group size produces exactly
// the W = 1 reference, including ragged tails), scalar resume after a batch
// frame, structural validation, and the batched thermal sweep's bit-identity
// against per-net stepping.
#include <bit>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "isif/channel.hpp"
#include "phys/thermal.hpp"
#include "simd/channel_batch.hpp"
#include "util/rng.hpp"

namespace aqua::simd {
namespace {

using isif::ChannelSample;
using isif::InputChannel;

std::vector<std::unique_ptr<InputChannel>> make_channels(int n,
                                                         std::uint64_t seed) {
  std::vector<std::unique_ptr<InputChannel>> channels;
  for (int i = 0; i < n; ++i)
    channels.push_back(std::make_unique<InputChannel>(
        isif::ChannelConfig{},
        util::Rng::stream(seed, static_cast<std::uint64_t>(i))));
  return channels;
}

std::vector<double> make_frame(int ticks, std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<double> frame(static_cast<std::size_t>(ticks));
  for (double& v : frame) v = rng.uniform(-4e-3, 4e-3);
  return frame;
}

void expect_samples_equal(const ChannelSample& a, const ChannelSample& b,
                          const char* label, int i) {
  EXPECT_EQ(a.code, b.code) << label << " channel " << i;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a.value),
            std::bit_cast<std::uint64_t>(b.value))
      << label << " channel " << i;
  EXPECT_EQ(a.overload, b.overload) << label << " channel " << i;
}

TEST(ChannelBatch, AnyGroupSizeBitMatchesTheWidthOneReference) {
  // Shard sizes around every lane width: singletons, W−1/W/W+1 and a ragged
  // 3W+2 must all produce the same bits as the per-channel W = 1 reference —
  // the chunking-invariance half of the batch determinism contract.
  const int decimation = isif::ChannelConfig{}.decimation;
  for (int width : {2, 4, 8}) {
    for (int n : {1, width - 1, width, width + 1, 3 * width + 2}) {
      auto reference = make_channels(n, 555);
      auto batched = make_channels(n, 555);
      for (int frame_idx = 0; frame_idx < 3; ++frame_idx) {
        const auto frame =
            make_frame(decimation, 1000u + static_cast<unsigned>(frame_idx));
        std::vector<ChannelFrameInput> ref_in, bat_in;
        for (int i = 0; i < n; ++i) {
          ref_in.push_back(ChannelFrameInput{reference[static_cast<std::size_t>(i)].get(), frame});
          bat_in.push_back(ChannelFrameInput{batched[static_cast<std::size_t>(i)].get(), frame});
        }
        std::vector<ChannelSample> ref_out(static_cast<std::size_t>(n)),
            bat_out(static_cast<std::size_t>(n));
        ChannelBatch::process_frames(ref_in, ref_out, 1);
        ChannelBatch::process_frames(bat_in, bat_out, width);
        for (int i = 0; i < n; ++i)
          expect_samples_equal(bat_out[static_cast<std::size_t>(i)],
                               ref_out[static_cast<std::size_t>(i)],
                               "batch vs W=1", i);
      }
    }
  }
}

TEST(ChannelBatch, ScalarResumesBitIdenticallyAfterBatchFrames) {
  // A channel pulled out of the batch (quarantine, regrouping) must continue
  // exactly where the lanes left it: batch frames then a W = 1 frame equals
  // the same channel advanced at W = 1 throughout.
  const int decimation = isif::ChannelConfig{}.decimation;
  const int n = 5;
  auto mixed = make_channels(n, 777);
  auto pure = make_channels(n, 777);
  const auto frame_a = make_frame(decimation, 1);
  const auto frame_b = make_frame(decimation, 2);

  auto run_frame = [&](auto& channels, const std::vector<double>& frame,
                       int width) {
    std::vector<ChannelFrameInput> in;
    for (auto& ch : channels) in.push_back(ChannelFrameInput{ch.get(), frame});
    std::vector<ChannelSample> out(channels.size());
    ChannelBatch::process_frames(in, out, width);
    return out;
  };
  (void)run_frame(mixed, frame_a, 4);
  (void)run_frame(pure, frame_a, 1);
  const auto mixed_out = run_frame(mixed, frame_b, 1);
  const auto pure_out = run_frame(pure, frame_b, 1);
  for (int i = 0; i < n; ++i)
    expect_samples_equal(mixed_out[static_cast<std::size_t>(i)],
                         pure_out[static_cast<std::size_t>(i)],
                         "batch-then-scalar vs scalar", i);
}

TEST(ChannelBatch, ValidatesSizesAndStructure) {
  auto channels = make_channels(2, 9);
  const auto frame =
      make_frame(isif::ChannelConfig{}.decimation, 3);
  std::vector<ChannelFrameInput> in;
  for (auto& ch : channels) in.push_back(ChannelFrameInput{ch.get(), frame});
  std::vector<ChannelSample> out(1);  // wrong size
  EXPECT_THROW(ChannelBatch::process_frames(in, out, 4), std::invalid_argument);
  out.resize(2);
  EXPECT_THROW(ChannelBatch::process_frames(in, out, 3), std::invalid_argument);

  // Frame length must equal the decimation.
  std::vector<double> short_frame(7, 0.0);
  in[1].differential_volts = short_frame;
  EXPECT_THROW(ChannelBatch::process_frames(in, out, 4), std::logic_error);

  // Structural mismatch within one lane group: different decimation. Width 2
  // so the two channels genuinely share a group — at width 4 they would both
  // take the one-at-a-time remainder path, where no cross-channel structure
  // exists to violate.
  isif::ChannelConfig other;
  other.decimation = 64;
  InputChannel odd{other, util::Rng{5}};
  const auto other_frame = make_frame(64, 4);
  in[1] = ChannelFrameInput{&odd, other_frame};
  EXPECT_THROW(ChannelBatch::process_frames(in, out, 2),
               std::invalid_argument);
}

TEST(ThermalStepBatch, BitIdenticalToPerNetStepping) {
  // N dies sharing one CSR adjacency relaxed in a single sweep must produce
  // exactly the temperatures of per-net step() calls, in any batch size.
  auto make_net = [](double power) {
    phys::ThermalNetwork net;
    const auto a = net.add_node(1e-6, util::celsius(25.0));
    const auto b = net.add_node(2e-6, util::celsius(24.0));
    const auto amb = net.add_boundary(util::celsius(15.0));
    net.connect(a, b, 1e-3);
    net.connect(b, amb, 2e-3);
    net.connect(a, amb, 5e-4);
    net.set_power(a, util::Watts{power});
    return net;
  };
  std::vector<phys::ThermalNetwork> batch_nets, ref_nets;
  for (int i = 0; i < 5; ++i) {
    batch_nets.push_back(make_net(1e-3 * (i + 1)));
    ref_nets.push_back(make_net(1e-3 * (i + 1)));
  }
  const util::Seconds dt{4e-6};
  std::vector<phys::ThermalNetwork*> ptrs;
  for (auto& net : batch_nets) ptrs.push_back(&net);
  for (int step = 0; step < 200; ++step) {
    phys::ThermalNetwork::step_batch(ptrs, dt);
    for (auto& net : ref_nets) net.step(dt);
  }
  for (std::size_t i = 0; i < batch_nets.size(); ++i)
    for (std::size_t node = 0; node < 3; ++node)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(
                    batch_nets[i].temperature(node).value()),
                std::bit_cast<std::uint64_t>(
                    ref_nets[i].temperature(node).value()))
          << "net " << i << " node " << node;
}

TEST(ThermalStepBatch, RejectsTopologyMismatch) {
  phys::ThermalNetwork a, b;
  const auto a0 = a.add_node(1e-6, util::celsius(25.0));
  const auto a1 = a.add_boundary(util::celsius(15.0));
  a.connect(a0, a1, 1e-3);
  const auto b0 = b.add_node(1e-6, util::celsius(25.0));
  const auto b1 = b.add_node(1e-6, util::celsius(15.0));  // not a boundary
  b.connect(b0, b1, 1e-3);
  std::vector<phys::ThermalNetwork*> ptrs{&a, &b};
  EXPECT_THROW(phys::ThermalNetwork::step_batch(ptrs, util::Seconds{4e-6}),
               std::invalid_argument);
}

}  // namespace
}  // namespace aqua::simd
