// Lane primitives and the vector math kernels: select/clamp/abs against their
// scalar counterparts bit-for-bit, vlog against std::log within a few ulp,
// vsincos_2pi against the libm pair within ~2e-16 absolute. The public hooks
// (vlog_lanes / vsincos_2pi_lanes) are width-generic, so every committed
// width runs even on a host whose ISA would pick a narrower one — generic
// vectors lower to scalar code with identical values.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "simd/gauss.hpp"
#include "simd/lanes.hpp"
#include "util/rng.hpp"

namespace aqua::simd {
namespace {

TEST(Lanes, ActiveWidthIsAConfiguredWidth) {
  const int w = active_lane_width();
  EXPECT_TRUE(w == 1 || w == 2 || w == 4 || w == 8) << w;
}

TEST(Lanes, SelectClampAbsMatchScalarBitForBit) {
  using L = Lanes<4>;
  const double specials[] = {0.0,  -0.0, 1.5,  -1.5, 1e-308,
                             -3.0, 3.0,  0.25, -0.9, 123.456};
  for (double x : specials) {
    for (double lo : {-1.0, -0.0, 0.5}) {
      for (double hi : {0.0, 1.0, 2.0}) {
        if (hi < lo) continue;
        L::vd vx = L::splat(x);
        const double got = L::clamp(vx, L::splat(lo), L::splat(hi))[2];
        const double want = std::clamp(x, lo, hi);
        EXPECT_EQ(std::bit_cast<std::uint64_t>(got),
                  std::bit_cast<std::uint64_t>(want))
            << "clamp(" << x << ", " << lo << ", " << hi << ")";
      }
    }
    EXPECT_EQ(std::bit_cast<std::uint64_t>(L::vabs(L::splat(x))[1]),
              std::bit_cast<std::uint64_t>(std::abs(x)))
        << x;
  }
}

TEST(Lanes, SqrtIsCorrectlyRounded) {
  using L = Lanes<2>;
  for (double x : {0.0, 1.0, 2.0, 0.3, 1e-12, 4.0e8}) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(L::vsqrt(L::splat(x))[0]),
              std::bit_cast<std::uint64_t>(std::sqrt(x)))
        << x;
  }
}

double ulp_distance(double a, double b) {
  if (a == b) return 0.0;
  const double u = std::abs(b) * std::numeric_limits<double>::epsilon();
  return std::abs(a - b) / u;
}

TEST(VectorMath, VlogMatchesStdLogWithinUlps) {
  // The generator only evaluates vlog on (0, 1] (log of 1−u, u ∈ [0,1)), so
  // that is the accuracy domain that matters; sweep it densely plus the
  // smallest inputs 1−u can produce.
  util::Rng rng{123};
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.uniform());
  xs.push_back(0x1.0p-53);
  xs.push_back(1.0);
  xs.push_back(0.5);
  xs.push_back(1.0 - 0x1.0p-53);
  for (double& x : xs)
    if (x <= 0.0) x = 0.5;

  for (int width : {1, 2, 4, 8}) {
    std::vector<double> out(xs.size());
    vlog_lanes(xs, out, width);
    double worst = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
      worst = std::max(worst, ulp_distance(out[i], std::log(xs[i])));
    EXPECT_LT(worst, 4.0) << "width " << width;
  }
}

TEST(VectorMath, VsincosMatchesLibmClosely) {
  // u ∈ [0, 1) turns — the full argument range the generator uses.
  util::Rng rng{321};
  std::vector<double> us;
  for (int i = 0; i < 20000; ++i) us.push_back(rng.uniform());
  us.push_back(0.0);
  us.push_back(0.25);
  us.push_back(0.5);
  us.push_back(0.75);
  us.push_back(1.0 - 0x1.0p-53);

  constexpr double kTwoPi = 6.283185307179586476925286766559;
  for (int width : {1, 2, 4, 8}) {
    std::vector<double> s(us.size()), c(us.size());
    vsincos_2pi_lanes(us, s, c, width);
    double worst = 0.0;
    for (std::size_t i = 0; i < us.size(); ++i) {
      worst = std::max(worst, std::abs(s[i] - std::sin(kTwoPi * us[i])));
      worst = std::max(worst, std::abs(c[i] - std::cos(kTwoPi * us[i])));
    }
    EXPECT_LT(worst, 2e-15) << "width " << width;
  }
}

TEST(VectorMath, WidthInvariantBitForBit) {
  // The determinism keystone: the kernels are element-wise pure, so the same
  // input produces the same bits at every lane width.
  util::Rng rng{77};
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.uniform());
  std::vector<double> ref(xs.size()), refs(xs.size()), refc(xs.size());
  vlog_lanes(xs, ref, 1);
  vsincos_2pi_lanes(xs, refs, refc, 1);
  for (int width : {2, 4, 8}) {
    std::vector<double> out(xs.size()), s(xs.size()), c(xs.size());
    vlog_lanes(xs, out, width);
    vsincos_2pi_lanes(xs, s, c, width);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
                std::bit_cast<std::uint64_t>(ref[i]))
          << "vlog width " << width << " i " << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(s[i]),
                std::bit_cast<std::uint64_t>(refs[i]))
          << "sin width " << width << " i " << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(c[i]),
                std::bit_cast<std::uint64_t>(refc[i]))
          << "cos width " << width << " i " << i;
    }
  }
}

TEST(VectorMath, RejectsInvalidWidth) {
  std::vector<double> x(4, 0.5), out(4);
  EXPECT_THROW(vlog_lanes(x, out, 3), std::invalid_argument);
  EXPECT_THROW(vlog_lanes(x, out, 16), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::simd
