// Fleet-level SIMD batch execution: the batch path's committed determinism
// checksum reproduces at every configured lane width and thread count, the
// scalar path is untouched by the new mode plumbing, and sensors that cannot
// join a lane group (parked mid-frame by a re-commission) fall back to the
// scalar path without perturbing any neighbour's RNG stream.
#include <bit>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rig.hpp"
#include "fleet/fleet.hpp"
#include "util/thread_pool.hpp"

namespace aqua::fleet {
namespace {

using util::Seconds;

struct District {
  hydro::WaterNetwork net;
  std::vector<SensorPlacement> placements;
};

// The looped 8-junction district of the fleet determinism tests: one sensor
// on every one of the 10 pipes.
District make_district() {
  District d;
  const auto res = d.net.add_reservoir(40.0);
  const auto n1 = d.net.add_junction(2.0, 0.0015);
  const auto n2 = d.net.add_junction(2.0, 0.0025);
  const auto n3 = d.net.add_junction(1.5, 0.0025);
  const auto n4 = d.net.add_junction(1.0, 0.0020);
  const auto n5 = d.net.add_junction(1.0, 0.0020);
  const auto n6 = d.net.add_junction(0.5, 0.0015);
  const auto n7 = d.net.add_junction(0.5, 0.0015);
  using util::metres;
  using util::millimetres;
  d.net.add_pipe(res, n1, metres(300.0), millimetres(200.0));
  d.net.add_pipe(n1, n2, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n1, n3, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n2, n4, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n3, n5, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n2, n3, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n4, n6, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n5, n7, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n4, n5, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n6, n7, metres(250.0), millimetres(80.0));
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p)
    d.placements.push_back(SensorPlacement{p, 0.0});
  return d;
}

FleetConfig make_config(ChannelExecution execution, int lane_width) {
  FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 20260808;
  cfg.epoch = Seconds{0.25};
  cfg.demand_factor = diurnal_demand_pattern(Seconds{4.0});
  cfg.execution = execution;
  cfg.batch_lane_width = lane_width;
  return cfg;
}

std::uint64_t trace_checksum(const FleetEngine& engine) {
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < engine.size(); ++i)
    for (const TraceSample& s : engine.node(i).trace()) {
      checksum ^= std::bit_cast<std::uint64_t>(s.bridge_voltage);
      checksum ^= std::bit_cast<std::uint64_t>(s.estimate_mps) * 0x9E37u;
      checksum ^= std::bit_cast<std::uint64_t>(s.true_mean_mps) * 0x85EBu;
    }
  return checksum;
}

std::uint64_t run_checksum(ChannelExecution execution, int lane_width,
                           unsigned threads) {
  District d = make_district();
  FleetEngine engine(d.net, d.placements,
                     make_config(execution, lane_width));
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  engine.commission(Seconds{0.2}, pool.get());
  engine.run(Seconds{0.75}, pool.get());
  return trace_checksum(engine);
}

/// The batch path's committed determinism checksum for this scenario — the
/// analogue of the scalar path's legacy checksum. Any configured lane width
/// (the chain is element-wise IEEE arithmetic, identical at every W) and any
/// thread count must reproduce it; an update to this constant is a semantic
/// change to the batch chain and needs DESIGN.md §13's justification.
constexpr std::uint64_t kBatchChecksum = 0x8370b0dd7181b5c1ull;

TEST(FleetBatch, ChecksumInvariantAcrossLaneWidthsAndThreads) {
  const std::uint64_t reference =
      run_checksum(ChannelExecution::kSimdBatch, 1, 0);
  std::printf("batch checksum %016llx\n",
              static_cast<unsigned long long>(reference));
  for (int width : {0, 2, 4, 8}) {
    EXPECT_EQ(run_checksum(ChannelExecution::kSimdBatch, width, 0), reference)
        << "width " << width;
  }
  for (unsigned threads : {2u, 8u}) {
    EXPECT_EQ(run_checksum(ChannelExecution::kSimdBatch, 0, threads),
              reference)
        << threads << " threads";
  }
  if (kBatchChecksum != 0x0ull) EXPECT_EQ(reference, kBatchChecksum);
}

TEST(FleetBatch, BatchAndScalarModesIntentionallyDiverge) {
  // Guard that the lanes actually engage: the batch path draws its channel
  // noise through the branch-free Box-Muller generator, so its traces must
  // differ from the scalar reference (which stays the committed bit-identity
  // baseline — unchanged by the mode plumbing, as the legacy determinism
  // tests keep proving).
  const std::uint64_t scalar = run_checksum(ChannelExecution::kScalar, 0, 0);
  const std::uint64_t batch = run_checksum(ChannelExecution::kSimdBatch, 0, 0);
  EXPECT_NE(scalar, batch);
}

TEST(FleetBatch, MidFrameSensorFallsBackToScalarWithoutPerturbingNeighbours) {
  // Park sensor 3 mid-frame with a re-commission whose settle is not a whole
  // number of decimation frames; in batch mode it must advance through the
  // scalar path (permanently — tick phase is invariant modulo the frame)
  // while its neighbours stay in the lanes. Its trace must be bit-identical
  // to the scalar-mode run of the same scenario, and every node's RNG stream
  // position must agree across the two modes.
  // coarse ISIF: tick 62.5 µs, decimation 8. 0.0503 s → 805 ticks → phase 5.
  District d_batch = make_district();
  FleetEngine batch(d_batch.net, d_batch.placements,
                    make_config(ChannelExecution::kSimdBatch, 0));
  batch.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  batch.commission(Seconds{0.2});
  (void)batch.recommission(3, Seconds{0.0503});
  ASSERT_FALSE(batch.node(3).batch_eligible());
  ASSERT_TRUE(batch.node(2).batch_eligible());
  batch.run(Seconds{0.75});

  District d_scalar = make_district();
  FleetEngine scalar(d_scalar.net, d_scalar.placements,
                     make_config(ChannelExecution::kScalar, 0));
  scalar.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  scalar.commission(Seconds{0.2});
  (void)scalar.recommission(3, Seconds{0.0503});
  scalar.run(Seconds{0.75});

  // The mid-frame sensor took the scalar path in both runs: bit-identical.
  const auto& tb = batch.node(3).trace();
  const auto& ts = scalar.node(3).trace();
  ASSERT_EQ(tb.size(), ts.size());
  for (std::size_t k = 0; k < tb.size(); ++k) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(tb[k].bridge_voltage),
              std::bit_cast<std::uint64_t>(ts[k].bridge_voltage))
        << k;
    EXPECT_EQ(std::bit_cast<std::uint64_t>(tb[k].estimate_mps),
              std::bit_cast<std::uint64_t>(ts[k].estimate_mps))
        << k;
  }

  // Neighbours' traces differ (they took the lanes) but every node consumed
  // its turbulence stream identically — the fallback never shifts a draw.
  EXPECT_NE(std::bit_cast<std::uint64_t>(batch.node(2).trace().back().bridge_voltage),
            std::bit_cast<std::uint64_t>(scalar.node(2).trace().back().bridge_voltage));
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(batch.node(i).rng_fingerprint(),
              scalar.node(i).rng_fingerprint())
        << "sensor " << i;
}

}  // namespace
}  // namespace aqua::fleet
