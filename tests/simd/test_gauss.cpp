// The batched Gaussian generator: per-lane purity (same bits at every lane
// width and grouping), exact spare semantics against the scalar polar
// generator, bit-predictable Box-Muller output from the public math hooks,
// scalar resume after scatter, and sane first/second-moment statistics.
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "simd/gauss.hpp"
#include "util/rng.hpp"

namespace aqua::simd {
namespace {

std::vector<util::Rng::State> make_states(int n, std::uint64_t seed,
                                          int scalar_predraws_each = 0) {
  std::vector<util::Rng::State> states;
  for (int i = 0; i < n; ++i) {
    util::Rng rng = util::Rng::stream(seed, static_cast<std::uint64_t>(i));
    // Odd pre-draw counts leave a polar spare cached in the state, so the
    // batch starts from the exact mid-pair position a scalar consumer parked.
    for (int k = 0; k < scalar_predraws_each + i % 3; ++k) (void)rng.gaussian();
    states.push_back(rng.state());
  }
  return states;
}

TEST(GaussBatch, LaneWidthAndGroupingInvariant) {
  // The committed-checksum keystone: every lane is a pure function of its own
  // state, so n = 11 sensors drawn at widths 1/2/4/8 (with their ragged
  // tails) produce identical bits in every slot, draw after draw.
  const auto initial = make_states(11, 99, 1);
  std::vector<std::vector<double>> per_width;
  std::vector<std::vector<util::Rng::State>> final_states;
  for (int width : {1, 2, 4, 8}) {
    GaussBatch batch{initial, width};
    EXPECT_EQ(batch.width(), width);
    std::vector<double> draws;
    std::vector<double> out(initial.size());
    for (int round = 0; round < 7; ++round) {
      batch.draw(out);
      draws.insert(draws.end(), out.begin(), out.end());
    }
    std::vector<util::Rng::State> fin(initial.size());
    batch.scatter(fin);
    per_width.push_back(std::move(draws));
    final_states.push_back(std::move(fin));
  }
  for (std::size_t w = 1; w < per_width.size(); ++w) {
    ASSERT_EQ(per_width[w].size(), per_width[0].size());
    for (std::size_t i = 0; i < per_width[0].size(); ++i)
      EXPECT_EQ(std::bit_cast<std::uint64_t>(per_width[w][i]),
                std::bit_cast<std::uint64_t>(per_width[0][i]))
          << "width index " << w << " draw " << i;
    for (std::size_t i = 0; i < initial.size(); ++i) {
      EXPECT_EQ(final_states[w][i].s, final_states[0][i].s) << i;
      EXPECT_EQ(final_states[w][i].has_spare, final_states[0][i].has_spare)
          << i;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(final_states[w][i].spare),
                std::bit_cast<std::uint64_t>(final_states[0][i].spare))
          << i;
    }
  }
}

TEST(GaussBatch, ConsumesScalarPolarSpareFirst) {
  // After an odd number of scalar draws the state holds the polar pair's
  // second value; the batch must hand that exact value out before touching
  // the uniform stream — bit-equal to what the scalar generator would return.
  for (std::uint64_t seed : {1ull, 7ull, 1234567ull}) {
    util::Rng rng{seed};
    (void)rng.gaussian();  // cache the spare
    util::Rng control = rng;
    const double scalar_next = control.gaussian();

    const util::Rng::State st = rng.state();
    GaussBatch batch{std::span{&st, 1} /* one lane */, 1};
    std::vector<double> out(1);
    batch.draw(out);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[0]),
              std::bit_cast<std::uint64_t>(scalar_next))
        << seed;
  }
}

TEST(GaussBatch, BoxMullerPairMatchesPublicMathHooks) {
  // From a spare-free state the generator must advance the uniform stream by
  // exactly two words and produce r·cos / r·sin of the documented mapping —
  // reproduced here through the public vlog/vsincos hooks, bit for bit.
  util::Rng rng{4242};
  const util::Rng::State s0 = rng.state();
  ASSERT_FALSE(s0.has_spare);

  util::Rng uniforms;
  uniforms.set_state(s0);
  const double u1 = uniforms.uniform();
  const double u2 = uniforms.uniform();
  std::vector<double> lg(1), sn(1), cs(1);
  vlog_lanes(std::vector<double>{1.0 - u1}, lg, 1);
  vsincos_2pi_lanes(std::vector<double>{u2}, sn, cs, 1);
  const double r = std::sqrt(-2.0 * lg[0]);
  const double z0 = r * cs[0];
  const double z1 = r * sn[0];

  GaussBatch batch{std::span{&s0, 1}, 1};
  std::vector<double> out(1);
  batch.draw(out);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out[0]),
            std::bit_cast<std::uint64_t>(z0));
  batch.draw(out);  // the cached second half of the pair
  EXPECT_EQ(std::bit_cast<std::uint64_t>(out[0]),
            std::bit_cast<std::uint64_t>(z1));

  // And the uniform stream advanced by exactly the two words consumed.
  std::vector<util::Rng::State> fin(1);
  batch.scatter(fin);
  EXPECT_EQ(fin[0].s, uniforms.state().s);
}

TEST(GaussBatch, ScalarResumesCleanlyAfterScatter) {
  // A channel that leaves the batch (fault quarantine, odd tail) must keep
  // its stream: batch draws, scatter into a scalar Rng, scalar draws — the
  // whole mixed sequence replays bit-identically, and differs across lanes.
  const auto initial = make_states(5, 2026, 0);
  auto run_mixed = [&](int width) {
    GaussBatch batch{initial, width};
    std::vector<double> out(initial.size());
    batch.draw(out);
    batch.draw(out);
    std::vector<util::Rng::State> mid(initial.size());
    batch.scatter(mid);
    std::vector<double> seq;
    for (std::size_t i = 0; i < mid.size(); ++i) {
      util::Rng rng;
      rng.set_state(mid[i]);
      for (int k = 0; k < 3; ++k) seq.push_back(rng.gaussian());
    }
    return seq;
  };
  const auto a = run_mixed(1);
  const auto b = run_mixed(4);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << i;
  EXPECT_NE(std::bit_cast<std::uint64_t>(a[0]),
            std::bit_cast<std::uint64_t>(a[3]));  // lanes differ
}

TEST(GaussBatch, FirstTwoMomentsAreStandardNormal) {
  const auto initial = make_states(8, 31337, 0);
  GaussBatch batch{initial, 0};  // compiled width
  std::vector<double> out(initial.size());
  double sum = 0.0, sum2 = 0.0;
  const int rounds = 20000;
  for (int round = 0; round < rounds; ++round) {
    batch.draw(out);
    for (double v : out) {
      sum += v;
      sum2 += v * v;
    }
  }
  const double n = static_cast<double>(rounds) * 8.0;
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.01);
  EXPECT_NEAR(var, 1.0, 0.02);
}

}  // namespace
}  // namespace aqua::simd
