// The reset contract, tested as a property: reset() returns an object to its
// post-construction state — one-time part draws persist, noise/dither RNG
// streams rewind — so replaying the SAME stimulus after reset() produces
// bit-identical output. This pins every reset() in the chain (channel → CTA
// loop → fleet node) against the partially-reset-state class of bug fixed in
// this change (amp state surviving InputChannel::reset, the PI reset folding
// kp·e into the integrator).
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/cta.hpp"
#include "core/rig.hpp"
#include "fleet/sensor_node.hpp"
#include "isif/channel.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace aqua {
namespace {

using util::celsius;
using util::Rng;
using util::Seconds;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

// ---------------------------------------------------------------------------
// InputChannel: drive a deterministic sine at the modulator clock, collect
// the decimated samples, reset, replay. Codes, values and overload flags must
// match bit for bit — this fails if any of amp/LPF/ADC/CIC state (or the
// dither stream) survives the reset.
// ---------------------------------------------------------------------------

std::vector<isif::ChannelSample> run_channel(isif::InputChannel& channel,
                                             int ticks) {
  std::vector<isif::ChannelSample> samples;
  const double dt = channel.tick_period().value();
  for (int i = 0; i < ticks; ++i) {
    const double vin = 5e-3 * std::sin(2.0 * M_PI * 400.0 * i * dt);
    if (auto s = channel.tick(util::volts(vin))) samples.push_back(*s);
  }
  return samples;
}

void expect_samples_bit_identical(
    const std::vector<isif::ChannelSample>& a,
    const std::vector<isif::ChannelSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(a[k].code, b[k].code) << "sample " << k;
    ASSERT_EQ(bits(a[k].value), bits(b[k].value)) << "sample " << k;
    ASSERT_EQ(a[k].overload, b[k].overload) << "sample " << k;
  }
}

TEST(ResetReplay, InputChannelReplaysBitIdentically) {
  isif::InputChannel channel{isif::ChannelConfig{}, Rng{99}};
  const auto first = run_channel(channel, 8192);
  ASSERT_FALSE(first.empty());
  channel.reset();
  const auto replay = run_channel(channel, 8192);
  expect_samples_bit_identical(first, replay);
}

TEST(ResetReplay, InputChannelResetClearsAmplifierState) {
  // Regression for the original bug: reset() skipped amp_.reset(), so the
  // amplifier's noise streams and pole memory carried over and the replay
  // diverged. Saturate the amp first to make surviving state maximally loud.
  isif::ChannelConfig cfg;
  isif::InputChannel channel{cfg, Rng{7}};
  const auto first = run_channel(channel, 4096);
  // Slam the input to park internal state far from post-construction.
  for (int i = 0; i < 2048; ++i)
    (void)channel.tick(util::volts(cfg.amp.rail.value()));
  channel.reset();
  const auto replay = run_channel(channel, 4096);
  expect_samples_bit_identical(first, replay);
}

// ---------------------------------------------------------------------------
// CtaAnemometer: run the whole loop under a fixed environment, record the
// King's-law observables at every control tick, reset, rerun.
// ---------------------------------------------------------------------------

struct LoopSample {
  double bridge;
  double filtered;
  double direction;
};

std::vector<LoopSample> run_loop(cta::CtaAnemometer& anemo, Seconds duration,
                                 const maf::Environment& env) {
  std::vector<LoopSample> out;
  const double dt = anemo.tick_period().value();
  const auto ticks = static_cast<long long>(duration.value() / dt);
  for (long long i = 0; i < ticks; ++i) {
    anemo.tick(env);
    out.push_back({anemo.bridge_voltage(), anemo.filtered_voltage(),
                   anemo.direction_signal()});
  }
  return out;
}

void expect_loop_bit_identical(const std::vector<LoopSample>& a,
                               const std::vector<LoopSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(bits(a[k].bridge), bits(b[k].bridge)) << "tick " << k;
    ASSERT_EQ(bits(a[k].filtered), bits(b[k].filtered)) << "tick " << k;
    ASSERT_EQ(bits(a[k].direction), bits(b[k].direction)) << "tick " << k;
  }
}

maf::Environment water(double v_mps) {
  maf::Environment env;
  env.speed = util::metres_per_second(v_mps);
  env.fluid_temperature = celsius(15.0);
  env.pressure = util::bar(2.0);
  return env;
}

TEST(ResetReplay, CtaLoopReplaysBitIdentically) {
  cta::CtaAnemometer anemo{maf::MafSpec{}, cta::coarse_isif_config(),
                           cta::CtaConfig{}, Rng{20260805}};
  const auto env = water(0.8);
  const auto first = run_loop(anemo, Seconds{0.5}, env);
  ASSERT_FALSE(first.empty());
  anemo.reset();
  const auto replay = run_loop(anemo, Seconds{0.5}, env);
  expect_loop_bit_identical(first, replay);
}

TEST(ResetReplay, CtaLoopReplaysAfterCommissioningAndFlowHistory) {
  // A harsher variant: commission (which nulls the direction offset and
  // settles the loop), then run at high flow — the reset must wipe the
  // commissioning null and all loop history, not just the filters.
  cta::CtaAnemometer anemo{maf::MafSpec{}, cta::coarse_isif_config(),
                           cta::CtaConfig{}, Rng{11}};
  const auto first = run_loop(anemo, Seconds{0.4}, water(0.3));
  anemo.commission(water(0.0), Seconds{0.3});
  anemo.run(Seconds{0.4}, water(2.2));
  anemo.reset();
  const auto replay = run_loop(anemo, Seconds{0.4}, water(0.3));
  expect_loop_bit_identical(first, replay);
}

// ---------------------------------------------------------------------------
// SensorNode: the fleet-level unit. Advance a few co-simulation epochs under
// a fixed PipeState, reset, re-advance: the trace must replay bit-exactly.
// The installed fit is configuration and must survive the reset.
// ---------------------------------------------------------------------------

fleet::SensorNodeConfig node_config() {
  fleet::SensorNodeConfig cfg;
  cfg.isif = cta::coarse_isif_config();
  cfg.cta.output_cutoff = util::hertz(2.0);
  return cfg;
}

std::vector<fleet::TraceSample> advance_node(fleet::SensorNode& node,
                                             int epochs) {
  fleet::PipeState state;
  state.mean_velocity_mps = 0.9;
  state.point_velocity_mps = 1.1;
  for (int i = 0; i < epochs; ++i) node.advance(state, Seconds{0.1});
  return node.trace();
}

TEST(ResetReplay, SensorNodeReplaysBitIdenticallyAndKeepsFit) {
  fleet::SensorNode node{3, fleet::SensorPlacement{}, node_config(),
                         util::millimetres(150.0), Rng::stream(42, 3)};
  node.set_fit(cta::KingFit{0.9, 1.1, 0.5}, celsius(15.0));
  const auto first = advance_node(node, 5);
  ASSERT_EQ(first.size(), 5u);
  node.reset();
  EXPECT_TRUE(node.calibrated());  // the fit is configuration, not state
  EXPECT_TRUE(node.trace().empty());
  const auto replay = advance_node(node, 5);
  ASSERT_EQ(replay.size(), first.size());
  for (std::size_t k = 0; k < first.size(); ++k) {
    ASSERT_EQ(bits(first[k].t_s), bits(replay[k].t_s)) << "epoch " << k;
    ASSERT_EQ(bits(first[k].bridge_voltage), bits(replay[k].bridge_voltage))
        << "epoch " << k;
    ASSERT_EQ(bits(first[k].filtered_voltage), bits(replay[k].filtered_voltage))
        << "epoch " << k;
    ASSERT_EQ(bits(first[k].estimate_mps), bits(replay[k].estimate_mps))
        << "epoch " << k;
    ASSERT_EQ(first[k].direction, replay[k].direction) << "epoch " << k;
  }
}

// ---------------------------------------------------------------------------
// And the obs guarantee at the unit level: turning metrics collection on or
// off must not change a single bit of the datapath.
// ---------------------------------------------------------------------------

TEST(ResetReplay, MetricsOnOffDoesNotChangeChannelOutput) {
  isif::InputChannel channel{isif::ChannelConfig{}, Rng{5}};
  obs::Registry::set_enabled(true);
  const auto instrumented = run_channel(channel, 4096);
  channel.reset();
  obs::Registry::set_enabled(false);
  const auto dark = run_channel(channel, 4096);
  obs::Registry::set_enabled(true);
  expect_samples_bit_identical(instrumented, dark);
}

}  // namespace
}  // namespace aqua
