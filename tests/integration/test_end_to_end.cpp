// End-to-end: the full measurement chain of the paper — simulated water line,
// MAF die, ISIF platform, CTA loop, King's-law calibration against the
// reference magmeter, and the flow estimator — reproducing the headline
// behaviour (accurate, repeatable readings over 0–250 cm/s with direction).
#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.hpp"
#include "core/rig.hpp"
#include "util/stats.hpp"

namespace aqua::cta {
namespace {

using util::Seconds;

RigConfig standard_rig(std::uint64_t seed = 42) {
  RigConfig cfg;
  cfg.isif = fast_isif_config();
  cfg.line.turbulence_intensity = 0.01;
  cfg.line.hammer_bar_per_mps = 0.0;
  cfg.line.valve_tau = Seconds{0.2};
  cfg.seed = seed;
  return cfg;
}

TEST(EndToEnd, CalibratedReadingsTrackReferenceWithinTwoPercentFs) {
  VinciRig rig{standard_rig()};
  rig.commission(Seconds{1.0});
  const std::vector<double> cal_speeds{0.0, 0.15, 0.4, 0.9, 1.6, 2.5};
  const KingFit fit = rig.calibrate(cal_speeds, Seconds{0.8});
  FlowEstimator est{fit, util::metres_per_second(2.5)};

  // Probe speeds NOT in the calibration set.
  for (double mean : {0.25, 0.6, 1.2, 2.0}) {
    maf::Environment env = rig.line().environment();
    env.speed = util::metres_per_second(
        mean * rig.profile_factor_at(util::metres_per_second(mean)));
    const double u = rig.settled_voltage(env, Seconds{1.0});
    const double measured = est.speed_for(u).value();
    const double err_fs = std::abs(measured - mean) / 2.5;
    EXPECT_LT(err_fs, 0.02) << "mean " << mean << " measured " << measured;
  }
}

TEST(EndToEnd, RepeatabilityWithinOnePercentFs) {
  // Paper §5: "repeatability roughly ±1% respect to the full scale".
  VinciRig rig{standard_rig(7)};
  rig.commission(Seconds{1.0});
  maf::Environment env = rig.line().environment();
  env.speed = util::metres_per_second(1.0);
  util::RunningStats readings;
  for (int rep = 0; rep < 6; ++rep) {
    // Move away, then come back to the setpoint — a repeatability pass.
    maf::Environment away = env;
    away.speed = util::metres_per_second(rep % 2 == 0 ? 0.3 : 2.0);
    (void)rig.settled_voltage(away, Seconds{0.4});
    readings.add(rig.settled_voltage(env, Seconds{0.8}));
  }
  // Convert the voltage spread to velocity via a local slope estimate.
  const double u_lo = rig.settled_voltage(
      [&] {
        maf::Environment e = env;
        e.speed = util::metres_per_second(0.95);
        return e;
      }(),
      Seconds{0.8});
  const double u_hi = rig.settled_voltage(
      [&] {
        maf::Environment e = env;
        e.speed = util::metres_per_second(1.05);
        return e;
      }(),
      Seconds{0.8});
  const double slope = (u_hi - u_lo) / 0.1;  // V per (m/s)
  const double spread_mps = readings.half_span() / slope;
  EXPECT_LT(spread_mps / 2.5, 0.012);  // ±1% FS (with a little margin)
}

TEST(EndToEnd, DirectionSurvivesFullChain) {
  RigConfig cfg = standard_rig(9);
  cfg.cta.direction_cutoff = util::hertz(1.0);  // sign, not reporting dynamics
  VinciRig rig{cfg};
  rig.commission(Seconds{1.0});
  maf::Environment env = rig.line().environment();

  env.speed = util::metres_per_second(0.6);
  rig.anemometer().run(Seconds{1.0}, env);
  EXPECT_EQ(rig.anemometer().direction(), 1);

  env.speed = util::metres_per_second(-0.6);
  rig.anemometer().run(Seconds{1.5}, env);
  EXPECT_EQ(rig.anemometer().direction(), -1);
}

TEST(EndToEnd, BidirectionalCalibrationFixesReverseBias) {
  // In reverse flow the controlled heater rides in its twin's wake: with a
  // forward-only calibration the reverse magnitude under-reads; the reverse
  // fit restores it.
  // This test probes the static reverse transfer, not the paper's 0.1 Hz
  // reporting dynamics: faster output/direction filters settle in ~2 s of
  // loop time instead of ~25 s without changing the fitted laws.
  RigConfig cfg = standard_rig(17);
  cfg.cta.output_cutoff = util::hertz(1.0);
  cfg.cta.direction_cutoff = util::hertz(1.0);
  VinciRig rig{cfg};
  rig.commission(Seconds{1.0});
  const std::vector<double> speeds{0.0, 0.2, 0.6, 1.2, 2.0};
  const auto both = rig.calibrate_bidirectional(speeds, Seconds{0.8});
  // The wake assist means the reverse transfer sits below the forward one.
  EXPECT_LT(both.reverse.voltage(1.0), both.forward.voltage(1.0));

  FlowEstimator est{both.forward, util::metres_per_second(2.5),
                    rig.line().temperature()};
  est.set_reverse_fit(both.reverse);

  maf::Environment env = rig.line().environment();
  const double point =
      1.0 * rig.profile_factor_at(util::metres_per_second(1.0));
  env.speed = util::metres_per_second(-point);
  rig.anemometer().run(Seconds{4.0}, env);  // settle loop + output + direction
  const auto reading = est.read(rig.anemometer());
  ASSERT_EQ(reading.direction, -1);
  EXPECT_NEAR(reading.speed.value(), -1.0, 0.05);

  // Forward-only estimator on the same state under-reads the magnitude.
  FlowEstimator fwd_only{both.forward, util::metres_per_second(2.5),
                         rig.line().temperature()};
  const auto biased = fwd_only.read(rig.anemometer());
  EXPECT_LT(std::abs(biased.speed.value()), std::abs(reading.speed.value()));
}

TEST(EndToEnd, SensorReadsBelowTurbineStall) {
  // The low-flow advantage: at 5 cm/s the turbine is stalled but the hot
  // wire still resolves the flow.
  VinciRig rig{standard_rig(11)};
  rig.commission(Seconds{1.0});
  const KingFit fit =
      rig.calibrate(std::vector<double>{0.0, 0.03, 0.08, 0.2, 0.6}, Seconds{0.8});
  FlowEstimator est{fit, util::metres_per_second(2.5)};

  const double mean = 0.05;
  maf::Environment env = rig.line().environment();
  env.speed = util::metres_per_second(
      mean * rig.profile_factor_at(util::metres_per_second(mean)));
  const double measured = est.speed_for(rig.settled_voltage(env, Seconds{1.0})).value();
  EXPECT_NEAR(measured, mean, 0.03);

  // Meanwhile the turbine at this speed reads zero.
  auto& turbine = rig.turbine();
  double turbine_reading = 0.0;
  for (int i = 0; i < 2000; ++i)
    turbine_reading =
        turbine.step(util::metres_per_second(mean), Seconds{0.005}).value();
  EXPECT_DOUBLE_EQ(turbine_reading, 0.0);
}

TEST(EndToEnd, AmbientTemperatureDriftCompensatedByFirmware) {
  // Calibrate at 15 °C, measure at 22 °C. The raw King constants are
  // "ambient specific" (paper Eq. 2); the firmware rescales them from the
  // water-property ratios using the Rt ambient reading.
  VinciRig rig{standard_rig(13)};
  rig.commission(Seconds{1.0});
  const KingFit fit =
      rig.calibrate(std::vector<double>{0.0, 0.2, 0.6, 1.2, 2.0, 2.5},
                    Seconds{0.8});
  FlowEstimator est{fit, util::metres_per_second(2.5), util::celsius(15.0)};

  maf::Environment env = rig.line().environment();
  env.speed = util::metres_per_second(
      1.0 * rig.profile_factor_at(util::metres_per_second(1.0)));
  env.fluid_temperature = util::celsius(22.0);
  const double u = rig.settled_voltage(env, Seconds{1.0});

  const double raw = est.speed_for(u).value();
  const double compensated = est.speed_for(u, util::celsius(22.0)).value();
  // Compensation removes most of the property drift (the residual is the
  // film-temperature evaluation and the profile-factor shift with Re).
  EXPECT_LT(std::abs(compensated - 1.0), 0.07);
  EXPECT_LT(std::abs(compensated - 1.0), 0.6 * std::abs(raw - 1.0));
}

}  // namespace
}  // namespace aqua::cta
