#include "core/rig.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::cta {
namespace {

using util::Seconds;

RigConfig quiet_rig() {
  RigConfig cfg;
  cfg.isif = fast_isif_config();
  cfg.line.turbulence_intensity = 0.0;
  cfg.line.hammer_bar_per_mps = 0.0;
  cfg.line.valve_tau = Seconds{0.3};
  cfg.seed = 42;
  return cfg;
}

TEST(VinciRig, CoSimulationRunsAndMetersAgree) {
  VinciRig rig{quiet_rig()};
  sim::Schedule speed{0.0};
  speed.step_to(1.0, Seconds{30.0});
  rig.line().set_speed_schedule(speed);
  rig.commission(Seconds{1.5});
  rig.run(Seconds{8.0});
  EXPECT_NEAR(rig.magmeter_reading().value(), 1.0, 0.05);
  EXPECT_NEAR(rig.turbine_reading().value(), 1.0, 0.06);
  EXPECT_NEAR(rig.line().mean_velocity().value(), 1.0, 1e-3);
}

TEST(VinciRig, ProfileFactorTurbulentRange) {
  VinciRig rig{quiet_rig()};
  const double f = rig.profile_factor_at(util::metres_per_second(1.0));
  EXPECT_GT(f, 1.1);
  EXPECT_LT(f, 1.35);
}

TEST(VinciRig, CalibrationProducesPhysicalKingFit) {
  VinciRig rig{quiet_rig()};
  rig.commission(Seconds{1.5});
  const std::vector<double> speeds{0.0, 0.15, 0.4, 0.9, 1.6, 2.5};
  const KingFit fit = rig.calibrate(speeds, Seconds{1.2});
  EXPECT_GT(fit.a, 0.0);  // zero-flow intercept (natural convection floor)
  EXPECT_GT(fit.b, 0.0);
  EXPECT_GT(fit.n, 0.3);
  EXPECT_LT(fit.n, 0.75);
  // Fit quality: residual well under the zero-flow voltage.
  EXPECT_LT(fit.rms_residual, 0.1 * fit.a + 0.05);
}

TEST(VinciRig, SettledVoltageRepeatable) {
  VinciRig rig{quiet_rig()};
  rig.commission(Seconds{1.5});
  maf::Environment env = rig.line().environment();
  env.speed = util::metres_per_second(1.0);
  const double u1 = rig.settled_voltage(env, Seconds{1.5});
  const double u2 = rig.settled_voltage(env, Seconds{1.5});
  EXPECT_NEAR(u1, u2, 0.01 * u1);
}

TEST(VinciRig, ControlPeriodConsistent) {
  VinciRig rig{quiet_rig()};
  EXPECT_NEAR(rig.control_period().value(), 32.0 / 64e3, 1e-12);
}

TEST(FastIsifConfig, SameControlRateFewerTicks) {
  const auto fast = fast_isif_config();
  const isif::IsifConfig slow{};
  EXPECT_DOUBLE_EQ(fast.channel.modulator_clock.value() / fast.channel.decimation,
                   slow.channel.modulator_clock.value() / slow.channel.decimation);
  EXPECT_LT(fast.channel.modulator_clock.value(),
            slow.channel.modulator_clock.value());
}

}  // namespace
}  // namespace aqua::cta
