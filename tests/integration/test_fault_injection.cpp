// Fault injection across module boundaries: the failure modes the paper's
// packaging/driving choices guard against, driven end-to-end.
#include <gtest/gtest.h>

#include <cmath>

#include "core/drive_modes.hpp"
#include "core/rig.hpp"

namespace aqua::cta {
namespace {

using util::Seconds;

maf::Environment aggressive_water(double v = 0.3) {
  maf::Environment env;
  env.speed = util::metres_per_second(v);
  env.fluid_temperature = util::celsius(15.0);
  env.pressure = util::bar(1.0);              // low pressure: easy outgassing
  env.dissolved_gas_saturation = 1.0;
  env.chemistry = phys::WaterChemistry{320.0, 260.0, 7.9};  // hard water
  return env;
}

TEST(FaultInjection, ContinuousHighOvertemperatureGrowsBubblesAndBiasesReading) {
  // Fig. 7 failure mode: continuous bias + high ΔT at low pressure.
  CtaConfig hot;
  hot.overtemperature = util::kelvin(22.0);
  util::Rng rng{3};
  CtaAnemometer anemo{maf::MafSpec{}, coarse_isif_config(), hot, rng};
  const auto env = aggressive_water();
  anemo.run(Seconds{2.0}, env);
  const double u_clean = anemo.bridge_voltage();
  // Long exposure (fouling acts on real time; run 60 s of loop time).
  anemo.run(Seconds{60.0}, env);
  EXPECT_GT(anemo.die().fouling_a().bubble_coverage(), 0.05);
  // Insulating bubbles reduce required drive → reading sags (invalid flow).
  EXPECT_LT(anemo.bridge_voltage(), u_clean * 0.99);
}

TEST(FaultInjection, ReducedOvertemperatureStaysClean) {
  // The paper's mitigation: reduced overtemperature vs water.
  CtaConfig cool;
  cool.overtemperature = util::kelvin(5.0);
  util::Rng rng{4};
  CtaAnemometer anemo{maf::MafSpec{}, coarse_isif_config(), cool, rng};
  anemo.run(Seconds{60.0}, aggressive_water());
  EXPECT_DOUBLE_EQ(anemo.die().fouling_a().bubble_coverage(), 0.0);
}

TEST(FaultInjection, PulsedDriveReducesBubbleGrowth) {
  const auto env = aggressive_water();
  CtaConfig cont;
  cont.overtemperature = util::kelvin(22.0);
  util::Rng r1{5};
  CtaAnemometer continuous{maf::MafSpec{}, coarse_isif_config(), cont, r1};
  continuous.run(Seconds{45.0}, env);

  CtaConfig pulsed = cont;
  pulsed.pulse.enabled = true;
  pulsed.pulse.period = Seconds{0.05};
  pulsed.pulse.duty = 0.35;
  util::Rng r2{5};
  CtaAnemometer gated{maf::MafSpec{}, coarse_isif_config(), pulsed, r2};
  gated.run(Seconds{45.0}, env);

  EXPECT_LT(gated.die().fouling_a().bubble_coverage(),
            0.6 * continuous.die().fouling_a().bubble_coverage());
}

TEST(FaultInjection, PressurePeakDoesNotBreakQualifiedSensor) {
  // E9 scenario: 7 bar peak on the organic-filled membrane.
  util::Rng rng{6};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  maf::Environment env = aggressive_water(1.0);
  anemo.run(Seconds{1.0}, env);
  env.pressure = util::bar(7.0);
  anemo.run(Seconds{1.0}, env);
  env.pressure = util::bar(2.0);
  anemo.run(Seconds{1.0}, env);
  EXPECT_TRUE(anemo.status().membrane_intact);
}

TEST(FaultInjection, UnfilledMembraneDiesOnFirstPressurisation) {
  maf::MafSpec open_spec{};
  open_spec.membrane.backside_filled = false;
  util::Rng rng{7};
  CtaAnemometer anemo{open_spec, fast_isif_config(), CtaConfig{}, rng};
  maf::Environment env = aggressive_water(0.5);
  env.pressure = util::bar(2.5);  // an ordinary line pressure is fatal
  anemo.run(Seconds{0.5}, env);
  EXPECT_FALSE(anemo.status().membrane_intact);
}

TEST(FaultInjection, MonthsOfScalingOnBareDieBiasesQuasiStaticReading) {
  // Fig. 8 failure mode, quasi-static path: a bare (unpassivated) hot die in
  // hard water accumulates CaCO3; the CT supply for the same flow drifts.
  maf::MafSpec bare{};
  bare.fouling.scaling.surface_reactivity = 1.0;
  CtaConfig hot;
  hot.overtemperature = util::kelvin(25.0);
  maf::MafDie die{bare};
  maf::Environment env = aggressive_water(0.8);
  env.pressure = util::bar(2.5);  // suppress bubbles; isolate scaling

  const auto before = solve_constant_temperature(die, env, hot);
  // Three months at temperature: advance fouling with the wall held hot.
  for (int h = 0; h < 90 * 24; ++h)
    die.fouling_a().step(Seconds{3600.0},
                         util::Kelvin{env.fluid_temperature.value() + 25.0},
                         env);
  const auto after = solve_constant_temperature(die, env, hot);
  EXPECT_GT(die.fouling_a().deposit_thickness(), 0.5e-6);
  EXPECT_NE(after.supply_v, before.supply_v);
  EXPECT_LT(after.supply_v, before.supply_v);  // deposit insulates → less drive
}

TEST(FaultInjection, PassivatedLowTempDieShowsNoDrift) {
  // The paper's §5 result: "no deposit of calcium carbonate" after months.
  maf::MafSpec passivated{};  // default: SiN reactivity 0.02
  passivated.fouling.scaling.surface_reactivity = 0.02;
  CtaConfig cool;
  cool.overtemperature = util::kelvin(5.0);
  maf::MafDie die{passivated};
  maf::Environment env = aggressive_water(0.8);
  env.pressure = util::bar(2.5);

  const auto before = solve_constant_temperature(die, env, cool);
  for (int h = 0; h < 90 * 24; ++h)
    die.fouling_a().step(Seconds{3600.0},
                         util::Kelvin{env.fluid_temperature.value() + 5.0}, env);
  const auto after = solve_constant_temperature(die, env, cool);
  EXPECT_LT(die.fouling_a().deposit_thickness(), 0.1e-6);
  EXPECT_NEAR(after.supply_v, before.supply_v, 0.01 * before.supply_v);
}

TEST(FaultInjection, CorrodedPackageReportsUnhealthy) {
  maf::PackageSpec bad{};
  bad.sealing_quality = 0.1;
  bad.corrosion_rate = 5e-6;
  maf::Package pkg{bad, util::Rng{8}};
  for (int day = 0; day < 120; ++day) pkg.step(Seconds{86400.0}, util::bar(3.0));
  EXPECT_FALSE(pkg.healthy());
  EXPECT_GT(pkg.leakage_current(util::volts(4.0)).value(), 1e-7);
}

}  // namespace
}  // namespace aqua::cta
