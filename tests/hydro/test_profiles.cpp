#include "hydro/profiles.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::hydro {
namespace {

using util::celsius;
using util::metres_per_second;
using util::millimetres;

const auto kWater = phys::water_properties(celsius(15.0));

TEST(PipeReynolds, TypicalLineValues) {
  // 1 m/s in an 80 mm pipe at 15 °C: Re ≈ 70k — fully turbulent.
  const double re = pipe_reynolds(kWater, metres_per_second(1.0),
                                  millimetres(80.0));
  EXPECT_GT(re, 5e4);
  EXPECT_LT(re, 1e5);
}

TEST(ProfileFactor, LaminarCentrelineIsTwiceMean) {
  EXPECT_NEAR(centreline_factor(500.0), 2.0, 0.01);
}

TEST(ProfileFactor, TurbulentCentrelineNearOnePointTwo) {
  EXPECT_NEAR(centreline_factor(1e5), 1.224, 0.01);
}

TEST(ProfileFactor, VanishesAtWall) {
  EXPECT_LT(profile_factor(500.0, 1.0), 0.01);
  EXPECT_LT(profile_factor(1e5, 1.0), 0.2);
}

TEST(ProfileFactor, MonotoneFromAxisToWall) {
  for (double re : {500.0, 1e4, 1e6}) {
    double prev = 10.0;
    for (double r = 0.0; r <= 1.0; r += 0.1) {
      const double f = profile_factor(re, r);
      EXPECT_LE(f, prev + 1e-9) << "re " << re << " r " << r;
      prev = f;
    }
  }
}

TEST(ProfileFactor, TurbulentProfileFlatterThanLaminar) {
  // At 70 % radius, turbulent flow retains more of the mean than laminar.
  EXPECT_GT(profile_factor(1e5, 0.7), profile_factor(500.0, 0.7));
}

TEST(FrictionFactor, LaminarIs64OverRe) {
  EXPECT_NEAR(darcy_friction_factor(1000.0, 0.0), 0.064, 1e-4);
}

TEST(FrictionFactor, TurbulentSmoothPipeRange) {
  const double f = darcy_friction_factor(1e5, 1e-5);
  EXPECT_GT(f, 0.015);
  EXPECT_LT(f, 0.025);
}

TEST(FrictionFactor, RoughnessIncreasesFriction) {
  EXPECT_GT(darcy_friction_factor(1e5, 1e-3),
            darcy_friction_factor(1e5, 1e-6));
}

TEST(FrictionFactor, RejectsNegativeRoughness) {
  EXPECT_THROW((void)darcy_friction_factor(1e5, -0.1), std::invalid_argument);
}

TEST(PressureDrop, QuadraticInVelocityWhenTurbulent) {
  const auto dp1 = pressure_drop(kWater, metres_per_second(1.0),
                                 millimetres(80.0), util::metres(100.0), 1e-5);
  const auto dp2 = pressure_drop(kWater, metres_per_second(2.0),
                                 millimetres(80.0), util::metres(100.0), 1e-5);
  const double ratio = dp2.value() / dp1.value();
  EXPECT_GT(ratio, 3.4);  // slightly under 4 because f falls with Re
  EXPECT_LT(ratio, 4.0);
}

TEST(PressureDrop, SignFollowsFlowDirection) {
  const auto fwd = pressure_drop(kWater, metres_per_second(1.0),
                                 millimetres(80.0), util::metres(10.0), 1e-5);
  const auto rev = pressure_drop(kWater, metres_per_second(-1.0),
                                 millimetres(80.0), util::metres(10.0), 1e-5);
  EXPECT_GT(fwd.value(), 0.0);
  EXPECT_NEAR(rev.value(), -fwd.value(), 1e-9);
}

TEST(PressureDrop, RealisticMagnitude) {
  // 1 m/s through 100 m of 80 mm pipe: ~0.2-0.3 bar.
  const auto dp = pressure_drop(kWater, metres_per_second(1.0),
                                millimetres(80.0), util::metres(100.0), 1e-4);
  EXPECT_GT(util::to_bar(dp), 0.1);
  EXPECT_LT(util::to_bar(dp), 0.5);
}

}  // namespace
}  // namespace aqua::hydro
