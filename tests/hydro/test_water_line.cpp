#include "hydro/water_line.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::hydro {
namespace {

using util::Rng;
using util::Seconds;

WaterLineConfig quiet_line() {
  WaterLineConfig cfg;
  cfg.turbulence_intensity = 0.0;
  cfg.hammer_bar_per_mps = 0.0;
  cfg.valve_tau = Seconds{0.1};
  return cfg;
}

TEST(WaterLine, FollowsSpeedScheduleThroughValveLag) {
  WaterLine line{quiet_line(), Rng{1}};
  sim::Schedule speed{0.0};
  speed.step_to(1.0, Seconds{10.0});
  line.set_speed_schedule(speed);
  for (int i = 0; i < 100; ++i) line.step(Seconds{0.05});  // 5 s >> tau
  EXPECT_NEAR(line.mean_velocity().value(), 1.0, 1e-6);
}

TEST(WaterLine, ValveLagSlowsStep) {
  WaterLineConfig cfg = quiet_line();
  cfg.valve_tau = Seconds{2.0};
  WaterLine line{cfg, Rng{2}};
  sim::Schedule speed{0.0};
  speed.step_to(1.0, Seconds{10.0});
  line.set_speed_schedule(speed);
  line.step(Seconds{0.5});
  EXPECT_LT(line.mean_velocity().value(), 0.5);
  EXPECT_GT(line.mean_velocity().value(), 0.05);
}

TEST(WaterLine, ProbeVelocityAboveMeanOnAxis) {
  WaterLine line{quiet_line(), Rng{3}};
  sim::Schedule speed{0.0};
  speed.step_to(1.0, Seconds{30.0});
  line.set_speed_schedule(speed);
  for (int i = 0; i < 200; ++i) line.step(Seconds{0.05});
  // Turbulent profile: centreline ≈ 1.22× mean.
  EXPECT_NEAR(line.probe_velocity().value() / line.mean_velocity().value(),
              1.22, 0.05);
}

TEST(WaterLine, TurbulenceAddsFluctuation) {
  WaterLineConfig cfg = quiet_line();
  cfg.turbulence_intensity = 0.05;
  WaterLine line{cfg, Rng{4}};
  sim::Schedule speed{0.0};
  speed.step_to(1.5, Seconds{100.0});
  line.set_speed_schedule(speed);
  for (int i = 0; i < 100; ++i) line.step(Seconds{0.05});
  double min_v = 1e9, max_v = -1e9;
  for (int i = 0; i < 2000; ++i) {
    line.step(Seconds{0.01});
    const double v = line.probe_velocity().value();
    min_v = std::min(min_v, v);
    max_v = std::max(max_v, v);
  }
  EXPECT_GT(max_v - min_v, 0.05);  // visible fluctuation
  EXPECT_LT(max_v - min_v, 1.0);   // but bounded
}

TEST(WaterLine, PressureScheduleFollowed) {
  WaterLine line{quiet_line(), Rng{5}};
  sim::Schedule pressure{util::bar(2.0).value()};
  pressure.step_to(util::bar(3.0).value(), Seconds{10.0});
  line.set_pressure_schedule(pressure);
  line.step(Seconds{1.0});
  EXPECT_NEAR(util::to_bar(line.pressure()), 3.0, 1e-9);
}

TEST(WaterLine, WaterHammerSpikesOnFastValveMoves) {
  WaterLineConfig cfg = quiet_line();
  cfg.hammer_bar_per_mps = 2.0;
  cfg.valve_tau = Seconds{0.05};  // aggressive valve
  WaterLine line{cfg, Rng{6}};
  sim::Schedule speed{0.0};
  speed.step_to(2.0, Seconds{20.0});
  line.set_speed_schedule(speed);
  double peak = 0.0;
  for (int i = 0; i < 400; ++i) {
    line.step(Seconds{0.01});
    peak = std::max(peak, util::to_bar(line.pressure()));
  }
  EXPECT_GT(peak, 2.5);  // well above the 2 bar static line
  // And it decays back toward static.
  for (int i = 0; i < 1000; ++i) line.step(Seconds{0.01});
  EXPECT_NEAR(util::to_bar(line.pressure()), 2.0, 0.1);
}

TEST(WaterLine, TemperatureScheduleFollowed) {
  WaterLine line{quiet_line(), Rng{7}};
  sim::Schedule temp{util::celsius(15.0).value()};
  temp.ramp_to(util::celsius(25.0).value(), Seconds{10.0});
  line.set_temperature_schedule(temp);
  for (int i = 0; i < 100; ++i) line.step(Seconds{0.05});
  EXPECT_NEAR(util::to_celsius(line.temperature()), 20.0, 0.2);
}

TEST(WaterLine, EnvironmentSnapshotConsistent) {
  WaterLine line{quiet_line(), Rng{8}};
  sim::Schedule speed{0.0};
  speed.step_to(0.8, Seconds{60.0});
  line.set_speed_schedule(speed);
  for (int i = 0; i < 400; ++i) line.step(Seconds{0.05});
  const maf::Environment env = line.environment();
  EXPECT_DOUBLE_EQ(env.speed.value(), line.probe_velocity().value());
  EXPECT_DOUBLE_EQ(env.pressure.value(), line.pressure().value());
  EXPECT_DOUBLE_EQ(env.fluid_temperature.value(), line.temperature().value());
  EXPECT_EQ(env.medium, phys::Medium::kWater);
}

TEST(WaterLine, ClockAdvances) {
  WaterLine line{quiet_line(), Rng{9}};
  line.step(Seconds{0.25});
  line.step(Seconds{0.25});
  EXPECT_DOUBLE_EQ(line.now().value(), 0.5);
}

}  // namespace
}  // namespace aqua::hydro
