#include "hydro/network.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "hydro/profiles.hpp"
#include "phys/fluid.hpp"

namespace aqua::hydro {
namespace {

using util::metres;
using util::millimetres;

TEST(WaterNetwork, SinglePipeDeliversDemand) {
  WaterNetwork net;
  const auto res = net.add_reservoir(50.0);
  const auto j = net.add_junction(0.0, 0.01);  // 10 L/s
  const auto p = net.add_pipe(res, j, metres(500.0), millimetres(150.0));
  ASSERT_TRUE(net.solve());
  EXPECT_NEAR(net.pipe_flow(p), 0.01, 1e-6);
  EXPECT_LT(net.node_head(j), 50.0);  // head loss along the pipe
  EXPECT_GT(net.node_head(j), 0.0);
}

TEST(WaterNetwork, HeadLossMatchesDarcyWeisbach) {
  WaterNetwork net;
  const auto res = net.add_reservoir(80.0);
  const auto j = net.add_junction(0.0, 0.02);
  net.add_pipe(res, j, metres(1000.0), millimetres(200.0), 0.1);
  ASSERT_TRUE(net.solve());
  const double v = net.pipe_velocity(0).value();
  const auto props = phys::water_properties(util::celsius(15.0));
  const auto dp = pressure_drop(props, util::MetresPerSecond{v},
                                millimetres(200.0), metres(1000.0),
                                0.1e-3 / 0.2);
  const double head_loss_m = dp.value() / (props.density * 9.80665);
  EXPECT_NEAR(80.0 - net.node_head(j), head_loss_m, 0.05 * head_loss_m + 0.01);
}

TEST(WaterNetwork, ParallelPipesShareFlow) {
  WaterNetwork net;
  const auto res = net.add_reservoir(60.0);
  const auto j = net.add_junction(0.0, 0.03);
  const auto p1 = net.add_pipe(res, j, metres(800.0), millimetres(150.0));
  const auto p2 = net.add_pipe(res, j, metres(800.0), millimetres(150.0));
  ASSERT_TRUE(net.solve());
  EXPECT_NEAR(net.pipe_flow(p1), net.pipe_flow(p2), 1e-6);
  EXPECT_NEAR(net.pipe_flow(p1) + net.pipe_flow(p2), 0.03, 1e-5);
}

TEST(WaterNetwork, WiderPipeCarriesMore) {
  WaterNetwork net;
  const auto res = net.add_reservoir(60.0);
  const auto j = net.add_junction(0.0, 0.03);
  const auto narrow = net.add_pipe(res, j, metres(800.0), millimetres(100.0));
  const auto wide = net.add_pipe(res, j, metres(800.0), millimetres(200.0));
  ASSERT_TRUE(net.solve());
  EXPECT_GT(net.pipe_flow(wide), 3.0 * net.pipe_flow(narrow));
}

TEST(WaterNetwork, MassConservationAtJunctions) {
  // Y network: reservoir → A → {B, C} with demands at B and C.
  WaterNetwork net;
  const auto res = net.add_reservoir(70.0);
  const auto a = net.add_junction(0.0, 0.0);
  const auto b = net.add_junction(0.0, 0.008);
  const auto c = net.add_junction(0.0, 0.012);
  const auto p_in = net.add_pipe(res, a, metres(300.0), millimetres(200.0));
  const auto p_b = net.add_pipe(a, b, metres(400.0), millimetres(150.0));
  const auto p_c = net.add_pipe(a, c, metres(400.0), millimetres(150.0));
  ASSERT_TRUE(net.solve());
  EXPECT_NEAR(net.pipe_flow(p_in), net.pipe_flow(p_b) + net.pipe_flow(p_c),
              1e-6);
  EXPECT_NEAR(net.pipe_flow(p_in), 0.02, 1e-5);
}

TEST(WaterNetwork, LeakIncreasesInflowAndDropsPressure) {
  WaterNetwork net;
  const auto res = net.add_reservoir(50.0);
  const auto a = net.add_junction(0.0, 0.005);
  const auto b = net.add_junction(0.0, 0.005);
  const auto p_in = net.add_pipe(res, a, metres(600.0), millimetres(150.0));
  net.add_pipe(a, b, metres(600.0), millimetres(100.0));
  ASSERT_TRUE(net.solve());
  const double inflow_before = net.pipe_flow(p_in);
  const double head_before = net.node_head(b);

  net.set_leak(b, 5e-4);
  ASSERT_TRUE(net.solve());
  EXPECT_GT(net.pipe_flow(p_in), inflow_before + 1e-4);
  EXPECT_LT(net.node_head(b), head_before);
  EXPECT_GT(net.leak_flow(b), 0.0);
  EXPECT_NEAR(net.total_outflow(), net.pipe_flow(p_in), 1e-5);
}

TEST(WaterNetwork, LoopNetworkConverges) {
  // Classic two-loop grid.
  WaterNetwork net;
  const auto res = net.add_reservoir(60.0);
  const auto n1 = net.add_junction(0.0, 0.005);
  const auto n2 = net.add_junction(0.0, 0.01);
  const auto n3 = net.add_junction(0.0, 0.005);
  const auto n4 = net.add_junction(0.0, 0.01);
  net.add_pipe(res, n1, metres(200.0), millimetres(200.0));
  net.add_pipe(n1, n2, metres(400.0), millimetres(150.0));
  net.add_pipe(n1, n3, metres(400.0), millimetres(150.0));
  net.add_pipe(n2, n4, metres(400.0), millimetres(100.0));
  net.add_pipe(n3, n4, metres(400.0), millimetres(100.0));
  net.add_pipe(n2, n3, metres(300.0), millimetres(100.0));
  ASSERT_TRUE(net.solve());
  // All junction heads below the reservoir, all positive.
  for (auto n : {n1, n2, n3, n4}) {
    EXPECT_LT(net.node_head(n), 60.0);
    EXPECT_GT(net.node_head(n), 0.0);
  }
}

TEST(WaterNetwork, PipeVelocityConsistentWithFlow) {
  WaterNetwork net;
  const auto res = net.add_reservoir(40.0);
  const auto j = net.add_junction(0.0, 0.01);
  const auto p = net.add_pipe(res, j, metres(100.0), millimetres(100.0));
  ASSERT_TRUE(net.solve());
  const double area = 3.14159265358979 * 0.25 * 0.1 * 0.1;
  EXPECT_NEAR(net.pipe_velocity(p).value(), net.pipe_flow(p) / area, 1e-9);
}

TEST(WaterNetwork, ClosedPipeCarriesNoFlow) {
  // Isolation valves: the "isolated" step of the paper's §6 vision.
  WaterNetwork net;
  const auto res = net.add_reservoir(60.0);
  const auto j = net.add_junction(0.0, 0.02);
  const auto p1 = net.add_pipe(res, j, metres(500.0), millimetres(150.0));
  const auto p2 = net.add_pipe(res, j, metres(500.0), millimetres(150.0));
  ASSERT_TRUE(net.solve());
  EXPECT_GT(net.pipe_flow(p2), 0.005);

  net.set_pipe_open(p2, false);
  ASSERT_TRUE(net.solve());
  EXPECT_TRUE(net.pipe_open(p1));
  EXPECT_FALSE(net.pipe_open(p2));
  EXPECT_NEAR(net.pipe_flow(p2), 0.0, 1e-9);
  EXPECT_NEAR(net.pipe_flow(p1), 0.02, 1e-4);  // all demand reroutes

  net.set_pipe_open(p2, true);
  ASSERT_TRUE(net.solve());
  EXPECT_GT(net.pipe_flow(p2), 0.005);
}

TEST(WaterNetwork, IsolatingALeakStopsIt) {
  WaterNetwork net;
  const auto res = net.add_reservoir(50.0);
  const auto a = net.add_junction(0.0, 0.004);
  const auto b = net.add_junction(0.0, 0.0);
  (void)net.add_pipe(res, a, metres(400.0), millimetres(150.0));
  const auto spur = net.add_pipe(a, b, metres(300.0), millimetres(80.0));
  net.set_leak(b, 1e-3);
  ASSERT_TRUE(net.solve());
  EXPECT_GT(net.leak_flow(b), 1e-3);

  net.set_pipe_open(spur, false);  // close the spur feeding the burst
  ASSERT_TRUE(net.solve());
  // Node b depressurises; the leak loses its supply.
  EXPECT_NEAR(net.leak_flow(b), 0.0, 1e-4);
}

TEST(WaterNetwork, DemandScalingDiurnalPattern) {
  WaterNetwork net;
  const auto res = net.add_reservoir(50.0);
  const auto j = net.add_junction(0.0, 0.01);
  const auto p = net.add_pipe(res, j, metres(400.0), millimetres(150.0));
  ASSERT_TRUE(net.solve());
  const double day_flow = net.pipe_flow(p);
  net.scale_demands(0.3);  // night
  ASSERT_TRUE(net.solve());
  EXPECT_NEAR(net.pipe_flow(p), 0.3 * day_flow, 1e-4);
  EXPECT_THROW(net.scale_demands(-1.0), std::invalid_argument);
}

TEST(WaterNetwork, Validation) {
  WaterNetwork net;
  const auto res = net.add_reservoir(10.0);
  const auto j = net.add_junction(0.0);
  EXPECT_THROW((void)net.add_pipe(res, res, metres(1.0), millimetres(100.0)),
               std::invalid_argument);
  EXPECT_THROW((void)net.add_pipe(res, 99, metres(1.0), millimetres(100.0)),
               std::invalid_argument);
  EXPECT_THROW(net.set_demand(res, 0.1), std::invalid_argument);
  EXPECT_THROW(net.set_leak(res, 0.1), std::invalid_argument);
  EXPECT_THROW(net.set_leak(j, -0.1), std::invalid_argument);
  WaterNetwork no_res;
  no_res.add_junction(0.0, 0.01);
  EXPECT_THROW((void)no_res.solve(), std::logic_error);
}

}  // namespace
}  // namespace aqua::hydro
