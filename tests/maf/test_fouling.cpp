#include "maf/fouling.hpp"

#include <gtest/gtest.h>

namespace aqua::maf {
namespace {

using util::celsius;
using util::Kelvin;
using util::Seconds;

Environment line_env(double pressure_bar = 1.0) {
  Environment env;
  env.fluid_temperature = celsius(15.0);
  env.pressure = util::bar(pressure_bar);
  env.dissolved_gas_saturation = 1.0;
  env.chemistry = phys::WaterChemistry{300.0, 250.0, 7.8};  // hard water
  return env;
}

Kelvin wall(double overtemp_k) { return Kelvin{celsius(15.0).value() + overtemp_k}; }

TEST(Fouling, CleanStateInitially) {
  FoulingState f;
  EXPECT_DOUBLE_EQ(f.bubble_coverage(), 0.0);
  EXPECT_DOUBLE_EQ(f.deposit_thickness(), 0.0);
  EXPECT_DOUBLE_EQ(f.convection_factor(), 1.0);
}

TEST(Fouling, BubblesGrowAboveOnset) {
  FoulingState f;
  const auto env = line_env(1.0);
  // Onset at 1 bar, air-saturated ≈ 16 K; drive at 30 K overtemp.
  for (int i = 0; i < 1000; ++i) f.step(Seconds{0.1}, wall(30.0), env);
  EXPECT_GT(f.bubble_coverage(), 0.3);
  EXPECT_LT(f.convection_factor(), 0.8);
}

TEST(Fouling, NoBubblesBelowOnset) {
  FoulingState f;
  const auto env = line_env(1.0);
  for (int i = 0; i < 1000; ++i) f.step(Seconds{0.1}, wall(8.0), env);
  EXPECT_DOUBLE_EQ(f.bubble_coverage(), 0.0);
}

TEST(Fouling, PressureSuppressesBubbles) {
  FoulingState lo, hi;
  for (int i = 0; i < 1000; ++i) {
    lo.step(Seconds{0.1}, wall(25.0), line_env(1.0));
    hi.step(Seconds{0.1}, wall(25.0), line_env(3.0));
  }
  EXPECT_GT(lo.bubble_coverage(), 0.2);
  EXPECT_DOUBLE_EQ(hi.bubble_coverage(), 0.0);
}

TEST(Fouling, FlowShearShedsBubbles) {
  Environment still = line_env(1.0);
  Environment flowing = line_env(1.0);
  flowing.speed = util::metres_per_second(2.0);
  FoulingState a, b;
  for (int i = 0; i < 2000; ++i) {
    a.step(Seconds{0.1}, wall(25.0), still);
    b.step(Seconds{0.1}, wall(25.0), flowing);
  }
  EXPECT_GT(a.bubble_coverage(), 2.0 * b.bubble_coverage());
}

TEST(Fouling, BubblesDetachWhenWallCools) {
  FoulingState f;
  const auto env = line_env(1.0);
  for (int i = 0; i < 1000; ++i) f.step(Seconds{0.1}, wall(30.0), env);
  const double covered = f.bubble_coverage();
  for (int i = 0; i < 2000; ++i) f.step(Seconds{0.1}, wall(2.0), env);
  EXPECT_LT(f.bubble_coverage(), 0.2 * covered);
}

TEST(Fouling, CoverageBounded) {
  FoulingState f;
  const auto env = line_env(1.0);
  for (int i = 0; i < 50000; ++i) f.step(Seconds{0.1}, wall(60.0), env);
  EXPECT_LE(f.bubble_coverage(), 0.95);
}

TEST(Fouling, DepositGrowsOnHotWallInHardWater) {
  FoulingParameters params;
  params.scaling.surface_reactivity = 1.0;  // bare surface
  FoulingState f{params};
  const auto env = line_env(2.0);
  // A week at 25 K overtemperature, big steps (quasi-static usage).
  for (int i = 0; i < 7 * 24; ++i) f.step(Seconds{3600.0}, wall(25.0), env);
  EXPECT_GT(f.deposit_thickness(), 0.3e-6);  // sub-micron to micron scale
  EXPECT_GT(f.deposit_resistance(util::SquareMetres{4e-9}), 0.0);
}

TEST(Fouling, PassivationSuppressesDeposit) {
  FoulingParameters bare;
  bare.scaling.surface_reactivity = 1.0;
  FoulingParameters sin_passivated;
  sin_passivated.scaling.surface_reactivity = 0.02;
  FoulingState a{bare}, b{sin_passivated};
  const auto env = line_env(2.0);
  for (int i = 0; i < 30 * 24; ++i) {
    a.step(Seconds{3600.0}, wall(25.0), env);
    b.step(Seconds{3600.0}, wall(25.0), env);
  }
  EXPECT_GT(a.deposit_thickness(), 10.0 * b.deposit_thickness());
}

TEST(Fouling, LowOvertemperatureBarelyScales) {
  FoulingParameters bare;
  bare.scaling.surface_reactivity = 1.0;
  FoulingState hot{bare}, cool{bare};
  const auto env = line_env(2.0);
  for (int i = 0; i < 30 * 24; ++i) {
    hot.step(Seconds{3600.0}, wall(30.0), env);
    cool.step(Seconds{3600.0}, wall(5.0), env);
  }
  EXPECT_GT(hot.deposit_thickness(), cool.deposit_thickness());
}

TEST(Fouling, CleanResets) {
  FoulingState f;
  const auto env = line_env(1.0);
  for (int i = 0; i < 500; ++i) f.step(Seconds{0.1}, wall(30.0), env);
  f.clean();
  EXPECT_DOUBLE_EQ(f.bubble_coverage(), 0.0);
  EXPECT_DOUBLE_EQ(f.deposit_thickness(), 0.0);
}

}  // namespace
}  // namespace aqua::maf
