#include "maf/die.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::maf {
namespace {

using util::celsius;
using util::metres_per_second;
using util::Seconds;
using util::watts;

Environment still_water() {
  Environment env;
  env.speed = metres_per_second(0.0);
  env.fluid_temperature = celsius(15.0);
  env.pressure = util::bar(2.0);
  return env;
}

TEST(MafDie, ColdDieMatchesDatasheetResistances) {
  MafDie die{MafSpec{}};
  die.settle(still_water());
  // Unpowered die at 15 °C fluid: Rh = 50·(1 + 3.3e-3·(15−20)).
  EXPECT_NEAR(die.heater_a_resistance().value(), 50.0 * (1.0 - 3.3e-3 * 5.0),
              1e-6);
  EXPECT_NEAR(die.reference_resistance().value(),
              2000.0 * (1.0 - 3.3e-3 * 5.0), 1e-3);
}

TEST(MafDie, ToleranceDrawsWithinSpec) {
  util::Rng rng{21};
  for (int i = 0; i < 50; ++i) {
    MafDie die{MafSpec{}, rng};
    die.settle(still_water());
    EXPECT_NEAR(die.heater_a_resistance().value(), 49.175, 0.55);
    EXPECT_NEAR(die.reference_resistance().value(), 1967.0, 31.0);
  }
}

TEST(MafDie, PowerRaisesHeaterTemperature) {
  MafDie die{MafSpec{}};
  die.set_heater_powers(watts(0.005), watts(0.0), watts(0.0));
  die.settle(still_water());
  const auto t = die.temperatures();
  EXPECT_GT(t.heater_a.value(), celsius(16.0).value());
  EXPECT_NEAR(t.heater_b.value(), t.reference.value(), 3.0);  // B barely warms
}

TEST(MafDie, FlowCoolsTheHeater) {
  MafDie die{MafSpec{}};
  die.set_heater_powers(watts(0.005), watts(0.0), watts(0.0));
  Environment env = still_water();
  die.settle(env);
  const double t_still = die.temperatures().heater_a.value();
  env.speed = metres_per_second(1.0);
  die.settle(env);
  const double t_flow = die.temperatures().heater_a.value();
  EXPECT_LT(t_flow, t_still - 1.0);
}

TEST(MafDie, ResistanceTracksTemperature) {
  MafDie die{MafSpec{}};
  die.set_heater_powers(watts(0.004), watts(0.0), watts(0.0));
  die.settle(still_water());
  const double r_hot = die.heater_a_resistance().value();
  const double t_hot = die.temperatures().heater_a.value();
  const double expected =
      50.0 * (1.0 + 3.3e-3 * (t_hot - celsius(20.0).value()));
  EXPECT_NEAR(r_hot, expected, 1e-9);
}

TEST(MafDie, WakeWarmsDownstreamHeater) {
  MafDie die{MafSpec{}};
  Environment env = still_water();
  env.speed = metres_per_second(0.5);
  die.set_heater_powers(watts(0.004), watts(0.004), watts(0.0));
  die.settle(env);
  const auto fwd = die.temperatures();
  EXPECT_GT(fwd.heater_b.value(), fwd.heater_a.value() + 0.1);

  env.speed = metres_per_second(-0.5);
  die.settle(env);
  const auto rev = die.temperatures();
  EXPECT_GT(rev.heater_a.value(), rev.heater_b.value() + 0.1);
}

TEST(MafDie, WakeAsymmetryGrowsWithSpeedThenSaturates) {
  MafDie die{MafSpec{}};
  die.set_heater_powers(watts(0.004), watts(0.004), watts(0.0));
  auto imbalance = [&](double v) {
    Environment env = still_water();
    env.speed = metres_per_second(v);
    die.settle(env);
    const auto t = die.temperatures();
    return t.heater_b.value() - t.heater_a.value();
  };
  const double d_slow = imbalance(0.05);
  const double d_mid = imbalance(0.5);
  const double d_fast = imbalance(2.5);
  EXPECT_GT(d_mid, d_slow);
  // Saturation: the 0.5→2.5 gain is much smaller than the 0.05→0.5 gain.
  EXPECT_LT(d_fast - d_mid, d_mid - d_slow);
}

TEST(MafDie, StepConvergesToSettle) {
  MafDie die_a{MafSpec{}};
  MafDie die_b{MafSpec{}};
  Environment env = still_water();
  env.speed = metres_per_second(0.7);
  die_a.set_heater_powers(watts(0.005), watts(0.005), watts(0.001));
  die_b.set_heater_powers(watts(0.005), watts(0.005), watts(0.001));
  for (int i = 0; i < 200000; ++i) die_a.step(Seconds{5e-6}, env);
  die_b.settle(env);
  EXPECT_NEAR(die_a.temperatures().heater_a.value(),
              die_b.temperatures().heater_a.value(), 0.01);
}

TEST(MafDie, ThermalTimeConstantIsFast) {
  // Paper §4: "the response times are reasonably short, even in water".
  MafDie die{MafSpec{}};
  Environment env = still_water();
  env.speed = metres_per_second(1.0);
  die.settle(env);
  die.set_heater_powers(watts(0.005), watts(0.0), watts(0.0));
  // Step the power on and find the 63% rise time.
  die.settle(env);
  const double t_final = die.temperatures().heater_a.value();
  MafDie fresh{MafSpec{}};
  fresh.settle(env);
  const double t0 = fresh.temperatures().heater_a.value();
  fresh.set_heater_powers(watts(0.005), watts(0.0), watts(0.0));
  double elapsed = 0.0;
  while (fresh.temperatures().heater_a.value() <
             t0 + 0.632 * (t_final - t0) &&
         elapsed < 1.0) {
    fresh.step(Seconds{2e-6}, env);
    elapsed += 2e-6;
  }
  EXPECT_LT(elapsed, 0.01);  // well under 10 ms in water
}

TEST(MafDie, OverpressureBreaksMembraneAndLatches) {
  MafDie die{MafSpec{}};
  Environment env = still_water();
  env.pressure = util::bar(120.0);  // far beyond the qualified range
  die.step(Seconds{1e-5}, env);
  EXPECT_FALSE(die.membrane_intact());
  EXPECT_GT(die.heater_a_resistance().value(), 1e8);  // open circuit
  env.pressure = util::bar(1.0);  // damage is permanent
  die.step(Seconds{1e-5}, env);
  EXPECT_FALSE(die.membrane_intact());
}

TEST(MafDie, QualifiedPressureRangeSurvives) {
  MafDie die{MafSpec{}};
  Environment env = still_water();
  env.pressure = util::bar(7.0);  // the paper's peak
  for (int i = 0; i < 100; ++i) die.step(Seconds{1e-4}, env);
  EXPECT_TRUE(die.membrane_intact());
}

TEST(MafDie, CleanFilmConductanceGrowsWithSpeed) {
  MafDie die{MafSpec{}};
  Environment env = still_water();
  const auto wall = celsius(20.0);
  env.speed = metres_per_second(0.1);
  const double g1 = die.clean_film_conductance(env, wall);
  env.speed = metres_per_second(2.0);
  const double g2 = die.clean_film_conductance(env, wall);
  EXPECT_GT(g2, g1 * 1.5);
}

TEST(MafDie, AirModeHasMuchLowerConductance) {
  MafDie die{MafSpec{}};
  Environment water = still_water();
  Environment air = still_water();
  air.medium = phys::Medium::kAir;
  water.speed = air.speed = metres_per_second(1.0);
  const auto wall = celsius(40.0);
  EXPECT_GT(die.clean_film_conductance(water, wall),
            10.0 * die.clean_film_conductance(air, wall));
}

}  // namespace
}  // namespace aqua::maf
