#include "maf/package.hpp"

#include <gtest/gtest.h>

namespace aqua::maf {
namespace {

using util::bar;
using util::Rng;
using util::Seconds;
using util::volts;

TEST(Package, SealedAssemblyStaysHealthyForMonths) {
  // Paper §5: "no corrosion or pollution on the surface after several months
  // of test".
  Package pkg{PackageSpec{}, Rng{1}};
  for (int day = 0; day < 180; ++day) pkg.step(Seconds{86400.0}, bar(2.5));
  EXPECT_TRUE(pkg.healthy());
  EXPECT_GT(pkg.insulation_resistance().value(), 1e8);
  EXPECT_LT(pkg.corrosion(), 0.05);
}

TEST(Package, DefectiveSealDegrades) {
  PackageSpec bad{};
  bad.sealing_quality = 0.2;
  bad.corrosion_rate = 2e-6;
  Package pkg{bad, Rng{2}};
  for (int day = 0; day < 180; ++day) pkg.step(Seconds{86400.0}, bar(2.5));
  EXPECT_FALSE(pkg.healthy());
}

TEST(Package, LeakageCurrentFollowsInsulation) {
  Package pkg{PackageSpec{}, Rng{3}};
  const double i0 = pkg.leakage_current(volts(5.0)).value();
  EXPECT_NEAR(i0, 5.0 / 5e9, 1e-12);
}

TEST(Package, PressureAcceleratesIngress) {
  PackageSpec leaky{};
  leaky.sealing_quality = 0.9;
  Package low{leaky, Rng{4}}, high{leaky, Rng{4}};
  for (int i = 0; i < 150; ++i) {  // a week, before either path saturates
    low.step(Seconds{3600.0}, bar(0.5));
    high.step(Seconds{3600.0}, bar(6.0));
  }
  EXPECT_LT(high.insulation_resistance().value(),
            0.5 * low.insulation_resistance().value());
}

TEST(Package, ContactResistanceGrowsWithCorrosion) {
  PackageSpec bad{};
  bad.sealing_quality = 0.0;
  bad.corrosion_rate = 1e-5;
  Package pkg{bad, Rng{5}};
  const double r0 = pkg.contact_resistance().value();
  for (int i = 0; i < 50000; ++i) pkg.step(Seconds{3600.0}, bar(3.0));
  EXPECT_GT(pkg.contact_resistance().value(), r0 + 1.0);
}

TEST(Package, AddedTurbulenceSmallAndSaturating) {
  // Paper §4: the smoothed head introduces "low perturbations in the flow".
  Package pkg{PackageSpec{}, Rng{6}};
  const double t_low = pkg.added_turbulence(util::metres_per_second(0.1));
  const double t_mid = pkg.added_turbulence(util::metres_per_second(1.0));
  const double t_high = pkg.added_turbulence(util::metres_per_second(3.0));
  EXPECT_LT(t_high, 0.05);
  EXPECT_GT(t_mid, t_low);
  EXPECT_LT(t_high - t_mid, t_mid - t_low);
}

TEST(Package, Validation) {
  PackageSpec bad{};
  bad.sealing_quality = 1.5;
  EXPECT_THROW((Package{bad, Rng{1}}), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::maf
