// Unit tests for the obs/ telemetry layer: registry semantics (idempotent
// registration, enable switch, zeroing), histogram binning edge cases,
// cross-thread shard merge + donation, and the JSON exporter.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace {

using namespace aqua;

const obs::CounterSnapshot* find_counter(const obs::Snapshot& snap,
                                         const std::string& name) {
  for (const auto& c : snap.counters)
    if (c.name == name) return &c;
  return nullptr;
}

const obs::GaugeSnapshot* find_gauge(const obs::Snapshot& snap,
                                     const std::string& name) {
  for (const auto& g : snap.gauges)
    if (g.name == name) return &g;
  return nullptr;
}

const obs::HistogramSnapshot* find_histogram(const obs::Snapshot& snap,
                                             const std::string& name) {
  for (const auto& h : snap.histograms)
    if (h.name == name) return &h;
  return nullptr;
}

std::uint64_t counter_value(const std::string& name) {
  const auto snap = obs::Registry::instance().snapshot();
  const auto* c = find_counter(snap, name);
  return c != nullptr ? c->value : 0;
}

TEST(ObsCounter, AddsAndSnapshotsByName) {
  const obs::Counter counter{"test.counter.basic"};
  const std::uint64_t before = counter_value("test.counter.basic");
  counter.add();
  counter.add(41);
  EXPECT_EQ(counter_value("test.counter.basic"), before + 42);
}

TEST(ObsCounter, RegistrationIsIdempotent) {
  const obs::Counter a{"test.counter.shared"};
  const obs::Counter b{"test.counter.shared"};  // same slot
  const std::uint64_t before = counter_value("test.counter.shared");
  a.add(1);
  b.add(2);
  EXPECT_EQ(counter_value("test.counter.shared"), before + 3);

  const auto snap = obs::Registry::instance().snapshot();
  int seen = 0;
  for (const auto& c : snap.counters)
    if (c.name == "test.counter.shared") ++seen;
  EXPECT_EQ(seen, 1);
}

TEST(ObsCounter, DisabledCollectionDropsUpdates) {
  const obs::Counter counter{"test.counter.gated"};
  const std::uint64_t before = counter_value("test.counter.gated");
  obs::Registry::set_enabled(false);
  counter.add(100);
  obs::Registry::set_enabled(true);
  EXPECT_EQ(counter_value("test.counter.gated"), before);
  counter.add(1);
  EXPECT_EQ(counter_value("test.counter.gated"), before + 1);
}

TEST(ObsGauge, LastWriteWinsAcrossThreads) {
  const obs::Gauge gauge{"test.gauge.lww"};
  gauge.set(1.5);
  // A later write from another thread (its own shard) must win the merge.
  std::thread([&] { gauge.set(2.5); }).join();
  const auto snap = obs::Registry::instance().snapshot();
  const auto* g = find_gauge(snap, "test.gauge.lww");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->value, 2.5);
}

TEST(ObsHistogram, LinearBinningAndOverflow) {
  const obs::HistogramSpec spec{0.0, 10.0, 10, false};
  const obs::Histogram h{"test.hist.linear", spec};

  h.observe(-1.0);  // underflow
  h.observe(0.0);   // first bin
  h.observe(4.999); // bin 5 (index 5 in counts: [0]=under)
  h.observe(9.999); // last regular bin
  h.observe(10.0);  // at hi → overflow
  h.observe(1e9);   // overflow
  h.observe(std::numeric_limits<double>::quiet_NaN());  // underflow (by contract)

  const auto snap = obs::Registry::instance().snapshot();
  const auto* hs = find_histogram(snap, "test.hist.linear");
  ASSERT_NE(hs, nullptr);
  ASSERT_EQ(hs->counts.size(), 12u);
  EXPECT_EQ(hs->counts.front(), 2u);  // -1 and NaN
  EXPECT_EQ(hs->counts.back(), 2u);   // 10.0 and 1e9
  EXPECT_EQ(hs->counts[1], 1u);       // 0.0
  EXPECT_EQ(hs->counts[5], 1u);       // 4.999
  EXPECT_EQ(hs->counts[10], 1u);      // 9.999
  EXPECT_EQ(hs->count, 7u);
  EXPECT_EQ(hs->min, -1.0);
  EXPECT_EQ(hs->max, 1e9);
  ASSERT_EQ(hs->upper_edges.size(), 10u);
  EXPECT_DOUBLE_EQ(hs->upper_edges.front(), 1.0);
  EXPECT_DOUBLE_EQ(hs->upper_edges.back(), 10.0);
}

TEST(ObsHistogram, LogBinningCoversDecadesEvenly) {
  const obs::HistogramSpec spec{1e-3, 1.0, 3, true};  // one bin per decade
  const obs::Histogram h{"test.hist.log", spec};
  h.observe(2e-3);   // decade [1e-3, 1e-2)
  h.observe(2e-2);   // decade [1e-2, 1e-1)
  h.observe(0.2);    // decade [1e-1, 1)
  const auto snap = obs::Registry::instance().snapshot();
  const auto* hs = find_histogram(snap, "test.hist.log");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->counts[1], 1u);
  EXPECT_EQ(hs->counts[2], 1u);
  EXPECT_EQ(hs->counts[3], 1u);
  EXPECT_NEAR(hs->upper_edges[0], 1e-2, 1e-12);
  EXPECT_NEAR(hs->upper_edges[1], 1e-1, 1e-12);
  EXPECT_DOUBLE_EQ(hs->upper_edges[2], 1.0);  // pinned exactly to hi
}

TEST(ObsHistogram, SpecIsFixedByFirstRegistration) {
  const obs::HistogramSpec first{0.0, 1.0, 4, false};
  const obs::Histogram a{"test.hist.fixed_spec", first};
  // A second registration with a different spec maps to the same metric and
  // keeps the original binning.
  const obs::Histogram b{"test.hist.fixed_spec",
                         obs::HistogramSpec{0.0, 100.0, 8, false}};
  b.observe(0.5);
  const auto snap = obs::Registry::instance().snapshot();
  const auto* hs = find_histogram(snap, "test.hist.fixed_spec");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->spec.bins, 4);
  EXPECT_DOUBLE_EQ(hs->spec.hi, 1.0);
}

TEST(ObsHistogram, RejectsBadSpecs) {
  EXPECT_THROW(obs::Histogram("test.hist.bad_range",
                              obs::HistogramSpec{1.0, 1.0, 4, false}),
               std::invalid_argument);
  EXPECT_THROW(obs::Histogram("test.hist.bad_log_lo",
                              obs::HistogramSpec{0.0, 1.0, 4, true}),
               std::invalid_argument);
  EXPECT_THROW(obs::Histogram("test.hist.bad_bins",
                              obs::HistogramSpec{0.0, 1.0, 0, false}),
               std::invalid_argument);
}

TEST(ObsShards, ThreadTotalsMergeAndSurviveThreadExit) {
  const obs::Counter counter{"test.counter.threads"};
  const std::uint64_t before = counter_value("test.counter.threads");

  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) counter.add(1);
    });
  for (auto& t : threads) t.join();

  // All worker threads have exited; their shards were donated to the free
  // list and must still contribute to the merged total.
  EXPECT_EQ(counter_value("test.counter.threads"),
            before + kThreads * kPerThread);
}

TEST(ObsRegistry, ZeroClearsEveryMetricKind) {
  const obs::Counter counter{"test.zero.counter"};
  const obs::Gauge gauge{"test.zero.gauge"};
  const obs::Histogram hist{"test.zero.hist",
                            obs::HistogramSpec{0.0, 1.0, 4, false}};
  counter.add(5);
  gauge.set(3.0);
  hist.observe(0.5);
  obs::Registry::instance().zero();

  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_EQ(find_counter(snap, "test.zero.counter")->value, 0u);
  EXPECT_EQ(find_gauge(snap, "test.zero.gauge")->value, 0.0);
  const auto* hs = find_histogram(snap, "test.zero.hist");
  EXPECT_EQ(hs->count, 0u);
  for (const auto c : hs->counts) EXPECT_EQ(c, 0u);
}

TEST(ObsScopedTimer, ObservesElapsedSeconds) {
  const obs::Histogram h{"test.timer.hist"};
  const auto count_of = [&] {
    const auto snap = obs::Registry::instance().snapshot();
    const auto* hs = find_histogram(snap, "test.timer.hist");
    return hs != nullptr ? hs->count : 0;
  };
  const std::uint64_t before = count_of();
  { const obs::ScopedTimer timer{h}; }
  const auto snap = obs::Registry::instance().snapshot();
  const auto* hs = find_histogram(snap, "test.timer.hist");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->count, before + 1);
  EXPECT_GE(hs->max, 0.0);
}

TEST(ObsJson, SnapshotRendersSortedAndParsable) {
  const obs::Counter c{"test.json.counter"};
  const obs::Histogram h{"test.json.hist",
                         obs::HistogramSpec{0.0, 2.0, 2, false}};
  c.add(7);
  h.observe(0.5);
  h.observe(1.5);

  const std::string json = obs::to_json(obs::Registry::instance().snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.json.counter\""), std::string::npos);
  EXPECT_NE(json.find("\"upper_edges\""), std::string::npos);

  // Names must come out sorted (scrape order is shard order otherwise).
  const auto snap = obs::Registry::instance().snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].name, snap.counters[i].name);

  // Braces/brackets balance — a cheap structural validity check.
  int braces = 0, brackets = 0;
  bool in_string = false;
  for (char ch : json) {
    if (ch == '"') in_string = !in_string;
    if (in_string) continue;
    braces += (ch == '{') - (ch == '}');
    brackets += (ch == '[') - (ch == ']');
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ObsJson, WriteFileRoundTrips) {
  const std::string path = "test_obs_metrics.json";
  obs::write_file(path, "{\"ok\": true}");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\"ok\": true}\n");
  in.close();
  std::remove(path.c_str());
}

}  // namespace
