// Unit tests for obs::FlightRecorder: ring drop-oldest semantics, event
// payloads, text dump rendering, and clear().
#include <gtest/gtest.h>

#include <string>

#include "obs/flight.hpp"

namespace {

using namespace aqua;
using K = obs::FlightRecordKind;

TEST(FlightRecorder, StartsEmpty) {
  const obs::FlightRecorder flight{8};
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_EQ(flight.dropped(), 0u);
  EXPECT_TRUE(flight.events().empty());
  EXPECT_NE(flight.dump_text().find("(empty)"), std::string::npos);
}

TEST(FlightRecorder, RecordsPayloadsInOrder) {
  obs::FlightRecorder flight{8};
  flight.record(1.0, K::kDriveOn);
  flight.record(2.0, K::kFault, 3, 0.0, "membrane broken");
  flight.record(3.0, K::kPiSaturationEnter, 0, 4.9);

  const auto events = flight.events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_DOUBLE_EQ(events[0].t_s, 1.0);
  EXPECT_EQ(events[0].kind, K::kDriveOn);
  EXPECT_EQ(events[1].code, 3);
  EXPECT_STREQ(events[1].label, "membrane broken");
  EXPECT_DOUBLE_EQ(events[2].value, 4.9);
}

TEST(FlightRecorder, DropsOldestPastCapacity) {
  obs::FlightRecorder flight{4};
  for (int i = 0; i < 10; ++i)
    flight.record(static_cast<double>(i), K::kDriveOn, i);

  EXPECT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.dropped(), 6u);
  const auto events = flight.events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events.front().code, 6);  // oldest survivor
  EXPECT_EQ(events.back().code, 9);
}

TEST(FlightRecorder, DumpTextContainsHeaderKindsAndDropNote) {
  obs::FlightRecorder flight{2};
  flight.record(0.5, K::kAdcOverloadEnter);
  flight.record(0.75, K::kAdcOverloadExit);
  flight.record(1.25, K::kFault, 7, 0.0, "stuck drive");

  const std::string dump = flight.dump_text("sensor 17 blackbox:");
  EXPECT_NE(dump.find("sensor 17 blackbox:"), std::string::npos);
  EXPECT_NE(dump.find("ADC_OVERLOAD_EXIT"), std::string::npos);
  EXPECT_NE(dump.find("FAULT"), std::string::npos);
  EXPECT_NE(dump.find("stuck drive"), std::string::npos);
  EXPECT_NE(dump.find("1 earlier event(s) dropped"), std::string::npos);
  // The overwritten entry must be gone.
  EXPECT_EQ(dump.find("ADC_OVERLOAD_ENTER"), std::string::npos);
}

TEST(FlightRecorder, ClearResetsEverything) {
  obs::FlightRecorder flight{2};
  for (int i = 0; i < 5; ++i) flight.record(0.0, K::kReset);
  flight.clear();
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_EQ(flight.dropped(), 0u);
  EXPECT_TRUE(flight.events().empty());
}

TEST(FlightRecorder, KindNamesCoverAllKinds) {
  EXPECT_STREQ(obs::flight_kind_name(K::kFault), "FAULT");
  EXPECT_STREQ(obs::flight_kind_name(K::kCommission), "COMMISSION");
  EXPECT_STREQ(obs::flight_kind_name(K::kReset), "RESET");
  EXPECT_STREQ(obs::flight_kind_name(K::kDriveOff), "DRIVE_OFF");
}

}  // namespace
