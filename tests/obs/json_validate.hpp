// json_validate.hpp — a minimal recursive-descent JSON syntax checker for
// exporter tests. Validates structure only (no schema, no number range
// checks); returns true iff the whole input is exactly one valid JSON value.
#pragma once

#include <cctype>
#include <cstdlib>
#include <string_view>

namespace aqua::testing {

class JsonValidator {
 public:
  static bool valid(std::string_view text) {
    JsonValidator v{text};
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == v.text_.size();
  }

 private:
  explicit JsonValidator(std::string_view text) : text_(text) {}

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  bool value() {
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool string() {
    if (!consume('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        const char esc = peek();
        if (esc == 'u') {
          ++pos_;
          for (int i = 0; i < 4; ++i)
            if (std::isxdigit(static_cast<unsigned char>(peek())) == 0)
              return false;
            else
              ++pos_;
          continue;
        }
        if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
            esc != 'f' && esc != 'n' && esc != 'r' && esc != 't')
          return false;
        ++pos_;
        continue;
      }
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    std::strtod(begin, &end);
    if (end == begin) return false;
    pos_ += static_cast<std::size_t>(end - begin);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace aqua::testing
