// Unit tests for obs::TraceRecorder + the Chrome trace-event exporter:
// enable/disable semantics, span/instant/counter recording, drop-oldest
// accounting, per-thread tracks, and export structure (B/E matching into
// "X" events, orphan handling, JSON validity).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "json_validate.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/trace.hpp"

namespace {

using namespace aqua;

/// Tracing state is process-global; tests restore "disabled + empty".
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::TraceRecorder::set_enabled(false);
    obs::TraceRecorder::instance().clear();
  }
  void TearDown() override {
    obs::TraceRecorder::set_enabled(false);
    obs::TraceRecorder::instance().clear();
  }

  /// Sum of event counts across all tracks.
  static std::size_t total_events(const obs::TraceSnapshot& snap) {
    std::size_t n = 0;
    for (const auto& track : snap.tracks) n += track.events.size();
    return n;
  }

  /// Events on the calling thread's track with the given name.
  static std::vector<obs::TraceEvent> events_named(
      const obs::TraceSnapshot& snap, const std::string& name) {
    std::vector<obs::TraceEvent> out;
    for (const auto& track : snap.tracks)
      for (const auto& ev : track.events)
        if (ev.name != nullptr && name == ev.name) out.push_back(ev);
    return out;
  }
};

TEST_F(TraceTest, DisabledEmitsNothing) {
  ASSERT_FALSE(obs::TraceRecorder::enabled());
  AQUA_TRACE_INSTANT("test.disabled.instant");
  AQUA_TRACE_COUNTER("test.disabled.counter", 1.0);
  {
    AQUA_TRACE_SPAN("test.disabled.span");
  }
  const auto snap = obs::TraceRecorder::instance().snapshot();
  EXPECT_EQ(total_events(snap), 0u);
}

TEST_F(TraceTest, SpanInstantCounterAppearInSnapshot) {
  obs::TraceRecorder::set_enabled(true);
  {
    AQUA_TRACE_SPAN_SIM("test.span", 1.5);
    AQUA_TRACE_INSTANT_SIM("test.instant", 2.5);
    AQUA_TRACE_COUNTER("test.counter", 42.0);
  }
  const auto snap = obs::TraceRecorder::instance().snapshot();

  const auto spans = events_named(snap, "test.span");
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].kind, obs::TraceEventKind::kSpanBegin);
  EXPECT_EQ(spans[1].kind, obs::TraceEventKind::kSpanEnd);
  EXPECT_DOUBLE_EQ(spans[0].sim_s, 1.5);
  EXPECT_GE(spans[1].wall_ns, spans[0].wall_ns);

  const auto instants = events_named(snap, "test.instant");
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].kind, obs::TraceEventKind::kInstant);
  EXPECT_DOUBLE_EQ(instants[0].sim_s, 2.5);

  const auto counters = events_named(snap, "test.counter");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(counters[0].kind, obs::TraceEventKind::kCounter);
  EXPECT_DOUBLE_EQ(counters[0].value, 42.0);
  EXPECT_DOUBLE_EQ(counters[0].sim_s, obs::kNoSimTime);
}

TEST_F(TraceTest, DisableMidSpanStillClosesIt) {
  obs::TraceRecorder::set_enabled(true);
  {
    AQUA_TRACE_SPAN("test.killswitch.span");
    obs::TraceRecorder::set_enabled(false);
    AQUA_TRACE_INSTANT("test.killswitch.ignored");
  }
  const auto snap = obs::TraceRecorder::instance().snapshot();
  EXPECT_EQ(events_named(snap, "test.killswitch.span").size(), 2u);
  EXPECT_EQ(events_named(snap, "test.killswitch.ignored").size(), 0u);
}

TEST_F(TraceTest, RingDropsOldestAndCountsDropped) {
  obs::TraceRecorder::set_enabled(true);
  const std::size_t n = obs::TraceRecorder::kRingCapacity + 100;
  for (std::size_t i = 0; i < n; ++i)
    AQUA_TRACE_COUNTER("test.wrap", static_cast<double>(i));
  const auto snap = obs::TraceRecorder::instance().snapshot();

  const auto kept = events_named(snap, "test.wrap");
  ASSERT_EQ(kept.size(), obs::TraceRecorder::kRingCapacity);
  // Oldest survivor is exactly the first non-dropped emit.
  EXPECT_DOUBLE_EQ(kept.front().value, 100.0);
  EXPECT_DOUBLE_EQ(kept.back().value, static_cast<double>(n - 1));
  EXPECT_EQ(snap.dropped_total, 100u);
}

TEST_F(TraceTest, ThreadsGetSeparateNamedTracks) {
  obs::TraceRecorder::set_enabled(true);
  obs::TraceRecorder::set_thread_name("main-test");
  AQUA_TRACE_INSTANT("test.threads.main");
  std::thread worker([] {
    obs::TraceRecorder::set_thread_name("worker-test");
    AQUA_TRACE_INSTANT("test.threads.worker");
  });
  worker.join();

  const auto snap = obs::TraceRecorder::instance().snapshot();
  const obs::TraceTrack* main_track = nullptr;
  const obs::TraceTrack* worker_track = nullptr;
  for (const auto& track : snap.tracks) {
    if (track.name == "main-test") main_track = &track;
    if (track.name == "worker-test") worker_track = &track;
  }
  ASSERT_NE(main_track, nullptr);
  ASSERT_NE(worker_track, nullptr);
  EXPECT_NE(main_track->tid, worker_track->tid);
  EXPECT_EQ(events_named(snap, "test.threads.worker").size(), 1u);
}

TEST_F(TraceTest, ClearRewindsRings) {
  obs::TraceRecorder::set_enabled(true);
  AQUA_TRACE_INSTANT("test.clear");
  obs::TraceRecorder::instance().clear();
  const auto snap = obs::TraceRecorder::instance().snapshot();
  EXPECT_EQ(total_events(snap), 0u);
}

TEST_F(TraceTest, InternReturnsStablePointers) {
  auto& rec = obs::TraceRecorder::instance();
  const char* a = rec.intern("dynamic.name.a");
  const char* b = rec.intern("dynamic.name.a");
  const char* c = rec.intern("dynamic.name.b");
  EXPECT_EQ(a, b);  // deduplicated
  EXPECT_NE(a, c);
  EXPECT_STREQ(a, "dynamic.name.a");
}

// ---------------------------------------------------------------------------
// Chrome exporter — structure checks on hand-built snapshots, so the cases
// (orphans, empty tracks) are exact rather than timing-dependent.

obs::TraceEvent make_event(obs::TraceEventKind kind, const char* name,
                           std::uint64_t wall_ns,
                           double sim_s = obs::kNoSimTime,
                           double value = 0.0) {
  obs::TraceEvent ev;
  ev.kind = kind;
  ev.name = name;
  ev.wall_ns = wall_ns;
  ev.sim_s = sim_s;
  ev.value = value;
  return ev;
}

std::size_t count_occurrences(const std::string& haystack,
                              const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size()))
    ++n;
  return n;
}

TEST(ChromeTrace, EmptySnapshotIsValidJson) {
  const std::string json = obs::to_chrome_json(obs::TraceSnapshot{});
  EXPECT_TRUE(aqua::testing::JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(ChromeTrace, MatchesSpansIntoCompleteEvents) {
  obs::TraceSnapshot snap;
  obs::TraceTrack track;
  track.tid = 7;
  track.name = "pool-0";
  using K = obs::TraceEventKind;
  track.events = {
      make_event(K::kSpanBegin, "outer", 1000, 0.5),
      make_event(K::kSpanBegin, "inner", 2000),
      make_event(K::kSpanEnd, "inner", 3000),
      make_event(K::kInstant, "mark", 3500, 0.75),
      make_event(K::kSpanEnd, "outer", 4000),
      make_event(K::kCounter, "depth", 4500, obs::kNoSimTime, 3.0),
  };
  snap.tracks.push_back(std::move(track));

  const std::string json = obs::to_chrome_json(snap);
  EXPECT_TRUE(aqua::testing::JsonValidator::valid(json)) << json;
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 2u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"i\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"C\""), 1u);
  EXPECT_NE(json.find("\"name\": \"pool-0\""), std::string::npos);
  EXPECT_NE(json.find("\"sim_s\": 0.5"), std::string::npos);
  // inner span: (3000-2000) ns = 1 µs.
  EXPECT_NE(json.find("\"dur\": 1.000"), std::string::npos);
}

TEST(ChromeTrace, OrphanEndDroppedOrphanBeginClosedAtLastTimestamp) {
  obs::TraceSnapshot snap;
  obs::TraceTrack track;
  track.tid = 1;
  using K = obs::TraceEventKind;
  track.events = {
      make_event(K::kSpanEnd, "lost_begin", 1000),  // begin fell off the ring
      make_event(K::kSpanBegin, "still_open", 2000),
      make_event(K::kInstant, "last", 5000),
  };
  snap.tracks.push_back(std::move(track));

  const std::string json = obs::to_chrome_json(snap);
  EXPECT_TRUE(aqua::testing::JsonValidator::valid(json)) << json;
  EXPECT_EQ(json.find("lost_begin"), std::string::npos);
  // still_open closed at the last event (5000 ns): dur = 3 µs.
  EXPECT_NE(json.find("\"name\": \"still_open\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 3.000"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\": \"X\""), 1u);
}

TEST(ChromeTrace, EscapesExoticNames) {
  obs::TraceSnapshot snap;
  obs::TraceTrack track;
  track.tid = 1;
  track.name = "weird \"thread\"\n";
  track.events = {make_event(obs::TraceEventKind::kInstant,
                             "quote\" back\\slash \t tab", 100)};
  snap.tracks.push_back(std::move(track));
  const std::string json = obs::to_chrome_json(snap);
  EXPECT_TRUE(aqua::testing::JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("quote\\\" back\\\\slash \\t tab"), std::string::npos);
}

TEST(ChromeTrace, ReportsDroppedEvents) {
  obs::TraceSnapshot snap;
  snap.dropped_total = 123;
  const std::string json = obs::to_chrome_json(snap);
  EXPECT_NE(json.find("\"dropped_events\": 123"), std::string::npos);
}

}  // namespace
