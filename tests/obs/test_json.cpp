// Edge-case tests for obs::to_json, built on synthetic Snapshots (the
// registry's fixed capacity is left alone): names that need JSON escaping,
// empty-histogram min/max emission, and round-trip-exact double formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>

#include "json_validate.hpp"
#include "obs/json.hpp"

namespace {

using namespace aqua;

TEST(ObsJsonEscaping, QuoteBackslashAndControlCharsInNames) {
  obs::Snapshot snap;
  snap.counters.push_back({"quote\"in\\name", 1});
  snap.counters.push_back({"tab\tnewline\ncr\r", 2});
  std::string nul_name = "bell\x07null";
  nul_name += '\0';
  nul_name += "byte";
  snap.counters.push_back({nul_name, 3});
  snap.gauges.push_back({"backspace\bformfeed\f", 4.5});

  const std::string json = obs::to_json(snap);
  EXPECT_TRUE(aqua::testing::JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("quote\\\"in\\\\name"), std::string::npos);
  EXPECT_NE(json.find("tab\\tnewline\\ncr\\r"), std::string::npos);
  EXPECT_NE(json.find("bell\\u0007null\\u0000byte"), std::string::npos);
  EXPECT_NE(json.find("backspace\\bformfeed\\f"), std::string::npos);
  // No raw control characters may survive into the output.
  for (char c : json)
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n')
        << "raw control char 0x" << std::hex
        << static_cast<unsigned>(static_cast<unsigned char>(c));
}

TEST(ObsJsonEscaping, EscapeJsonStringIsExposedDirectly) {
  EXPECT_EQ(obs::escape_json_string("plain.name"), "plain.name");
  EXPECT_EQ(obs::escape_json_string("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::escape_json_string("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_json_string(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
}

TEST(ObsJsonHistogram, EmptyHistogramEmitsZeroMinMax) {
  obs::Snapshot snap;
  obs::HistogramSnapshot hist;
  hist.name = "empty.hist";
  hist.upper_edges = {1.0, 10.0};
  hist.counts = {0, 0, 0};
  hist.count = 0;
  hist.sum = 0.0;
  // Registry initialises min/max to +inf/-inf before the first observe;
  // the exporter must not leak non-finite values into JSON.
  hist.min = std::numeric_limits<double>::infinity();
  hist.max = -std::numeric_limits<double>::infinity();
  snap.histograms.push_back(hist);

  const std::string json = obs::to_json(snap);
  EXPECT_TRUE(aqua::testing::JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"min\": 0,"), std::string::npos);
  EXPECT_NE(json.find("\"max\": 0"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ObsJsonDoubles, RoundTripExactFormatting) {
  const double cases[] = {0.1,
                          1.0 / 3.0,
                          1e-308,
                          1.7976931348623157e308,
                          -2.2250738585072014e-308,
                          123456789.123456789,
                          std::nextafter(1.0, 2.0)};
  for (double v : cases) {
    const std::string text = obs::json_double(v);
    const double back = std::strtod(text.c_str(), nullptr);
    EXPECT_EQ(std::memcmp(&back, &v, sizeof v), 0)
        << text << " did not round-trip";
  }
}

TEST(ObsJsonDoubles, NonFiniteValuesBecomeNull) {
  // JSON has no NaN/Infinity literals — a poisoned gauge must not make the
  // whole export unparseable.
  EXPECT_EQ(obs::json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(obs::json_double(-std::numeric_limits<double>::quiet_NaN()),
            "null");
  EXPECT_EQ(obs::json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(obs::json_double(-std::numeric_limits<double>::infinity()), "null");
  // Finite extremes are untouched.
  EXPECT_NE(obs::json_double(std::numeric_limits<double>::max()), "null");
  EXPECT_NE(obs::json_double(-0.0), "null");
}

TEST(ObsJsonDoubles, NaNGaugeStillProducesValidJson) {
  obs::Snapshot snap;
  snap.gauges.push_back({"poisoned.gauge",
                         std::numeric_limits<double>::quiet_NaN()});
  snap.gauges.push_back({"fine.gauge", 1.25});
  const std::string json = obs::to_json(snap);
  EXPECT_TRUE(aqua::testing::JsonValidator::valid(json)) << json;
  EXPECT_NE(json.find("\"poisoned.gauge\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fine.gauge\": 1.25"), std::string::npos) << json;
  EXPECT_EQ(json.find("nan"), std::string::npos);
}

TEST(ObsJsonDoubles, GaugeValuesRoundTripThroughFullExport) {
  const double v = 0.30000000000000004;  // classic 0.1+0.2 artefact
  obs::Snapshot snap;
  snap.gauges.push_back({"precise.gauge", v});
  const std::string json = obs::to_json(snap);
  const std::size_t pos = json.find("\"precise.gauge\": ");
  ASSERT_NE(pos, std::string::npos);
  const double back =
      std::strtod(json.c_str() + pos + std::strlen("\"precise.gauge\": "),
                  nullptr);
  EXPECT_EQ(back, v);
}

}  // namespace
