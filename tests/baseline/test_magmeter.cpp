#include "baseline/magmeter.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/stats.hpp"

namespace aqua::baseline {
namespace {

using util::metres_per_second;
using util::Rng;
using util::Seconds;

TEST(MagMeter, EmfIsFaraday) {
  MagMeter m{MagMeterSpec{}, Rng{1}};
  // U = B·D·v = 5e-3 · 0.08 · 1.0.
  EXPECT_NEAR(m.emf(metres_per_second(1.0)).value(), 4e-4, 1e-9);
  EXPECT_NEAR(m.emf(metres_per_second(-1.0)).value(), -4e-4, 1e-9);
}

TEST(MagMeter, TracksStepWithinResponseTime) {
  MagMeter m{MagMeterSpec{}, Rng{2}};
  double reading = 0.0;
  for (int i = 0; i < 600; ++i)  // 6 s at 10 ms steps
    reading = m.step(metres_per_second(1.5), Seconds{0.01}).value();
  EXPECT_NEAR(reading, 1.5, 0.02);
}

TEST(MagMeter, AccuracyWithinHalfPercentFs) {
  // The Promag-50-class spec the paper quotes: resolution < ±0.5 % FS.
  MagMeter m{MagMeterSpec{}, Rng{3}};
  util::RunningStats stats;
  for (int i = 0; i < 3000; ++i) {
    const double r = m.step(metres_per_second(1.0), Seconds{0.01}).value();
    if (i > 1000) stats.add(r);
  }
  const double fs = 2.5;
  EXPECT_LT(std::abs(stats.mean() - 1.0) / fs, 0.005);
  EXPECT_LT(stats.stddev() / fs, 0.005);
}

TEST(MagMeter, ReadsBidirectionally) {
  MagMeter m{MagMeterSpec{}, Rng{4}};
  double reading = 0.0;
  for (int i = 0; i < 600; ++i)
    reading = m.step(metres_per_second(-0.8), Seconds{0.01}).value();
  EXPECT_NEAR(reading, -0.8, 0.03);
}

TEST(MagMeter, OutputUpdatesAtExcitationCadence) {
  MagMeter m{MagMeterSpec{}, Rng{5}};
  // Prime to steady state.
  for (int i = 0; i < 1000; ++i)
    (void)m.step(metres_per_second(1.0), Seconds{0.01});
  // Within one excitation period (80 ms at 12.5 Hz) the reading is held.
  const double r1 = m.step(metres_per_second(2.0), Seconds{0.001}).value();
  const double r2 = m.step(metres_per_second(2.0), Seconds{0.001}).value();
  EXPECT_DOUBLE_EQ(r1, r2);
}

TEST(MagMeter, SpecRecordMatchesPaperComparison) {
  MagMeter m{MagMeterSpec{}, Rng{6}};
  const MeterSpec& spec = m.meter_spec();
  EXPECT_FALSE(spec.moving_parts);
  EXPECT_TRUE(spec.intrusive);
  EXPECT_DOUBLE_EQ(spec.resolution_percent_fs, 0.5);
  EXPECT_GT(spec.relative_cost, 10.0);  // "more than one order of magnitude"
}

}  // namespace
}  // namespace aqua::baseline
