#include "baseline/venturi.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::baseline {
namespace {

using util::metres_per_second;
using util::Rng;
using util::Seconds;

double settled_reading(VenturiMeter& m, double v, int steps = 2000) {
  double r = 0.0;
  for (int i = 0; i < steps; ++i)
    r = m.step(metres_per_second(v), Seconds{0.005}).value();
  return r;
}

TEST(Venturi, DifferentialFollowsSquareLaw) {
  VenturiMeter m{VenturiSpec{}, Rng{1}};
  const double dp1 = m.differential(metres_per_second(1.0)).value();
  const double dp2 = m.differential(metres_per_second(2.0)).value();
  EXPECT_NEAR(dp2 / dp1, 4.0, 1e-9);
  EXPECT_GT(dp1, 0.0);
}

TEST(Venturi, ThroatDifferentialMagnitude) {
  // beta = 0.6 → vt = v/0.36; at 1 m/s: dp ≈ 0.5·999·(7.72−1)/0.98² ≈ 3.5 kPa.
  VenturiMeter m{VenturiSpec{}, Rng{1}};
  EXPECT_NEAR(m.differential(metres_per_second(1.0)).value(), 3495.0, 150.0);
}

TEST(Venturi, ReadsMidRangeAccurately) {
  VenturiMeter m{VenturiSpec{}, Rng{2}};
  EXPECT_NEAR(settled_reading(m, 1.5), 1.5, 0.02);
}

TEST(Venturi, LowFlowBlindness) {
  // The square-root inversion amplifies dp noise at low flow: below the
  // noise-floor velocity the signal drowns and the (rectified) noise biases
  // the reading far off the true value.
  VenturiMeter m{VenturiSpec{}, Rng{3}};
  const double floor_v = m.noise_floor_velocity().value();
  EXPECT_GT(floor_v, 0.02);  // a few cm/s
  const double deep = 0.25 * floor_v;
  const double r = settled_reading(m, deep);
  EXPECT_GT(std::abs(r - deep) / deep, 0.5);
}

TEST(Venturi, PermanentPressureLossGrowsWithFlow) {
  // The "intrusive measurement ... pressure loss" the paper's intro cites.
  VenturiMeter m{VenturiSpec{}, Rng{4}};
  const double loss1 = m.permanent_loss(metres_per_second(1.0)).value();
  const double loss2 = m.permanent_loss(metres_per_second(2.5)).value();
  EXPECT_GT(loss1, 100.0);  // hundreds of Pa at 1 m/s
  EXPECT_GT(loss2, 5.0 * loss1);
}

TEST(Venturi, BidirectionalSignPreserved) {
  VenturiMeter m{VenturiSpec{}, Rng{5}};
  EXPECT_LT(settled_reading(m, -1.0), -0.9);
}

TEST(Venturi, SpecRecordMarksIntrusive) {
  VenturiMeter m{VenturiSpec{}, Rng{6}};
  EXPECT_TRUE(m.meter_spec().intrusive);
  EXPECT_FALSE(m.meter_spec().moving_parts);
  EXPECT_GT(m.meter_spec().resolution_percent_fs, 0.0);
}

class VenturiLinearity : public ::testing::TestWithParam<double> {};

TEST_P(VenturiLinearity, MidAndHighRangeWithinTwoPercent) {
  VenturiMeter m{VenturiSpec{}, Rng{7}};
  const double v = GetParam();
  EXPECT_NEAR(settled_reading(m, v), v, 0.02 * v + 0.005);
}

INSTANTIATE_TEST_SUITE_P(AboveFloor, VenturiLinearity,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 2.5));

}  // namespace
}  // namespace aqua::baseline
