#include "baseline/turbine.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::baseline {
namespace {

using util::metres_per_second;
using util::Rng;
using util::Seconds;

double settled_reading(TurbineMeter& m, double v, int steps = 3000) {
  double r = 0.0;
  for (int i = 0; i < steps; ++i)
    r = m.step(metres_per_second(v), Seconds{0.005}).value();
  return r;
}

TEST(Turbine, ReadsMidRangeAccurately) {
  TurbineMeter m{TurbineSpec{}, Rng{1}};
  const double r = settled_reading(m, 1.0);
  EXPECT_NEAR(r, 1.0, 0.03);
}

TEST(Turbine, StallsBelowCutoff) {
  // The classic turbine failure the paper's MEMS sensor avoids: below the
  // breakaway velocity the wheel reads exactly zero.
  TurbineMeter m{TurbineSpec{}, Rng{2}};
  const double v_stall = m.stall_velocity().value();
  EXPECT_GT(v_stall, 0.05);
  EXPECT_LT(v_stall, 0.3);
  const double r = settled_reading(m, 0.5 * v_stall);
  EXPECT_DOUBLE_EQ(r, 0.0);
  EXPECT_TRUE(m.stalled());
}

TEST(Turbine, SpinsAboveCutoff) {
  TurbineMeter m{TurbineSpec{}, Rng{3}};
  const double v = 2.0 * m.stall_velocity().value();
  const double r = settled_reading(m, v);
  EXPECT_GT(r, 0.5 * v);
  EXPECT_FALSE(m.stalled());
}

TEST(Turbine, RotorInertiaDelaysResponse) {
  TurbineMeter m{TurbineSpec{}, Rng{4}};
  const double first = m.step(metres_per_second(1.0), Seconds{0.005}).value();
  EXPECT_LT(first, 0.3);  // cannot jump to 1.0 instantly
}

TEST(Turbine, ReversesWithFlow) {
  TurbineMeter m{TurbineSpec{}, Rng{5}};
  const double r = settled_reading(m, -1.0);
  EXPECT_NEAR(r, -1.0, 0.05);
}

TEST(Turbine, BearingWearAccumulatesAndRaisesStall) {
  TurbineMeter m{TurbineSpec{}, Rng{6}};
  const double stall_new = m.stall_velocity().value();
  // Spin hard for a long simulated time to accumulate revolutions.
  for (int i = 0; i < 200000; ++i)
    (void)m.step(metres_per_second(2.5), Seconds{0.1});
  EXPECT_GT(m.total_revolutions(), 1e5);
  EXPECT_GT(m.wear_factor(), 1.0);
  EXPECT_GT(m.stall_velocity().value(), stall_new);
}

TEST(Turbine, SpecRecordMatchesPaperComparison) {
  TurbineMeter m{TurbineSpec{}, Rng{7}};
  const MeterSpec& spec = m.meter_spec();
  EXPECT_TRUE(spec.moving_parts);  // the reliability argument of §5
  EXPECT_TRUE(spec.intrusive);
  EXPECT_GT(spec.relative_cost, 1.0);
}

class TurbineLinearity : public ::testing::TestWithParam<double> {};

TEST_P(TurbineLinearity, ReadingWithinTolerance) {
  TurbineMeter m{TurbineSpec{}, Rng{8}};
  const double v = GetParam();
  const double r = settled_reading(m, v);
  // Turbines under-read near the low end (friction slip) — allow for it.
  EXPECT_NEAR(r, v, 0.05 * v + 0.035);
  EXPECT_LE(r, v + 0.02);  // friction never makes it over-read
}

INSTANTIATE_TEST_SUITE_P(AboveStall, TurbineLinearity,
                         ::testing::Values(0.4, 0.8, 1.2, 1.6, 2.0, 2.5));

}  // namespace
}  // namespace aqua::baseline
