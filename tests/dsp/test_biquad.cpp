#include "dsp/biquad.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::dsp {
namespace {

using util::hertz;
using util::Hertz;

TEST(Biquad, IdentityByDefault) {
  Biquad b;
  EXPECT_DOUBLE_EQ(b.process(3.0), 3.0);
  EXPECT_DOUBLE_EQ(b.process(-1.5), -1.5);
}

TEST(Biquad, PrimeReachesSteadyStateImmediately) {
  auto cascade = design_butterworth_lowpass(2, hertz(10.0), hertz(1000.0));
  cascade.prime(2.5);
  // Next outputs for constant input stay at the DC value.
  for (int i = 0; i < 5; ++i) EXPECT_NEAR(cascade.process(2.5), 2.5, 1e-9);
}

TEST(ButterworthLowpass, UnityDcGain) {
  for (int order : {1, 2, 3, 4, 5}) {
    auto f = design_butterworth_lowpass(order, hertz(50.0), hertz(2000.0));
    EXPECT_NEAR(f.magnitude(hertz(0.001), hertz(2000.0)), 1.0, 1e-6)
        << "order " << order;
  }
}

TEST(ButterworthLowpass, MinusThreeDbAtCutoff) {
  for (int order : {1, 2, 4}) {
    auto f = design_butterworth_lowpass(order, hertz(100.0), hertz(4000.0));
    EXPECT_NEAR(f.magnitude(hertz(100.0), hertz(4000.0)), std::sqrt(0.5), 0.01)
        << "order " << order;
  }
}

TEST(ButterworthLowpass, RolloffMatchesOrder) {
  // One octave above cutoff, attenuation ≈ 6 dB per order.
  for (int order : {1, 2, 3}) {
    auto f = design_butterworth_lowpass(order, hertz(50.0), hertz(8000.0));
    const double mag = f.magnitude(hertz(100.0), hertz(8000.0));
    const double db = -20.0 * std::log10(mag);
    EXPECT_NEAR(db, 6.0 * order, 1.2) << "order " << order;
  }
}

TEST(ButterworthLowpass, StableImpulseResponse) {
  auto f = design_butterworth_lowpass(4, hertz(10.0), hertz(1000.0));
  double y = f.process(1.0);
  double peak = std::abs(y);
  for (int i = 0; i < 20000; ++i) {
    y = f.process(0.0);
    peak = std::max(peak, std::abs(y));
  }
  EXPECT_LT(std::abs(y), 1e-12);  // decayed
  EXPECT_LT(peak, 1.0);           // no blow-up
}

TEST(ButterworthHighpass, BlocksDcPassesHighs) {
  auto f = design_butterworth_highpass(2, hertz(100.0), hertz(4000.0));
  EXPECT_NEAR(f.magnitude(hertz(0.01), hertz(4000.0)), 0.0, 1e-4);
  EXPECT_NEAR(f.magnitude(hertz(1500.0), hertz(4000.0)), 1.0, 0.02);
}

TEST(Butterworth, SectionCounts) {
  EXPECT_EQ(design_butterworth_lowpass(1, hertz(10), hertz(1000)).section_count(), 1u);
  EXPECT_EQ(design_butterworth_lowpass(2, hertz(10), hertz(1000)).section_count(), 1u);
  EXPECT_EQ(design_butterworth_lowpass(5, hertz(10), hertz(1000)).section_count(), 3u);
}

TEST(Butterworth, DesignValidation) {
  EXPECT_THROW((void)design_butterworth_lowpass(0, hertz(10), hertz(1000)),
               std::invalid_argument);
  EXPECT_THROW((void)design_butterworth_lowpass(2, hertz(600), hertz(1000)),
               std::invalid_argument);
  EXPECT_THROW((void)design_butterworth_lowpass(2, hertz(0), hertz(1000)),
               std::invalid_argument);
}

TEST(ButterworthLowpass, SlowOutputFilterSettlesToStep) {
  // The paper's 0.1 Hz output filter (at a 10 Hz task rate): step settles.
  auto f = design_butterworth_lowpass(2, hertz(0.1), hertz(10.0));
  double y = 0.0;
  for (int i = 0; i < 1000; ++i) y = f.process(1.0);  // 100 s
  EXPECT_NEAR(y, 1.0, 1e-3);
}

TEST(OnePole, StepResponseTimeConstant) {
  OnePole lp{hertz(1.0), hertz(1000.0)};
  double y = 0.0;
  // After 1/(2π·fc) seconds (one time constant), y ≈ 1 − e⁻¹.
  const int n = static_cast<int>(1000.0 / (2.0 * 3.14159265));
  for (int i = 0; i < n; ++i) y = lp.process(1.0);
  EXPECT_NEAR(y, 1.0 - std::exp(-1.0), 0.02);
}

TEST(OnePole, Validation) {
  EXPECT_THROW((OnePole{hertz(0.0), hertz(100.0)}), std::invalid_argument);
  EXPECT_THROW((OnePole{hertz(60.0), hertz(100.0)}), std::invalid_argument);
}

class LowpassOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(LowpassOrderSweep, MagnitudeMonotoneDecreasing) {
  auto f = design_butterworth_lowpass(GetParam(), hertz(100.0), hertz(4000.0));
  double prev = 2.0;
  for (double freq = 1.0; freq < 1900.0; freq *= 1.6) {
    const double m = f.magnitude(hertz(freq), hertz(4000.0));
    EXPECT_LT(m, prev + 1e-9) << "freq " << freq;
    prev = m;
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, LowpassOrderSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace aqua::dsp
