#include "dsp/pid.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::dsp {
namespace {

using util::hertz;

TEST(Pid, ProportionalOnly) {
  PidController pid{{2.0, 0.0, 0.0}, {}, hertz(100.0)};
  EXPECT_DOUBLE_EQ(pid.update(1.5), 3.0);
  EXPECT_DOUBLE_EQ(pid.update(-0.5), -1.0);
}

TEST(Pid, IntegralAccumulates) {
  PidController pid{{0.0, 10.0, 0.0}, {}, hertz(10.0)};
  // ki·e·dt = 10·1·0.1 = 1 per step.
  EXPECT_NEAR(pid.update(1.0), 1.0, 1e-12);
  EXPECT_NEAR(pid.update(1.0), 2.0, 1e-12);
  EXPECT_NEAR(pid.update(1.0), 3.0, 1e-12);
}

TEST(Pid, DerivativeOnErrorSlope) {
  PidController pid{{0.0, 0.0, 1.0}, {}, hertz(10.0)};
  (void)pid.update(0.0);
  // de/dt = 1/0.1 = 10.
  EXPECT_NEAR(pid.update(1.0), 10.0, 1e-12);
}

TEST(Pid, DerivativeSkipsFirstSample) {
  PidController pid{{0.0, 0.0, 1.0}, {}, hertz(10.0)};
  EXPECT_DOUBLE_EQ(pid.update(5.0), 0.0);  // no slope defined yet
}

TEST(Pid, OutputClamped) {
  PidController pid{{10.0, 0.0, 0.0}, {-1.0, 1.0}, hertz(100.0)};
  EXPECT_DOUBLE_EQ(pid.update(10.0), 1.0);
  EXPECT_DOUBLE_EQ(pid.update(-10.0), -1.0);
}

TEST(Pid, AntiWindupRecoversQuickly) {
  // Saturate hard with the integrator for a while, then reverse the error:
  // a wound-up controller would take ~100 steps to come off the rail; the
  // conditional anti-windup comes off in a few.
  PidController pid{{0.0, 10.0, 0.0}, {-1.0, 1.0}, hertz(10.0)};
  for (int i = 0; i < 100; ++i) (void)pid.update(5.0);
  EXPECT_DOUBLE_EQ(pid.output(), 1.0);
  int steps = 0;
  while (pid.update(-1.0) >= 1.0 && steps < 50) ++steps;
  EXPECT_LT(steps, 3);
}

TEST(Pid, IntegratorUnwindsWhileSaturatedWithOpposingError) {
  PidController pid{{0.0, 10.0, 0.0}, {-1.0, 1.0}, hertz(10.0)};
  for (int i = 0; i < 10; ++i) (void)pid.update(1.0);
  const double wound = pid.integrator();
  (void)pid.update(-0.5);  // still saturated high, but unwinding allowed
  EXPECT_LT(pid.integrator(), wound);
}

TEST(Pid, ResetPreloadsIntegrator) {
  PidController pid{{1.0, 1.0, 0.0}, {0.0, 2.0}, hertz(10.0)};
  pid.reset(0.7);
  EXPECT_DOUBLE_EQ(pid.output(), 0.7);
  EXPECT_NEAR(pid.update(0.0), 0.7, 1e-12);  // bumpless
}

TEST(Pid, ResetClampsToLimits) {
  PidController pid{{1.0, 1.0, 0.0}, {0.0, 1.0}, hertz(10.0)};
  pid.reset(5.0);
  EXPECT_DOUBLE_EQ(pid.output(), 1.0);
}

TEST(Pid, ResetBackCalculatesIntegratorAgainstError) {
  // Regression: reset(output) used to preload the whole output into the
  // integrator, so the first update() re-added kp·error on top and bumped the
  // loop (into saturation here: 0.8 + 0.5·0.4 + ki·e·dt > 1).
  PidController pid{{0.5, 1.0, 0.0}, {0.0, 1.0}, hertz(10.0)};
  pid.reset(0.8, 0.4);
  EXPECT_DOUBLE_EQ(pid.integrator(), 0.8 - 0.5 * 0.4);
  EXPECT_DOUBLE_EQ(pid.output(), 0.8);
  // update(e): kp·e + integral + ki·e·dt = 0.2 + 0.6 + 1.0·0.4·0.1 = 0.84.
  EXPECT_NEAR(pid.update(0.4), 0.84, 1e-12);
}

TEST(Pid, ResetResumeDoesNotStepIntoSaturation) {
  // A held output near the rail plus a nonzero standing error must resume
  // with only the integral increment, not a proportional-sized jump that
  // slams the output into the clamp.
  PidController pid{{0.6, 30.0, 0.0}, {0.05, 1.0}, hertz(2000.0)};
  const double held = 0.95, error = 0.08;
  pid.reset(held, error);
  const double resumed = pid.update(error);
  EXPECT_LT(resumed, 1.0);  // old behaviour: 0.95 + 0.6·0.08 + ... → clamped
  EXPECT_NEAR(resumed, held + 30.0 * error / 2000.0, 1e-12);
}

TEST(Pid, ClosedLoopFirstOrderPlantConverges) {
  // Plant: y' = (u − y)/tau discretised; PI must drive y → setpoint.
  PidController pid{{0.8, 4.0, 0.0}, {0.0, 10.0}, hertz(100.0)};
  double y = 0.0;
  const double setpoint = 2.0, dt = 0.01, tau = 0.2;
  for (int i = 0; i < 2000; ++i) {
    const double u = pid.update(setpoint - y);
    y += dt * (u - y) / tau;
  }
  EXPECT_NEAR(y, setpoint, 1e-3);
}

TEST(Pid, Validation) {
  EXPECT_THROW((PidController{{1, 0, 0}, {}, hertz(0.0)}), std::invalid_argument);
  EXPECT_THROW((PidController{{1, 0, 0}, {1.0, -1.0}, hertz(10.0)}),
               std::invalid_argument);
}

TEST(Pid, GainsAccessors) {
  PidController pid{{1.0, 2.0, 3.0}, {}, hertz(10.0)};
  EXPECT_DOUBLE_EQ(pid.gains().ki, 2.0);
  pid.set_gains({4.0, 5.0, 6.0});
  EXPECT_DOUBLE_EQ(pid.gains().kp, 4.0);
}

}  // namespace
}  // namespace aqua::dsp
