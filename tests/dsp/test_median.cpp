#include "dsp/median.hpp"

#include <gtest/gtest.h>

namespace aqua::dsp {
namespace {

TEST(Median, PassesConstant) {
  MedianFilter m{5};
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(m.process(2.5), 2.5);
}

TEST(Median, KillsSingleSampleSpike) {
  MedianFilter m{5};
  for (int i = 0; i < 5; ++i) (void)m.process(1.0);
  EXPECT_DOUBLE_EQ(m.process(100.0), 1.0);  // spike suppressed outright
  EXPECT_DOUBLE_EQ(m.process(1.0), 1.0);
}

TEST(Median, KillsDoubleSpikeWithWindowFive) {
  MedianFilter m{5};
  for (int i = 0; i < 5; ++i) (void)m.process(1.0);
  (void)m.process(100.0);
  EXPECT_DOUBLE_EQ(m.process(100.0), 1.0);  // 2 of 5 still outvoted
}

TEST(Median, TracksStep) {
  MedianFilter m{3};
  for (int i = 0; i < 3; ++i) (void)m.process(0.0);
  (void)m.process(1.0);
  EXPECT_DOUBLE_EQ(m.process(1.0), 1.0);  // majority flipped after 2 samples
}

TEST(Median, FillInUsesAvailableSamples) {
  MedianFilter m{5};
  EXPECT_DOUBLE_EQ(m.process(3.0), 3.0);
  // Even fill-in count: upper-median convention ({1,3} → 3).
  EXPECT_DOUBLE_EQ(m.process(1.0), 3.0);
}

TEST(Median, OddSortedSelection) {
  MedianFilter m{3};
  (void)m.process(5.0);
  (void)m.process(1.0);
  EXPECT_DOUBLE_EQ(m.process(3.0), 3.0);
}

TEST(Median, ResetClears) {
  MedianFilter m{3};
  (void)m.process(9.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.process(1.0), 1.0);
}

TEST(Median, Validation) {
  EXPECT_THROW(MedianFilter{2}, std::invalid_argument);
  EXPECT_THROW(MedianFilter{4}, std::invalid_argument);
  EXPECT_THROW(MedianFilter{1}, std::invalid_argument);
}

}  // namespace
}  // namespace aqua::dsp
