#include "dsp/goertzel.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "dsp/nco.hpp"
#include "util/rng.hpp"

namespace aqua::dsp {
namespace {

using util::hertz;

constexpr double kTwoPi = 6.283185307179586;

TEST(Goertzel, RecoversSineAmplitude) {
  // 100 Hz bin at 8 kHz over 800 samples (10 full periods: coherent).
  Goertzel g{hertz(100.0), hertz(8000.0), 800};
  bool done = false;
  for (int i = 0; i < 800; ++i)
    done = g.push(0.75 * std::sin(kTwoPi * 100.0 * i / 8000.0));
  ASSERT_TRUE(done);
  EXPECT_NEAR(g.amplitude(), 0.75, 1e-9);
}

TEST(Goertzel, RecoversPhase) {
  const double phase_in = 0.6;
  Goertzel g{hertz(125.0), hertz(8000.0), 640};  // coherent: 10 periods
  for (int i = 0; i < 640; ++i)
    g.push(std::cos(kTwoPi * 125.0 * i / 8000.0 + phase_in));
  EXPECT_NEAR(g.phase(), phase_in, 1e-6);
}

TEST(Goertzel, RejectsOtherFrequencies) {
  // A coherent off-bin tone leaks almost nothing.
  Goertzel g{hertz(100.0), hertz(8000.0), 800};
  for (int i = 0; i < 800; ++i)
    g.push(std::sin(kTwoPi * 300.0 * i / 8000.0));
  EXPECT_LT(g.amplitude(), 1e-9);
}

TEST(Goertzel, DcBinMeasuresMean) {
  Goertzel g{hertz(0.0), hertz(1000.0), 100};
  for (int i = 0; i < 100; ++i) g.push(0.4);
  // DC bin with the 2/N normalisation reads 2× the mean.
  EXPECT_NEAR(g.amplitude(), 0.8, 1e-9);
}

TEST(Goertzel, BlockCadence) {
  Goertzel g{hertz(50.0), hertz(1000.0), 100};
  int completions = 0;
  for (int i = 0; i < 350; ++i)
    if (g.push(0.0)) ++completions;
  EXPECT_EQ(completions, 3);
}

TEST(Goertzel, WorksWithNcoStimulus) {
  // The BIST pairing: NCO drives, Goertzel detects.
  Nco nco{hertz(200.0), hertz(16000.0), 0.33};
  Goertzel g{hertz(200.0), hertz(16000.0), 1600};
  for (int i = 0; i < 1600; ++i) g.push(nco.next());
  EXPECT_NEAR(g.amplitude(), 0.33, 1e-3);
}

TEST(Goertzel, ToleratesNoise) {
  util::Rng rng{5};
  Goertzel g{hertz(100.0), hertz(8000.0), 8000};
  for (int i = 0; i < 8000; ++i)
    g.push(0.5 * std::sin(kTwoPi * 100.0 * i / 8000.0) + rng.gaussian(0.0, 0.2));
  EXPECT_NEAR(g.amplitude(), 0.5, 0.02);
}

TEST(Goertzel, Validation) {
  EXPECT_THROW((Goertzel{hertz(600.0), hertz(1000.0), 100}),
               std::invalid_argument);
  EXPECT_THROW((Goertzel{hertz(10.0), hertz(1000.0), 4}), std::invalid_argument);
}

TEST(Goertzel, ResetClearsBlock) {
  Goertzel g{hertz(100.0), hertz(1000.0), 10};
  for (int i = 0; i < 5; ++i) g.push(1.0);
  g.reset();
  int pushes_to_complete = 0;
  while (!g.push(0.0)) ++pushes_to_complete;
  EXPECT_EQ(pushes_to_complete, 9);
}

}  // namespace
}  // namespace aqua::dsp
