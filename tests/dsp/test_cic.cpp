#include "dsp/cic.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace aqua::dsp {
namespace {

TEST(Cic, OutputCadenceMatchesDecimation) {
  CicDecimator cic{3, 16};
  int outputs = 0;
  for (int i = 0; i < 160; ++i)
    if (cic.push(0.0)) ++outputs;
  EXPECT_EQ(outputs, 10);
}

TEST(Cic, ConstantInputMapsToItself) {
  CicDecimator cic{3, 32};
  double last = 0.0;
  for (int i = 0; i < 32 * 10; ++i)
    if (auto y = cic.push(0.73)) last = *y;
  EXPECT_NEAR(last, 0.73, 1e-9);
}

TEST(Cic, RawGainFormula) {
  const CicDecimator cic{3, 16, 2};
  EXPECT_DOUBLE_EQ(cic.raw_gain(), std::pow(32.0, 3.0));
}

TEST(Cic, OutputRate) {
  const CicDecimator cic{3, 64};
  EXPECT_DOUBLE_EQ(cic.output_rate(256000.0), 4000.0);
}

TEST(Cic, BitstreamAverageRecovered) {
  // A ±1 bitstream with 25% duty of +1 averages to −0.5.
  CicDecimator cic{2, 16};
  double last = 0.0;
  for (int i = 0; i < 16 * 20; ++i) {
    const double bit = (i % 4 == 0) ? 1.0 : -1.0;
    if (auto y = cic.push(bit)) last = *y;
  }
  EXPECT_NEAR(last, -0.5, 1e-9);
}

TEST(Cic, SincNullAtOutputRateMultiples) {
  // A sine exactly at the output rate (fs/R) lands on the first sinc null:
  // the decimated output is (nearly) constant.
  constexpr int kR = 32;
  CicDecimator cic{3, kR};
  double min_out = 1e9, max_out = -1e9;
  int count = 0;
  for (int i = 0; i < kR * 200; ++i) {
    const double x = std::sin(2.0 * 3.14159265358979 * i / kR);
    if (auto y = cic.push(x)) {
      ++count;
      if (count > 5) {  // skip the fill-in transient
        min_out = std::min(min_out, *y);
        max_out = std::max(max_out, *y);
      }
    }
  }
  EXPECT_LT(max_out - min_out, 1e-9);
}

TEST(Cic, ResetRestartsPhase) {
  CicDecimator cic{1, 4};
  (void)cic.push(1.0);
  cic.reset();
  int until_first = 0;
  while (!cic.push(1.0)) ++until_first;
  EXPECT_EQ(until_first, 3);  // 4th push yields the sample
}

TEST(Cic, DifferentialDelayTwoStillUnityDc) {
  CicDecimator cic{2, 8, 2};
  double last = 0.0;
  for (int i = 0; i < 8 * 20; ++i)
    if (auto y = cic.push(1.0)) last = *y;
  EXPECT_NEAR(last, 1.0, 1e-9);
}

TEST(Cic, Validation) {
  EXPECT_THROW((CicDecimator{0, 8}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{9, 8}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{3, 0}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{3, 8, 3}), std::invalid_argument);
  EXPECT_NO_THROW((CicDecimator{3, 1}));  // R = 1 degenerates to pass-through
}

TEST(Cic, DecimationOnePassesInputsThrough) {
  // With R = 1 and M = 1 every integrator-comb pair telescopes to identity:
  // each push yields its own input back (to within the Q31 quantisation).
  CicDecimator cic{3, 1};
  for (int i = 0; i < 64; ++i) {
    const double x = std::sin(0.3 * i) * 0.8;
    const auto y = cic.push(x);
    ASSERT_TRUE(y.has_value()) << i;
    EXPECT_NEAR(*y, x, 1e-9) << i;
  }
}

TEST(Cic, OrderOneIsBoxcarAverage) {
  // An order-1 CIC is exactly the mean of each R-block of quantised inputs.
  constexpr int kR = 8;
  CicDecimator cic{1, kR};
  double sum = 0.0;
  for (int i = 0; i < kR; ++i) {
    const double x = 0.1 * (i - 3);
    sum += x;
    const auto y = cic.push(x);
    if (i < kR - 1) {
      EXPECT_FALSE(y.has_value());
    } else {
      ASSERT_TRUE(y.has_value());
      EXPECT_NEAR(*y, sum / kR, 1e-9);
    }
  }
}

TEST(Cic, OrderFourBitstreamAverageRecovered) {
  // High-order edge: (R·M)^4 gain, still unity at DC for a 50% duty stream.
  CicDecimator cic{4, 16};
  double last = 1.0;
  for (int i = 0; i < 16 * 30; ++i)
    if (auto y = cic.push((i % 2 == 0) ? 1.0 : -1.0)) last = *y;
  EXPECT_NEAR(last, 0.0, 1e-9);
}

TEST(Cic, ResetMidFrameDiscardsPartialAccumulation) {
  CicDecimator cic{2, 8};
  // Poison the integrators with a partial frame of full-scale input…
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(cic.push(1.0).has_value());
  cic.reset();
  // …then a clean frame of a different DC must decode as if freshly built.
  CicDecimator fresh{2, 8};
  for (int i = 0; i < 8 * 4; ++i) {
    const auto a = cic.push(-0.25);
    const auto b = fresh.push(-0.25);
    ASSERT_EQ(a.has_value(), b.has_value()) << i;
    if (a) {
      EXPECT_EQ(*a, *b) << i;
    }
  }
}

TEST(Cic, PushBlockBitIdenticalToPush) {
  CicDecimator scalar{3, 16};
  CicDecimator block{3, 16};
  std::vector<double> x(16 * 12 + 7);  // deliberately not frame-aligned
  for (size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.2 * static_cast<double>(i));
  std::vector<double> expect;
  for (double v : x)
    if (auto y = scalar.push(v)) expect.push_back(*y);
  std::vector<double> got(expect.size() + 4);
  size_t n = 0;
  // Odd chunk sizes so block boundaries straddle decimation frames.
  for (size_t at = 0; at < x.size();) {
    const size_t len = std::min<size_t>(13, x.size() - at);
    n += block.push_block(std::span<const double>{x}.subspan(at, len),
                          std::span<double>{got}.subspan(n));
    at += len;
  }
  ASSERT_EQ(n, expect.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(expect[i], got[i]) << i;
  }
}

TEST(Cic, KernelPushBitBitIdenticalToPush) {
  // push_bit() hoists the llround out of the fused loop for exact ±1.0
  // inputs; the integer words it integrates must match push(±1.0) exactly.
  CicDecimator scalar{3, 32};
  CicDecimator block{3, 32};
  auto k = block.begin_block();
  for (int i = 0; i < 32 * 6; ++i) {
    const double bit = ((i * 7) % 3 == 0) ? 1.0 : -1.0;
    const auto y = scalar.push(bit);
    const bool due = k.push_bit(bit);
    ASSERT_EQ(y.has_value(), due) << i;
    if (due) {
      EXPECT_EQ(*y, block.emit(k)) << i;
    }
  }
  block.commit_block(k);
  // Both sides agree on the next full frame too.
  for (int i = 0; i < 32; ++i) {
    const auto a = scalar.push(1.0);
    const auto b = block.push(1.0);
    ASSERT_EQ(a.has_value(), b.has_value()) << i;
    if (a) {
      EXPECT_EQ(*a, *b) << i;
    }
  }
}

class CicOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(CicOrderSweep, DcUnityForAllOrders) {
  CicDecimator cic{GetParam(), 16};
  double last = 0.0;
  for (int i = 0; i < 16 * (GetParam() + 5); ++i)
    if (auto y = cic.push(-0.4)) last = *y;
  EXPECT_NEAR(last, -0.4, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, CicOrderSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace aqua::dsp
