#include "dsp/cic.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::dsp {
namespace {

TEST(Cic, OutputCadenceMatchesDecimation) {
  CicDecimator cic{3, 16};
  int outputs = 0;
  for (int i = 0; i < 160; ++i)
    if (cic.push(0.0)) ++outputs;
  EXPECT_EQ(outputs, 10);
}

TEST(Cic, ConstantInputMapsToItself) {
  CicDecimator cic{3, 32};
  double last = 0.0;
  for (int i = 0; i < 32 * 10; ++i)
    if (auto y = cic.push(0.73)) last = *y;
  EXPECT_NEAR(last, 0.73, 1e-9);
}

TEST(Cic, RawGainFormula) {
  const CicDecimator cic{3, 16, 2};
  EXPECT_DOUBLE_EQ(cic.raw_gain(), std::pow(32.0, 3.0));
}

TEST(Cic, OutputRate) {
  const CicDecimator cic{3, 64};
  EXPECT_DOUBLE_EQ(cic.output_rate(256000.0), 4000.0);
}

TEST(Cic, BitstreamAverageRecovered) {
  // A ±1 bitstream with 25% duty of +1 averages to −0.5.
  CicDecimator cic{2, 16};
  double last = 0.0;
  for (int i = 0; i < 16 * 20; ++i) {
    const double bit = (i % 4 == 0) ? 1.0 : -1.0;
    if (auto y = cic.push(bit)) last = *y;
  }
  EXPECT_NEAR(last, -0.5, 1e-9);
}

TEST(Cic, SincNullAtOutputRateMultiples) {
  // A sine exactly at the output rate (fs/R) lands on the first sinc null:
  // the decimated output is (nearly) constant.
  constexpr int kR = 32;
  CicDecimator cic{3, kR};
  double min_out = 1e9, max_out = -1e9;
  int count = 0;
  for (int i = 0; i < kR * 200; ++i) {
    const double x = std::sin(2.0 * 3.14159265358979 * i / kR);
    if (auto y = cic.push(x)) {
      ++count;
      if (count > 5) {  // skip the fill-in transient
        min_out = std::min(min_out, *y);
        max_out = std::max(max_out, *y);
      }
    }
  }
  EXPECT_LT(max_out - min_out, 1e-9);
}

TEST(Cic, ResetRestartsPhase) {
  CicDecimator cic{1, 4};
  (void)cic.push(1.0);
  cic.reset();
  int until_first = 0;
  while (!cic.push(1.0)) ++until_first;
  EXPECT_EQ(until_first, 3);  // 4th push yields the sample
}

TEST(Cic, DifferentialDelayTwoStillUnityDc) {
  CicDecimator cic{2, 8, 2};
  double last = 0.0;
  for (int i = 0; i < 8 * 20; ++i)
    if (auto y = cic.push(1.0)) last = *y;
  EXPECT_NEAR(last, 1.0, 1e-9);
}

TEST(Cic, Validation) {
  EXPECT_THROW((CicDecimator{0, 8}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{9, 8}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{3, 1}), std::invalid_argument);
  EXPECT_THROW((CicDecimator{3, 8, 3}), std::invalid_argument);
}

class CicOrderSweep : public ::testing::TestWithParam<int> {};

TEST_P(CicOrderSweep, DcUnityForAllOrders) {
  CicDecimator cic{GetParam(), 16};
  double last = 0.0;
  for (int i = 0; i < 16 * (GetParam() + 5); ++i)
    if (auto y = cic.push(-0.4)) last = *y;
  EXPECT_NEAR(last, -0.4, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Orders, CicOrderSweep, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace aqua::dsp
