#include "dsp/nco.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::dsp {
namespace {

using util::hertz;

TEST(Nco, MatchesReferenceSine) {
  Nco nco{hertz(100.0), hertz(10000.0)};
  double max_err = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double ref = std::sin(2.0 * 3.14159265358979 * 100.0 * i / 10000.0);
    max_err = std::max(max_err, std::abs(nco.next() - ref));
  }
  EXPECT_LT(max_err, 1e-4);  // 10-bit LUT + interpolation
}

TEST(Nco, AmplitudeScales) {
  Nco nco{hertz(250.0), hertz(10000.0), 2.5};
  double peak = 0.0;
  for (int i = 0; i < 200; ++i) peak = std::max(peak, std::abs(nco.next()));
  EXPECT_NEAR(peak, 2.5, 0.01);
}

TEST(Nco, FrequencyReadbackQuantised) {
  Nco nco{hertz(123.4), hertz(48000.0)};
  EXPECT_NEAR(nco.frequency().value(), 123.4, 0.01);
}

TEST(Nco, DcAtZeroFrequency) {
  Nco nco{hertz(0.0), hertz(1000.0)};
  for (int i = 0; i < 10; ++i) EXPECT_NEAR(nco.next(), 0.0, 1e-12);
}

TEST(Nco, MeanIsZeroOverFullPeriods) {
  Nco nco{hertz(100.0), hertz(10000.0)};
  double sum = 0.0;
  for (int i = 0; i < 1000; ++i) sum += nco.next();  // 10 periods
  EXPECT_NEAR(sum / 1000.0, 0.0, 1e-3);
}

TEST(Nco, PhaseResetRestarts) {
  Nco nco{hertz(100.0), hertz(10000.0)};
  const double first = nco.next();
  for (int i = 0; i < 37; ++i) (void)nco.next();
  nco.reset_phase();
  EXPECT_DOUBLE_EQ(nco.next(), first);
}

TEST(Nco, RetuneMidStream) {
  Nco nco{hertz(100.0), hertz(10000.0)};
  (void)nco.next();
  nco.set_frequency(hertz(200.0));
  EXPECT_NEAR(nco.frequency().value(), 200.0, 0.01);
}

TEST(Nco, RmsMatchesSine) {
  Nco nco{hertz(50.0), hertz(10000.0)};
  double acc = 0.0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double s = nco.next();
    acc += s * s;
  }
  EXPECT_NEAR(std::sqrt(acc / kN), 1.0 / std::sqrt(2.0), 1e-3);
}

TEST(Nco, Validation) {
  EXPECT_THROW((Nco{hertz(600.0), hertz(1000.0)}), std::invalid_argument);
  EXPECT_THROW((Nco{hertz(-1.0), hertz(1000.0)}), std::invalid_argument);
  EXPECT_THROW((Nco{hertz(10.0), hertz(0.0)}), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::dsp
