#include "dsp/fir.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace aqua::dsp {
namespace {

using util::hertz;

TEST(FirDesign, UnityDcGain) {
  for (auto w : {Window::kRectangular, Window::kHamming, Window::kBlackman}) {
    const auto taps = design_fir_lowpass(31, hertz(100.0), hertz(2000.0), w);
    const double sum = std::accumulate(taps.begin(), taps.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(FirDesign, SymmetricTaps) {
  const auto taps = design_fir_lowpass(21, hertz(100.0), hertz(2000.0));
  for (std::size_t i = 0; i < taps.size() / 2; ++i)
    EXPECT_NEAR(taps[i], taps[taps.size() - 1 - i], 1e-12);
}

TEST(FirDesign, Validation) {
  EXPECT_THROW((void)design_fir_lowpass(2, hertz(10), hertz(100)),
               std::invalid_argument);
  EXPECT_THROW((void)design_fir_lowpass(11, hertz(60), hertz(100)),
               std::invalid_argument);
}

TEST(FirFilter, MovingAverageOfStep) {
  FirFilter f{design_moving_average(4)};
  EXPECT_DOUBLE_EQ(f.process(1.0), 0.25);
  EXPECT_DOUBLE_EQ(f.process(1.0), 0.5);
  EXPECT_DOUBLE_EQ(f.process(1.0), 0.75);
  EXPECT_DOUBLE_EQ(f.process(1.0), 1.0);
  EXPECT_DOUBLE_EQ(f.process(1.0), 1.0);
}

TEST(FirFilter, ImpulseReproducesTaps) {
  const std::vector<double> taps{0.1, 0.2, 0.4, 0.2, 0.1};
  FirFilter f{taps};
  std::vector<double> response;
  response.push_back(f.process(1.0));
  for (int i = 0; i < 4; ++i) response.push_back(f.process(0.0));
  for (std::size_t i = 0; i < taps.size(); ++i)
    EXPECT_NEAR(response[i], taps[i], 1e-15);
}

TEST(FirFilter, GroupDelayHalfLength) {
  FirFilter f{design_fir_lowpass(31, hertz(100.0), hertz(2000.0))};
  EXPECT_DOUBLE_EQ(f.group_delay(), 15.0);
}

TEST(FirFilter, StopbandAttenuationHamming) {
  FirFilter f{design_fir_lowpass(63, hertz(100.0), hertz(2000.0),
                                 Window::kHamming)};
  // Well into the stopband (4× cutoff) a 63-tap Hamming design is ≤ −50 dB.
  const double mag = f.magnitude(hertz(400.0), hertz(2000.0));
  EXPECT_LT(20.0 * std::log10(mag), -50.0);
}

TEST(FirFilter, PassbandFlat) {
  FirFilter f{design_fir_lowpass(63, hertz(200.0), hertz(2000.0))};
  EXPECT_NEAR(f.magnitude(hertz(20.0), hertz(2000.0)), 1.0, 0.01);
}

TEST(FirFilter, SineAttenuationMatchesMagnitude) {
  // Drive with a stopband sine and compare the measured amplitude with the
  // frequency-response prediction.
  const double fs = 2000.0, fin = 500.0;
  FirFilter f{design_fir_lowpass(41, hertz(100.0), hertz(fs))};
  const double predicted = f.magnitude(hertz(fin), hertz(fs));
  double peak = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double x = std::sin(2.0 * 3.14159265358979 * fin * i / fs);
    const double y = f.process(x);
    if (i > 100) peak = std::max(peak, std::abs(y));
  }
  EXPECT_NEAR(peak, predicted, 0.01);
}

TEST(FirFilter, ResetClearsState) {
  FirFilter f{design_moving_average(4)};
  f.process(4.0);
  f.reset();
  EXPECT_DOUBLE_EQ(f.process(0.0), 0.0);
}

TEST(FirFilter, RejectsEmptyTaps) {
  EXPECT_THROW(FirFilter{std::vector<double>{}}, std::invalid_argument);
  EXPECT_THROW((void)design_moving_average(0), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::dsp
