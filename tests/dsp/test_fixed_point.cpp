#include "dsp/fixed_point.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::dsp {
namespace {

TEST(Fixed, RoundTripWithinLsb) {
  for (double v : {0.0, 0.1, -0.7, 3.14159, -100.5}) {
    const auto q = Q15::from_double(v);
    EXPECT_NEAR(q.to_double(), v, 1.0 / Q15::kScale);
  }
}

TEST(Fixed, Q23HasFinerResolution) {
  const double v = 1.0 / 65536.0;
  EXPECT_NEAR(Q23::from_double(v).to_double(), v, 1.0 / Q23::kScale);
}

TEST(Fixed, AdditionExact) {
  const auto a = Q15::from_double(1.25);
  const auto b = Q15::from_double(2.5);
  EXPECT_DOUBLE_EQ((a + b).to_double(), 3.75);
  EXPECT_DOUBLE_EQ((b - a).to_double(), 1.25);
}

TEST(Fixed, MultiplicationRounds) {
  const auto a = Q15::from_double(0.5);
  const auto b = Q15::from_double(0.25);
  EXPECT_NEAR((a * b).to_double(), 0.125, 1.0 / Q15::kScale);
}

TEST(Fixed, SaturatesInsteadOfWrapping) {
  const auto big = Q15::from_double(70000.0);
  EXPECT_DOUBLE_EQ(big.to_double(),
                   static_cast<double>(Q15::kMax) / Q15::kScale);
  const auto sum = big + big;  // would wrap in int32 without saturation
  EXPECT_EQ(sum.raw(), Q15::kMax);
  const auto neg = Q15::from_double(-70000.0);
  EXPECT_EQ((neg + neg).raw(), Q15::kMin);
}

TEST(Fixed, Determinism) {
  // The whole point of the HW/SW "exact match": the same inputs give the same
  // raw codes, every time.
  const auto a = Q23::from_double(0.123456);
  const auto b = Q23::from_double(-0.654321);
  const auto p1 = (a * b + a).raw();
  const auto p2 = (Q23::from_double(0.123456) * Q23::from_double(-0.654321) +
                   Q23::from_double(0.123456))
                      .raw();
  EXPECT_EQ(p1, p2);
}

TEST(Fixed, ComparisonOperators) {
  EXPECT_LT(Q15::from_double(0.1), Q15::from_double(0.2));
  EXPECT_EQ(Q15::from_double(0.5), Q15::from_double(0.5));
}

TEST(QuantizeCode, MidScaleAndExtremes) {
  EXPECT_EQ(quantize_code(0.0, 1.0, 16), 0);
  EXPECT_EQ(quantize_code(1.0, 1.0, 16), 32767);
  EXPECT_EQ(quantize_code(-1.0, 1.0, 16), -32767);
  EXPECT_EQ(quantize_code(10.0, 1.0, 16), 32767);    // clamps
  EXPECT_EQ(quantize_code(-10.0, 1.0, 16), -32768);  // clamps
}

TEST(QuantizeCode, RoundTripWithinLsb) {
  for (double v : {-0.9, -0.33, 0.0, 0.5, 0.99}) {
    const auto code = quantize_code(v, 1.0, 16);
    EXPECT_NEAR(dequantize_code(code, 1.0, 16), v, lsb_size(1.0, 16));
  }
}

TEST(QuantizeCode, LsbSizeFormula) {
  EXPECT_DOUBLE_EQ(lsb_size(1.0, 16), 1.0 / 32767.0);
  EXPECT_DOUBLE_EQ(lsb_size(2.0, 12), 2.0 / 2047.0);
}

TEST(QuantizeCode, Validation) {
  EXPECT_THROW((void)quantize_code(0.0, 0.0, 16), std::invalid_argument);
  EXPECT_THROW((void)quantize_code(0.0, 1.0, 1), std::invalid_argument);
  EXPECT_THROW((void)dequantize_code(0, 1.0, 40), std::invalid_argument);
  EXPECT_THROW((void)lsb_size(-1.0, 16), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::dsp
