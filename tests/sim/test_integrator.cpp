#include "sim/integrator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace aqua::sim {
namespace {

using util::Seconds;

TEST(Rk4, ExponentialDecayFourthOrder) {
  // dy/dt = −y, y(0)=1 → y(1)=e⁻¹. RK4 at dt=0.1 should be accurate to ~1e-7.
  std::vector<double> y{1.0};
  const OdeRhs f = [](double, std::span<const double> yy, std::span<double> d) {
    d[0] = -yy[0];
  };
  for (int i = 0; i < 10; ++i) rk4_step(f, 0.1 * i, Seconds{0.1}, y);
  EXPECT_NEAR(y[0], std::exp(-1.0), 5e-7);
}

TEST(Rk4, HarmonicOscillatorConservesAmplitude) {
  std::vector<double> y{1.0, 0.0};  // x, v
  const OdeRhs f = [](double, std::span<const double> yy, std::span<double> d) {
    d[0] = yy[1];
    d[1] = -yy[0];
  };
  const double dt = 0.01;
  for (int i = 0; i < 628; ++i) rk4_step(f, dt * i, Seconds{dt}, y);  // ~one period
  EXPECT_NEAR(y[0], 1.0, 1e-4);
  EXPECT_NEAR(y[1], 0.0, 5e-3);
}

TEST(Rk4, TimeDependentRhs) {
  // dy/dt = t → y(T) = T²/2.
  std::vector<double> y{0.0};
  const OdeRhs f = [](double t, std::span<const double>, std::span<double> d) {
    d[0] = t;
  };
  const double dt = 0.05;
  for (int i = 0; i < 40; ++i) rk4_step(f, dt * i, Seconds{dt}, y);
  EXPECT_NEAR(y[0], 2.0, 1e-9);
}

TEST(Euler, FirstOrderConvergence) {
  std::vector<double> y{1.0};
  const OdeRhs f = [](double, std::span<const double> yy, std::span<double> d) {
    d[0] = -yy[0];
  };
  for (int i = 0; i < 1000; ++i) euler_step(f, 0.0, Seconds{0.001}, y);
  EXPECT_NEAR(y[0], std::exp(-1.0), 2e-4);
}

TEST(FirstOrderLag, AnalyticStepIsExact) {
  FirstOrderLag lag{0.0, Seconds{0.5}};
  lag.step(1.0, Seconds{0.5});  // one tau → 1 − e⁻¹
  EXPECT_NEAR(lag.value(), 1.0 - std::exp(-1.0), 1e-12);
}

TEST(FirstOrderLag, LargeStepLandsOnTarget) {
  FirstOrderLag lag{5.0, Seconds{1e-6}};
  lag.step(2.0, Seconds{1.0});
  EXPECT_NEAR(lag.value(), 2.0, 1e-12);
}

TEST(FirstOrderLag, ZeroTauTracksInstantly) {
  FirstOrderLag lag{0.0, Seconds{0.0}};
  lag.step(42.0, Seconds{1e-9});
  EXPECT_DOUBLE_EQ(lag.value(), 42.0);
}

TEST(FirstOrderLag, ResetAndRetune) {
  FirstOrderLag lag{0.0, Seconds{1.0}};
  lag.reset(3.0);
  EXPECT_DOUBLE_EQ(lag.value(), 3.0);
  lag.set_tau(Seconds{2.0});
  lag.step(3.0, Seconds{10.0});
  EXPECT_NEAR(lag.value(), 3.0, 1e-12);
  EXPECT_THROW(lag.set_tau(Seconds{-1.0}), std::invalid_argument);
}

TEST(FirstOrderLag, RejectsNegativeTau) {
  EXPECT_THROW((FirstOrderLag{0.0, Seconds{-0.1}}), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::sim
