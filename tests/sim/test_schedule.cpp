#include "sim/schedule.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::sim {
namespace {

using util::hertz;
using util::Seconds;

TEST(Schedule, EmptyReturnsInitial) {
  const Schedule s{3.0};
  EXPECT_DOUBLE_EQ(s.at(Seconds{0.0}), 3.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{100.0}), 3.0);
  EXPECT_DOUBLE_EQ(s.duration().value(), 0.0);
}

TEST(Schedule, StepAndHold) {
  Schedule s{0.0};
  s.step_to(2.0, Seconds{5.0}).hold(Seconds{5.0});
  EXPECT_DOUBLE_EQ(s.at(Seconds{1.0}), 2.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{9.0}), 2.0);
  EXPECT_DOUBLE_EQ(s.duration().value(), 10.0);
}

TEST(Schedule, RampInterpolatesLinearly) {
  Schedule s{1.0};
  s.ramp_to(5.0, Seconds{4.0});
  EXPECT_DOUBLE_EQ(s.at(Seconds{0.0}), 1.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{2.0}), 3.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{4.0}), 5.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{99.0}), 5.0);  // clamp after end
}

TEST(Schedule, SegmentsChainInOrder) {
  Schedule s{0.0};
  s.step_to(1.0, Seconds{1.0}).ramp_to(3.0, Seconds{2.0}).hold(Seconds{1.0});
  EXPECT_DOUBLE_EQ(s.at(Seconds{0.5}), 1.0);
  EXPECT_DOUBLE_EQ(s.at(Seconds{2.0}), 2.0);  // mid-ramp
  EXPECT_DOUBLE_EQ(s.at(Seconds{3.5}), 3.0);
}

TEST(Schedule, SineSuperposesOnLevel) {
  Schedule s{2.0};
  s.sine(0.5, hertz(1.0), Seconds{10.0});
  EXPECT_NEAR(s.at(Seconds{0.25}), 2.5, 1e-9);   // quarter period: +amp
  EXPECT_NEAR(s.at(Seconds{0.75}), 1.5, 1e-9);   // three quarters: −amp
  EXPECT_NEAR(s.at(Seconds{1.0}), 2.0, 1e-9);
}

TEST(Schedule, StaircaseVisitsLevels) {
  Schedule s{0.0};
  const std::vector<double> levels{0.1, 0.2, 0.3};
  s.staircase(levels, Seconds{2.0});
  EXPECT_DOUBLE_EQ(s.at(Seconds{1.0}), 0.1);
  EXPECT_DOUBLE_EQ(s.at(Seconds{3.0}), 0.2);
  EXPECT_DOUBLE_EQ(s.at(Seconds{5.0}), 0.3);
  EXPECT_DOUBLE_EQ(s.duration().value(), 6.0);
}

TEST(Schedule, NegativeTimeReturnsInitial) {
  Schedule s{7.0};
  s.step_to(1.0, Seconds{1.0});
  EXPECT_DOUBLE_EQ(s.at(Seconds{-1.0}), 7.0);
}

TEST(Schedule, RejectsNegativeDuration) {
  Schedule s{0.0};
  EXPECT_THROW(s.hold(Seconds{-1.0}), std::invalid_argument);
}

TEST(Linspace, EndpointsAndSpacing) {
  const auto v = linspace(0.0, 2.5, 6);
  ASSERT_EQ(v.size(), 6u);
  EXPECT_DOUBLE_EQ(v.front(), 0.0);
  EXPECT_DOUBLE_EQ(v.back(), 2.5);
  EXPECT_DOUBLE_EQ(v[1], 0.5);
}

TEST(Linspace, SinglePointAndValidation) {
  EXPECT_EQ(linspace(3.0, 9.0, 1).front(), 3.0);
  EXPECT_THROW((void)linspace(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::sim
