#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace aqua::sim {
namespace {

using util::Seconds;

TEST(Trace, RecordsAndRetrieves) {
  Trace tr;
  tr.record("u", Seconds{0.0}, 1.0);
  tr.record("u", Seconds{0.1}, 2.0);
  EXPECT_TRUE(tr.has("u"));
  EXPECT_FALSE(tr.has("v"));
  ASSERT_EQ(tr.size("u"), 2u);
  EXPECT_DOUBLE_EQ(tr.values("u")[1], 2.0);
  EXPECT_DOUBLE_EQ(tr.times("u")[1], 0.1);
  EXPECT_DOUBLE_EQ(tr.back("u"), 2.0);
}

TEST(Trace, StrideDecimates) {
  Trace tr{10};
  for (int i = 0; i < 100; ++i)
    tr.record("x", Seconds{0.01 * i}, static_cast<double>(i));
  EXPECT_EQ(tr.size("x"), 10u);
  EXPECT_DOUBLE_EQ(tr.values("x")[1], 10.0);
}

TEST(Trace, MeanBetweenWindow) {
  Trace tr;
  for (int i = 0; i <= 10; ++i)
    tr.record("x", Seconds{static_cast<double>(i)}, static_cast<double>(i));
  EXPECT_DOUBLE_EQ(tr.mean_between("x", Seconds{3.0}, Seconds{5.0}), 4.0);
  EXPECT_THROW((void)tr.mean_between("x", Seconds{20.0}, Seconds{30.0}),
               std::out_of_range);
}

TEST(Trace, UnknownChannelThrows) {
  const Trace tr;
  EXPECT_THROW((void)tr.values("nope"), std::out_of_range);
  EXPECT_THROW((void)tr.back("nope"), std::out_of_range);
}

TEST(Trace, ChannelsListedSorted) {
  Trace tr;
  tr.record("b", Seconds{0.0}, 0.0);
  tr.record("a", Seconds{0.0}, 0.0);
  const auto names = tr.channels();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(Trace, CsvWritten) {
  Trace tr;
  tr.record("u", Seconds{0.0}, 1.5);
  const std::string path = testing::TempDir() + "/aqua_trace_test.csv";
  tr.write_csv(path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "t_u,u");
  std::remove(path.c_str());
}

TEST(Trace, CsvUnequalChannelLengths) {
  // Channels are written as independent blocks, so different lengths must
  // round-trip without padding or truncation.
  Trace tr;
  tr.record("long", Seconds{0.0}, 1.0);
  tr.record("long", Seconds{1.0}, 2.0);
  tr.record("long", Seconds{2.0}, 3.0);
  tr.record("short", Seconds{0.5}, 9.0);

  const std::string path = testing::TempDir() + "/aqua_trace_unequal.csv";
  tr.write_csv(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  std::remove(path.c_str());

  // Block 1: "long" header + 3 rows + blank; block 2: "short" header + 1 row
  // + blank (channels iterate in sorted order).
  ASSERT_EQ(lines.size(), 8u);
  EXPECT_EQ(lines[0], "t_long,long");
  EXPECT_EQ(lines[1], "0,1");
  EXPECT_EQ(lines[3], "2,3");
  EXPECT_EQ(lines[4], "");
  EXPECT_EQ(lines[5], "t_short,short");
  EXPECT_EQ(lines[6], "0.5,9");
  EXPECT_EQ(lines[7], "");
}

TEST(Trace, ClearEmpties) {
  Trace tr;
  tr.record("u", Seconds{0.0}, 1.0);
  tr.clear();
  EXPECT_FALSE(tr.has("u"));
}

}  // namespace
}  // namespace aqua::sim
