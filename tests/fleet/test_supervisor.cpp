// FleetSupervisor state machine: quarantine on hard faults, suspect streaks
// for soft ones, capped exponential backoff on re-commission, probation,
// recovery, permanent failure — and the estimate-validity mask that keeps
// quarantined sensors out of downstream consumers.
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rig.hpp"
#include "fleet/fleet.hpp"
#include "fleet/supervisor.hpp"

namespace aqua::fleet {
namespace {

using util::Seconds;

struct District {
  hydro::WaterNetwork net;
  std::vector<SensorPlacement> placements;
};

// Two-pipe line (reservoir → a → b), one sensor per pipe — enough topology to
// exercise every supervision path at a fraction of the 10-pipe district cost.
District make_line() {
  District d;
  const auto res = d.net.add_reservoir(30.0);
  const auto a = d.net.add_junction(2.0, 0.002);
  const auto b = d.net.add_junction(1.0, 0.002);
  using util::metres;
  using util::millimetres;
  d.net.add_pipe(res, a, metres(200.0), millimetres(150.0));
  d.net.add_pipe(a, b, metres(200.0), millimetres(100.0));
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p)
    d.placements.push_back(SensorPlacement{p, 0.0});
  return d;
}

FleetConfig make_config() {
  FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 77;
  cfg.epoch = Seconds{0.25};
  return cfg;
}

struct Rig {
  District d;
  FleetEngine engine;
  std::unique_ptr<FleetSupervisor> supervisor_;

  explicit Rig(const SupervisorConfig& sup_cfg = {},
               const FleetConfig& cfg = make_config())
      : d(make_line()), engine(d.net, d.placements, cfg) {
    engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
    engine.commission(Seconds{0.2});
    supervisor_ = std::make_unique<FleetSupervisor>(engine, sup_cfg);
  }

  FleetSupervisor& supervisor() { return *supervisor_; }

  void step(int epochs) {
    for (int e = 0; e < epochs; ++e) {
      engine.step_epoch();
      supervisor_->poll();
    }
  }
};

TEST(FleetSupervisor, HealthyFleetStaysInService) {
  Rig rig;
  rig.step(12);
  for (std::size_t i = 0; i < rig.engine.size(); ++i) {
    EXPECT_EQ(rig.supervisor().state(i), NodeHealthState::kHealthy);
    EXPECT_TRUE(rig.engine.estimate_valid(i));
  }
  EXPECT_EQ(rig.supervisor().in_service_count(), rig.engine.size());
  EXPECT_EQ(rig.supervisor().stats().quarantines, 0);
  EXPECT_EQ(rig.supervisor().stats().recommission_attempts, 0);
}

TEST(FleetSupervisor, PollBeforeFirstEpochIsBenign) {
  Rig rig;
  rig.supervisor().poll();  // no sample yet — must not fault anything
  EXPECT_EQ(rig.supervisor().count_in(NodeHealthState::kHealthy),
            rig.engine.size());
}

TEST(FleetSupervisor, HardFaultQuarantinesImmediately) {
  Rig rig;
  rig.step(4);
  rig.engine.node(1).anemometer().die().damage_membrane();
  rig.step(1);
  EXPECT_EQ(rig.supervisor().state(1), NodeHealthState::kQuarantined);
  EXPECT_FALSE(rig.engine.estimate_valid(1));
  EXPECT_EQ(rig.supervisor().supervision(1).quarantine_entries, 1);
  EXPECT_EQ(rig.supervisor().stats().quarantines, 1);
  // The other sensor is untouched.
  EXPECT_EQ(rig.supervisor().state(0), NodeHealthState::kHealthy);

  const MaskedEstimates masked = rig.engine.latest_estimates_masked();
  EXPECT_EQ(masked.valid[1], 0);
  EXPECT_EQ(masked.values[1], 0.0);  // pinned, not a stale pre-fault sample
  EXPECT_NE(masked.valid[0], 0);
  EXPECT_EQ(masked.valid_count(), 1u);
}

TEST(FleetSupervisor, SoftFaultNeedsConsecutiveStreak) {
  SupervisorConfig cfg;
  // Make the healthy flow read as out-of-range: a soft fault on every poll
  // once the output filter has ramped past the (absurdly low) range gate.
  cfg.health.range_max = util::metres_per_second(0.01);
  Rig rig(cfg);
  rig.step(1);  // first epoch still reads ~0 — the filter starts from zero
  ASSERT_EQ(rig.supervisor().state(1), NodeHealthState::kHealthy);
  rig.step(1);
  EXPECT_EQ(rig.supervisor().state(1), NodeHealthState::kSuspect);
  EXPECT_TRUE(rig.engine.estimate_valid(1));  // suspect is still in service
  rig.step(1);
  EXPECT_EQ(rig.supervisor().state(1), NodeHealthState::kSuspect);
  rig.step(1);  // third consecutive faulty poll = suspect_epochs
  EXPECT_EQ(rig.supervisor().state(1), NodeHealthState::kQuarantined);
  EXPECT_FALSE(rig.engine.estimate_valid(1));
}

TEST(FleetSupervisor, PermanentFaultExhaustsBackoffAndFails) {
  Rig rig;
  rig.step(2);
  rig.engine.node(0).anemometer().die().damage_membrane();
  rig.step(1);
  ASSERT_EQ(rig.supervisor().state(0), NodeHealthState::kQuarantined);

  // Walk through every re-commission attempt: the membrane never heals, so
  // each attempt relapses (or flunks self-test), the backoff doubles, and the
  // supervisor eventually gives up for good.
  rig.step(80);
  EXPECT_EQ(rig.supervisor().state(0), NodeHealthState::kFailed);
  EXPECT_EQ(rig.supervisor().supervision(0).recommission_attempts, 4);
  EXPECT_EQ(rig.supervisor().stats().failures, 1);
  EXPECT_FALSE(rig.engine.estimate_valid(0));
  // Backoff saturates at the configured cap, never beyond.
  EXPECT_LE(rig.supervisor().supervision(0).backoff_next, 16);

  // A failed sensor stays failed.
  rig.step(4);
  EXPECT_EQ(rig.supervisor().state(0), NodeHealthState::kFailed);
}

TEST(FleetSupervisor, TransientFaultRecoversThroughBackoff) {
  Rig rig;
  rig.step(4);
  // Watchdog overrun: latches in firmware until the supervisor's reboot.
  rig.engine.node(1).anemometer().platform().firmware().inject_overrun_cycles(
      1e6);
  rig.step(2);
  ASSERT_EQ(rig.supervisor().state(1), NodeHealthState::kQuarantined);
  EXPECT_FALSE(rig.engine.estimate_valid(1));

  // Backoff (2 epochs) → re-commission (reboot clears the latch) → probation
  // (4 clean polls) → healthy. 30 epochs is generous headroom.
  rig.step(30);
  EXPECT_EQ(rig.supervisor().state(1), NodeHealthState::kHealthy);
  EXPECT_TRUE(rig.engine.estimate_valid(1));
  const NodeSupervision& sup = rig.supervisor().supervision(1);
  EXPECT_EQ(sup.recoveries, 1);
  EXPECT_GE(sup.recovered_t_s, 0.0);
  // Recovery rearms the backoff for the next incident.
  EXPECT_EQ(sup.recommission_attempts, 0);
  EXPECT_EQ(sup.backoff_next, 2);
  EXPECT_EQ(rig.supervisor().stats().recoveries, 1);
}

TEST(FleetSupervisor, CommissionRunsAndReportsSelfTest) {
  Rig rig;
  for (std::size_t i = 0; i < rig.engine.size(); ++i) {
    const auto& result = rig.engine.node(i).last_self_test();
    ASSERT_TRUE(result.has_value());
    EXPECT_TRUE(result->pass);
  }
  rig.step(2);
  const FleetReport report = rig.engine.report();
  for (const SensorSummary& s : report.sensors) {
    EXPECT_TRUE(s.self_tested);
    EXPECT_TRUE(s.self_test_pass);
    EXPECT_LT(std::abs(s.self_test_gain_error), 1.0);
  }
}

TEST(FleetSupervisor, RecommissionReturnsSelfTestResult) {
  Rig rig;
  rig.step(2);
  const isif::ChannelSelfTestResult result =
      rig.engine.recommission(0, Seconds{0.3});
  EXPECT_TRUE(result.pass);
  EXPECT_TRUE(rig.engine.node(0).last_self_test().has_value());
  // The rebooted node keeps co-simulating.
  rig.step(2);
  EXPECT_TRUE(rig.engine.node(0).latest_sample().has_value());
}

TEST(FleetSupervisor, ConfigValidation) {
  District d = make_line();
  FleetEngine engine(d.net, d.placements, make_config());
  SupervisorConfig bad;
  bad.suspect_epochs = 0;
  EXPECT_THROW(FleetSupervisor(engine, bad), std::invalid_argument);
  SupervisorConfig bad2;
  bad2.backoff_max_epochs = 1;  // below backoff_initial_epochs
  EXPECT_THROW(FleetSupervisor(engine, bad2), std::invalid_argument);
}

TEST(FleetSupervisor, StateNamesAreStable) {
  EXPECT_STREQ(node_health_state_name(NodeHealthState::kHealthy), "healthy");
  EXPECT_STREQ(node_health_state_name(NodeHealthState::kSuspect), "suspect");
  EXPECT_STREQ(node_health_state_name(NodeHealthState::kQuarantined),
               "quarantined");
  EXPECT_STREQ(node_health_state_name(NodeHealthState::kProbation),
               "probation");
  EXPECT_STREQ(node_health_state_name(NodeHealthState::kFailed), "failed");
}

}  // namespace
}  // namespace aqua::fleet
