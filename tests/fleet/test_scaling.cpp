// Scaling battery for the cost-balanced sharded epoch loop: LPT planner
// properties, 1k-sensor bit-identity across thread counts under adversarial
// cost skew, mid-run rebalances and pathological manual plans, the "shard
// assignment never changes RNG stream consumption" property, and the
// one-task-per-shard-per-epoch regression gate on the pool task counter
// (the old fork/join loop fed ~13 micro-tasks per epoch; this suite pins the
// new contract).
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rig.hpp"
#include "fleet/fleet.hpp"
#include "fleet/shard.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace aqua::fleet {
namespace {

using util::Seconds;

// --- LPT planner ------------------------------------------------------------

TEST(ShardPlanner, ProducesAPartitionForAnyShardCount) {
  util::Rng rng{11};
  std::vector<double> costs(97);
  for (double& c : costs) c = rng.uniform(0.1, 5.0);
  for (std::size_t shards : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                             std::size_t{17}, std::size_t{200}}) {
    const ShardPlan plan = plan_shards(costs, shards);
    EXPECT_EQ(plan.shard_count(), shards);
    EXPECT_TRUE(plan.is_partition_of(costs.size())) << shards << " shards";
    for (const auto& shard : plan.shards)
      for (std::size_t k = 1; k < shard.size(); ++k)
        EXPECT_LT(shard[k - 1], shard[k]) << "shards must be ascending";
  }
  EXPECT_EQ(plan_shards(costs, 0).shard_count(), 1u);  // promoted to 1
}

TEST(ShardPlanner, DeterministicForEqualInputs) {
  util::Rng rng{12};
  std::vector<double> costs(64);
  for (double& c : costs) c = rng.uniform(0.1, 5.0);
  const ShardPlan a = plan_shards(costs, 8);
  const ShardPlan b = plan_shards(costs, 8);
  ASSERT_EQ(a.shards, b.shards);
}

TEST(ShardPlanner, SpreadsFiftyTimesSlowerSensorsOnePerShard) {
  // 8 sensors cost 50×, the rest 1× — the adversarial skew of the scaling
  // tests. LPT must put exactly one heavy sensor in each of 8 shards and
  // then even out the light ones: a perfect split, not 4/3-approximate.
  std::vector<double> costs(64, 1.0);
  for (std::size_t i = 0; i < 64; i += 8) costs[i] = 50.0;
  const ShardPlan plan = plan_shards(costs, 8);
  ASSERT_TRUE(plan.is_partition_of(64));
  for (const auto& shard : plan.shards) {
    int heavy = 0;
    for (const std::uint32_t i : shard) heavy += (costs[i] == 50.0) ? 1 : 0;
    EXPECT_EQ(heavy, 1);
  }
  EXPECT_DOUBLE_EQ(shard_imbalance(plan, costs), 1.0);
  const std::vector<double> totals = shard_costs(plan, costs);
  for (const double t : totals) EXPECT_DOUBLE_EQ(t, 57.0);
}

// --- fleet fixtures ---------------------------------------------------------

struct District {
  hydro::WaterNetwork net;
  std::vector<SensorPlacement> placements;
};

// Replicas of the bench district (reservoir + hub + 4 tapered chains,
// 32 pipes / 32 sensors each); replicas are hydraulically independent so the
// solve stays cheap at 1k sensors.
District make_district(std::size_t replicas) {
  District d;
  for (std::size_t rep = 0; rep < replicas; ++rep) {
    const auto res = d.net.add_reservoir(45.0);
    const auto hub = d.net.add_junction(2.0, 0.002);
    const auto first_pipe = d.net.pipe_count();
    d.net.add_pipe(res, hub, util::metres(200.0), util::millimetres(250.0));
    for (int chain = 0; chain < 4; ++chain) {
      auto prev = hub;
      for (int k = 0; k < 8; ++k) {
        if (d.net.pipe_count() - first_pipe >= 32) break;
        const auto next = d.net.add_junction(1.5 - 0.1 * k, 0.002);
        d.net.add_pipe(prev, next, util::metres(250.0),
                       util::millimetres(150.0 - 14.0 * k));
        prev = next;
      }
    }
  }
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p)
    d.placements.push_back(SensorPlacement{p, 0.0});
  return d;
}

// Short epochs keep a 1k-sensor run inside the tier-1 budget; the contract
// is epoch-length independent.
FleetConfig make_config() {
  FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 20260808;
  cfg.epoch = Seconds{0.02};
  cfg.demand_factor = diurnal_demand_pattern(Seconds{4.0});
  return cfg;
}

std::uint64_t trace_checksum(const FleetEngine& engine) {
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < engine.size(); ++i)
    for (const TraceSample& s : engine.node(i).trace()) {
      checksum ^= std::bit_cast<std::uint64_t>(s.bridge_voltage);
      checksum ^= std::bit_cast<std::uint64_t>(s.estimate_mps) * 0x9E37u;
      checksum ^= std::bit_cast<std::uint64_t>(s.true_mean_mps) * 0x85EBu;
    }
  return checksum;
}

void expect_traces_equal(const FleetEngine& a, const FleetEngine& b,
                         const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ta = a.node(i).trace();
    const auto& tb = b.node(i).trace();
    ASSERT_EQ(ta.size(), tb.size()) << label << " sensor " << i;
    for (std::size_t k = 0; k < ta.size(); ++k) {
      ASSERT_EQ(bits(ta[k].bridge_voltage), bits(tb[k].bridge_voltage))
          << label << " s" << i << " k" << k;
      ASSERT_EQ(bits(ta[k].estimate_mps), bits(tb[k].estimate_mps))
          << label << " s" << i << " k" << k;
      ASSERT_EQ(bits(ta[k].true_mean_mps), bits(tb[k].true_mean_mps))
          << label << " s" << i << " k" << k;
    }
  }
}

// --- 1k-sensor determinism under adversarial cost skew ----------------------

// One sensor in every 128 is hinted 50× slower with measurement off, and the
// planner reshuffles EVERY epoch — so consecutive epochs run under heavily
// skewed, changing partitions. The traces must not care.
std::uint64_t run_skewed(unsigned threads, std::size_t replicas,
                         long long epochs, std::size_t* sample_count) {
  District d = make_district(replicas);
  FleetConfig cfg = make_config();
  cfg.sharding.measure_costs = false;
  cfg.sharding.rebalance_interval_epochs = 1;
  FleetEngine engine(d.net, d.placements, cfg);
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  for (std::size_t i = 0; i < engine.size(); ++i)
    engine.set_cost_hint(i, i % 128 == 0 ? 50.0 : 1.0);
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  for (long long e = 0; e < epochs; ++e) engine.step_epoch(pool.get());
  if (sample_count != nullptr) {
    *sample_count = 0;
    for (std::size_t i = 0; i < engine.size(); ++i)
      *sample_count += engine.node(i).trace().size();
  }
  return trace_checksum(engine);
}

TEST(FleetScaling, ThousandSensorsBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kReplicas = 32;  // 1024 sensors
  constexpr long long kEpochs = 3;
  std::size_t serial_samples = 0;
  const std::uint64_t serial =
      run_skewed(0, kReplicas, kEpochs, &serial_samples);
  EXPECT_EQ(serial_samples, kReplicas * 32 * kEpochs);
  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    std::size_t samples = 0;
    const std::uint64_t checksum =
        run_skewed(threads, kReplicas, kEpochs, &samples);
    EXPECT_EQ(samples, serial_samples) << threads << " threads";
    EXPECT_EQ(checksum, serial) << threads << " threads";
  }
}

// --- mid-run rebalances and manual plans ------------------------------------

TEST(FleetScaling, MidRunRebalanceAndManualPlansAreBitIdentical) {
  constexpr std::size_t kReplicas = 8;  // 256 sensors
  District da = make_district(kReplicas);
  FleetEngine baseline(da.net, da.placements, make_config());
  baseline.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  baseline.run(Seconds{0.12});  // 6 epochs, serial, never sharded

  District db = make_district(kReplicas);
  FleetEngine engine(db.net, db.placements, make_config());
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  util::ThreadPool pool{4};

  // Phase 1: two epochs on the automatic cost-balanced plan.
  engine.step_epoch(&pool);
  engine.step_epoch(&pool);
  EXPECT_TRUE(engine.shard_plan().is_partition_of(engine.size()));

  // Phase 2: pin a pathological manual plan — all sensors striped across 16
  // shards by index modulo (nothing cost-balanced about it).
  ShardPlan striped;
  striped.shards.resize(16);
  for (std::uint32_t i = 0; i < engine.size(); ++i)
    striped.shards[i % 16].push_back(i);
  engine.set_shard_plan(striped);
  engine.step_epoch(&pool);
  engine.step_epoch(&pool);

  // Phase 3: unpin and force an immediate rebalance to 3 shards mid-run.
  engine.clear_shard_plan();
  engine.rebalance_shards(3);
  const long long rebalances_before = engine.rebalances();
  engine.step_epoch(&pool);
  engine.step_epoch(&pool);
  EXPECT_GE(engine.rebalances(), rebalances_before);
  EXPECT_EQ(engine.epochs(), 6);

  expect_traces_equal(baseline, engine, "serial vs shard-churned pool(4)");
}

TEST(FleetScaling, RejectsNonPartitionManualPlans) {
  District d = make_district(1);
  FleetEngine engine(d.net, d.placements, make_config());
  ShardPlan missing;  // drops sensor 0
  missing.shards.resize(1);
  for (std::uint32_t i = 1; i < engine.size(); ++i)
    missing.shards[0].push_back(i);
  EXPECT_THROW(engine.set_shard_plan(missing), std::invalid_argument);
  ShardPlan duplicated;
  duplicated.shards.resize(2);
  for (std::uint32_t i = 0; i < engine.size(); ++i) {
    duplicated.shards[0].push_back(i);
    duplicated.shards[1].push_back(i);
  }
  EXPECT_THROW(engine.set_shard_plan(duplicated), std::invalid_argument);
}

// --- RNG stream consumption is shard-plan independent ------------------------

// The property behind all of the above: a sensor's RNG stream position after
// N epochs is a pure function of (root seed, sensor index, N). Run the same
// fleet under three extreme partitions and compare every node's RNG
// fingerprint — if any code path consumed draws depending on the plan (or on
// which worker ran the sensor), the fingerprints diverge.
TEST(FleetScaling, ShardAssignmentNeverChangesRngConsumption) {
  constexpr std::size_t kReplicas = 4;  // 128 sensors
  const auto fingerprints = [](FleetEngine& engine,
                               util::ThreadPool* pool,
                               const ShardPlan* plan) {
    engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
    if (plan != nullptr) engine.set_shard_plan(*plan);
    engine.step_epoch(pool);
    engine.step_epoch(pool);
    std::vector<std::uint64_t> prints;
    prints.reserve(engine.size());
    for (std::size_t i = 0; i < engine.size(); ++i)
      prints.push_back(engine.node(i).rng_fingerprint());
    return prints;
  };

  District ds = make_district(kReplicas);
  FleetEngine serial_engine(ds.net, ds.placements, make_config());
  const auto serial = fingerprints(serial_engine, nullptr, nullptr);

  // Everything in ONE shard: a single worker walks all sensors in order.
  District d1 = make_district(kReplicas);
  FleetEngine one_engine(d1.net, d1.placements, make_config());
  ShardPlan one;
  one.shards.resize(1);
  for (std::uint32_t i = 0; i < one_engine.size(); ++i)
    one.shards[0].push_back(i);
  util::ThreadPool pool8{8};
  const auto one_shard = fingerprints(one_engine, &pool8, &one);

  // Striped across 32 shards: maximal interleaving across 8 workers.
  District d2 = make_district(kReplicas);
  FleetEngine striped_engine(d2.net, d2.placements, make_config());
  ShardPlan striped;
  striped.shards.resize(32);
  for (std::uint32_t i = 0; i < striped_engine.size(); ++i)
    striped.shards[i % 32].push_back(i);
  const auto striped_prints = fingerprints(striped_engine, &pool8, &striped);

  ASSERT_EQ(serial.size(), one_shard.size());
  ASSERT_EQ(serial.size(), striped_prints.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], one_shard[i]) << "sensor " << i;
    EXPECT_EQ(serial[i], striped_prints[i]) << "sensor " << i;
  }
}

// --- task accounting: the micro-task feeding fix -----------------------------

std::uint64_t pool_tasks_completed() {
  const auto snap = obs::Registry::instance().snapshot();
  for (const auto& c : snap.counters)
    if (c.name == "util.thread_pool.tasks") return c.value;
  return 0;
}

// The old epoch loop pushed parallel_for micro-blocks every epoch (~13 tasks
// per epoch at 32 sensors). The contract now: exactly one pool task per shard
// per epoch on the coarse path, and for a persistent team just one parked
// task per worker for an entire session — independent of epoch count.
TEST(FleetScaling, ExactlyOneTaskPerShardPerEpochOnTheCoarsePath) {
  District d = make_district(1);  // 32 sensors
  FleetEngine engine(d.net, d.placements, make_config());
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  util::ThreadPool pool{4};

  const std::uint64_t before = pool_tasks_completed();
  constexpr long long kEpochs = 5;
  for (long long e = 0; e < kEpochs; ++e) engine.step_epoch(&pool);
  pool.wait_idle();  // the counter increments as each task retires
  const std::uint64_t coarse = pool_tasks_completed() - before;
  EXPECT_EQ(coarse, static_cast<std::uint64_t>(kEpochs) *
                        engine.shard_plan().shard_count());
  EXPECT_EQ(engine.shard_plan().shard_count(), pool.thread_count());
}

TEST(FleetScaling, TeamSessionCostsOneParkedTaskPerWorker) {
  District d = make_district(1);
  FleetEngine engine(d.net, d.placements, make_config());
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  util::ThreadPool pool{4};

  const std::uint64_t before = pool_tasks_completed();
  {
    FleetEngine::TeamSession session{engine, &pool};
    EXPECT_TRUE(engine.team_active());
    for (long long e = 0; e < 10; ++e) engine.step_epoch(&pool);
  }  // ~TeamSession retires the 4 parked tasks
  EXPECT_FALSE(engine.team_active());
  pool.wait_idle();
  const std::uint64_t team_tasks = pool_tasks_completed() - before;
  // 10 epochs cost the same 4 tasks as 0 epochs would: parked workers, zero
  // per-epoch enqueues.
  EXPECT_EQ(team_tasks, pool.thread_count());
  EXPECT_EQ(engine.epochs(), 10);
}

// --- cost model ---------------------------------------------------------------

TEST(FleetScaling, CostModelLearnsMeasuredStepTimesByDefault) {
  District d = make_district(1);
  FleetConfig cfg = make_config();
  ASSERT_TRUE(cfg.sharding.measure_costs);
  District d2 = make_district(1);
  FleetEngine engine(d2.net, d2.placements, cfg);
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  engine.run(Seconds{0.06});  // 3 serial epochs
  for (std::size_t i = 0; i < engine.size(); ++i)
    EXPECT_GT(engine.cost_estimate(i), 0.0) << "sensor " << i;
}

}  // namespace
}  // namespace aqua::fleet
