// The headline tests of the fleet engine: the same root seed must produce
// bit-identical per-sensor traces for ANY thread count — serial on the
// caller's thread, or fanned out over a work-stealing pool of 1, 2 or 8
// workers. This is the determinism contract documented in fleet.hpp; any
// shared mutable state or scheduling-order dependence breaks it.
#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rig.hpp"
#include "fleet/fleet.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace aqua::fleet {
namespace {

using util::Seconds;

struct District {
  hydro::WaterNetwork net;
  std::vector<SensorPlacement> placements;
};

// Looped 8-junction district fed by one reservoir; a sensor on every one of
// the 10 pipes (full observability).
District make_district() {
  District d;
  const auto res = d.net.add_reservoir(40.0);
  const auto n1 = d.net.add_junction(2.0, 0.0015);
  const auto n2 = d.net.add_junction(2.0, 0.0025);
  const auto n3 = d.net.add_junction(1.5, 0.0025);
  const auto n4 = d.net.add_junction(1.0, 0.0020);
  const auto n5 = d.net.add_junction(1.0, 0.0020);
  const auto n6 = d.net.add_junction(0.5, 0.0015);
  const auto n7 = d.net.add_junction(0.5, 0.0015);
  using util::metres;
  using util::millimetres;
  d.net.add_pipe(res, n1, metres(300.0), millimetres(200.0));
  d.net.add_pipe(n1, n2, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n1, n3, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n2, n4, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n3, n5, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n2, n3, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n4, n6, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n5, n7, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n4, n5, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n6, n7, metres(250.0), millimetres(80.0));
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p)
    d.placements.push_back(SensorPlacement{p, 0.0});
  return d;
}

FleetConfig make_config() {
  FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 20260805;
  cfg.epoch = Seconds{0.25};
  cfg.demand_factor = diurnal_demand_pattern(Seconds{4.0});
  return cfg;
}

// Runs the full commission + co-simulation and returns every sensor's trace.
// threads == 0 means serial on the caller's thread (no pool at all).
std::vector<std::vector<TraceSample>> run_traces(unsigned threads,
                                                 std::uint64_t root_seed) {
  District d = make_district();
  FleetConfig cfg = make_config();
  cfg.root_seed = root_seed;
  FleetEngine engine(d.net, d.placements, cfg);
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
  engine.commission(Seconds{0.2}, pool.get());
  engine.run(Seconds{1.0}, pool.get());
  std::vector<std::vector<TraceSample>> traces;
  traces.reserve(engine.size());
  for (std::size_t i = 0; i < engine.size(); ++i)
    traces.push_back(engine.node(i).trace());
  return traces;
}

// Bit-exact double comparison: == would conflate +0.0/−0.0 and choke on NaN;
// the contract is "same bits".
void expect_bit_identical(const std::vector<std::vector<TraceSample>>& a,
                          const std::vector<std::vector<TraceSample>>& b,
                          const char* label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size()) << label << " sensor " << s;
    for (std::size_t k = 0; k < a[s].size(); ++k) {
      const TraceSample& x = a[s][k];
      const TraceSample& y = b[s][k];
      const auto bits = [](double v) { return std::bit_cast<std::uint64_t>(v); };
      ASSERT_EQ(bits(x.t_s), bits(y.t_s)) << label << " s" << s << " k" << k;
      ASSERT_EQ(bits(x.bridge_voltage), bits(y.bridge_voltage))
          << label << " s" << s << " k" << k;
      ASSERT_EQ(bits(x.filtered_voltage), bits(y.filtered_voltage))
          << label << " s" << s << " k" << k;
      ASSERT_EQ(bits(x.estimate_mps), bits(y.estimate_mps))
          << label << " s" << s << " k" << k;
      ASSERT_EQ(bits(x.true_mean_mps), bits(y.true_mean_mps))
          << label << " s" << s << " k" << k;
      ASSERT_EQ(x.direction, y.direction) << label << " s" << s << " k" << k;
    }
  }
}

TEST(FleetDeterminism, BitIdenticalTracesAtOneTwoAndEightThreads) {
  const auto one = run_traces(1, 42);
  const auto two = run_traces(2, 42);
  const auto eight = run_traces(8, 42);
  ASSERT_EQ(one.size(), 10u);
  ASSERT_FALSE(one[0].empty());
  expect_bit_identical(one, two, "1 vs 2 threads");
  expect_bit_identical(one, eight, "1 vs 8 threads");
}

TEST(FleetDeterminism, SerialVsParallelEquivalenceOnTenSensorNetwork) {
  const auto serial = run_traces(0, 42);    // no pool: caller's thread
  const auto parallel = run_traces(8, 42);  // work-stealing fan-out
  ASSERT_EQ(serial.size(), 10u);
  expect_bit_identical(serial, parallel, "serial vs 8-thread pool");
}

TEST(FleetDeterminism, DifferentRootSeedsProduceDifferentTraces) {
  // Guards that the per-sensor RNG streams actually feed the simulation: if
  // they were ignored, any seed would give the same traces and the two tests
  // above would pass vacuously.
  const auto a = run_traces(0, 1);
  const auto b = run_traces(0, 2);
  ASSERT_EQ(a.size(), b.size());
  bool any_difference = false;
  for (std::size_t s = 0; s < a.size() && !any_difference; ++s)
    for (std::size_t k = 0; k < a[s].size() && !any_difference; ++k)
      any_difference = a[s][k].bridge_voltage != b[s][k].bridge_voltage;
  EXPECT_TRUE(any_difference);
}

TEST(FleetDeterminism, MetricsCollectionDoesNotPerturbTraces) {
  // The obs/ layer's hard guarantee: instrumentation only observes, so the
  // traces are bit-identical whether collection is on or off — and with it
  // on, at any thread count (metrics are enabled by default, so the other
  // determinism tests already run instrumented; this pins the off-path too).
  obs::Registry::set_enabled(true);
  const auto instrumented_serial = run_traces(0, 42);
  const auto instrumented_pool = run_traces(8, 42);
  obs::Registry::set_enabled(false);
  const auto dark = run_traces(0, 42);
  obs::Registry::set_enabled(true);
  expect_bit_identical(instrumented_serial, dark, "metrics on vs off");
  expect_bit_identical(instrumented_serial, instrumented_pool,
                       "metrics on, serial vs 8 threads");
}

TEST(FleetDeterminism, TracingEnabledDoesNotPerturbTraces) {
  // Same hard guarantee for the event tracer: spans, instants and counters
  // are emitted into per-thread rings the datapath never reads back, so the
  // sensor traces are bit-identical with the recorder on or off — and with
  // it on, serial vs an 8-thread pool (tracing is off by default, so the
  // other determinism tests already pin the off-path).
  obs::TraceRecorder::set_enabled(true);
  const auto traced_serial = run_traces(0, 42);
  const auto traced_pool = run_traces(8, 42);
  obs::TraceRecorder::set_enabled(false);
  const auto dark = run_traces(0, 42);
  obs::TraceRecorder::instance().clear();
  expect_bit_identical(traced_serial, dark, "tracing on vs off");
  expect_bit_identical(traced_serial, traced_pool,
                       "tracing on, serial vs 8 threads");
}

std::uint64_t scrape_counter(const std::string& name) {
  const auto snap = obs::Registry::instance().snapshot();
  for (const auto& c : snap.counters)
    if (c.name == name) return c.value;
  return 0;
}

TEST(FleetDeterminism, DatapathCountersMatchAcrossThreadCounts) {
  // Counters driven by the simulation datapath (samples, epochs, PI events)
  // are part of the deterministic surface: serial and pooled runs must count
  // exactly the same events. (Thread-pool steal counts are scheduling noise
  // and deliberately excluded.)
  const char* const kDeterministicCounters[] = {
      "fleet.epochs",
      "fleet.sensor_steps",
      "isif.channel.samples",
      "isif.channel.overload_blocks",
      "cta.pi.saturation_events",
      "cta.pi.antiwindup_holds",
      "cta.loop.adc_overload_ticks",
  };

  obs::Registry::instance().zero();
  (void)run_traces(0, 42);
  std::vector<std::uint64_t> serial_counts;
  for (const char* name : kDeterministicCounters)
    serial_counts.push_back(scrape_counter(name));

  obs::Registry::instance().zero();
  (void)run_traces(4, 42);
  for (std::size_t i = 0; i < serial_counts.size(); ++i)
    EXPECT_EQ(scrape_counter(kDeterministicCounters[i]), serial_counts[i])
        << kDeterministicCounters[i];

  // The run must actually have produced samples, or this test is vacuous.
  EXPECT_GT(serial_counts[0], 0u);  // fleet.epochs
  EXPECT_GT(serial_counts[2], 0u);  // isif.channel.samples
}

TEST(FleetDeterminism, PerSensorStreamsDiffer) {
  // Two sensors of the same run must not share a noise stream (stream ids are
  // the sensor indices; identical streams would correlate their turbulence).
  const auto traces = run_traces(0, 42);
  bool any_difference = false;
  for (std::size_t k = 0; k < traces[1].size() && !any_difference; ++k)
    any_difference =
        traces[1][k].bridge_voltage != traces[2][k].bridge_voltage;
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace aqua::fleet
