// Functional tests of the fleet engine: calibrated sensors track the network
// ground truth, the diurnal pattern modulates what they see, and the
// mass-balance report localizes a leak to the right junction (paper §6's
// "immediately localized and isolated" vision).
#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/rig.hpp"
#include "fleet/fleet.hpp"
#include "util/thread_pool.hpp"

namespace aqua::fleet {
namespace {

using util::Seconds;

struct District {
  hydro::WaterNetwork net;
  std::vector<SensorPlacement> placements;
  hydro::WaterNetwork::NodeId leak_candidate = 0;  // an interior junction
};

// Reservoir → trunk → two branch legs, sensors on all 5 pipes. The b leg is
// longer and draws more, so the a→b cross link carries a small but firmly
// positive flow at every diurnal factor (a symmetric district would leave it
// near zero and stall the solver at night demand).
District make_small_district() {
  District d;
  const auto res = d.net.add_reservoir(40.0);
  const auto hub = d.net.add_junction(2.0, 0.002);
  const auto a = d.net.add_junction(1.0, 0.002);
  const auto b = d.net.add_junction(1.0, 0.005);
  const auto a2 = d.net.add_junction(0.5, 0.003);
  using util::metres;
  using util::millimetres;
  d.net.add_pipe(res, hub, metres(300.0), millimetres(200.0));
  d.net.add_pipe(hub, a, metres(400.0), millimetres(150.0));
  d.net.add_pipe(hub, b, metres(600.0), millimetres(150.0));
  d.net.add_pipe(a, a2, metres(300.0), millimetres(100.0));
  d.net.add_pipe(a, b, metres(300.0), millimetres(100.0));
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p)
    d.placements.push_back(SensorPlacement{p, 0.0});
  d.leak_candidate = a;
  return d;
}

FleetConfig make_config() {
  FleetConfig cfg;
  cfg.sensor.isif = cta::fast_isif_config();
  // The monitoring cadence cares about epoch-scale response, not the paper's
  // 0.1 Hz reporting filter; 2 Hz keeps the estimate tracking the epoch.
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 7;
  cfg.epoch = Seconds{0.25};
  return cfg;
}

TEST(FleetEngine, CalibratedSensorsTrackNetworkTruth) {
  District d = make_small_district();
  FleetEngine engine(d.net, d.placements, make_config());
  engine.commission(Seconds{0.3});
  const std::vector<double> speeds{0.05, 0.2, 0.5, 0.9};
  engine.calibrate(speeds, Seconds{0.3});
  engine.run(Seconds{1.5});

  const FleetReport report = engine.report();
  ASSERT_EQ(report.sensors.size(), 5u);
  EXPECT_EQ(engine.solve_failures(), 0);
  for (const SensorSummary& s : report.sensors) {
    EXPECT_EQ(s.samples, 6u) << "sensor " << s.index;
    EXPECT_GT(s.final_true_mps, 0.0) << "sensor " << s.index;
    EXPECT_NEAR(s.final_estimate_mps, s.final_true_mps, 0.12)
        << "sensor " << s.index;
    EXPECT_LT(s.rms_error_mps, 0.2) << "sensor " << s.index;
  }
  // Forward flow on the trunk and both legs (the a→b cross link runs so slow
  // its direction channel is allowed to idle at 0).
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_EQ(engine.node(i).trace().back().direction, 1) << "sensor " << i;
}

TEST(FleetEngine, ParallelRunMatchesAccuracyOfSerial) {
  District d = make_small_district();
  FleetEngine engine(d.net, d.placements, make_config());
  util::ThreadPool pool{4};
  engine.commission(Seconds{0.3}, &pool);
  const std::vector<double> speeds{0.05, 0.2, 0.5, 0.9};
  engine.calibrate(speeds, Seconds{0.3}, &pool);
  engine.run(Seconds{1.0}, &pool);
  for (const SensorSummary& s : engine.report().sensors)
    EXPECT_NEAR(s.final_estimate_mps, s.final_true_mps, 0.12)
        << "sensor " << s.index;
}

TEST(FleetEngine, MassBalanceReportLocalizesLeak) {
  District d = make_small_district();
  FleetConfig cfg = make_config();
  cfg.sensor.isif = cta::coarse_isif_config();
  FleetEngine engine(d.net, d.placements, cfg);
  engine.commission(Seconds{0.3});
  const std::vector<double> speeds{0.05, 0.2, 0.5, 0.9};
  engine.calibrate(speeds, Seconds{0.3});

  engine.run(Seconds{1.5});
  const FleetReport healthy = engine.report();
  EXPECT_NEAR(healthy.total_leak_m3s, 0.0, 1e-12);
  for (const JunctionBalance& jb : healthy.balances) {
    EXPECT_TRUE(jb.fully_observed) << "node " << jb.node;
    EXPECT_LT(std::abs(jb.residual_m3s), 2e-3) << "node " << jb.node;
  }

  // Spring a pressure-driven leak at an interior junction and give the
  // output filters a moment to settle on the new operating point.
  engine.network().set_leak(d.leak_candidate, 1e-3);
  engine.run(Seconds{1.5});
  const FleetReport leaking = engine.report();
  EXPECT_GT(leaking.total_leak_m3s, 3e-3);

  const auto suspects = leaking.ranked_suspects();
  ASSERT_FALSE(suspects.empty());
  EXPECT_EQ(suspects.front().node, d.leak_candidate);
  EXPECT_GT(suspects.front().residual_m3s, 2e-3);
  // The residual approximates the escaping flow.
  EXPECT_NEAR(suspects.front().residual_m3s, leaking.total_leak_m3s,
              0.5 * leaking.total_leak_m3s);
}

TEST(FleetEngine, DiurnalPatternModulatesVelocity) {
  District d = make_small_district();
  FleetConfig cfg = make_config();
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.demand_factor = diurnal_demand_pattern(Seconds{3.0});
  FleetEngine engine(d.net, d.placements, cfg);
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  engine.commission(Seconds{0.25});
  engine.run(Seconds{3.0});

  const auto& trunk = engine.node(0).trace();
  ASSERT_FALSE(trunk.empty());
  double lo = trunk.front().true_mean_mps, hi = lo;
  for (const TraceSample& s : trunk) {
    lo = std::min(lo, s.true_mean_mps);
    hi = std::max(hi, s.true_mean_mps);
  }
  // Demand swings 0.3×..1.6× over the compressed day; the trunk velocity must
  // visibly follow (head losses make it sub-proportional).
  EXPECT_GT(hi, 2.0 * lo);
  EXPECT_GT(lo, 0.0);
}

TEST(FleetEngine, UncalibratedSensorsRecordZeroEstimate) {
  District d = make_small_district();
  FleetEngine engine(d.net, d.placements, make_config());
  engine.commission(Seconds{0.25});
  engine.run(Seconds{0.5});
  for (std::size_t i = 0; i < engine.size(); ++i) {
    EXPECT_FALSE(engine.node(i).calibrated());
    for (const TraceSample& s : engine.node(i).trace())
      EXPECT_EQ(s.estimate_mps, 0.0);
  }
}

TEST(FleetEngine, AccessorsAndLatestEstimates) {
  District d = make_small_district();
  FleetEngine engine(d.net, d.placements, make_config());
  EXPECT_EQ(engine.size(), 5u);
  EXPECT_EQ(engine.now().value(), 0.0);
  for (std::size_t i = 0; i < engine.size(); ++i) {
    EXPECT_EQ(engine.node(i).index(), i);
    EXPECT_EQ(engine.node(i).placement().pipe, i);
  }
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  engine.commission(Seconds{0.25});
  engine.run(Seconds{0.5});
  EXPECT_NEAR(engine.now().value(), 0.5, 1e-9);  // commission doesn't advance t
  const auto estimates = engine.latest_estimates();
  ASSERT_EQ(estimates.size(), 5u);
}

TEST(FleetEngine, ThrowsWhenInitialSolveFails) {
  // A 0.1× demand factor starves this district into the laminar regime where
  // the successive-linearisation solve does not converge; the constructor
  // must say so instead of simulating garbage.
  District d = make_small_district();
  FleetConfig cfg = make_config();
  cfg.demand_factor = sim::Schedule{0.1};
  EXPECT_THROW(FleetEngine(d.net, d.placements, cfg), std::runtime_error);
}

TEST(FleetEngine, ThrowsOnOutOfRangePlacement) {
  District d = make_small_district();
  d.placements.push_back(SensorPlacement{99, 0.0});
  FleetConfig cfg = make_config();
  EXPECT_THROW(FleetEngine(d.net, d.placements, cfg), std::out_of_range);
}

}  // namespace
}  // namespace aqua::fleet
