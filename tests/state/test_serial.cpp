// Writer/Reader primitives: every scalar shape round-trips bit-exactly, and
// every malformed stream — truncation, bad booleans, absurd container
// lengths, trailing bytes — surfaces as state::Error, never UB. These are the
// primitives the whole checkpoint format (DESIGN.md §14) stands on.
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "state/rng_io.hpp"
#include "state/serial.hpp"
#include "util/rng.hpp"

namespace aqua {
namespace {

using state::Reader;
using state::Writer;

TEST(Serial, ScalarsRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123456789ll);
  w.f64(3.141592653589793);
  w.boolean(true);
  w.boolean(false);
  w.str("hot wire");
  const std::vector<std::uint8_t> buf = w.take();

  Reader r{buf};
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123456789ll);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(3.141592653589793));
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hot wire");
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Serial, NonFiniteDoublesKeepTheirExactBitPattern) {
  // Checkpoints carry IEEE bit patterns, not values: a signalling NaN, a
  // negative zero and both infinities must survive a round trip unchanged.
  const double values[] = {std::numeric_limits<double>::quiet_NaN(),
                           -std::numeric_limits<double>::quiet_NaN(),
                           std::numeric_limits<double>::infinity(),
                           -std::numeric_limits<double>::infinity(),
                           -0.0,
                           std::numeric_limits<double>::denorm_min()};
  Writer w;
  for (const double v : values) w.f64(v);
  const auto buf = w.take();
  Reader r{buf};
  for (const double v : values)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
              std::bit_cast<std::uint64_t>(v));
}

TEST(Serial, F64VectorRoundTrips) {
  const std::vector<double> v{0.0, -1.5, 6.02e23, std::nan("")};
  Writer w;
  state::save_f64_vector(w, v);
  const auto buf = w.take();
  Reader r{buf};
  std::vector<double> out;
  state::load_f64_vector(r, out);
  ASSERT_EQ(out.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(std::bit_cast<std::uint64_t>(out[i]),
              std::bit_cast<std::uint64_t>(v[i]));
}

TEST(Serial, TruncatedStreamThrows) {
  Writer w;
  w.u64(7);
  auto buf = w.take();
  buf.pop_back();
  Reader r{buf};
  EXPECT_THROW((void)r.u64(), state::Error);
}

TEST(Serial, EmptyStreamThrowsOnAnyRead) {
  const std::vector<std::uint8_t> empty;
  Reader r{empty};
  EXPECT_THROW((void)r.u8(), state::Error);
}

TEST(Serial, BadBooleanByteThrows) {
  const std::vector<std::uint8_t> buf{2};
  Reader r{buf};
  EXPECT_THROW((void)r.boolean(), state::Error);
}

TEST(Serial, CorruptContainerLengthCannotDriveAllocation) {
  // A flipped length must throw before a multi-gigabyte resize: the guard
  // bounds any count by the bytes that could possibly back it.
  Writer w;
  w.u64(std::numeric_limits<std::uint64_t>::max() / 2);
  const auto buf = w.take();
  Reader r{buf};
  EXPECT_THROW((void)r.size(8), state::Error);
}

TEST(Serial, TrailingBytesFailExpectEnd) {
  Writer w;
  w.u32(1);
  w.u8(0);
  const auto buf = w.take();
  Reader r{buf};
  (void)r.u32();
  EXPECT_THROW(r.expect_end(), state::Error);
}

TEST(Serial, RngStreamPositionRoundTrips) {
  // The resume contract for every stochastic component: a saved stream
  // continues exactly where the original would have.
  util::Rng rng{20260808};
  for (int i = 0; i < 1000; ++i) (void)rng.uniform();
  Writer w;
  state::save_rng(w, rng);
  const auto buf = w.take();

  util::Rng fresh{1};  // deliberately different seed/position
  Reader r{buf};
  state::load_rng(r, fresh);
  EXPECT_NO_THROW(r.expect_end());
  for (int i = 0; i < 100; ++i) {
    const double a = rng.uniform();
    const double b = fresh.uniform();
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b));
  }
}

}  // namespace
}  // namespace aqua
