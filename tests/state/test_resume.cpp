// The headline acceptance for crash-consistent checkpointing (DESIGN.md §14):
// kill a fleet run or a fault campaign at an arbitrary epoch boundary,
// restore the newest checkpoint into freshly constructed objects, and the
// resumed run is bit-identical to the uninterrupted one — same trace
// checksum, same campaign summary — serially and on 8 threads, in scalar and
// kSimdBatch execution. The batch scenario is pinned to the committed
// checksum from tests/simd/test_fleet_batch.cpp, so resume correctness and
// the historical determinism contract are one and the same assertion.
#include <bit>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/rig.hpp"
#include "fault/campaign.hpp"
#include "fleet/fleet.hpp"
#include "fleet/supervisor.hpp"
#include "state/checkpoint.hpp"
#include "util/thread_pool.hpp"

namespace aqua {
namespace {

namespace fs = std::filesystem;
using util::Seconds;
using fleet::ChannelExecution;
using fleet::FleetConfig;
using fleet::FleetEngine;
using fleet::SensorPlacement;

// The test_fleet_batch scenario: its committed checksum makes this suite's
// "resumed == uninterrupted" also mean "resumed == the historical contract".
constexpr std::uint64_t kBatchChecksum = 0x8370b0dd7181b5c1ull;

struct District {
  hydro::WaterNetwork net;
  std::vector<SensorPlacement> placements;
};

District make_district() {
  District d;
  const auto res = d.net.add_reservoir(40.0);
  const auto n1 = d.net.add_junction(2.0, 0.0015);
  const auto n2 = d.net.add_junction(2.0, 0.0025);
  const auto n3 = d.net.add_junction(1.5, 0.0025);
  const auto n4 = d.net.add_junction(1.0, 0.0020);
  const auto n5 = d.net.add_junction(1.0, 0.0020);
  const auto n6 = d.net.add_junction(0.5, 0.0015);
  const auto n7 = d.net.add_junction(0.5, 0.0015);
  using util::metres;
  using util::millimetres;
  d.net.add_pipe(res, n1, metres(300.0), millimetres(200.0));
  d.net.add_pipe(n1, n2, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n1, n3, metres(400.0), millimetres(150.0));
  d.net.add_pipe(n2, n4, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n3, n5, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n2, n3, metres(300.0), millimetres(100.0));
  d.net.add_pipe(n4, n6, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n5, n7, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n4, n5, metres(250.0), millimetres(80.0));
  d.net.add_pipe(n6, n7, metres(250.0), millimetres(80.0));
  for (hydro::WaterNetwork::PipeId p = 0; p < d.net.pipe_count(); ++p)
    d.placements.push_back(SensorPlacement{p, 0.0});
  return d;
}

FleetConfig make_config(ChannelExecution execution) {
  FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 20260808;
  cfg.epoch = Seconds{0.25};
  cfg.demand_factor = fleet::diurnal_demand_pattern(Seconds{4.0});
  cfg.execution = execution;
  return cfg;
}

std::uint64_t trace_checksum(const FleetEngine& engine) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < engine.size(); ++i)
    for (const fleet::TraceSample& s : engine.node(i).trace()) {
      c ^= std::bit_cast<std::uint64_t>(s.bridge_voltage);
      c ^= std::bit_cast<std::uint64_t>(s.estimate_mps) * 0x9E37u;
      c ^= std::bit_cast<std::uint64_t>(s.true_mean_mps) * 0x85EBu;
    }
  return c;
}

std::uint64_t uninterrupted_checksum(ChannelExecution execution) {
  District d = make_district();
  FleetEngine engine(d.net, d.placements, make_config(execution));
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  engine.commission(Seconds{0.2});
  engine.run(Seconds{0.75});
  return trace_checksum(engine);
}

/// Commissions an engine, steps `kill_after` of the 3 epochs, checkpoints,
/// restores the image into a FRESH engine and finishes the run there.
std::uint64_t resumed_checksum(ChannelExecution execution, int kill_after,
                               int threads) {
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);

  std::vector<std::uint8_t> image;
  {
    District d = make_district();
    FleetEngine engine(d.net, d.placements, make_config(execution));
    engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
    engine.commission(Seconds{0.2});
    for (int e = 0; e < kill_after; ++e) engine.step_epoch(pool.get());
    image = engine.checkpoint();
    // The engine dies here; only `image` survives.
  }
  District d = make_district();
  FleetEngine fresh(d.net, d.placements, make_config(execution));
  fresh.restore(image);
  fresh.run(Seconds{0.25 * (3 - kill_after)}, pool.get());
  return trace_checksum(fresh);
}

TEST(KillAndResume, ScalarFleetResumesBitIdentically) {
  const std::uint64_t expected = uninterrupted_checksum(ChannelExecution::kScalar);
  for (int kill_after : {1, 2})
    for (int threads : {0, 8})
      EXPECT_EQ(resumed_checksum(ChannelExecution::kScalar, kill_after, threads),
                expected)
          << "killed after epoch " << kill_after << ", " << threads
          << " resume threads";
}

TEST(KillAndResume, BatchFleetResumesToTheCommittedChecksum) {
  ASSERT_EQ(uninterrupted_checksum(ChannelExecution::kSimdBatch), kBatchChecksum);
  for (int kill_after : {1, 2})
    for (int threads : {0, 8})
      EXPECT_EQ(
          resumed_checksum(ChannelExecution::kSimdBatch, kill_after, threads),
          kBatchChecksum)
          << "killed after epoch " << kill_after << ", " << threads
          << " resume threads";
}

TEST(KillAndResume, RestoreRejectsMismatchedConfiguration) {
  District d = make_district();
  FleetEngine engine(d.net, d.placements,
                     make_config(ChannelExecution::kScalar));
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  engine.commission(Seconds{0.2});
  engine.step_epoch();
  const auto image = engine.checkpoint();

  {
    District d2 = make_district();
    FleetConfig cfg = make_config(ChannelExecution::kScalar);
    cfg.root_seed = 1;  // a different fleet entirely
    FleetEngine other(d2.net, d2.placements, cfg);
    EXPECT_THROW(other.restore(image), state::Error);
  }
  {
    District d2 = make_district();
    FleetEngine other(d2.net, d2.placements,
                      make_config(ChannelExecution::kSimdBatch));
    EXPECT_THROW(other.restore(image), state::Error);  // execution mode skew
  }
  {
    // Same config, different hydraulic topology.
    District d2;
    const auto res = d2.net.add_reservoir(40.0);
    const auto n1 = d2.net.add_junction(2.0, 0.0015);
    d2.net.add_pipe(res, n1, util::metres(300.0), util::millimetres(200.0));
    d2.placements.push_back(SensorPlacement{0, 0.0});
    FleetEngine other(d2.net, d2.placements,
                      make_config(ChannelExecution::kScalar));
    EXPECT_THROW(other.restore(image), state::Error);
  }
}

TEST(KillAndResume, CorruptedEngineImageNeverRestoresSilently) {
  District d = make_district();
  FleetEngine engine(d.net, d.placements,
                     make_config(ChannelExecution::kScalar));
  engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
  engine.commission(Seconds{0.2});
  engine.step_epoch();
  const auto pristine = engine.checkpoint();

  // A strided single-bit sweep across the whole engine image (every byte
  // would take minutes at fleet scale; stride 37 still lands in every
  // section). Every flip must throw state::Error from a fresh restore.
  for (std::size_t byte = 0; byte < pristine.size(); byte += 37) {
    auto image = pristine;
    image[byte] ^= 0x10;
    District d2 = make_district();
    FleetEngine fresh(d2.net, d2.placements,
                      make_config(ChannelExecution::kScalar));
    try {
      fresh.restore(image);
      // CRC32 catches every single-bit flip in payloads and the container
      // validates all framing up front, so reaching here means the flip
      // landed somewhere that must not exist.
      ADD_FAILURE() << "flip at byte " << byte << " restored silently";
    } catch (const state::Error&) {
      // expected: corruption surfaced as a typed error, not UB
    }
  }
}

TEST(KillAndResume, ManagerFallbackResumesAfterTornNewestCheckpoint) {
  // End to end with the durability layer: checkpoint every epoch through a
  // CheckpointManager, tear the newest file, and resume from what
  // load_newest_valid picks — the run must still land on the uninterrupted
  // checksum because the fallback image is older but intact.
  const std::string dir =
      (fs::temp_directory_path() / "aqua_resume_manager_test").string();
  fs::remove_all(dir);
  const std::uint64_t expected = uninterrupted_checksum(ChannelExecution::kScalar);

  state::CheckpointManager manager{dir, "fleet", 3};
  {
    District d = make_district();
    FleetEngine engine(d.net, d.placements,
                       make_config(ChannelExecution::kScalar));
    engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
    engine.commission(Seconds{0.2});
    for (int e = 0; e < 2; ++e) {
      engine.step_epoch();
      manager.write(static_cast<std::uint64_t>(e + 1), engine.checkpoint());
    }
  }
  // Tear the newest checkpoint mid-payload.
  const std::vector<std::string> paths = manager.list();
  ASSERT_EQ(paths.size(), 2u);
  auto torn = state::read_file(paths.back());
  torn.resize(torn.size() / 2);
  state::write_file_atomic(paths.back(), torn);

  const auto loaded = manager.load_newest_valid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 1u);

  District d = make_district();
  FleetEngine fresh(d.net, d.placements, make_config(ChannelExecution::kScalar));
  fresh.restore(loaded->image);
  fresh.run(Seconds{0.5});
  EXPECT_EQ(trace_checksum(fresh), expected);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fault campaign kill-and-resume: the CampaignRunner checkpoint carries the
// engine, the supervisor state machines, the injector cursors and the
// partial outcomes; a resumed campaign must emit a bit-identical summary.
// ---------------------------------------------------------------------------

fault::FaultCampaign make_campaign() {
  return fault::FaultCampaign::random(2008, 6, 10, Seconds{0.5}, Seconds{6.0},
                                      Seconds{2.0}, Seconds{5.0});
}

FleetConfig campaign_config() {
  FleetConfig cfg;
  cfg.sensor.isif = cta::coarse_isif_config();
  cfg.sensor.cta.output_cutoff = util::hertz(2.0);
  cfg.root_seed = 2008;
  cfg.epoch = Seconds{0.25};
  cfg.demand_factor = fleet::diurnal_demand_pattern(Seconds{8.0});
  return cfg;
}

TEST(KillAndResume, FaultCampaignResumesToTheIdenticalSummary) {
  const Seconds duration{10.0};
  std::string full_json;
  {
    District d = make_district();
    FleetEngine engine(d.net, d.placements, campaign_config());
    engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
    engine.commission(Seconds{0.2});
    fleet::FleetSupervisor supervisor(engine);
    const fault::CampaignSummary summary =
        fault::run_campaign(engine, supervisor, make_campaign(), duration);
    full_json = summary.to_json();
  }
  for (int threads : {0, 8}) {
    std::unique_ptr<util::ThreadPool> pool;
    if (threads > 0) pool = std::make_unique<util::ThreadPool>(threads);
    std::vector<std::uint8_t> image;
    {
      District d = make_district();
      FleetEngine engine(d.net, d.placements, campaign_config());
      engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
      engine.commission(Seconds{0.2});
      fleet::FleetSupervisor supervisor(engine);
      fault::CampaignRunner runner{engine, supervisor, make_campaign(),
                                   duration};
      for (int e = 0; e < 17; ++e) runner.step(pool.get());
      image = runner.checkpoint();
      // Killed mid-campaign: injector cursors, quarantines and partial
      // outcomes are all in flight at epoch 17.
    }
    District d = make_district();
    FleetEngine engine(d.net, d.placements, campaign_config());
    fleet::FleetSupervisor supervisor(engine);
    fault::CampaignRunner runner{engine, supervisor, make_campaign(), duration};
    runner.restore(image);
    while (!runner.done()) runner.step(pool.get());
    const fault::CampaignSummary summary = runner.finish();
    EXPECT_EQ(summary.to_json(), full_json)
        << "resumed with " << threads << " threads";
  }
}

TEST(KillAndResume, CampaignRestoreRejectsMismatchedCampaign) {
  const Seconds duration{10.0};
  std::vector<std::uint8_t> image;
  {
    District d = make_district();
    FleetEngine engine(d.net, d.placements, campaign_config());
    engine.set_shared_fit(cta::KingFit{0.9, 1.1, 0.5});
    engine.commission(Seconds{0.2});
    fleet::FleetSupervisor supervisor(engine);
    fault::CampaignRunner runner{engine, supervisor, make_campaign(), duration};
    for (int e = 0; e < 5; ++e) runner.step();
    image = runner.checkpoint();
  }
  District d = make_district();
  FleetEngine engine(d.net, d.placements, campaign_config());
  fleet::FleetSupervisor supervisor(engine);
  // Wrong duration → different epoch budget → the runner must refuse.
  fault::CampaignRunner runner{engine, supervisor, make_campaign(),
                               Seconds{20.0}};
  EXPECT_THROW(runner.restore(image), state::Error);
}

}  // namespace
}  // namespace aqua
