// The checkpoint container, attacked: the corruption battery flips every
// single bit and truncates at every byte of a sealed image, asserting the
// loader either restores bit-identical payloads or throws state::Error —
// never crashes, never returns silently wrong bytes. Plus the durability
// layer: atomic writes, retention, and newest-valid fallback with the
// state.checkpoint.corrupt counter.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "state/checkpoint.hpp"

namespace aqua {
namespace {

namespace fs = std::filesystem;
using state::CheckpointReader;
using state::CheckpointWriter;
using state::section_id;

constexpr std::uint32_t kSectionA = section_id('A', 'A', 'A', 'A');
constexpr std::uint32_t kSectionB = section_id('B', 'B', 'B', 'B');

std::vector<std::uint8_t> make_image() {
  CheckpointWriter ck;
  {
    state::Writer& w = ck.begin_section(kSectionA);
    w.u64(0x1122334455667788ull);
    w.f64(2.718281828459045);
    w.str("payload A");
    ck.end_section();
  }
  {
    state::Writer& w = ck.begin_section(kSectionB);
    w.size(32);
    for (int i = 0; i < 32; ++i) w.u32(static_cast<std::uint32_t>(i * i));
    ck.end_section();
  }
  return ck.finish();
}

void expect_section_a(state::Reader r) {
  EXPECT_EQ(r.u64(), 0x1122334455667788ull);
  EXPECT_EQ(r.f64(), 2.718281828459045);
  EXPECT_EQ(r.str(), "payload A");
  EXPECT_NO_THROW(r.expect_end());
}

TEST(Checkpoint, RoundTripsAndValidates) {
  const auto image = make_image();
  const CheckpointReader ck{image};
  EXPECT_EQ(ck.version(), state::kFormatVersion);
  ASSERT_TRUE(ck.has_section(kSectionA));
  ASSERT_TRUE(ck.has_section(kSectionB));
  expect_section_a(ck.section(kSectionA));
  state::Reader b = ck.section(kSectionB);
  ASSERT_EQ(b.size(4), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(b.u32(), static_cast<std::uint32_t>(i * i));
}

TEST(Checkpoint, MissingSectionThrows) {
  const auto image = make_image();
  const CheckpointReader ck{image};
  EXPECT_FALSE(ck.has_section(section_id('N', 'O', 'P', 'E')));
  EXPECT_THROW((void)ck.section(section_id('N', 'O', 'P', 'E')), state::Error);
}

TEST(Checkpoint, UnknownSectionsAreIgnored) {
  // Additive format evolution: a reader must skip sections it has no use
  // for, so new writers stay loadable by the sections old code understands.
  CheckpointWriter ck;
  {
    state::Writer& w = ck.begin_section(kSectionA);
    w.u64(0x1122334455667788ull);
    w.f64(2.718281828459045);
    w.str("payload A");
    ck.end_section();
  }
  {
    state::Writer& w = ck.begin_section(section_id('F', 'U', 'T', 'R'));
    w.str("from a newer writer");
    ck.end_section();
  }
  const auto image = ck.finish();
  const CheckpointReader reader{image};
  expect_section_a(reader.section(kSectionA));
}

TEST(Checkpoint, BadMagicThrows) {
  auto image = make_image();
  image[0] ^= 0xFF;
  EXPECT_THROW(CheckpointReader{image}, state::Error);
}

TEST(Checkpoint, UnknownVersionThrows) {
  // The bump policy's enforcement half: loaders reject versions they do not
  // know instead of guessing at the wire layout.
  auto image = make_image();
  image[8] = static_cast<std::uint8_t>(state::kFormatVersion + 1);
  EXPECT_THROW(CheckpointReader{image}, state::Error);
}

// Every truncation and every single-bit flip must be survivable: either the
// defect is caught (state::Error from the constructor or the section reads)
// or the data that does come back is bit-identical to what was written.
// "Crashes with a segfault" and "returns silently wrong payloads" both fail.

void expect_loads_exactly_or_throws(const std::vector<std::uint8_t>& image) {
  std::optional<CheckpointReader> ck;
  try {
    ck.emplace(image);
  } catch (const state::Error&) {
    return;  // defect caught at the framing layer
  }
  try {
    if (ck->has_section(kSectionA)) expect_section_a(ck->section(kSectionA));
    if (ck->has_section(kSectionB)) {
      state::Reader b = ck->section(kSectionB);
      ASSERT_EQ(b.size(4), 32u);
      for (int i = 0; i < 32; ++i)
        ASSERT_EQ(b.u32(), static_cast<std::uint32_t>(i * i));
    }
  } catch (const state::Error&) {
    // defect caught at the payload layer — also fine
  }
}

TEST(CheckpointCorruption, EverySingleBitFlipIsCaughtOrHarmless) {
  const auto pristine = make_image();
  for (std::size_t byte = 0; byte < pristine.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      auto image = pristine;
      image[byte] ^= static_cast<std::uint8_t>(1u << bit);
      SCOPED_TRACE(testing::Message() << "byte " << byte << " bit " << bit);
      expect_loads_exactly_or_throws(image);
    }
  }
}

TEST(CheckpointCorruption, PayloadBitFlipsAlwaysFailTheCrc) {
  // Stronger claim for payload bytes specifically: a flip inside a section's
  // payload can never parse — the CRC framing has to reject it.
  const auto pristine = make_image();
  // Section A's payload starts after magic(8)+version(4)+frame header(16).
  const std::size_t payload_start = 8 + 4 + 4 + 8 + 4;
  for (int bit = 0; bit < 8; ++bit) {
    auto image = pristine;
    image[payload_start] ^= static_cast<std::uint8_t>(1u << bit);
    EXPECT_THROW(CheckpointReader{image}, state::Error) << "bit " << bit;
  }
}

TEST(CheckpointCorruption, EveryTruncationIsCaughtOrHarmless) {
  const auto pristine = make_image();
  for (std::size_t len = 0; len < pristine.size(); ++len) {
    std::vector<std::uint8_t> image(pristine.begin(),
                                    pristine.begin() + static_cast<long>(len));
    SCOPED_TRACE(testing::Message() << "truncated to " << len << " bytes");
    expect_loads_exactly_or_throws(image);
  }
}

// --- durability: atomic writes, retention, newest-valid fallback -----------

std::uint64_t scrape_corrupt_counter() {
  const obs::Snapshot snap = obs::Registry::instance().snapshot();
  for (const obs::CounterSnapshot& c : snap.counters)
    if (c.name == "state.checkpoint.corrupt") return c.value;
  return 0;
}

class CheckpointManagerTest : public testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("aqua_ckpt_" + std::to_string(::getpid()) + "_" +
             testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CheckpointManagerTest, WriteIsAtomicAndReadsBack) {
  state::CheckpointManager manager{dir_, "fleet"};
  const auto image = make_image();
  const std::string path = manager.write(7, image);
  EXPECT_EQ(state::read_file(path), image);
  // No staging debris: the temp file was renamed over the target.
  for (const auto& entry : fs::directory_iterator(dir_))
    EXPECT_EQ(entry.path().extension(), ".aqcp") << entry.path();
}

TEST_F(CheckpointManagerTest, RetainsOnlyTheNewestN) {
  state::CheckpointManager manager{dir_, "fleet", 3};
  const auto image = make_image();
  for (std::uint64_t epoch = 1; epoch <= 5; ++epoch)
    manager.write(epoch, image);
  const std::vector<std::string> paths = manager.list();
  ASSERT_EQ(paths.size(), 3u);
  const auto newest = manager.load_newest_valid();
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->epoch, 5u);
  EXPECT_EQ(newest->image, image);
}

TEST_F(CheckpointManagerTest, FallsBackPastACorruptNewestCheckpoint) {
  state::CheckpointManager manager{dir_, "fleet", 3};
  const auto image = make_image();
  manager.write(1, image);
  manager.write(2, image);
  const std::string newest_path = manager.write(3, image);

  // Flip one payload bit in the newest file — a torn or bit-rotted write.
  auto bytes = state::read_file(newest_path);
  bytes[bytes.size() / 2] ^= 0x01;
  std::ofstream(newest_path, std::ios::binary)
      .write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<long>(bytes.size()));

  const std::uint64_t corrupt_before = scrape_corrupt_counter();
  const auto loaded = manager.load_newest_valid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 2u);
  EXPECT_EQ(loaded->image, image);
  EXPECT_EQ(scrape_corrupt_counter(), corrupt_before + 1);
}

TEST_F(CheckpointManagerTest, AllCorruptMeansNulloptNotThrow) {
  state::CheckpointManager manager{dir_, "fleet", 3};
  const auto image = make_image();
  for (std::uint64_t epoch = 1; epoch <= 2; ++epoch) {
    const std::string path = manager.write(epoch, image);
    auto bytes = state::read_file(path);
    bytes[0] ^= 0xFF;  // destroy the magic
    std::ofstream(path, std::ios::binary)
        .write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<long>(bytes.size()));
  }
  EXPECT_FALSE(manager.load_newest_valid().has_value());
}

TEST_F(CheckpointManagerTest, IgnoresForeignFilesInTheDirectory) {
  state::CheckpointManager manager{dir_, "fleet", 3};
  const auto image = make_image();
  manager.write(4, image);
  std::ofstream(fs::path(dir_) / "notes.txt") << "not a checkpoint";
  std::ofstream(fs::path(dir_) / "other-000000000001.aqcp") << "different stem";
  ASSERT_EQ(manager.list().size(), 1u);
  const auto loaded = manager.load_newest_valid();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->epoch, 4u);
}

}  // namespace
}  // namespace aqua
