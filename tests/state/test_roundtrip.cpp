// The checkpoint twin of the reset⇒replay suite: snapshot a component
// MID-RUN, load the image into a freshly constructed twin, and require the
// two continuations to be bit-identical. Where reset⇒replay proves reset()
// rewinds completely, these prove save_state/load_state captures completely —
// a missed member shows up as a diverging continuation, not a crash.
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cta.hpp"
#include "core/rig.hpp"
#include "fleet/sensor_node.hpp"
#include "isif/channel.hpp"
#include "obs/flight.hpp"
#include "state/checkpoint.hpp"
#include "state/serial.hpp"
#include "util/rng.hpp"

namespace aqua {
namespace {

using util::celsius;
using util::Rng;
using util::Seconds;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

template <typename T>
std::vector<std::uint8_t> snapshot(const T& object) {
  state::Writer w;
  object.save_state(w);
  return w.take();
}

template <typename T>
void restore(T& object, const std::vector<std::uint8_t>& image) {
  state::Reader r{image};
  object.load_state(r);
  r.expect_end();  // a component must consume its image exactly
}

// ---------------------------------------------------------------------------
// InputChannel: run half the stimulus, snapshot, restore into a twin built
// from the SAME seed (construction-time part draws — amp offset, mismatch —
// are deliberately not serialized; the resume contract is "same binary, same
// config, same seed"), and compare the second half sample for sample.
// ---------------------------------------------------------------------------

std::vector<isif::ChannelSample> run_channel(isif::InputChannel& channel,
                                             int first_tick, int ticks) {
  std::vector<isif::ChannelSample> samples;
  const double dt = channel.tick_period().value();
  for (int i = first_tick; i < first_tick + ticks; ++i) {
    const double vin = 5e-3 * std::sin(2.0 * M_PI * 400.0 * i * dt);
    if (auto s = channel.tick(util::volts(vin))) samples.push_back(*s);
  }
  return samples;
}

TEST(CheckpointRoundTrip, InputChannelContinuationIsBitIdentical) {
  isif::InputChannel channel{isif::ChannelConfig{}, Rng{99}};
  (void)run_channel(channel, 0, 4096);
  const auto image = snapshot(channel);

  isif::InputChannel twin{isif::ChannelConfig{}, Rng{99}};
  restore(twin, image);

  const auto expected = run_channel(channel, 4096, 4096);
  const auto resumed = run_channel(twin, 4096, 4096);
  ASSERT_EQ(expected.size(), resumed.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    ASSERT_EQ(expected[k].code, resumed[k].code) << "sample " << k;
    ASSERT_EQ(bits(expected[k].value), bits(resumed[k].value)) << "sample " << k;
    ASSERT_EQ(expected[k].overload, resumed[k].overload) << "sample " << k;
  }
}

// ---------------------------------------------------------------------------
// CtaAnemometer: commission + flow history, snapshot mid-run, twin must
// continue the loop observables bit for bit.
// ---------------------------------------------------------------------------

maf::Environment water(double v_mps) {
  maf::Environment env;
  env.speed = util::metres_per_second(v_mps);
  env.fluid_temperature = celsius(15.0);
  env.pressure = util::bar(2.0);
  return env;
}

struct LoopSample {
  double bridge;
  double filtered;
  double direction;
};

std::vector<LoopSample> run_loop(cta::CtaAnemometer& anemo, Seconds duration,
                                 const maf::Environment& env) {
  std::vector<LoopSample> out;
  const double dt = anemo.tick_period().value();
  const auto ticks = static_cast<long long>(duration.value() / dt);
  for (long long i = 0; i < ticks; ++i) {
    anemo.tick(env);
    out.push_back({anemo.bridge_voltage(), anemo.filtered_voltage(),
                   anemo.direction_signal()});
  }
  return out;
}

TEST(CheckpointRoundTrip, CtaLoopContinuationIsBitIdentical) {
  cta::CtaAnemometer anemo{maf::MafSpec{}, cta::coarse_isif_config(),
                           cta::CtaConfig{}, Rng{20260805}};
  anemo.commission(water(0.0), Seconds{0.3});
  (void)run_loop(anemo, Seconds{0.4}, water(0.8));
  const auto image = snapshot(anemo);

  cta::CtaAnemometer twin{maf::MafSpec{}, cta::coarse_isif_config(),
                          cta::CtaConfig{}, Rng{20260805}};
  restore(twin, image);

  const auto expected = run_loop(anemo, Seconds{0.4}, water(1.6));
  const auto resumed = run_loop(twin, Seconds{0.4}, water(1.6));
  ASSERT_EQ(expected.size(), resumed.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    ASSERT_EQ(bits(expected[k].bridge), bits(resumed[k].bridge)) << "tick " << k;
    ASSERT_EQ(bits(expected[k].filtered), bits(resumed[k].filtered))
        << "tick " << k;
    ASSERT_EQ(bits(expected[k].direction), bits(resumed[k].direction))
        << "tick " << k;
  }
}

// ---------------------------------------------------------------------------
// SensorNode: the fleet unit, snapshotted between epochs — calibration fit,
// turbulence AR(1) state, self-test record and trace must all travel.
// ---------------------------------------------------------------------------

fleet::SensorNodeConfig node_config() {
  fleet::SensorNodeConfig cfg;
  cfg.isif = cta::coarse_isif_config();
  cfg.cta.output_cutoff = util::hertz(2.0);
  return cfg;
}

fleet::SensorNode make_node(std::uint64_t seed) {
  return fleet::SensorNode{3, fleet::SensorPlacement{}, node_config(),
                           util::millimetres(150.0), Rng::stream(seed, 3)};
}

void advance_node(fleet::SensorNode& node, int epochs) {
  fleet::PipeState state;
  state.mean_velocity_mps = 0.9;
  state.point_velocity_mps = 1.1;
  for (int i = 0; i < epochs; ++i) node.advance(state, Seconds{0.1});
}

void expect_traces_bit_identical(const std::vector<fleet::TraceSample>& a,
                                 const std::vector<fleet::TraceSample>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    ASSERT_EQ(bits(a[k].t_s), bits(b[k].t_s)) << "epoch " << k;
    ASSERT_EQ(bits(a[k].bridge_voltage), bits(b[k].bridge_voltage))
        << "epoch " << k;
    ASSERT_EQ(bits(a[k].filtered_voltage), bits(b[k].filtered_voltage))
        << "epoch " << k;
    ASSERT_EQ(bits(a[k].estimate_mps), bits(b[k].estimate_mps)) << "epoch " << k;
    ASSERT_EQ(a[k].direction, b[k].direction) << "epoch " << k;
  }
}

TEST(CheckpointRoundTrip, SensorNodeContinuationIsBitIdentical) {
  fleet::SensorNode node = make_node(42);
  node.set_fit(cta::KingFit{0.9, 1.1, 0.5}, celsius(15.0));
  fleet::PipeState still;
  node.commission(still, Seconds{0.2});
  (void)node.run_self_test();
  advance_node(node, 3);
  const auto image = snapshot(node);

  // The twin is constructed from the SAME stream (identical one-time part
  // draws — the restore contract) but never commissioned or advanced.
  fleet::SensorNode twin = make_node(42);
  restore(twin, image);
  EXPECT_TRUE(twin.calibrated());
  ASSERT_TRUE(twin.last_self_test().has_value());
  EXPECT_EQ(twin.last_self_test()->pass, node.last_self_test()->pass);

  advance_node(node, 4);
  advance_node(twin, 4);
  expect_traces_bit_identical(node.trace(), twin.trace());
}

TEST(CheckpointRoundTrip, SensorNodeImageMustBeConsumedExactly) {
  fleet::SensorNode node = make_node(42);
  advance_node(node, 2);
  auto image = snapshot(node);
  image.push_back(0x00);  // trailing garbage
  fleet::SensorNode twin = make_node(42);
  state::Reader r{image};
  twin.load_state(r);
  EXPECT_THROW(r.expect_end(), state::Error);
}

TEST(CheckpointRoundTrip, SensorNodeTruncatedImageThrows) {
  fleet::SensorNode node = make_node(42);
  advance_node(node, 2);
  auto image = snapshot(node);
  image.resize(image.size() / 2);
  fleet::SensorNode twin = make_node(42);
  state::Reader r{image};
  EXPECT_THROW(twin.load_state(r), state::Error);
}

// ---------------------------------------------------------------------------
// FlightRecorder: ring contents, drop count and write cursor travel; labels
// are re-interned on load so the restored events stay printable forever.
// ---------------------------------------------------------------------------

TEST(CheckpointRoundTrip, FlightRecorderRoundTripsIncludingDrops) {
  obs::FlightRecorder recorder{4};
  for (int i = 0; i < 7; ++i)
    recorder.record(0.1 * i, obs::FlightRecordKind::kFault, i, i * 1.5,
                    "unit-test-label");
  ASSERT_EQ(recorder.size(), 4u);
  ASSERT_EQ(recorder.dropped(), 3u);
  const auto image = snapshot(recorder);

  obs::FlightRecorder twin{4};
  restore(twin, image);
  EXPECT_EQ(twin.dropped(), recorder.dropped());
  const auto expected = recorder.events();
  const auto loaded = twin.events();
  ASSERT_EQ(expected.size(), loaded.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    EXPECT_EQ(bits(expected[k].t_s), bits(loaded[k].t_s));
    EXPECT_EQ(expected[k].kind, loaded[k].kind);
    EXPECT_EQ(expected[k].code, loaded[k].code);
    EXPECT_EQ(bits(expected[k].value), bits(loaded[k].value));
    ASSERT_NE(loaded[k].label, nullptr);
    EXPECT_STREQ(expected[k].label, loaded[k].label);
  }
}

// ---------------------------------------------------------------------------
// Golden fixture: a committed version-1 image of a mid-run SensorNode. If the
// wire format drifts without a kFormatVersion bump, this is the test that
// fails. Regenerate (after a DELIBERATE, version-bumped change) with
//   AQUA_REGEN_GOLDEN=1 ./test_state --gtest_filter='*Golden*'
// ---------------------------------------------------------------------------

#ifndef AQUA_GOLDEN_DIR
#define AQUA_GOLDEN_DIR "."
#endif

constexpr std::uint32_t kGoldenSection = state::section_id('N', 'O', 'D', 'E');

std::string golden_path() {
  return std::string(AQUA_GOLDEN_DIR) + "/sensor-node-v1.aqcp";
}

std::vector<std::uint8_t> make_golden_image() {
  fleet::SensorNode node = make_node(20260808);
  node.set_fit(cta::KingFit{0.9, 1.1, 0.5}, celsius(15.0));
  fleet::PipeState still;
  node.commission(still, Seconds{0.2});
  advance_node(node, 3);
  state::CheckpointWriter ck;
  node.save_state(ck.begin_section(kGoldenSection));
  ck.end_section();
  return ck.finish();
}

TEST(CheckpointGolden, CommittedImageStillRestoresBitIdentically) {
  if (std::getenv("AQUA_REGEN_GOLDEN") != nullptr) {
    state::write_file_atomic(golden_path(), make_golden_image());
    GTEST_SKIP() << "regenerated " << golden_path();
  }
  ASSERT_TRUE(std::filesystem::exists(golden_path()))
      << golden_path() << " missing — run with AQUA_REGEN_GOLDEN=1";
  const auto image = state::read_file(golden_path());
  const state::CheckpointReader ck{image};
  ASSERT_EQ(ck.version(), state::kFormatVersion);

  // Restore the committed snapshot and continue it; a node that reproduces
  // the same continuation as a freshly rebuilt snapshot proves the committed
  // byte layout still maps onto today's members.
  fleet::SensorNode restored = make_node(20260808);
  state::Reader r = ck.section(kGoldenSection);
  restored.load_state(r);
  r.expect_end();

  fleet::SensorNode reference = make_node(20260808);
  {
    const auto fresh = make_golden_image();
    const state::CheckpointReader fresh_ck{fresh};
    state::Reader fr = fresh_ck.section(kGoldenSection);
    reference.load_state(fr);
    fr.expect_end();
  }
  advance_node(restored, 4);
  advance_node(reference, 4);
  expect_traces_bit_identical(restored.trace(), reference.trace());
}

}  // namespace
}  // namespace aqua
