#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

namespace aqua::util {
namespace {

TEST(ThreadPool, SubmitReturnsTaskResult) {
  ThreadPool pool{2};
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, CompletesAllTasksUnderContention) {
  // Many more tasks than workers, all hammering one atomic: every task must
  // run exactly once regardless of which queue it lands in or who steals it.
  ThreadPool pool{4};
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  futures.reserve(1000);
  for (int i = 0; i < 1000; ++i)
    futures.push_back(pool.submit([&count] {
      count.fetch_add(1, std::memory_order_relaxed);
    }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 1000);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i)
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ExceptionPropagatesToCallerThroughFuture) {
  ThreadPool pool{2};
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPool, ParallelForRethrowsAfterFinishingOtherBlocks) {
  ThreadPool pool{3};
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          if (i == 37) throw std::invalid_argument("bad index");
                          completed.fetch_add(1);
                        }),
      std::invalid_argument);
  // The rethrow happens only after every block finished: at most the tail of
  // the one chunk that threw (≤ ⌈100/12⌉ indices) may be missing.
  EXPECT_GE(completed.load(), 90);
  EXPECT_LE(completed.load(), 99);
}

TEST(ThreadPool, GracefulShutdownDrainsQueuedWork) {
  std::atomic<int> count{0};
  {
    ThreadPool pool{2};
    for (int i = 0; i < 200; ++i)
      (void)pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        count.fetch_add(1);
      });
    // Destructor runs with most of the queue still pending.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, WaitIdleBlocksUntilQueueEmpty) {
  ThreadPool pool{2};
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i)
    (void)pool.submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      count.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 50);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ThreadPool, NestedSubmitFromWorkerCompletes) {
  // A task spawning a subtask exercises the worker-local LIFO path.
  ThreadPool pool{2};
  auto outer = pool.submit([&pool] {
    auto inner = pool.submit([] { return 7; });
    return inner.get() + 1;
  });
  EXPECT_EQ(outer.get(), 8);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;  // hardware concurrency, whatever the machine offers
  EXPECT_GE(pool.thread_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 3; }).get(), 3);
}

TEST(ThreadPool, SingleThreadPoolStillDrainsManyTasks) {
  ThreadPool pool{1};
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 300; ++i)
    futures.push_back(pool.submit([&count] { count.fetch_add(1); }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 300);
}

}  // namespace
}  // namespace aqua::util
