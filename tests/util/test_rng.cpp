#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace aqua::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng{7};
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng{9};
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, GaussianMomentsMatch) {
  Rng rng{42};
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.03);
}

TEST(Rng, GaussianScaledMoments) {
  Rng rng{43};
  double sum = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.gaussian(3.0, 0.5);
  EXPECT_NEAR(sum / kN, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng{44};
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{45};
  for (int i = 0; i < 1000; ++i) ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, StreamIsAPureFunctionOfSeedAndId) {
  Rng a = Rng::stream(123, 7);
  Rng b = Rng::stream(123, 7);
  for (int i = 0; i < 100; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamDerivationIsOrderIndependent) {
  // Counter-based derivation: the sequence of stream 2 cannot depend on
  // whether stream 5 was created before or after it.
  Rng five_first_2 = [&] {
    (void)Rng::stream(321, 5);
    return Rng::stream(321, 2);
  }();
  Rng two_first_2 = Rng::stream(321, 2);
  for (int i = 0; i < 100; ++i)
    ASSERT_EQ(five_first_2.next_u64(), two_first_2.next_u64());
}

TEST(Rng, AdjacentStreamsAreDecorrelated) {
  Rng a = Rng::stream(7, 0);
  Rng b = Rng::stream(7, 1);
  double sum_xy = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum_xy += a.gaussian() * b.gaussian();
  EXPECT_NEAR(sum_xy / kN, 0.0, 0.03);
}

TEST(Rng, DifferentRootSeedsGiveDifferentStreams) {
  Rng a = Rng::stream(1, 0);
  Rng b = Rng::stream(2, 0);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, SplitStreamsAreDecorrelated) {
  Rng parent{99};
  Rng child = parent.split();
  // Correlation of two streams should be near zero.
  double sum_xy = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum_xy += parent.gaussian() * child.gaussian();
  EXPECT_NEAR(sum_xy / kN, 0.0, 0.03);
}

}  // namespace
}  // namespace aqua::util
