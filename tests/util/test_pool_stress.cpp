// Concurrency battery for the persistent-worker primitives under the fleet
// epoch loop: EpochBarrier generation semantics, WorkerTeam lifecycle
// (startup, per-epoch release, exception capture, shutdown) and a sustained
// stress loop. These tests run under the TSan CI job — the serial-phase
// publication tests in particular exist to let the race detector prove the
// barrier's happens-before edge, not just that the values come out right.
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/barrier.hpp"
#include "util/thread_pool.hpp"
#include "util/worker_team.hpp"

namespace aqua::util {
namespace {

TEST(EpochBarrier, RejectsZeroParticipants) {
  EXPECT_THROW(EpochBarrier{0}, std::invalid_argument);
}

TEST(EpochBarrier, SingleParticipantAdvancesGenerations) {
  EpochBarrier barrier{1};
  EXPECT_EQ(barrier.participants(), 1u);
  EXPECT_EQ(barrier.generation(), 0u);
  for (std::uint64_t g = 0; g < 5; ++g)
    EXPECT_EQ(barrier.arrive_and_wait(), g);
  EXPECT_EQ(barrier.generation(), 5u);
}

TEST(EpochBarrier, ManyThreadsAgreeOnEveryGeneration) {
  constexpr std::size_t kThreads = 4;
  constexpr std::uint64_t kGenerations = 200;
  EpochBarrier barrier{kThreads};
  std::vector<std::vector<std::uint64_t>> seen(kThreads);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t g = 0; g < kGenerations; ++g)
        seen[t].push_back(barrier.arrive_and_wait());
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_EQ(seen[t].size(), kGenerations);
    for (std::uint64_t g = 0; g < kGenerations; ++g)
      EXPECT_EQ(seen[t][g], g) << "thread " << t;
  }
  EXPECT_EQ(barrier.generation(), kGenerations);
}

// The barrier's mutex must publish plain (non-atomic) writes made before one
// generation to every waiter of that generation — the exact pattern the fleet
// engine uses to hand frozen epoch snapshots to the team. TSan verifies the
// happens-before edge; the assertions verify the values.
TEST(EpochBarrier, PublishesPlainWritesAcrossGenerations) {
  constexpr std::uint64_t kGenerations = 100;
  EpochBarrier barrier{2};
  std::uint64_t shared = 0;  // written by the producer, read by the consumer
  std::uint64_t consumed = 0;
  std::thread consumer([&] {
    for (std::uint64_t g = 0; g < kGenerations; ++g) {
      barrier.arrive_and_wait();  // producer wrote `shared` before arriving
      consumed += shared;
      barrier.arrive_and_wait();  // hand the slot back to the producer
    }
  });
  std::uint64_t expected = 0;
  for (std::uint64_t g = 0; g < kGenerations; ++g) {
    shared = g + 1;
    expected += g + 1;
    barrier.arrive_and_wait();
    barrier.arrive_and_wait();  // consumer finished reading `shared`
  }
  consumer.join();
  EXPECT_EQ(consumed, expected);
}

TEST(WorkerTeam, RejectsZeroAndOversizedTeams) {
  ThreadPool pool{2};
  EXPECT_THROW(WorkerTeam(pool, 0, [](std::size_t) {}), std::invalid_argument);
  // More workers than pool threads would park tasks that can never start.
  EXPECT_THROW(WorkerTeam(pool, 3, [](std::size_t) {}), std::invalid_argument);
}

TEST(WorkerTeam, RunsBodyOncePerWorkerPerEpoch) {
  constexpr std::size_t kWorkers = 4;
  constexpr int kEpochs = 25;
  ThreadPool pool{kWorkers};
  std::vector<int> runs(kWorkers, 0);  // disjoint slots, no atomics needed
  {
    WorkerTeam team{pool, kWorkers, [&](std::size_t w) { ++runs[w]; }};
    EXPECT_EQ(team.workers(), kWorkers);
    for (int e = 0; e < kEpochs; ++e) team.run_epoch();
    EXPECT_EQ(team.epochs(), static_cast<std::uint64_t>(kEpochs));
  }
  for (std::size_t w = 0; w < kWorkers; ++w) EXPECT_EQ(runs[w], kEpochs);
}

TEST(WorkerTeam, ShutdownWithoutEpochsLeavesPoolReusable) {
  ThreadPool pool{2};
  { WorkerTeam team{pool, 2, [](std::size_t) { FAIL() << "never released"; }}; }
  // The parked tasks must be fully retired: new work runs and the pool drains.
  auto f = pool.submit([] { return 7; });
  EXPECT_EQ(f.get(), 7);
  pool.wait_idle();
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(WorkerTeam, BodyExceptionRethrownAndTeamStaysUsable) {
  constexpr std::size_t kWorkers = 3;
  ThreadPool pool{kWorkers};
  std::atomic<int> epoch{0};
  std::vector<int> runs(kWorkers, 0);
  WorkerTeam team{pool, kWorkers, [&](std::size_t w) {
                    ++runs[w];
                    if (epoch.load() == 1 && w == 1)
                      throw std::runtime_error("worker 1 bad epoch");
                  }};
  team.run_epoch();
  epoch.store(1);
  // The throwing worker still reaches the epoch barrier: the epoch completes
  // on every worker, THEN the coordinator sees the exception.
  EXPECT_THROW(team.run_epoch(), std::runtime_error);
  epoch.store(2);
  team.run_epoch();  // captured error was cleared; the team is not poisoned
  for (std::size_t w = 0; w < kWorkers; ++w) EXPECT_EQ(runs[w], 3);
}

TEST(WorkerTeam, BackToBackTeamsOnOnePool) {
  ThreadPool pool{2};
  for (int round = 0; round < 3; ++round) {
    std::vector<int> runs(2, 0);
    WorkerTeam team{pool, 2, [&](std::size_t w) { ++runs[w]; }};
    team.run_epoch();
    team.run_epoch();
    EXPECT_EQ(runs[0], 2);
    EXPECT_EQ(runs[1], 2);
  }
  pool.wait_idle();
  EXPECT_EQ(pool.in_flight(), 0u);
}

// Sustained epoch loop mimicking the fleet engine's steady state: the
// coordinator mutates shared (plain, non-atomic) per-epoch inputs while the
// workers are parked, workers fold them into disjoint accumulators. Run under
// TSan this is the determinism-critical handshake; 500 epochs gives the
// scheduler room to interleave wake-ups badly.
TEST(WorkerTeam, StressEpochLoopWithSerialPhases) {
  constexpr std::size_t kWorkers = 4;
  constexpr std::uint64_t kEpochs = 500;
  ThreadPool pool{kWorkers};
  std::vector<std::uint64_t> input(kWorkers, 0);  // written between epochs
  std::vector<std::uint64_t> acc(kWorkers, 0);    // worker-owned slots
  {
    WorkerTeam team{pool, kWorkers,
                    [&](std::size_t w) { acc[w] += input[w]; }};
    for (std::uint64_t e = 1; e <= kEpochs; ++e) {
      for (std::size_t w = 0; w < kWorkers; ++w) input[w] = e * (w + 1);
      team.run_epoch();
    }
  }
  const std::uint64_t sum = kEpochs * (kEpochs + 1) / 2;
  for (std::size_t w = 0; w < kWorkers; ++w)
    EXPECT_EQ(acc[w], sum * (w + 1)) << "worker " << w;
}

}  // namespace
}  // namespace aqua::util
