#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace aqua::util {
namespace {

TEST(Table, PrintsAlignedColumns) {
  Table t{"demo"};
  t.columns({"name", "value"});
  t.add_row({std::string{"alpha"}, 1.5});
  t.add_row({std::string{"b"}, 22.25});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.2500"), std::string::npos);  // default 4 digits
}

TEST(Table, PrecisionControlsDoubles) {
  Table t;
  t.columns({"x"}).precision(1);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.1"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14"), std::string::npos);
}

TEST(Table, RejectsWidthMismatch) {
  Table t;
  t.columns({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
}

TEST(Table, IntegerCells) {
  Table t;
  t.columns({"n"});
  t.add_row({static_cast<long long>(42)});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("42"), std::string::npos);
}

TEST(Table, WritesCsvWithEscaping) {
  Table t;
  t.columns({"name", "v"});
  t.add_row({std::string{"has,comma"}, 1.0});
  t.add_row({std::string{"has\"quote"}, 2.0});
  const std::string path = testing::TempDir() + "/aqua_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string body = ss.str();
  EXPECT_NE(body.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(body.find("\"has\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(Table, RowCountTracks) {
  Table t;
  t.columns({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({1.0});
  t.add_row({2.0});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace aqua::util
