#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace aqua::util {
namespace {

TEST(Polyval, EvaluatesHornerOrder) {
  const std::vector<double> c{1.0, -2.0, 3.0};  // 1 − 2x + 3x²
  EXPECT_DOUBLE_EQ(polyval(c, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(polyval(c, 2.0), 1.0 - 4.0 + 12.0);
}

TEST(Interp1, InterpolatesAndClamps) {
  const std::vector<double> x{0.0, 1.0, 3.0};
  const std::vector<double> y{0.0, 10.0, 30.0};
  EXPECT_DOUBLE_EQ(interp1(x, y, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(interp1(x, y, 2.0), 20.0);
  EXPECT_DOUBLE_EQ(interp1(x, y, -1.0), 0.0);   // clamp low
  EXPECT_DOUBLE_EQ(interp1(x, y, 99.0), 30.0);  // clamp high
}

TEST(Interp1, RejectsShapeMismatch) {
  const std::vector<double> x{0.0, 1.0};
  const std::vector<double> y{0.0};
  EXPECT_THROW((void)interp1(x, y, 0.5), std::invalid_argument);
}

TEST(SolveLinear, SolvesKnownSystem) {
  // 2x + y = 5; x − y = 1  →  x = 2, y = 1.
  const auto sol = solve_linear({2.0, 1.0, 1.0, -1.0}, {5.0, 1.0});
  ASSERT_EQ(sol.size(), 2u);
  EXPECT_NEAR(sol[0], 2.0, 1e-12);
  EXPECT_NEAR(sol[1], 1.0, 1e-12);
}

TEST(SolveLinear, PivotsOnZeroDiagonal) {
  // First diagonal entry is zero; needs the row swap.
  const auto sol = solve_linear({0.0, 1.0, 1.0, 0.0}, {3.0, 4.0});
  EXPECT_NEAR(sol[0], 4.0, 1e-12);
  EXPECT_NEAR(sol[1], 3.0, 1e-12);
}

TEST(SolveLinear, ThrowsOnSingular) {
  EXPECT_THROW((void)solve_linear({1.0, 2.0, 2.0, 4.0}, {1.0, 2.0}),
               std::invalid_argument);
}

TEST(LeastSquares, RecoversLine) {
  // y = 3 + 2x sampled exactly.
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(1.0);
    x.push_back(static_cast<double>(i));
    y.push_back(3.0 + 2.0 * i);
  }
  const auto beta = least_squares(x, y, 2);
  EXPECT_NEAR(beta[0], 3.0, 1e-9);
  EXPECT_NEAR(beta[1], 2.0, 1e-9);
}

TEST(LeastSquares, OverdeterminedMinimisesResidual) {
  // y = x with one outlier; slope should stay near 1 for many clean points.
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(static_cast<double>(i));
    y.push_back(static_cast<double>(i));
  }
  x.push_back(25.0);
  y.push_back(60.0);
  const auto beta = least_squares(x, y, 1);
  EXPECT_NEAR(beta[0], 1.0, 0.05);
}

TEST(GoldenMinimize, FindsParabolaMinimum) {
  const double x =
      golden_minimize([](double v) { return (v - 1.7) * (v - 1.7); }, -10, 10);
  EXPECT_NEAR(x, 1.7, 1e-6);
}

TEST(GoldenMinimize, HandlesAsymmetricUnimodal) {
  const double x = golden_minimize(
      [](double v) { return std::exp(v) - 2.0 * v; }, -2.0, 3.0);
  EXPECT_NEAR(x, std::log(2.0), 1e-6);
}

TEST(Bisect, FindsRoot) {
  const double r = bisect([](double x) { return x * x - 2.0; }, 0.0, 2.0);
  EXPECT_NEAR(r, std::sqrt(2.0), 1e-9);
}

TEST(Bisect, ThrowsWithoutSignChange) {
  EXPECT_THROW((void)bisect([](double x) { return x * x + 1.0; }, -1.0, 1.0),
               std::invalid_argument);
}

TEST(RemapClamped, MapsAndClamps) {
  EXPECT_DOUBLE_EQ(remap_clamped(5.0, 0.0, 10.0, 0.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(remap_clamped(-5.0, 0.0, 10.0, 0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(remap_clamped(15.0, 0.0, 10.0, 0.0, 100.0), 100.0);
}

}  // namespace
}  // namespace aqua::util
