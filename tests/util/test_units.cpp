#include "util/units.hpp"

#include <gtest/gtest.h>

namespace aqua::util {
namespace {

using namespace aqua::util::literals;

TEST(Units, LiteralsProduceSiValues) {
  EXPECT_DOUBLE_EQ((2.5_mps).value(), 2.5);
  EXPECT_DOUBLE_EQ((250.0_cmps).value(), 2.5);
  EXPECT_DOUBLE_EQ((3.0_bar).value(), 3e5);
  EXPECT_DOUBLE_EQ((50.0_Ohm).value(), 50.0);
  EXPECT_DOUBLE_EQ((2.0_um).value(), 2e-6);
  EXPECT_DOUBLE_EQ((1.5_kHz).value(), 1500.0);
  EXPECT_DOUBLE_EQ((12.0_mV).value(), 0.012);
}

TEST(Units, CelsiusKelvinRoundTrip) {
  EXPECT_DOUBLE_EQ(celsius(0.0).value(), 273.15);
  EXPECT_DOUBLE_EQ(to_celsius(celsius(37.5)), 37.5);
  EXPECT_DOUBLE_EQ((25.0_degC).value(), 298.15);
}

TEST(Units, AdditionAndScaling) {
  const Volts v = 1.0_V + 500.0_mV;
  EXPECT_DOUBLE_EQ(v.value(), 1.5);
  EXPECT_DOUBLE_EQ((2.0 * v).value(), 3.0);
  EXPECT_DOUBLE_EQ((v / 3.0).value(), 0.5);
}

TEST(Units, DimensionedMultiplication) {
  // V = I·R with full dimension tracking.
  const Volts v = amperes(0.02) * ohms(50.0);
  EXPECT_DOUBLE_EQ(v.value(), 1.0);
  // P = V·I.
  const Watts p = v * amperes(0.02);
  EXPECT_DOUBLE_EQ(p.value(), 0.02);
  // v = d / t.
  const MetresPerSecond speed = metres(10.0) / seconds(4.0);
  EXPECT_DOUBLE_EQ(speed.value(), 2.5);
}

TEST(Units, SameDimensionDivisionIsScalar) {
  const double ratio = metres(10.0) / metres(2.0);
  EXPECT_DOUBLE_EQ(ratio, 5.0);
}

TEST(Units, ComparisonOperators) {
  EXPECT_LT(1.0_V, 2.0_V);
  EXPECT_GE(2.0_bar, 2.0_bar);
  EXPECT_EQ(100.0_cmps, 1.0_mps);
}

TEST(Units, ReadoutHelpers) {
  EXPECT_DOUBLE_EQ(to_centimetres_per_second(1.5_mps), 150.0);
  EXPECT_DOUBLE_EQ(to_bar(pascals(3.5e5)), 3.5);
  EXPECT_DOUBLE_EQ(to_millivolts(0.25_V), 250.0);
}

TEST(Units, CompoundAssignment) {
  Volts v{1.0};
  v += Volts{0.5};
  v -= Volts{0.25};
  v *= 4.0;
  v /= 2.0;
  EXPECT_DOUBLE_EQ(v.value(), 2.5);
}

TEST(Units, UnaryNegation) {
  EXPECT_DOUBLE_EQ((-(1.5_mps)).value(), -1.5);
}

}  // namespace
}  // namespace aqua::util
