#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace aqua::util {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.half_span(), 3.5);
}

TEST(RunningStats, SingleSampleHasZeroVariance) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.half_span(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(SlidingWindowStats, WindowEvictsOldSamples) {
  SlidingWindowStats w{3};
  for (double x : {1.0, 2.0, 3.0}) w.add(x);
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  w.add(10.0);  // evicts 1.0 → window {2,3,10}
  EXPECT_DOUBLE_EQ(w.mean(), 5.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
  EXPECT_DOUBLE_EQ(w.max(), 10.0);
}

TEST(SlidingWindowStats, StddevMatchesDirect) {
  SlidingWindowStats w{4};
  for (double x : {1.0, 2.0, 3.0, 4.0}) w.add(x);
  // sample stddev of {1,2,3,4} = sqrt(5/3)
  EXPECT_NEAR(w.stddev(), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SlidingWindowStats, RejectsZeroCapacity) {
  EXPECT_THROW(SlidingWindowStats{0}, std::invalid_argument);
}

TEST(Correlation, PerfectAndAnti) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  std::vector<double> c{8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  EXPECT_NEAR(correlation(a, c), -1.0, 1e-12);
}

TEST(Correlation, IndependentNearZero) {
  Rng rng{5};
  std::vector<double> a, b;
  for (int i = 0; i < 10000; ++i) {
    a.push_back(rng.gaussian());
    b.push_back(rng.gaussian());
  }
  EXPECT_NEAR(correlation(a, b), 0.0, 0.05);
}

TEST(Rms, KnownValues) {
  const std::vector<double> x{3.0, -4.0};
  EXPECT_NEAR(rms(x), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(rms(std::vector<double>{}), 0.0);
}

TEST(Quantile, MedianAndExtremes) {
  const std::vector<double> x{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(x, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(x, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(x, 0.25), 2.0);
}

TEST(Quantile, ThrowsOnEmpty) {
  EXPECT_THROW((void)quantile(std::vector<double>{}, 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::util
