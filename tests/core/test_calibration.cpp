#include "core/calibration.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace aqua::cta {
namespace {

std::vector<CalPoint> synth_points(double a, double b, double n,
                                   double noise = 0.0,
                                   std::uint64_t seed = 1) {
  util::Rng rng{seed};
  std::vector<CalPoint> pts;
  for (double v : {0.0, 0.05, 0.1, 0.25, 0.5, 0.8, 1.2, 1.7, 2.1, 2.5}) {
    const double u2 = a + b * std::pow(v, n);
    pts.push_back(CalPoint{v, std::sqrt(u2) + rng.gaussian(0.0, noise)});
  }
  return pts;
}

TEST(KingFit, RecoversExactParameters) {
  const auto fit = fit_kings_law(synth_points(0.5, 0.8, 0.5));
  EXPECT_NEAR(fit.a, 0.5, 1e-5);
  EXPECT_NEAR(fit.b, 0.8, 1e-5);
  EXPECT_NEAR(fit.n, 0.5, 1e-3);
  EXPECT_LT(fit.rms_residual, 1e-6);
}

TEST(KingFit, RecoversNonHalfExponent) {
  const auto fit = fit_kings_law(synth_points(0.3, 1.1, 0.42));
  EXPECT_NEAR(fit.n, 0.42, 2e-3);
}

TEST(KingFit, RobustToSmallNoise) {
  const auto fit = fit_kings_law(synth_points(0.5, 0.8, 0.5, 1e-3, 7));
  EXPECT_NEAR(fit.a, 0.5, 0.02);
  EXPECT_NEAR(fit.b, 0.8, 0.02);
  EXPECT_NEAR(fit.n, 0.5, 0.05);
}

TEST(KingFit, ForwardInverseRoundTrip) {
  const KingFit fit{0.5, 0.8, 0.47, 0.0};
  for (double v : {0.0, 0.1, 0.5, 1.5, 2.5}) {
    EXPECT_NEAR(fit.velocity(fit.voltage(v)), v, 1e-9) << "v " << v;
  }
}

TEST(KingFit, VoltagesBelowInterceptReadZero) {
  const KingFit fit{0.5, 0.8, 0.5, 0.0};
  EXPECT_DOUBLE_EQ(fit.velocity(0.1), 0.0);
  // Exactly at the intercept, rounding may leave a vanishing residual speed.
  EXPECT_LT(fit.velocity(std::sqrt(0.5)), 1e-9);
}

TEST(KingFit, SensitivityFallsWithSpeed) {
  // vⁿ compression: dU/dv shrinks toward high flow — the physical reason the
  // paper's resolution degrades from ±0.75 to ±4 cm/s across the range.
  const KingFit fit{0.5, 0.8, 0.5, 0.0};
  EXPECT_GT(fit.sensitivity(0.2), fit.sensitivity(1.0));
  EXPECT_GT(fit.sensitivity(1.0), fit.sensitivity(2.5));
}

TEST(KingFit, ValidationRules) {
  EXPECT_THROW((void)fit_kings_law(std::vector<CalPoint>{{0.0, 1.0}, {1.0, 2.0}}),
               std::invalid_argument);
  const std::vector<CalPoint> all_zero{{0.0, 1.0}, {0.0, 1.1}, {0.0, 0.9}};
  EXPECT_THROW((void)fit_kings_law(all_zero), std::invalid_argument);
  EXPECT_THROW((void)fit_kings_law(synth_points(0.5, 0.8, 0.5), 0.7, 0.3),
               std::invalid_argument);
}

TEST(TableCalibration, InterpolatesBetweenPoints) {
  TableCalibration cal{{{0.0, 1.0}, {1.0, 2.0}, {2.0, 2.5}}};
  EXPECT_DOUBLE_EQ(cal.velocity(1.5), 0.5);
  EXPECT_DOUBLE_EQ(cal.velocity(2.25), 1.5);
  EXPECT_DOUBLE_EQ(cal.voltage(1.0), 2.0);
}

TEST(TableCalibration, ClampsOutsideRange) {
  TableCalibration cal{{{0.0, 1.0}, {2.0, 3.0}}};
  EXPECT_DOUBLE_EQ(cal.velocity(0.0), 0.0);
  EXPECT_DOUBLE_EQ(cal.velocity(10.0), 2.0);
}

TEST(TableCalibration, RejectsNonMonotone) {
  EXPECT_THROW(TableCalibration({{0.0, 1.0}, {1.0, 1.0}}),
               std::invalid_argument);
  EXPECT_THROW(TableCalibration({{0.0, 2.0}, {1.0, 1.0}, {2.0, 3.0}}),
               std::invalid_argument);
  EXPECT_THROW(TableCalibration({{1.0, 1.0}}), std::invalid_argument);
}

TEST(TableCalibration, AgreesWithKingOnDenseTable) {
  const KingFit king{0.5, 0.8, 0.5, 0.0};
  std::vector<CalPoint> pts;
  for (double v = 0.0; v <= 2.5; v += 0.05)
    pts.push_back(CalPoint{v, king.voltage(v)});
  TableCalibration table{pts};
  for (double u = king.voltage(0.1); u < king.voltage(2.4); u += 0.05)
    EXPECT_NEAR(table.velocity(u), king.velocity(u), 0.01);
}

class KingFitParamSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(KingFitParamSweep, RecoversAcrossParameterSpace) {
  const auto [a, b, n] = GetParam();
  const auto fit = fit_kings_law(synth_points(a, b, n));
  EXPECT_NEAR(fit.a, a, 0.01 * a + 1e-4);
  EXPECT_NEAR(fit.b, b, 0.01 * b + 1e-4);
  EXPECT_NEAR(fit.n, n, 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, KingFitParamSweep,
    ::testing::Values(std::tuple{0.2, 0.5, 0.40}, std::tuple{0.2, 0.5, 0.50},
                      std::tuple{0.2, 0.5, 0.60}, std::tuple{1.0, 0.3, 0.45},
                      std::tuple{0.05, 2.0, 0.55}, std::tuple{0.8, 1.5, 0.35}));

}  // namespace
}  // namespace aqua::cta
