#include "core/cta.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/rig.hpp"
#include "util/stats.hpp"

namespace aqua::cta {
namespace {

using util::celsius;
using util::metres_per_second;
using util::Rng;
using util::Seconds;

maf::Environment water_at(double v_mps, double t_c = 15.0,
                          double p_bar = 2.0) {
  maf::Environment env;
  env.speed = metres_per_second(v_mps);
  env.fluid_temperature = celsius(t_c);
  env.pressure = util::bar(p_bar);
  return env;
}

CtaAnemometer make_anemo(std::uint64_t seed = 7, CtaConfig cfg = {}) {
  Rng rng{seed};
  return CtaAnemometer{maf::MafSpec{}, fast_isif_config(), cfg, rng};
}

TEST(Cta, HoldsOvertemperatureSetpoint) {
  auto anemo = make_anemo();
  const auto env = water_at(0.5);
  anemo.run(Seconds{2.0}, env);
  const auto t = anemo.die().temperatures();
  const double overtemp = t.heater_a.value() - env.fluid_temperature.value();
  // Setpoint 5 K; reference self-heating adds a small positive bias.
  EXPECT_NEAR(overtemp, 5.0, 1.2);
}

TEST(Cta, TracksAmbientTemperatureChanges) {
  // The CT mode's selling point (§2): Rt rides the bridge, so the
  // *overtemperature* is held even when the water temperature moves.
  auto anemo = make_anemo();
  anemo.run(Seconds{2.0}, water_at(0.8, 10.0));
  const auto t_cold = anemo.die().temperatures();
  const double over_cold = t_cold.heater_a.value() - celsius(10.0).value();
  anemo.run(Seconds{2.0}, water_at(0.8, 25.0));
  const auto t_warm = anemo.die().temperatures();
  const double over_warm = t_warm.heater_a.value() - celsius(25.0).value();
  EXPECT_NEAR(over_cold, over_warm, 0.8);
}

TEST(Cta, BridgeVoltageMonotoneInFlow) {
  auto anemo = make_anemo();
  anemo.run(Seconds{1.5}, water_at(0.0));
  double prev = anemo.bridge_voltage();
  for (double v : {0.25, 0.7, 1.4, 2.5}) {
    anemo.run(Seconds{1.0}, water_at(v));
    const double u = anemo.bridge_voltage();
    EXPECT_GT(u, prev) << "v " << v;
    prev = u;
  }
}

TEST(Cta, SquareLawShape) {
  // U² should be ~affine in sqrt(v) (King's law with n = 0.5).
  auto anemo = make_anemo();
  std::vector<double> u2, sqv;
  for (double v : {0.2, 0.6, 1.2, 2.0}) {
    anemo.run(Seconds{1.5}, water_at(v));
    u2.push_back(anemo.bridge_voltage() * anemo.bridge_voltage());
    sqv.push_back(std::sqrt(v));
  }
  // Check collinearity: the slope between consecutive pairs is stable.
  const double s1 = (u2[1] - u2[0]) / (sqv[1] - sqv[0]);
  const double s2 = (u2[2] - u2[1]) / (sqv[2] - sqv[1]);
  const double s3 = (u2[3] - u2[2]) / (sqv[3] - sqv[2]);
  EXPECT_NEAR(s2 / s1, 1.0, 0.15);
  EXPECT_NEAR(s3 / s2, 1.0, 0.15);
}

TEST(Cta, DirectionDetectedBothWays) {
  // Direction sensing, not the 0.1 Hz reporting dynamics: a 1 Hz direction
  // filter settles ~10× faster without changing the wake physics.
  CtaConfig cfg;
  cfg.direction_cutoff = util::hertz(1.0);
  auto anemo = make_anemo(7, cfg);
  anemo.commission(water_at(0.0), Seconds{1.0});
  anemo.run(Seconds{1.0}, water_at(0.5));
  EXPECT_EQ(anemo.direction(), 1);
  anemo.run(Seconds{1.5}, water_at(-0.5));
  EXPECT_EQ(anemo.direction(), -1);
}

TEST(Cta, DirectionNeutralAtZeroFlowAfterCommission) {
  CtaConfig cfg;
  cfg.direction_cutoff = util::hertz(1.0);
  auto anemo = make_anemo(7, cfg);
  anemo.commission(water_at(0.0), Seconds{1.0});
  anemo.run(Seconds{0.5}, water_at(0.0));
  EXPECT_EQ(anemo.direction(), 0);
}

TEST(Cta, SensedAmbientTracksWater) {
  auto anemo = make_anemo();
  anemo.run(Seconds{1.5}, water_at(0.5, 18.0));
  // Commissioned Rt reference removes the ±30 Ω tolerance; the residual is
  // the reference's self-heating (≲ 1 K).
  EXPECT_NEAR(util::to_celsius(anemo.sensed_ambient()), 18.0, 1.0);
}

TEST(Cta, FilteredOutputSmootherThanRaw) {
  // Smoothing is a property of ANY output low-pass; a 1 Hz one settles in
  // ~2 s instead of the paper filter's ~20 s.
  CtaConfig cfg;
  cfg.output_cutoff = util::hertz(1.0);
  auto anemo = make_anemo(7, cfg);
  anemo.run(Seconds{4.0}, water_at(1.0));
  // Collect raw and filtered over 2 s.
  util::RunningStats raw, filt;
  const auto env = water_at(1.0);
  const long long ticks = static_cast<long long>(2.0 / anemo.tick_period().value());
  for (long long i = 0; i < ticks; ++i) {
    anemo.tick(env);
    if (i % 100 == 0) {
      raw.add(anemo.bridge_voltage());
      filt.add(anemo.filtered_voltage());
    }
  }
  EXPECT_LT(filt.stddev(), raw.stddev() + 1e-12);
}

TEST(Cta, StatusHealthyInNormalOperation) {
  auto anemo = make_anemo();
  anemo.run(Seconds{1.0}, water_at(0.5));
  const auto st = anemo.status();
  EXPECT_TRUE(st.membrane_intact);
  EXPECT_TRUE(st.package_healthy);
  EXPECT_FALSE(st.watchdog_tripped);
  EXPECT_LT(st.cpu_load, 0.05);  // software IPs are light on the LEON
  EXPECT_GT(st.cpu_load, 0.0);
}

TEST(Cta, PulsedDriveKeepsMeasuring) {
  CtaConfig cfg;
  cfg.pulse.enabled = true;
  cfg.pulse.period = Seconds{0.05};
  cfg.pulse.duty = 0.5;
  auto anemo = make_anemo(9, cfg);
  anemo.run(Seconds{3.0}, water_at(1.0));
  // The held measurand still reflects the flow.
  const double u_1 = anemo.bridge_voltage();
  anemo.run(Seconds{3.0}, water_at(2.5));
  EXPECT_GT(anemo.bridge_voltage(), u_1);
}

TEST(Cta, PulsedDriveLowersAverageWallTemperature) {
  const auto env = water_at(0.3);
  auto cont = make_anemo(11);
  cont.run(Seconds{2.0}, env);

  CtaConfig pcfg;
  pcfg.pulse.enabled = true;
  pcfg.pulse.period = Seconds{0.04};
  pcfg.pulse.duty = 0.4;
  auto pulsed = make_anemo(11, pcfg);
  pulsed.run(Seconds{2.0}, env);

  // Average heater temperature over one pulse period.
  auto avg_wall = [&](CtaAnemometer& a) {
    double acc = 0.0;
    int n = 0;
    const long long ticks =
        static_cast<long long>(0.2 / a.tick_period().value());
    for (long long i = 0; i < ticks; ++i) {
      a.tick(env);
      acc += a.die().temperatures().heater_a.value();
      ++n;
    }
    return acc / n;
  };
  EXPECT_LT(avg_wall(pulsed), avg_wall(cont) - 0.5);
}

TEST(Cta, MembraneBreakFlagsStatus) {
  auto anemo = make_anemo();
  anemo.run(Seconds{0.5}, water_at(0.5));
  anemo.run(Seconds{0.2}, water_at(0.5, 15.0, 120.0));  // overpressure
  EXPECT_FALSE(anemo.status().membrane_intact);
}

TEST(Cta, ConfigValidation) {
  CtaConfig bad;
  bad.pulse.enabled = true;
  bad.pulse.duty = 1.5;
  Rng rng{1};
  EXPECT_THROW(
      (CtaAnemometer{maf::MafSpec{}, fast_isif_config(), bad, rng}),
      std::invalid_argument);
  CtaConfig bad2;
  bad2.output_divisor = 0;
  Rng rng2{1};
  EXPECT_THROW(
      (CtaAnemometer{maf::MafSpec{}, fast_isif_config(), bad2, rng2}),
      std::invalid_argument);
}

TEST(Cta, TickFrameBitIdenticalToScalarTicks) {
  // The whole conditioning loop — DAC, bridge solve, die thermal step, both
  // ISIF channels, firmware at the frame boundary — advanced a frame at a
  // time must land on exactly the state the scalar tick loop produces.
  auto scalar = make_anemo(51);
  auto block = make_anemo(51);
  const auto env = water_at(0.9);
  const int frame = scalar.platform().config().channel.decimation;
  for (int f = 0; f < 40; ++f) {
    for (int i = 0; i < frame; ++i) scalar.tick(env);
    block.tick_frame(env);
    ASSERT_EQ(scalar.now().value(), block.now().value()) << f;
    ASSERT_EQ(scalar.control_output(), block.control_output()) << f;
    ASSERT_EQ(scalar.bridge_voltage(), block.bridge_voltage()) << f;
    ASSERT_EQ(scalar.filtered_voltage(), block.filtered_voltage()) << f;
    ASSERT_EQ(scalar.direction_signal(), block.direction_signal()) << f;
    ASSERT_EQ(scalar.die().temperatures().heater_a.value(),
              block.die().temperatures().heater_a.value())
        << f;
  }
}

TEST(Cta, RunMixesFramesAndTicksBitIdentically) {
  // run() takes the block path for whole frames and scalar ticks for the
  // unaligned head/tail; a duration that is NOT a whole number of frames must
  // still match the pure scalar loop exactly.
  auto scalar = make_anemo(52);
  auto mixed = make_anemo(52);
  const auto env = water_at(0.4);
  const auto dt = scalar.tick_period();
  const long long n = 3 * 128 + 37;  // frames plus a sub-frame tail
  for (long long i = 0; i < n; ++i) scalar.tick(env);
  mixed.run(util::Seconds{(static_cast<double>(n) - 0.5) * dt.value()}, env);
  EXPECT_EQ(scalar.now().value(), mixed.now().value());
  EXPECT_EQ(scalar.control_output(), mixed.control_output());
  EXPECT_EQ(scalar.bridge_voltage(), mixed.bridge_voltage());
  EXPECT_EQ(scalar.direction_signal(), mixed.direction_signal());
  EXPECT_EQ(scalar.die().temperatures().heater_a.value(),
            mixed.die().temperatures().heater_a.value());
}

TEST(Cta, TickFrameRequiresAlignment) {
  auto anemo = make_anemo(53);
  const auto env = water_at(0.2);
  anemo.tick(env);
  EXPECT_EQ(anemo.tick_phase(), 1);
  EXPECT_THROW(anemo.tick_frame(env), std::logic_error);
}

TEST(Cta, FixedPointPiImplementationAlsoConverges) {
  CtaConfig cfg;
  cfg.pi_impl = isif::IpImpl::kHardwareFixed;
  auto anemo = make_anemo(13, cfg);
  const auto env = water_at(0.8);
  anemo.run(Seconds{2.0}, env);
  const auto t = anemo.die().temperatures();
  EXPECT_NEAR(t.heater_a.value() - env.fluid_temperature.value(), 5.0, 1.5);
}

}  // namespace
}  // namespace aqua::cta
