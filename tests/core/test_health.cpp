#include "core/health.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/rig.hpp"

namespace aqua::cta {
namespace {

using util::metres_per_second;
using util::Seconds;

maf::Environment water(double v, double p_bar = 2.0) {
  maf::Environment env;
  env.speed = metres_per_second(v);
  env.fluid_temperature = util::celsius(15.0);
  env.pressure = util::bar(p_bar);
  return env;
}

FlowReading reading_of(double v_mps) {
  return FlowReading{metres_per_second(v_mps), v_mps >= 0 ? 1 : -1, 1.0};
}

bool has(const std::vector<FaultCode>& faults, FaultCode code) {
  return std::find(faults.begin(), faults.end(), code) != faults.end();
}

TEST(Health, HealthySensorReportsNoFaults) {
  util::Rng rng{1};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{1.0}, water(0.8));
  HealthMonitor monitor;
  const auto faults = monitor.assess(anemo, reading_of(0.8), Seconds{0.1});
  EXPECT_TRUE(faults.empty());
  EXPECT_TRUE(monitor.healthy());
}

TEST(Health, MembraneBreakReported) {
  util::Rng rng{2};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.3}, water(0.5, 120.0));
  HealthMonitor monitor;
  const auto faults = monitor.assess(anemo, reading_of(0.5), Seconds{0.1});
  EXPECT_TRUE(has(faults, FaultCode::kMembraneBroken));
  EXPECT_FALSE(monitor.healthy());
}

TEST(Health, RangeChecks) {
  util::Rng rng{3};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.5}, water(0.5));
  HealthMonitor monitor;
  EXPECT_TRUE(has(monitor.assess(anemo, reading_of(3.5), Seconds{0.1}),
                  FaultCode::kRangeHigh));
  EXPECT_TRUE(has(monitor.assess(anemo, reading_of(-3.5), Seconds{0.1}),
                  FaultCode::kRangeLow));
}

TEST(Health, RateLimitTripsOnImplausibleJump) {
  util::Rng rng{4};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.5}, water(0.5));
  HealthMonitor monitor;
  (void)monitor.assess(anemo, reading_of(0.2), Seconds{0.1});
  const auto faults = monitor.assess(anemo, reading_of(1.8), Seconds{0.1});
  EXPECT_TRUE(has(faults, FaultCode::kRateLimit));  // 16 m/s² is no valve
}

TEST(Health, SlowChangesDoNotTripRate) {
  util::Rng rng{5};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.5}, water(0.5));
  HealthMonitor monitor;
  (void)monitor.assess(anemo, reading_of(0.5), Seconds{0.1});
  const auto faults = monitor.assess(anemo, reading_of(0.6), Seconds{0.1});
  EXPECT_FALSE(has(faults, FaultCode::kRateLimit));
}

TEST(Health, StuckReadingDetected) {
  util::Rng rng{6};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.5}, water(0.5));
  HealthMonitor monitor;
  std::vector<FaultCode> faults;
  for (int i = 0; i < 25; ++i)
    faults = monitor.assess(anemo, reading_of(0.731), Seconds{0.1});
  EXPECT_TRUE(has(faults, FaultCode::kStuckReading));
}

TEST(Health, LiveReadingsNeverLookStuck) {
  util::Rng rng{7};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{1.0}, water(0.8));
  HealthMonitor monitor;
  // Real readings carry loop noise; feed slightly-varying values.
  std::vector<FaultCode> faults;
  for (int i = 0; i < 40; ++i)
    faults = monitor.assess(anemo, reading_of(0.8 + 1e-4 * (i % 3)),
                            Seconds{0.1});
  EXPECT_FALSE(has(faults, FaultCode::kStuckReading));
}

TEST(Health, ResetClearsState) {
  util::Rng rng{8};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.3}, water(0.5));
  HealthMonitor monitor;
  for (int i = 0; i < 25; ++i)
    (void)monitor.assess(anemo, reading_of(0.7), Seconds{0.1});
  monitor.reset();
  const auto faults = monitor.assess(anemo, reading_of(0.7), Seconds{0.1});
  EXPECT_FALSE(has(faults, FaultCode::kStuckReading));
}

TEST(Health, FaultNamesDistinct) {
  EXPECT_EQ(fault_name(FaultCode::kMembraneBroken), "membrane-broken");
  EXPECT_EQ(fault_name(FaultCode::kStuckReading), "stuck-reading");
  EXPECT_NE(fault_name(FaultCode::kRangeHigh), fault_name(FaultCode::kRangeLow));
}

TEST(Health, FaultLatchFillsFlightRecorder) {
  // The blackbox contract: assess() writes every raised fault code into the
  // sensor's own flight recorder, so a latched fault always leaves a
  // non-empty, human-readable dump behind (the acceptance path diagnostics
  // walks in examples/diagnostics.cpp).
  util::Rng rng{9};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.3}, water(0.5, 120.0));  // overpressure -> membrane
  HealthMonitor monitor;
  const auto faults = monitor.assess(anemo, reading_of(0.5), Seconds{0.1});
  ASSERT_TRUE(has(faults, FaultCode::kMembraneBroken));
  EXPECT_FALSE(monitor.healthy());

  const auto events = anemo.flight().events();
  ASSERT_FALSE(events.empty());
  bool fault_recorded = false;
  for (const auto& e : events)
    if (e.kind == obs::FlightRecordKind::kFault &&
        e.code == static_cast<int>(FaultCode::kMembraneBroken))
      fault_recorded = true;
  EXPECT_TRUE(fault_recorded);

  const std::string dump = anemo.flight().dump_text();
  EXPECT_FALSE(dump.empty());
  EXPECT_NE(dump.find("FAULT"), std::string::npos);
  EXPECT_NE(dump.find("membrane-broken"), std::string::npos);
}

TEST(Health, FaultLabelMatchesFaultName) {
  // fault_label() is the static-storage variant the flight recorder stores
  // uncopied; it must agree with the std::string API verbatim.
  for (const auto code :
       {FaultCode::kMembraneBroken, FaultCode::kRangeHigh,
        FaultCode::kRangeLow, FaultCode::kRateLimit,
        FaultCode::kStuckReading}) {
    EXPECT_EQ(fault_name(code), fault_label(code));
  }
}

TEST(Health, Validation) {
  HealthConfig bad{};
  bad.stuck_count = 1;
  EXPECT_THROW(HealthMonitor{bad}, std::invalid_argument);
}

TEST(Health, ZeroDtIsBenign) {
  // A repeated timestamp (paused scheduler, duplicated sample) must not
  // divide by zero in the rate check nor advance the stuck counter.
  util::Rng rng{10};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.5}, water(0.5));
  HealthMonitor monitor;
  std::vector<FaultCode> faults;
  for (int i = 0; i < 30; ++i)
    faults = monitor.assess(anemo, reading_of(0.7), Seconds{0.0});
  EXPECT_FALSE(has(faults, FaultCode::kRateLimit));
  EXPECT_FALSE(has(faults, FaultCode::kStuckReading));
  EXPECT_TRUE(monitor.healthy());
}

TEST(Health, ResetMidStreakRequiresFullCountAgain) {
  util::Rng rng{11};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.5}, water(0.5));
  HealthMonitor monitor;  // stuck_count = 20
  for (int i = 0; i < 15; ++i)
    (void)monitor.assess(anemo, reading_of(0.7), Seconds{0.1});
  monitor.reset();
  std::vector<FaultCode> faults;
  for (int i = 0; i < 19; ++i)
    faults = monitor.assess(anemo, reading_of(0.7), Seconds{0.1});
  // 15 pre-reset + 19 post-reset: still short of a full fresh streak (the
  // first post-reset assessment only primes prev_speed_).
  EXPECT_FALSE(has(faults, FaultCode::kStuckReading));
  for (int i = 0; i < 3; ++i)
    faults = monitor.assess(anemo, reading_of(0.7), Seconds{0.1});
  EXPECT_TRUE(has(faults, FaultCode::kStuckReading));
}

TEST(Health, HealthyFlagRelatchesAfterRecovery) {
  util::Rng rng{12};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.5}, water(0.5));
  HealthMonitor monitor;
  // dt of 2 s keeps the 3 m/s swings under the rate limit: only the range
  // check should drive the healthy flag here.
  EXPECT_FALSE(
      monitor.assess(anemo, reading_of(3.5), Seconds{2.0}).empty());
  EXPECT_FALSE(monitor.healthy());
  EXPECT_TRUE(monitor.assess(anemo, reading_of(0.5), Seconds{2.0}).empty());
  EXPECT_TRUE(monitor.healthy());  // recovery clears the flag...
  EXPECT_FALSE(
      monitor.assess(anemo, reading_of(3.5), Seconds{2.0}).empty());
  EXPECT_FALSE(monitor.healthy());  // ...and the next fault re-latches it
}

TEST(Health, FaultLabelRoundTripsOverEveryCode) {
  const FaultCode all[] = {
      FaultCode::kMembraneBroken, FaultCode::kPackageDegraded,
      FaultCode::kAdcOverload,    FaultCode::kWatchdog,
      FaultCode::kRangeHigh,      FaultCode::kRangeLow,
      FaultCode::kRateLimit,      FaultCode::kStuckReading};
  std::vector<std::string> names;
  for (const FaultCode code : all) {
    ASSERT_NE(fault_label(code), nullptr);
    EXPECT_EQ(fault_name(code), fault_label(code));
    EXPECT_EQ(fault_name(code).find("unknown"), std::string::npos);
    names.push_back(fault_name(code));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(Health, ZeroReadingWithLiveVoltageIsNotStuck) {
  // Below the King-fit dead band a healthy sensor on a stagnant pipe reads
  // exactly 0.0 forever; the dithering bridge voltage is what proves the
  // channel alive, so the stuck counter must not advance.
  util::Rng rng{13};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.5}, water(0.0));
  HealthMonitor monitor;
  std::vector<FaultCode> faults;
  for (int i = 0; i < 40; ++i) {
    const double dithered_u = 1.0 + 1e-3 * (i % 5);  // ΣΔ noise-floor wiggle
    faults = monitor.assess(
        anemo, FlowReading{metres_per_second(0.0), 1, dithered_u},
        Seconds{0.1});
  }
  EXPECT_FALSE(has(faults, FaultCode::kStuckReading));
}

TEST(Health, ZeroReadingWithFrozenVoltageIsStuck) {
  // The converse: an exactly-zero reading with a bridge voltage frozen below
  // stuck_epsilon_volts is a dead channel, not a stagnant pipe.
  util::Rng rng{14};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  anemo.run(Seconds{0.5}, water(0.0));
  HealthMonitor monitor;
  std::vector<FaultCode> faults;
  for (int i = 0; i < 25; ++i)
    faults = monitor.assess(
        anemo, FlowReading{metres_per_second(0.0), 1, 1.0}, Seconds{0.1});
  EXPECT_TRUE(has(faults, FaultCode::kStuckReading));
}

}  // namespace
}  // namespace aqua::cta
