#include "core/calibration_io.hpp"

#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace aqua::cta {
namespace {

CalibrationRecord sample_record() {
  CalibrationRecord r;
  r.fit = KingFit{0.3977, 1.2541, 0.4993, 0.0021};
  r.full_scale = util::metres_per_second(2.5);
  r.calibration_temperature = util::celsius(15.0);
  r.sensor_id = "vinci-line-3";
  return r;
}

TEST(CalibrationIo, RoundTripExact) {
  std::stringstream ss;
  save_calibration(ss, sample_record());
  const auto loaded = load_calibration(ss);
  EXPECT_DOUBLE_EQ(loaded.fit.a, 0.3977);
  EXPECT_DOUBLE_EQ(loaded.fit.b, 1.2541);
  EXPECT_DOUBLE_EQ(loaded.fit.n, 0.4993);
  EXPECT_DOUBLE_EQ(loaded.fit.rms_residual, 0.0021);
  EXPECT_DOUBLE_EQ(loaded.full_scale.value(), 2.5);
  EXPECT_DOUBLE_EQ(loaded.calibration_temperature.value(), 288.15);
  EXPECT_EQ(loaded.sensor_id, "vinci-line-3");
}

TEST(CalibrationIo, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/aqua_cal_test.txt";
  save_calibration_file(path, sample_record());
  const auto loaded = load_calibration_file(path);
  EXPECT_DOUBLE_EQ(loaded.fit.b, 1.2541);
  std::remove(path.c_str());
}

TEST(CalibrationIo, RejectsBadMagic) {
  std::stringstream ss{"not-a-cal-file\nking_a = 1\n"};
  EXPECT_THROW((void)load_calibration(ss), std::runtime_error);
}

TEST(CalibrationIo, RejectsMissingKeys) {
  std::stringstream ss{"aqua-cal-v1\nking_a = 0.4\nking_b = 1.2\n"};
  EXPECT_THROW((void)load_calibration(ss), std::runtime_error);
}

TEST(CalibrationIo, RejectsNonPhysicalValues) {
  auto text_with = [](const std::string& b, const std::string& n) {
    return "aqua-cal-v1\nking_a = 0.4\nking_b = " + b + "\nking_n = " + n +
           "\nfull_scale_mps = 2.5\ncal_temperature_k = 288.15\n";
  };
  {
    std::stringstream ss{text_with("-1.0", "0.5")};
    EXPECT_THROW((void)load_calibration(ss), std::runtime_error);
  }
  {
    std::stringstream ss{text_with("1.2", "1.5")};
    EXPECT_THROW((void)load_calibration(ss), std::runtime_error);
  }
}

TEST(CalibrationIo, ToleratesWhitespaceAndUnknownKeys) {
  std::stringstream ss{
      "aqua-cal-v1\n"
      "  king_a =  0.4 \n"
      "king_b=1.2\n"
      "king_n = 0.5\n"
      "future_extension = hello\n"
      "full_scale_mps = 2.5\n"
      "cal_temperature_k = 288.15\n"};
  const auto loaded = load_calibration(ss);
  EXPECT_DOUBLE_EQ(loaded.fit.a, 0.4);
  EXPECT_DOUBLE_EQ(loaded.fit.b, 1.2);
}

TEST(CalibrationIo, LoadedRecordDrivesEstimator) {
  std::stringstream ss;
  save_calibration(ss, sample_record());
  const auto loaded = load_calibration(ss);
  FlowEstimator est{loaded.fit, loaded.full_scale,
                    loaded.calibration_temperature};
  // Round-trip through the estimator stays consistent with the original fit.
  const double u = sample_record().fit.voltage(1.0);
  EXPECT_NEAR(est.speed_for(u).value(), 1.0, 1e-9);
}

TEST(CalibrationIo, MissingFileThrows) {
  EXPECT_THROW((void)load_calibration_file("/nonexistent/path/cal.txt"),
               std::runtime_error);
}

}  // namespace
}  // namespace aqua::cta
