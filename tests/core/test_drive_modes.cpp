#include "core/drive_modes.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::cta {
namespace {

using util::amperes;
using util::celsius;
using util::metres_per_second;
using util::watts;

maf::Environment water_at(double v_mps, double t_c = 15.0) {
  maf::Environment env;
  env.speed = metres_per_second(v_mps);
  env.fluid_temperature = celsius(t_c);
  env.pressure = util::bar(2.0);
  return env;
}

TEST(ConstantTemperature, HoldsOvertemperatureAcrossFlow) {
  maf::MafDie die{maf::MafSpec{}};
  const CtaConfig cfg{};
  for (double v : {0.0, 0.5, 1.5, 2.5}) {
    const auto pt = solve_constant_temperature(die, water_at(v), cfg);
    EXPECT_NEAR(pt.overtemperature.value(), 5.0, 0.8) << "v " << v;
    EXPECT_LT(std::abs(pt.bridge_error_v), 1e-4);
  }
}

TEST(ConstantTemperature, SupplyGrowsWithFlow) {
  maf::MafDie die{maf::MafSpec{}};
  const CtaConfig cfg{};
  double prev = 0.0;
  for (double v : {0.0, 0.3, 1.0, 2.0}) {
    const auto pt = solve_constant_temperature(die, water_at(v), cfg);
    EXPECT_GT(pt.supply_v, prev);
    prev = pt.supply_v;
  }
}

TEST(ConstantTemperature, MatchesKingsLawPower) {
  // P should equal ΔT·G with G from the die's clean film conductance.
  maf::MafDie die{maf::MafSpec{}};
  const CtaConfig cfg{};
  const auto env = water_at(1.0);
  const auto pt = solve_constant_temperature(die, env, cfg);
  const double g =
      die.clean_film_conductance(env, pt.heater_temperature);
  const double expected = pt.overtemperature.value() * g;
  // Membrane/backside losses and tandem coupling account for the slack.
  EXPECT_NEAR(pt.heater_power_w, expected, 0.35 * expected);
}

TEST(ConstantTemperature, ThrowsIfSetpointUnreachable) {
  maf::MafDie die{maf::MafSpec{}};
  CtaConfig cfg;
  cfg.overtemperature = util::kelvin(40.0);  // enormous in water
  EXPECT_THROW(
      (void)solve_constant_temperature(die, water_at(2.5), cfg,
                                       util::volts(3.0)),
      std::runtime_error);
}

TEST(ConstantCurrent, OvertemperatureCollapsesWithFlow) {
  // CC mode: fixed I means ΔT = I²R/(A + B·vⁿ) falls as v rises.
  maf::MafDie die{maf::MafSpec{}};
  const auto lo = solve_constant_current(die, water_at(0.1), amperes(0.010));
  const auto hi = solve_constant_current(die, water_at(2.0), amperes(0.010));
  EXPECT_GT(lo.overtemperature.value(), 1.5 * hi.overtemperature.value());
}

TEST(ConstantPower, OvertemperatureCollapsesWithFlow) {
  maf::MafDie die{maf::MafSpec{}};
  const auto lo = solve_constant_power(die, water_at(0.1), watts(0.004));
  const auto hi = solve_constant_power(die, water_at(2.0), watts(0.004));
  EXPECT_GT(lo.overtemperature.value(), 1.5 * hi.overtemperature.value());
}

TEST(ConstantPower, PowerIsExactlyHeld) {
  maf::MafDie die{maf::MafSpec{}};
  const auto pt = solve_constant_power(die, water_at(1.0), watts(0.004));
  EXPECT_DOUBLE_EQ(pt.heater_power_w, 0.004);
}

TEST(DriveModes, FluidTemperatureRobustness) {
  // The §2 claim: CT mode is "more robust with respect to changes of the
  // temperature of the fluid". Compare the *velocity-equivalent* error a
  // +10 °C fluid shift induces in each mode's raw measurand at constant flow
  // (each measurand scaled by its own local flow sensitivity).
  const CtaConfig cfg{};
  maf::MafDie die{maf::MafSpec{}};

  // CT: measurand is the bridge supply; the Rt arm auto-references ambient.
  const auto ct = [&](double v, double t) {
    return solve_constant_temperature(die, water_at(v, t), cfg).supply_v;
  };
  const double ct_slope = (ct(1.1, 10.0) - ct(0.9, 10.0)) / 0.2;  // V/(m/s)
  const double ct_v_err = std::abs(ct(1.0, 20.0) - ct(1.0, 10.0)) / ct_slope;

  // CC: measurand is the wire resistance (absolute temperature!) — the fluid
  // temperature rides straight into it.
  const auto cc = [&](double v, double t) {
    (void)solve_constant_current(die, water_at(v, t), amperes(0.010));
    return die.heater_a_resistance().value();
  };
  const double cc_slope =
      std::abs(cc(1.1, 10.0) - cc(0.9, 10.0)) / 0.2;  // Ohm/(m/s)
  const double cc_v_err = std::abs(cc(1.0, 20.0) - cc(1.0, 10.0)) / cc_slope;

  // CP: same measurand, fixed power.
  const auto cp = [&](double v, double t) {
    (void)solve_constant_power(die, water_at(v, t), watts(0.004));
    return die.heater_a_resistance().value();
  };
  const double cp_slope =
      std::abs(cp(1.1, 10.0) - cp(0.9, 10.0)) / 0.2;
  const double cp_v_err = std::abs(cp(1.0, 20.0) - cp(1.0, 10.0)) / cp_slope;

  EXPECT_GT(cc_v_err, 5.0 * ct_v_err);
  EXPECT_GT(cp_v_err, 5.0 * ct_v_err);
  EXPECT_LT(ct_v_err, 0.6);  // CT raw error stays sub-m/s even uncompensated
}

TEST(DriveModes, Validation) {
  maf::MafDie die{maf::MafSpec{}};
  EXPECT_THROW(
      (void)solve_constant_current(die, water_at(1.0), amperes(-1.0)),
      std::invalid_argument);
  EXPECT_THROW((void)solve_constant_power(die, water_at(1.0), watts(-1.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace aqua::cta
