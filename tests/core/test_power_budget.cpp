#include "core/power_budget.hpp"

#include <gtest/gtest.h>

namespace aqua::cta {
namespace {

TEST(PowerBudget, PaperAutonomyClaimReproduced) {
  // §7: "4 alkaline AA ... autonomy of one year for a typical sensor usage".
  const PowerBudgetSpec spec{};
  const auto result = evaluate_power_budget(spec);
  EXPECT_GT(result.autonomy_days, 330.0);
  EXPECT_LT(result.autonomy_days, 900.0);
}

TEST(PowerBudget, SleepDominatedWhenIdle) {
  PowerBudgetSpec spec{};
  spec.measurements_per_hour = 0.0;
  const auto result = evaluate_power_budget(spec);
  EXPECT_NEAR(result.average_power_w, spec.sleep_power_w, 1e-9);
  EXPECT_GT(result.autonomy_days, 10000.0);  // years of pure sleep
}

TEST(PowerBudget, ContinuousOperationKillsTheBattery) {
  PowerBudgetSpec spec{};
  spec.measurements_per_hour = 3600.0;  // back-to-back bursts
  spec.active_burst = util::Seconds{1.0};
  const auto result = evaluate_power_budget(spec);
  EXPECT_NEAR(result.duty_cycle, 1.0, 1e-9);
  EXPECT_LT(result.autonomy_days, 40.0);
}

TEST(PowerBudget, AutonomyFallsWithCadence) {
  PowerBudgetSpec a{}, b{};
  a.measurements_per_hour = 4.0;
  b.measurements_per_hour = 60.0;
  EXPECT_GT(evaluate_power_budget(a).autonomy_days,
            evaluate_power_budget(b).autonomy_days);
}

TEST(PowerBudget, EnergyPerMeasurementBreakdown) {
  PowerBudgetSpec spec{};
  spec.active_power_w = 0.1;
  spec.active_burst = util::Seconds{2.0};
  spec.report_energy_j = 0.3;
  EXPECT_DOUBLE_EQ(evaluate_power_budget(spec).energy_per_measurement_j, 0.5);
}

TEST(PowerBudget, InverseSolverHitsTarget) {
  const PowerBudgetSpec spec{};
  const double cadence = measurements_per_hour_for_autonomy(spec, 365.0);
  ASSERT_GT(cadence, 0.0);
  PowerBudgetSpec tuned = spec;
  tuned.measurements_per_hour = cadence;
  EXPECT_NEAR(evaluate_power_budget(tuned).autonomy_days, 365.0, 1.0);
}

TEST(PowerBudget, InverseSolverZeroWhenSleepExceedsBudget) {
  PowerBudgetSpec spec{};
  spec.sleep_power_w = 1.0;  // absurd sleep current
  EXPECT_DOUBLE_EQ(measurements_per_hour_for_autonomy(spec, 365.0), 0.0);
}

TEST(PowerBudget, Validation) {
  PowerBudgetSpec bad{};
  bad.battery_energy_wh = 0.0;
  EXPECT_THROW((void)evaluate_power_budget(bad), std::invalid_argument);
  PowerBudgetSpec bad2{};
  bad2.usable_fraction = 1.5;
  EXPECT_THROW((void)evaluate_power_budget(bad2), std::invalid_argument);
  EXPECT_THROW((void)measurements_per_hour_for_autonomy(PowerBudgetSpec{}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace aqua::cta
