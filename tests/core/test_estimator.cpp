#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::cta {
namespace {

using util::centimetres_per_second;
using util::metres_per_second;

const KingFit kFit{0.5, 0.8, 0.5, 0.0};

TEST(FlowEstimator, SpeedInversionMatchesFit) {
  FlowEstimator est{kFit, metres_per_second(2.5)};
  for (double v : {0.1, 0.5, 1.5, 2.5}) {
    EXPECT_NEAR(est.speed_for(kFit.voltage(v)).value(), v, 1e-9);
  }
}

TEST(FlowEstimator, PercentOfFullScale) {
  FlowEstimator est{kFit, metres_per_second(2.5)};
  EXPECT_DOUBLE_EQ(est.percent_of_full_scale(centimetres_per_second(250.0)),
                   100.0);
  EXPECT_DOUBLE_EQ(est.percent_of_full_scale(centimetres_per_second(2.5)), 1.0);
}

TEST(FlowEstimator, ResolutionFromVoltageNoise) {
  FlowEstimator est{kFit, metres_per_second(2.5)};
  const double noise_v = 1e-3;
  const auto res_low = est.resolution_for(noise_v, metres_per_second(0.2));
  const auto res_high = est.resolution_for(noise_v, metres_per_second(2.5));
  // Same voltage noise hurts more at high speed (vⁿ compression) — the
  // paper's ±0.75 → ±4 cm/s trend.
  EXPECT_GT(res_high.value(), res_low.value());
  EXPECT_GT(res_low.value(), 0.0);
}

TEST(FlowEstimator, ResolutionScalesLinearlyWithNoise) {
  FlowEstimator est{kFit, metres_per_second(2.5)};
  const auto r1 = est.resolution_for(1e-3, metres_per_second(1.0));
  const auto r2 = est.resolution_for(2e-3, metres_per_second(1.0));
  EXPECT_NEAR(r2.value() / r1.value(), 2.0, 1e-9);
}

TEST(FlowEstimator, ReverseFitStoredAndValidated) {
  FlowEstimator est{kFit, metres_per_second(2.5)};
  EXPECT_FALSE(est.has_reverse_fit());
  est.set_reverse_fit(KingFit{0.45, 0.7, 0.5, 0.0});
  EXPECT_TRUE(est.has_reverse_fit());
  EXPECT_THROW(est.set_reverse_fit(KingFit{0.45, 0.0, 0.5, 0.0}),
               std::invalid_argument);
}

TEST(FlowEstimator, Validation) {
  EXPECT_THROW((FlowEstimator{kFit, metres_per_second(0.0)}),
               std::invalid_argument);
  KingFit degenerate{0.5, 0.0, 0.5, 0.0};
  EXPECT_THROW((FlowEstimator{degenerate, metres_per_second(2.5)}),
               std::invalid_argument);
}

}  // namespace
}  // namespace aqua::cta
