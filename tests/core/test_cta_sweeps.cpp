// Parameterised robustness sweeps of the closed CTA loop: the loop must
// bootstrap, converge and hold its setpoint across the whole operating
// envelope the paper claims (temperatures, pressures, overtemperatures, PI
// tunings, part tolerances), not just at the nominal point.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/cta.hpp"
#include "core/rig.hpp"

namespace aqua::cta {
namespace {

using util::celsius;
using util::Seconds;

maf::Environment env_of(double v, double t_c, double p_bar) {
  maf::Environment env;
  env.speed = util::metres_per_second(v);
  env.fluid_temperature = celsius(t_c);
  env.pressure = util::bar(p_bar);
  return env;
}

// --- operating-envelope sweep -----------------------------------------------
class EnvelopeSweep
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EnvelopeSweep, LoopConvergesAndHoldsSetpoint) {
  const auto [t_c, p_bar, v] = GetParam();
  util::Rng rng{static_cast<std::uint64_t>(t_c * 100 + p_bar * 10 + v * 7)};
  CtaConfig cfg;
  cfg.commissioning_temperature = celsius(t_c);
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), cfg, rng};
  const auto env = env_of(v, t_c, p_bar);
  anemo.run(Seconds{2.0}, env);
  const auto t = anemo.die().temperatures();
  const double overtemp = t.heater_a.value() - env.fluid_temperature.value();
  EXPECT_NEAR(overtemp, 5.0, 1.5) << "T=" << t_c << " p=" << p_bar << " v=" << v;
  EXPECT_TRUE(anemo.status().membrane_intact);
  EXPECT_GT(anemo.control_output(), cfg.pi_min);  // not parked at the rail
  EXPECT_LT(anemo.control_output(), cfg.pi_max);  // not saturated
}

INSTANTIATE_TEST_SUITE_P(
    Envelope, EnvelopeSweep,
    ::testing::Values(std::tuple{5.0, 1.0, 0.1}, std::tuple{5.0, 3.0, 2.0},
                      std::tuple{15.0, 2.0, 0.5}, std::tuple{15.0, 7.0, 2.5},
                      std::tuple{25.0, 1.0, 1.0}, std::tuple{25.0, 3.0, 0.05},
                      std::tuple{35.0, 2.0, 1.5}));

// --- PI tuning sweep ----------------------------------------------------------
class PiTuningSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(PiTuningSweep, LoopStableAcrossGainRange) {
  const auto [kp, ki] = GetParam();
  CtaConfig cfg;
  cfg.pi = dsp::PidGains{kp, ki, 0.0};
  util::Rng rng{77};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), cfg, rng};
  const auto env = env_of(1.0, 15.0, 2.0);
  anemo.run(Seconds{2.0}, env);
  // Converged (not oscillating): short-window spread of the measurand small.
  double min_u = 1e9, max_u = -1e9;
  const long long ticks =
      static_cast<long long>(0.5 / anemo.tick_period().value());
  for (long long i = 0; i < ticks; ++i) {
    anemo.tick(env);
    min_u = std::min(min_u, anemo.bridge_voltage());
    max_u = std::max(max_u, anemo.bridge_voltage());
  }
  EXPECT_LT(max_u - min_u, 0.05 * max_u) << "kp=" << kp << " ki=" << ki;
  const double overtemp = anemo.die().temperatures().heater_a.value() -
                          env.fluid_temperature.value();
  EXPECT_NEAR(overtemp, 5.0, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Gains, PiTuningSweep,
                         ::testing::Values(std::pair{0.2, 10.0},
                                           std::pair{0.6, 30.0},
                                           std::pair{1.0, 60.0},
                                           std::pair{0.3, 100.0},
                                           std::pair{1.5, 150.0}));

// --- part-tolerance sweep -----------------------------------------------------
class ToleranceSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ToleranceSweep, AnyPartFromTheLotCommissionsCorrectly) {
  // Different RNG seeds draw different resistor tolerances, amplifier offsets
  // and DAC mismatch; every part must trim, bootstrap and read direction.
  util::Rng rng{GetParam()};
  CtaAnemometer anemo{maf::MafSpec{}, coarse_isif_config(), CtaConfig{}, rng};
  const auto zero = env_of(0.0, 15.0, 2.0);
  anemo.commission(zero, Seconds{2.0});
  anemo.run(Seconds{2.0}, env_of(0.8, 15.0, 2.0));
  const double overtemp = anemo.die().temperatures().heater_a.value() -
                          celsius(15.0).value();
  EXPECT_NEAR(overtemp, 5.0, 1.5) << "seed " << GetParam();
  EXPECT_EQ(anemo.direction(), 1) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ProductionLot, ToleranceSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- pulsed-drive duty sweep ---------------------------------------------------
class DutySweep : public ::testing::TestWithParam<double> {};

TEST_P(DutySweep, PulsedLoopKeepsMeasuringAtAnyDuty) {
  CtaConfig cfg;
  cfg.pulse.enabled = true;
  cfg.pulse.period = Seconds{0.05};
  cfg.pulse.duty = GetParam();
  util::Rng rng{55};
  CtaAnemometer anemo{maf::MafSpec{}, coarse_isif_config(), cfg, rng};
  anemo.run(Seconds{3.0}, env_of(0.5, 15.0, 2.0));
  const double u_low = anemo.bridge_voltage();
  anemo.run(Seconds{3.0}, env_of(2.0, 15.0, 2.0));
  EXPECT_GT(anemo.bridge_voltage(), u_low * 1.05) << "duty " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Duties, DutySweep,
                         ::testing::Values(0.25, 0.4, 0.6, 0.8, 1.0));

}  // namespace
}  // namespace aqua::cta
