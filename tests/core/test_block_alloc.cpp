// test_block_alloc.cpp — proves the steady-state frame loop allocates nothing.
// The block-execution contract (DESIGN.md §9) promises that once the per-node
// scratch is sized, tick_frame()/process_frame() run allocation-free; this TU
// replaces the global operator new/delete with counting forwarders and asserts
// a zero delta across settled frames. The override is process-wide, but it
// only counts — behaviour of every other test in this binary is unchanged.
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include <gtest/gtest.h>

#include "core/cta.hpp"
#include "core/rig.hpp"
#include "isif/channel.hpp"
#include "util/rng.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define AQUA_SANITIZED 1
#endif
#if !defined(AQUA_SANITIZED) && defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define AQUA_SANITIZED 1
#endif
#endif

namespace {
std::atomic<long> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t n = ((size ? size : 1) + a - 1) / a * a;  // aligned_alloc
  if (void* p = std::aligned_alloc(a, n)) return p;            // needs n % a == 0
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace aqua::cta {
namespace {

using util::Rng;
using util::Seconds;

maf::Environment flowing_water() {
  maf::Environment env;
  env.speed = util::metres_per_second(0.8);
  env.fluid_temperature = util::celsius(15.0);
  env.pressure = util::bar(2.0);
  return env;
}

TEST(BlockAllocation, ChannelProcessFrameIsAllocationFree) {
#ifdef AQUA_SANITIZED
  GTEST_SKIP() << "sanitizer runtimes allocate behind the allocator hooks";
#else
  isif::ChannelConfig cfg{};
  isif::InputChannel ch{cfg, Rng{61}};
  std::vector<double> frame(static_cast<std::size_t>(cfg.decimation), 1e-3);
  (void)ch.process_frame(frame);  // warm-up: anything lazily sized, sizes now
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int f = 0; f < 20; ++f) (void)ch.process_frame(frame);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0);
#endif
}

TEST(BlockAllocation, AnemometerTickFrameIsAllocationFree) {
#ifdef AQUA_SANITIZED
  GTEST_SKIP() << "sanitizer runtimes allocate behind the allocator hooks";
#else
  Rng rng{62};
  CtaAnemometer anemo{maf::MafSpec{}, fast_isif_config(), CtaConfig{}, rng};
  const auto env = flowing_water();
  anemo.run(Seconds{0.05}, env);  // settle + size every scratch buffer
  ASSERT_EQ(anemo.tick_phase(), 0);
  const long before = g_allocations.load(std::memory_order_relaxed);
  for (int f = 0; f < 20; ++f) anemo.tick_frame(env);
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed) - before, 0);
#endif
}

}  // namespace
}  // namespace aqua::cta
