#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace aqua::cta {
namespace {

using hydro::WaterNetwork;
using util::metres;
using util::millimetres;

/// A small district: reservoir feeding a 2×2 grid, sensors on every pipe.
struct District {
  WaterNetwork net;
  std::vector<WaterNetwork::NodeId> junctions;
  std::vector<WaterNetwork::PipeId> pipes;
};

District make_district() {
  District d;
  const auto res = d.net.add_reservoir(55.0);
  for (int i = 0; i < 4; ++i)
    d.junctions.push_back(d.net.add_junction(0.0, 0.004));
  d.pipes.push_back(d.net.add_pipe(res, d.junctions[0], metres(300.0),
                                   millimetres(150.0)));
  d.pipes.push_back(d.net.add_pipe(d.junctions[0], d.junctions[1],
                                   metres(400.0), millimetres(100.0)));
  d.pipes.push_back(d.net.add_pipe(d.junctions[0], d.junctions[2],
                                   metres(400.0), millimetres(100.0)));
  d.pipes.push_back(d.net.add_pipe(d.junctions[1], d.junctions[3],
                                   metres(400.0), millimetres(80.0)));
  d.pipes.push_back(d.net.add_pipe(d.junctions[2], d.junctions[3],
                                   metres(400.0), millimetres(80.0)));
  return d;
}

std::vector<double> measure(WaterNetwork& net,
                            const std::vector<WaterNetwork::PipeId>& pipes,
                            double noise_mps = 0.0, std::uint64_t seed = 5) {
  util::Rng rng{seed};
  std::vector<double> out;
  for (auto p : pipes)
    out.push_back(net.pipe_velocity(p).value() + rng.gaussian(0.0, noise_mps));
  return out;
}

TEST(LeakLocalizer, NoFalseAlarmOnHealthyNetwork) {
  District d = make_district();
  LeakLocalizer mon{d.net, d.pipes, util::centimetres_per_second(1.0)};
  mon.calibrate();
  const auto m = measure(d.net, d.pipes, 0.002);
  EXPECT_FALSE(mon.leak_detected(m));
}

TEST(LeakLocalizer, DetectsInjectedLeak) {
  District d = make_district();
  LeakLocalizer mon{d.net, d.pipes, util::centimetres_per_second(1.0)};
  mon.calibrate();
  d.net.set_leak(d.junctions[3], 2e-3);
  ASSERT_TRUE(d.net.solve());
  const auto m = measure(d.net, d.pipes, 0.002);
  EXPECT_TRUE(mon.leak_detected(m));
}

TEST(LeakLocalizer, LocalisesToCorrectJunction) {
  District d = make_district();
  LeakLocalizer mon{d.net, d.pipes, util::centimetres_per_second(1.0)};
  mon.calibrate();
  for (std::size_t leak_at = 0; leak_at < d.junctions.size(); ++leak_at) {
    d.net.set_leak(d.junctions[leak_at], 2e-3);
    ASSERT_TRUE(d.net.solve());
    const auto m = measure(d.net, d.pipes, 0.001,
                           static_cast<std::uint64_t>(leak_at + 10));
    const auto ranked = mon.locate(m);
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().node, d.junctions[leak_at])
        << "leak at junction " << leak_at;
    d.net.set_leak(d.junctions[leak_at], 0.0);
    ASSERT_TRUE(d.net.solve());
  }
}

TEST(LeakLocalizer, EstimatesLeakMagnitude) {
  District d = make_district();
  LeakLocalizer mon{d.net, d.pipes, util::centimetres_per_second(1.0)};
  mon.calibrate();
  d.net.set_leak(d.junctions[1], 2e-3);
  ASSERT_TRUE(d.net.solve());
  const double true_leak = d.net.leak_flow(d.junctions[1]);
  const auto ranked = mon.locate(measure(d.net, d.pipes, 0.0005));
  EXPECT_NEAR(ranked.front().estimated_flow_m3s, true_leak, 0.4 * true_leak);
}

TEST(LeakLocalizer, BaselineRecorded) {
  District d = make_district();
  LeakLocalizer mon{d.net, d.pipes, util::centimetres_per_second(1.0)};
  mon.calibrate();
  EXPECT_EQ(mon.baseline().size(), d.pipes.size());
  EXPECT_GT(mon.baseline()[0], 0.0);  // feed pipe carries all demand
}

TEST(LeakLocalizer, Validation) {
  District d = make_district();
  EXPECT_THROW((LeakLocalizer{d.net, {}, util::centimetres_per_second(1.0)}),
               std::invalid_argument);
  LeakLocalizer mon{d.net, d.pipes, util::centimetres_per_second(1.0)};
  EXPECT_THROW((void)mon.locate(std::vector<double>{1.0}), std::invalid_argument);
  mon.calibrate();
  EXPECT_THROW((void)mon.leak_detected(std::vector<double>{1.0}),
               std::invalid_argument);
}

TEST(LeakLocalizer, LocateBeforeCalibrateThrows) {
  District d = make_district();
  LeakLocalizer mon{d.net, d.pipes, util::centimetres_per_second(1.0)};
  const std::vector<double> m(d.pipes.size(), 0.0);
  EXPECT_THROW((void)mon.locate(m), std::logic_error);
}

}  // namespace
}  // namespace aqua::cta
