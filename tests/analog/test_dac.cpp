#include "analog/dac.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace aqua::analog {
namespace {

using util::Rng;
using util::Seconds;
using util::volts;

ThermometerDacSpec ideal_spec(int bits = 12) {
  ThermometerDacSpec s;
  s.bits = bits;
  s.full_scale = volts(4.0);
  s.element_mismatch_sigma = 0.0;
  s.settling_tau = Seconds{0.0};
  return s;
}

TEST(ThermometerDac, IdealTransferEndpoints) {
  ThermometerDac dac{ideal_spec(), Rng{1}};
  dac.write_code(0);
  EXPECT_DOUBLE_EQ(dac.static_output().value(), 0.0);
  dac.write_code(dac.max_code());
  EXPECT_NEAR(dac.static_output().value(), 4.0, 1e-12);
}

TEST(ThermometerDac, MidCodeHalfScale) {
  ThermometerDac dac{ideal_spec(), Rng{1}};
  dac.write_code(2048);
  EXPECT_NEAR(dac.static_output().value(), 4.0 * 2048.0 / 4095.0, 1e-12);
}

TEST(ThermometerDac, CodeClamped) {
  ThermometerDac dac{ideal_spec(), Rng{1}};
  dac.write_code(99999);
  EXPECT_EQ(dac.code(), 4095);
  dac.write_code(-5);
  EXPECT_EQ(dac.code(), 0);
}

TEST(ThermometerDac, WriteVoltagePicksNearestCode) {
  ThermometerDac dac{ideal_spec(), Rng{1}};
  dac.write_voltage(volts(2.0));
  EXPECT_NEAR(dac.static_output().value(), 2.0, 4.0 / 4095.0);
}

TEST(ThermometerDac, MonotonicDespiteMismatch) {
  // Thermometer coding guarantees monotonicity even with big mismatch.
  ThermometerDacSpec s = ideal_spec(10);
  s.element_mismatch_sigma = 0.05;
  ThermometerDac dac{s, Rng{7}};
  double prev = -1.0;
  for (int code = 0; code <= dac.max_code(); ++code) {
    dac.write_code(code);
    const double v = dac.static_output().value();
    EXPECT_GE(v, prev) << "code " << code;
    prev = v;
  }
}

TEST(ThermometerDac, InlBoundedForSpecMismatch) {
  ThermometerDacSpec s = ideal_spec(12);
  s.element_mismatch_sigma = 2e-4;
  ThermometerDac dac{s, Rng{9}};
  double worst = 0.0;
  for (int code = 0; code <= dac.max_code(); code += 13)
    worst = std::max(worst, std::abs(dac.inl_lsb(code)));
  EXPECT_LT(worst, 0.5);  // well-behaved 12-bit part
  // And a zero-mismatch part has (numerically) zero INL.
  ThermometerDac perfect{ideal_spec(), Rng{1}};
  EXPECT_NEAR(perfect.inl_lsb(1234), 0.0, 1e-9);
}

TEST(ThermometerDac, SettlingFollowsFirstOrderLag) {
  ThermometerDacSpec s = ideal_spec();
  s.settling_tau = Seconds{1e-6};
  ThermometerDac dac{s, Rng{1}};
  dac.write_code(4095);
  const double v1 = dac.step(Seconds{1e-6}).value();  // one tau
  EXPECT_NEAR(v1, 4.0 * (1.0 - std::exp(-1.0)), 1e-6);
  for (int i = 0; i < 20; ++i) (void)dac.step(Seconds{1e-6});
  EXPECT_NEAR(dac.step(Seconds{1e-6}).value(), 4.0, 1e-6);
}

TEST(ThermometerDac, TenBitVariant) {
  ThermometerDac dac{ideal_spec(10), Rng{1}};
  EXPECT_EQ(dac.max_code(), 1023);
  dac.write_code(512);
  EXPECT_NEAR(dac.static_output().value(), 4.0 * 512.0 / 1023.0, 1e-12);
}

TEST(ThermometerDac, Validation) {
  ThermometerDacSpec bad = ideal_spec();
  bad.bits = 2;
  EXPECT_THROW((ThermometerDac{bad, Rng{1}}), std::invalid_argument);
  bad = ideal_spec();
  bad.full_scale = volts(0.0);
  EXPECT_THROW((ThermometerDac{bad, Rng{1}}), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::analog
