#include "analog/bridge.hpp"

#include <gtest/gtest.h>

namespace aqua::analog {
namespace {

using util::ohms;
using util::volts;

TEST(Bridge, BalancedBridgeHasZeroDifferential) {
  const BridgeArms arms{ohms(100.0), ohms(50.0), ohms(2000.0), ohms(1000.0)};
  const auto sol = solve_bridge(arms, volts(5.0));
  EXPECT_NEAR(sol.differential.value(), 0.0, 1e-12);
}

TEST(Bridge, TapVoltagesAreDividers) {
  const BridgeArms arms{ohms(50.0), ohms(50.0), ohms(2000.0), ohms(2000.0)};
  const auto sol = solve_bridge(arms, volts(4.0));
  EXPECT_DOUBLE_EQ(sol.v_tap_a.value(), 2.0);
  EXPECT_DOUBLE_EQ(sol.v_tap_b.value(), 2.0);
}

TEST(Bridge, HeaterResistanceAboveBalanceGivesPositiveError) {
  // Rh grew (heater hot) → tap A rises above tap B.
  const BridgeArms arms{ohms(100.0), ohms(51.0), ohms(2000.0), ohms(1000.0)};
  const auto sol = solve_bridge(arms, volts(5.0));
  EXPECT_GT(sol.differential.value(), 0.0);
}

TEST(Bridge, ArmCurrentsOhmsLaw) {
  const BridgeArms arms{ohms(60.0), ohms(40.0), ohms(3000.0), ohms(1000.0)};
  const auto sol = solve_bridge(arms, volts(10.0));
  EXPECT_DOUBLE_EQ(sol.i_arm_a.value(), 0.1);
  EXPECT_DOUBLE_EQ(sol.i_arm_b.value(), 0.0025);
}

TEST(Bridge, PowersAreIsquaredR) {
  const BridgeArms arms{ohms(50.0), ohms(50.0), ohms(2000.0), ohms(2000.0)};
  const auto sol = solve_bridge(arms, volts(2.0));
  EXPECT_DOUBLE_EQ(sol.p_bot_a.value(), 0.02 * 0.02 * 50.0);
  EXPECT_DOUBLE_EQ(sol.p_bot_b.value(), 0.0005 * 0.0005 * 2000.0);
}

TEST(Bridge, PowerScalesWithSupplySquared) {
  const BridgeArms arms{ohms(50.0), ohms(50.0), ohms(2000.0), ohms(2000.0)};
  const auto p1 = solve_bridge(arms, volts(1.0)).p_bot_a.value();
  const auto p3 = solve_bridge(arms, volts(3.0)).p_bot_a.value();
  EXPECT_NEAR(p3 / p1, 9.0, 1e-12);
}

TEST(Bridge, ZeroSupplyAllZero) {
  const BridgeArms arms{ohms(50.0), ohms(50.0), ohms(2000.0), ohms(2000.0)};
  const auto sol = solve_bridge(arms, volts(0.0));
  EXPECT_DOUBLE_EQ(sol.differential.value(), 0.0);
  EXPECT_DOUBLE_EQ(sol.p_bot_a.value(), 0.0);
}

TEST(Bridge, RejectsNonPositiveArms) {
  const BridgeArms bad{ohms(0.0), ohms(50.0), ohms(2000.0), ohms(2000.0)};
  EXPECT_THROW((void)solve_bridge(bad, volts(1.0)), std::invalid_argument);
}

TEST(BalancingTopResistor, BalancesByConstruction) {
  const auto top_a = balancing_top_resistor(ohms(50.8), ohms(2000.0),
                                            ohms(1967.0));
  const BridgeArms arms{top_a, ohms(50.8), ohms(2000.0), ohms(1967.0)};
  const auto sol = solve_bridge(arms, volts(5.0));
  EXPECT_NEAR(sol.differential.value(), 0.0, 1e-12);
}

TEST(BalancingTopResistor, Validation) {
  EXPECT_THROW(
      (void)balancing_top_resistor(ohms(0.0), ohms(1.0), ohms(1.0)),
      std::invalid_argument);
}

}  // namespace
}  // namespace aqua::analog
