#include "analog/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

namespace aqua::analog {
namespace {

using util::hertz;
using util::Rng;

TEST(WhiteNoise, SigmaMatchesDensityAndRate) {
  // sigma = density·sqrt(fs/2).
  WhiteNoise n{20e-9, hertz(200e3), Rng{1}};
  EXPECT_NEAR(n.sigma(), 20e-9 * std::sqrt(100e3), 1e-12);
}

TEST(WhiteNoise, SampleStatistics) {
  WhiteNoise n{1e-3, hertz(2000.0), Rng{2}};
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) {
    const double s = n.sample();
    sum += s;
    sum2 += s * s;
  }
  const double sigma_expected = 1e-3 * std::sqrt(1000.0);
  EXPECT_NEAR(sum / kN, 0.0, sigma_expected * 0.05);
  EXPECT_NEAR(std::sqrt(sum2 / kN), sigma_expected, sigma_expected * 0.03);
}

TEST(WhiteNoise, Validation) {
  EXPECT_THROW((WhiteNoise{-1.0, hertz(1000.0), Rng{1}}), std::invalid_argument);
  EXPECT_THROW((WhiteNoise{1.0, hertz(0.0), Rng{1}}), std::invalid_argument);
}

TEST(FlickerNoise, LowFrequencyPowerDominates) {
  // Split a long record into coarse bins: 1/f noise has larger variance in
  // slow averages than white noise of the same per-sample variance.
  FlickerNoise n{1e-6, hertz(1.0), hertz(1000.0), Rng{3}};
  std::vector<double> samples;
  for (int i = 0; i < 65536; ++i) samples.push_back(n.sample());
  // Variance of per-1024-sample means (captures low-frequency content).
  double var_means = 0.0, mean_all = 0.0;
  for (double s : samples) mean_all += s;
  mean_all /= samples.size();
  const int block = 1024;
  const int nblocks = samples.size() / block;
  for (int b = 0; b < nblocks; ++b) {
    double m = 0.0;
    for (int i = 0; i < block; ++i) m += samples[b * block + i];
    m /= block;
    var_means += (m - mean_all) * (m - mean_all);
  }
  var_means /= nblocks;
  // White noise would give var_means ≈ var_sample/1024; flicker is far above.
  double var_sample = 0.0;
  for (double s : samples) var_sample += (s - mean_all) * (s - mean_all);
  var_sample /= samples.size();
  EXPECT_GT(var_means, 10.0 * var_sample / block);
}

TEST(FlickerNoise, Validation) {
  EXPECT_THROW((FlickerNoise{1.0, hertz(0.0), hertz(100.0), Rng{1}}),
               std::invalid_argument);
}

TEST(WhiteNoise, FillBitIdenticalToSampleSequence) {
  WhiteNoise scalar{50e-9, hertz(256e3), Rng{11}};
  WhiteNoise block{50e-9, hertz(256e3), Rng{11}};
  std::vector<double> expect(300), got(300);
  for (double& x : expect) x = scalar.sample();
  // Uneven chunks so block boundaries land mid-stream.
  block.fill(std::span<double>{got}.subspan(0, 77));
  block.fill(std::span<double>{got}.subspan(77, 128));
  block.fill(std::span<double>{got}.subspan(205));
  for (size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(expect[i], got[i]) << "draw " << i;
  // Streams stay aligned afterwards.
  EXPECT_EQ(scalar.sample(), [&] { double x; block.fill({&x, 1}); return x; }());
}

TEST(FlickerNoise, FillBitIdenticalToSampleSequence) {
  FlickerNoise scalar{1e-6, hertz(1.0), hertz(256e3), Rng{12}};
  FlickerNoise block{1e-6, hertz(1.0), hertz(256e3), Rng{12}};
  std::vector<double> expect(300), got(300);
  for (double& x : expect) x = scalar.sample();
  block.fill(std::span<double>{got}.subspan(0, 33));
  block.fill(std::span<double>{got}.subspan(33, 128));
  block.fill(std::span<double>{got}.subspan(161));
  for (size_t i = 0; i < expect.size(); ++i)
    EXPECT_EQ(expect[i], got[i]) << "draw " << i;
}

TEST(FlickerNoise, KernelSuffixCacheMatchesFullChain) {
  // The block kernel reuses suffix partial sums of the row chain; every
  // cached partial must be numerically identical to re-summing the chain, so
  // interleaving kernel draws with scalar draws stays aligned.
  FlickerNoise a{1e-6, hertz(1.0), hertz(256e3), Rng{13}};
  FlickerNoise b{1e-6, hertz(1.0), hertz(256e3), Rng{13}};
  for (int round = 0; round < 5; ++round) {
    auto k = b.begin_block();
    for (int i = 0; i < 37; ++i) EXPECT_EQ(a.sample(), k.draw());
    b.commit_block(k);
  }
}

TEST(ThermalNoise, JohnsonFormula) {
  // 1 kΩ at 300 K: √(4·1.38e-23·300·1000) ≈ 4.07 nV/√Hz.
  EXPECT_NEAR(thermal_noise_density(util::ohms(1000.0), util::Kelvin{300.0}),
              4.07e-9, 0.02e-9);
}

TEST(ThermalNoise, ScalesWithSqrtR) {
  const double n1 = thermal_noise_density(util::ohms(50.0), util::Kelvin{293.0});
  const double n4 = thermal_noise_density(util::ohms(200.0), util::Kelvin{293.0});
  EXPECT_NEAR(n4 / n1, 2.0, 1e-9);
}

TEST(ThermalNoise, Validation) {
  EXPECT_THROW(
      (void)thermal_noise_density(util::ohms(-1.0), util::Kelvin{300.0}),
      std::invalid_argument);
  EXPECT_THROW((void)thermal_noise_density(util::ohms(1.0), util::Kelvin{0.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace aqua::analog
