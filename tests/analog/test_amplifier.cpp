#include "analog/amplifier.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

namespace aqua::analog {
namespace {

using util::hertz;
using util::millivolts;
using util::Rng;
using util::Seconds;
using util::volts;

InstrumentAmpSpec quiet_spec() {
  InstrumentAmpSpec s;
  s.offset_sigma = volts(0.0);
  s.noise_density = 0.0;
  s.flicker_density_1hz = 0.0;
  return s;
}

TEST(InstrumentAmp, DcGainApplied) {
  InstrumentAmp amp{quiet_spec(), hertz(1e6), Rng{1}};
  double y = 0.0;
  for (int i = 0; i < 10000; ++i)
    y = amp.step(millivolts(10.0), Seconds{1e-6});
  EXPECT_NEAR(y, 0.16, 1e-4);  // 10 mV · 16
}

TEST(InstrumentAmp, GainProgrammable) {
  InstrumentAmp amp{quiet_spec(), hertz(1e6), Rng{1}};
  amp.set_gain(64.0);
  double y = 0.0;
  for (int i = 0; i < 10000; ++i) y = amp.step(millivolts(5.0), Seconds{1e-6});
  EXPECT_NEAR(y, 0.32, 1e-3);
  EXPECT_THROW(amp.set_gain(0.0), std::invalid_argument);
}

TEST(InstrumentAmp, SaturatesAtRails) {
  InstrumentAmp amp{quiet_spec(), hertz(1e6), Rng{1}};
  double y = 0.0;
  for (int i = 0; i < 10000; ++i) y = amp.step(volts(1.0), Seconds{1e-6});
  EXPECT_DOUBLE_EQ(y, 1.65);  // rail/2 of 3.3 V
  EXPECT_TRUE(amp.saturated());
}

TEST(InstrumentAmp, BandwidthLimitsStepResponse) {
  InstrumentAmpSpec s = quiet_spec();
  s.bandwidth = hertz(1000.0);  // tau ≈ 159 µs
  InstrumentAmp amp{s, hertz(1e6), Rng{1}};
  const double y1 = amp.step(millivolts(10.0), Seconds{1e-6});
  EXPECT_LT(y1, 0.16 * 0.05);  // far from settled after 1 µs
}

TEST(InstrumentAmp, OffsetDrawnFromSpec) {
  InstrumentAmpSpec s = quiet_spec();
  s.offset_sigma = millivolts(1.0);
  double spread = 0.0;
  for (int seed = 0; seed < 50; ++seed) {
    InstrumentAmp amp{s, hertz(1e6), Rng{static_cast<std::uint64_t>(seed)}};
    spread = std::max(spread, std::abs(amp.offset().value()));
  }
  EXPECT_GT(spread, 0.5e-3);  // some parts near ±1 sigma
  EXPECT_LT(spread, 5e-3);    // none absurdly far
}

TEST(InstrumentAmp, NoiseAppearsAtOutput) {
  InstrumentAmpSpec s = quiet_spec();
  s.noise_density = 100e-9;
  InstrumentAmp amp{s, hertz(1e6), Rng{7}};
  util::Rng unused{0};
  double sum2 = 0.0;
  // settle the pole first
  for (int i = 0; i < 2000; ++i) (void)amp.step(volts(0.0), Seconds{1e-6});
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double y = amp.step(volts(0.0), Seconds{1e-6});
    sum2 += y * y;
  }
  EXPECT_GT(std::sqrt(sum2 / kN), 1e-5);  // clearly nonzero
}

TEST(InstrumentAmp, OffsetDriftWithAmbient) {
  InstrumentAmpSpec s = quiet_spec();
  s.offset_drift_per_k = 1e-3;
  InstrumentAmp amp{s, hertz(1e6), Rng{1}};
  double y_cold = 0.0, y_hot = 0.0;
  for (int i = 0; i < 5000; ++i)
    y_cold = amp.step(volts(0.0), Seconds{1e-6}, util::celsius(25.0));
  for (int i = 0; i < 5000; ++i)
    y_hot = amp.step(volts(0.0), Seconds{1e-6}, util::celsius(35.0));
  EXPECT_NEAR(y_hot - y_cold, 16.0 * 1e-3 * 10.0, 1e-3);
}

TEST(InstrumentAmp, ProcessBlockBitIdenticalToStep) {
  // Full-noise spec: the block path must consume the white and flicker
  // streams in exactly the scalar interleaving order.
  InstrumentAmpSpec s;  // defaults: noise + flicker + offset all live
  InstrumentAmp scalar{s, hertz(256e3), Rng{21}};
  InstrumentAmp block{s, hertz(256e3), Rng{21}};
  const Seconds dt{1.0 / 256e3};
  std::vector<double> in(3 * 128), expect(in.size()), got(in.size());
  for (size_t i = 0; i < in.size(); ++i)
    in[i] = 5e-3 * std::sin(0.013 * static_cast<double>(i));
  for (size_t i = 0; i < in.size(); ++i)
    expect[i] = scalar.step(volts(in[i]), dt);
  for (int f = 0; f < 3; ++f)
    block.process_block(std::span<const double>{in}.subspan(128u * f, 128),
                        std::span<double>{got}.subspan(128u * f, 128), dt);
  for (size_t i = 0; i < in.size(); ++i)
    EXPECT_EQ(expect[i], got[i]) << "sample " << i;
  EXPECT_EQ(scalar.saturated(), block.saturated());
}

TEST(InstrumentAmp, BlockKernelCarriesSaturationState) {
  InstrumentAmp scalar{quiet_spec(), hertz(1e6), Rng{1}};
  InstrumentAmp block{quiet_spec(), hertz(1e6), Rng{1}};
  const Seconds dt{1e-6};
  std::vector<double> in(256, 1.0);  // 1 V · gain 16 slams the 1.65 V rail
  std::vector<double> out(in.size());
  for (double x : in) (void)scalar.step(volts(x), dt);
  block.process_block(in, out, dt);
  EXPECT_TRUE(block.saturated());
  EXPECT_EQ(scalar.saturated(), block.saturated());
}

TEST(InstrumentAmp, RejectsBadGainSpec) {
  InstrumentAmpSpec s = quiet_spec();
  s.gain = 0.0;
  EXPECT_THROW((InstrumentAmp{s, hertz(1e6), Rng{1}}), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::analog
