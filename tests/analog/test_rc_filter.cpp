#include "analog/rc_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

namespace aqua::analog {
namespace {

using util::hertz;
using util::Seconds;

TEST(RcLowpass, StepSettlesToInput) {
  RcLowpass f{hertz(1000.0), 2};
  double y = 0.0;
  for (int i = 0; i < 100000; ++i) y = f.step(2.0, Seconds{1e-6});
  EXPECT_NEAR(y, 2.0, 1e-9);
}

TEST(RcLowpass, SinglePoleTimeConstant) {
  RcLowpass f{hertz(1.0 / (2.0 * 3.14159265358979)), 1};  // tau = 1 s
  const double y = f.step(1.0, Seconds{1.0});
  EXPECT_NEAR(y, 1.0 - std::exp(-1.0), 1e-9);
}

TEST(RcLowpass, AttenuatesFastSine) {
  const double fs = 1e6, fin = 200e3, fc = 10e3;
  RcLowpass f{hertz(fc), 2};
  double peak = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::sin(2.0 * 3.14159265358979 * fin * i / fs);
    const double y = f.step(x, Seconds{1.0 / fs});
    if (i > 5000) peak = std::max(peak, std::abs(y));
  }
  // Two poles at 10 kHz against 200 kHz: ≈ (fc/f)² = 1/400.
  EXPECT_LT(peak, 0.01);
}

TEST(RcLowpass, MorePolesAttenuateMore) {
  const double fs = 1e6, fin = 100e3, fc = 10e3;
  RcLowpass f1{hertz(fc), 1};
  RcLowpass f2{hertz(fc), 2};
  double p1 = 0.0, p2 = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double x = std::sin(2.0 * 3.14159265358979 * fin * i / fs);
    const double y1 = f1.step(x, Seconds{1.0 / fs});
    const double y2 = f2.step(x, Seconds{1.0 / fs});
    if (i > 5000) {
      p1 = std::max(p1, std::abs(y1));
      p2 = std::max(p2, std::abs(y2));
    }
  }
  EXPECT_LT(p2, p1 * 0.5);
}

TEST(RcLowpass, ResetPresets) {
  RcLowpass f{hertz(100.0), 2};
  f.reset(3.0);
  EXPECT_DOUBLE_EQ(f.value(), 3.0);
  EXPECT_NEAR(f.step(3.0, Seconds{1e-3}), 3.0, 1e-12);
}

TEST(RcLowpass, ProcessBlockBitIdenticalToStep) {
  RcLowpass scalar{hertz(20e3), 2};
  RcLowpass block{hertz(20e3), 2};
  const Seconds dt{1.0 / 256e3};
  std::vector<double> x(3 * 128), expect(x.size());
  for (size_t i = 0; i < x.size(); ++i)
    x[i] = std::sin(0.05 * static_cast<double>(i)) +
           0.3 * std::sin(0.7 * static_cast<double>(i));
  for (size_t i = 0; i < x.size(); ++i) expect[i] = scalar.step(x[i], dt);
  std::vector<double> got = x;
  for (int f = 0; f < 3; ++f)
    block.process_block(std::span<double>{got}.subspan(128u * f, 128), dt);
  for (size_t i = 0; i < x.size(); ++i)
    EXPECT_EQ(expect[i], got[i]) << "sample " << i;
  EXPECT_EQ(scalar.value(), block.value());
}

TEST(RcLowpass, BlockKernelBitIdenticalToStepAllPoleCounts) {
  for (int poles = 1; poles <= 4; ++poles) {
    RcLowpass scalar{hertz(5e3), poles};
    RcLowpass block{hertz(5e3), poles};
    const Seconds dt{1e-6};
    auto k = block.begin_block(dt);
    for (int i = 0; i < 200; ++i) {
      const double x = std::cos(0.11 * i);
      EXPECT_EQ(scalar.step(x, dt), k.step(x)) << "poles " << poles
                                               << " sample " << i;
    }
    block.commit_block(k);
    EXPECT_EQ(scalar.value(), block.value()) << "poles " << poles;
  }
}

TEST(RcLowpass, Validation) {
  EXPECT_THROW((RcLowpass{hertz(0.0), 1}), std::invalid_argument);
  EXPECT_THROW((RcLowpass{hertz(10.0), 0}), std::invalid_argument);
  EXPECT_THROW((RcLowpass{hertz(10.0), 5}), std::invalid_argument);
}

}  // namespace
}  // namespace aqua::analog
