#include "analog/sigma_delta.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "dsp/cic.hpp"

namespace aqua::analog {
namespace {

using util::Rng;
using util::volts;

double decoded_dc(double input_v, int osr = 256, int blocks = 40,
                  std::uint64_t seed = 5) {
  SigmaDeltaModulator sd{{}, Rng{seed}};
  dsp::CicDecimator cic{3, osr};
  double last = 0.0;
  int n = 0;
  double acc = 0.0;
  for (int i = 0; i < osr * blocks; ++i) {
    if (auto y = cic.push(sd.step(volts(input_v)))) {
      last = *y;
      if (++n > blocks / 2) acc += last;
    }
  }
  return acc / (blocks - blocks / 2) * 1.6;  // scale back to volts (FS 1.6)
}

TEST(SigmaDelta, BitstreamIsBipolar) {
  SigmaDeltaModulator sd{{}, Rng{1}};
  for (int i = 0; i < 100; ++i) {
    const int b = sd.step(volts(0.3));
    EXPECT_TRUE(b == 1 || b == -1);
  }
}

TEST(SigmaDelta, DcRecoveredThroughCic) {
  for (double v : {-1.0, -0.4, 0.0, 0.25, 1.1}) {
    EXPECT_NEAR(decoded_dc(v), v, 0.004) << "input " << v;
  }
}

TEST(SigmaDelta, HighOsrResolvesSmallSteps) {
  // Two inputs 100 µV apart must decode distinguishably at OSR 256.
  const double a = decoded_dc(0.2000, 256, 80);
  const double b = decoded_dc(0.2004, 256, 80);
  EXPECT_GT(b - a, 0.0001);
}

TEST(SigmaDelta, OverloadFlagAboveStableRange) {
  SigmaDeltaModulator sd{{}, Rng{2}};
  (void)sd.step(volts(1.55));  // 0.97 FS
  EXPECT_TRUE(sd.overloaded());
  (void)sd.step(volts(0.5));
  EXPECT_FALSE(sd.overloaded());
}

TEST(SigmaDelta, ResetClearsState) {
  SigmaDeltaModulator sd{{}, Rng{3}};
  for (int i = 0; i < 100; ++i) (void)sd.step(volts(1.0));
  sd.reset();
  EXPECT_FALSE(sd.overloaded());
  // After reset the first bits match a freshly-built modulator fed the same
  // dither stream — we only assert it runs and stays bipolar.
  for (int i = 0; i < 10; ++i) {
    const int b = sd.step(volts(0.0));
    EXPECT_TRUE(b == 1 || b == -1);
  }
}

TEST(SigmaDelta, NoiseShapingMovesErrorOutOfBand) {
  // In-band error with decimation (low-pass) is much smaller than the raw
  // bitstream error: the defining property of ΣΔ.
  SigmaDeltaModulator sd{{}, Rng{4}};
  const double target = 0.3 / 1.6;
  double raw_err = 0.0;
  dsp::CicDecimator cic{3, 128};
  double dec_err = 0.0;
  int n_dec = 0;
  for (int i = 0; i < 128 * 60; ++i) {
    const int b = sd.step(volts(0.3));
    raw_err += std::abs(b - target);
    if (auto y = cic.push(b))
      if (++n_dec > 10) dec_err += std::abs(*y - target);
  }
  raw_err /= 128 * 60;
  dec_err /= (n_dec - 10);
  EXPECT_LT(dec_err, raw_err / 100.0);
}

TEST(SigmaDelta, IntegratorLeakDegradesDcAccuracySlightly) {
  SigmaDeltaSpec leaky{};
  leaky.integrator_leak = 1e-3;
  SigmaDeltaModulator sd{leaky, Rng{6}};
  dsp::CicDecimator cic{3, 256};
  double acc = 0.0;
  int n = 0;
  for (int i = 0; i < 256 * 40; ++i)
    if (auto y = cic.push(sd.step(volts(0.4))))
      if (++n > 20) acc += *y;
  const double decoded = acc / (n - 20) * 1.6;
  // Still close, but leak should not break it.
  EXPECT_NEAR(decoded, 0.4, 0.02);
}

TEST(SigmaDelta, ProcessBlockBitIdenticalToStep) {
  SigmaDeltaModulator scalar{{}, Rng{31}};
  SigmaDeltaModulator block{{}, Rng{31}};
  std::vector<double> in(3 * 128), bits(128);
  for (size_t i = 0; i < in.size(); ++i)
    in[i] = 0.4 * std::sin(0.021 * static_cast<double>(i));
  for (int f = 0; f < 3; ++f) {
    const auto chunk = std::span<const double>{in}.subspan(128u * f, 128);
    const bool any = block.process_block(chunk, bits);
    bool scalar_any = false;
    for (size_t i = 0; i < chunk.size(); ++i) {
      const int b = scalar.step(volts(chunk[i]));
      scalar_any = scalar_any || scalar.overloaded();
      EXPECT_EQ(static_cast<double>(b), bits[i])
          << "frame " << f << " sample " << i;
    }
    EXPECT_EQ(scalar_any, any) << "frame " << f;
    EXPECT_EQ(scalar.overloaded(), block.overloaded()) << "frame " << f;
  }
}

TEST(SigmaDelta, BlockOverloadLatchVsLastSample) {
  // A block whose middle sample overloads but whose last sample is fine:
  // process_block() returns true (the per-block latch), overloaded() reports
  // the last sample — matching the scalar semantics exactly.
  SigmaDeltaModulator sd{{}, Rng{32}};
  std::vector<double> in(16, 0.1), bits(16);
  in[7] = 1.58;  // ≈ 0.99 FS
  EXPECT_TRUE(sd.process_block(in, bits));
  EXPECT_FALSE(sd.overloaded());
}

TEST(SigmaDelta, FillDitherBitIdenticalToStepDraws) {
  // fill_dither() must hand a fused loop exactly the dither values the scalar
  // step() would draw, leaving the stream at the same position.
  SigmaDeltaSpec spec{};
  SigmaDeltaModulator a{spec, Rng{33}};
  SigmaDeltaModulator b{spec, Rng{33}};
  std::vector<double> dither(64);
  b.fill_dither(dither);
  std::vector<double> bits(64);
  for (size_t i = 0; i < dither.size(); ++i) {
    auto k = b.begin_block();
    bits[i] = k.step(0.2, dither[i]);
    b.commit_block(k);
    EXPECT_EQ(static_cast<double>(a.step(volts(0.2))), bits[i]) << i;
  }
}

TEST(SigmaDelta, Validation) {
  SigmaDeltaSpec bad{};
  bad.full_scale = volts(0.0);
  EXPECT_THROW((SigmaDeltaModulator{bad, Rng{1}}), std::invalid_argument);
}

class SigmaDeltaDcSweep : public ::testing::TestWithParam<double> {};

TEST_P(SigmaDeltaDcSweep, MonotoneDecoding) {
  const double v = GetParam();
  EXPECT_LT(decoded_dc(v), decoded_dc(v + 0.05));
}

INSTANTIATE_TEST_SUITE_P(InRange, SigmaDeltaDcSweep,
                         ::testing::Values(-1.2, -0.8, -0.4, 0.0, 0.4, 0.8, 1.1));

}  // namespace
}  // namespace aqua::analog
