// campaign.hpp — scriptable, seeded fault-injection campaigns over a sensor
// fleet. A FaultCampaign is a schedule of FaultEvents; the FaultInjector
// applies them at epoch boundaries through the *physical* injection ports
// (die surface, membrane, package, ISIF channel, DAC rail, firmware), and
// run_campaign drives injector + engine + supervisor to a machine-readable
// CampaignSummary for the CI gates.
//
// Determinism contract (DESIGN.md §11): random schedules draw event k's
// parameters exclusively from util::Rng::stream(seed, k) — counter-based, so
// the schedule is a pure function of (seed, k). All injector and supervisor
// actions happen serially between FleetEngine::step_epoch calls. A campaign
// is therefore bit-reproducible at any thread count, and a campaign that is
// compiled in but never constructed executes zero extra floating-point
// operations in the signal chain (all injection ports are branch-guarded).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "fleet/fleet.hpp"
#include "fleet/supervisor.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace aqua::fault {

class FaultCampaign {
 public:
  explicit FaultCampaign(std::uint64_t seed = 0) : seed_(seed) {}

  FaultCampaign& add(const FaultEvent& event);

  /// Seeded random schedule: `count` events spread over `sensor_count`
  /// sensors, starting in [earliest, horizon), each active for a duration in
  /// [min_duration, max_duration) with severity in [0.5, 1).
  [[nodiscard]] static FaultCampaign random(
      std::uint64_t seed, std::size_t count, std::size_t sensor_count,
      util::Seconds earliest, util::Seconds horizon,
      util::Seconds min_duration = util::Seconds{2.0},
      util::Seconds max_duration = util::Seconds{8.0});

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
  std::vector<FaultEvent> events_;
};

/// Applies a campaign's events to a live fleet. Call update(engine.now())
/// once per epoch, before FleetEngine::step_epoch, on the main thread.
class FaultInjector {
 public:
  FaultInjector(fleet::FleetEngine& engine, const FaultCampaign& campaign);

  /// Starts, ramps and expires events for simulation time `now`. Each start
  /// emits a flight-recorder entry, a trace instant and bumps the
  /// fault.injected counter.
  void update(util::Seconds now);

  [[nodiscard]] long long injections() const { return injections_; }
  [[nodiscard]] bool started(std::size_t k) const {
    return started_[k] != 0;
  }
  [[nodiscard]] bool expired(std::size_t k) const {
    return expired_[k] != 0;
  }
  /// Simulation time at which event k was actually applied (-1 if pending).
  [[nodiscard]] double injection_time_s(std::size_t k) const {
    return injection_t_s_[k];
  }

  /// Checkpoint support: the schedule cursors only (started/expired flags,
  /// injection times, counter). The injected *effects* live in the sensor
  /// state the engine checkpoint already carries; restore targets an injector
  /// freshly constructed from the identical campaign.
  void save_state(state::Writer& w) const;
  void load_state(state::Reader& r);

 private:
  void apply_start(std::size_t k, util::Seconds now);
  void apply_expiry(std::size_t k);
  void refresh_surface(std::size_t sensor, util::Seconds now);
  void refresh_channel(std::size_t sensor);

  fleet::FleetEngine& engine_;
  std::vector<FaultEvent> events_;
  std::vector<std::uint8_t> started_;
  std::vector<std::uint8_t> expired_;
  std::vector<double> injection_t_s_;
  long long injections_ = 0;
};

/// Per-event outcome as observed by run_campaign.
struct FaultOutcome {
  FaultEvent event;
  bool hard = false;
  bool injected = false;
  double injected_t_s = -1.0;
  /// First quarantine of the event's sensor at/after injection (-1 = never).
  double quarantined_t_s = -1.0;
  long long detection_epochs = -1;  ///< injection → quarantine, in epochs
  /// First recovery of the sensor after that quarantine (-1 = none).
  double recovered_t_s = -1.0;
};

struct CampaignSummary {
  std::vector<FaultOutcome> outcomes;
  long long epochs = 0;
  double sim_time_s = 0.0;
  std::size_t sensors = 0;
  long long injected = 0;
  long long hard_injected = 0;
  long long hard_detected = 0;  ///< hard events whose sensor was quarantined
  long long transient_injected = 0;
  long long transient_detected = 0;
  long long transient_recovered = 0;  ///< detected transients back in service
  long long failed_permanently = 0;   ///< sensors in kFailed at campaign end
  /// Quarantine entries beyond one per injected event per sensor — spurious
  /// oscillation. The CI gate requires zero.
  long long quarantine_flaps = 0;
  std::uint64_t trace_checksum = 0;

  [[nodiscard]] std::string to_json() const;
};

/// Bitwise XOR checksum over every node's full trace (same construction as
/// bench_fleet) — equal checksums across thread counts are the determinism
/// proof under injection.
[[nodiscard]] std::uint64_t fleet_trace_checksum(
    const fleet::FleetEngine& engine);

/// The epoch-resolved campaign loop behind run_campaign, broken out so it can
/// checkpoint between epochs and resume mid-campaign (DESIGN.md §14):
///
///   CampaignRunner runner{engine, supervisor, campaign, duration};
///   while (!runner.done()) {
///     runner.step(pool);
///     if (due) manager.write(runner.epoch(), runner.checkpoint());
///   }
///   CampaignSummary summary = runner.finish();
///
/// step() performs exactly one iteration of the historical run_campaign loop
/// (inject → step_epoch → poll → outcome scan), so a runner that checkpoints
/// after epoch k and a fresh runner restored from that image produce
/// bit-identical summaries — the kill-and-resume contract.
class CampaignRunner {
 public:
  /// The engine should already be commissioned and calibrated; `supervisor`
  /// must be bound to `engine`.
  CampaignRunner(fleet::FleetEngine& engine,
                 fleet::FleetSupervisor& supervisor,
                 const FaultCampaign& campaign, util::Seconds duration);

  CampaignRunner(const CampaignRunner&) = delete;
  CampaignRunner& operator=(const CampaignRunner&) = delete;

  /// Advances one epoch (throws std::logic_error once done()).
  void step(util::ThreadPool* pool = nullptr);
  [[nodiscard]] bool done() const { return epoch_ >= total_epochs_; }
  /// Epochs completed so far / scheduled in total.
  [[nodiscard]] long long epoch() const { return epoch_; }
  [[nodiscard]] long long total_epochs() const { return total_epochs_; }

  /// Aggregates the summary tail (detection/recovery tallies, flap scan,
  /// trace checksum). Call once, after done().
  [[nodiscard]] CampaignSummary finish() const;

  // --- crash-consistent checkpoint/restore ---------------------------------
  /// One image holding the engine's sections plus the supervisor (SUPV),
  /// injector cursors (INJC) and this runner's partial outcomes (CAMP).
  /// Must run between step() calls (the quiescent point).
  [[nodiscard]] std::vector<std::uint8_t> checkpoint() const;
  /// Restores engine + supervisor + injector + runner from `image` into this
  /// freshly constructed trio (identical configs/campaign/duration). Throws
  /// state::Error on mismatch or corruption.
  void restore(std::span<const std::uint8_t> image);

 private:
  fleet::FleetEngine& engine_;
  fleet::FleetSupervisor& supervisor_;
  FaultInjector injector_;
  CampaignSummary summary_;  ///< outcomes filled in as epochs run
  std::vector<long long> injection_epoch_;
  std::vector<int> prev_quarantines_;
  std::vector<int> prev_recoveries_;
  long long epoch_ = 0;
  long long total_epochs_ = 0;
};

/// Runs `duration` of co-simulation with the campaign injected and the
/// supervisor polling every epoch (a CampaignRunner driven to completion
/// under one persistent worker team). The engine should already be
/// commissioned and calibrated; `supervisor` must be bound to `engine`.
CampaignSummary run_campaign(fleet::FleetEngine& engine,
                             fleet::FleetSupervisor& supervisor,
                             const FaultCampaign& campaign,
                             util::Seconds duration,
                             util::ThreadPool* pool = nullptr);

}  // namespace aqua::fault
