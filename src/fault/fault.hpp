// fault.hpp — the fault taxonomy of the fault-injection subsystem. Each kind
// maps to a *physical* injection port at the layer where the real failure
// lives (maf die surface, package, ISIF channel, DAC rail, LEON firmware) —
// never to a synthetic "flip the reading" shortcut — so a campaign exercises
// the same detection path a deployed sensor would: the fault perturbs the
// plant, the CTA loop responds, the HealthMonitor sees the symptom and the
// FleetSupervisor acts on it.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/units.hpp"

namespace aqua::fault {

enum class FaultKind : std::uint8_t {
  /// Gas bubble spreading under the die surface (thermal insulation ramp);
  /// detaches at event expiry — the failure the paper's pulsed drive fights.
  kBubbleAdhesion = 0,
  /// Mineral/biofilm deposit growing on the die; scrubbed at event expiry
  /// (a maintenance clean).
  kFoulingDeposit = 1,
  /// Water-hammer overpressure rupturing the membrane. Permanent.
  kMembraneOverpressure = 2,
  /// Moisture past the package seal; corrosion follows. Permanent.
  kMoistureIngress = 3,
  /// Output-word bit stuck in the ISIF channel (cracked solder joint); the
  /// joint re-seats at event expiry, but a reboot alone does not clear it.
  kAdcStuckBits = 4,
  /// Input-referred offset drift in the channel's analog front end.
  kAdcOffsetDrift = 5,
  /// Bridge-supply rail brownout (shared field supply sagging).
  kDacBrownout = 6,
  /// Runaway interrupt handler stealing LEON cycles; the watchdog latches
  /// until the node is rebooted.
  kWatchdogOverrun = 7,
};

inline constexpr int kFaultKindCount = 8;

/// Stable label with static storage duration (flight-recorder safe).
[[nodiscard]] const char* fault_kind_label(FaultKind kind);

/// Hard faults must end in quarantine: either the damage is permanent
/// (membrane, package) or the sensor cannot serve readings until an external
/// action clears the cause (latched watchdog, stuck output bit).
[[nodiscard]] bool fault_kind_is_hard(FaultKind kind);

/// True for faults a re-commissioned sensor can fully recover from once the
/// event expires (the transient classes of the campaign gates).
[[nodiscard]] bool fault_kind_is_transient(FaultKind kind);

/// One scheduled fault of a campaign.
struct FaultEvent {
  std::size_t sensor = 0;
  FaultKind kind = FaultKind::kBubbleAdhesion;
  util::Seconds start{0.0};
  /// Active window. Ignored for the permanent kinds (membrane, moisture),
  /// which never expire; for kWatchdogOverrun the injection is one-shot at
  /// `start` and latches regardless of duration.
  util::Seconds duration{1.0};
  /// Kind-specific intensity in [0, 1]; see campaign.cpp for the physical
  /// scale each kind maps it onto.
  double severity = 1.0;
};

}  // namespace aqua::fault
