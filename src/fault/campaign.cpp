#include "fault/campaign.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace aqua::fault {

using util::Seconds;

namespace {
const obs::Counter kInjected{"fault.injected"};

// --- severity → physical scale maps ----------------------------------------
// Bubble film: fraction of the die surface blanketed at full severity.
constexpr double kBubbleCoverageMax = 0.9;
// Mineral/biofilm layer thickness at full severity.
constexpr double kDepositThicknessMax = 50e-6;  // m
// Moisture ingress: enough to pull the package insulation below the healthy
// limit even at the lowest severity (hard faults must be detectable).
double moisture_amount(double severity) { return 0.8 + 0.2 * severity; }
// Stuck output bit: severity selects which mid/high bit of the 16-bit word
// latches high (higher severity = more significant bit = larger corruption).
std::uint32_t stuck_mask(double severity) {
  const int bit = 10 + static_cast<int>(std::lround(
                           std::clamp(severity, 0.0, 1.0) * 4.0));
  return 1u << bit;
}
// Input-referred front-end offset at full severity.
constexpr double kOffsetMaxVolts = 0.05;
// Brownout: rail scale factor floor at full severity.
double brownout_droop(double severity) {
  return std::clamp(1.0 - 0.5 * severity, 0.3, 1.0);
}
// Runaway handler: cycles stolen on the next firmware tick — orders of
// magnitude past any per-period budget, so the watchdog latches immediately.
double overrun_cycles(double severity) { return 1e6 * (0.5 + severity); }

bool is_surface(FaultKind kind) {
  return kind == FaultKind::kBubbleAdhesion ||
         kind == FaultKind::kFoulingDeposit;
}
bool is_channel(FaultKind kind) {
  return kind == FaultKind::kAdcStuckBits ||
         kind == FaultKind::kAdcOffsetDrift;
}
bool is_permanent(FaultKind kind) {
  return kind == FaultKind::kMembraneOverpressure ||
         kind == FaultKind::kMoistureIngress;
}
}  // namespace

FaultCampaign& FaultCampaign::add(const FaultEvent& event) {
  if (event.severity < 0.0 || event.severity > 1.0)
    throw std::invalid_argument("FaultCampaign: severity outside [0,1]");
  events_.push_back(event);
  return *this;
}

FaultCampaign FaultCampaign::random(std::uint64_t seed, std::size_t count,
                                    std::size_t sensor_count,
                                    Seconds earliest, Seconds horizon,
                                    Seconds min_duration,
                                    Seconds max_duration) {
  if (sensor_count == 0)
    throw std::invalid_argument("FaultCampaign: no sensors");
  if (horizon.value() <= earliest.value())
    throw std::invalid_argument("FaultCampaign: empty schedule window");
  FaultCampaign campaign{seed};
  for (std::size_t k = 0; k < count; ++k) {
    // Event k draws only from its own counter-based stream: the schedule is
    // a pure function of (seed, k), independent of evaluation order.
    util::Rng rng = util::Rng::stream(seed, k);
    FaultEvent ev;
    ev.kind = static_cast<FaultKind>(rng.below(kFaultKindCount));
    ev.sensor = static_cast<std::size_t>(rng.below(sensor_count));
    ev.start = Seconds{rng.uniform(earliest.value(), horizon.value())};
    ev.duration =
        Seconds{rng.uniform(min_duration.value(), max_duration.value())};
    ev.severity = rng.uniform(0.5, 1.0);
    campaign.add(ev);
  }
  return campaign;
}

FaultInjector::FaultInjector(fleet::FleetEngine& engine,
                             const FaultCampaign& campaign)
    : engine_(engine), events_(campaign.events()) {
  for (const FaultEvent& ev : events_)
    if (ev.sensor >= engine.size())
      throw std::invalid_argument("FaultInjector: event sensor out of range");
  started_.assign(events_.size(), 0);
  expired_.assign(events_.size(), 0);
  injection_t_s_.assign(events_.size(), -1.0);
}

void FaultInjector::apply_start(std::size_t k, Seconds now) {
  const FaultEvent& ev = events_[k];
  auto& anemometer = engine_.node(ev.sensor).anemometer();
  switch (ev.kind) {
    case FaultKind::kMembraneOverpressure:
      anemometer.die().damage_membrane();
      break;
    case FaultKind::kMoistureIngress:
      anemometer.package().inject_moisture(moisture_amount(ev.severity));
      break;
    case FaultKind::kWatchdogOverrun:
      anemometer.platform().firmware().inject_overrun_cycles(
          overrun_cycles(ev.severity));
      break;
    default:
      break;  // surface/channel/rail kinds are applied by the refreshers
  }
  started_[k] = 1;
  injection_t_s_[k] = now.value();
  ++injections_;
  kInjected.add(1);
  anemometer.flight().record(anemometer.now().value(),
                             obs::FlightRecordKind::kFaultInjected,
                             static_cast<std::int32_t>(ev.kind), ev.severity,
                             fault_kind_label(ev.kind));
  AQUA_TRACE_INSTANT_SIM("fault.injected", now.value());
}

void FaultInjector::apply_expiry(std::size_t k) {
  expired_[k] = 1;  // the refreshers rebuild the sensor's aggregate state
}

void FaultInjector::refresh_surface(std::size_t sensor, Seconds now) {
  // Aggregate every active surface event into one coverage / one thickness
  // (max wins — two bubbles don't insulate twice). Expired events drop out,
  // which is the detach/clean.
  double coverage = 0.0;
  double thickness = 0.0;
  for (std::size_t k = 0; k < events_.size(); ++k) {
    const FaultEvent& ev = events_[k];
    if (ev.sensor != sensor || !is_surface(ev.kind)) continue;
    if (started_[k] == 0 || expired_[k] != 0) continue;
    // Linear growth over the first half of the window, then full severity.
    const double ramp = std::max(0.5 * ev.duration.value(), 1e-9);
    const double phase =
        std::clamp((now.value() - ev.start.value()) / ramp, 0.0, 1.0);
    if (ev.kind == FaultKind::kBubbleAdhesion)
      coverage = std::max(coverage, kBubbleCoverageMax * ev.severity * phase);
    else
      thickness =
          std::max(thickness, kDepositThicknessMax * ev.severity * phase);
  }
  auto& die = engine_.node(sensor).anemometer().die();
  die.fouling_a().set_bubble_coverage(coverage);
  die.fouling_b().set_bubble_coverage(coverage);
  die.fouling_a().set_deposit_thickness(thickness);
  die.fouling_b().set_deposit_thickness(thickness);
}

void FaultInjector::refresh_channel(std::size_t sensor) {
  isif::ChannelFault agg;
  double droop = 1.0;
  for (std::size_t k = 0; k < events_.size(); ++k) {
    const FaultEvent& ev = events_[k];
    if (ev.sensor != sensor) continue;
    if (started_[k] == 0 || expired_[k] != 0) continue;
    if (ev.kind == FaultKind::kAdcStuckBits)
      agg.stuck_high |= stuck_mask(ev.severity);
    else if (ev.kind == FaultKind::kAdcOffsetDrift)
      agg.offset_volts += kOffsetMaxVolts * ev.severity;
    else if (ev.kind == FaultKind::kDacBrownout)
      droop = std::min(droop, brownout_droop(ev.severity));
  }
  auto& platform = engine_.node(sensor).anemometer().platform();
  if (agg.any())
    platform.channel(0).inject_fault(agg);
  else
    platform.channel(0).clear_fault();
  platform.dac(0).set_supply_droop(droop);
}

void FaultInjector::update(Seconds now) {
  std::vector<std::uint8_t> touch_surface(engine_.size(), 0);
  std::vector<std::uint8_t> touch_channel(engine_.size(), 0);
  for (std::size_t k = 0; k < events_.size(); ++k) {
    const FaultEvent& ev = events_[k];
    if (started_[k] == 0 && now.value() >= ev.start.value()) {
      apply_start(k, now);
      if (ev.kind == FaultKind::kWatchdogOverrun)
        expired_[k] = 1;  // one-shot; the latch lives in the firmware
    }
    if (started_[k] != 0 && expired_[k] == 0 && !is_permanent(ev.kind) &&
        now.value() >= ev.start.value() + ev.duration.value()) {
      apply_expiry(k);
      if (is_surface(ev.kind)) touch_surface[ev.sensor] = 1;
      else touch_channel[ev.sensor] = 1;
    }
    if (started_[k] != 0 && expired_[k] == 0) {
      if (is_surface(ev.kind)) touch_surface[ev.sensor] = 1;  // ramps
      else if (is_channel(ev.kind) || ev.kind == FaultKind::kDacBrownout)
        touch_channel[ev.sensor] = 1;
    }
  }
  // Only touched sensors are rebuilt: a fleet with no active events executes
  // no injection code at all (the zero-perturbation contract).
  for (std::size_t s = 0; s < engine_.size(); ++s) {
    if (touch_surface[s] != 0) refresh_surface(s, now);
    if (touch_channel[s] != 0) refresh_channel(s);
  }
}

std::uint64_t fleet_trace_checksum(const fleet::FleetEngine& engine) {
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < engine.size(); ++i)
    for (const fleet::TraceSample& s : engine.node(i).trace()) {
      checksum ^= std::bit_cast<std::uint64_t>(s.bridge_voltage);
      checksum ^= std::bit_cast<std::uint64_t>(s.estimate_mps) * 0x9E37u;
      checksum ^= std::bit_cast<std::uint64_t>(s.true_mean_mps) * 0x85EBu;
    }
  return checksum;
}

CampaignSummary run_campaign(fleet::FleetEngine& engine,
                             fleet::FleetSupervisor& supervisor,
                             const FaultCampaign& campaign, Seconds duration,
                             util::ThreadPool* pool) {
  FaultInjector injector(engine, campaign);
  const std::vector<FaultEvent>& events = campaign.events();

  CampaignSummary summary;
  summary.sensors = engine.size();
  summary.outcomes.reserve(events.size());
  for (const FaultEvent& ev : events) {
    FaultOutcome outcome;
    outcome.event = ev;
    outcome.hard = fault_kind_is_hard(ev.kind);
    summary.outcomes.push_back(outcome);
  }

  std::vector<long long> injection_epoch(events.size(), -1);
  std::vector<int> prev_quarantines(engine.size(), 0);
  std::vector<int> prev_recoveries(engine.size(), 0);
  for (std::size_t i = 0; i < engine.size(); ++i) {
    prev_quarantines[i] = supervisor.supervision(i).quarantine_entries;
    prev_recoveries[i] = supervisor.supervision(i).recoveries;
  }

  const long long epochs = static_cast<long long>(
      std::ceil(duration.value() / engine.config().epoch.value()));
  // Injection, supervision and outcome scans all run serially between epochs
  // (the determinism contract), so the whole loop can ride one persistent
  // worker team instead of re-enqueueing shard tasks every epoch.
  const fleet::FleetEngine::TeamSession team{engine, pool};
  for (long long e = 0; e < epochs; ++e) {
    injector.update(engine.now());
    for (std::size_t k = 0; k < events.size(); ++k) {
      if (injection_epoch[k] < 0 && injector.started(k)) {
        injection_epoch[k] = e;
        summary.outcomes[k].injected = true;
        summary.outcomes[k].injected_t_s = injector.injection_time_s(k);
        const fleet::NodeHealthState st = supervisor.state(events[k].sensor);
        if (st == fleet::NodeHealthState::kQuarantined ||
            st == fleet::NodeHealthState::kFailed) {
          // Injected into a sensor already out of service: supervision has
          // already acted and the fault cannot reach the localizer, so the
          // event counts as contained at injection time.
          summary.outcomes[k].quarantined_t_s = injector.injection_time_s(k);
          summary.outcomes[k].detection_epochs = 0;
        }
      }
    }
    engine.step_epoch(pool);
    supervisor.poll();
    for (std::size_t i = 0; i < engine.size(); ++i) {
      const fleet::NodeSupervision& sup = supervisor.supervision(i);
      if (sup.quarantine_entries > prev_quarantines[i]) {
        prev_quarantines[i] = sup.quarantine_entries;
        for (std::size_t k = 0; k < events.size(); ++k) {
          FaultOutcome& outcome = summary.outcomes[k];
          if (outcome.event.sensor != i || !outcome.injected) continue;
          if (outcome.quarantined_t_s >= 0.0) continue;
          outcome.quarantined_t_s = sup.quarantined_t_s;
          outcome.detection_epochs = e - injection_epoch[k] + 1;
        }
      }
      if (sup.recoveries > prev_recoveries[i]) {
        prev_recoveries[i] = sup.recoveries;
        for (std::size_t k = 0; k < events.size(); ++k) {
          FaultOutcome& outcome = summary.outcomes[k];
          if (outcome.event.sensor != i) continue;
          if (outcome.quarantined_t_s < 0.0 || outcome.recovered_t_s >= 0.0)
            continue;
          outcome.recovered_t_s = sup.recovered_t_s;
        }
      }
    }
  }

  summary.epochs = epochs;
  summary.sim_time_s = engine.now().value();
  summary.injected = injector.injections();
  std::vector<int> events_on_sensor(engine.size(), 0);
  for (const FaultOutcome& outcome : summary.outcomes) {
    if (!outcome.injected) continue;
    ++events_on_sensor[outcome.event.sensor];
    if (outcome.hard) {
      ++summary.hard_injected;
      if (outcome.quarantined_t_s >= 0.0) ++summary.hard_detected;
    } else {
      ++summary.transient_injected;
      if (outcome.quarantined_t_s >= 0.0) {
        ++summary.transient_detected;
        if (outcome.recovered_t_s >= 0.0) ++summary.transient_recovered;
      }
    }
  }
  // Flaps: quarantine activity on sensors that had no fault injected at all —
  // pure supervisor false positives. The CI gate requires zero.
  for (std::size_t i = 0; i < engine.size(); ++i)
    if (events_on_sensor[i] == 0)
      summary.quarantine_flaps +=
          supervisor.supervision(i).quarantine_entries;
  for (std::size_t i = 0; i < engine.size(); ++i)
    if (supervisor.state(i) == fleet::NodeHealthState::kFailed)
      ++summary.failed_permanently;
  summary.trace_checksum = fleet_trace_checksum(engine);
  return summary;
}

std::string CampaignSummary::to_json() const {
  std::string out = "{\n";
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "  \"epochs\": %lld,\n  \"sim_time_s\": %.6f,\n"
                "  \"sensors\": %zu,\n  \"injected\": %lld,\n"
                "  \"hard_injected\": %lld,\n  \"hard_detected\": %lld,\n"
                "  \"transient_injected\": %lld,\n"
                "  \"transient_detected\": %lld,\n"
                "  \"transient_recovered\": %lld,\n"
                "  \"failed_permanently\": %lld,\n"
                "  \"quarantine_flaps\": %lld,\n"
                "  \"trace_checksum\": \"%016llx\",\n",
                epochs, sim_time_s, sensors, injected, hard_injected,
                hard_detected, transient_injected, transient_detected,
                transient_recovered, failed_permanently, quarantine_flaps,
                static_cast<unsigned long long>(trace_checksum));
  out += buf;
  out += "  \"outcomes\": [\n";
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const FaultOutcome& o = outcomes[k];
    std::snprintf(
        buf, sizeof buf,
        "    {\"sensor\": %zu, \"kind\": \"%s\", \"hard\": %s, "
        "\"severity\": %.3f, \"injected_t_s\": %.3f, "
        "\"quarantined_t_s\": %.3f, \"detection_epochs\": %lld, "
        "\"recovered_t_s\": %.3f}%s\n",
        o.event.sensor, fault_kind_label(o.event.kind),
        o.hard ? "true" : "false", o.event.severity, o.injected_t_s,
        o.quarantined_t_s, o.detection_epochs, o.recovered_t_s,
        k + 1 < outcomes.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace aqua::fault
