#include "fault/campaign.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace aqua::fault {

using util::Seconds;

namespace {
const obs::Counter kInjected{"fault.injected"};

// --- severity → physical scale maps ----------------------------------------
// Bubble film: fraction of the die surface blanketed at full severity.
constexpr double kBubbleCoverageMax = 0.9;
// Mineral/biofilm layer thickness at full severity.
constexpr double kDepositThicknessMax = 50e-6;  // m
// Moisture ingress: enough to pull the package insulation below the healthy
// limit even at the lowest severity (hard faults must be detectable).
double moisture_amount(double severity) { return 0.8 + 0.2 * severity; }
// Stuck output bit: severity selects which mid/high bit of the 16-bit word
// latches high (higher severity = more significant bit = larger corruption).
std::uint32_t stuck_mask(double severity) {
  const int bit = 10 + static_cast<int>(std::lround(
                           std::clamp(severity, 0.0, 1.0) * 4.0));
  return 1u << bit;
}
// Input-referred front-end offset at full severity.
constexpr double kOffsetMaxVolts = 0.05;
// Brownout: rail scale factor floor at full severity.
double brownout_droop(double severity) {
  return std::clamp(1.0 - 0.5 * severity, 0.3, 1.0);
}
// Runaway handler: cycles stolen on the next firmware tick — orders of
// magnitude past any per-period budget, so the watchdog latches immediately.
double overrun_cycles(double severity) { return 1e6 * (0.5 + severity); }

bool is_surface(FaultKind kind) {
  return kind == FaultKind::kBubbleAdhesion ||
         kind == FaultKind::kFoulingDeposit;
}
bool is_channel(FaultKind kind) {
  return kind == FaultKind::kAdcStuckBits ||
         kind == FaultKind::kAdcOffsetDrift;
}
bool is_permanent(FaultKind kind) {
  return kind == FaultKind::kMembraneOverpressure ||
         kind == FaultKind::kMoistureIngress;
}
}  // namespace

FaultCampaign& FaultCampaign::add(const FaultEvent& event) {
  if (event.severity < 0.0 || event.severity > 1.0)
    throw std::invalid_argument("FaultCampaign: severity outside [0,1]");
  events_.push_back(event);
  return *this;
}

FaultCampaign FaultCampaign::random(std::uint64_t seed, std::size_t count,
                                    std::size_t sensor_count,
                                    Seconds earliest, Seconds horizon,
                                    Seconds min_duration,
                                    Seconds max_duration) {
  if (sensor_count == 0)
    throw std::invalid_argument("FaultCampaign: no sensors");
  if (horizon.value() <= earliest.value())
    throw std::invalid_argument("FaultCampaign: empty schedule window");
  FaultCampaign campaign{seed};
  for (std::size_t k = 0; k < count; ++k) {
    // Event k draws only from its own counter-based stream: the schedule is
    // a pure function of (seed, k), independent of evaluation order.
    util::Rng rng = util::Rng::stream(seed, k);
    FaultEvent ev;
    ev.kind = static_cast<FaultKind>(rng.below(kFaultKindCount));
    ev.sensor = static_cast<std::size_t>(rng.below(sensor_count));
    ev.start = Seconds{rng.uniform(earliest.value(), horizon.value())};
    ev.duration =
        Seconds{rng.uniform(min_duration.value(), max_duration.value())};
    ev.severity = rng.uniform(0.5, 1.0);
    campaign.add(ev);
  }
  return campaign;
}

FaultInjector::FaultInjector(fleet::FleetEngine& engine,
                             const FaultCampaign& campaign)
    : engine_(engine), events_(campaign.events()) {
  for (const FaultEvent& ev : events_)
    if (ev.sensor >= engine.size())
      throw std::invalid_argument("FaultInjector: event sensor out of range");
  started_.assign(events_.size(), 0);
  expired_.assign(events_.size(), 0);
  injection_t_s_.assign(events_.size(), -1.0);
}

void FaultInjector::apply_start(std::size_t k, Seconds now) {
  const FaultEvent& ev = events_[k];
  auto& anemometer = engine_.node(ev.sensor).anemometer();
  switch (ev.kind) {
    case FaultKind::kMembraneOverpressure:
      anemometer.die().damage_membrane();
      break;
    case FaultKind::kMoistureIngress:
      anemometer.package().inject_moisture(moisture_amount(ev.severity));
      break;
    case FaultKind::kWatchdogOverrun:
      anemometer.platform().firmware().inject_overrun_cycles(
          overrun_cycles(ev.severity));
      break;
    default:
      break;  // surface/channel/rail kinds are applied by the refreshers
  }
  started_[k] = 1;
  injection_t_s_[k] = now.value();
  ++injections_;
  kInjected.add(1);
  anemometer.flight().record(anemometer.now().value(),
                             obs::FlightRecordKind::kFaultInjected,
                             static_cast<std::int32_t>(ev.kind), ev.severity,
                             fault_kind_label(ev.kind));
  AQUA_TRACE_INSTANT_SIM("fault.injected", now.value());
}

void FaultInjector::apply_expiry(std::size_t k) {
  expired_[k] = 1;  // the refreshers rebuild the sensor's aggregate state
}

void FaultInjector::refresh_surface(std::size_t sensor, Seconds now) {
  // Aggregate every active surface event into one coverage / one thickness
  // (max wins — two bubbles don't insulate twice). Expired events drop out,
  // which is the detach/clean.
  double coverage = 0.0;
  double thickness = 0.0;
  for (std::size_t k = 0; k < events_.size(); ++k) {
    const FaultEvent& ev = events_[k];
    if (ev.sensor != sensor || !is_surface(ev.kind)) continue;
    if (started_[k] == 0 || expired_[k] != 0) continue;
    // Linear growth over the first half of the window, then full severity.
    const double ramp = std::max(0.5 * ev.duration.value(), 1e-9);
    const double phase =
        std::clamp((now.value() - ev.start.value()) / ramp, 0.0, 1.0);
    if (ev.kind == FaultKind::kBubbleAdhesion)
      coverage = std::max(coverage, kBubbleCoverageMax * ev.severity * phase);
    else
      thickness =
          std::max(thickness, kDepositThicknessMax * ev.severity * phase);
  }
  auto& die = engine_.node(sensor).anemometer().die();
  die.fouling_a().set_bubble_coverage(coverage);
  die.fouling_b().set_bubble_coverage(coverage);
  die.fouling_a().set_deposit_thickness(thickness);
  die.fouling_b().set_deposit_thickness(thickness);
}

void FaultInjector::refresh_channel(std::size_t sensor) {
  isif::ChannelFault agg;
  double droop = 1.0;
  for (std::size_t k = 0; k < events_.size(); ++k) {
    const FaultEvent& ev = events_[k];
    if (ev.sensor != sensor) continue;
    if (started_[k] == 0 || expired_[k] != 0) continue;
    if (ev.kind == FaultKind::kAdcStuckBits)
      agg.stuck_high |= stuck_mask(ev.severity);
    else if (ev.kind == FaultKind::kAdcOffsetDrift)
      agg.offset_volts += kOffsetMaxVolts * ev.severity;
    else if (ev.kind == FaultKind::kDacBrownout)
      droop = std::min(droop, brownout_droop(ev.severity));
  }
  auto& platform = engine_.node(sensor).anemometer().platform();
  if (agg.any())
    platform.channel(0).inject_fault(agg);
  else
    platform.channel(0).clear_fault();
  platform.dac(0).set_supply_droop(droop);
}

void FaultInjector::update(Seconds now) {
  std::vector<std::uint8_t> touch_surface(engine_.size(), 0);
  std::vector<std::uint8_t> touch_channel(engine_.size(), 0);
  for (std::size_t k = 0; k < events_.size(); ++k) {
    const FaultEvent& ev = events_[k];
    if (started_[k] == 0 && now.value() >= ev.start.value()) {
      apply_start(k, now);
      if (ev.kind == FaultKind::kWatchdogOverrun)
        expired_[k] = 1;  // one-shot; the latch lives in the firmware
    }
    if (started_[k] != 0 && expired_[k] == 0 && !is_permanent(ev.kind) &&
        now.value() >= ev.start.value() + ev.duration.value()) {
      apply_expiry(k);
      if (is_surface(ev.kind)) touch_surface[ev.sensor] = 1;
      else touch_channel[ev.sensor] = 1;
    }
    if (started_[k] != 0 && expired_[k] == 0) {
      if (is_surface(ev.kind)) touch_surface[ev.sensor] = 1;  // ramps
      else if (is_channel(ev.kind) || ev.kind == FaultKind::kDacBrownout)
        touch_channel[ev.sensor] = 1;
    }
  }
  // Only touched sensors are rebuilt: a fleet with no active events executes
  // no injection code at all (the zero-perturbation contract).
  for (std::size_t s = 0; s < engine_.size(); ++s) {
    if (touch_surface[s] != 0) refresh_surface(s, now);
    if (touch_channel[s] != 0) refresh_channel(s);
  }
}

std::uint64_t fleet_trace_checksum(const fleet::FleetEngine& engine) {
  std::uint64_t checksum = 0;
  for (std::size_t i = 0; i < engine.size(); ++i)
    for (const fleet::TraceSample& s : engine.node(i).trace()) {
      checksum ^= std::bit_cast<std::uint64_t>(s.bridge_voltage);
      checksum ^= std::bit_cast<std::uint64_t>(s.estimate_mps) * 0x9E37u;
      checksum ^= std::bit_cast<std::uint64_t>(s.true_mean_mps) * 0x85EBu;
    }
  return checksum;
}

void FaultInjector::save_state(state::Writer& w) const {
  w.size(events_.size());
  for (const std::uint8_t s : started_) w.u8(s);
  for (const std::uint8_t e : expired_) w.u8(e);
  for (const double t : injection_t_s_) w.f64(t);
  w.i64(injections_);
}

void FaultInjector::load_state(state::Reader& r) {
  if (r.size(10) != events_.size())
    throw state::Error("FaultInjector: event count mismatch");
  for (std::uint8_t& s : started_) s = r.u8();
  for (std::uint8_t& e : expired_) e = r.u8();
  for (double& t : injection_t_s_) t = r.f64();
  injections_ = r.i64();
}

namespace {
// Campaign-level checkpoint sections, appended after the engine's.
constexpr std::uint32_t kSectionSupervisor =
    state::section_id('S', 'U', 'P', 'V');
constexpr std::uint32_t kSectionInjector =
    state::section_id('I', 'N', 'J', 'C');
constexpr std::uint32_t kSectionCampaign =
    state::section_id('C', 'A', 'M', 'P');
}  // namespace

CampaignRunner::CampaignRunner(fleet::FleetEngine& engine,
                               fleet::FleetSupervisor& supervisor,
                               const FaultCampaign& campaign,
                               Seconds duration)
    : engine_(engine), supervisor_(supervisor), injector_(engine, campaign) {
  const std::vector<FaultEvent>& events = campaign.events();
  summary_.sensors = engine.size();
  summary_.outcomes.reserve(events.size());
  for (const FaultEvent& ev : events) {
    FaultOutcome outcome;
    outcome.event = ev;
    outcome.hard = fault_kind_is_hard(ev.kind);
    summary_.outcomes.push_back(outcome);
  }

  injection_epoch_.assign(events.size(), -1);
  prev_quarantines_.assign(engine.size(), 0);
  prev_recoveries_.assign(engine.size(), 0);
  for (std::size_t i = 0; i < engine.size(); ++i) {
    prev_quarantines_[i] = supervisor.supervision(i).quarantine_entries;
    prev_recoveries_[i] = supervisor.supervision(i).recoveries;
  }

  total_epochs_ = static_cast<long long>(
      std::ceil(duration.value() / engine.config().epoch.value()));
}

void CampaignRunner::step(util::ThreadPool* pool) {
  if (done())
    throw std::logic_error("CampaignRunner::step: campaign already complete");
  const long long e = epoch_;
  injector_.update(engine_.now());
  for (std::size_t k = 0; k < summary_.outcomes.size(); ++k) {
    if (injection_epoch_[k] < 0 && injector_.started(k)) {
      injection_epoch_[k] = e;
      summary_.outcomes[k].injected = true;
      summary_.outcomes[k].injected_t_s = injector_.injection_time_s(k);
      const fleet::NodeHealthState st =
          supervisor_.state(summary_.outcomes[k].event.sensor);
      if (st == fleet::NodeHealthState::kQuarantined ||
          st == fleet::NodeHealthState::kFailed) {
        // Injected into a sensor already out of service: supervision has
        // already acted and the fault cannot reach the localizer, so the
        // event counts as contained at injection time.
        summary_.outcomes[k].quarantined_t_s = injector_.injection_time_s(k);
        summary_.outcomes[k].detection_epochs = 0;
      }
    }
  }
  engine_.step_epoch(pool);
  supervisor_.poll();
  for (std::size_t i = 0; i < engine_.size(); ++i) {
    const fleet::NodeSupervision& sup = supervisor_.supervision(i);
    if (sup.quarantine_entries > prev_quarantines_[i]) {
      prev_quarantines_[i] = sup.quarantine_entries;
      for (std::size_t k = 0; k < summary_.outcomes.size(); ++k) {
        FaultOutcome& outcome = summary_.outcomes[k];
        if (outcome.event.sensor != i || !outcome.injected) continue;
        if (outcome.quarantined_t_s >= 0.0) continue;
        outcome.quarantined_t_s = sup.quarantined_t_s;
        outcome.detection_epochs = e - injection_epoch_[k] + 1;
      }
    }
    if (sup.recoveries > prev_recoveries_[i]) {
      prev_recoveries_[i] = sup.recoveries;
      for (FaultOutcome& outcome : summary_.outcomes) {
        if (outcome.event.sensor != i) continue;
        if (outcome.quarantined_t_s < 0.0 || outcome.recovered_t_s >= 0.0)
          continue;
        outcome.recovered_t_s = sup.recovered_t_s;
      }
    }
  }
  ++epoch_;
}

CampaignSummary CampaignRunner::finish() const {
  CampaignSummary summary = summary_;
  summary.epochs = total_epochs_;
  summary.sim_time_s = engine_.now().value();
  summary.injected = injector_.injections();
  std::vector<int> events_on_sensor(engine_.size(), 0);
  for (const FaultOutcome& outcome : summary.outcomes) {
    if (!outcome.injected) continue;
    ++events_on_sensor[outcome.event.sensor];
    if (outcome.hard) {
      ++summary.hard_injected;
      if (outcome.quarantined_t_s >= 0.0) ++summary.hard_detected;
    } else {
      ++summary.transient_injected;
      if (outcome.quarantined_t_s >= 0.0) {
        ++summary.transient_detected;
        if (outcome.recovered_t_s >= 0.0) ++summary.transient_recovered;
      }
    }
  }
  // Flaps: quarantine activity on sensors that had no fault injected at all —
  // pure supervisor false positives. The CI gate requires zero.
  for (std::size_t i = 0; i < engine_.size(); ++i)
    if (events_on_sensor[i] == 0)
      summary.quarantine_flaps +=
          supervisor_.supervision(i).quarantine_entries;
  for (std::size_t i = 0; i < engine_.size(); ++i)
    if (supervisor_.state(i) == fleet::NodeHealthState::kFailed)
      ++summary.failed_permanently;
  summary.trace_checksum = fleet_trace_checksum(engine_);
  return summary;
}

std::vector<std::uint8_t> CampaignRunner::checkpoint() const {
  state::CheckpointWriter ck;
  engine_.write_checkpoint(ck);
  {
    state::Writer& w = ck.begin_section(kSectionSupervisor);
    supervisor_.save_state(w);
    ck.end_section();
  }
  {
    state::Writer& w = ck.begin_section(kSectionInjector);
    injector_.save_state(w);
    ck.end_section();
  }
  {
    state::Writer& w = ck.begin_section(kSectionCampaign);
    w.i64(epoch_);
    w.i64(total_epochs_);
    w.size(injection_epoch_.size());
    for (const long long e : injection_epoch_) w.i64(e);
    w.size(prev_quarantines_.size());
    for (const int q : prev_quarantines_) w.i32(q);
    for (const int v : prev_recoveries_) w.i32(v);
    // Only the mutable outcome fields; event/hard are rebuilt from the
    // (identical) campaign at construction.
    for (const FaultOutcome& o : summary_.outcomes) {
      w.boolean(o.injected);
      w.f64(o.injected_t_s);
      w.f64(o.quarantined_t_s);
      w.i64(o.detection_epochs);
      w.f64(o.recovered_t_s);
    }
    ck.end_section();
  }
  return ck.finish();
}

void CampaignRunner::restore(std::span<const std::uint8_t> image) {
  const state::CheckpointReader ck{image};
  engine_.read_checkpoint(ck);
  {
    state::Reader r = ck.section(kSectionSupervisor);
    supervisor_.load_state(r);
    r.expect_end();
  }
  {
    state::Reader r = ck.section(kSectionInjector);
    injector_.load_state(r);
    r.expect_end();
  }
  {
    state::Reader r = ck.section(kSectionCampaign);
    epoch_ = r.i64();
    const long long total = r.i64();
    if (total != total_epochs_)
      throw state::Error("CampaignRunner: campaign length mismatch");
    if (epoch_ < 0 || epoch_ > total_epochs_)
      throw state::Error("CampaignRunner: epoch cursor out of range");
    if (r.size(8) != injection_epoch_.size())
      throw state::Error("CampaignRunner: event count mismatch");
    for (long long& e : injection_epoch_) e = r.i64();
    if (r.size(4) != prev_quarantines_.size())
      throw state::Error("CampaignRunner: sensor count mismatch");
    for (int& q : prev_quarantines_) q = r.i32();
    for (int& v : prev_recoveries_) v = r.i32();
    for (FaultOutcome& o : summary_.outcomes) {
      o.injected = r.boolean();
      o.injected_t_s = r.f64();
      o.quarantined_t_s = r.f64();
      o.detection_epochs = r.i64();
      o.recovered_t_s = r.f64();
    }
    r.expect_end();
  }
}

CampaignSummary run_campaign(fleet::FleetEngine& engine,
                             fleet::FleetSupervisor& supervisor,
                             const FaultCampaign& campaign, Seconds duration,
                             util::ThreadPool* pool) {
  CampaignRunner runner{engine, supervisor, campaign, duration};
  // Injection, supervision and outcome scans all run serially between epochs
  // (the determinism contract), so the whole loop can ride one persistent
  // worker team instead of re-enqueueing shard tasks every epoch.
  const fleet::FleetEngine::TeamSession team{engine, pool};
  while (!runner.done()) runner.step(pool);
  return runner.finish();
}

std::string CampaignSummary::to_json() const {
  std::string out = "{\n";
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "  \"epochs\": %lld,\n  \"sim_time_s\": %.6f,\n"
                "  \"sensors\": %zu,\n  \"injected\": %lld,\n"
                "  \"hard_injected\": %lld,\n  \"hard_detected\": %lld,\n"
                "  \"transient_injected\": %lld,\n"
                "  \"transient_detected\": %lld,\n"
                "  \"transient_recovered\": %lld,\n"
                "  \"failed_permanently\": %lld,\n"
                "  \"quarantine_flaps\": %lld,\n"
                "  \"trace_checksum\": \"%016llx\",\n",
                epochs, sim_time_s, sensors, injected, hard_injected,
                hard_detected, transient_injected, transient_detected,
                transient_recovered, failed_permanently, quarantine_flaps,
                static_cast<unsigned long long>(trace_checksum));
  out += buf;
  out += "  \"outcomes\": [\n";
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const FaultOutcome& o = outcomes[k];
    std::snprintf(
        buf, sizeof buf,
        "    {\"sensor\": %zu, \"kind\": \"%s\", \"hard\": %s, "
        "\"severity\": %.3f, \"injected_t_s\": %.3f, "
        "\"quarantined_t_s\": %.3f, \"detection_epochs\": %lld, "
        "\"recovered_t_s\": %.3f}%s\n",
        o.event.sensor, fault_kind_label(o.event.kind),
        o.hard ? "true" : "false", o.event.severity, o.injected_t_s,
        o.quarantined_t_s, o.detection_epochs, o.recovered_t_s,
        k + 1 < outcomes.size() ? "," : "");
    out += buf;
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace aqua::fault
