#include "fault/fault.hpp"

namespace aqua::fault {

const char* fault_kind_label(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBubbleAdhesion: return "bubble-adhesion";
    case FaultKind::kFoulingDeposit: return "fouling-deposit";
    case FaultKind::kMembraneOverpressure: return "membrane-overpressure";
    case FaultKind::kMoistureIngress: return "moisture-ingress";
    case FaultKind::kAdcStuckBits: return "adc-stuck-bits";
    case FaultKind::kAdcOffsetDrift: return "adc-offset-drift";
    case FaultKind::kDacBrownout: return "dac-brownout";
    case FaultKind::kWatchdogOverrun: return "watchdog-overrun";
  }
  return "unknown";
}

bool fault_kind_is_hard(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMembraneOverpressure:
    case FaultKind::kMoistureIngress:
    case FaultKind::kAdcStuckBits:
    case FaultKind::kWatchdogOverrun:
      return true;
    case FaultKind::kBubbleAdhesion:
    case FaultKind::kFoulingDeposit:
    case FaultKind::kAdcOffsetDrift:
    case FaultKind::kDacBrownout:
      return false;
  }
  return false;
}

bool fault_kind_is_transient(FaultKind kind) {
  // Everything except physical destruction can clear: transient soft faults
  // expire on their own, the stuck bit re-seats at expiry and the watchdog
  // clears on reboot. Membrane and package damage never come back.
  return kind != FaultKind::kMembraneOverpressure &&
         kind != FaultKind::kMoistureIngress;
}

}  // namespace aqua::fault
