#include "core/drive_modes.hpp"

#include <cmath>
#include <stdexcept>

#include "analog/bridge.hpp"
#include "phys/resistor.hpp"
#include "util/math.hpp"

namespace aqua::cta {

using util::Amperes;
using util::Kelvin;
using util::Volts;
using util::Watts;

namespace {

/// Relax the die under the bridge drive at a fixed supply, honouring the
/// electro-thermal coupling (resistance depends on temperature depends on
/// power depends on resistance).
double settled_bridge_error(maf::MafDie& die, const maf::Environment& env,
                            util::Ohms top_a, util::Ohms top_b, double supply) {
  analog::BridgeSolution sol{};
  for (int i = 0; i < 12; ++i) {
    const analog::BridgeArms arms_a{top_a, die.heater_a_resistance(), top_b,
                                    die.reference_resistance()};
    const analog::BridgeArms arms_b{top_a, die.heater_b_resistance(), top_b,
                                    die.reference_resistance()};
    sol = analog::solve_bridge(arms_a, Volts{supply});
    const auto sol_b = analog::solve_bridge(arms_b, Volts{supply});
    die.set_heater_powers(sol.p_bot_a, sol_b.p_bot_a,
                          sol.p_bot_b + sol_b.p_bot_b);
    die.settle(env);
  }
  return sol.differential.value();
}

util::Ohms pick_top_a(const maf::MafDie& die, const CtaConfig& cfg) {
  const Kelvin t_hot{cfg.commissioning_temperature.value() +
                     cfg.overtemperature.value()};
  if (cfg.factory_trim) {
    return analog::balancing_top_resistor(
        die.heater_a_resistance_at(t_hot), cfg.top_resistor_b,
        die.reference_resistance_at(cfg.commissioning_temperature));
  }
  const phys::TcrResistor heater_nominal(die.spec().heater);
  const phys::TcrResistor reference_nominal(die.spec().reference);
  return analog::balancing_top_resistor(
      heater_nominal.resistance(t_hot), cfg.top_resistor_b,
      reference_nominal.resistance(cfg.commissioning_temperature));
}

SteadyPoint summarize(const maf::MafDie& die, const maf::Environment& env,
                      double supply, double power, double error) {
  const Kelvin th = die.temperatures().heater_a;
  return SteadyPoint{supply, power, th,
                     Kelvin{th.value() - env.fluid_temperature.value()}, error};
}

}  // namespace

SteadyPoint solve_constant_temperature(maf::MafDie& die,
                                       const maf::Environment& env,
                                       const CtaConfig& config,
                                       Volts max_supply) {
  const util::Ohms top_a = pick_top_a(die, config);
  const util::Ohms top_b = config.top_resistor_b;

  // Bridge error is monotone in the supply (more supply → hotter heater →
  // larger Rh → error rises). Bracket then bisect.
  const double lo = 0.02;
  const double hi = max_supply.value();
  const auto err = [&](double vs) {
    return settled_bridge_error(die, env, top_a, top_b, vs);
  };
  if (err(hi) < 0.0)
    throw std::runtime_error(
        "solve_constant_temperature: cannot reach setpoint within supply range");
  const double vs = util::bisect(err, lo, hi, 1e-7);
  const double residual = err(vs);

  const analog::BridgeArms arms{top_a, die.heater_a_resistance(), top_b,
                                die.reference_resistance()};
  const auto sol = analog::solve_bridge(arms, Volts{vs});
  return summarize(die, env, vs, sol.p_bot_a.value(), residual);
}

SteadyPoint solve_constant_current(maf::MafDie& die, const maf::Environment& env,
                                   Amperes current) {
  if (current.value() < 0.0)
    throw std::invalid_argument("solve_constant_current: negative current");
  double power = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double r = die.heater_a_resistance().value();
    power = current.value() * current.value() * r;
    die.set_heater_powers(Watts{power}, Watts{0.0}, Watts{0.0});
    die.settle(env);
  }
  const double supply = current.value() * die.heater_a_resistance().value();
  return summarize(die, env, supply, power, 0.0);
}

SteadyPoint solve_constant_power(maf::MafDie& die, const maf::Environment& env,
                                 Watts power) {
  if (power.value() < 0.0)
    throw std::invalid_argument("solve_constant_power: negative power");
  die.set_heater_powers(power, Watts{0.0}, Watts{0.0});
  die.settle(env);
  const double r = die.heater_a_resistance().value();
  const double supply = std::sqrt(power.value() * r);
  return summarize(die, env, supply, power.value(), 0.0);
}

}  // namespace aqua::cta
