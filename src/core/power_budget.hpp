// power_budget.hpp — the "next steps" energy model (paper §7): a dedicated
// ASIC with "advanced low power techniques with deep sleep mode" supplied by
// "rechargeable batteries (4 alkaline AA) that guarantees autonomy of one
// year for a typical sensor usage". This module computes that autonomy from a
// duty-cycled current budget so the claim can be regenerated (experiment E13)
// and the duty-cycle / measurement-rate trade explored.
#pragma once

#include "util/units.hpp"

namespace aqua::cta {

struct PowerBudgetSpec {
  /// Battery pack: 4 × AA alkaline, ~2.6 Ah each at low drain, in series
  /// (6 V) — energy is what matters for the converter-fed ASIC.
  double battery_energy_wh = 4.0 * 2.6 * 1.5;
  /// Usable fraction after converter efficiency, self-discharge and
  /// end-of-life voltage margin over a year.
  double usable_fraction = 0.70;

  /// Active measurement burst: the CTA loop + heater drive.
  double active_power_w = 0.120;      ///< dominated by the heater (≈ P @ mid-flow)
  util::Seconds active_burst = util::Seconds{2.0};  ///< loop settle + average

  /// Deep sleep: RTC + watchdog + leakage.
  double sleep_power_w = 12e-6;

  /// Measurements per hour ("typical sensor usage": a reading every few
  /// minutes is plenty for distribution monitoring).
  double measurements_per_hour = 12.0;

  /// Radio/reporting burst per measurement (short LPWAN frame).
  double report_energy_j = 0.15;
};

struct PowerBudgetResult {
  double average_power_w;
  double duty_cycle;            ///< fraction of time in the active burst
  double autonomy_days;
  double energy_per_measurement_j;
};

[[nodiscard]] PowerBudgetResult evaluate_power_budget(const PowerBudgetSpec& spec);

/// Measurement cadence that exactly consumes the pack in `target_days`.
[[nodiscard]] double measurements_per_hour_for_autonomy(
    const PowerBudgetSpec& spec, double target_days);

}  // namespace aqua::cta
