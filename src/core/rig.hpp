// rig.hpp — the Vinci water-station test rig (paper §5, Fig. 10): "a dedicated
// line for the measurements ... in which pressure and water speed could be
// fine tuned", instrumented with the MAF prototype, the Promag-50-class
// reference magmeter, and (for the comparison table) a turbine meter. The rig
// co-simulates the line at the control rate and the anemometer at the
// modulator clock, and provides the calibration sweep used to fit King's law.
#pragma once

#include <memory>
#include <span>

#include "baseline/magmeter.hpp"
#include "baseline/turbine.hpp"
#include "core/calibration.hpp"
#include "core/cta.hpp"
#include "hydro/water_line.hpp"
#include "util/rng.hpp"

namespace aqua::cta {

struct RigConfig {
  hydro::WaterLineConfig line{};
  maf::MafSpec maf{};
  isif::IsifConfig isif{};
  CtaConfig cta{};
  baseline::MagMeterSpec magmeter{};
  baseline::TurbineSpec turbine{};
  std::uint64_t seed = 42;
};

/// ISIF channel preset for long scenario runs: 64 kHz modulator, ÷32 CIC —
/// same 2 kHz control rate as the default 256 kHz/÷128 channel but 4× fewer
/// simulation ticks (at ~2 bits of ΣΔ resolution cost).
[[nodiscard]] isif::IsifConfig fast_isif_config();

/// Coarsest channel preset for physics-dominated scenario runs (fouling,
/// membrane, packaging): 16 kHz modulator, ÷8 CIC — still the 2 kHz control
/// rate, 16× fewer simulation ticks than the default channel at ~4 bits of
/// ΣΔ resolution cost. Loop dynamics and fouling physics are unchanged; use
/// only where ADC resolution is not what the scenario tests.
[[nodiscard]] isif::IsifConfig coarse_isif_config();

class VinciRig {
 public:
  explicit VinciRig(const RigConfig& config);

  /// Settles the loop at zero flow and nulls the direction channel.
  void commission(util::Seconds settle = util::Seconds{3.0});

  /// Advances line, anemometer and reference meters together by `duration`.
  void run(util::Seconds duration);

  /// Static calibration sweep: for each mean-line speed, holds a clean
  /// environment (profile factor applied, turbulence off) for `dwell` and
  /// records the settled bridge voltage. Returns the fitted King's law.
  [[nodiscard]] KingFit calibrate(std::span<const double> speeds_mps,
                                  util::Seconds dwell = util::Seconds{2.0});

  /// Forward + reverse calibration pair. The reverse transfer differs because
  /// the controlled heater rides in its twin's wake (needs less drive), so a
  /// bidirectional installation calibrates both senses.
  struct BidirectionalFit {
    KingFit forward;
    KingFit reverse;
  };
  [[nodiscard]] BidirectionalFit calibrate_bidirectional(
      std::span<const double> speeds_mps,
      util::Seconds dwell = util::Seconds{2.0});

  /// Mean bridge voltage over the trailing fraction of a dwell at a fixed
  /// environment (helper for calibration-style measurements).
  [[nodiscard]] double settled_voltage(const maf::Environment& env,
                                       util::Seconds dwell,
                                       double trailing_fraction = 0.4);

  /// Probe-point/mean velocity factor at the given mean line speed (what the
  /// insertion calibration absorbs).
  [[nodiscard]] double profile_factor_at(util::MetresPerSecond mean) const;

  [[nodiscard]] hydro::WaterLine& line() { return line_; }
  [[nodiscard]] CtaAnemometer& anemometer() { return *anemometer_; }
  [[nodiscard]] baseline::MagMeter& magmeter() { return magmeter_; }
  [[nodiscard]] baseline::TurbineMeter& turbine() { return turbine_; }
  [[nodiscard]] const RigConfig& config() const { return config_; }

  /// Latest reference-meter readings (updated by run()).
  [[nodiscard]] util::MetresPerSecond magmeter_reading() const;
  [[nodiscard]] util::MetresPerSecond turbine_reading() const;

  [[nodiscard]] util::Seconds control_period() const;

 private:
  RigConfig config_;
  hydro::WaterLine line_;
  std::unique_ptr<CtaAnemometer> anemometer_;
  baseline::MagMeter magmeter_;
  baseline::TurbineMeter turbine_;
  double mag_reading_ = 0.0;
  double turbine_reading_ = 0.0;
};

}  // namespace aqua::cta
