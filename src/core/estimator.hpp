// estimator.hpp — converts the conditioned loop outputs into an engineering
// flow reading: King's-law inversion of the (0.1 Hz filtered) bridge voltage,
// sign from the direction channel, and streaming statistics that yield the
// resolution / repeatability figures the paper quotes (±% of the 0–250 cm/s
// full scale).
#pragma once

#include "core/calibration.hpp"
#include "core/cta.hpp"
#include "state/serial.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace aqua::cta {

struct FlowReading {
  util::MetresPerSecond speed;  ///< signed (direction folded in)
  int direction;                ///< −1 / 0 / +1
  double bridge_voltage;        ///< filtered U fed to the inversion
};

class FlowEstimator {
 public:
  /// `calibration_temperature` is the water temperature during the King's-law
  /// sweep; read() uses it to property-compensate the fit when the ambient
  /// drifts (the paper's A, B "are empirically determined and ambient
  /// specific" — the firmware rescales them from the Rt ambient reading).
  FlowEstimator(KingFit fit, util::MetresPerSecond full_scale,
                util::Kelvin calibration_temperature = util::celsius(15.0));

  /// Reads the anemometer's current filtered output, direction channel and
  /// sensed ambient (property-compensated).
  [[nodiscard]] FlowReading read(const CtaAnemometer& anemometer) const;

  /// Converts a raw voltage (no direction information).
  [[nodiscard]] util::MetresPerSecond speed_for(double voltage) const;

  /// Converts a raw voltage with property compensation for the given ambient
  /// water temperature.
  [[nodiscard]] util::MetresPerSecond speed_for(double voltage,
                                                util::Kelvin ambient) const;

  /// The King fit with A and B rescaled from the calibration temperature to
  /// the given ambient via the water-property ratios (A ∝ k·Pr^0.2,
  /// B ∝ k·Pr^(1/3)·√(ρ/µ)).
  [[nodiscard]] KingFit compensated_fit(util::Kelvin ambient) const;

  /// Installs a separate reverse-flow fit. In reverse flow the controlled
  /// heater sits in its twin's thermal wake and needs less drive for the same
  /// speed; a single forward calibration therefore under-reads reverse flow
  /// by several percent. read() uses this fit when the direction channel says
  /// reverse.
  void set_reverse_fit(const KingFit& fit);
  [[nodiscard]] bool has_reverse_fit() const { return has_reverse_; }

  /// Noise ε on the filtered voltage maps to ε / (dU/dv) of speed: the
  /// resolution at a given operating speed.
  [[nodiscard]] util::MetresPerSecond resolution_for(double voltage_noise,
                                                     util::MetresPerSecond at) const;

  [[nodiscard]] const KingFit& fit() const { return fit_; }
  [[nodiscard]] util::MetresPerSecond full_scale() const { return full_scale_; }

  /// Expresses a speed as ±% of full scale (the paper's reporting unit).
  [[nodiscard]] double percent_of_full_scale(util::MetresPerSecond v) const;

  /// Checkpoint support. The estimator is produced by calibration (or a
  /// shared fit), so unlike the streaming stages it is reconstructed whole:
  /// load_state is a named constructor.
  void save_state(state::Writer& w) const {
    for (const KingFit* f : {&fit_, &reverse_fit_}) {
      w.f64(f->a);
      w.f64(f->b);
      w.f64(f->n);
      w.f64(f->rms_residual);
    }
    w.boolean(has_reverse_);
    w.f64(full_scale_.value());
    w.f64(calibration_temperature_.value());
  }
  [[nodiscard]] static FlowEstimator load_state(state::Reader& r) {
    KingFit fit, reverse;
    for (KingFit* f : {&fit, &reverse}) {
      f->a = r.f64();
      f->b = r.f64();
      f->n = r.f64();
      f->rms_residual = r.f64();
    }
    const bool has_reverse = r.boolean();
    const double full_scale = r.f64();
    const double calibration_t = r.f64();
    FlowEstimator est(fit, util::MetresPerSecond{full_scale},
                      util::Kelvin{calibration_t});
    if (has_reverse) est.set_reverse_fit(reverse);
    return est;
  }

 private:
  KingFit fit_;
  KingFit reverse_fit_{};
  bool has_reverse_ = false;
  util::MetresPerSecond full_scale_;
  util::Kelvin calibration_temperature_;
};

}  // namespace aqua::cta
