#include "core/power_budget.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::cta {

PowerBudgetResult evaluate_power_budget(const PowerBudgetSpec& spec) {
  if (spec.battery_energy_wh <= 0.0 || spec.usable_fraction <= 0.0 ||
      spec.usable_fraction > 1.0)
    throw std::invalid_argument("evaluate_power_budget: bad battery spec");
  if (spec.measurements_per_hour < 0.0 || spec.active_burst.value() < 0.0)
    throw std::invalid_argument("evaluate_power_budget: bad usage spec");

  const double burst_s = spec.active_burst.value();
  const double bursts_per_s = spec.measurements_per_hour / 3600.0;
  const double duty = std::min(1.0, bursts_per_s * burst_s);

  const double energy_per_meas =
      spec.active_power_w * burst_s + spec.report_energy_j;
  const double avg_power = duty < 1.0
                               ? bursts_per_s * energy_per_meas +
                                     (1.0 - duty) * spec.sleep_power_w
                               : spec.active_power_w;

  const double usable_j = spec.battery_energy_wh * 3600.0 * spec.usable_fraction;
  const double autonomy_days = usable_j / avg_power / 86400.0;
  return PowerBudgetResult{avg_power, duty, autonomy_days, energy_per_meas};
}

double measurements_per_hour_for_autonomy(const PowerBudgetSpec& spec,
                                          double target_days) {
  if (target_days <= 0.0)
    throw std::invalid_argument("measurements_per_hour_for_autonomy: bad target");
  const double usable_j = spec.battery_energy_wh * 3600.0 * spec.usable_fraction;
  const double power_budget_w = usable_j / (target_days * 86400.0);
  const double headroom = power_budget_w - spec.sleep_power_w;
  if (headroom <= 0.0) return 0.0;  // sleep alone exceeds the budget
  const double energy_per_meas =
      spec.active_power_w * spec.active_burst.value() + spec.report_energy_j;
  return headroom / energy_per_meas * 3600.0;
}

}  // namespace aqua::cta
