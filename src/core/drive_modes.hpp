// drive_modes.hpp — quasi-static solvers for the three anemometer operating
// modes the paper contrasts in §2: constant current and constant power
// ("simple circuit implementation") versus constant temperature ("more
// robustness respect to changes of the temperature of the fluid itself").
// Each solver relaxes the die to steady state under the drive law and returns
// the measurand that mode would report. The quasi-static CT solver is also
// the fast path for months-scale fouling experiments (E8), where simulating
// every modulator clock would be absurd.
#pragma once

#include "core/cta.hpp"
#include "maf/die.hpp"
#include "util/units.hpp"

namespace aqua::cta {

/// Steady operating point of heater A under some drive.
struct SteadyPoint {
  double supply_v;        ///< bridge supply (CT) or source value mapped to volts
  double heater_power_w;
  util::Kelvin heater_temperature;
  util::Kelvin overtemperature;  ///< vs fluid
  double bridge_error_v;  ///< residual bridge imbalance (CT; 0 for CC/CP)
};

/// Constant-temperature: finds the bridge supply that balances the bridge
/// (heater held `config.overtemperature` above ambient via Rt) at steady
/// state. Bisection on the supply; die conductances (incl. fouling) are
/// honoured. Throws std::runtime_error if no balance exists below max_supply.
[[nodiscard]] SteadyPoint solve_constant_temperature(
    maf::MafDie& die, const maf::Environment& env, const CtaConfig& config,
    util::Volts max_supply = util::volts(14.0));

/// Constant-current: fixed current through heater A (reference unpowered).
[[nodiscard]] SteadyPoint solve_constant_current(maf::MafDie& die,
                                                 const maf::Environment& env,
                                                 util::Amperes current);

/// Constant-power: fixed Joule power in heater A.
[[nodiscard]] SteadyPoint solve_constant_power(maf::MafDie& die,
                                               const maf::Environment& env,
                                               util::Watts power);

}  // namespace aqua::cta
