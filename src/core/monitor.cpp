#include "core/monitor.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"

namespace aqua::cta {

using hydro::WaterNetwork;

LeakLocalizer::LeakLocalizer(WaterNetwork& network,
                             std::vector<WaterNetwork::PipeId> sensors,
                             util::MetresPerSecond resolution)
    : net_(network), sensors_(std::move(sensors)), resolution_(resolution) {
  if (sensors_.empty())
    throw std::invalid_argument("LeakLocalizer: no sensors");
}

void LeakLocalizer::calibrate() {
  AQUA_TRACE_SPAN("leak.calibrate");
  if (!net_.solve()) throw std::runtime_error("LeakLocalizer: baseline solve failed");
  baseline_.clear();
  for (auto p : sensors_) baseline_.push_back(net_.pipe_velocity(p).value());

  // Candidate set: every junction. For each, superpose a probe leak and
  // record the sensor-velocity deltas as its signature.
  candidates_.clear();
  signatures_.clear();
  for (WaterNetwork::NodeId n = 0; n < net_.node_count(); ++n) {
    bool is_junction = true;
    try {
      net_.set_leak(n, probe_emitter_);
    } catch (const std::invalid_argument&) {
      is_junction = false;  // reservoir
    }
    if (!is_junction) continue;
    if (!net_.solve())
      throw std::runtime_error("LeakLocalizer: signature solve failed");
    std::vector<double> sig;
    sig.reserve(sensors_.size());
    const double probe_flow = net_.leak_flow(n);
    for (std::size_t s = 0; s < sensors_.size(); ++s)
      sig.push_back((net_.pipe_velocity(sensors_[s]).value() - baseline_[s]) /
                    std::max(probe_flow, 1e-9));
    net_.set_leak(n, 0.0);
    candidates_.push_back(n);
    signatures_.push_back(std::move(sig));
  }
  // Restore the healthy solution.
  if (!net_.solve()) throw std::runtime_error("LeakLocalizer: restore solve failed");
}

namespace {
/// An empty mask means "every sensor valid" (the legacy overloads).
bool mask_valid(std::span<const std::uint8_t> valid, std::size_t i) {
  return valid.empty() || valid[i] != 0;
}
}  // namespace

bool LeakLocalizer::leak_detected(std::span<const double> measured) const {
  return leak_detected(measured, {});
}

bool LeakLocalizer::leak_detected(std::span<const double> measured,
                                  std::span<const std::uint8_t> valid) const {
  if (measured.size() != sensors_.size())
    throw std::invalid_argument("LeakLocalizer: measurement size mismatch");
  if (!valid.empty() && valid.size() != sensors_.size())
    throw std::invalid_argument("LeakLocalizer: validity mask size mismatch");
  double norm2 = 0.0;
  std::size_t active = 0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    if (!mask_valid(valid, i)) continue;
    const double r = measured[i] - baseline_[i];
    norm2 += r * r;
    ++active;
  }
  if (active == 0) return false;  // no surviving sensors, no evidence
  const double sigma = resolution_.value();
  const double threshold2 = 9.0 * sigma * sigma * static_cast<double>(active);
  return norm2 > threshold2;
}

std::vector<LeakHypothesis> LeakLocalizer::locate(
    std::span<const double> measured) const {
  return locate(measured, {});
}

std::vector<LeakHypothesis> LeakLocalizer::locate(
    std::span<const double> measured,
    std::span<const std::uint8_t> valid) const {
  AQUA_TRACE_SPAN("leak.locate");
  if (measured.size() != sensors_.size())
    throw std::invalid_argument("LeakLocalizer: measurement size mismatch");
  if (!valid.empty() && valid.size() != sensors_.size())
    throw std::invalid_argument("LeakLocalizer: validity mask size mismatch");
  if (signatures_.empty())
    throw std::logic_error("LeakLocalizer: calibrate() has not run");

  std::vector<double> residual(measured.size());
  std::size_t active = 0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    residual[i] = measured[i] - baseline_[i];
    if (mask_valid(valid, i)) ++active;
  }
  if (active == 0) return {};  // no surviving sensors, nothing to rank

  std::vector<LeakHypothesis> out;
  out.reserve(candidates_.size());
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    const auto& sig = signatures_[c];
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < residual.size(); ++i) {
      if (!mask_valid(valid, i)) continue;
      num += sig[i] * residual[i];
      den += sig[i] * sig[i];
    }
    const double magnitude = den > 1e-18 ? std::max(0.0, num / den) : 0.0;
    double rn = 0.0;
    for (std::size_t i = 0; i < residual.size(); ++i) {
      if (!mask_valid(valid, i)) continue;
      const double r = residual[i] - magnitude * sig[i];
      rn += r * r;
    }
    out.push_back(LeakHypothesis{candidates_[c], magnitude, std::sqrt(rn)});
  }
  std::sort(out.begin(), out.end(),
            [](const LeakHypothesis& a, const LeakHypothesis& b) {
              return a.residual_norm < b.residual_norm;
            });
  return out;
}

}  // namespace aqua::cta
