#include "core/estimator.hpp"

#include <cmath>
#include <stdexcept>

#include "phys/fluid.hpp"

namespace aqua::cta {

using util::Kelvin;
using util::MetresPerSecond;

FlowEstimator::FlowEstimator(KingFit fit, MetresPerSecond full_scale,
                             Kelvin calibration_temperature)
    : fit_(fit),
      full_scale_(full_scale),
      calibration_temperature_(calibration_temperature) {
  if (full_scale.value() <= 0.0)
    throw std::invalid_argument("FlowEstimator: non-positive full scale");
  if (fit.b <= 0.0)
    throw std::invalid_argument("FlowEstimator: degenerate King fit (b <= 0)");
}

namespace {
KingFit property_compensate(const KingFit& base, Kelvin cal_temperature,
                            Kelvin ambient) {
  const auto cal = phys::water_properties(cal_temperature);
  const auto now = phys::water_properties(ambient);
  // From the Kramers expansion (phys::king_coefficients):
  //   A ∝ k·Pr^0.2,   B ∝ k·Pr^(1/3)·sqrt(rho/mu)
  const double a_ratio = (now.thermal_conductivity / cal.thermal_conductivity) *
                         std::pow(now.prandtl() / cal.prandtl(), 0.2);
  const double b_ratio =
      (now.thermal_conductivity / cal.thermal_conductivity) *
      std::cbrt(now.prandtl() / cal.prandtl()) *
      std::sqrt((now.density / cal.density) /
                (now.dynamic_viscosity / cal.dynamic_viscosity));
  KingFit adjusted = base;
  adjusted.a *= a_ratio;
  adjusted.b *= b_ratio;
  return adjusted;
}
}  // namespace

KingFit FlowEstimator::compensated_fit(Kelvin ambient) const {
  return property_compensate(fit_, calibration_temperature_, ambient);
}

void FlowEstimator::set_reverse_fit(const KingFit& fit) {
  if (fit.b <= 0.0)
    throw std::invalid_argument("FlowEstimator: degenerate reverse fit");
  reverse_fit_ = fit;
  has_reverse_ = true;
}

FlowReading FlowEstimator::read(const CtaAnemometer& anemometer) const {
  const double u = anemometer.filtered_voltage();
  const int dir = anemometer.direction();
  const KingFit& base = (dir < 0 && has_reverse_) ? reverse_fit_ : fit_;
  const double magnitude =
      property_compensate(base, calibration_temperature_,
                          anemometer.sensed_ambient())
          .velocity(u);
  // Inside the direction dead-band report the magnitude as forward flow; the
  // dead-band is a few mm/s wide so this matches the paper's behaviour of
  // always producing a reading.
  const double sign = dir < 0 ? -1.0 : 1.0;
  return FlowReading{MetresPerSecond{sign * magnitude}, dir, u};
}

MetresPerSecond FlowEstimator::speed_for(double voltage) const {
  return MetresPerSecond{fit_.velocity(voltage)};
}

MetresPerSecond FlowEstimator::speed_for(double voltage, Kelvin ambient) const {
  return MetresPerSecond{compensated_fit(ambient).velocity(voltage)};
}

MetresPerSecond FlowEstimator::resolution_for(double voltage_noise,
                                              MetresPerSecond at) const {
  const double s = fit_.sensitivity(at.value());
  if (s <= 0.0) return full_scale_;  // unresolvable at this point
  return MetresPerSecond{voltage_noise / s};
}

double FlowEstimator::percent_of_full_scale(MetresPerSecond v) const {
  return 100.0 * v.value() / full_scale_.value();
}

}  // namespace aqua::cta
