// calibration.hpp — King's-law calibration (paper Eq. 2). The CTA loop's
// bridge voltage obeys  U² = ΔT·(A + B·vⁿ)  with "constants A, B and the
// exponent n ... empirically determined and ambient specific"; this module
// fits them from (velocity, voltage) pairs taken against the reference meter
// and inverts the law at runtime. A monotone piecewise-linear table
// calibration is provided as the model-free alternative.
#pragma once

#include <span>
#include <vector>

#include "util/units.hpp"

namespace aqua::cta {

/// Fitted King's-law transfer U² = A + B·vⁿ (ΔT folded into A and B, since
/// the CT loop holds it constant).
struct KingFit {
  double a = 0.0;
  double b = 0.0;
  double n = 0.5;
  double rms_residual = 0.0;  ///< rms of (U² − fit) over the fit set, V²

  /// Forward transfer: expected voltage at speed v (>= 0).
  [[nodiscard]] double voltage(double v_mps) const;
  /// Inverse transfer: speed for a measured voltage; clamps at 0 for
  /// voltages below the zero-flow intercept.
  [[nodiscard]] double velocity(double u_volts) const;
  /// Sensitivity dU/dv (V per m/s) at speed v — the denominator of the
  /// resolution estimate (a noise ε on U maps to ε/(dU/dv) on v).
  [[nodiscard]] double sensitivity(double v_mps) const;
};

/// One calibration observation.
struct CalPoint {
  double speed_mps;   ///< reference-meter speed
  double voltage;     ///< settled CTA bridge voltage
};

/// Fits A, B (linear least squares) and n (outer golden-section over
/// [n_lo, n_hi]) to the points. Requires >= 3 points with at least two
/// distinct non-zero speeds. Throws std::invalid_argument otherwise.
[[nodiscard]] KingFit fit_kings_law(std::span<const CalPoint> points,
                                    double n_lo = 0.30, double n_hi = 0.75);

/// Model-free monotone table calibration: speeds and voltages sorted by
/// voltage; inversion by linear interpolation (clamped at the ends).
class TableCalibration {
 public:
  explicit TableCalibration(std::vector<CalPoint> points);

  [[nodiscard]] double velocity(double u_volts) const;
  [[nodiscard]] double voltage(double v_mps) const;
  [[nodiscard]] std::size_t size() const { return speeds_.size(); }

 private:
  std::vector<double> speeds_;
  std::vector<double> voltages_;
};

}  // namespace aqua::cta
