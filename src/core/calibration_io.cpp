#include "core/calibration_io.hpp"

#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <stdexcept>

namespace aqua::cta {

namespace {
constexpr const char* kMagic = "aqua-cal-v1";

double require_number(const std::map<std::string, std::string>& kv,
                      const std::string& key) {
  const auto it = kv.find(key);
  if (it == kv.end())
    throw std::runtime_error("load_calibration: missing key '" + key + "'");
  std::size_t used = 0;
  const double value = std::stod(it->second, &used);
  if (used == 0)
    throw std::runtime_error("load_calibration: bad number for '" + key + "'");
  return value;
}
}  // namespace

void save_calibration(std::ostream& os, const CalibrationRecord& record) {
  os << kMagic << '\n';
  os << std::setprecision(17);
  os << "sensor_id = " << record.sensor_id << '\n';
  os << "king_a = " << record.fit.a << '\n';
  os << "king_b = " << record.fit.b << '\n';
  os << "king_n = " << record.fit.n << '\n';
  os << "rms_residual = " << record.fit.rms_residual << '\n';
  os << "full_scale_mps = " << record.full_scale.value() << '\n';
  os << "cal_temperature_k = " << record.calibration_temperature.value()
     << '\n';
}

void save_calibration_file(const std::string& path,
                           const CalibrationRecord& record) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("save_calibration_file: cannot open " + path);
  save_calibration(out, record);
}

CalibrationRecord load_calibration(std::istream& is) {
  std::string line;
  if (!std::getline(is, line) || line != kMagic)
    throw std::runtime_error("load_calibration: bad magic (expected aqua-cal-v1)");
  std::map<std::string, std::string> kv;
  std::string sensor_id = "unknown";
  while (std::getline(is, line)) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    std::string key = line.substr(0, eq);
    std::string value = line.substr(eq + 1);
    const auto trim = [](std::string& s) {
      const auto b = s.find_first_not_of(" \t");
      const auto e = s.find_last_not_of(" \t\r");
      s = (b == std::string::npos) ? "" : s.substr(b, e - b + 1);
    };
    trim(key);
    trim(value);
    if (key == "sensor_id")
      sensor_id = value;
    else
      kv[key] = value;
  }

  CalibrationRecord record;
  record.sensor_id = sensor_id;
  record.fit.a = require_number(kv, "king_a");
  record.fit.b = require_number(kv, "king_b");
  record.fit.n = require_number(kv, "king_n");
  if (kv.count("rms_residual"))
    record.fit.rms_residual = require_number(kv, "rms_residual");
  record.full_scale =
      util::MetresPerSecond{require_number(kv, "full_scale_mps")};
  record.calibration_temperature =
      util::Kelvin{require_number(kv, "cal_temperature_k")};

  if (record.fit.b <= 0.0)
    throw std::runtime_error("load_calibration: non-physical king_b");
  if (record.fit.n <= 0.0 || record.fit.n >= 1.0)
    throw std::runtime_error("load_calibration: king_n outside (0,1)");
  if (record.full_scale.value() <= 0.0)
    throw std::runtime_error("load_calibration: non-positive full scale");
  return record;
}

CalibrationRecord load_calibration_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("load_calibration_file: cannot open " + path);
  return load_calibration(in);
}

}  // namespace aqua::cta
