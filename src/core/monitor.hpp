// monitor.hpp — diffusive network monitoring (paper §6): with cheap insertion
// sensors spread across a distribution network, "any malfunction behaviour
// (e.g. water loss in tube)" can be "immediately localized and isolated".
// This module implements the application layer on top of hydro::WaterNetwork:
//
//   * detection — the residual between measured pipe velocities and the
//     calibrated baseline exceeds what sensor resolution explains;
//   * localisation — model-based matching: for every candidate junction a
//     unit leak is simulated, and the measured residual is least-squares
//     matched against each candidate's sensitivity signature.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hydro/network.hpp"
#include "util/units.hpp"

namespace aqua::cta {

struct LeakHypothesis {
  hydro::WaterNetwork::NodeId node;
  double estimated_flow_m3s;  ///< leak magnitude that best explains the data
  double residual_norm;       ///< unexplained residual (lower = better match)
};

class LeakLocalizer {
 public:
  /// `sensors` are the pipes instrumented with MAF probes; `resolution` is
  /// the per-sensor velocity resolution (sets the detection threshold).
  LeakLocalizer(hydro::WaterNetwork& network,
                std::vector<hydro::WaterNetwork::PipeId> sensors,
                util::MetresPerSecond resolution);

  /// Solves the healthy network and records baseline sensor velocities and
  /// per-candidate leak signatures. Call once after network construction (or
  /// whenever demands change). Throws std::runtime_error if a solve fails.
  void calibrate();

  /// Baseline velocity at each instrumented pipe (m/s), in sensor order.
  [[nodiscard]] std::span<const double> baseline() const { return baseline_; }

  /// True if `measured` (one velocity per sensor, m/s) is inconsistent with
  /// the healthy baseline beyond 3× the combined sensor resolution.
  [[nodiscard]] bool leak_detected(std::span<const double> measured) const;

  /// Graceful-degradation variant: only sensors with a nonzero `valid` flag
  /// participate, and the detection threshold scales with the surviving
  /// sensor count (fleet::MaskedEstimates is the intended source). With zero
  /// valid sensors nothing can be detected and this returns false.
  [[nodiscard]] bool leak_detected(std::span<const double> measured,
                                   std::span<const std::uint8_t> valid) const;

  /// Ranks candidate junctions by how well a single leak there explains the
  /// measurement (best first). Requires calibrate() to have run.
  [[nodiscard]] std::vector<LeakHypothesis> locate(
      std::span<const double> measured) const;

  /// Graceful-degradation variant: the least-squares match runs over the
  /// valid-sensor subset only, so a quarantined sensor's pinned value can
  /// neither vote nor poison the ranking. With zero valid sensors there is no
  /// evidence and the ranking is empty.
  [[nodiscard]] std::vector<LeakHypothesis> locate(
      std::span<const double> measured,
      std::span<const std::uint8_t> valid) const;

  [[nodiscard]] std::size_t sensor_count() const { return sensors_.size(); }

  /// Emitter coefficient (m³/s per √m) of the unit probe leak used while
  /// building signatures. The default suits lightly loaded districts; drop it
  /// when the probe flow would rival the district's demand (heavily loaded
  /// networks may fail to converge under a large synthetic leak). Call before
  /// calibrate().
  void set_probe_emitter(double coefficient) { probe_emitter_ = coefficient; }
  [[nodiscard]] double probe_emitter() const { return probe_emitter_; }

 private:
  hydro::WaterNetwork& net_;
  std::vector<hydro::WaterNetwork::PipeId> sensors_;
  util::MetresPerSecond resolution_;
  std::vector<double> baseline_;                    // per sensor
  std::vector<hydro::WaterNetwork::NodeId> candidates_;
  std::vector<std::vector<double>> signatures_;     // per candidate, per sensor
  double probe_emitter_ = 1e-3;                     // unit-leak emitter coeff
};

}  // namespace aqua::cta
