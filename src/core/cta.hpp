// cta.hpp — the constant-temperature anemometer loop on the ISIF platform:
// the paper's complete conditioning chain (paper §4, Fig. 5):
//
//   MAF bridges ── instrument amp ── anti-alias LPF ── ΣΔ ADC ── CIC
//        ▲                                                       │
//        │                                              reference subtraction
//   12-bit thermometer DAC ◄── PI controller (software IP) ◄─────┘
//
// The PI output is the bridge supply voltage and "is proportional to the
// water flow" through King's law; an IIR output filter "down to the bandwidth
// of 0.1 Hz" raises the resolution. A second, identically-driven bridge with
// the tandem heater gives the flow-direction signal. Pulsed-voltage drive
// (the paper's anti-bubble measure) gates the loop with a duty cycle.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "dsp/biquad.hpp"
#include "isif/ip.hpp"
#include "isif/platform.hpp"
#include "maf/die.hpp"
#include "maf/package.hpp"
#include "obs/flight.hpp"
#include "state/serial.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::cta {

struct PulsedDriveConfig {
  bool enabled = false;
  util::Seconds period = util::Seconds{0.05};
  double duty = 0.5;          ///< fraction of the period the bridge is driven
  double keep_alive = 0.02;   ///< DAC fraction held during the off phase
};

struct CtaConfig {
  /// Heater overtemperature setpoint above ambient ("reduced overtemperature
  /// ... respect to water", paper §4).
  util::Kelvin overtemperature = util::kelvin(5.0);
  /// Fixed top resistor of the reference arm (board component).
  util::Ohms top_resistor_b = util::ohms(2000.0);
  /// Water temperature assumed when the balancing top resistor is picked at
  /// commissioning; the bridge then tracks ambient via Rt.
  util::Kelvin commissioning_temperature = util::celsius(15.0);
  /// Factory trim: pick the balancing top resistor from the *measured*
  /// element values (trim station), so the overtemperature setpoint is met
  /// despite the ±0.5 Ω / ±30 Ω die tolerances. Without trim those tolerances
  /// turn into several kelvin of overtemperature error.
  bool factory_trim = true;
  dsp::PidGains pi{0.6, 30.0, 0.0};
  /// Keep-alive floor so the loop can bootstrap: the floor supply must
  /// produce a bridge error that dominates the amplifier's residual offset,
  /// otherwise a bad offset draw parks the loop at the rail.
  double pi_min = 0.05;
  double pi_max = 1.0;
  isif::IpImpl pi_impl = isif::IpImpl::kSoftwareFloat;
  PulsedDriveConfig pulse{};
  /// Output IIR: order-2 Butterworth at `output_cutoff`, running as a
  /// firmware task every `output_divisor` control ticks.
  util::Hertz output_cutoff = util::hertz(0.1);
  int output_divisor = 200;
  /// Direction low-pass (on the control-rate tandem-bridge signal). The
  /// direction carries no bandwidth requirement, and turbulence at high flow
  /// puts ~1 Hz noise on the tandem imbalance, so it is filtered hard.
  util::Hertz direction_cutoff = util::hertz(0.1);
  /// Direction dead-band on the *ratiometric* signal (bridge-B imbalance
  /// divided by the supply). The tandem-bridge static mismatch scales with
  /// the supply, so the firmware works with err_B/U and nulls that ratio at
  /// commissioning; the wake signal is ~1e-3 at full coupling.
  double direction_deadband = 2e-4;
  /// Bridge-supply DAC full scale. The water CTA's supply spans ~0.6–1.7 V
  /// over 0–250 cm/s at ΔT = 5 K; 4 V keeps headroom while using the 12-bit
  /// range well.
  util::Volts dac_full_scale = util::volts(4.0);
};

/// Health/diagnostic summary of the running loop.
struct CtaStatus {
  bool membrane_intact;
  bool package_healthy;
  bool adc_overload;
  bool watchdog_tripped;
  double cpu_load;
};

class CtaAnemometer {
 public:
  CtaAnemometer(const maf::MafSpec& maf_spec, const isif::IsifConfig& isif_config,
                const CtaConfig& config, util::Rng rng);

  // The firmware tasks capture `this`; the object must stay put.
  CtaAnemometer(const CtaAnemometer&) = delete;
  CtaAnemometer& operator=(const CtaAnemometer&) = delete;

  /// One modulator-clock tick under the given environment.
  void tick(const maf::Environment& env);

  /// Block execution: advances one full decimation frame (`decimation`
  /// modulator ticks) under a constant environment. The per-tick physics
  /// (DAC settling, bridge solve, die thermal step) runs exactly as in
  /// tick(), staging the bridge differentials into per-loop scratch buffers;
  /// both channels then process the frame in one block each, and the
  /// firmware runs at the frame boundary — where the scalar path runs it
  /// too. Bit-identical to `decimation` tick() calls. Requires frame
  /// alignment (tick_phase() == 0); throws std::logic_error otherwise.
  void tick_frame(const maf::Environment& env);

  /// Modulator ticks since the last frame boundary (0 = aligned).
  [[nodiscard]] int tick_phase() const { return tick_phase_; }

  // --- cross-sensor batch staging --------------------------------------------
  // tick_frame() decomposed for simd::CtaFrameBatch (DESIGN.md §13), which
  // interleaves many loops' per-tick physics around one shared
  // ThermalNetwork::step_batch and then runs the channels through
  // simd::ChannelBatch. tick_frame() itself is built from these pieces (the
  // W = 1 instance of the batch flow), so both paths share one definition of
  // the frame and stay bit-identical by construction.
  /// Frame-alignment guard: throws std::logic_error unless tick_phase() == 0.
  void begin_batch_frame() const;
  /// Tick i's physics up to and including the die's pre-thermal phase: time,
  /// package, DAC settle, both bridge solves, heater powers, conductance
  /// update; stages the bridge differentials at index i.
  void stage_tick_pre_thermal(const maf::Environment& env, int i);
  /// The post-thermal remainder of tick i (fouling growth).
  void stage_tick_post_thermal(const maf::Environment& env);
  /// The staged per-tick bridge differentials of the frame being built.
  [[nodiscard]] std::span<const double> staged_diff_a() const {
    return frame_diff_a_;
  }
  [[nodiscard]] std::span<const double> staged_diff_b() const {
    return frame_diff_b_;
  }
  /// Frame tail after both channels produced their decimated samples:
  /// firmware inputs, overload bookkeeping, blackbox edges, firmware tick.
  void finish_batch_frame(const isif::ChannelSample& sample_a,
                          const isif::ChannelSample& sample_b);

  /// Runs the loop for `duration` under a constant environment. Internally
  /// advances frame-by-frame (tick_frame) whenever aligned, falling back to
  /// scalar ticks for the unaligned head/tail — output is bit-identical to a
  /// pure tick() loop either way.
  void run(util::Seconds duration, const maf::Environment& env);

  /// Commissions the sensor at zero flow: settles the loop and nulls the
  /// direction channel's residual offset (heater tolerance mismatch).
  void commission(const maf::Environment& zero_flow_env,
                  util::Seconds settle = util::Seconds{3.0});

  /// Returns the whole loop — die, package, platform, PI, filters, timers,
  /// commissioning null — to its post-construction state. One-time part draws
  /// (tolerances, offsets, mismatch) persist; noise/dither streams rewind, so
  /// a reset loop replays a stimulus bit-identically.
  void reset();

  /// Field reboot: power-cycles the *electronics* only — ISIF platform
  /// (channels, DACs, firmware/watchdog), PI, filters, commissioning null and
  /// the loop bootstrap — while the die and package keep their physical state
  /// (a reboot does not mend a membrane, dry a package or re-solder a bond
  /// wire) and simulation time keeps running. This is the supervisor's
  /// recovery move before a re-commission attempt.
  void reboot();

  [[nodiscard]] util::Seconds tick_period() const;
  [[nodiscard]] util::Hertz control_rate() const;
  [[nodiscard]] util::Seconds now() const { return t_; }

  // --- measurands ------------------------------------------------------------
  /// Commanded bridge supply (PI output × DAC full scale): the King's-law U.
  [[nodiscard]] double bridge_voltage() const;
  /// U after the 0.1 Hz output IIR — the reading the paper reports.
  [[nodiscard]] double filtered_voltage() const;
  /// Signed ratiometric tandem-bridge imbalance err_B/U (offset-nulled,
  /// low-passed, dimensionless).
  [[nodiscard]] double direction_signal() const;
  /// −1, 0 (inside dead-band) or +1.
  [[nodiscard]] int direction() const;
  /// Ambient (fluid) temperature as sensed through Rt.
  [[nodiscard]] util::Kelvin sensed_ambient() const;
  /// Raw PI output in [pi_min, pi_max].
  [[nodiscard]] double control_output() const { return u_; }
  /// True while the pulsed drive is in its powered phase (always true when
  /// pulsing is disabled).
  [[nodiscard]] bool drive_phase_on() const { return phase_on_; }

  [[nodiscard]] CtaStatus status() const;

  /// The sensor's blackbox: recent loop events (drive phases, PI saturation,
  /// ADC overload, faults, commissioning/reset marks), stamped with
  /// simulation time. Deliberately NOT cleared by reset() — a blackbox that
  /// forgets the crash is useless. Mutable so diagnosis layers
  /// (core::HealthMonitor) can append fault records through a const sensor.
  [[nodiscard]] obs::FlightRecorder& flight() const { return flight_; }

  [[nodiscard]] maf::MafDie& die() { return die_; }
  [[nodiscard]] const maf::MafDie& die() const { return die_; }
  [[nodiscard]] maf::Package& package() { return package_; }
  [[nodiscard]] isif::Isif& platform() { return isif_; }
  [[nodiscard]] const CtaConfig& config() const { return config_; }
  /// The balancing top resistor picked at construction (arm A).
  [[nodiscard]] util::Ohms top_resistor_a() const { return top_a_; }

  /// Checkpoint support: the whole loop's evolving state — plant (die,
  /// package), platform, controller, filters, timers, commissioning null,
  /// pulse bookkeeping and the blackbox. Restore targets a freshly
  /// constructed loop with the identical config + rng (the part draws come
  /// from reconstruction). The frame scratch buffers are not state: every
  /// tick_frame() call overwrites them before use.
  void save_state(state::Writer& w) const;
  void load_state(state::Reader& r);

 private:
  void control_update();
  void note_frame_boundary();

  CtaConfig config_;
  maf::MafDie die_;
  maf::Package package_;
  isif::Isif isif_;
  isif::PiIp pi_;
  dsp::BiquadCascade output_iir_;
  dsp::OnePole direction_lp_;

  util::Ohms top_a_;
  util::Seconds t_{0.0};
  long long control_ticks_ = 0;
  int tick_phase_ = 0;  // modulator ticks since the last frame boundary

  // Frame-path scratch: per-tick bridge differentials of one decimation
  // frame, reused across frames (sized once at construction).
  std::vector<double> frame_diff_a_;
  std::vector<double> frame_diff_b_;

  // Latest decimated samples feeding the firmware tasks.
  double pending_error_code_ = 0.0;   // normalised bridge-A sample
  double pending_dir_code_ = 0.0;     // normalised bridge-B sample
  bool adc_overload_ = false;

  double u_ = 0.0;                    // PI output (DAC fraction)
  double u_held_ = 0.0;               // PI output held across off phases
  double filtered_u_ = 0.0;           // output of the 0.1 Hz IIR (fraction)
  double direction_offset_ = 0.0;     // commissioning null
  double dir_filtered_ = 0.0;
  bool phase_on_ = true;
  bool was_on_ = true;
  bool output_primed_ = false;

  // Blackbox + the edge detectors feeding it (see flight()).
  mutable obs::FlightRecorder flight_{64};
  bool pi_saturated_ = false;
  bool adc_overload_prev_ = false;
};

}  // namespace aqua::cta
