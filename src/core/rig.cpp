#include "core/rig.hpp"

#include <cmath>
#include <vector>

#include "hydro/profiles.hpp"

namespace aqua::cta {

using util::MetresPerSecond;
using util::Seconds;

isif::IsifConfig fast_isif_config() {
  isif::IsifConfig cfg;
  cfg.channel.modulator_clock = util::hertz(64e3);
  cfg.channel.decimation = 32;
  cfg.channel.anti_alias_cutoff = util::hertz(8e3);
  return cfg;
}

isif::IsifConfig coarse_isif_config() {
  isif::IsifConfig cfg;
  cfg.channel.modulator_clock = util::hertz(16e3);
  cfg.channel.decimation = 8;
  cfg.channel.anti_alias_cutoff = util::hertz(2e3);
  return cfg;
}

// Named RNG streams of the rig's root seed (counter-based, so each component
// owns a decorrelated stream and adding components never reshuffles others).
namespace rig_stream {
constexpr std::uint64_t kLine = 0;
constexpr std::uint64_t kMagmeter = 1;
constexpr std::uint64_t kTurbine = 2;
constexpr std::uint64_t kAnemometer = 3;
}  // namespace rig_stream

VinciRig::VinciRig(const RigConfig& config)
    : config_(config),
      line_(config.line, util::Rng::stream(config.seed, rig_stream::kLine)),
      magmeter_(config.magmeter,
                util::Rng::stream(config.seed, rig_stream::kMagmeter)),
      turbine_(config.turbine,
               util::Rng::stream(config.seed, rig_stream::kTurbine)) {
  anemometer_ = std::make_unique<CtaAnemometer>(
      config.maf, config.isif, config.cta,
      util::Rng::stream(config.seed, rig_stream::kAnemometer));
}

Seconds VinciRig::control_period() const {
  return Seconds{config_.isif.channel.decimation /
                 config_.isif.channel.modulator_clock.value()};
}

void VinciRig::commission(Seconds settle) {
  maf::Environment env = line_.environment();
  env.speed = util::metres_per_second(0.0);
  anemometer_->commission(env, settle);
}

void VinciRig::run(Seconds duration) {
  const Seconds tc = control_period();
  const long long blocks =
      static_cast<long long>(std::ceil(duration.value() / tc.value()));
  const int ticks_per_block = config_.isif.channel.decimation;
  for (long long b = 0; b < blocks; ++b) {
    line_.step(tc);
    const maf::Environment env = line_.environment();
    for (int i = 0; i < ticks_per_block; ++i) anemometer_->tick(env);
    mag_reading_ = magmeter_.step(line_.mean_velocity(), tc).value();
    turbine_reading_ = turbine_.step(line_.mean_velocity(), tc).value();
  }
}

double VinciRig::profile_factor_at(MetresPerSecond mean) const {
  const auto props = phys::water_properties(line_.temperature());
  const double re =
      hydro::pipe_reynolds(props, mean, config_.line.pipe_diameter);
  return hydro::profile_factor(re, config_.line.probe_radius_fraction);
}

double VinciRig::settled_voltage(const maf::Environment& env, Seconds dwell,
                                 double trailing_fraction) {
  const Seconds tick = anemometer_->tick_period();
  const long long n =
      static_cast<long long>(std::ceil(dwell.value() / tick.value()));
  const long long tail_start =
      n - static_cast<long long>(trailing_fraction * static_cast<double>(n));
  double acc = 0.0;
  long long count = 0;
  for (long long i = 0; i < n; ++i) {
    anemometer_->tick(env);
    if (i >= tail_start) {
      acc += anemometer_->bridge_voltage();
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

KingFit VinciRig::calibrate(std::span<const double> speeds_mps, Seconds dwell) {
  std::vector<CalPoint> points;
  points.reserve(speeds_mps.size());
  for (double mean : speeds_mps) {
    maf::Environment env = line_.environment();
    // The probe sees the point velocity; calibrating against the reference
    // meter (mean velocity) absorbs the profile factor, exactly as in the
    // field campaign.
    env.speed =
        MetresPerSecond{mean * profile_factor_at(MetresPerSecond{mean})};
    const double u = settled_voltage(env, dwell);
    points.push_back(CalPoint{mean, u});
  }
  return fit_kings_law(points);
}

VinciRig::BidirectionalFit VinciRig::calibrate_bidirectional(
    std::span<const double> speeds_mps, Seconds dwell) {
  std::vector<CalPoint> fwd, rev;
  fwd.reserve(speeds_mps.size());
  rev.reserve(speeds_mps.size());
  for (double mean : speeds_mps) {
    const double point =
        mean * profile_factor_at(MetresPerSecond{std::abs(mean)});
    maf::Environment env = line_.environment();
    env.speed = MetresPerSecond{point};
    fwd.push_back(CalPoint{mean, settled_voltage(env, dwell)});
    env.speed = MetresPerSecond{-point};
    rev.push_back(CalPoint{mean, settled_voltage(env, dwell)});
  }
  return BidirectionalFit{fit_kings_law(fwd), fit_kings_law(rev)};
}

MetresPerSecond VinciRig::magmeter_reading() const {
  return MetresPerSecond{mag_reading_};
}

MetresPerSecond VinciRig::turbine_reading() const {
  return MetresPerSecond{turbine_reading_};
}

}  // namespace aqua::cta
