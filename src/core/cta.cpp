#include "core/cta.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "analog/bridge.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phys/resistor.hpp"

namespace aqua::cta {

namespace {
// Simulated seconds of zero-flow settling each commissioning consumed. The
// observation is simulation time (deterministic), not wall time.
const obs::Histogram kCommissionSettle{
    "cta.commission.settle_sim_seconds",
    obs::HistogramSpec{0.1, 100.0, 30, true}};
const obs::Counter kAdcOverloadTicks{"cta.loop.adc_overload_ticks"};
}  // namespace

using util::Hertz;
using util::Kelvin;
using util::Ohms;
using util::Seconds;
using util::Volts;

namespace {

isif::IsifConfig with_dac_full_scale(isif::IsifConfig cfg, Volts fs) {
  cfg.dac12.full_scale = fs;
  return cfg;
}

/// The balancing resistor choice: either from the die's *measured* element
/// values (factory trim) or from the datasheet nominals (untrimmed build).
Ohms pick_top_a(const maf::MafDie& die, const CtaConfig& cfg) {
  const Kelvin t_hot{cfg.commissioning_temperature.value() +
                     cfg.overtemperature.value()};
  if (cfg.factory_trim) {
    return analog::balancing_top_resistor(
        die.heater_a_resistance_at(t_hot), cfg.top_resistor_b,
        die.reference_resistance_at(cfg.commissioning_temperature));
  }
  const phys::TcrResistor heater_nominal(die.spec().heater);
  const phys::TcrResistor reference_nominal(die.spec().reference);
  return analog::balancing_top_resistor(
      heater_nominal.resistance(t_hot), cfg.top_resistor_b,
      reference_nominal.resistance(cfg.commissioning_temperature));
}

}  // namespace

CtaAnemometer::CtaAnemometer(const maf::MafSpec& maf_spec,
                             const isif::IsifConfig& isif_config,
                             const CtaConfig& config, util::Rng rng)
    : config_(config),
      die_(maf_spec, rng),
      package_(maf::PackageSpec{}, rng.split()),
      isif_(with_dac_full_scale(isif_config, config.dac_full_scale),
            rng.split()),
      pi_(config.pi, dsp::PidLimits{config.pi_min, config.pi_max},
          Hertz{isif_config.channel.modulator_clock.value() /
                isif_config.channel.decimation},
          config.pi_impl),
      output_iir_(dsp::design_butterworth_lowpass(
          2, config.output_cutoff,
          Hertz{isif_config.channel.modulator_clock.value() /
                isif_config.channel.decimation / config.output_divisor})),
      direction_lp_(config.direction_cutoff,
                    Hertz{isif_config.channel.modulator_clock.value() /
                          isif_config.channel.decimation}),
      top_a_(pick_top_a(die_, config)) {
  if (config.pulse.enabled &&
      (config.pulse.duty <= 0.0 || config.pulse.duty > 1.0))
    throw std::invalid_argument("CtaAnemometer: pulse duty outside (0,1]");
  if (config.output_divisor < 1)
    throw std::invalid_argument("CtaAnemometer: output divisor must be >= 1");

  u_ = u_held_ = config_.pi_min;
  pi_.reset(u_);
  isif_.dac(0).request_code(static_cast<int>(
      std::lround(u_ * isif_.dac(0).dac().max_code())));

  const auto frame =
      static_cast<std::size_t>(isif_config.channel.decimation);
  frame_diff_a_.assign(frame, 0.0);
  frame_diff_b_.assign(frame, 0.0);

  // Firmware tasks, costed against the LEON budget (paper §3).
  const isif::CycleCosts costs{};
  isif_.firmware().add_task("cta_pi", 1, pi_.cycles_per_sample(),
                            [this] { control_update(); });
  isif_.firmware().add_task(
      "direction_lp", 1, costs.sample_overhead + costs.per_biquad_section,
      [this] {
        // Ratiometric: bridge B's static (tolerance) imbalance scales with
        // the supply, so only err_B/U can be nulled once at commissioning.
        if (phase_on_) {
          const double supply = std::max(bridge_voltage(), 0.05);
          dir_filtered_ = direction_lp_.process(pending_dir_code_ / supply -
                                                direction_offset_);
        }
      });
  isif_.firmware().add_task(
      "output_iir", config_.output_divisor,
      costs.sample_overhead + 2 * costs.per_biquad_section, [this] {
        if (!output_primed_) {
          output_iir_.prime(u_);
          output_primed_ = true;
        }
        filtered_u_ = output_iir_.process(u_);
      });
}

Seconds CtaAnemometer::tick_period() const {
  return Seconds{1.0 / isif_.config().channel.modulator_clock.value()};
}

Hertz CtaAnemometer::control_rate() const {
  return Hertz{isif_.config().channel.modulator_clock.value() /
               isif_.config().channel.decimation};
}

void CtaAnemometer::tick(const maf::Environment& env) {
  const Seconds dt = tick_period();
  t_ += dt;
  if (++tick_phase_ >= isif_.config().channel.decimation) tick_phase_ = 0;

  package_.step(dt, env.pressure);
  const Volts supply = isif_.dac(0).update(dt);

  // Both half-bridge pairs share the supply and the interdigitated reference.
  const analog::BridgeArms arms_a{top_a_, die_.heater_a_resistance(),
                                  config_.top_resistor_b,
                                  die_.reference_resistance()};
  const analog::BridgeArms arms_b{top_a_, die_.heater_b_resistance(),
                                  config_.top_resistor_b,
                                  die_.reference_resistance()};
  const auto sol_a = analog::solve_bridge(arms_a, supply);
  const auto sol_b = analog::solve_bridge(arms_b, supply);

  die_.set_heater_powers(sol_a.p_bot_a, sol_b.p_bot_a,
                         sol_a.p_bot_b + sol_b.p_bot_b);
  die_.step(dt, env);

  const auto sample_a =
      isif_.channel(0).tick(sol_a.differential, env.fluid_temperature);
  const auto sample_b =
      isif_.channel(1).tick(sol_b.differential, env.fluid_temperature);
  if (sample_b) pending_dir_code_ = sample_b->value;
  if (sample_a) {
    const double max_code = 32767.0;  // 16-bit channel word
    pending_error_code_ = static_cast<double>(sample_a->code) / max_code;
    adc_overload_ = sample_a->overload;
    if (adc_overload_) kAdcOverloadTicks.add(1);
    note_frame_boundary();
    isif_.firmware().tick();
  }
}

void CtaAnemometer::begin_batch_frame() const {
  if (tick_phase_ != 0)
    throw std::logic_error(
        "CtaAnemometer: tick_frame needs a frame-aligned loop "
        "(tick_phase() == 0); advance with tick() to the boundary first");
}

void CtaAnemometer::stage_tick_pre_thermal(const maf::Environment& env,
                                           int i) {
  const Seconds dt = tick_period();
  t_ += dt;
  package_.step(dt, env.pressure);
  const Volts supply = isif_.dac(0).update(dt);

  const analog::BridgeArms arms_a{top_a_, die_.heater_a_resistance(),
                                  config_.top_resistor_b,
                                  die_.reference_resistance()};
  const analog::BridgeArms arms_b{top_a_, die_.heater_b_resistance(),
                                  config_.top_resistor_b,
                                  die_.reference_resistance()};
  const auto sol_a = analog::solve_bridge(arms_a, supply);
  const auto sol_b = analog::solve_bridge(arms_b, supply);

  die_.set_heater_powers(sol_a.p_bot_a, sol_b.p_bot_a,
                         sol_a.p_bot_b + sol_b.p_bot_b);
  die_.step_pre_thermal(env);

  frame_diff_a_[static_cast<std::size_t>(i)] = sol_a.differential.value();
  frame_diff_b_[static_cast<std::size_t>(i)] = sol_b.differential.value();
}

void CtaAnemometer::stage_tick_post_thermal(const maf::Environment& env) {
  die_.step_post_thermal(tick_period(), env);
}

void CtaAnemometer::finish_batch_frame(const isif::ChannelSample& sample_a,
                                       const isif::ChannelSample& sample_b) {
  pending_dir_code_ = sample_b.value;
  const double max_code = 32767.0;  // 16-bit channel word
  pending_error_code_ = static_cast<double>(sample_a.code) / max_code;
  adc_overload_ = sample_a.overload;
  if (adc_overload_) kAdcOverloadTicks.add(1);
  note_frame_boundary();
  isif_.firmware().tick();
}

void CtaAnemometer::tick_frame(const maf::Environment& env) {
  begin_batch_frame();
  const Seconds dt = tick_period();
  const int frame = isif_.config().channel.decimation;

  // Per-tick physics, exactly as tick() runs it; the channel inputs are
  // staged instead of pushed through the signal chain one at a time. Nothing
  // in this loop reads channel or firmware state, and the firmware only acts
  // at the frame boundary — which is why deferring the chain to one block per
  // channel reproduces the scalar interleaving bit-for-bit (DESIGN.md §9).
  // This is the W = 1 instance of the batch flow: stage pre-thermal physics,
  // relax the thermal network, stage the post-thermal remainder.
  for (int i = 0; i < frame; ++i) {
    stage_tick_pre_thermal(env, i);
    die_.thermal_network().step(dt);
    stage_tick_post_thermal(env);
  }

  const isif::ChannelSample sample_a =
      isif_.channel(0).process_frame(frame_diff_a_, env.fluid_temperature);
  const isif::ChannelSample sample_b =
      isif_.channel(1).process_frame(frame_diff_b_, env.fluid_temperature);
  finish_batch_frame(sample_a, sample_b);
}

/// Blackbox edge detection at the decimated (frame) rate, shared by the
/// scalar and block paths so both record identical histories.
void CtaAnemometer::note_frame_boundary() {
  if (adc_overload_ != adc_overload_prev_) {
    flight_.record(t_.value(), adc_overload_
                                   ? obs::FlightRecordKind::kAdcOverloadEnter
                                   : obs::FlightRecordKind::kAdcOverloadExit);
    adc_overload_prev_ = adc_overload_;
  }
}

void CtaAnemometer::control_update() {
  ++control_ticks_;
  if (config_.pulse.enabled) {
    const double period = config_.pulse.period.value();
    const double phase = std::fmod(t_.value(), period) / period;
    phase_on_ = phase < config_.pulse.duty;
  } else {
    phase_on_ = true;
  }

  auto& dac = isif_.dac(0);
  const int max_code = dac.dac().max_code();

  if (!phase_on_) {
    if (was_on_) {
      u_held_ = u_;
      flight_.record(t_.value(), obs::FlightRecordKind::kDriveOff, 0, u_held_);
    }
    was_on_ = false;
    dac.request_code(static_cast<int>(
        std::lround(config_.pulse.keep_alive * max_code)));
    return;  // PI frozen through the off phase
  }
  const double error = -pending_error_code_;
  if (!was_on_) {
    // Bumpless resume: back-calculate the integrator against the error the
    // loop is about to see, so update() reproduces u_held_ exactly instead of
    // re-adding the proportional term on top of it.
    pi_.reset(u_held_, error);
    was_on_ = true;
    flight_.record(t_.value(), obs::FlightRecordKind::kDriveOn, 0, u_held_);
  }
  u_ = pi_.update(error);
  dac.request_code(static_cast<int>(std::lround(u_ * max_code)));

  const bool saturated = u_ <= config_.pi_min || u_ >= config_.pi_max;
  if (saturated != pi_saturated_) {
    flight_.record(t_.value(), saturated
                                   ? obs::FlightRecordKind::kPiSaturationEnter
                                   : obs::FlightRecordKind::kPiSaturationExit,
                   0, u_);
    pi_saturated_ = saturated;
  }
}

void CtaAnemometer::run(Seconds duration, const maf::Environment& env) {
  AQUA_TRACE_SPAN_SIM("cta.run", t_.value());
  const long long n =
      static_cast<long long>(std::ceil(duration.value() / tick_period().value()));
  const long long frame = isif_.config().channel.decimation;
  long long i = 0;
  // Scalar ticks up to the next frame boundary, whole frames through the
  // block path, scalar again for the sub-frame tail. Bit-identical to a pure
  // tick() loop at every step.
  while (i < n && tick_phase_ != 0) {
    tick(env);
    ++i;
  }
  for (; i + frame <= n; i += frame) tick_frame(env);
  for (; i < n; ++i) tick(env);
}

void CtaAnemometer::commission(const maf::Environment& zero_flow_env,
                               Seconds settle) {
  // The heavily-filtered direction signal settles slowly, so the null is
  // taken in passes: each pass absorbs what the filter has converged to and
  // the loop stops once the increment is negligible against the dead-band.
  AQUA_TRACE_SPAN_SIM("cta.commission", t_.value());
  double settled = 0.0;
  for (int pass = 0; pass < 5; ++pass) {
    run(settle, zero_flow_env);
    settled += settle.value();
    const double increment = dir_filtered_;
    direction_offset_ += increment;
    direction_lp_.reset(0.0);
    dir_filtered_ = 0.0;
    if (std::abs(increment) < 0.25 * config_.direction_deadband) break;
  }
  kCommissionSettle.observe(settled);
  flight_.record(t_.value(), obs::FlightRecordKind::kCommission, 0, settled);
}

void CtaAnemometer::reset() {
  // Record the reset at the *old* time, then rewind. The blackbox history
  // survives reset on purpose; only the edge detectors restart so the replay
  // records the same transitions again.
  flight_.record(t_.value(), obs::FlightRecordKind::kReset);
  pi_saturated_ = false;
  adc_overload_prev_ = false;
  die_.reset();
  package_.reset();
  isif_.reset();
  output_iir_.reset();
  direction_lp_.reset(0.0);
  t_ = Seconds{0.0};
  control_ticks_ = 0;
  tick_phase_ = 0;
  pending_error_code_ = 0.0;
  pending_dir_code_ = 0.0;
  adc_overload_ = false;
  filtered_u_ = 0.0;
  direction_offset_ = 0.0;
  dir_filtered_ = 0.0;
  phase_on_ = true;
  was_on_ = true;
  output_primed_ = false;
  // Same bootstrap sequence as the constructor: keep-alive floor on the PI
  // and the bridge-supply DAC.
  u_ = u_held_ = config_.pi_min;
  pi_.reset(u_);
  isif_.dac(0).request_code(static_cast<int>(
      std::lround(u_ * isif_.dac(0).dac().max_code())));
}

void CtaAnemometer::reboot() {
  flight_.record(t_.value(), obs::FlightRecordKind::kReboot);
  pi_saturated_ = false;
  adc_overload_prev_ = false;
  // Electronics only: die_ and package_ keep their (possibly damaged)
  // physical state, and t_ keeps running — the plant does not reboot.
  isif_.reset();
  output_iir_.reset();
  direction_lp_.reset(0.0);
  control_ticks_ = 0;
  tick_phase_ = 0;  // the channels' decimation counters restarted with isif_
  pending_error_code_ = 0.0;
  pending_dir_code_ = 0.0;
  adc_overload_ = false;
  filtered_u_ = 0.0;
  direction_offset_ = 0.0;
  dir_filtered_ = 0.0;
  phase_on_ = true;
  was_on_ = true;
  output_primed_ = false;
  u_ = u_held_ = config_.pi_min;
  pi_.reset(u_);
  isif_.dac(0).request_code(static_cast<int>(
      std::lround(u_ * isif_.dac(0).dac().max_code())));
}

void CtaAnemometer::save_state(state::Writer& w) const {
  die_.save_state(w);
  package_.save_state(w);
  isif_.save_state(w);
  pi_.save_state(w);
  output_iir_.save_state(w);
  w.f64(direction_lp_.value());
  w.f64(t_.value());
  w.i64(control_ticks_);
  w.i32(tick_phase_);
  w.f64(pending_error_code_);
  w.f64(pending_dir_code_);
  w.boolean(adc_overload_);
  w.f64(u_);
  w.f64(u_held_);
  w.f64(filtered_u_);
  w.f64(direction_offset_);
  w.f64(dir_filtered_);
  w.boolean(phase_on_);
  w.boolean(was_on_);
  w.boolean(output_primed_);
  flight_.save_state(w);
  w.boolean(pi_saturated_);
  w.boolean(adc_overload_prev_);
}

void CtaAnemometer::load_state(state::Reader& r) {
  die_.load_state(r);
  package_.load_state(r);
  isif_.load_state(r);
  pi_.load_state(r);
  output_iir_.load_state(r);
  direction_lp_.reset(r.f64());
  t_ = Seconds{r.f64()};
  control_ticks_ = r.i64();
  tick_phase_ = r.i32();
  pending_error_code_ = r.f64();
  pending_dir_code_ = r.f64();
  adc_overload_ = r.boolean();
  u_ = r.f64();
  u_held_ = r.f64();
  filtered_u_ = r.f64();
  direction_offset_ = r.f64();
  dir_filtered_ = r.f64();
  phase_on_ = r.boolean();
  was_on_ = r.boolean();
  output_primed_ = r.boolean();
  flight_.load_state(r);
  pi_saturated_ = r.boolean();
  adc_overload_prev_ = r.boolean();
}

double CtaAnemometer::bridge_voltage() const {
  return u_ * config_.dac_full_scale.value();
}

double CtaAnemometer::filtered_voltage() const {
  return (output_primed_ ? filtered_u_ : u_) * config_.dac_full_scale.value();
}

double CtaAnemometer::direction_signal() const { return dir_filtered_; }

int CtaAnemometer::direction() const {
  if (dir_filtered_ > config_.direction_deadband) return 1;
  if (dir_filtered_ < -config_.direction_deadband) return -1;
  return 0;
}

Kelvin CtaAnemometer::sensed_ambient() const {
  // The trim station stores Rt measured at the commissioning temperature, so
  // firmware only relies on the (well-controlled) film TCR, not the ±30 Ω
  // absolute tolerance. Residual error: reference self-heating (~0.5 K).
  const double r0 =
      die_.reference_resistance_at(config_.commissioning_temperature).value();
  const double r = die_.reference_resistance().value();
  const double alpha = die_.spec().reference.alpha;
  return Kelvin{config_.commissioning_temperature.value() +
                (r - r0) / (alpha * r0)};
}

CtaStatus CtaAnemometer::status() const {
  return CtaStatus{die_.membrane_intact(), package_.healthy(), adc_overload_,
                   isif_.firmware().watchdog_tripped(),
                   isif_.firmware().average_load()};
}

}  // namespace aqua::cta
