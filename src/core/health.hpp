// health.hpp — field-diagnostics layer: turns the loop's raw status flags and
// the flow readings into actionable fault codes. This is the firmware the
// paper's network vision (§6) implies: a sensor "widely diffused all over the
// water distribution channels" must detect its own malfunctions, not only the
// network's.
#pragma once

#include <string>
#include <vector>

#include "core/cta.hpp"
#include "core/estimator.hpp"
#include "state/serial.hpp"
#include "util/units.hpp"

namespace aqua::cta {

enum class FaultCode {
  kMembraneBroken,   ///< overpressure destroyed the die (latched)
  kPackageDegraded,  ///< corrosion / moisture ingress past limits
  kAdcOverload,      ///< channel driven outside the modulator's stable range
  kWatchdog,         ///< firmware overran its real-time budget
  kRangeHigh,        ///< reading above the plausible line maximum
  kRangeLow,         ///< reading below the reverse-flow maximum
  kRateLimit,        ///< reading moved faster than pipe hydraulics allow
  kStuckReading,     ///< reading frozen while the loop runs (dead channel)
};

/// Stable label with static storage duration — safe to keep as a pointer
/// (flight-recorder events store it uncopied).
[[nodiscard]] const char* fault_label(FaultCode code);

[[nodiscard]] std::string fault_name(FaultCode code);

struct HealthConfig {
  util::MetresPerSecond range_max = util::metres_per_second(3.0);
  /// Fastest credible line acceleration (valve slam with water hammer).
  double max_rate_mps_per_s = 2.0;
  /// Stuck detection: this many consecutive identical readings trip a fault
  /// (the live loop's noise floor makes exact repeats practically impossible).
  int stuck_count = 20;
  double stuck_epsilon_mps = 1e-6;
  /// A reading of exactly zero is NOT proof of a dead channel: below the
  /// King-fit dead band the inversion clamps to 0.0 for a perfectly healthy
  /// sensor on a stagnant pipe. At zero indicated flow the only liveness
  /// signal left is the bridge voltage, which a live loop dithers at the
  /// ΣΔ noise floor (~mV/epoch) and a railed/dead channel freezes to sub-µV
  /// within a few output-filter time constants. Zero readings therefore only
  /// advance the stuck counter while the voltage moves less than this.
  double stuck_epsilon_volts = 1e-5;
};

/// Stateful monitor; call assess() once per output-filter reading (~10 Hz).
class HealthMonitor {
 public:
  explicit HealthMonitor(const HealthConfig& config = {});

  /// Evaluates all checks against the current loop state and reading.
  /// `dt` is the time since the previous assessment. Each fault is also
  /// appended to the anemometer's flight recorder, and on the healthy→faulty
  /// transition the blackbox is dumped to the warn log (and mirrored onto the
  /// trace timeline when tracing is enabled) — the paper's §6 requirement
  /// that a malfunction be "immediately localized".
  [[nodiscard]] std::vector<FaultCode> assess(const CtaAnemometer& anemometer,
                                              const FlowReading& reading,
                                              util::Seconds dt);

  /// True if the last assessment found no faults.
  [[nodiscard]] bool healthy() const { return healthy_; }

  void reset();

  /// Checkpoint support: the rate/stuck detector memory.
  void save_state(state::Writer& w) const {
    w.boolean(healthy_);
    w.boolean(have_prev_);
    w.f64(prev_speed_);
    w.f64(prev_voltage_);
    w.i32(identical_count_);
  }
  void load_state(state::Reader& r) {
    healthy_ = r.boolean();
    have_prev_ = r.boolean();
    prev_speed_ = r.f64();
    prev_voltage_ = r.f64();
    identical_count_ = r.i32();
  }

 private:
  HealthConfig config_;
  bool healthy_ = true;
  bool have_prev_ = false;
  double prev_speed_ = 0.0;
  double prev_voltage_ = 0.0;
  int identical_count_ = 0;
};

}  // namespace aqua::cta
