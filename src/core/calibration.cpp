#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace aqua::cta {

double KingFit::voltage(double v_mps) const {
  const double u2 = a + b * std::pow(std::max(0.0, v_mps), n);
  return std::sqrt(std::max(0.0, u2));
}

double KingFit::velocity(double u_volts) const {
  const double u2 = u_volts * u_volts;
  if (u2 <= a || b <= 0.0) return 0.0;
  return std::pow((u2 - a) / b, 1.0 / n);
}

double KingFit::sensitivity(double v_mps) const {
  // U = sqrt(A + B vⁿ) → dU/dv = n·B·v^{n−1} / (2U).
  const double v = std::max(v_mps, 1e-6);
  const double u = voltage(v);
  if (u <= 0.0) return 0.0;
  return n * b * std::pow(v, n - 1.0) / (2.0 * u);
}

KingFit fit_kings_law(std::span<const CalPoint> points, double n_lo,
                      double n_hi) {
  if (points.size() < 3)
    throw std::invalid_argument("fit_kings_law: need at least 3 points");
  std::size_t nonzero = 0;
  for (const auto& p : points)
    if (p.speed_mps > 1e-6) ++nonzero;
  if (nonzero < 2)
    throw std::invalid_argument("fit_kings_law: need >= 2 non-zero speeds");
  if (!(n_lo > 0.0 && n_hi > n_lo))
    throw std::invalid_argument("fit_kings_law: bad exponent bracket");

  // Inner solve: for a fixed n, least squares of U² on [1, vⁿ].
  const auto solve_ab = [&](double n) {
    std::vector<double> x;
    std::vector<double> y;
    x.reserve(points.size() * 2);
    y.reserve(points.size());
    for (const auto& p : points) {
      x.push_back(1.0);
      x.push_back(std::pow(std::max(0.0, p.speed_mps), n));
      y.push_back(p.voltage * p.voltage);
    }
    return util::least_squares(x, y, 2);
  };
  const auto residual = [&](double n) {
    const auto ab = solve_ab(n);
    double acc = 0.0;
    for (const auto& p : points) {
      const double fit =
          ab[0] + ab[1] * std::pow(std::max(0.0, p.speed_mps), n);
      const double r = p.voltage * p.voltage - fit;
      acc += r * r;
    }
    return acc;
  };

  const double n_best = util::golden_minimize(residual, n_lo, n_hi, 1e-6);
  const auto ab = solve_ab(n_best);
  KingFit fit{ab[0], ab[1], n_best, 0.0};
  fit.rms_residual =
      std::sqrt(residual(n_best) / static_cast<double>(points.size()));
  return fit;
}

TableCalibration::TableCalibration(std::vector<CalPoint> points) {
  if (points.size() < 2)
    throw std::invalid_argument("TableCalibration: need at least 2 points");
  std::sort(points.begin(), points.end(),
            [](const CalPoint& a, const CalPoint& b) {
              return a.voltage < b.voltage;
            });
  for (std::size_t i = 1; i < points.size(); ++i) {
    if (points[i].voltage <= points[i - 1].voltage ||
        points[i].speed_mps < points[i - 1].speed_mps)
      throw std::invalid_argument(
          "TableCalibration: points must be strictly monotone in voltage and "
          "non-decreasing in speed");
  }
  for (const auto& p : points) {
    voltages_.push_back(p.voltage);
    speeds_.push_back(p.speed_mps);
  }
}

double TableCalibration::velocity(double u_volts) const {
  return util::interp1(voltages_, speeds_, u_volts);
}

double TableCalibration::voltage(double v_mps) const {
  return util::interp1(speeds_, voltages_, v_mps);
}

}  // namespace aqua::cta
