#include "core/health.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/log.hpp"

namespace aqua::cta {

const char* fault_label(FaultCode code) {
  switch (code) {
    case FaultCode::kMembraneBroken: return "membrane-broken";
    case FaultCode::kPackageDegraded: return "package-degraded";
    case FaultCode::kAdcOverload: return "adc-overload";
    case FaultCode::kWatchdog: return "watchdog";
    case FaultCode::kRangeHigh: return "range-high";
    case FaultCode::kRangeLow: return "range-low";
    case FaultCode::kRateLimit: return "rate-limit";
    case FaultCode::kStuckReading: return "stuck-reading";
  }
  return "unknown";
}

std::string fault_name(FaultCode code) { return fault_label(code); }

HealthMonitor::HealthMonitor(const HealthConfig& config) : config_(config) {
  if (config.range_max.value() <= 0.0 || config.max_rate_mps_per_s <= 0.0 ||
      config.stuck_count < 2)
    throw std::invalid_argument("HealthMonitor: bad configuration");
}

std::vector<FaultCode> HealthMonitor::assess(const CtaAnemometer& anemometer,
                                             const FlowReading& reading,
                                             util::Seconds dt) {
  std::vector<FaultCode> faults;
  const CtaStatus status = anemometer.status();
  if (!status.membrane_intact) faults.push_back(FaultCode::kMembraneBroken);
  if (!status.package_healthy) faults.push_back(FaultCode::kPackageDegraded);
  if (status.adc_overload) faults.push_back(FaultCode::kAdcOverload);
  if (status.watchdog_tripped) faults.push_back(FaultCode::kWatchdog);

  const double v = reading.speed.value();
  if (v > config_.range_max.value()) faults.push_back(FaultCode::kRangeHigh);
  if (v < -config_.range_max.value()) faults.push_back(FaultCode::kRangeLow);

  if (have_prev_ && dt.value() > 0.0) {
    const double rate = std::abs(v - prev_speed_) / dt.value();
    if (rate > config_.max_rate_mps_per_s)
      faults.push_back(FaultCode::kRateLimit);
    const bool speed_frozen =
        std::abs(v - prev_speed_) < config_.stuck_epsilon_mps;
    // At an indicated zero the inversion dead band hides the speed, so the
    // channel only counts as frozen if the bridge voltage stopped moving too.
    const bool dead_band = std::abs(v) < config_.stuck_epsilon_mps;
    const bool voltage_frozen =
        std::abs(reading.bridge_voltage - prev_voltage_) <
        config_.stuck_epsilon_volts;
    if (speed_frozen && (!dead_band || voltage_frozen)) {
      if (++identical_count_ >= config_.stuck_count)
        faults.push_back(FaultCode::kStuckReading);
    } else {
      identical_count_ = 0;
    }
  }
  prev_speed_ = v;
  prev_voltage_ = reading.bridge_voltage;
  have_prev_ = true;

  // Every fault goes into the sensor's blackbox; the healthy→faulty edge
  // additionally dumps it, so the history *around* the first latch reaches
  // the operator before the ring moves on.
  for (FaultCode code : faults)
    anemometer.flight().record(anemometer.now().value(),
                               obs::FlightRecordKind::kFault,
                               static_cast<std::int32_t>(code), v,
                               fault_label(code));
  if (!faults.empty() && healthy_) {
    AQUA_TRACE_INSTANT_SIM("health.fault_latched", anemometer.now().value());
    util::log_warn() << "health: fault latched at t="
                     << anemometer.now().value() << " s ("
                     << fault_name(faults.front()) << "); flight recorder:\n"
                     << anemometer.flight().dump_text();
  }
  healthy_ = faults.empty();
  return faults;
}

void HealthMonitor::reset() {
  healthy_ = true;
  have_prev_ = false;
  prev_speed_ = 0.0;
  prev_voltage_ = 0.0;
  identical_count_ = 0;
}

}  // namespace aqua::cta
