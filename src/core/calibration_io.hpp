// calibration_io.hpp — persistence for calibration data. A field sensor is
// calibrated once against the station reference (paper §4: ISIF "also
// provides the monitoring of a commercial magnetic water flow sensor ... for
// comparing and calibrating") and the coefficients then live in the device's
// EEPROM; this module is the file-format twin of that EEPROM record: a small
// key = value text block with a format tag and a sanity-checked loader.
#pragma once

#include <iosfwd>
#include <string>

#include "core/calibration.hpp"
#include "util/units.hpp"

namespace aqua::cta {

/// Everything needed to reconstruct an estimator in the field.
struct CalibrationRecord {
  KingFit fit;
  util::MetresPerSecond full_scale = util::metres_per_second(2.5);
  util::Kelvin calibration_temperature = util::celsius(15.0);
  std::string sensor_id = "maf-0";
};

/// Writes the record as `aqua-cal-v1` key = value text.
void save_calibration(std::ostream& os, const CalibrationRecord& record);
void save_calibration_file(const std::string& path,
                           const CalibrationRecord& record);

/// Parses a record; throws std::runtime_error on bad magic, missing keys,
/// or non-physical values (b <= 0, n outside (0,1), full_scale <= 0).
[[nodiscard]] CalibrationRecord load_calibration(std::istream& is);
[[nodiscard]] CalibrationRecord load_calibration_file(const std::string& path);

}  // namespace aqua::cta
