// water_line.hpp — the instrumented measurement line of the evaluation
// campaign (paper §5, Fig. 10): a dedicated branch of a city water station in
// which "pressure and water speed could be fine tuned". The line follows
// mean-velocity / pressure / temperature schedules through a valve with a
// first-order lag, superposes physical turbulence (AR(1) fluctuation whose
// intensity grows with Reynolds number), generates water-hammer pressure
// spikes on fast valve moves, and reports the point velocity at the probe
// head plus the full maf::Environment the die model consumes.
#pragma once

#include "hydro/profiles.hpp"
#include "maf/environment.hpp"
#include "phys/carbonate.hpp"
#include "sim/integrator.hpp"
#include "sim/schedule.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::hydro {

struct WaterLineConfig {
  util::Metres pipe_diameter = util::millimetres(80.0);
  /// Probe head position as a fraction of the pipe radius (0 = axis).
  double probe_radius_fraction = 0.0;
  util::Seconds valve_tau = util::Seconds{1.5};  ///< actuator lag
  /// Base turbulence intensity (relative rms) in the fully turbulent regime.
  double turbulence_intensity = 0.02;
  util::Seconds turbulence_correlation = util::Seconds{0.05};
  /// Water-hammer spike: peak overpressure per (m/s) of fast velocity change,
  /// and its ring-down time. Joukowsky gives ~12 bar per m/s in steel pipe;
  /// the station's damped line is far milder.
  double hammer_bar_per_mps = 2.0;
  util::Seconds hammer_decay = util::Seconds{0.8};
  double dissolved_gas_saturation = 1.0;
  phys::WaterChemistry chemistry{};
};

class WaterLine {
 public:
  WaterLine(const WaterLineConfig& config, util::Rng rng);

  /// Profiles to follow; any may be defaulted (constant).
  void set_speed_schedule(sim::Schedule schedule);      ///< mean velocity, m/s
  void set_pressure_schedule(sim::Schedule schedule);   ///< static line, Pa
  void set_temperature_schedule(sim::Schedule schedule);///< bulk water, K

  /// Advances the line state by dt.
  void step(util::Seconds dt);

  /// Ground truth: area-mean line velocity (what a perfect magmeter reads).
  [[nodiscard]] util::MetresPerSecond mean_velocity() const;
  /// Point velocity at the probe head including turbulent fluctuation (what
  /// the hot wire is actually immersed in).
  [[nodiscard]] util::MetresPerSecond probe_velocity() const;
  [[nodiscard]] util::Pascals pressure() const;
  [[nodiscard]] util::Kelvin temperature() const;
  [[nodiscard]] util::Seconds now() const { return t_; }

  /// Environment snapshot for the MAF die at the probe position.
  [[nodiscard]] maf::Environment environment() const;

  [[nodiscard]] const WaterLineConfig& config() const { return config_; }

 private:
  WaterLineConfig config_;
  util::Rng rng_;
  sim::Schedule speed_schedule_;
  sim::Schedule pressure_schedule_;
  sim::Schedule temperature_schedule_;
  sim::FirstOrderLag valve_;
  util::Seconds t_{0.0};
  double turbulence_state_ = 0.0;  // AR(1), unit variance target
  double hammer_overpressure_ = 0.0;
  double prev_mean_velocity_ = 0.0;
};

}  // namespace aqua::hydro
