// network.hpp — steady-state hydraulic solver for a small water-distribution
// network. The paper's motivation (§6) is "diffusive monitoring in water
// distribution networks": many cheap insertion sensors spread over the pipes
// so that "any malfunction behaviour (e.g. water loss in tube)" can be
// "immediately localized and isolated". This module provides the network
// substrate for that application: junctions with demands, reservoirs with
// fixed heads, Darcy–Weisbach pipes, and pressure-dependent leak emitters.
//
// The solver iterates successive linearisation of the head-loss relation
// Δh = K(q)·q·|q| (friction factor refreshed from Re each sweep), assembling
// a nodal linear system solved with the dense solver — robust for the tens of
// nodes the monitoring scenarios use.
#pragma once

#include <cstddef>
#include <vector>

#include "state/serial.hpp"
#include "util/units.hpp"

namespace aqua::hydro {

class WaterNetwork {
 public:
  using NodeId = std::size_t;
  using PipeId = std::size_t;

  /// Junction with a consumer demand (m³/s) at the given elevation.
  NodeId add_junction(double elevation_m, double demand_m3s = 0.0);

  /// Reservoir/tank with a fixed hydraulic head (m).
  NodeId add_reservoir(double head_m);

  PipeId add_pipe(NodeId from, NodeId to, util::Metres length,
                  util::Metres diameter, double roughness_mm = 0.1);

  void set_demand(NodeId junction, double demand_m3s);

  /// Scales every junction demand by `factor` (diurnal pattern: night flow
  /// ~0.3, morning peak ~1.6 of the base demand).
  void scale_demands(double factor);

  /// Opens/closes an isolation valve on a pipe. A closed pipe carries
  /// (essentially) no flow — the "isolated" step of the paper's
  /// leak-management vision.
  void set_pipe_open(PipeId p, bool open);
  [[nodiscard]] bool pipe_open(PipeId p) const;

  /// Leak emitter at a junction: q_leak = C·√(pressure head). C in
  /// m³/s per √m; 0 removes the leak.
  void set_leak(NodeId junction, double emitter_coefficient);

  /// Solves the network. Returns false if the iteration failed to converge
  /// (the previous solution is left in place).
  [[nodiscard]] bool solve(util::Kelvin water_temperature = util::celsius(15.0));

  // --- topology/geometry accessors (fleet attachment, mass-balance checks) ---
  [[nodiscard]] NodeId pipe_from(PipeId p) const;
  [[nodiscard]] NodeId pipe_to(PipeId p) const;
  [[nodiscard]] util::Metres pipe_diameter(PipeId p) const;
  [[nodiscard]] double node_demand(NodeId n) const;  ///< m³/s (0 for reservoirs)
  [[nodiscard]] bool node_is_reservoir(NodeId n) const;

  [[nodiscard]] double node_head(NodeId n) const;
  /// Pressure head above elevation (m of water column).
  [[nodiscard]] double node_pressure_head(NodeId n) const;
  [[nodiscard]] double pipe_flow(PipeId p) const;  ///< m³/s, from→to positive
  [[nodiscard]] util::MetresPerSecond pipe_velocity(PipeId p) const;
  [[nodiscard]] double leak_flow(NodeId n) const;  ///< m³/s out of the network

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t pipe_count() const { return pipes_.size(); }
  /// Total demand + leak outflow (m³/s) — mass-balance checks in tests.
  [[nodiscard]] double total_outflow() const;

  /// Checkpoint support: demands, emitters, valve states and — critically for
  /// bit-identical resume — the last solution (heads and flows), which seeds
  /// the next solve's successive linearisation.
  void save_state(state::Writer& w) const {
    w.size(nodes_.size());
    for (const Node& n : nodes_) {
      w.f64(n.demand);
      w.f64(n.emitter);
      w.f64(n.head);
    }
    w.size(pipes_.size());
    for (const Pipe& p : pipes_) {
      w.f64(p.flow);
      w.boolean(p.open);
    }
  }
  void load_state(state::Reader& r) {
    if (r.size(24) != nodes_.size())
      throw state::Error("WaterNetwork: node count mismatch");
    for (Node& n : nodes_) {
      n.demand = r.f64();
      n.emitter = r.f64();
      n.head = r.f64();
    }
    if (r.size(9) != pipes_.size())
      throw state::Error("WaterNetwork: pipe count mismatch");
    for (Pipe& p : pipes_) {
      p.flow = r.f64();
      p.open = r.boolean();
    }
  }

 private:
  struct Node {
    bool reservoir;
    double elevation;  // m (junction) — reservoirs store head here
    double demand = 0.0;
    double emitter = 0.0;
    double head = 0.0;  // solution
  };
  struct Pipe {
    NodeId from, to;
    double length, diameter, roughness;  // m, m, m
    double flow = 0.0;                   // solution, m³/s
    bool open = true;
  };

  std::vector<Node> nodes_;
  std::vector<Pipe> pipes_;
};

}  // namespace aqua::hydro
