#include "hydro/profiles.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::hydro {

using phys::FluidProperties;
using util::Metres;
using util::MetresPerSecond;
using util::Pascals;

double pipe_reynolds(const FluidProperties& fluid, MetresPerSecond mean_velocity,
                     Metres diameter) {
  return fluid.density * std::abs(mean_velocity.value()) * diameter.value() /
         fluid.dynamic_viscosity;
}

namespace {
/// Logistic weight: 0 fully laminar, 1 fully turbulent.
double turbulence_weight(double re) {
  return 1.0 / (1.0 + std::exp(-(re - 3000.0) / 300.0));
}
}  // namespace

double profile_factor(double reynolds_number, double radius_fraction) {
  const double r = std::clamp(radius_fraction, 0.0, 1.0);
  const double laminar = 2.0 * (1.0 - r * r);
  // 1/7th power law: u/U_c = (1−r)^(1/7); mean/centreline = 0.8167.
  const double turbulent = std::pow(std::max(1.0 - r, 1e-9), 1.0 / 7.0) / 0.8167;
  const double w = turbulence_weight(reynolds_number);
  return (1.0 - w) * laminar + w * turbulent;
}

double centreline_factor(double reynolds_number) {
  return profile_factor(reynolds_number, 0.0);
}

double darcy_friction_factor(double reynolds_number, double relative_roughness) {
  if (relative_roughness < 0.0)
    throw std::invalid_argument("darcy_friction_factor: negative roughness");
  const double re = std::max(reynolds_number, 1.0);
  const double laminar = 64.0 / re;
  // Swamee–Jain explicit approximation of Colebrook.
  const double arg = relative_roughness / 3.7 + 5.74 / std::pow(re, 0.9);
  const double turbulent = 0.25 / std::pow(std::log10(arg), 2.0);
  const double w = turbulence_weight(re);
  return (1.0 - w) * laminar + w * turbulent;
}

Pascals pressure_drop(const FluidProperties& fluid,
                      MetresPerSecond mean_velocity, Metres diameter,
                      Metres length, double relative_roughness) {
  const double re = pipe_reynolds(fluid, mean_velocity, diameter);
  const double f = darcy_friction_factor(re, relative_roughness);
  const double v = mean_velocity.value();
  return Pascals{f * length.value() / diameter.value() * 0.5 * fluid.density *
                 v * std::abs(v)};
}

}  // namespace aqua::hydro
