#include "hydro/network.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "hydro/profiles.hpp"
#include "phys/fluid.hpp"
#include "util/math.hpp"

namespace aqua::hydro {

using util::Metres;
using util::MetresPerSecond;

namespace {
constexpr double kGravity = 9.80665;
constexpr double kPi = 3.14159265358979323846;
}  // namespace

WaterNetwork::NodeId WaterNetwork::add_junction(double elevation_m,
                                                double demand_m3s) {
  nodes_.push_back(Node{false, elevation_m, demand_m3s, 0.0, elevation_m + 20.0});
  return nodes_.size() - 1;
}

WaterNetwork::NodeId WaterNetwork::add_reservoir(double head_m) {
  nodes_.push_back(Node{true, head_m, 0.0, 0.0, head_m});
  return nodes_.size() - 1;
}

WaterNetwork::PipeId WaterNetwork::add_pipe(NodeId from, NodeId to,
                                            Metres length, Metres diameter,
                                            double roughness_mm) {
  if (from >= nodes_.size() || to >= nodes_.size() || from == to)
    throw std::invalid_argument("WaterNetwork: bad pipe endpoints");
  if (length.value() <= 0.0 || diameter.value() <= 0.0)
    throw std::invalid_argument("WaterNetwork: bad pipe geometry");
  pipes_.push_back(Pipe{from, to, length.value(), diameter.value(),
                        roughness_mm * 1e-3, 0.0});
  return pipes_.size() - 1;
}

void WaterNetwork::set_demand(NodeId junction, double demand_m3s) {
  if (junction >= nodes_.size() || nodes_[junction].reservoir)
    throw std::invalid_argument("WaterNetwork: set_demand needs a junction");
  nodes_[junction].demand = demand_m3s;
}

void WaterNetwork::scale_demands(double factor) {
  if (factor < 0.0)
    throw std::invalid_argument("WaterNetwork: negative demand factor");
  for (Node& n : nodes_)
    if (!n.reservoir) n.demand *= factor;
}

void WaterNetwork::set_pipe_open(PipeId p, bool open) {
  if (p >= pipes_.size()) throw std::out_of_range("WaterNetwork: bad pipe");
  pipes_[p].open = open;
  if (!open) pipes_[p].flow = 0.0;
}

bool WaterNetwork::pipe_open(PipeId p) const {
  if (p >= pipes_.size()) throw std::out_of_range("WaterNetwork: bad pipe");
  return pipes_[p].open;
}

void WaterNetwork::set_leak(NodeId junction, double emitter_coefficient) {
  if (junction >= nodes_.size() || nodes_[junction].reservoir)
    throw std::invalid_argument("WaterNetwork: set_leak needs a junction");
  if (emitter_coefficient < 0.0)
    throw std::invalid_argument("WaterNetwork: negative emitter coefficient");
  nodes_[junction].emitter = emitter_coefficient;
}

bool WaterNetwork::solve(util::Kelvin water_temperature) {
  const auto props = phys::water_properties(water_temperature);
  // Map junctions to unknown indices. A junction with no open incident pipe
  // is hydraulically disconnected (an isolated section): it depressurises to
  // its elevation and leaves the system.
  std::vector<bool> connected(nodes_.size(), false);
  for (const Pipe& p : pipes_) {
    if (!p.open) continue;
    connected[p.from] = true;
    connected[p.to] = true;
  }
  std::vector<std::size_t> unknown_of(nodes_.size(), SIZE_MAX);
  std::size_t n_unknown = 0;
  bool has_reservoir = false;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].reservoir) {
      has_reservoir = true;
    } else if (connected[i]) {
      unknown_of[i] = n_unknown++;
    } else {
      nodes_[i].head = nodes_[i].elevation;  // isolated: zero pressure head
    }
  }
  if (!has_reservoir)
    throw std::logic_error("WaterNetwork: needs at least one reservoir");
  if (n_unknown == 0) return true;

  // Successive linearisation: Δh = K·q·|q|  →  q ≈ Δh / (K·|q_prev|), with a
  // laminar-style floor so the first sweep is well-posed.
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<double> a(n_unknown * n_unknown, 0.0);
    std::vector<double> b(n_unknown, 0.0);

    for (Pipe& p : pipes_) {
      if (!p.open) continue;
      const double area = kPi * 0.25 * p.diameter * p.diameter;
      const double v = std::abs(p.flow) / area;
      const double re = std::max(
          10.0, pipe_reynolds(props, MetresPerSecond{v}, Metres{p.diameter}));
      const double f = darcy_friction_factor(re, p.roughness / p.diameter);
      const double k =
          f * p.length / (p.diameter * 2.0 * kGravity * area * area);
      const double q_floor = 1e-5;  // m³/s
      const double g = 1.0 / (k * std::max(std::abs(p.flow), q_floor));

      const Node& nf = nodes_[p.from];
      const Node& nt = nodes_[p.to];
      const std::size_t uf = unknown_of[p.from];
      const std::size_t ut = unknown_of[p.to];
      if (uf != SIZE_MAX) {
        a[uf * n_unknown + uf] += g;
        if (ut != SIZE_MAX)
          a[uf * n_unknown + ut] -= g;
        else
          b[uf] += g * nt.head;
      }
      if (ut != SIZE_MAX) {
        a[ut * n_unknown + ut] += g;
        if (uf != SIZE_MAX)
          a[ut * n_unknown + uf] -= g;
        else
          b[ut] += g * nf.head;
      }
    }

    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::size_t u = unknown_of[i];
      if (u == SIZE_MAX) continue;
      // Demand leaves the node; leak handled as a demand from the previous
      // head iterate (fixed-point).
      b[u] -= nodes_[i].demand + leak_flow(i);
    }

    std::vector<double> heads;
    try {
      heads = util::solve_linear(std::move(a), std::move(b));
    } catch (const std::invalid_argument&) {
      return false;  // disconnected component or degenerate system
    }

    // Update node heads (with damping) and pipe flows.
    double max_delta = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const std::size_t u = unknown_of[i];
      if (u == SIZE_MAX) continue;
      const double new_head = 0.5 * (nodes_[i].head + heads[u]);
      max_delta = std::max(max_delta, std::abs(new_head - nodes_[i].head));
      nodes_[i].head = new_head;
    }
    for (Pipe& p : pipes_) {
      if (!p.open) {
        p.flow = 0.0;
        continue;
      }
      const double area = kPi * 0.25 * p.diameter * p.diameter;
      const double v = std::abs(p.flow) / area;
      const double re = std::max(
          10.0, pipe_reynolds(props, MetresPerSecond{v}, Metres{p.diameter}));
      const double f = darcy_friction_factor(re, p.roughness / p.diameter);
      const double k =
          f * p.length / (p.diameter * 2.0 * kGravity * area * area);
      const double dh = nodes_[p.from].head - nodes_[p.to].head;
      const double q_floor = 1e-5;
      p.flow = dh / (k * std::max(std::abs(p.flow), q_floor));
    }
    if (max_delta < 1e-7 && iter > 3) return true;
  }
  return false;
}

WaterNetwork::NodeId WaterNetwork::pipe_from(PipeId p) const {
  if (p >= pipes_.size()) throw std::out_of_range("WaterNetwork: bad pipe");
  return pipes_[p].from;
}

WaterNetwork::NodeId WaterNetwork::pipe_to(PipeId p) const {
  if (p >= pipes_.size()) throw std::out_of_range("WaterNetwork: bad pipe");
  return pipes_[p].to;
}

Metres WaterNetwork::pipe_diameter(PipeId p) const {
  if (p >= pipes_.size()) throw std::out_of_range("WaterNetwork: bad pipe");
  return Metres{pipes_[p].diameter};
}

double WaterNetwork::node_demand(NodeId n) const {
  if (n >= nodes_.size()) throw std::out_of_range("WaterNetwork: bad node");
  return nodes_[n].reservoir ? 0.0 : nodes_[n].demand;
}

bool WaterNetwork::node_is_reservoir(NodeId n) const {
  if (n >= nodes_.size()) throw std::out_of_range("WaterNetwork: bad node");
  return nodes_[n].reservoir;
}

double WaterNetwork::node_head(NodeId n) const {
  if (n >= nodes_.size()) throw std::out_of_range("WaterNetwork: bad node");
  return nodes_[n].head;
}

double WaterNetwork::node_pressure_head(NodeId n) const {
  if (n >= nodes_.size()) throw std::out_of_range("WaterNetwork: bad node");
  return nodes_[n].reservoir ? 0.0 : nodes_[n].head - nodes_[n].elevation;
}

double WaterNetwork::pipe_flow(PipeId p) const {
  if (p >= pipes_.size()) throw std::out_of_range("WaterNetwork: bad pipe");
  return pipes_[p].flow;
}

MetresPerSecond WaterNetwork::pipe_velocity(PipeId p) const {
  if (p >= pipes_.size()) throw std::out_of_range("WaterNetwork: bad pipe");
  const Pipe& pipe = pipes_[p];
  const double area = kPi * 0.25 * pipe.diameter * pipe.diameter;
  return MetresPerSecond{pipe.flow / area};
}

double WaterNetwork::leak_flow(NodeId n) const {
  if (n >= nodes_.size()) throw std::out_of_range("WaterNetwork: bad node");
  const Node& node = nodes_[n];
  if (node.reservoir || node.emitter <= 0.0) return 0.0;
  const double pressure_head = std::max(0.0, node.head - node.elevation);
  return node.emitter * std::sqrt(pressure_head);
}

double WaterNetwork::total_outflow() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].reservoir) continue;
    acc += nodes_[i].demand + leak_flow(i);
  }
  return acc;
}

}  // namespace aqua::hydro
