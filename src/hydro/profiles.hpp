// profiles.hpp — pipe velocity-profile corrections. An insertion probe (paper
// Fig. 9/10) samples the *point* velocity at its head, while a reference
// magmeter reports the *area-mean* velocity; calibrating one against the
// other needs the profile factor, which depends on the flow regime.
//
// Laminar (Re < ~2300): Poiseuille parabola, centreline = 2·mean.
// Turbulent (Re > ~4000): 1/7th-power law, centreline ≈ 1.224·mean.
// Transition: smooth logistic blend (real pipes meander between the two).
#pragma once

#include "phys/fluid.hpp"
#include "util/units.hpp"

namespace aqua::hydro {

/// Pipe Reynolds number from the mean velocity.
[[nodiscard]] double pipe_reynolds(const phys::FluidProperties& fluid,
                                   util::MetresPerSecond mean_velocity,
                                   util::Metres diameter);

/// Local/mean velocity ratio at normalised radius r (0 = axis, 1 = wall) for
/// the given pipe Reynolds number.
[[nodiscard]] double profile_factor(double reynolds_number, double radius_fraction);

/// Ratio of centreline to mean velocity.
[[nodiscard]] double centreline_factor(double reynolds_number);

/// Darcy friction factor: 64/Re laminar, Swamee–Jain turbulent, blended in
/// transition. `relative_roughness` = eps/D.
[[nodiscard]] double darcy_friction_factor(double reynolds_number,
                                           double relative_roughness);

/// Pressure drop over a pipe length at the given mean velocity
/// (Darcy–Weisbach).
[[nodiscard]] util::Pascals pressure_drop(const phys::FluidProperties& fluid,
                                          util::MetresPerSecond mean_velocity,
                                          util::Metres diameter,
                                          util::Metres length,
                                          double relative_roughness);

}  // namespace aqua::hydro
