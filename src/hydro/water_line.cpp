#include "hydro/water_line.hpp"

#include <algorithm>
#include <cmath>

namespace aqua::hydro {

using util::Kelvin;
using util::MetresPerSecond;
using util::Pascals;
using util::Seconds;

WaterLine::WaterLine(const WaterLineConfig& config, util::Rng rng)
    : config_(config),
      rng_(rng),
      speed_schedule_(0.0),
      pressure_schedule_(util::bar(2.0).value()),
      temperature_schedule_(util::celsius(15.0).value()),
      valve_(0.0, config.valve_tau) {}

void WaterLine::set_speed_schedule(sim::Schedule schedule) {
  speed_schedule_ = std::move(schedule);
}
void WaterLine::set_pressure_schedule(sim::Schedule schedule) {
  pressure_schedule_ = std::move(schedule);
}
void WaterLine::set_temperature_schedule(sim::Schedule schedule) {
  temperature_schedule_ = std::move(schedule);
}

void WaterLine::step(Seconds dt) {
  t_ += dt;
  const double target = speed_schedule_.at(t_);
  const double mean_before = valve_.value();
  const double mean_after = valve_.step(target, dt);

  // Water hammer: a fast velocity change rings the line; track the rate of
  // change through the valve and let the overpressure decay.
  const double dv_dt = (mean_after - mean_before) / std::max(dt.value(), 1e-12);
  const double spike =
      config_.hammer_bar_per_mps * 1e5 * std::abs(dv_dt) * dt.value();
  hammer_overpressure_ += spike;
  hammer_overpressure_ *= std::exp(-dt.value() / config_.hammer_decay.value());

  // Turbulence: AR(1) (Ornstein-Uhlenbeck) with unit stationary variance.
  const double a = std::exp(-dt.value() / config_.turbulence_correlation.value());
  turbulence_state_ = a * turbulence_state_ +
                      std::sqrt(std::max(0.0, 1.0 - a * a)) * rng_.gaussian();
  prev_mean_velocity_ = mean_after;
}

MetresPerSecond WaterLine::mean_velocity() const {
  return MetresPerSecond{prev_mean_velocity_};
}

MetresPerSecond WaterLine::probe_velocity() const {
  const auto props = phys::water_properties(temperature());
  const double re = pipe_reynolds(props, mean_velocity(), config_.pipe_diameter);
  const double factor = profile_factor(re, config_.probe_radius_fraction);
  // Turbulent fluctuation scales with the local speed and dies out in the
  // laminar regime.
  const double regime = 1.0 / (1.0 + std::exp(-(re - 3000.0) / 300.0));
  const double v_point = prev_mean_velocity_ * factor;
  const double fluct = config_.turbulence_intensity * regime * v_point;
  return MetresPerSecond{v_point + fluct * turbulence_state_};
}

Pascals WaterLine::pressure() const {
  return Pascals{pressure_schedule_.at(t_) + hammer_overpressure_};
}

Kelvin WaterLine::temperature() const {
  return Kelvin{temperature_schedule_.at(t_)};
}

maf::Environment WaterLine::environment() const {
  maf::Environment env;
  env.medium = phys::Medium::kWater;
  env.speed = probe_velocity();
  env.fluid_temperature = temperature();
  env.pressure = pressure();
  env.dissolved_gas_saturation = config_.dissolved_gas_saturation;
  env.chemistry = config_.chemistry;
  return env;
}

}  // namespace aqua::hydro
