// pid.hpp — discrete PI/PID controller with clamped output and conditional
// anti-windup. The paper's constant-temperature loop is "reference
// subtraction, PI controller and feedback actuation" (§4) running as a
// software IP; the same class also backs the valve controller on the test rig.
#pragma once

#include "state/serial.hpp"
#include "util/units.hpp"

namespace aqua::dsp {

struct PidGains {
  double kp = 0.0;
  double ki = 0.0;  ///< per second (continuous-time gain; discretised by dt)
  double kd = 0.0;  ///< seconds
};

struct PidLimits {
  double out_min = -1e30;
  double out_max = 1e30;
};

class PidController {
 public:
  PidController(const PidGains& gains, const PidLimits& limits, util::Hertz rate);

  /// One control step: returns the actuation for the given error.
  double update(double error);

  /// Resets dynamic state so the next update() with error ≈ `error` reproduces
  /// `output` (clamped to the limits). The integrator is back-calculated as
  /// clamp(output) − kp·error: pre-loading it with the raw output would fold
  /// the proportional term in twice and bump the loop on resume.
  void reset(double output = 0.0, double error = 0.0);

  [[nodiscard]] double output() const { return last_output_; }
  [[nodiscard]] double integrator() const { return integral_; }
  [[nodiscard]] const PidGains& gains() const { return gains_; }
  void set_gains(const PidGains& gains) { gains_ = gains; }

  /// Checkpoint support: integrator, derivative memory and last output.
  void save_state(state::Writer& w) const {
    w.f64(integral_);
    w.f64(prev_error_);
    w.boolean(have_prev_);
    w.f64(last_output_);
  }
  void load_state(state::Reader& r) {
    integral_ = r.f64();
    prev_error_ = r.f64();
    have_prev_ = r.boolean();
    last_output_ = r.f64();
  }

 private:
  PidGains gains_;
  PidLimits limits_;
  double dt_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool have_prev_ = false;
  double last_output_ = 0.0;
};

}  // namespace aqua::dsp
