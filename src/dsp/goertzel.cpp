#include "dsp/goertzel.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::dsp {

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

Goertzel::Goertzel(util::Hertz f, util::Hertz fs, std::size_t block_size)
    : block_(block_size) {
  if (fs.value() <= 0.0 || f.value() < 0.0 || f.value() >= 0.5 * fs.value())
    throw std::invalid_argument("Goertzel: frequency must be in [0, fs/2)");
  if (block_size < 8)
    throw std::invalid_argument("Goertzel: block size must be >= 8");
  const double w = kTwoPi * f.value() / fs.value();
  coeff_ = 2.0 * std::cos(w);
  phasor_ = std::polar(1.0, w);
}

bool Goertzel::push(double x) {
  const double s0 = x + coeff_ * s1_ - s2_;
  s2_ = s1_;
  s1_ = s0;
  if (++count_ < block_) return false;
  // Finalise: complex bin = s1 − e^{-jw}·s2, rotated by e^{+jw} so the phase
  // is referenced to the first sample of the block (exact for coherent
  // blocks, i.e. when f·block/fs is an integer), normalised to amplitude.
  const std::complex<double> y = s1_ - std::conj(phasor_) * s2_;
  result_ = y * phasor_ * (2.0 / static_cast<double>(block_));
  count_ = 0;
  s1_ = s2_ = 0.0;
  return true;
}

double Goertzel::amplitude() const { return std::abs(result_); }

double Goertzel::phase() const { return std::arg(result_); }

void Goertzel::reset() {
  count_ = 0;
  s1_ = s2_ = 0.0;
  result_ = {0.0, 0.0};
}

}  // namespace aqua::dsp
