// nco.hpp — numerically controlled oscillator (the ISIF "sine wave generator"
// IP). Phase-accumulator design with a quarter-wave LUT and linear
// interpolation, as the hardware block would implement it.
#pragma once

#include <array>
#include <cstdint>

#include "util/units.hpp"

namespace aqua::dsp {

class Nco {
 public:
  Nco(util::Hertz frequency, util::Hertz sample_rate, double amplitude = 1.0);

  /// Produces the next sample and advances the phase.
  double next();

  void set_frequency(util::Hertz frequency);
  void set_amplitude(double amplitude) { amplitude_ = amplitude; }
  void reset_phase() { phase_ = 0; }

  [[nodiscard]] util::Hertz frequency() const;

 private:
  static constexpr int kLutBits = 10;
  static constexpr std::size_t kLutSize = std::size_t{1} << kLutBits;
  static const std::array<double, kLutSize + 1>& lut();

  double sample_rate_;
  std::uint32_t phase_ = 0;
  std::uint32_t increment_ = 0;
  double amplitude_;
};

}  // namespace aqua::dsp
