#include "dsp/cic.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::dsp {

CicDecimator::CicDecimator(int order, int decimation, int differential_delay)
    : order_(order), decimation_(decimation), delay_(differential_delay) {
  if (order < 1 || order > 8)
    throw std::invalid_argument("CicDecimator: order out of range [1,8]");
  if (decimation < 2)
    throw std::invalid_argument("CicDecimator: decimation must be >= 2");
  if (differential_delay < 1 || differential_delay > 2)
    throw std::invalid_argument("CicDecimator: differential delay must be 1 or 2");
  // Word-growth check: output magnitude ≈ (R·M)^N · 2^31 must fit int64.
  if (std::pow(static_cast<double>(decimation) * differential_delay, order) >
      kInputScale)
    throw std::invalid_argument(
        "CicDecimator: (R*M)^N exceeds the integer datapath headroom (2^31)");
  integrators_.assign(static_cast<std::size_t>(order), 0);
  comb_delays_.assign(
      static_cast<std::size_t>(order),
      std::vector<std::uint64_t>(static_cast<std::size_t>(delay_), 0));
}

std::optional<double> CicDecimator::push(double x) {
  // Quantise the input to Q31 (the hardware's input word); all further
  // arithmetic is exact modulo 2^64.
  const auto sample = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::llround(x * kInputScale)));

  // Integrator cascade at the input rate (wrap-around addition).
  std::uint64_t v = sample;
  for (std::uint64_t& acc : integrators_) {
    acc += v;
    v = acc;
  }
  if (++phase_ < decimation_) return std::nullopt;
  phase_ = 0;

  // Comb cascade at the output rate.
  std::uint64_t y = integrators_.back();
  for (auto& hist : comb_delays_) {
    const std::uint64_t delayed = hist.front();
    for (std::size_t i = 0; i + 1 < hist.size(); ++i) hist[i] = hist[i + 1];
    hist.back() = y;
    y -= delayed;  // wrap-around subtraction: exact difference
  }
  return static_cast<double>(static_cast<std::int64_t>(y)) /
         (raw_gain() * kInputScale);
}

void CicDecimator::reset() {
  phase_ = 0;
  for (std::uint64_t& acc : integrators_) acc = 0;
  for (auto& hist : comb_delays_)
    for (std::uint64_t& h : hist) h = 0;
}

double CicDecimator::raw_gain() const {
  return std::pow(static_cast<double>(decimation_) * delay_, order_);
}

}  // namespace aqua::dsp
