#include "dsp/cic.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::dsp {

CicDecimator::CicDecimator(int order, int decimation, int differential_delay)
    : order_(order), decimation_(decimation), delay_(differential_delay) {
  if (order < 1 || order > 8)
    throw std::invalid_argument("CicDecimator: order out of range [1,8]");
  if (decimation < 1)
    throw std::invalid_argument("CicDecimator: decimation must be >= 1");
  if (differential_delay < 1 || differential_delay > 2)
    throw std::invalid_argument("CicDecimator: differential delay must be 1 or 2");
  // Word-growth check: output magnitude ≈ (R·M)^N · 2^31 must fit int64.
  if (std::pow(static_cast<double>(decimation) * differential_delay, order) >
      kInputScale)
    throw std::invalid_argument(
        "CicDecimator: (R*M)^N exceeds the integer datapath headroom (2^31)");
  integrators_.assign(static_cast<std::size_t>(order), 0);
  comb_delays_.assign(
      static_cast<std::size_t>(order),
      std::vector<std::uint64_t>(static_cast<std::size_t>(delay_), 0));
}

std::optional<double> CicDecimator::push(double x) {
  // Quantise the input to Q31 (the hardware's input word); all further
  // arithmetic is exact modulo 2^64.
  const auto sample = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(std::llround(x * kInputScale)));

  // Integrator cascade at the input rate (wrap-around addition).
  std::uint64_t v = sample;
  for (std::uint64_t& acc : integrators_) {
    acc += v;
    v = acc;
  }
  if (++phase_ < decimation_) return std::nullopt;
  phase_ = 0;

  // Comb cascade at the output rate.
  std::uint64_t y = integrators_.back();
  for (auto& hist : comb_delays_) {
    const std::uint64_t delayed = hist.front();
    for (std::size_t i = 0; i + 1 < hist.size(); ++i) hist[i] = hist[i + 1];
    hist.back() = y;
    y -= delayed;  // wrap-around subtraction: exact difference
  }
  return static_cast<double>(static_cast<std::int64_t>(y)) /
         (raw_gain() * kInputScale);
}

std::size_t CicDecimator::push_block(std::span<const double> x,
                                     std::span<double> out) {
  // Hoist the cascade state into a fixed-size local so the inner loop runs on
  // registers/L1 instead of chasing the heap vector every sample. order_ ≤ 8
  // by construction.
  std::uint64_t acc[8];
  const std::size_t order = static_cast<std::size_t>(order_);
  for (std::size_t j = 0; j < order; ++j) acc[j] = integrators_[j];
  int phase = phase_;
  std::size_t written = 0;
  // Same divisor expression as push(): a reciprocal-multiply would round
  // differently and break bit-identity with the scalar path.
  const double denom = raw_gain() * kInputScale;

  for (const double xi : x) {
    std::uint64_t v = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(std::llround(xi * kInputScale)));
    for (std::size_t j = 0; j < order; ++j) {
      acc[j] += v;
      v = acc[j];
    }
    if (++phase < decimation_) continue;
    phase = 0;

    std::uint64_t y = acc[order - 1];
    for (auto& hist : comb_delays_) {
      const std::uint64_t delayed = hist.front();
      for (std::size_t i = 0; i + 1 < hist.size(); ++i) hist[i] = hist[i + 1];
      hist.back() = y;
      y -= delayed;
    }
    if (written >= out.size())
      throw std::invalid_argument("CicDecimator: output block too small");
    out[written++] = static_cast<double>(static_cast<std::int64_t>(y)) / denom;
  }

  for (std::size_t j = 0; j < order; ++j) integrators_[j] = acc[j];
  phase_ = phase;
  return written;
}

CicDecimator::BlockKernel CicDecimator::begin_block() const {
  BlockKernel k{};
  for (std::size_t j = 0; j < integrators_.size(); ++j)
    k.acc[j] = integrators_[j];
  k.phase = phase_;
  k.order = order_;
  k.decimation = decimation_;
  return k;
}

double CicDecimator::emit(const BlockKernel& k) {
  std::uint64_t y = k.acc[static_cast<std::size_t>(k.order) - 1];
  for (auto& hist : comb_delays_) {
    const std::uint64_t delayed = hist.front();
    for (std::size_t i = 0; i + 1 < hist.size(); ++i) hist[i] = hist[i + 1];
    hist.back() = y;
    y -= delayed;
  }
  return static_cast<double>(static_cast<std::int64_t>(y)) /
         (raw_gain() * kInputScale);
}

void CicDecimator::commit_block(const BlockKernel& k) {
  for (std::size_t j = 0; j < integrators_.size(); ++j)
    integrators_[j] = k.acc[j];
  phase_ = k.phase;
}

void CicDecimator::reset() {
  phase_ = 0;
  for (std::uint64_t& acc : integrators_) acc = 0;
  for (auto& hist : comb_delays_)
    for (std::uint64_t& h : hist) h = 0;
}

double CicDecimator::raw_gain() const {
  return std::pow(static_cast<double>(decimation_) * delay_, order_);
}

}  // namespace aqua::dsp
