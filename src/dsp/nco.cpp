#include "dsp/nco.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::dsp {

using util::Hertz;

namespace {
constexpr double kTwoPi = 6.283185307179586;
}

const std::array<double, Nco::kLutSize + 1>& Nco::lut() {
  static const auto table = [] {
    std::array<double, kLutSize + 1> t{};
    for (std::size_t i = 0; i <= kLutSize; ++i)
      t[i] = std::sin(kTwoPi * static_cast<double>(i) / (4.0 * kLutSize));
    return t;
  }();
  return table;
}

Nco::Nco(Hertz frequency, Hertz sample_rate, double amplitude)
    : sample_rate_(sample_rate.value()), amplitude_(amplitude) {
  if (sample_rate_ <= 0.0) throw std::invalid_argument("Nco: bad sample rate");
  set_frequency(frequency);
}

void Nco::set_frequency(Hertz frequency) {
  if (frequency.value() < 0.0 || frequency.value() >= 0.5 * sample_rate_)
    throw std::invalid_argument("Nco: frequency must be in [0, fs/2)");
  increment_ = static_cast<std::uint32_t>(
      frequency.value() / sample_rate_ * 4294967296.0);
}

Hertz Nco::frequency() const {
  return Hertz{static_cast<double>(increment_) / 4294967296.0 * sample_rate_};
}

double Nco::next() {
  // Quarter-wave symmetry: top 2 bits select the quadrant, the next kLutBits
  // address the table, remaining bits drive linear interpolation.
  const std::uint32_t quadrant = phase_ >> 30;
  const std::uint32_t in_quadrant = (phase_ << 2) >> 2;  // lower 30 bits
  const std::uint32_t index = in_quadrant >> (30 - kLutBits);
  const double frac =
      static_cast<double>(in_quadrant & ((1u << (30 - kLutBits)) - 1)) /
      static_cast<double>(1u << (30 - kLutBits));

  const auto& t = lut();
  auto sample_at = [&](std::uint32_t idx, double f) {
    const double rising = t[idx] + f * (t[idx + 1] - t[idx]);
    return rising;
  };
  double s;
  switch (quadrant) {
    case 0: s = sample_at(index, frac); break;
    case 1: s = sample_at(kLutSize - 1 - index, 1.0 - frac); break;
    case 2: s = -sample_at(index, frac); break;
    default: s = -sample_at(kLutSize - 1 - index, 1.0 - frac); break;
  }
  phase_ += increment_;
  return amplitude_ * s;
}

}  // namespace aqua::dsp
