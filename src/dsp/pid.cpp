#include "dsp/pid.hpp"

#include <algorithm>
#include <stdexcept>

namespace aqua::dsp {

PidController::PidController(const PidGains& gains, const PidLimits& limits,
                             util::Hertz rate)
    : gains_(gains), limits_(limits), dt_(1.0 / rate.value()) {
  if (rate.value() <= 0.0)
    throw std::invalid_argument("PidController: non-positive rate");
  if (limits.out_min >= limits.out_max)
    throw std::invalid_argument("PidController: empty output range");
}

double PidController::update(double error) {
  const double p = gains_.kp * error;
  double d = 0.0;
  if (gains_.kd != 0.0 && have_prev_) d = gains_.kd * (error - prev_error_) / dt_;
  prev_error_ = error;
  have_prev_ = true;

  // Tentative integration, then conditional anti-windup: only keep the
  // increment if it does not push the output further into saturation.
  const double tentative_integral = integral_ + gains_.ki * error * dt_;
  double u = p + tentative_integral + d;
  if (u > limits_.out_max) {
    u = limits_.out_max;
    if (gains_.ki * error < 0.0) integral_ = tentative_integral;  // unwinding
  } else if (u < limits_.out_min) {
    u = limits_.out_min;
    if (gains_.ki * error > 0.0) integral_ = tentative_integral;
  } else {
    integral_ = tentative_integral;
  }
  last_output_ = u;
  return u;
}

void PidController::reset(double output, double error) {
  const double u = std::clamp(output, limits_.out_min, limits_.out_max);
  integral_ = u - gains_.kp * error;
  prev_error_ = error;
  have_prev_ = false;
  last_output_ = u;
}

}  // namespace aqua::dsp
