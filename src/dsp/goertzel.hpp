// goertzel.hpp — single-bin DFT (Goertzel algorithm). The ISIF platform's
// test bus lets firmware drive a block with the sine-generator IP and probe
// its output; Goertzel is the matching detector that measures amplitude and
// phase at the stimulus frequency with O(1) state — the classic built-in
// self-test pairing on mixed-signal parts.
#pragma once

#include <complex>
#include <cstddef>

#include "util/units.hpp"

namespace aqua::dsp {

class Goertzel {
 public:
  /// Detector for frequency f at sample rate fs over blocks of `block_size`
  /// samples. f must lie in [0, fs/2).
  Goertzel(util::Hertz f, util::Hertz fs, std::size_t block_size);

  /// Pushes one sample; returns true when a block completed (results valid
  /// until the next push).
  bool push(double x);

  /// Amplitude of the sinusoidal component at f in the last block.
  [[nodiscard]] double amplitude() const;
  /// Phase (radians) of that component.
  [[nodiscard]] double phase() const;
  /// Complex DFT bin value (normalised so a unit sine yields magnitude 1).
  [[nodiscard]] std::complex<double> bin() const { return result_; }

  [[nodiscard]] std::size_t block_size() const { return block_; }
  void reset();

 private:
  double coeff_;
  std::complex<double> phasor_;
  std::size_t block_;
  std::size_t count_ = 0;
  double s1_ = 0.0, s2_ = 0.0;
  std::complex<double> result_{0.0, 0.0};
};

}  // namespace aqua::dsp
