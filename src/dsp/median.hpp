// median.hpp — streaming median despiker. A detaching bubble produces a
// single-sample glitch on the bridge voltage that a linear filter smears into
// the reading; a short median kills it outright. Used as an optional stage
// ahead of the 0.1 Hz output filter.
#pragma once

#include <cstddef>
#include <deque>
#include <vector>

namespace aqua::dsp {

class MedianFilter {
 public:
  /// Odd window length >= 3.
  explicit MedianFilter(std::size_t window);

  /// Pushes a sample and returns the median of the last `window` samples
  /// (of however many arrived, during fill-in).
  double process(double x);

  void reset();
  [[nodiscard]] std::size_t window() const { return window_; }

 private:
  std::size_t window_;
  std::deque<double> buf_;
  std::vector<double> scratch_;
};

}  // namespace aqua::dsp
