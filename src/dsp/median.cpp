#include "dsp/median.hpp"

#include <algorithm>
#include <stdexcept>

namespace aqua::dsp {

MedianFilter::MedianFilter(std::size_t window) : window_(window) {
  if (window < 3 || window % 2 == 0)
    throw std::invalid_argument("MedianFilter: window must be odd and >= 3");
}

double MedianFilter::process(double x) {
  buf_.push_back(x);
  if (buf_.size() > window_) buf_.pop_front();
  scratch_.assign(buf_.begin(), buf_.end());
  const std::size_t mid = scratch_.size() / 2;
  std::nth_element(scratch_.begin(), scratch_.begin() + mid, scratch_.end());
  return scratch_[mid];
}

void MedianFilter::reset() { buf_.clear(); }

}  // namespace aqua::dsp
