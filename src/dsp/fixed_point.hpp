// fixed_point.hpp — Q-format fixed-point arithmetic matching what the ISIF
// hardware IPs compute in silicon. The platform's "exact matching between
// software and hardware IPs" (paper §3) only holds if both sides quantise the
// same way, so the software IP layer routes its math through these helpers
// when configured for bit-accurate mode.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>

namespace aqua::dsp {

/// A signed fixed-point value with F fractional bits stored in 32 bits.
/// Arithmetic saturates instead of wrapping (the hardware IPs saturate).
template <int F>
class Fixed {
  static_assert(F > 0 && F < 31, "fractional bits must be in (0, 31)");

 public:
  using Raw = std::int32_t;
  static constexpr double kScale = static_cast<double>(1 << F);
  static constexpr Raw kMax = std::numeric_limits<Raw>::max();
  static constexpr Raw kMin = std::numeric_limits<Raw>::min();

  constexpr Fixed() = default;

  static constexpr Fixed from_raw(Raw r) {
    Fixed f;
    f.raw_ = r;
    return f;
  }

  /// Quantises a double (round-to-nearest, saturating).
  static Fixed from_double(double v) {
    const double scaled = v * kScale;
    if (scaled >= static_cast<double>(kMax)) return from_raw(kMax);
    if (scaled <= static_cast<double>(kMin)) return from_raw(kMin);
    return from_raw(static_cast<Raw>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5));
  }

  [[nodiscard]] constexpr Raw raw() const { return raw_; }
  [[nodiscard]] double to_double() const {
    return static_cast<double>(raw_) / kScale;
  }

  friend Fixed operator+(Fixed a, Fixed b) {
    return from_raw(saturate(static_cast<std::int64_t>(a.raw_) + b.raw_));
  }
  friend Fixed operator-(Fixed a, Fixed b) {
    return from_raw(saturate(static_cast<std::int64_t>(a.raw_) - b.raw_));
  }
  friend Fixed operator*(Fixed a, Fixed b) {
    // Full 64-bit product, then shift back with rounding.
    const std::int64_t p = static_cast<std::int64_t>(a.raw_) * b.raw_;
    return from_raw(saturate((p + (std::int64_t{1} << (F - 1))) >> F));
  }
  friend constexpr bool operator==(Fixed a, Fixed b) { return a.raw_ == b.raw_; }
  friend constexpr auto operator<=>(Fixed a, Fixed b) { return a.raw_ <=> b.raw_; }

 private:
  static constexpr Raw saturate(std::int64_t v) {
    if (v > kMax) return kMax;
    if (v < kMin) return kMin;
    return static_cast<Raw>(v);
  }
  Raw raw_ = 0;
};

/// The Q-formats the ISIF digital section uses.
using Q15 = Fixed<15>;  ///< coefficients / unit-range signals
using Q23 = Fixed<23>;  ///< 24-bit accumulator-style signals

/// Quantises a double to a B-bit signed integer covering ±full_scale, the way
/// the ADC/DAC interfaces do. Returns the integer code.
[[nodiscard]] std::int32_t quantize_code(double value, double full_scale, int bits);

/// Reconstructs the value represented by a B-bit signed code over ±full_scale.
[[nodiscard]] double dequantize_code(std::int32_t code, double full_scale, int bits);

/// One LSB of a B-bit signed converter spanning ±full_scale.
[[nodiscard]] double lsb_size(double full_scale, int bits);

}  // namespace aqua::dsp
