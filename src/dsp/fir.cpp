#include "dsp/fir.hpp"

#include <cmath>
#include <complex>
#include <numeric>
#include <stdexcept>

namespace aqua::dsp {

using util::Hertz;

namespace {
constexpr double kPi = 3.14159265358979323846;

double window_value(Window w, std::size_t i, std::size_t n) {
  const double x = static_cast<double>(i) / static_cast<double>(n - 1);
  switch (w) {
    case Window::kRectangular: return 1.0;
    case Window::kHamming: return 0.54 - 0.46 * std::cos(2.0 * kPi * x);
    case Window::kBlackman:
      return 0.42 - 0.5 * std::cos(2.0 * kPi * x) + 0.08 * std::cos(4.0 * kPi * x);
  }
  return 1.0;
}
}  // namespace

std::vector<double> design_fir_lowpass(std::size_t taps, Hertz fc, Hertz fs,
                                       Window window) {
  if (taps < 3) throw std::invalid_argument("design_fir_lowpass: need >= 3 taps");
  if (fc.value() <= 0.0 || fc.value() >= 0.5 * fs.value())
    throw std::invalid_argument("design_fir_lowpass: cutoff must be in (0, fs/2)");
  const double ft = fc.value() / fs.value();  // normalised cutoff
  const double mid = 0.5 * static_cast<double>(taps - 1);
  std::vector<double> h(taps);
  for (std::size_t i = 0; i < taps; ++i) {
    const double m = static_cast<double>(i) - mid;
    const double sinc =
        m == 0.0 ? 2.0 * ft : std::sin(2.0 * kPi * ft * m) / (kPi * m);
    h[i] = sinc * window_value(window, i, taps);
  }
  const double sum = std::accumulate(h.begin(), h.end(), 0.0);
  for (double& v : h) v /= sum;
  return h;
}

std::vector<double> design_moving_average(std::size_t taps) {
  if (taps == 0) throw std::invalid_argument("design_moving_average: 0 taps");
  return std::vector<double>(taps, 1.0 / static_cast<double>(taps));
}

FirFilter::FirFilter(std::vector<double> taps)
    : taps_(std::move(taps)), delay_(taps_.size(), 0.0) {
  if (taps_.empty()) throw std::invalid_argument("FirFilter: empty taps");
}

double FirFilter::process(double x) {
  delay_[head_] = x;
  double acc = 0.0;
  std::size_t idx = head_;
  for (double tap : taps_) {
    acc += tap * delay_[idx];
    idx = (idx == 0) ? delay_.size() - 1 : idx - 1;
  }
  head_ = (head_ + 1) % delay_.size();
  return acc;
}

void FirFilter::reset() {
  std::fill(delay_.begin(), delay_.end(), 0.0);
  head_ = 0;
}

double FirFilter::group_delay() const {
  return 0.5 * static_cast<double>(taps_.size() - 1);
}

double FirFilter::magnitude(Hertz f, Hertz fs) const {
  const double w = 2.0 * kPi * f.value() / fs.value();
  std::complex<double> h = 0.0;
  for (std::size_t i = 0; i < taps_.size(); ++i)
    h += taps_[i] * std::polar(1.0, -w * static_cast<double>(i));
  return std::abs(h);
}

}  // namespace aqua::dsp
