// fir.hpp — FIR filtering and windowed-sinc design, mirroring the ISIF FIR IP.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/units.hpp"

namespace aqua::dsp {

enum class Window { kRectangular, kHamming, kBlackman };

/// Windowed-sinc low-pass taps of the given (odd preferred) length; taps are
/// normalised to unity DC gain.
[[nodiscard]] std::vector<double> design_fir_lowpass(std::size_t taps,
                                                     util::Hertz fc,
                                                     util::Hertz fs,
                                                     Window window = Window::kHamming);

/// Moving-average taps (boxcar) — the simplest decimation-friendly FIR.
[[nodiscard]] std::vector<double> design_moving_average(std::size_t taps);

class FirFilter {
 public:
  explicit FirFilter(std::vector<double> taps);

  double process(double x);
  void reset();

  [[nodiscard]] std::span<const double> taps() const { return taps_; }
  [[nodiscard]] std::size_t length() const { return taps_.size(); }
  /// Group delay in samples ((N−1)/2 for the symmetric designs used here).
  [[nodiscard]] double group_delay() const;
  /// Magnitude response at f given sample rate fs.
  [[nodiscard]] double magnitude(util::Hertz f, util::Hertz fs) const;

 private:
  std::vector<double> taps_;
  std::vector<double> delay_;  // circular buffer
  std::size_t head_ = 0;
};

}  // namespace aqua::dsp
