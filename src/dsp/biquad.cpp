#include "dsp/biquad.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

namespace aqua::dsp {

using util::Hertz;

double Biquad::process(double x) {
  const double y = c_.b0 * x + s1_;
  s1_ = c_.b1 * x - c_.a1 * y + s2_;
  s2_ = c_.b2 * x - c_.a2 * y;
  return y;
}

void Biquad::reset() { s1_ = s2_ = 0.0; }

void Biquad::prime(double x) {
  // Steady state for constant input x: output y* = x·H(1).
  const double h1 = (c_.b0 + c_.b1 + c_.b2) / (1.0 + c_.a1 + c_.a2);
  const double y = x * h1;
  // From the TDF-II recurrences with constant x and y:
  s2_ = c_.b2 * x - c_.a2 * y;
  s1_ = c_.b1 * x - c_.a1 * y + s2_;
}

BiquadCascade::BiquadCascade(std::vector<BiquadCoefficients> sections) {
  sections_.reserve(sections.size());
  for (const auto& c : sections) sections_.emplace_back(c);
}

double BiquadCascade::process(double x) {
  for (auto& s : sections_) x = s.process(x);
  return x;
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

void BiquadCascade::prime(double x) {
  for (auto& s : sections_) {
    s.prime(x);
    const auto& c = s.coefficients();
    x *= (c.b0 + c.b1 + c.b2) / (1.0 + c.a1 + c.a2);
  }
}

double BiquadCascade::magnitude(Hertz f, Hertz fs) const {
  const double w = 2.0 * 3.14159265358979323846 * f.value() / fs.value();
  const std::complex<double> z = std::polar(1.0, w);
  const std::complex<double> zi = 1.0 / z;
  std::complex<double> h = 1.0;
  for (const auto& s : sections_) {
    const auto& c = s.coefficients();
    h *= (c.b0 + c.b1 * zi + c.b2 * zi * zi) / (1.0 + c.a1 * zi + c.a2 * zi * zi);
  }
  return std::abs(h);
}

namespace {

void check_design(int order, Hertz fc, Hertz fs) {
  if (order < 1 || order > 12)
    throw std::invalid_argument("butterworth: order out of range [1,12]");
  if (fc.value() <= 0.0 || fc.value() >= 0.5 * fs.value())
    throw std::invalid_argument("butterworth: cutoff must be in (0, fs/2)");
}

/// Bilinear-transform Butterworth design. Analog prototype poles are paired
/// into second-order sections; odd orders add one real pole.
std::vector<BiquadCoefficients> butterworth(int order, Hertz fc, Hertz fs,
                                            bool highpass) {
  check_design(order, fc, fs);
  constexpr double kPi = 3.14159265358979323846;
  // Pre-warped analog cutoff.
  const double wc = 2.0 * fs.value() * std::tan(kPi * fc.value() / fs.value());
  const double t = 1.0 / (2.0 * fs.value());

  std::vector<BiquadCoefficients> out;
  const int pairs = order / 2;
  for (int k = 0; k < pairs; ++k) {
    // Analog SOS: wc² / (s² + 2·cos(theta)·wc·s + wc²), theta from Butterworth
    // pole angles.
    const double theta = kPi * (2.0 * k + 1.0) / (2.0 * order);
    const double q = 1.0 / (2.0 * std::sin(theta));
    // Bilinear transform of the normalized SOS with quality factor q.
    const double w = wc * t;  // = tan(pi fc/fs)
    const double w2 = w * w;
    const double norm = 1.0 + w / q + w2;
    BiquadCoefficients c;
    if (!highpass) {
      c.b0 = w2 / norm;
      c.b1 = 2.0 * c.b0;
      c.b2 = c.b0;
    } else {
      c.b0 = 1.0 / norm;
      c.b1 = -2.0 * c.b0;
      c.b2 = c.b0;
    }
    c.a1 = 2.0 * (w2 - 1.0) / norm;
    c.a2 = (1.0 - w / q + w2) / norm;
    out.push_back(c);
  }
  if (order % 2 == 1) {
    // Real pole: wc/(s+wc) -> first-order bilinear section (b2=a2=0).
    const double w = wc * t;
    const double norm = 1.0 + w;
    BiquadCoefficients c;
    if (!highpass) {
      c.b0 = w / norm;
      c.b1 = c.b0;
    } else {
      c.b0 = 1.0 / norm;
      c.b1 = -c.b0;
    }
    c.b2 = 0.0;
    c.a1 = (w - 1.0) / norm;
    c.a2 = 0.0;
    out.push_back(c);
  }
  return out;
}

}  // namespace

BiquadCascade design_butterworth_lowpass(int order, Hertz fc, Hertz fs) {
  return BiquadCascade{butterworth(order, fc, fs, /*highpass=*/false)};
}

BiquadCascade design_butterworth_highpass(int order, Hertz fc, Hertz fs) {
  return BiquadCascade{butterworth(order, fc, fs, /*highpass=*/true)};
}

OnePole::OnePole(Hertz fc, Hertz fs) {
  if (fc.value() <= 0.0 || fs.value() <= 0.0 || fc.value() >= 0.5 * fs.value())
    throw std::invalid_argument("OnePole: bad cutoff/sample rate");
  a_ = 1.0 - std::exp(-2.0 * 3.14159265358979323846 * fc.value() / fs.value());
}

double OnePole::process(double x) {
  y_ += a_ * (x - y_);
  return y_;
}

}  // namespace aqua::dsp
