#include "dsp/fixed_point.hpp"

#include <cmath>

namespace aqua::dsp {

std::int32_t quantize_code(double value, double full_scale, int bits) {
  if (full_scale <= 0.0 || bits < 2 || bits > 31)
    throw std::invalid_argument("quantize_code: bad converter parameters");
  const std::int32_t max_code = (std::int32_t{1} << (bits - 1)) - 1;
  const std::int32_t min_code = -(std::int32_t{1} << (bits - 1));
  const double scaled = value / full_scale * static_cast<double>(max_code);
  const double rounded = std::nearbyint(scaled);
  if (rounded >= static_cast<double>(max_code)) return max_code;
  if (rounded <= static_cast<double>(min_code)) return min_code;
  return static_cast<std::int32_t>(rounded);
}

double dequantize_code(std::int32_t code, double full_scale, int bits) {
  if (full_scale <= 0.0 || bits < 2 || bits > 31)
    throw std::invalid_argument("dequantize_code: bad converter parameters");
  const std::int32_t max_code = (std::int32_t{1} << (bits - 1)) - 1;
  return static_cast<double>(code) / static_cast<double>(max_code) * full_scale;
}

double lsb_size(double full_scale, int bits) {
  if (full_scale <= 0.0 || bits < 2 || bits > 31)
    throw std::invalid_argument("lsb_size: bad converter parameters");
  return full_scale / static_cast<double>((std::int32_t{1} << (bits - 1)) - 1);
}

}  // namespace aqua::dsp
