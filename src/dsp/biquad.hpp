// biquad.hpp — IIR filtering as cascaded transposed-direct-form-II biquad
// sections, plus Butterworth low-pass/high-pass design. The ISIF digital
// section exposes IIR IPs; the paper's conditioning chain ends in an IIR
// low-pass "down to the bandwidth of 0.1 Hz" that sets the output resolution.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "state/serial.hpp"
#include "util/units.hpp"

namespace aqua::dsp {

/// One second-order section: b0+b1 z⁻¹+b2 z⁻² / (1+a1 z⁻¹+a2 z⁻²).
struct BiquadCoefficients {
  double b0 = 1.0, b1 = 0.0, b2 = 0.0;
  double a1 = 0.0, a2 = 0.0;
};

class Biquad {
 public:
  Biquad() = default;
  explicit Biquad(const BiquadCoefficients& c) : c_(c) {}

  double process(double x);
  void reset();
  /// Presets the internal state so a constant input `x` yields the steady
  /// output immediately (bumpless start for slow output filters).
  void prime(double x);

  [[nodiscard]] const BiquadCoefficients& coefficients() const { return c_; }

  /// Checkpoint support: the two DF-II delay states (coefficients are config).
  void save_state(state::Writer& w) const {
    w.f64(s1_);
    w.f64(s2_);
  }
  void load_state(state::Reader& r) {
    s1_ = r.f64();
    s2_ = r.f64();
  }

 private:
  BiquadCoefficients c_;
  double s1_ = 0.0, s2_ = 0.0;  // transposed DF-II state
};

/// Cascade of biquads acting as one filter.
class BiquadCascade {
 public:
  BiquadCascade() = default;
  explicit BiquadCascade(std::vector<BiquadCoefficients> sections);

  double process(double x);
  void reset();
  void prime(double x);
  [[nodiscard]] std::size_t section_count() const { return sections_.size(); }

  /// Magnitude response at frequency f for sample rate fs.
  [[nodiscard]] double magnitude(util::Hertz f, util::Hertz fs) const;

  /// Checkpoint support: per-section delay states (section count is config).
  void save_state(state::Writer& w) const {
    w.size(sections_.size());
    for (const Biquad& s : sections_) s.save_state(w);
  }
  void load_state(state::Reader& r) {
    if (r.size(16) != sections_.size())
      throw state::Error("BiquadCascade: section count mismatch");
    for (Biquad& s : sections_) s.load_state(r);
  }

 private:
  std::vector<Biquad> sections_;
};

/// Butterworth low-pass of the given (even or odd) order via bilinear
/// transform; cutoff must satisfy 0 < fc < fs/2.
[[nodiscard]] BiquadCascade design_butterworth_lowpass(int order, util::Hertz fc,
                                                       util::Hertz fs);

/// Butterworth high-pass (same constraints).
[[nodiscard]] BiquadCascade design_butterworth_highpass(int order, util::Hertz fc,
                                                        util::Hertz fs);

/// Single-pole IIR low-pass y += a·(x−y) with a = 1−exp(−2π·fc/fs); the cheap
/// smoother used inside control loops.
class OnePole {
 public:
  OnePole(util::Hertz fc, util::Hertz fs);

  double process(double x);
  void reset(double y = 0.0) { y_ = y; }
  [[nodiscard]] double value() const { return y_; }

 private:
  double a_;
  double y_ = 0.0;
};

}  // namespace aqua::dsp
