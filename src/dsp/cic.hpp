// cic.hpp — cascaded integrator-comb (Hogenauer) decimator. This is the
// canonical first stage after a 1-bit ΣΔ modulator: N integrators at the
// modulator rate, decimation by R, N combs at the output rate. The ISIF
// channel decimates its 16-bit ΣΔ with exactly this structure ("the digital
// section decimates the ΣΔ ADC output and low-pass filters", paper §4).
//
// The accumulators are wrap-around integers, exactly like the silicon: a CIC
// integrator grows without bound under DC input (mean·fs·t), which in
// floating point eventually destroys the comb differences through rounding —
// a bug that only appears after minutes of simulated time. Two's-complement
// wrap keeps the differences exact as long as the (normalised) output
// magnitude fits the word, which the constructor checks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace aqua::dsp {

class CicDecimator {
 public:
  /// order N (typically modulator order + 1), decimation ratio R, differential
  /// delay M (1 or 2). The product (R·M)^N must stay below 2^31 so the
  /// integer datapath (input quantised to Q31) cannot alias.
  CicDecimator(int order, int decimation, int differential_delay = 1);

  /// Pushes one modulator-rate sample; returns the decimated output when a
  /// full block of R inputs has been accumulated (normalised by the CIC gain
  /// (R·M)^N so that a constant input maps to itself).
  std::optional<double> push(double x);

  void reset();

  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] int decimation() const { return decimation_; }
  /// DC gain before normalisation, (R·M)^N.
  [[nodiscard]] double raw_gain() const;
  /// Output sample rate for a given input rate.
  [[nodiscard]] double output_rate(double input_rate) const {
    return input_rate / decimation_;
  }

 private:
  /// Input quantisation: Q31 over the nominal ±1 range.
  static constexpr double kInputScale = 2147483648.0;  // 2^31

  int order_;
  int decimation_;
  int delay_;
  int phase_ = 0;
  std::vector<std::uint64_t> integrators_;              // wrap-around
  std::vector<std::vector<std::uint64_t>> comb_delays_; // per comb: M-deep
};

}  // namespace aqua::dsp
