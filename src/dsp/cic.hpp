// cic.hpp — cascaded integrator-comb (Hogenauer) decimator. This is the
// canonical first stage after a 1-bit ΣΔ modulator: N integrators at the
// modulator rate, decimation by R, N combs at the output rate. The ISIF
// channel decimates its 16-bit ΣΔ with exactly this structure ("the digital
// section decimates the ΣΔ ADC output and low-pass filters", paper §4).
//
// The accumulators are wrap-around integers, exactly like the silicon: a CIC
// integrator grows without bound under DC input (mean·fs·t), which in
// floating point eventually destroys the comb differences through rounding —
// a bug that only appears after minutes of simulated time. Two's-complement
// wrap keeps the differences exact as long as the (normalised) output
// magnitude fits the word, which the constructor checks.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "state/serial.hpp"

namespace aqua::dsp {

class CicDecimator {
 public:
  /// order N (typically modulator order + 1), decimation ratio R ≥ 1 (R = 1
  /// degenerates to a pass-through with the filter's fill-in latency),
  /// differential delay M (1 or 2). The product (R·M)^N must stay below 2^31
  /// so the integer datapath (input quantised to Q31) cannot alias.
  CicDecimator(int order, int decimation, int differential_delay = 1);

  /// Pushes one modulator-rate sample; returns the decimated output when a
  /// full block of R inputs has been accumulated (normalised by the CIC gain
  /// (R·M)^N so that a constant input maps to itself).
  std::optional<double> push(double x);

  /// Block execution: pushes x.size() modulator-rate samples, appending every
  /// decimated output produced (⌊(phase + x.size()) / R⌋ of them) to `out`.
  /// Returns the number of outputs written. Bit-identical to x.size() push()
  /// calls — the integer datapath is exact, and the block loop keeps the
  /// integrator cascade in registers instead of re-walking the state vector
  /// per sample. `out` must have room for the outputs the block produces.
  std::size_t push_block(std::span<const double> x, std::span<double> out);

  /// Register-resident per-block state for fused frame kernels (DESIGN.md
  /// §9): the integrator cascade and phase, with the comb side left in the
  /// object (it runs once per decimation frame, not once per sample).
  /// push() integrates one sample and reports whether a decimated output is
  /// due — the caller then calls emit() for the comb cascade and scaling.
  /// The integer datapath is exact, so the kernel is trivially bit-identical
  /// to the scalar push().
  struct BlockKernel {
    std::array<std::uint64_t, 8> acc;
    int phase, order, decimation;
    bool push(double x) {
      return integrate(static_cast<std::uint64_t>(
          static_cast<std::int64_t>(std::llround(x * kInputScale))));
    }
    /// Integrates a ±1.0 modulator bit. Bit-identical to push(bit): ±1.0 ·
    /// kInputScale is exact and llround(-x) == -llround(x), so the quantised
    /// word is one of two constants — this hoists the llround libm call
    /// (an out-of-line call per sample) out of fused frame loops.
    bool push_bit(double bit) {
      constexpr std::int64_t kQ = static_cast<std::int64_t>(kInputScale);
      return integrate(static_cast<std::uint64_t>(bit >= 0.0 ? kQ : -kQ));
    }

   private:
    bool integrate(std::uint64_t v) {
      for (int j = 0; j < order; ++j) {
        acc[static_cast<std::size_t>(j)] += v;
        v = acc[static_cast<std::size_t>(j)];
      }
      if (++phase < decimation) return false;
      phase = 0;
      return true;
    }
  };
  [[nodiscard]] BlockKernel begin_block() const;
  /// Runs the comb cascade on the kernel's newest integrator word and returns
  /// the normalised decimated output. Call exactly when push() returns true.
  double emit(const BlockKernel& k);
  void commit_block(const BlockKernel& k);

  void reset();

  [[nodiscard]] int order() const { return order_; }
  [[nodiscard]] int decimation() const { return decimation_; }
  /// DC gain before normalisation, (R·M)^N.
  [[nodiscard]] double raw_gain() const;
  /// Output sample rate for a given input rate.
  [[nodiscard]] double output_rate(double input_rate) const {
    return input_rate / decimation_;
  }

  /// Checkpoint support: decimation phase, integrator words and comb delay
  /// lines (their shapes are fixed by the construction-time config).
  void save_state(state::Writer& w) const {
    w.i32(phase_);
    w.size(integrators_.size());
    for (const std::uint64_t acc : integrators_) w.u64(acc);
    w.size(comb_delays_.size());
    for (const auto& comb : comb_delays_) {
      w.size(comb.size());
      for (const std::uint64_t d : comb) w.u64(d);
    }
  }
  void load_state(state::Reader& r) {
    phase_ = r.i32();
    if (r.size(8) != integrators_.size())
      throw state::Error("CicDecimator: integrator count mismatch");
    for (std::uint64_t& acc : integrators_) acc = r.u64();
    if (r.size(8) != comb_delays_.size())
      throw state::Error("CicDecimator: comb count mismatch");
    for (auto& comb : comb_delays_) {
      if (r.size(8) != comb.size())
        throw state::Error("CicDecimator: comb delay depth mismatch");
      for (std::uint64_t& d : comb) d = r.u64();
    }
  }

 private:
  /// Input quantisation: Q31 over the nominal ±1 range.
  static constexpr double kInputScale = 2147483648.0;  // 2^31

  int order_;
  int decimation_;
  int delay_;
  int phase_ = 0;
  std::vector<std::uint64_t> integrators_;              // wrap-around
  std::vector<std::vector<std::uint64_t>> comb_delays_; // per comb: M-deep
};

}  // namespace aqua::dsp
