// serial.hpp — the byte-level encoder/decoder underneath the checkpoint
// format (DESIGN.md §14). Every stateful component exposes
//
//   void save_state(state::Writer& w) const;
//   void load_state(state::Reader& r);
//
// writing its *mutable, evolving* state only: one-time part draws (resistor
// tolerances, amp offsets, DAC element mismatch) are reproduced by
// constructing the restore target from the identical config + root seed, so
// they never enter a checkpoint. Doubles are serialised as their exact IEEE
// bit patterns — restore is bit-identical, never a parse/print round trip.
//
// Encoding: fixed-width little-endian integers, no alignment, no padding.
// Reader is bounds-checked everywhere and throws state::Error instead of
// reading past the end — a truncated or bit-flipped payload must surface as
// a recoverable error, never UB (the corruption battery in tests/state
// feeds the loader adversarial bytes).
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace aqua::state {

/// Any malformed-checkpoint condition: truncation, bad magic, CRC mismatch,
/// version skew, or a payload that decodes to impossible values.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only byte buffer with typed little-endian writers.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  /// Exact IEEE-754 bit pattern; NaN payloads and signed zeros round-trip.
  void f64(double v) { append_le(std::bit_cast<std::uint64_t>(v)); }
  void boolean(bool v) { buf_.push_back(v ? 1 : 0); }
  /// Container size (u64 on the wire regardless of host size_t).
  void size(std::size_t n) { append_le(static_cast<std::uint64_t>(n)); }
  void bytes(const void* data, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + n);
  }
  /// Length-prefixed string.
  void str(std::string_view s) {
    size(s.size());
    bytes(s.data(), s.size());
  }

  [[nodiscard]] std::span<const std::uint8_t> view() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t bytes_written() const { return buf_.size(); }

 private:
  template <class T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i)
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over one section payload. Never reads past the end:
/// throws state::Error instead, which the checkpoint loader treats as a
/// corrupt candidate (fall back to the next-newest file).
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data)
      : p_(data.data()), end_(data.data() + data.size()) {}

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  bool boolean() {
    const std::uint8_t v = u8();
    if (v > 1) throw Error("state: boolean field is neither 0 nor 1");
    return v != 0;
  }
  /// Container size, sanity-bounded by the bytes that could possibly back it
  /// (`min_element_bytes` per element) so a corrupt length can never drive a
  /// multi-gigabyte allocation before the per-element reads would throw.
  std::size_t size(std::size_t min_element_bytes = 1) {
    const std::uint64_t n = u64();
    const std::size_t rem = remaining();
    if (min_element_bytes > 0 && n > rem / min_element_bytes + 1)
      throw Error("state: container length exceeds the bytes behind it");
    return static_cast<std::size_t>(n);
  }
  void bytes(void* out, std::size_t n) {
    require(n);
    std::memcpy(out, p_, n);
    p_ += n;
  }
  std::string str() {
    const std::size_t n = size(1);
    require(n);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }

  [[nodiscard]] std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - p_);
  }
  /// Restores must consume their payload exactly — trailing garbage means the
  /// writer and reader disagree about the format.
  void expect_end() const {
    if (p_ != end_) throw Error("state: trailing bytes after a full decode");
  }

 private:
  void require(std::size_t n) const {
    if (remaining() < n) throw Error("state: payload truncated");
  }
  template <class T>
  T take_le() {
    require(sizeof(T));
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i)
      v = static_cast<T>(v | (static_cast<T>(p_[i]) << (8 * i)));
    p_ += sizeof(T);
    return v;
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

// --- helpers for common shapes ---------------------------------------------

inline void save_f64_vector(Writer& w, const std::vector<double>& v) {
  w.size(v.size());
  for (const double x : v) w.f64(x);
}

inline void load_f64_vector(Reader& r, std::vector<double>& v) {
  const std::size_t n = r.size(8);
  v.resize(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = r.f64();
}

}  // namespace aqua::state
