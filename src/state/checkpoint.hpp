// checkpoint.hpp — the versioned on-disk checkpoint container (DESIGN.md
// §14): an 8-byte magic, a u32 format version, then a sequence of sections,
// each framed as
//
//   u32 section id (FourCC) · u64 payload length · u32 CRC32(payload) · bytes
//
// The CRC framing is what makes recovery adversarially robust: truncation
// (length runs past the file), bit flips (CRC mismatch), torn headers (short
// magic/version/frame reads) and version skew all surface as state::Error
// from CheckpointReader — never UB — and the CheckpointManager falls back to
// the newest file that still validates end to end.
//
// Durability: write_file_atomic stages the image beside the target
// (temp file + fsync + rename + directory fsync), so a crash mid-write
// leaves either the old checkpoint or the new one, never a torn file. The
// manager retains the last N checkpoints; retention is what turns "newest
// valid" fallback from a nicety into a guarantee.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "state/serial.hpp"

namespace aqua::state {

inline constexpr std::array<std::uint8_t, 8> kMagic{'A', 'Q', 'U', 'A',
                                                    'C', 'K', 'P', 'T'};
/// Bump policy (DESIGN.md §14): increment for any wire-incompatible change;
/// loaders reject versions they do not know rather than guessing. Additive
/// new sections do NOT need a bump — readers ignore unknown section ids.
inline constexpr std::uint32_t kFormatVersion = 1;

/// Section ids are FourCCs so hexdumps of a checkpoint stay legible.
constexpr std::uint32_t section_id(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320), the framing integrity check.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data,
                                  std::uint32_t seed = 0);

/// Builds one checkpoint image section by section.
class CheckpointWriter {
 public:
  /// Starts a section; write its payload into the returned Writer. Only one
  /// section may be open at a time.
  Writer& begin_section(std::uint32_t id);
  /// Seals the open section (computes its CRC and frames it).
  void end_section();
  /// The finished image (magic + version + all sealed sections).
  [[nodiscard]] std::vector<std::uint8_t> finish();

 private:
  struct Section {
    std::uint32_t id = 0;
    std::vector<std::uint8_t> payload;
  };
  std::vector<Section> sections_;
  Writer current_;
  std::uint32_t current_id_ = 0;
  bool open_ = false;
};

/// Parses and fully validates a checkpoint image up front: magic, version,
/// every frame header, every CRC. Constructor throws state::Error on any
/// defect, so a CheckpointReader that exists is a checkpoint that is whole.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::span<const std::uint8_t> image);

  /// Payload reader for section `id`; throws state::Error if absent.
  [[nodiscard]] Reader section(std::uint32_t id) const;
  [[nodiscard]] bool has_section(std::uint32_t id) const;
  [[nodiscard]] std::uint32_t version() const { return version_; }

 private:
  struct Section {
    std::uint32_t id = 0;
    std::span<const std::uint8_t> payload;
  };
  std::vector<Section> sections_;
  std::uint32_t version_ = 0;
};

/// Writes `data` to `path` atomically: stage to `<path>.tmp`, fsync, rename
/// over the target, fsync the directory. Throws std::runtime_error on any
/// I/O failure (the staged temp file is removed best-effort).
void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> data);

/// Reads a whole file; throws std::runtime_error when unreadable.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

/// A successfully validated checkpoint picked by CheckpointManager.
struct LoadedCheckpoint {
  std::string path;
  std::uint64_t epoch = 0;
  std::vector<std::uint8_t> image;  ///< already CRC-validated end to end
};

/// Rotating checkpoint store: `<dir>/<stem>-<epoch>.aqcp`, newest `retain`
/// kept, older ones pruned after each successful write. load_newest_valid()
/// scans newest → oldest, skipping (and counting, via the
/// `state.checkpoint.corrupt` counter + a warn log) every file that fails
/// validation — the crash-recovery entry point.
class CheckpointManager {
 public:
  CheckpointManager(std::string dir, std::string stem, std::size_t retain = 3);

  /// Atomically writes one checkpoint image for `epoch` and prunes beyond
  /// the retention window. Returns the path written.
  std::string write(std::uint64_t epoch, std::span<const std::uint8_t> image);

  /// All checkpoint paths for this stem, ascending by epoch.
  [[nodiscard]] std::vector<std::string> list() const;

  /// Newest checkpoint that validates end to end (magic/version/CRCs), or
  /// nullopt when none does. Corrupt candidates are logged and counted,
  /// never thrown.
  [[nodiscard]] std::optional<LoadedCheckpoint> load_newest_valid() const;

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] std::size_t retain() const { return retain_; }

 private:
  [[nodiscard]] std::string path_for(std::uint64_t epoch) const;

  std::string dir_;
  std::string stem_;
  std::size_t retain_;
};

}  // namespace aqua::state
