// rng_io.hpp — checkpoint serialisation of util::Rng draw streams. The
// counter-based streams are the determinism anchor (DESIGN.md §7): restoring
// the four xoshiro words plus the Box–Muller spare puts every subsequent
// draw back on the exact bit sequence the interrupted run would have seen.
#pragma once

#include "state/serial.hpp"
#include "util/rng.hpp"

namespace aqua::state {

inline void save_rng(Writer& w, const util::Rng& rng) {
  const util::Rng::State s = rng.state();
  for (const std::uint64_t word : s.s) w.u64(word);
  w.f64(s.spare);
  w.boolean(s.has_spare);
}

inline void load_rng(Reader& r, util::Rng& rng) {
  util::Rng::State s;
  for (std::uint64_t& word : s.s) word = r.u64();
  s.spare = r.f64();
  s.has_spare = r.boolean();
  rng.set_state(s);
}

}  // namespace aqua::state
