#include "state/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "util/log.hpp"

namespace aqua::state {

namespace fs = std::filesystem;

namespace {
const obs::Counter kCorrupt{"state.checkpoint.corrupt"};

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

void fsync_fd_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("state: fsync failed for " + path);
  }
}
}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t byte : data)
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

// --- CheckpointWriter -------------------------------------------------------

Writer& CheckpointWriter::begin_section(std::uint32_t id) {
  if (open_)
    throw std::logic_error("CheckpointWriter: section already open");
  open_ = true;
  current_id_ = id;
  current_ = Writer{};
  return current_;
}

void CheckpointWriter::end_section() {
  if (!open_) throw std::logic_error("CheckpointWriter: no open section");
  sections_.push_back(Section{current_id_, current_.take()});
  open_ = false;
}

std::vector<std::uint8_t> CheckpointWriter::finish() {
  if (open_)
    throw std::logic_error("CheckpointWriter: finish with a section open");
  Writer out;
  out.bytes(kMagic.data(), kMagic.size());
  out.u32(kFormatVersion);
  for (const Section& s : sections_) {
    out.u32(s.id);
    out.u64(s.payload.size());
    out.u32(crc32(s.payload));
    out.bytes(s.payload.data(), s.payload.size());
  }
  sections_.clear();
  return out.take();
}

// --- CheckpointReader -------------------------------------------------------

CheckpointReader::CheckpointReader(std::span<const std::uint8_t> image) {
  if (image.size() < kMagic.size() + 4)
    throw Error("checkpoint: torn header (shorter than magic + version)");
  if (!std::equal(kMagic.begin(), kMagic.end(), image.begin()))
    throw Error("checkpoint: bad magic");
  Reader header(image.subspan(kMagic.size()));
  version_ = header.u32();
  if (version_ != kFormatVersion)
    throw Error("checkpoint: unsupported format version " +
                std::to_string(version_) + " (this build reads " +
                std::to_string(kFormatVersion) + ")");
  std::size_t offset = kMagic.size() + 4;
  while (offset < image.size()) {
    if (image.size() - offset < 16)
      throw Error("checkpoint: torn section frame header");
    Reader frame(image.subspan(offset, 16));
    const std::uint32_t id = frame.u32();
    const std::uint64_t length = frame.u64();
    const std::uint32_t expected_crc = frame.u32();
    offset += 16;
    if (length > image.size() - offset)
      throw Error("checkpoint: section payload truncated");
    const auto payload = image.subspan(offset, static_cast<std::size_t>(length));
    if (crc32(payload) != expected_crc)
      throw Error("checkpoint: section CRC mismatch (bit flip or torn write)");
    sections_.push_back(Section{id, payload});
    offset += static_cast<std::size_t>(length);
  }
}

Reader CheckpointReader::section(std::uint32_t id) const {
  for (const Section& s : sections_)
    if (s.id == id) return Reader(s.payload);
  throw Error("checkpoint: required section missing");
}

bool CheckpointReader::has_section(std::uint32_t id) const {
  return std::any_of(sections_.begin(), sections_.end(),
                     [id](const Section& s) { return s.id == id; });
}

// --- atomic file I/O --------------------------------------------------------

void write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("state: cannot create " + tmp);
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      errno = err;
      throw_errno("state: write failed for " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  fsync_fd_or_throw(fd, tmp);
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    errno = err;
    throw_errno("state: rename failed for " + path);
  }
  // The rename itself must be durable: fsync the containing directory.
  const std::string dir = fs::path(path).parent_path().string();
  const int dirfd =
      ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    // Best effort: some filesystems refuse directory fsync; the rename is
    // still atomic, just not yet durable against power loss.
    (void)::fsync(dirfd);
    ::close(dirfd);
  }
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw_errno("state: cannot open " + path);
  std::vector<std::uint8_t> data;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
    data.insert(data.end(), buf, buf + n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw std::runtime_error("state: read failed for " + path);
  return data;
}

// --- CheckpointManager ------------------------------------------------------

CheckpointManager::CheckpointManager(std::string dir, std::string stem,
                                     std::size_t retain)
    : dir_(std::move(dir)), stem_(std::move(stem)),
      retain_(retain == 0 ? 1 : retain) {
  fs::create_directories(dir_);
}

std::string CheckpointManager::path_for(std::uint64_t epoch) const {
  char name[64];
  std::snprintf(name, sizeof name, "-%012llu.aqcp",
                static_cast<unsigned long long>(epoch));
  return (fs::path(dir_) / (stem_ + name)).string();
}

std::string CheckpointManager::write(std::uint64_t epoch,
                                     std::span<const std::uint8_t> image) {
  const std::string path = path_for(epoch);
  write_file_atomic(path, image);
  std::vector<std::string> all = list();
  if (all.size() > retain_)
    for (std::size_t i = 0; i + retain_ < all.size(); ++i) {
      std::error_code ec;
      fs::remove(all[i], ec);  // retention pruning is best-effort
    }
  return path;
}

std::vector<std::string> CheckpointManager::list() const {
  std::vector<std::string> paths;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (name.starts_with(stem_ + "-") && name.ends_with(".aqcp"))
      paths.push_back(entry.path().string());
  }
  std::sort(paths.begin(), paths.end());  // zero-padded epoch ⇒ name order
  return paths;
}

std::optional<LoadedCheckpoint> CheckpointManager::load_newest_valid() const {
  std::vector<std::string> paths = list();
  for (auto it = paths.rbegin(); it != paths.rend(); ++it) {
    std::vector<std::uint8_t> image;
    try {
      image = read_file(*it);
      const CheckpointReader reader(image);  // full validation
    } catch (const std::exception& e) {
      kCorrupt.add(1);
      util::log_warn() << "checkpoint " << *it
                       << " rejected (falling back to an older one): "
                       << e.what();
      continue;
    }
    LoadedCheckpoint loaded;
    loaded.path = *it;
    const std::string name = fs::path(*it).filename().string();
    const std::size_t dash = name.rfind('-');
    const std::size_t dot = name.rfind('.');
    if (dash != std::string::npos && dot != std::string::npos && dot > dash) {
      const char* first = name.data() + dash + 1;
      const char* last = name.data() + dot;
      unsigned long long epoch = 0;
      if (std::from_chars(first, last, epoch).ec == std::errc{})
        loaded.epoch = epoch;
    }
    loaded.image = std::move(image);
    return loaded;
  }
  return std::nullopt;
}

}  // namespace aqua::state
