#include "maf/die.hpp"

#include <algorithm>
#include <cmath>

namespace aqua::maf {

using util::Kelvin;
using util::Ohms;
using util::Seconds;
using util::Watts;

namespace {
/// Resistance reported for a broken (open) element.
constexpr double kOpenCircuitOhms = 1e9;
}  // namespace

MafDie::MafDie(const MafSpec& spec, util::Rng& rng)
    : spec_(spec),
      heater_a_(spec.heater, rng),
      heater_b_(spec.heater, rng),
      reference_(spec.reference, rng),
      fouling_a_(spec.fouling),
      fouling_b_(spec.fouling) {
  build_network();
}

MafDie::MafDie(const MafSpec& spec)
    : spec_(spec),
      heater_a_(spec.heater),
      heater_b_(spec.heater),
      reference_(spec.reference),
      fouling_a_(spec.fouling),
      fouling_b_(spec.fouling) {
  build_network();
}

void MafDie::build_network() {
  const Kelvin t0 = util::celsius(15.0);
  n_heater_a_ = net_.add_node(spec_.heater_capacitance, t0);
  n_heater_b_ = net_.add_node(spec_.heater_capacitance, t0);
  n_reference_ = net_.add_node(spec_.reference_capacitance, t0);
  n_fluid_ = net_.add_boundary(t0);
  n_local_a_ = net_.add_boundary(t0);
  n_local_b_ = net_.add_boundary(t0);
  n_substrate_ = net_.add_boundary(t0);

  e_conv_a_ = net_.connect(n_heater_a_, n_local_a_, 0.0);
  e_conv_b_ = net_.connect(n_heater_b_, n_local_b_, 0.0);
  e_conv_ref_ = net_.connect(n_reference_, n_fluid_, 0.0);

  // In-plane coupling between the closely adjoined tandem heaters: a fraction
  // of the sheet conductance between a heater and the rim.
  const double g_edge =
      phys::edge_conductance(spec_.membrane, spec_.heater_wire.length);
  e_ab_ = net_.connect(n_heater_a_, n_heater_b_, 0.5 * g_edge);
  e_edge_a_ = net_.connect(n_heater_a_, n_substrate_, g_edge);
  e_edge_b_ = net_.connect(n_heater_b_, n_substrate_, g_edge);

  const double g_back = phys::backside_conductance(
      spec_.membrane, spec_.heater_wire.surface_area());
  e_back_a_ = net_.connect(n_heater_a_, n_substrate_, g_back);
  e_back_b_ = net_.connect(n_heater_b_, n_substrate_, g_back);
}

Ohms MafDie::heater_a_resistance() const {
  if (!membrane_intact_) return Ohms{kOpenCircuitOhms};
  return heater_a_.resistance(net_.temperature(n_heater_a_));
}

Ohms MafDie::heater_b_resistance() const {
  if (!membrane_intact_) return Ohms{kOpenCircuitOhms};
  return heater_b_.resistance(net_.temperature(n_heater_b_));
}

Ohms MafDie::reference_resistance() const {
  return reference_.resistance(net_.temperature(n_reference_));
}

Ohms MafDie::heater_a_resistance_at(Kelvin t) const {
  return heater_a_.resistance(t);
}

Ohms MafDie::reference_resistance_at(Kelvin t) const {
  return reference_.resistance(t);
}

void MafDie::set_heater_powers(Watts heater_a, Watts heater_b, Watts reference) {
  net_.set_power(n_heater_a_, membrane_intact_ ? heater_a : util::watts(0.0));
  net_.set_power(n_heater_b_, membrane_intact_ ? heater_b : util::watts(0.0));
  net_.set_power(n_reference_, reference);
}

namespace {
/// Film temperature clamped to the property-fit range: transient solver
/// iterates (e.g. the quasi-static bisection probing a too-high supply) can
/// push the wall far beyond boiling; property evaluation saturates there.
Kelvin clamped_film(phys::Medium medium, Kelvin wall, Kelvin fluid) {
  const double film = 0.5 * (wall.value() + fluid.value());
  const double lo = medium == phys::Medium::kWater ? 273.65 : 210.0;
  const double hi = medium == phys::Medium::kWater ? 390.0 : 480.0;
  return Kelvin{std::clamp(film, lo, hi)};
}
}  // namespace

double MafDie::clean_film_conductance(const Environment& env,
                                      Kelvin wall) const {
  // Properties at the film temperature, per standard hot-wire practice.
  const Kelvin film =
      clamped_film(env.medium, wall, env.fluid_temperature);
  const auto props = phys::properties(env.medium, film, env.pressure);
  const double h = phys::film_coefficient(props, env.speed, spec_.heater_wire);
  return h * spec_.heater_wire.surface_area().value();
}

void MafDie::update_conductances(const Environment& env) {
  const Kelvin t_a = net_.temperature(n_heater_a_);
  const Kelvin t_b = net_.temperature(n_heater_b_);
  const Kelvin t_ref = net_.temperature(n_reference_);
  const double t_f = env.fluid_temperature.value();

  // Heater→fluid conductance, degraded by bubbles (parallel-area blanking)
  // and by the deposit layer (series resistance).
  const auto effective_g = [&](Kelvin wall, const FoulingState& fouling) {
    const double g_clean = clean_film_conductance(env, wall);
    const double g_conv = g_clean * fouling.convection_factor();
    const double r_dep =
        fouling.deposit_resistance(spec_.heater_wire.surface_area());
    return g_conv > 0.0 ? 1.0 / (1.0 / g_conv + r_dep) : 0.0;
  };
  net_.set_conductance(e_conv_a_, effective_g(t_a, fouling_a_));
  net_.set_conductance(e_conv_b_, effective_g(t_b, fouling_b_));

  // Reference meander: same physics, its own geometry, no fouling dependence
  // (it runs essentially at fluid temperature, so it neither bubbles nor
  // scales preferentially).
  {
    const Kelvin film =
        clamped_film(env.medium, t_ref, env.fluid_temperature);
    const auto props = phys::properties(env.medium, film, env.pressure);
    const double h =
        phys::film_coefficient(props, env.speed, spec_.reference_wire);
    net_.set_conductance(e_conv_ref_,
                         h * spec_.reference_wire.surface_area().value());
  }

  // Boundary temperatures: bulk fluid everywhere, with the downstream
  // heater's local fluid warmed by the upstream wake.
  const double v = env.speed.value();
  const double coupling =
      spec_.wake_coupling_max *
      (1.0 - std::exp(-std::abs(v) / spec_.wake_velocity_scale.value()));
  double t_local_a = t_f, t_local_b = t_f;
  if (v > 0.0) {
    t_local_b = t_f + coupling * (t_a.value() - t_f);
  } else if (v < 0.0) {
    t_local_a = t_f + coupling * (t_b.value() - t_f);
  }
  net_.set_boundary_temperature(n_fluid_, env.fluid_temperature);
  net_.set_boundary_temperature(n_local_a_, Kelvin{t_local_a});
  net_.set_boundary_temperature(n_local_b_, Kelvin{t_local_b});
  net_.set_boundary_temperature(n_substrate_, env.fluid_temperature);
}

void MafDie::step(Seconds dt, const Environment& env) {
  step_pre_thermal(env);
  net_.step(dt);
  step_post_thermal(dt, env);
}

void MafDie::step_pre_thermal(const Environment& env) {
  if (!phys::survives(spec_.membrane, env.pressure)) membrane_intact_ = false;
  update_conductances(env);
}

void MafDie::step_post_thermal(Seconds dt, const Environment& env) {
  if (env.medium == phys::Medium::kWater) {
    fouling_a_.step(dt, net_.temperature(n_heater_a_), env);
    fouling_b_.step(dt, net_.temperature(n_heater_b_), env);
  }
}

void MafDie::settle(const Environment& env) {
  // Conductances depend on the (unknown) wall temperatures; a few outer
  // fixed-point sweeps over update→settle converge quickly.
  for (int i = 0; i < 8; ++i) {
    update_conductances(env);
    net_.settle();
  }
}

void MafDie::reset() {
  net_.reset();
  fouling_a_.clean();
  fouling_b_.clean();
  membrane_intact_ = true;
}

DieTemperatures MafDie::temperatures() const {
  return DieTemperatures{net_.temperature(n_heater_a_),
                         net_.temperature(n_heater_b_),
                         net_.temperature(n_reference_)};
}

}  // namespace aqua::maf
