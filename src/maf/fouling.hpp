// fouling.hpp — surface-fouling state of one heater element: gas-bubble
// coverage (paper Fig. 7) and CaCO3 deposit thickness (paper Fig. 8, Eq. 3).
// Both states modulate the heater→fluid heat path and are the reason the
// paper adopts pulsed drive, reduced overtemperature and SiN passivation.
#pragma once

#include "maf/environment.hpp"
#include "phys/carbonate.hpp"
#include "phys/saturation.hpp"
#include "state/serial.hpp"
#include "util/units.hpp"

namespace aqua::maf {

struct FoulingParameters {
  /// Bubble nucleation rate (fraction of surface per second per kelvin above
  /// the onset overtemperature).
  double nucleation_rate = 0.02;
  /// Bubble detachment rate at zero flow (fraction per second).
  double detachment_rate = 0.01;
  /// Extra detachment per (m/s) of flow shear.
  double shear_detachment = 0.5;
  /// CaCO3 kinetics; surface_reactivity reflects passivation quality.
  phys::ScalingKinetics scaling{};
};

/// Per-heater fouling state; integrate with step().
class FoulingState {
 public:
  explicit FoulingState(const FoulingParameters& params = {});

  /// Advances bubble and deposit dynamics by dt at the given wall temperature.
  void step(util::Seconds dt, util::Kelvin wall_temperature,
            const Environment& env);

  /// Fraction of the surface blanketed by gas bubbles, in [0, 0.95].
  [[nodiscard]] double bubble_coverage() const { return bubble_coverage_; }
  /// CaCO3 layer thickness (m).
  [[nodiscard]] double deposit_thickness() const { return deposit_thickness_; }

  /// Multiplier (0..1] on the convective film conductance from bubble
  /// blanketing (bubbles insulate the covered fraction almost completely).
  [[nodiscard]] double convection_factor() const;

  /// Series thermal resistance (K/W) added by the deposit over `area`.
  [[nodiscard]] double deposit_resistance(util::SquareMetres area) const;

  /// Resets to a clean surface (fresh die or after cleaning).
  void clean();

  // --- fault-injection ports (src/fault) -------------------------------------
  /// Forces the bubble coverage to `coverage` (clamped to [0, 0.95]): a slug
  /// of undissolved air adhering to the element, as a fault campaign injects
  /// it. Subsequent step() dynamics (shear detachment, nucleation) act on the
  /// forced value, so injected bubbles shed naturally once flow resumes.
  void set_bubble_coverage(double coverage);

  /// Forces the CaCO3 deposit thickness (m, clamped to >= 0): an accelerated
  /// fouling ramp. step() keeps growing it per the scaling kinetics.
  void set_deposit_thickness(double thickness_m);

  [[nodiscard]] const FoulingParameters& parameters() const { return params_; }
  void set_parameters(const FoulingParameters& p) { params_ = p; }

  /// Checkpoint support: the two surface states, bypassing the clamping
  /// setters so restore is exact.
  void save_state(state::Writer& w) const {
    w.f64(bubble_coverage_);
    w.f64(deposit_thickness_);
  }
  void load_state(state::Reader& r) {
    bubble_coverage_ = r.f64();
    deposit_thickness_ = r.f64();
  }

 private:
  FoulingParameters params_;
  double bubble_coverage_ = 0.0;
  double deposit_thickness_ = 0.0;
};

}  // namespace aqua::maf
