// package.hpp — the insertion-probe packaging of the prototype (paper Fig. 9):
// die glued to a ceramic carrier with glob-top over the bonds, housed in a
// smoothed stainless-steel pipe head. The paper qualifies it against water
// infiltration, leakage current, corrosion and pressure. This model tracks
// those degradation mechanisms so the qualification experiment (E9 and the
// months-long soak of E8) can report them.
#pragma once

#include "state/rng_io.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::maf {

struct PackageSpec {
  /// Sealing quality in [0, 1]: 1 = perfect glob-top/coating (the paper's
  /// final assembly), lower values model a defective batch.
  double sealing_quality = 1.0;
  /// Baseline insulation resistance of a dry, sealed assembly.
  util::Ohms dry_insulation = util::Ohms{5e9};
  /// Corrosion susceptibility of exposed contacts (rate scale, 1/s at full
  /// exposure); stainless + coating makes this tiny when sealed.
  double corrosion_rate = 1e-7;
  /// Probe head drag/perturbation coefficient: fraction of the line dynamic
  /// pressure the smoothed head converts into local turbulence (paper §4:
  /// "profile has been smoothed to introduce low perturbations").
  double intrusiveness = 0.03;
};

class Package {
 public:
  Package(const PackageSpec& spec, util::Rng rng);

  /// Advances moisture ingress and corrosion by dt while immersed at the
  /// given pressure.
  void step(util::Seconds dt, util::Pascals pressure);

  /// Leakage resistance from the sensor contacts to the water; drops as
  /// moisture creeps in. A healthy assembly stays in the GΩ range.
  [[nodiscard]] util::Ohms insulation_resistance() const;

  /// Leakage current at the given bridge supply through the insulation path.
  [[nodiscard]] util::Amperes leakage_current(util::Volts supply) const;

  /// Accumulated corrosion damage in [0, 1]; above ~0.5 contact resistance
  /// becomes erratic (flagged by health()).
  [[nodiscard]] double corrosion() const { return corrosion_; }

  /// Contact series resistance added to the bridge wiring by corrosion.
  [[nodiscard]] util::Ohms contact_resistance() const;

  [[nodiscard]] bool healthy() const;

  /// Turbulence intensity (relative velocity fluctuation) the probe head adds
  /// at the sensing elements for a given line speed.
  [[nodiscard]] double added_turbulence(util::MetresPerSecond speed) const;

  [[nodiscard]] const PackageSpec& spec() const { return spec_; }

  /// Fresh assembly again: dry, pristine, pitting draw stream rewound.
  void reset();

  /// Fault-injection port (src/fault): adds `amount` of moisture fraction
  /// (clamped to [0, 1] total) — a seal breach flooding the cavity. Moisture
  /// cannot be driven back out in the field, so this is a permanent fault;
  /// step() keeps corroding the wet contacts from here on.
  void inject_moisture(double amount);

  [[nodiscard]] double moisture() const { return moisture_; }

  /// Checkpoint support: moisture (permanent fault state), corrosion and the
  /// pitting draw stream; bypasses inject_moisture's clamp so restore is
  /// exact.
  void save_state(state::Writer& w) const {
    state::save_rng(w, rng_);
    w.f64(moisture_);
    w.f64(corrosion_);
  }
  void load_state(state::Reader& r) {
    state::load_rng(r, rng_);
    moisture_ = r.f64();
    corrosion_ = r.f64();
  }

 private:
  PackageSpec spec_;
  util::Rng rng_;
  util::Rng initial_rng_;
  double moisture_ = 0.0;   // 0 dry .. 1 soaked
  double corrosion_ = 0.0;  // 0 pristine .. 1 destroyed
};

}  // namespace aqua::maf
