// die.hpp — electro-thermal model of the Fraunhofer-ISIT MAF die (paper §2,
// Figs. 1–2): two Ti/TiN heater wires (Rh = 50.0 ± 0.5 Ω) in tandem and an
// interdigitated reference resistor (Rt = 2000 ± 30 Ω) on a 2 µm
// SiN/SiO2/SiN membrane over a KOH-etched, organic-filled cavity.
//
// Thermal topology (lumped):
//
//   heater A ── G_conv(v, fouling) ── local fluid A (wake-adjusted boundary)
//   heater B ── G_conv(v, fouling) ── local fluid B
//   heater A ── G_membrane ── heater B           (in-plane coupling)
//   heater A/B ── G_edge ── substrate boundary   (chip rim at fluid temp)
//   heater A/B ── G_backside ── substrate        (organic fill path)
//   reference ── G_ref ── fluid boundary         (tracks ambient, self-heats)
//
// Directionality: the downstream heater sits in the upstream heater's thermal
// wake, so its local fluid boundary is warmed by a velocity-dependent coupling
// coefficient. The sign of the resulting power/temperature imbalance is the
// paper's direction measurement.
//
// The die is purely electro-thermal: the conditioning electronics (core/)
// solves the bridge, injects the resulting Joule powers via set_heater_powers,
// and reads back the temperature-dependent resistances.
#pragma once

#include "maf/environment.hpp"
#include "maf/fouling.hpp"
#include "phys/convection.hpp"
#include "phys/membrane.hpp"
#include "phys/resistor.hpp"
#include "phys/thermal.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::maf {

struct MafSpec {
  /// Heater element (paper: 50.0 ± 0.5 Ω). Ti film TCR ≈ 3.3e-3 /K.
  phys::TcrResistorSpec heater{util::ohms(50.0), util::ohms(0.5),
                               util::celsius(20.0), 3.3e-3, 0.0};
  /// Ambient reference (paper: 2000 ± 30 Ω), same film, interdigitated.
  phys::TcrResistorSpec reference{util::ohms(2000.0), util::ohms(30.0),
                                  util::celsius(20.0), 3.3e-3, 0.0};
  /// Effective convective geometry of one heater wire. Water's film
  /// coefficients are enormous; the element must be tiny (and the
  /// overtemperature low) to stay inside the DAC's drive range — the same
  /// power constraint the paper works around with "reduced overtemperature".
  phys::WireGeometry heater_wire{util::micrometres(4.0), util::micrometres(300.0)};
  /// Effective convective geometry of the reference meander (larger, cooler).
  phys::WireGeometry reference_wire{util::micrometres(10.0), util::millimetres(4.0)};
  phys::MembraneSpec membrane{};
  double heater_capacitance = 7.0e-8;     ///< J/K incl. local membrane mass
  double reference_capacitance = 1.0e-6;  ///< J/K
  /// Tandem wake coupling: fraction of the upstream overtemperature seen by
  /// the downstream element's local fluid, and its velocity scale.
  double wake_coupling_max = 0.25;
  util::MetresPerSecond wake_velocity_scale = util::metres_per_second(0.10);
  FoulingParameters fouling{};
};

/// Snapshot of die temperatures for diagnostics and tests.
struct DieTemperatures {
  util::Kelvin heater_a;
  util::Kelvin heater_b;
  util::Kelvin reference;
};

class MafDie {
 public:
  /// Draws manufacturing tolerances from `rng` (heater/reference R0 spread).
  MafDie(const MafSpec& spec, util::Rng& rng);

  /// Exact-nominal die (tests that need closed-form expectations).
  explicit MafDie(const MafSpec& spec);

  // --- electrical interface -------------------------------------------------
  [[nodiscard]] util::Ohms heater_a_resistance() const;
  [[nodiscard]] util::Ohms heater_b_resistance() const;
  [[nodiscard]] util::Ohms reference_resistance() const;

  /// Element resistance at a prescribed temperature — what a factory trim
  /// station measures when picking the balancing bridge resistor.
  [[nodiscard]] util::Ohms heater_a_resistance_at(util::Kelvin t) const;
  [[nodiscard]] util::Ohms reference_resistance_at(util::Kelvin t) const;

  /// Joule powers computed by the bridge solver for the current tick.
  void set_heater_powers(util::Watts heater_a, util::Watts heater_b,
                         util::Watts reference);

  // --- thermal dynamics ------------------------------------------------------
  /// Advances the thermal and fouling state by dt under `env`.
  void step(util::Seconds dt, const Environment& env);

  // step() split into its three phases so the cross-sensor SIMD layer can
  // interleave many dies' thermal relaxations through one shared
  // ThermalNetwork::step_batch sweep. step() is exactly step_pre_thermal +
  // thermal_network().step(dt) + step_post_thermal, so batched and scalar
  // execution are bit-identical.
  /// Membrane survival check + flow/fouling-dependent conductance update.
  void step_pre_thermal(const Environment& env);
  /// Fouling growth from the just-relaxed heater temperatures (water only).
  void step_post_thermal(util::Seconds dt, const Environment& env);
  /// The die's lumped thermal network — every die built from one MafSpec has
  /// identical topology, the precondition of ThermalNetwork::step_batch.
  [[nodiscard]] phys::ThermalNetwork& thermal_network() { return net_; }

  /// Relaxes the thermal state to steady state under constant powers/env
  /// (fouling state is left untouched). Used by the quasi-static solver.
  void settle(const Environment& env);

  /// As-built die again: thermal network at its initial temperatures, clean
  /// surfaces, membrane intact. The manufacturing-tolerance draws (element R0
  /// spread) are part properties and persist.
  void reset();

  [[nodiscard]] DieTemperatures temperatures() const;
  [[nodiscard]] const FoulingState& fouling_a() const { return fouling_a_; }
  [[nodiscard]] const FoulingState& fouling_b() const { return fouling_b_; }
  FoulingState& fouling_a() { return fouling_a_; }
  FoulingState& fouling_b() { return fouling_b_; }

  /// False once an overpressure event has broken the membrane (latched); the
  /// heaters then read open (very large resistance).
  [[nodiscard]] bool membrane_intact() const { return membrane_intact_; }

  /// Fault-injection port (src/fault): ruptures the membrane as a water-hammer
  /// overpressure spike would — latched exactly like the physical path through
  /// step(); only reset() (a new die) restores it.
  void damage_membrane() { membrane_intact_ = false; }

  /// Convective film conductance heater→fluid (W/K) at the given conditions
  /// for a clean surface — exposed for calibration sanity checks.
  [[nodiscard]] double clean_film_conductance(const Environment& env,
                                              util::Kelvin wall) const;

  [[nodiscard]] const MafSpec& spec() const { return spec_; }

  /// Checkpoint support: fouling surfaces, thermal state and the latched
  /// membrane flag. The R0 tolerance draws are part properties, reproduced by
  /// reconstruction.
  void save_state(state::Writer& w) const {
    fouling_a_.save_state(w);
    fouling_b_.save_state(w);
    net_.save_state(w);
    w.boolean(membrane_intact_);
  }
  void load_state(state::Reader& r) {
    fouling_a_.load_state(r);
    fouling_b_.load_state(r);
    net_.load_state(r);
    membrane_intact_ = r.boolean();
  }

 private:
  void build_network();
  void update_conductances(const Environment& env);

  MafSpec spec_;
  phys::TcrResistor heater_a_;
  phys::TcrResistor heater_b_;
  phys::TcrResistor reference_;
  FoulingState fouling_a_;
  FoulingState fouling_b_;

  phys::ThermalNetwork net_;
  phys::ThermalNetwork::NodeId n_heater_a_{}, n_heater_b_{}, n_reference_{};
  phys::ThermalNetwork::NodeId n_fluid_{}, n_local_a_{}, n_local_b_{}, n_substrate_{};
  phys::ThermalNetwork::EdgeId e_conv_a_{}, e_conv_b_{}, e_conv_ref_{};
  phys::ThermalNetwork::EdgeId e_ab_{}, e_edge_a_{}, e_edge_b_{};
  phys::ThermalNetwork::EdgeId e_back_a_{}, e_back_b_{};

  bool membrane_intact_ = true;
};

}  // namespace aqua::maf
