#include "maf/package.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::maf {

using util::Amperes;
using util::MetresPerSecond;
using util::Ohms;
using util::Pascals;
using util::Seconds;
using util::Volts;

Package::Package(const PackageSpec& spec, util::Rng rng)
    : spec_(spec), rng_(rng), initial_rng_(rng) {
  if (spec.sealing_quality < 0.0 || spec.sealing_quality > 1.0)
    throw std::invalid_argument("Package: sealing_quality outside [0,1]");
}

void Package::reset() {
  moisture_ = 0.0;
  corrosion_ = 0.0;
  rng_ = initial_rng_;
}

void Package::inject_moisture(double amount) {
  moisture_ = std::clamp(moisture_ + std::max(0.0, amount), 0.0, 1.0);
}

void Package::step(Seconds dt, Pascals pressure) {
  // Moisture ingress: pressure-driven creep through whatever the seal leaves
  // open. A perfect seal admits (almost) nothing; ingress saturates at 1.
  const double leak_path = 1.0 - spec_.sealing_quality;
  const double pressure_factor = 1.0 + util::to_bar(pressure);
  const double ingress_rate = 2e-6 * leak_path * pressure_factor;  // 1/s
  moisture_ = std::min(1.0, moisture_ + ingress_rate * dt.value());

  // Corrosion needs moisture at the contacts; add a little stochastic
  // pitting so two "identical" bad assemblies age differently.
  const double pitting = std::max(0.0, 1.0 + 0.3 * rng_.gaussian());
  corrosion_ = std::min(
      1.0, corrosion_ + spec_.corrosion_rate * moisture_ * pitting * dt.value());
}

Ohms Package::insulation_resistance() const {
  // Wet insulation collapses exponentially with moisture: GΩ dry, ~100 kΩ
  // soaked.
  const double decades = 4.7 * moisture_;
  return Ohms{spec_.dry_insulation.value() * std::pow(10.0, -decades)};
}

Amperes Package::leakage_current(Volts supply) const {
  return Amperes{supply.value() / insulation_resistance().value()};
}

Ohms Package::contact_resistance() const {
  // Pristine crimp ~10 mΩ; corrosion grows an oxide film worth up to ~20 Ω.
  return Ohms{0.01 + 20.0 * corrosion_ * corrosion_};
}

bool Package::healthy() const {
  return corrosion_ < 0.5 && insulation_resistance().value() > 1e6;
}

double Package::added_turbulence(MetresPerSecond speed) const {
  // The smoothed head sheds weak vortices; intensity scales with speed but
  // saturates (fully turbulent wake).
  const double v = std::abs(speed.value());
  return spec_.intrusiveness * (1.0 - std::exp(-v / 0.5));
}

}  // namespace aqua::maf
