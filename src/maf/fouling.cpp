#include "maf/fouling.hpp"

#include <algorithm>
#include <cmath>

namespace aqua::maf {

using util::Kelvin;
using util::Seconds;
using util::SquareMetres;

FoulingState::FoulingState(const FoulingParameters& params) : params_(params) {}

void FoulingState::step(Seconds dt, Kelvin wall_temperature,
                        const Environment& env) {
  const double h = dt.value();
  const double overtemp =
      wall_temperature.value() - env.fluid_temperature.value();

  // --- Bubbles: nucleate above the outgassing/boiling onset, detach with
  // shear and buoyancy. The (1 − θ) factor limits growth to bare surface.
  const double onset = phys::bubble_onset_overtemperature(
                           env.fluid_temperature, env.pressure,
                           env.dissolved_gas_saturation)
                           .value();
  const double excess = std::max(0.0, overtemp - onset);
  const double grow = params_.nucleation_rate * excess * (1.0 - bubble_coverage_);
  const double shed =
      (params_.detachment_rate +
       params_.shear_detachment * std::abs(env.speed.value())) *
      bubble_coverage_;
  bubble_coverage_ = std::clamp(bubble_coverage_ + h * (grow - shed), 0.0, 0.95);

  // --- CaCO3 deposit: inverse-solubility kinetics at the wall temperature.
  const double rate = phys::deposit_growth_rate(
      params_.scaling, env.chemistry, wall_temperature, deposit_thickness_);
  deposit_thickness_ = std::max(0.0, deposit_thickness_ + h * rate);
}

double FoulingState::convection_factor() const {
  // A bubble-covered patch still conducts a little through the gas film
  // (~5 % of the liquid path).
  return 1.0 - bubble_coverage_ * 0.95;
}

double FoulingState::deposit_resistance(SquareMetres area) const {
  return phys::deposit_thermal_resistance(deposit_thickness_, area);
}

void FoulingState::clean() {
  bubble_coverage_ = 0.0;
  deposit_thickness_ = 0.0;
}

void FoulingState::set_bubble_coverage(double coverage) {
  bubble_coverage_ = std::clamp(coverage, 0.0, 0.95);
}

void FoulingState::set_deposit_thickness(double thickness_m) {
  deposit_thickness_ = std::max(0.0, thickness_m);
}

}  // namespace aqua::maf
