// environment.hpp — the fluid environment the MAF die is immersed in at one
// instant: what the test line (hydro) produces and what the die model and the
// fouling dynamics consume.
#pragma once

#include "phys/carbonate.hpp"
#include "phys/fluid.hpp"
#include "util/units.hpp"

namespace aqua::maf {

struct Environment {
  phys::Medium medium = phys::Medium::kWater;
  /// Signed flow speed at the sensor head; positive is the "forward" pipe
  /// direction (heater A upstream of heater B).
  util::MetresPerSecond speed = util::metres_per_second(0.0);
  util::Kelvin fluid_temperature = util::celsius(15.0);
  util::Pascals pressure = util::bar(2.0);
  /// Dissolved-gas saturation of the water (1 = air-saturated; 0 = degassed).
  double dissolved_gas_saturation = 1.0;
  phys::WaterChemistry chemistry{};
};

}  // namespace aqua::maf
