// fleet.hpp — the fleet co-simulation engine: N independent CTA sensors
// attached to pipes of a hydro::WaterNetwork, co-simulated against the
// network's diurnal demand pattern (paper §6: "diffusive monitoring in water
// distribution networks").
//
// Timing model: time advances in fixed epochs. At each epoch boundary the
// engine (serially) scales the junction demands by the diurnal factor and
// re-solves the steady-state network; every sensor then integrates its
// ΣΔ/CIC/PI loop across the epoch under its pipe's frozen hydraulic state —
// on the caller's thread, or sharded across a util::ThreadPool.
//
// Parallel execution model (DESIGN.md §12): sensors are partitioned into
// cost-balanced shards (fleet::plan_shards over per-sensor EWMA step costs,
// rebalanced between epochs). With a plain pool the engine submits exactly
// one coarse task per shard per epoch; inside a TeamSession it goes further —
// one persistent task parked per worker for the whole run, released once per
// epoch through an EpochBarrier, zero per-epoch enqueues. The per-epoch hot
// state (pipe snapshots in, sample fields out, step costs) lives in
// structure-of-arrays form so an epoch streams memory instead of chasing
// SensorNode pointers, and so readers (supervisor polls, leak estimates) can
// scan the fleet without touching the nodes.
//
// Determinism contract (the load-bearing property): each SensorNode owns all
// of its mutable state and draws from its private counter-based RNG stream
// (util::Rng::stream(root_seed, sensor_index)), and epoch snapshots are
// computed serially before the fan-out. Sensor tasks therefore commute, and
// the same root seed produces bit-identical per-sensor traces for ANY thread
// count AND any shard assignment — including none. Shard plans are built from
// wall-clock costs and are explicitly outside the contract; the simulation
// output must not (and does not) depend on them. tests/fleet/ enforce both.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "fleet/report.hpp"
#include "fleet/sensor_node.hpp"
#include "fleet/shard.hpp"
#include "hydro/network.hpp"
#include "sim/schedule.hpp"
#include "state/checkpoint.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"
#include "util/worker_team.hpp"

namespace aqua::fleet {

/// Knobs of the cost-balanced sharding layer.
struct ShardingConfig {
  /// Auto-rebalance cadence, in epochs (0 = plan once, never rebalance).
  /// Rebalancing happens serially between epochs and never changes results —
  /// only wall-clock balance.
  long long rebalance_interval_epochs = 16;
  /// EWMA smoothing of the measured per-sensor step wall time:
  /// cost ← (1−α)·cost + α·measured.
  double cost_ewma_alpha = 0.25;
  /// When false the engine stops folding measurements into the cost model —
  /// costs stay wherever set_cost_hint() put them (tests use this to build
  /// adversarial skews that reproduce exactly).
  bool measure_costs = true;
};

/// How the epoch loop advances its sensors (DESIGN.md §13).
enum class ChannelExecution {
  /// Per-sensor scalar stepping — the bit-identity reference path that the
  /// legacy fleet determinism checksum is committed against.
  kScalar,
  /// Cross-sensor SIMD lanes: each shard advances its frame-aligned sensors
  /// as one simd::CtaFrameBatch group (batched thermal sweep + W-wide fused
  /// channel chain); mid-frame sensors (e.g. freshly commissioned ones) fall
  /// back to the scalar path without perturbing any neighbour's RNG stream.
  /// Deterministic under its own committed checksum — invariant to lane
  /// width, thread count and shard plan — but intentionally not bit-equal to
  /// kScalar (different Gaussian transform; see simd/channel_batch.hpp).
  kSimdBatch,
};

struct FleetConfig {
  /// Template for every sensor (placement and RNG stream are per-node).
  SensorNodeConfig sensor{};
  std::uint64_t root_seed = 42;
  /// Scalar reference path by default; opt in to the SIMD lanes per fleet.
  ChannelExecution execution = ChannelExecution::kScalar;
  /// Lane width for kSimdBatch (0 = the width the simd objects were compiled
  /// for; 1/2/4/8 force a width — any value reproduces the same results).
  int batch_lane_width = 0;
  /// Network solve cadence; sensors integrate one epoch between solves.
  util::Seconds epoch{0.25};
  /// Demand multiplier vs simulation time (diurnal pattern; constant 1 by
  /// default). Applied to the base demands captured at construction.
  sim::Schedule demand_factor{1.0};
  util::Kelvin water_temperature = util::celsius(15.0);
  /// Absolute pressure floor the node pressure heads ride on.
  util::Pascals atmospheric = util::bar(1.0);
  ShardingConfig sharding{};
};

/// Residential 24-hour demand pattern — night valley (0.3×), morning peak
/// (1.6×), midday plateau, evening peak (1.3×) — compressed to `day`.
[[nodiscard]] sim::Schedule diurnal_demand_pattern(util::Seconds day);

/// Per-sensor estimates paired with a validity mask. `values[i]` is only
/// meaningful where `valid[i]` is nonzero; for quarantined / faulted / never-
/// sampled sensors the value is pinned to 0.0 rather than silently replaying
/// the last pre-fault trace sample. Consumers that can degrade gracefully
/// (LeakLocalizer's masked overloads) should use the mask; consumers that
/// cannot must treat any invalid entry as missing data.
struct MaskedEstimates {
  std::vector<double> values;
  std::vector<std::uint8_t> valid;

  [[nodiscard]] std::size_t valid_count() const;
};

class FleetEngine {
 public:
  /// Captures the network's current demands as the diurnal base and solves
  /// once. Throws std::runtime_error if that initial solve fails.
  FleetEngine(hydro::WaterNetwork& network,
              std::span<const SensorPlacement> placements,
              const FleetConfig& config);

  /// Ends any live worker team (begin_team misuse backstop; the pool must
  /// still be alive — see begin_team).
  ~FleetEngine();

  /// Runs the ISIF channel self-test on every sensor, then settles every
  /// sensor at zero flow (parallel across `pool` if given). Self-test results
  /// surface through SensorNode::last_self_test() and the FleetReport; the
  /// test leaves the channel bit-identical to its pre-test state, so the
  /// determinism checksum is unaffected.
  void commission(util::Seconds settle = util::Seconds{1.0},
                  util::ThreadPool* pool = nullptr);

  /// Field-service action on one node, the supervisor's re-commission move:
  /// reboot the electronics, run the channel self-test, re-null the direction
  /// channel at zero flow. Serial by design — supervisor actions happen at
  /// epoch boundaries on the caller's thread (determinism contract). Returns
  /// the self-test result.
  isif::ChannelSelfTestResult recommission(std::size_t i, util::Seconds settle);

  /// Per-sensor King's-law sweep (parallel across `pool` if given). Each die
  /// gets its own fit, absorbing its tolerance draws.
  void calibrate(std::span<const double> mean_speeds,
                 util::Seconds dwell = util::Seconds{0.5},
                 util::ThreadPool* pool = nullptr);

  /// Fleet-wide nominal fit instead of per-sensor sweeps (cheap, less exact).
  void set_shared_fit(const cta::KingFit& fit);

  /// Co-simulates `duration` in epochs; serial on the caller's thread when
  /// `pool` is null, else sharded — bit-identical either way. With a pool and
  /// no already-active team this wraps the whole loop in a persistent worker
  /// team, so the steady state runs with zero per-epoch task enqueues.
  void run(util::Seconds duration, util::ThreadPool* pool = nullptr);

  /// Advances exactly one epoch: demand scaling, network solve, serial pipe
  /// snapshots, sharded sensor execution, clock tick. run() is a loop over
  /// this. Fault injectors and the fleet supervisor act *between* step_epoch
  /// calls on the caller's thread, which keeps campaigns bit-reproducible at
  /// any thread count. Without an active team, a non-null pool gets exactly
  /// one coarse task per shard this epoch (no per-sensor enqueue).
  void step_epoch(util::ThreadPool* pool = nullptr);

  // --- persistent worker team (DESIGN.md §12) ------------------------------

  /// Parks one persistent epoch task per pool worker; subsequent step_epoch
  /// calls passing this pool release the team through a barrier instead of
  /// enqueueing anything. The team OWNS every pool worker until end_team() —
  /// do not run other work on the pool meanwhile, and always end the team
  /// (or destroy the engine) before the pool is destroyed. No-op on nullptr;
  /// an existing team on the same pool is kept, on another pool replaced.
  void begin_team(util::ThreadPool* pool);
  void end_team();
  [[nodiscard]] bool team_active() const { return team_ != nullptr; }

  /// RAII team scope — the campaign/supervision loops use this around their
  /// step_epoch sequences:
  ///   FleetEngine::TeamSession session{engine, pool.get()};
  ///   for (...) { inject(); engine.step_epoch(pool.get()); poll(); }
  class TeamSession {
   public:
    TeamSession(FleetEngine& engine, util::ThreadPool* pool)
        : engine_(engine) {
      engine_.begin_team(pool);
    }
    ~TeamSession() { engine_.end_team(); }
    TeamSession(const TeamSession&) = delete;
    TeamSession& operator=(const TeamSession&) = delete;

   private:
    FleetEngine& engine_;
  };

  // --- cost model and shard plan -------------------------------------------

  /// Current partition of sensors into shards (rebuilt lazily for the pool in
  /// use; empty until the first sharded epoch or explicit rebalance).
  [[nodiscard]] const ShardPlan& shard_plan() const { return plan_; }

  /// Replaces the plan with a caller-supplied partition and pins it (auto
  /// rebalance stops until clear_shard_plan). Throws std::invalid_argument if
  /// `plan` is not a partition of [0, size()). Any partition is legal — the
  /// determinism contract makes them all produce identical simulations.
  void set_shard_plan(ShardPlan plan);
  /// Unpins a manual plan; cost-based planning resumes.
  void clear_shard_plan();

  /// Recomputes the LPT plan for `shard_count` shards from the current cost
  /// model, immediately.
  void rebalance_shards(std::size_t shard_count);
  [[nodiscard]] long long rebalances() const { return rebalances_; }

  /// Per-sensor predicted step cost (seconds; EWMA of measured wall time
  /// unless pinned via set_cost_hint with measurement off).
  [[nodiscard]] double cost_estimate(std::size_t i) const {
    return hot_.cost_ewma_s[i];
  }
  /// Seeds/overrides sensor `i`'s cost estimate. With
  /// ShardingConfig::measure_costs == false the hint is permanent.
  void set_cost_hint(std::size_t i, double seconds);

  [[nodiscard]] FleetReport report() const;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const SensorNode& node(std::size_t i) const {
    return *nodes_[i];
  }
  /// Mutable node access for the fault-injection and supervision layers.
  [[nodiscard]] SensorNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] util::Seconds now() const { return t_; }
  [[nodiscard]] hydro::WaterNetwork& network() { return net_; }
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  /// Network solves that failed to converge during run() (previous solution
  /// carried over).
  [[nodiscard]] long long solve_failures() const { return solve_failures_; }
  /// Epochs stepped since construction.
  [[nodiscard]] long long epochs() const { return epoch_index_; }

  /// Latest per-sensor mean-velocity estimates (sensor order) — the input a
  /// cta::LeakLocalizer expects. DEPRECATED for fault-aware consumers: for a
  /// dead or quarantined sensor this replays the last trace sample as if it
  /// were live data. Prefer latest_estimates_masked().
  [[nodiscard]] std::vector<double> latest_estimates() const;

  /// Latest per-sensor estimates with a validity mask. A sensor is invalid
  /// while it has never produced a sample or while the supervision layer has
  /// marked it out of service (set_estimate_valid); invalid values are pinned
  /// to 0.0 so garbage cannot leak into downstream consumers unnoticed.
  [[nodiscard]] MaskedEstimates latest_estimates_masked() const;

  /// Sensor `i`'s latest trace sample, served from the engine's SoA hot state
  /// instead of the node's trace vector — the supervisor's per-epoch poll
  /// reads this so a 10k-sensor scan streams four arrays rather than chasing
  /// 10k node pointers. Field-for-field equal to node(i).latest_sample() for
  /// every sample produced through step_epoch.
  [[nodiscard]] std::optional<TraceSample> latest_sample_view(
      std::size_t i) const;

  /// Marks sensor `i`'s estimate stream (in)valid. The supervisor drives this
  /// as nodes move through quarantine and recovery; all sensors start valid.
  void set_estimate_valid(std::size_t i, bool valid);
  [[nodiscard]] bool estimate_valid(std::size_t i) const {
    return estimate_valid_[i] != 0;
  }

  // --- crash-consistent checkpoint/restore (DESIGN.md §14) -----------------

  /// Serialises the engine's evolving state into `ck` as CRC-framed sections
  /// (META config fingerprint, OBSC deterministic counters, NETW hydraulic
  /// state, FLEN engine scalars + hot SoA, NODS every sensor). Must run at a
  /// quiescent point — between step_epoch calls, no epoch in flight.
  /// Composable: campaign layers append their own sections to the same image.
  void write_checkpoint(state::CheckpointWriter& ck) const;

  /// One self-contained checkpoint image (write_checkpoint + finish).
  [[nodiscard]] std::vector<std::uint8_t> checkpoint() const;

  /// Restores from a validated image into THIS engine, which must have been
  /// constructed with the identical config, placements and network — the
  /// one-time part draws (tolerances, offsets, mismatch) are reproduced by
  /// reconstruction and never enter a checkpoint. Validates the META section
  /// against the live config and throws state::Error on any mismatch or
  /// malformed payload; restore into a fresh instance after a throw.
  void read_checkpoint(const state::CheckpointReader& ck);
  /// Convenience: CheckpointReader(image) + read_checkpoint.
  void restore(std::span<const std::uint8_t> image);

 private:
  [[nodiscard]] PipeState pipe_state_for(const SensorNode& node) const;
  void apply_demand_factor(double factor);
  /// Runs body(i) for every node — serially, or on the pool (commission /
  /// calibration fan-out; the epoch loop uses shards instead).
  void dispatch(util::ThreadPool* pool,
                const std::function<void(std::size_t)>& body);
  /// Serially freezes this epoch's per-sensor hydraulic state into the SoA
  /// input arrays (same arithmetic, same order, as pipe_state_for).
  void snapshot_epoch_inputs();
  /// Rehydrates sensor `i`'s frozen epoch input from the SoA arrays.
  [[nodiscard]] PipeState snapshot_state(std::size_t i) const;
  /// Advances sensor `i` one epoch from the SoA inputs and publishes its
  /// sample fields + measured cost back into the SoA outputs. Runs on pool
  /// workers for disjoint `i` — everything it touches is per-sensor.
  void advance_sensor(std::size_t i);
  /// Advances the sensors in `ids` one epoch as a single cross-sensor SIMD
  /// group (SensorNode::advance_group) and publishes each one's sample. The
  /// group wall time is split evenly across the members for the cost model.
  void advance_sensor_group(std::span<const std::uint32_t> ids);
  /// One epoch for the sensors in `ids` under the configured execution mode:
  /// scalar per-sensor stepping, or one batch group per call with scalar
  /// fallback for sensors that are not frame-aligned.
  void advance_sensors(std::span<const std::uint32_t> ids);
  /// Mirrors node `i`'s newest trace sample into the SoA outputs (disjoint
  /// slot — safe from any worker).
  void publish_sample(std::size_t i);
  /// Folds a measured per-sensor step wall time into the EWMA cost model.
  void record_cost(std::size_t i, double seconds);
  /// Runs one shard of the current plan (ascending sensor order).
  void process_shard(std::size_t shard);
  /// Makes sure plan_ is a partition sized for `shard_count` shards, and
  /// applies the between-epochs auto-rebalance cadence.
  void ensure_plan(std::size_t shard_count);

  hydro::WaterNetwork& net_;
  FleetConfig config_;
  std::vector<double> base_demands_;  // indexed by NodeId; 0 for reservoirs
  std::vector<std::unique_ptr<SensorNode>> nodes_;
  std::vector<std::uint8_t> estimate_valid_;  // per sensor, 1 = in service

  /// Per-epoch hot state, structure-of-arrays: one slot per sensor. The
  /// epoch loop writes inputs serially, workers read inputs / write outputs
  /// for disjoint sensors, and cold readers scan outputs without touching
  /// SensorNode. Wall-clock costs live here too — they feed the shard
  /// planner, never the simulation.
  struct HotState {
    // Epoch inputs (frozen network state).
    std::vector<double> mean_velocity_mps;
    std::vector<double> point_velocity_mps;
    std::vector<double> pressure_pa;
    std::vector<double> temperature_k;
    // Latest-sample outputs (mirrors of the node's trace back()).
    std::vector<double> t_s;
    std::vector<double> bridge_voltage;
    std::vector<double> filtered_voltage;
    std::vector<double> estimate_mps;
    std::vector<std::int8_t> direction;
    std::vector<std::uint8_t> has_sample;
    // Cost model (EWMA step seconds; scheduling only).
    std::vector<double> cost_ewma_s;

    void resize(std::size_t n);
  };
  HotState hot_;

  ShardPlan plan_;
  bool plan_manual_ = false;
  long long epoch_index_ = 0;
  long long rebalances_ = 0;
  std::unique_ptr<util::WorkerTeam> team_;
  util::ThreadPool* team_pool_ = nullptr;

  util::Seconds t_{0.0};
  long long solve_failures_ = 0;
};

}  // namespace aqua::fleet
