// fleet.hpp — the fleet co-simulation engine: N independent CTA sensors
// attached to pipes of a hydro::WaterNetwork, co-simulated against the
// network's diurnal demand pattern (paper §6: "diffusive monitoring in water
// distribution networks").
//
// Timing model: time advances in fixed epochs. At each epoch boundary the
// engine (serially) scales the junction demands by the diurnal factor and
// re-solves the steady-state network; every sensor then integrates its
// ΣΔ/CIC/PI loop across the epoch under its pipe's frozen hydraulic state —
// on the caller's thread, or fanned out over a util::ThreadPool.
//
// Determinism contract (the load-bearing property): each SensorNode owns all
// of its mutable state and draws from its private counter-based RNG stream
// (util::Rng::stream(root_seed, sensor_index)), and epoch snapshots are
// computed serially before the fan-out. Sensor tasks therefore commute, and
// the same root seed produces bit-identical per-sensor traces for ANY thread
// count — including none. The equivalence tests in tests/fleet/ enforce this.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "fleet/report.hpp"
#include "fleet/sensor_node.hpp"
#include "hydro/network.hpp"
#include "sim/schedule.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace aqua::fleet {

struct FleetConfig {
  /// Template for every sensor (placement and RNG stream are per-node).
  SensorNodeConfig sensor{};
  std::uint64_t root_seed = 42;
  /// Network solve cadence; sensors integrate one epoch between solves.
  util::Seconds epoch{0.25};
  /// Demand multiplier vs simulation time (diurnal pattern; constant 1 by
  /// default). Applied to the base demands captured at construction.
  sim::Schedule demand_factor{1.0};
  util::Kelvin water_temperature = util::celsius(15.0);
  /// Absolute pressure floor the node pressure heads ride on.
  util::Pascals atmospheric = util::bar(1.0);
};

/// Residential 24-hour demand pattern — night valley (0.3×), morning peak
/// (1.6×), midday plateau, evening peak (1.3×) — compressed to `day`.
[[nodiscard]] sim::Schedule diurnal_demand_pattern(util::Seconds day);

/// Per-sensor estimates paired with a validity mask. `values[i]` is only
/// meaningful where `valid[i]` is nonzero; for quarantined / faulted / never-
/// sampled sensors the value is pinned to 0.0 rather than silently replaying
/// the last pre-fault trace sample. Consumers that can degrade gracefully
/// (LeakLocalizer's masked overloads) should use the mask; consumers that
/// cannot must treat any invalid entry as missing data.
struct MaskedEstimates {
  std::vector<double> values;
  std::vector<std::uint8_t> valid;

  [[nodiscard]] std::size_t valid_count() const;
};

class FleetEngine {
 public:
  /// Captures the network's current demands as the diurnal base and solves
  /// once. Throws std::runtime_error if that initial solve fails.
  FleetEngine(hydro::WaterNetwork& network,
              std::span<const SensorPlacement> placements,
              const FleetConfig& config);

  /// Runs the ISIF channel self-test on every sensor, then settles every
  /// sensor at zero flow (parallel across `pool` if given). Self-test results
  /// surface through SensorNode::last_self_test() and the FleetReport; the
  /// test leaves the channel bit-identical to its pre-test state, so the
  /// determinism checksum is unaffected.
  void commission(util::Seconds settle = util::Seconds{1.0},
                  util::ThreadPool* pool = nullptr);

  /// Field-service action on one node, the supervisor's re-commission move:
  /// reboot the electronics, run the channel self-test, re-null the direction
  /// channel at zero flow. Serial by design — supervisor actions happen at
  /// epoch boundaries on the caller's thread (determinism contract). Returns
  /// the self-test result.
  isif::ChannelSelfTestResult recommission(std::size_t i, util::Seconds settle);

  /// Per-sensor King's-law sweep (parallel across `pool` if given). Each die
  /// gets its own fit, absorbing its tolerance draws.
  void calibrate(std::span<const double> mean_speeds,
                 util::Seconds dwell = util::Seconds{0.5},
                 util::ThreadPool* pool = nullptr);

  /// Fleet-wide nominal fit instead of per-sensor sweeps (cheap, less exact).
  void set_shared_fit(const cta::KingFit& fit);

  /// Co-simulates `duration` in epochs; serial on the caller's thread when
  /// `pool` is null, else fanned out — bit-identical either way.
  void run(util::Seconds duration, util::ThreadPool* pool = nullptr);

  /// Advances exactly one epoch: demand scaling, network solve, serial pipe
  /// snapshots, sensor fan-out, clock tick. run() is a loop over this. Fault
  /// injectors and the fleet supervisor act *between* step_epoch calls on the
  /// caller's thread, which keeps campaigns bit-reproducible at any thread
  /// count.
  void step_epoch(util::ThreadPool* pool = nullptr);

  [[nodiscard]] FleetReport report() const;

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const SensorNode& node(std::size_t i) const {
    return *nodes_[i];
  }
  /// Mutable node access for the fault-injection and supervision layers.
  [[nodiscard]] SensorNode& node(std::size_t i) { return *nodes_[i]; }
  [[nodiscard]] util::Seconds now() const { return t_; }
  [[nodiscard]] hydro::WaterNetwork& network() { return net_; }
  [[nodiscard]] const FleetConfig& config() const { return config_; }
  /// Network solves that failed to converge during run() (previous solution
  /// carried over).
  [[nodiscard]] long long solve_failures() const { return solve_failures_; }

  /// Latest per-sensor mean-velocity estimates (sensor order) — the input a
  /// cta::LeakLocalizer expects. DEPRECATED for fault-aware consumers: for a
  /// dead or quarantined sensor this replays the last trace sample as if it
  /// were live data. Prefer latest_estimates_masked().
  [[nodiscard]] std::vector<double> latest_estimates() const;

  /// Latest per-sensor estimates with a validity mask. A sensor is invalid
  /// while it has never produced a sample or while the supervision layer has
  /// marked it out of service (set_estimate_valid); invalid values are pinned
  /// to 0.0 so garbage cannot leak into downstream consumers unnoticed.
  [[nodiscard]] MaskedEstimates latest_estimates_masked() const;

  /// Marks sensor `i`'s estimate stream (in)valid. The supervisor drives this
  /// as nodes move through quarantine and recovery; all sensors start valid.
  void set_estimate_valid(std::size_t i, bool valid);
  [[nodiscard]] bool estimate_valid(std::size_t i) const {
    return estimate_valid_[i] != 0;
  }

 private:
  [[nodiscard]] PipeState pipe_state_for(const SensorNode& node) const;
  void apply_demand_factor(double factor);
  /// Runs body(i) for every node — serially, or on the pool.
  void dispatch(util::ThreadPool* pool,
                const std::function<void(std::size_t)>& body);

  hydro::WaterNetwork& net_;
  FleetConfig config_;
  std::vector<double> base_demands_;  // indexed by NodeId; 0 for reservoirs
  std::vector<std::unique_ptr<SensorNode>> nodes_;
  std::vector<std::uint8_t> estimate_valid_;  // per sensor, 1 = in service
  std::vector<PipeState> scratch_states_;     // per-epoch snapshot scratch
  util::Seconds t_{0.0};
  long long solve_failures_ = 0;
};

}  // namespace aqua::fleet
