// supervisor.hpp — the fleet supervision layer: a per-sensor health state
// machine on top of FleetEngine. The paper's network vision (§6) only works
// if a sensor that starts lying is taken *out* of the leak computation and,
// where physics allows, put back in: a browned-out rail recovers after a
// reboot; a broken membrane never does. The supervisor encodes exactly that
// operational loop:
//
//   healthy ──(faulty streak / hard fault)──► suspect ──► quarantined
//      ▲                                                     │ backoff
//      │            probation (clean streak)                 ▼ (capped exp.)
//      └───────────────◄────────────────────────── re-commission attempt
//                                                  (reboot + self-test +
//                                                   zero-flow settle)
//   quarantined ──(attempts exhausted)──► failed (permanent)
//
// Determinism contract: poll() runs serially on the caller's thread between
// FleetEngine::step_epoch calls and draws no randomness, so a fault campaign
// supervised by this class is bit-reproducible at any thread count.
#pragma once

#include <cstddef>
#include <vector>

#include "core/health.hpp"
#include "fleet/fleet.hpp"
#include "util/units.hpp"

namespace aqua::fleet {

enum class NodeHealthState : std::uint8_t {
  kHealthy = 0,      ///< in service, estimates valid
  kSuspect = 1,      ///< soft faults accumulating, still in service
  kQuarantined = 2,  ///< out of service, waiting out the re-commission backoff
  kProbation = 3,    ///< re-commissioned, must stay clean to re-enter service
  kFailed = 4,       ///< re-commission attempts exhausted — permanent
};

[[nodiscard]] const char* node_health_state_name(NodeHealthState state);

struct SupervisorConfig {
  cta::HealthConfig health{};
  /// Consecutive faulty epochs before a soft fault quarantines the node
  /// (hard faults — membrane, package, watchdog — quarantine immediately).
  int suspect_epochs = 3;
  /// Consecutive clean epochs on probation before the node re-enters service.
  int probation_epochs = 4;
  /// Re-commission backoff, in epochs: starts at `backoff_initial_epochs`,
  /// doubles per failed attempt, saturates at `backoff_max_epochs`.
  int backoff_initial_epochs = 2;
  int backoff_max_epochs = 16;
  /// Re-commission attempts before the node is declared permanently failed.
  int max_recommission_attempts = 4;
  /// Zero-flow settle per re-commission attempt (simulation seconds).
  util::Seconds recommission_settle{1.0};
  /// A failed channel self-test keeps the node quarantined without burning
  /// the settle time on a commission that cannot succeed.
  bool require_self_test_pass = true;
};

/// Per-node supervision record (read-only view for reports and tests).
struct NodeSupervision {
  NodeHealthState state = NodeHealthState::kHealthy;
  int faulty_streak = 0;  ///< consecutive faulty polls in healthy/suspect
  int clean_streak = 0;   ///< consecutive clean polls on probation
  int backoff_remaining = 0;
  int backoff_next = 0;  ///< epochs the *next* failed attempt will wait
  int recommission_attempts = 0;
  int quarantine_entries = 0;  ///< flap metric: times quarantine was entered
  int recoveries = 0;          ///< probation → healthy transitions
  long long first_fault_epoch = -1;  ///< poll index of the streak's first fault
  long long quarantined_epoch = -1;  ///< poll index of the latest quarantine
  double quarantined_t_s = -1.0;     ///< sim time of the latest quarantine
  double recovered_t_s = -1.0;       ///< sim time of the latest recovery
  std::vector<cta::FaultCode> last_faults;  ///< from the latest faulty poll
};

/// Counters aggregated over the whole fleet since construction.
struct SupervisorStats {
  long long quarantines = 0;
  long long recoveries = 0;
  long long failures = 0;
  long long recommission_attempts = 0;
  long long self_test_failures = 0;
};

class FleetSupervisor {
 public:
  /// The supervisor keeps a reference to the engine: it polls node traces,
  /// flips estimate-validity flags and drives re-commissions through it.
  explicit FleetSupervisor(FleetEngine& engine,
                           const SupervisorConfig& config = {});

  FleetSupervisor(const FleetSupervisor&) = delete;
  FleetSupervisor& operator=(const FleetSupervisor&) = delete;

  /// One supervision pass; call after each FleetEngine::step_epoch. Assesses
  /// every node's latest sample through its HealthMonitor, advances the state
  /// machines and performs any due re-commission attempts — all serially.
  void poll();

  [[nodiscard]] const NodeSupervision& supervision(std::size_t i) const {
    return nodes_[i];
  }
  [[nodiscard]] NodeHealthState state(std::size_t i) const {
    return nodes_[i].state;
  }
  [[nodiscard]] const SupervisorStats& stats() const { return stats_; }
  [[nodiscard]] long long polls() const { return polls_; }

  [[nodiscard]] std::size_t count_in(NodeHealthState state) const;
  /// Sensors currently contributing valid estimates (healthy or suspect).
  [[nodiscard]] std::size_t in_service_count() const;

  /// Checkpoint support: every per-node state machine (including backoff
  /// counters and streaks), every HealthMonitor history, the aggregate stats
  /// and the poll counter. Restore targets a supervisor freshly constructed
  /// on the restored engine with the identical config.
  void save_state(state::Writer& w) const;
  void load_state(state::Reader& r);

 private:
  void enter_quarantine(std::size_t i, NodeSupervision& sup);
  void attempt_recommission(std::size_t i, NodeSupervision& sup);

  FleetEngine& engine_;
  SupervisorConfig config_;
  std::vector<NodeSupervision> nodes_;
  std::vector<cta::HealthMonitor> monitors_;
  SupervisorStats stats_;
  long long polls_ = 0;
};

}  // namespace aqua::fleet
