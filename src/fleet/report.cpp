#include "fleet/report.hpp"

#include <algorithm>
#include <cmath>

namespace aqua::fleet {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

std::vector<JunctionBalance> FleetReport::ranked_suspects() const {
  std::vector<JunctionBalance> ranked = balances;
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const JunctionBalance& a, const JunctionBalance& b) {
                     if (a.fully_observed != b.fully_observed)
                       return a.fully_observed;
                     return std::abs(a.residual_m3s) > std::abs(b.residual_m3s);
                   });
  return ranked;
}

FleetReport build_report(const hydro::WaterNetwork& net,
                         std::span<const std::unique_ptr<SensorNode>> nodes,
                         double sim_time_s) {
  FleetReport report;
  report.sim_time_s = sim_time_s;

  // Per-sensor accuracy over the recorded trace.
  std::vector<double> pipe_flow_estimate(net.pipe_count(), 0.0);
  std::vector<bool> pipe_sensed(net.pipe_count(), false);
  for (const auto& node : nodes) {
    SensorSummary s;
    s.index = node->index();
    s.pipe = node->placement().pipe;
    if (const auto& st = node->last_self_test()) {
      s.self_tested = true;
      s.self_test_pass = st->pass;
      s.self_test_gain_error = st->gain_error;
    }
    const auto& trace = node->trace();
    s.samples = trace.size();
    double sum = 0.0, sum_sq_err = 0.0;
    for (const TraceSample& sample : trace) {
      sum += sample.estimate_mps;
      const double err = sample.estimate_mps - sample.true_mean_mps;
      sum_sq_err += err * err;
    }
    if (!trace.empty()) {
      s.mean_estimate_mps = sum / static_cast<double>(trace.size());
      s.rms_error_mps =
          std::sqrt(sum_sq_err / static_cast<double>(trace.size()));
      s.final_estimate_mps = trace.back().estimate_mps;
      s.final_true_mps = trace.back().true_mean_mps;
    }
    report.sensors.push_back(s);

    const double d = net.pipe_diameter(s.pipe).value();
    pipe_flow_estimate[s.pipe] = s.final_estimate_mps * kPi * 0.25 * d * d;
    pipe_sensed[s.pipe] = true;
  }

  // Junction mass balances from the sensed flows.
  for (hydro::WaterNetwork::NodeId n = 0; n < net.node_count(); ++n) {
    if (net.node_is_reservoir(n)) continue;
    JunctionBalance balance;
    balance.node = n;
    balance.fully_observed = true;
    double net_inflow = 0.0;
    for (hydro::WaterNetwork::PipeId p = 0; p < net.pipe_count(); ++p) {
      const bool incoming = net.pipe_to(p) == n;
      const bool outgoing = net.pipe_from(p) == n;
      if (!incoming && !outgoing) continue;
      if (!net.pipe_open(p)) continue;
      if (!pipe_sensed[p]) {
        balance.fully_observed = false;
        continue;
      }
      net_inflow += incoming ? pipe_flow_estimate[p] : -pipe_flow_estimate[p];
    }
    balance.residual_m3s = net_inflow - net.node_demand(n);
    report.balances.push_back(balance);
    report.total_demand_m3s += net.node_demand(n);
    report.total_leak_m3s += net.leak_flow(n);
  }
  return report;
}

}  // namespace aqua::fleet
