// report.hpp — fleet-level aggregation: per-sensor accuracy vs the network
// ground truth, and per-junction mass-balance residuals. The residual is the
// fleet's leak signal (paper §6): at a healthy junction the sensed inflow
// minus sensed outflow matches the billed demand; a leak shows up as a
// positive unexplained residual approximately equal to the escaping flow.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "fleet/sensor_node.hpp"
#include "hydro/network.hpp"

namespace aqua::fleet {

struct SensorSummary {
  std::size_t index = 0;
  hydro::WaterNetwork::PipeId pipe = 0;
  std::size_t samples = 0;
  double final_estimate_mps = 0.0;
  double mean_estimate_mps = 0.0;
  double rms_error_mps = 0.0;  ///< estimate − truth, rms over the trace
  double final_true_mps = 0.0;
  // Built-in self-test (ISIF test bus), from the most recent commission or
  // re-commission of this node. `self_tested` is false if none ran.
  bool self_tested = false;
  bool self_test_pass = false;
  double self_test_gain_error = 0.0;
};

/// Mass-balance residual at one junction: sensed inflow − sensed outflow −
/// billed demand (m³/s).
struct JunctionBalance {
  hydro::WaterNetwork::NodeId node = 0;
  double residual_m3s = 0.0;
  bool fully_observed = false;  ///< every open incident pipe carries a sensor
};

struct FleetReport {
  std::vector<SensorSummary> sensors;
  std::vector<JunctionBalance> balances;
  double sim_time_s = 0.0;
  double total_demand_m3s = 0.0;  ///< current (pattern-scaled) network demand
  double total_leak_m3s = 0.0;    ///< model ground truth, for validation

  /// Junctions ranked as leak suspects: fully observed ones first, then by
  /// |residual| descending.
  [[nodiscard]] std::vector<JunctionBalance> ranked_suspects() const;
};

/// Aggregates the report from the network's current solution and the nodes'
/// traces (nodes in sensor order).
[[nodiscard]] FleetReport build_report(
    const hydro::WaterNetwork& net,
    std::span<const std::unique_ptr<SensorNode>> nodes, double sim_time_s);

}  // namespace aqua::fleet
