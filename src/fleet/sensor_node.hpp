// sensor_node.hpp — one deployed insertion sensor of a monitoring fleet
// (paper §6: cheap MAF probes "widely diffused all over the water
// distribution channels"). A SensorNode owns *every* piece of mutable state
// it touches — its MAF die, ISIF channel, CTA loop, King fit, fouling state,
// per-sensor turbulence and its own counter-based RNG stream — so a fleet of
// nodes can be stepped on any number of threads with bit-identical results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/calibration.hpp"
#include "core/cta.hpp"
#include "core/estimator.hpp"
#include "hydro/network.hpp"
#include "isif/selftest.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::fleet {

/// Where and how a sensor is inserted into the network.
struct SensorPlacement {
  hydro::WaterNetwork::PipeId pipe = 0;
  /// Probe head position as a fraction of the pipe radius (0 = axis).
  double radius_fraction = 0.0;
};

/// Hydraulic state of one pipe over one co-simulation epoch, as handed to the
/// sensor attached to it (profile-corrected to the probe point by the engine).
struct PipeState {
  double mean_velocity_mps = 0.0;   ///< signed area-mean — the ground truth
  double point_velocity_mps = 0.0;  ///< at the probe head, before turbulence
  util::Pascals pressure = util::bar(2.0);
  util::Kelvin temperature = util::celsius(15.0);
};

/// One trace sample per co-simulation epoch. The determinism tests compare
/// these fields bit-exactly across thread counts.
struct TraceSample {
  double t_s = 0.0;
  double bridge_voltage = 0.0;    ///< commanded supply U, V
  double filtered_voltage = 0.0;  ///< U after the 0.1 Hz output IIR, V
  double estimate_mps = 0.0;      ///< signed mean-velocity estimate
  double true_mean_mps = 0.0;     ///< network ground truth at the epoch
  int direction = 0;              ///< −1 / 0 / +1
};

/// Template configuration shared by every node of a fleet (placement and RNG
/// stream are per-node).
struct SensorNodeConfig {
  maf::MafSpec maf{};
  isif::IsifConfig isif{};
  cta::CtaConfig cta{};
  /// Relative rms of the per-sensor turbulent fluctuation on the point
  /// velocity, and its AR(1) correlation time.
  double turbulence_intensity = 0.01;
  util::Seconds turbulence_correlation{0.05};
  util::MetresPerSecond full_scale = util::metres_per_second(2.5);
};

class SensorNode {
 public:
  /// `rng` must be this node's private stream (util::Rng::stream(root, index));
  /// the node derives all its stochastic draws from it.
  SensorNode(std::size_t index, SensorPlacement placement,
             const SensorNodeConfig& config, util::Metres pipe_diameter,
             util::Rng rng);

  SensorNode(const SensorNode&) = delete;
  SensorNode& operator=(const SensorNode&) = delete;

  /// Settles the loop at zero flow under the pipe's ambient and nulls the
  /// direction channel.
  void commission(const PipeState& state, util::Seconds settle);

  /// Runs the ISIF built-in self-test (paper §3's test bus: sine IP through
  /// the conversion chain into a Goertzel detector) on the measurement
  /// channel and stores the result for reporting. The helper resets the
  /// channel before and after the tone, and channel reset rewinds its noise
  /// streams (DESIGN.md §8), so on a freshly constructed, reset or rebooted
  /// node the downstream bitstream — and the fleet determinism checksum — is
  /// untouched.
  isif::ChannelSelfTestResult run_self_test(
      const isif::ChannelSelfTest& config = {});

  /// Result of the most recent run_self_test(), if any ran since the last
  /// reset().
  [[nodiscard]] const std::optional<isif::ChannelSelfTestResult>&
  last_self_test() const {
    return last_self_test_;
  }

  /// Field reboot: restarts the electronics only (CtaAnemometer::reboot).
  /// Die/package physics, the turbulence state (the flow does not reboot),
  /// the trace, the calibration fit and this node's RNG stream position all
  /// persist — the world does not rewind with the node.
  void reboot();

  /// King's-law sweep: holds each *mean* speed (profile factor folded in, as
  /// in the field calibration against a reference meter) for `dwell` and fits
  /// the law. Installs a FlowEstimator compensated to the pipe ambient.
  void calibrate(const PipeState& state, std::span<const double> mean_speeds,
                 util::Seconds dwell);

  /// Installs a pre-computed fit instead of sweeping (fleet-wide nominal
  /// calibration; cheap, but ignores this die's tolerances).
  void set_fit(const cta::KingFit& fit, util::Kelvin fit_temperature);

  /// Advances the CTA loop by `duration` under `state` (with this node's own
  /// turbulence stream superposed), then appends one trace sample.
  void advance(const PipeState& state, util::Seconds duration);

  /// Advances every node by `duration` through the cross-sensor SIMD lanes
  /// (simd::CtaFrameBatch): per decimation frame, each node draws its own
  /// turbulence block from its private stream, all dies relax through one
  /// batched thermal sweep, and all channels run W-wide through the fused
  /// chain. Every node must be batch_eligible() and share the scalar path's
  /// structural config; spans must be equally sized. Nodes' RNG streams are
  /// consumed exactly as under scalar advance(), so mixing grouped and
  /// per-node stepping across epochs never perturbs a neighbour's draws.
  static void advance_group(std::span<SensorNode* const> nodes,
                            std::span<const PipeState> states,
                            util::Seconds duration, int lane_width = 0);

  /// A node can join a batch group only while its loop is frame-aligned.
  /// Commissioning can park the loop mid-frame; such a node permanently
  /// advances through the scalar path (tick_phase is invariant modulo the
  /// decimation), which is exactly what the scalar fallback rules in
  /// DESIGN.md §13 specify.
  [[nodiscard]] bool batch_eligible() const {
    return anemometer_.tick_phase() == 0;
  }

  /// Post-construction state: anemometer reset, turbulence zeroed, trace
  /// cleared, this node's RNG stream rewound — so the same stimulus replays
  /// bit-identically. An installed calibration fit is configuration and kept.
  void reset();

  [[nodiscard]] std::size_t index() const { return index_; }
  [[nodiscard]] const SensorPlacement& placement() const { return placement_; }
  [[nodiscard]] const std::vector<TraceSample>& trace() const { return trace_; }
  /// Latest trace sample, or nullopt before the first epoch.
  [[nodiscard]] std::optional<TraceSample> latest_sample() const {
    if (trace_.empty()) return std::nullopt;
    return trace_.back();
  }
  [[nodiscard]] bool calibrated() const { return estimator_.has_value(); }
  [[nodiscard]] const cta::KingFit& fit() const { return estimator_->fit(); }
  [[nodiscard]] cta::CtaAnemometer& anemometer() { return anemometer_; }
  [[nodiscard]] const cta::CtaAnemometer& anemometer() const {
    return anemometer_;
  }

  /// Point/mean profile factor at the given mean speed in this node's pipe.
  [[nodiscard]] double profile_factor_at(double mean_mps,
                                         util::Kelvin temperature) const;

  /// Fingerprint of this node's RNG stream position (util::Rng::fingerprint).
  /// Two runs that consumed the same draws in the same order agree here; the
  /// scaling tests use it to prove shard plans never alter RNG consumption.
  [[nodiscard]] std::uint64_t rng_fingerprint() const {
    return rng_.fingerprint();
  }

  /// Checkpoint support: the node's RNG stream, the whole CTA loop, the
  /// installed estimator/self-test result, the turbulence AR(1) state and
  /// the FULL trace — the fleet trace checksum folds every sample, so resume
  /// must reproduce the entire history, not just the tail.
  void save_state(state::Writer& w) const;
  void load_state(state::Reader& r);

 private:
  /// Environment at the probe head: point velocity + AR(1) turbulence.
  [[nodiscard]] maf::Environment environment_for(const PipeState& state) const;

  /// Mean bridge voltage over the trailing 40% of a dwell at a fixed
  /// environment (mirrors VinciRig::settled_voltage).
  [[nodiscard]] double settled_voltage(const maf::Environment& env,
                                       util::Seconds dwell);

  /// Epoch bookkeeping shared by advance() and advance_group(): reads the
  /// loop's outputs and appends one TraceSample for `state`.
  void append_trace_sample(const PipeState& state);

  std::size_t index_;
  SensorPlacement placement_;
  SensorNodeConfig config_;
  util::Metres pipe_diameter_;
  util::Rng rng_;  // declared before anemometer_: construction order matters
  cta::CtaAnemometer anemometer_;
  // Captures rng_ *after* the anemometer split above, for reset() rewind.
  util::Rng initial_rng_;
  std::optional<cta::FlowEstimator> estimator_;
  std::optional<isif::ChannelSelfTestResult> last_self_test_;
  double turbulence_state_ = 0.0;
  std::vector<TraceSample> trace_;
};

}  // namespace aqua::fleet
