#include "fleet/supervisor.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace aqua::fleet {

namespace {
// Supervision telemetry. All observations are driven by simulation state, so
// the counters are as deterministic as the traces themselves.
const obs::Counter kQuarantines{"fleet.supervisor.quarantines"};
const obs::Counter kRecoveries{"fleet.supervisor.recoveries"};
const obs::Counter kFailures{"fleet.supervisor.failures"};
const obs::Counter kRecommissions{"fleet.supervisor.recommission_attempts"};
const obs::Counter kSelfTestFailures{"fleet.supervisor.self_test_failures"};
// Epochs from the first faulty assessment of a streak to quarantine entry.
const obs::Histogram kDetectionEpochs{"fleet.supervisor.detection_epochs",
                                      obs::HistogramSpec{1.0, 64.0, 12, true}};

/// Faults that no amount of clean readings should talk the supervisor out of:
/// a broken membrane and a corroded package are physical damage, and a
/// tripped watchdog latches until reboot.
bool is_hard_fault(const std::vector<cta::FaultCode>& faults) {
  for (const cta::FaultCode code : faults) {
    if (code == cta::FaultCode::kMembraneBroken ||
        code == cta::FaultCode::kPackageDegraded ||
        code == cta::FaultCode::kWatchdog)
      return true;
  }
  return false;
}
}  // namespace

const char* node_health_state_name(NodeHealthState state) {
  switch (state) {
    case NodeHealthState::kHealthy: return "healthy";
    case NodeHealthState::kSuspect: return "suspect";
    case NodeHealthState::kQuarantined: return "quarantined";
    case NodeHealthState::kProbation: return "probation";
    case NodeHealthState::kFailed: return "failed";
  }
  return "unknown";
}

FleetSupervisor::FleetSupervisor(FleetEngine& engine,
                                 const SupervisorConfig& config)
    : engine_(engine), config_(config), nodes_(engine.size()) {
  if (config.suspect_epochs < 1 || config.probation_epochs < 1 ||
      config.backoff_initial_epochs < 1 ||
      config.backoff_max_epochs < config.backoff_initial_epochs ||
      config.max_recommission_attempts < 1)
    throw std::invalid_argument("FleetSupervisor: bad configuration");
  monitors_.reserve(engine.size());
  for (std::size_t i = 0; i < engine.size(); ++i) {
    monitors_.emplace_back(config.health);
    nodes_[i].backoff_next = config.backoff_initial_epochs;
  }
}

std::size_t FleetSupervisor::count_in(NodeHealthState state) const {
  std::size_t n = 0;
  for (const NodeSupervision& sup : nodes_)
    if (sup.state == state) ++n;
  return n;
}

std::size_t FleetSupervisor::in_service_count() const {
  return count_in(NodeHealthState::kHealthy) +
         count_in(NodeHealthState::kSuspect);
}

void FleetSupervisor::enter_quarantine(std::size_t i, NodeSupervision& sup) {
  // A probation relapse is a failed recovery attempt: the next wait doubles
  // (capped), the classic backoff against flapping on a persistent fault.
  if (sup.state == NodeHealthState::kProbation)
    sup.backoff_next =
        std::min(sup.backoff_next * 2, config_.backoff_max_epochs);
  sup.state = NodeHealthState::kQuarantined;
  sup.backoff_remaining = sup.backoff_next;
  sup.quarantined_epoch = polls_;
  sup.quarantined_t_s = engine_.now().value();
  ++sup.quarantine_entries;
  ++stats_.quarantines;
  kQuarantines.add(1);
  const double latency_epochs =
      sup.first_fault_epoch >= 0
          ? static_cast<double>(polls_ - sup.first_fault_epoch + 1)
          : 1.0;
  kDetectionEpochs.observe(latency_epochs);
  sup.faulty_streak = 0;
  sup.clean_streak = 0;
  engine_.set_estimate_valid(i, false);
  AQUA_TRACE_INSTANT_SIM("fleet.quarantine", engine_.now().value());
  util::log_warn() << "supervisor: sensor " << i << " quarantined at t="
                   << engine_.now().value() << " s ("
                   << (sup.last_faults.empty()
                           ? "no code"
                           : cta::fault_label(sup.last_faults.front()))
                   << "), backoff " << sup.backoff_remaining << " epochs";
}

void FleetSupervisor::attempt_recommission(std::size_t i,
                                           NodeSupervision& sup) {
  if (sup.recommission_attempts >= config_.max_recommission_attempts) {
    sup.state = NodeHealthState::kFailed;
    ++stats_.failures;
    kFailures.add(1);
    AQUA_TRACE_INSTANT_SIM("fleet.sensor_failed", engine_.now().value());
    util::log_warn() << "supervisor: sensor " << i
                     << " permanently failed after "
                     << sup.recommission_attempts << " re-commission attempts";
    return;
  }
  ++sup.recommission_attempts;
  ++stats_.recommission_attempts;
  kRecommissions.add(1);
  AQUA_TRACE_SPAN_SIM("fleet.recommission_attempt", engine_.now().value());

  const isif::ChannelSelfTestResult self_test =
      engine_.recommission(i, config_.recommission_settle);
  monitors_[i].reset();  // the post-reboot loop starts a fresh history
  if (config_.require_self_test_pass && !self_test.pass) {
    ++stats_.self_test_failures;
    kSelfTestFailures.add(1);
    sup.backoff_next =
        std::min(sup.backoff_next * 2, config_.backoff_max_epochs);
    sup.backoff_remaining = sup.backoff_next;
    return;  // still quarantined; wait out the doubled backoff
  }
  sup.state = NodeHealthState::kProbation;
  sup.clean_streak = 0;
}

void FleetSupervisor::save_state(state::Writer& w) const {
  w.size(nodes_.size());
  for (const NodeSupervision& sup : nodes_) {
    w.u8(static_cast<std::uint8_t>(sup.state));
    w.i32(sup.faulty_streak);
    w.i32(sup.clean_streak);
    w.i32(sup.backoff_remaining);
    w.i32(sup.backoff_next);
    w.i32(sup.recommission_attempts);
    w.i32(sup.quarantine_entries);
    w.i32(sup.recoveries);
    w.i64(sup.first_fault_epoch);
    w.i64(sup.quarantined_epoch);
    w.f64(sup.quarantined_t_s);
    w.f64(sup.recovered_t_s);
    w.size(sup.last_faults.size());
    for (const cta::FaultCode code : sup.last_faults)
      w.i32(static_cast<std::int32_t>(code));
  }
  for (const cta::HealthMonitor& monitor : monitors_)
    monitor.save_state(w);
  w.i64(stats_.quarantines);
  w.i64(stats_.recoveries);
  w.i64(stats_.failures);
  w.i64(stats_.recommission_attempts);
  w.i64(stats_.self_test_failures);
  w.i64(polls_);
}

void FleetSupervisor::load_state(state::Reader& r) {
  if (r.size(46) != nodes_.size())
    throw state::Error("FleetSupervisor: node count mismatch");
  for (NodeSupervision& sup : nodes_) {
    const std::uint8_t st = r.u8();
    if (st > static_cast<std::uint8_t>(NodeHealthState::kFailed))
      throw state::Error("FleetSupervisor: bad node health state");
    sup.state = static_cast<NodeHealthState>(st);
    sup.faulty_streak = r.i32();
    sup.clean_streak = r.i32();
    sup.backoff_remaining = r.i32();
    sup.backoff_next = r.i32();
    sup.recommission_attempts = r.i32();
    sup.quarantine_entries = r.i32();
    sup.recoveries = r.i32();
    sup.first_fault_epoch = r.i64();
    sup.quarantined_epoch = r.i64();
    sup.quarantined_t_s = r.f64();
    sup.recovered_t_s = r.f64();
    sup.last_faults.resize(r.size(4));
    for (cta::FaultCode& code : sup.last_faults)
      code = static_cast<cta::FaultCode>(r.i32());
  }
  for (cta::HealthMonitor& monitor : monitors_) monitor.load_state(r);
  stats_.quarantines = r.i64();
  stats_.recoveries = r.i64();
  stats_.failures = r.i64();
  stats_.recommission_attempts = r.i64();
  stats_.self_test_failures = r.i64();
  polls_ = r.i64();
}

void FleetSupervisor::poll() {
  ++polls_;
  for (std::size_t i = 0; i < engine_.size(); ++i) {
    NodeSupervision& sup = nodes_[i];
    switch (sup.state) {
      case NodeHealthState::kFailed:
        continue;
      case NodeHealthState::kQuarantined:
        if (--sup.backoff_remaining <= 0) attempt_recommission(i, sup);
        continue;
      default:
        break;
    }

    // SoA view: a fleet-wide poll streams the engine's hot arrays instead of
    // dereferencing every node's trace vector (same fields, same values).
    const std::optional<TraceSample> sample = engine_.latest_sample_view(i);
    if (!sample) continue;  // no epoch has run yet
    const cta::FlowReading reading{
        util::metres_per_second(sample->estimate_mps), sample->direction,
        sample->filtered_voltage};
    const std::vector<cta::FaultCode> faults = monitors_[i].assess(
        engine_.node(i).anemometer(), reading, engine_.config().epoch);

    if (!faults.empty()) {
      if (sup.faulty_streak == 0) sup.first_fault_epoch = polls_;
      ++sup.faulty_streak;
      sup.last_faults = faults;
      if (sup.state == NodeHealthState::kProbation || is_hard_fault(faults) ||
          sup.faulty_streak >= config_.suspect_epochs) {
        enter_quarantine(i, sup);
      } else {
        sup.state = NodeHealthState::kSuspect;
      }
      continue;
    }

    // Clean poll.
    sup.faulty_streak = 0;
    sup.first_fault_epoch = -1;
    if (sup.state == NodeHealthState::kSuspect) {
      sup.state = NodeHealthState::kHealthy;
    } else if (sup.state == NodeHealthState::kProbation) {
      if (++sup.clean_streak >= config_.probation_epochs) {
        sup.state = NodeHealthState::kHealthy;
        sup.clean_streak = 0;
        sup.recovered_t_s = engine_.now().value();
        sup.backoff_next = config_.backoff_initial_epochs;
        sup.recommission_attempts = 0;
        ++sup.recoveries;
        ++stats_.recoveries;
        kRecoveries.add(1);
        engine_.set_estimate_valid(i, true);
        AQUA_TRACE_INSTANT_SIM("fleet.recovered", engine_.now().value());
      }
    }
  }
}

}  // namespace aqua::fleet
