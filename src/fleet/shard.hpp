// shard.hpp — cost-balanced sensor sharding for the fleet epoch loop.
//
// A fleet epoch is embarrassingly parallel across sensors, but per-sensor
// step cost is not uniform: the observed per-step wall times spread ~20×
// (fouled dies iterate their thermal solve harder, saturated loops run extra
// PI work). Equal-count shards therefore load-balance badly — the epoch ends
// when the unluckiest shard does. This module partitions sensor indices into
// shards whose *predicted* costs are as equal as the classic LPT greedy gets
// them (longest processing time first: sort by cost descending, always assign
// to the currently lightest shard — a 4/3-approximation of the optimum).
//
// Costs are wall-clock measurements, so the resulting partition is
// scheduling-dependent and explicitly OUTSIDE the determinism contract; what
// the contract demands — and tests/fleet/test_scaling.cpp proves — is that
// the simulation output is bit-identical under EVERY partition, because each
// sensor owns its state and RNG stream. Planning itself is a deterministic
// function of (costs, shard_count): ties break on the lower sensor index and
// the lower shard index, so equal inputs give equal plans on any platform.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace aqua::fleet {

/// A partition of sensor indices [0, n) into shards. Shard s lists its
/// sensors in ascending index order (the epoch loop streams them forward
/// through the engine's structure-of-arrays hot state).
struct ShardPlan {
  std::vector<std::vector<std::uint32_t>> shards;

  [[nodiscard]] std::size_t shard_count() const { return shards.size(); }
  [[nodiscard]] std::size_t sensor_count() const;
  /// True when the plan covers each index in [0, n) exactly once.
  [[nodiscard]] bool is_partition_of(std::size_t n) const;
};

/// LPT cost-balanced partition of `costs.size()` sensors into `shard_count`
/// shards (empty shards are legal when sensors < shards). `shard_count` == 0
/// is promoted to 1. Deterministic for equal inputs.
[[nodiscard]] ShardPlan plan_shards(std::span<const double> costs,
                                    std::size_t shard_count);

/// Predicted cost of each shard under the given per-sensor costs.
[[nodiscard]] std::vector<double> shard_costs(const ShardPlan& plan,
                                              std::span<const double> costs);

/// Load-balance quality: max shard cost over mean shard cost (>= 1.0; 1.0 is
/// a perfect split). Returns 1.0 for degenerate inputs (no shards, zero total
/// cost) so callers can feed it straight into a histogram.
[[nodiscard]] double shard_imbalance(const ShardPlan& plan,
                                     std::span<const double> costs);

}  // namespace aqua::fleet
