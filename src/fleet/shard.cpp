#include "fleet/shard.hpp"

#include <algorithm>
#include <numeric>

namespace aqua::fleet {

std::size_t ShardPlan::sensor_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards) n += shard.size();
  return n;
}

bool ShardPlan::is_partition_of(std::size_t n) const {
  std::vector<std::uint8_t> seen(n, 0);
  for (const auto& shard : shards)
    for (const std::uint32_t i : shard) {
      if (i >= n || seen[i]) return false;
      seen[i] = 1;
    }
  return sensor_count() == n;
}

ShardPlan plan_shards(std::span<const double> costs, std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  ShardPlan plan;
  plan.shards.resize(shard_count);

  // LPT: heaviest sensors first, ties broken by ascending index so the plan
  // is a pure function of its inputs.
  std::vector<std::uint32_t> order(costs.size());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&costs](std::uint32_t a, std::uint32_t b) {
              if (costs[a] != costs[b]) return costs[a] > costs[b];
              return a < b;
            });

  // Always drop the next sensor into the lightest shard (lowest index wins a
  // tie). A linear argmin beats a heap here: shard counts are thread counts.
  std::vector<double> load(shard_count, 0.0);
  for (const std::uint32_t sensor : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < shard_count; ++s)
      if (load[s] < load[lightest]) lightest = s;
    plan.shards[lightest].push_back(sensor);
    load[lightest] += std::max(costs[sensor], 0.0);
  }
  for (auto& shard : plan.shards) std::sort(shard.begin(), shard.end());
  return plan;
}

std::vector<double> shard_costs(const ShardPlan& plan,
                                std::span<const double> costs) {
  std::vector<double> totals(plan.shards.size(), 0.0);
  for (std::size_t s = 0; s < plan.shards.size(); ++s)
    for (const std::uint32_t i : plan.shards[s])
      if (i < costs.size()) totals[s] += std::max(costs[i], 0.0);
  return totals;
}

double shard_imbalance(const ShardPlan& plan, std::span<const double> costs) {
  const std::vector<double> totals = shard_costs(plan, costs);
  if (totals.empty()) return 1.0;
  double sum = 0.0, max = 0.0;
  for (const double t : totals) {
    sum += t;
    max = std::max(max, t);
  }
  const double mean = sum / static_cast<double>(totals.size());
  return mean > 0.0 ? max / mean : 1.0;
}

}  // namespace aqua::fleet
