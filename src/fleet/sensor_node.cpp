#include "fleet/sensor_node.hpp"

#include <cmath>
#include <stdexcept>

#include "hydro/profiles.hpp"
#include "phys/fluid.hpp"
#include "simd/cta_batch.hpp"
#include "state/rng_io.hpp"

namespace aqua::fleet {

using util::Seconds;

SensorNode::SensorNode(std::size_t index, SensorPlacement placement,
                       const SensorNodeConfig& config,
                       util::Metres pipe_diameter, util::Rng rng)
    : index_(index),
      placement_(placement),
      config_(config),
      pipe_diameter_(pipe_diameter),
      rng_(rng),
      anemometer_(config.maf, config.isif, config.cta, rng_.split()),
      initial_rng_(rng_) {}

void SensorNode::reset() {
  anemometer_.reset();
  turbulence_state_ = 0.0;
  trace_.clear();
  last_self_test_.reset();
  rng_ = initial_rng_;
}

void SensorNode::reboot() { anemometer_.reboot(); }

isif::ChannelSelfTestResult SensorNode::run_self_test(
    const isif::ChannelSelfTest& config) {
  last_self_test_ =
      isif::run_channel_self_test(anemometer_.platform().channel(0), config);
  return *last_self_test_;
}

double SensorNode::profile_factor_at(double mean_mps,
                                     util::Kelvin temperature) const {
  const auto props = phys::water_properties(temperature);
  const double re = hydro::pipe_reynolds(
      props, util::metres_per_second(std::abs(mean_mps)), pipe_diameter_);
  return hydro::profile_factor(re, placement_.radius_fraction);
}

maf::Environment SensorNode::environment_for(const PipeState& state) const {
  maf::Environment env;
  env.speed = util::metres_per_second(
      state.point_velocity_mps *
      (1.0 + config_.turbulence_intensity * turbulence_state_));
  env.fluid_temperature = state.temperature;
  env.pressure = state.pressure;
  return env;
}

void SensorNode::commission(const PipeState& state, Seconds settle) {
  PipeState still = state;
  still.mean_velocity_mps = 0.0;
  still.point_velocity_mps = 0.0;
  anemometer_.commission(environment_for(still), settle);
}

double SensorNode::settled_voltage(const maf::Environment& env,
                                   Seconds dwell) {
  const Seconds tick = anemometer_.tick_period();
  const long long n =
      static_cast<long long>(std::ceil(dwell.value() / tick.value()));
  const long long tail_start = n - static_cast<long long>(0.4 * n);
  double acc = 0.0;
  long long count = 0;
  for (long long i = 0; i < n; ++i) {
    anemometer_.tick(env);
    if (i >= tail_start) {
      acc += anemometer_.bridge_voltage();
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

void SensorNode::calibrate(const PipeState& state,
                           std::span<const double> mean_speeds,
                           Seconds dwell) {
  std::vector<cta::CalPoint> points;
  points.reserve(mean_speeds.size());
  for (double mean : mean_speeds) {
    // Clean sweep (turbulence off), the probe immersed in the point velocity;
    // calibrating against the mean speed absorbs the profile factor.
    maf::Environment env;
    env.speed = util::metres_per_second(
        mean * profile_factor_at(mean, state.temperature));
    env.fluid_temperature = state.temperature;
    env.pressure = state.pressure;
    points.push_back(cta::CalPoint{mean, settled_voltage(env, dwell)});
  }
  estimator_.emplace(cta::fit_kings_law(points), config_.full_scale,
                     state.temperature);
}

void SensorNode::set_fit(const cta::KingFit& fit, util::Kelvin fit_temperature) {
  estimator_.emplace(fit, config_.full_scale, fit_temperature);
}

void SensorNode::advance(const PipeState& state, Seconds duration) {
  const int ticks_per_block = config_.isif.channel.decimation;
  const Seconds tc{ticks_per_block /
                   config_.isif.channel.modulator_clock.value()};
  const long long blocks =
      static_cast<long long>(std::ceil(duration.value() / tc.value()));
  // AR(1) turbulence refreshed at the control rate, like the station line.
  const double a =
      std::exp(-tc.value() / config_.turbulence_correlation.value());
  const double b = std::sqrt(std::max(0.0, 1.0 - a * a));
  for (long long blk = 0; blk < blocks; ++blk) {
    turbulence_state_ = a * turbulence_state_ + b * rng_.gaussian();
    const maf::Environment env = environment_for(state);
    // One turbulence block == one decimation frame, so the whole inner loop
    // runs through the block path (bit-identical to ticks_per_block scalar
    // ticks; the anemometer owns the reusable frame scratch). Commissioning
    // can leave the loop mid-frame, so realign with scalar ticks first.
    if (anemometer_.tick_phase() == 0) {
      anemometer_.tick_frame(env);
    } else {
      for (int i = 0; i < ticks_per_block; ++i) anemometer_.tick(env);
    }
  }

  append_trace_sample(state);
}

void SensorNode::append_trace_sample(const PipeState& state) {
  TraceSample sample;
  sample.t_s = anemometer_.now().value();
  sample.bridge_voltage = anemometer_.bridge_voltage();
  sample.filtered_voltage = anemometer_.filtered_voltage();
  sample.true_mean_mps = state.mean_velocity_mps;
  if (estimator_) {
    const cta::FlowReading reading = estimator_->read(anemometer_);
    sample.estimate_mps = reading.speed.value();
    sample.direction = reading.direction;
  } else {
    sample.direction = anemometer_.direction();
  }
  trace_.push_back(sample);
}

void SensorNode::save_state(state::Writer& w) const {
  state::save_rng(w, rng_);
  anemometer_.save_state(w);
  w.boolean(estimator_.has_value());
  if (estimator_) estimator_->save_state(w);
  w.boolean(last_self_test_.has_value());
  if (last_self_test_) {
    w.f64(last_self_test_->measured_gain);
    w.f64(last_self_test_->gain_error);
    w.boolean(last_self_test_->pass);
  }
  w.f64(turbulence_state_);
  w.size(trace_.size());
  for (const TraceSample& s : trace_) {
    w.f64(s.t_s);
    w.f64(s.bridge_voltage);
    w.f64(s.filtered_voltage);
    w.f64(s.estimate_mps);
    w.f64(s.true_mean_mps);
    w.i32(s.direction);
  }
}

void SensorNode::load_state(state::Reader& r) {
  state::load_rng(r, rng_);
  anemometer_.load_state(r);
  if (r.boolean()) {
    estimator_ = cta::FlowEstimator::load_state(r);
  } else {
    estimator_.reset();
  }
  if (r.boolean()) {
    isif::ChannelSelfTestResult result;
    result.measured_gain = r.f64();
    result.gain_error = r.f64();
    result.pass = r.boolean();
    last_self_test_ = result;
  } else {
    last_self_test_.reset();
  }
  turbulence_state_ = r.f64();
  trace_.resize(r.size(44));
  for (TraceSample& s : trace_) {
    s.t_s = r.f64();
    s.bridge_voltage = r.f64();
    s.filtered_voltage = r.f64();
    s.estimate_mps = r.f64();
    s.true_mean_mps = r.f64();
    s.direction = r.i32();
  }
}

void SensorNode::advance_group(std::span<SensorNode* const> nodes,
                               std::span<const PipeState> states,
                               Seconds duration, int lane_width) {
  if (nodes.size() != states.size())
    throw std::invalid_argument("advance_group: nodes/states size mismatch");
  if (nodes.empty()) return;
  const std::size_t n = nodes.size();

  // Block arithmetic matches advance() exactly; CtaFrameBatch rejects groups
  // whose loops disagree on tick period or decimation, so computing the block
  // count from the first node is safe.
  const int ticks_per_block = nodes[0]->config_.isif.channel.decimation;
  const Seconds tc{ticks_per_block /
                   nodes[0]->config_.isif.channel.modulator_clock.value()};
  const long long blocks =
      static_cast<long long>(std::ceil(duration.value() / tc.value()));

  thread_local std::vector<cta::CtaAnemometer*> loops;
  thread_local std::vector<maf::Environment> envs;
  thread_local std::vector<double> ar_a, ar_b;
  loops.clear();
  loops.reserve(n);
  for (SensorNode* node : nodes) loops.push_back(&node->anemometer_);
  envs.resize(n);
  ar_a.resize(n);
  ar_b.resize(n);
  for (std::size_t j = 0; j < n; ++j) {
    // Same expressions as advance(): per-node coefficients, in case nodes
    // were configured with different correlation times.
    ar_a[j] = std::exp(-tc.value() /
                       nodes[j]->config_.turbulence_correlation.value());
    ar_b[j] = std::sqrt(std::max(0.0, 1.0 - ar_a[j] * ar_a[j]));
  }

  for (long long blk = 0; blk < blocks; ++blk) {
    for (std::size_t j = 0; j < n; ++j) {
      SensorNode& node = *nodes[j];
      node.turbulence_state_ =
          ar_a[j] * node.turbulence_state_ + ar_b[j] * node.rng_.gaussian();
      envs[j] = node.environment_for(states[j]);
    }
    simd::CtaFrameBatch::process_frame(loops, envs, lane_width);
  }

  for (std::size_t j = 0; j < n; ++j)
    nodes[j]->append_trace_sample(states[j]);
}

}  // namespace aqua::fleet
