#include "fleet/sensor_node.hpp"

#include <cmath>

#include "hydro/profiles.hpp"
#include "phys/fluid.hpp"

namespace aqua::fleet {

using util::Seconds;

SensorNode::SensorNode(std::size_t index, SensorPlacement placement,
                       const SensorNodeConfig& config,
                       util::Metres pipe_diameter, util::Rng rng)
    : index_(index),
      placement_(placement),
      config_(config),
      pipe_diameter_(pipe_diameter),
      rng_(rng),
      anemometer_(config.maf, config.isif, config.cta, rng_.split()),
      initial_rng_(rng_) {}

void SensorNode::reset() {
  anemometer_.reset();
  turbulence_state_ = 0.0;
  trace_.clear();
  last_self_test_.reset();
  rng_ = initial_rng_;
}

void SensorNode::reboot() { anemometer_.reboot(); }

isif::ChannelSelfTestResult SensorNode::run_self_test(
    const isif::ChannelSelfTest& config) {
  last_self_test_ =
      isif::run_channel_self_test(anemometer_.platform().channel(0), config);
  return *last_self_test_;
}

double SensorNode::profile_factor_at(double mean_mps,
                                     util::Kelvin temperature) const {
  const auto props = phys::water_properties(temperature);
  const double re = hydro::pipe_reynolds(
      props, util::metres_per_second(std::abs(mean_mps)), pipe_diameter_);
  return hydro::profile_factor(re, placement_.radius_fraction);
}

maf::Environment SensorNode::environment_for(const PipeState& state) const {
  maf::Environment env;
  env.speed = util::metres_per_second(
      state.point_velocity_mps *
      (1.0 + config_.turbulence_intensity * turbulence_state_));
  env.fluid_temperature = state.temperature;
  env.pressure = state.pressure;
  return env;
}

void SensorNode::commission(const PipeState& state, Seconds settle) {
  PipeState still = state;
  still.mean_velocity_mps = 0.0;
  still.point_velocity_mps = 0.0;
  anemometer_.commission(environment_for(still), settle);
}

double SensorNode::settled_voltage(const maf::Environment& env,
                                   Seconds dwell) {
  const Seconds tick = anemometer_.tick_period();
  const long long n =
      static_cast<long long>(std::ceil(dwell.value() / tick.value()));
  const long long tail_start = n - static_cast<long long>(0.4 * n);
  double acc = 0.0;
  long long count = 0;
  for (long long i = 0; i < n; ++i) {
    anemometer_.tick(env);
    if (i >= tail_start) {
      acc += anemometer_.bridge_voltage();
      ++count;
    }
  }
  return count > 0 ? acc / static_cast<double>(count) : 0.0;
}

void SensorNode::calibrate(const PipeState& state,
                           std::span<const double> mean_speeds,
                           Seconds dwell) {
  std::vector<cta::CalPoint> points;
  points.reserve(mean_speeds.size());
  for (double mean : mean_speeds) {
    // Clean sweep (turbulence off), the probe immersed in the point velocity;
    // calibrating against the mean speed absorbs the profile factor.
    maf::Environment env;
    env.speed = util::metres_per_second(
        mean * profile_factor_at(mean, state.temperature));
    env.fluid_temperature = state.temperature;
    env.pressure = state.pressure;
    points.push_back(cta::CalPoint{mean, settled_voltage(env, dwell)});
  }
  estimator_.emplace(cta::fit_kings_law(points), config_.full_scale,
                     state.temperature);
}

void SensorNode::set_fit(const cta::KingFit& fit, util::Kelvin fit_temperature) {
  estimator_.emplace(fit, config_.full_scale, fit_temperature);
}

void SensorNode::advance(const PipeState& state, Seconds duration) {
  const int ticks_per_block = config_.isif.channel.decimation;
  const Seconds tc{ticks_per_block /
                   config_.isif.channel.modulator_clock.value()};
  const long long blocks =
      static_cast<long long>(std::ceil(duration.value() / tc.value()));
  // AR(1) turbulence refreshed at the control rate, like the station line.
  const double a =
      std::exp(-tc.value() / config_.turbulence_correlation.value());
  const double b = std::sqrt(std::max(0.0, 1.0 - a * a));
  for (long long blk = 0; blk < blocks; ++blk) {
    turbulence_state_ = a * turbulence_state_ + b * rng_.gaussian();
    const maf::Environment env = environment_for(state);
    // One turbulence block == one decimation frame, so the whole inner loop
    // runs through the block path (bit-identical to ticks_per_block scalar
    // ticks; the anemometer owns the reusable frame scratch). Commissioning
    // can leave the loop mid-frame, so realign with scalar ticks first.
    if (anemometer_.tick_phase() == 0) {
      anemometer_.tick_frame(env);
    } else {
      for (int i = 0; i < ticks_per_block; ++i) anemometer_.tick(env);
    }
  }

  TraceSample sample;
  sample.t_s = anemometer_.now().value();
  sample.bridge_voltage = anemometer_.bridge_voltage();
  sample.filtered_voltage = anemometer_.filtered_voltage();
  sample.true_mean_mps = state.mean_velocity_mps;
  if (estimator_) {
    const cta::FlowReading reading = estimator_->read(anemometer_);
    sample.estimate_mps = reading.speed.value();
    sample.direction = reading.direction;
  } else {
    sample.direction = anemometer_.direction();
  }
  trace_.push_back(sample);
}

}  // namespace aqua::fleet
