#include "fleet/fleet.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <exception>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phys/fluid.hpp"

namespace aqua::fleet {

using util::Seconds;

namespace {
constexpr double kGravity = 9.80665;

// Fleet-engine telemetry. The latency histograms record wall time — useful
// for scheduling analysis, explicitly outside the determinism contract (the
// counters and the simulation traces are the deterministic part).
const obs::Counter kEpochs{"fleet.epochs"};
const obs::Counter kSolveFailures{"fleet.solve_failures"};
const obs::Counter kSensorSteps{"fleet.sensor_steps"};
const obs::Histogram kEpochWall{"fleet.epoch_wall_seconds",
                                obs::HistogramSpec{1e-5, 100.0, 42, true}};
const obs::Histogram kSensorStepWall{"fleet.sensor_step_wall_seconds",
                                     obs::HistogramSpec{1e-6, 10.0, 42, true}};
// Sharding telemetry: how often the planner ran and how balanced its output
// was (max shard cost over mean — 1.0 is a perfect split).
const obs::Counter kRebalances{"fleet.shard.rebalances"};
const obs::Histogram kShardImbalance{"fleet.shard.imbalance",
                                     obs::HistogramSpec{1.0, 64.0, 24, true}};
const obs::Gauge kShardCount{"fleet.shard.count"};

// Checkpoint sections (DESIGN.md §14).
constexpr std::uint32_t kSectionMeta = state::section_id('M', 'E', 'T', 'A');
constexpr std::uint32_t kSectionObs = state::section_id('O', 'B', 'S', 'C');
constexpr std::uint32_t kSectionNet = state::section_id('N', 'E', 'T', 'W');
constexpr std::uint32_t kSectionEngine = state::section_id('F', 'L', 'E', 'N');
constexpr std::uint32_t kSectionNodes = state::section_id('N', 'O', 'D', 'S');

// The counters that are part of the deterministic surface (the fleet
// determinism suite compares them across thread counts); a resumed run must
// finish with the same totals as an uninterrupted one, so they travel in the
// checkpoint. Wall-clock histograms and scheduling counters stay out.
constexpr const char* kCheckpointedCounters[] = {
    "fleet.epochs",
    "fleet.solve_failures",
    "fleet.sensor_steps",
    "fleet.supervisor.quarantines",
    "fleet.supervisor.recoveries",
    "fleet.supervisor.failures",
    "fleet.supervisor.recommission_attempts",
    "fleet.supervisor.self_test_failures",
    "fault.injected",
    "isif.channel.samples",
    "isif.channel.overload_blocks",
    "cta.pi.saturation_events",
    "cta.pi.antiwindup_holds",
    "cta.loop.adc_overload_ticks",
};
}  // namespace

sim::Schedule diurnal_demand_pattern(Seconds day) {
  const double d = day.value();
  sim::Schedule pattern{0.3};
  pattern.hold(Seconds{0.25 * d})                  // night valley
      .ramp_to(1.6, Seconds{0.08 * d})             // morning peak
      .ramp_to(1.0, Seconds{0.10 * d})             // settle to daytime
      .hold(Seconds{0.25 * d})                     // daytime plateau
      .ramp_to(1.3, Seconds{0.10 * d})             // evening peak
      .hold(Seconds{0.12 * d})
      .ramp_to(0.3, Seconds{0.10 * d});            // back to night
  return pattern;
}

void FleetEngine::HotState::resize(std::size_t n) {
  mean_velocity_mps.assign(n, 0.0);
  point_velocity_mps.assign(n, 0.0);
  pressure_pa.assign(n, 0.0);
  temperature_k.assign(n, 0.0);
  t_s.assign(n, 0.0);
  bridge_voltage.assign(n, 0.0);
  filtered_voltage.assign(n, 0.0);
  estimate_mps.assign(n, 0.0);
  direction.assign(n, 0);
  has_sample.assign(n, 0);
  cost_ewma_s.assign(n, 0.0);
}

FleetEngine::FleetEngine(hydro::WaterNetwork& network,
                         std::span<const SensorPlacement> placements,
                         const FleetConfig& config)
    : net_(network), config_(config) {
  base_demands_.resize(net_.node_count(), 0.0);
  for (hydro::WaterNetwork::NodeId n = 0; n < net_.node_count(); ++n)
    base_demands_[n] = net_.node_demand(n);

  nodes_.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    nodes_.push_back(std::make_unique<SensorNode>(
        i, placements[i], config_.sensor, net_.pipe_diameter(placements[i].pipe),
        util::Rng::stream(config_.root_seed, i)));
  }
  estimate_valid_.assign(nodes_.size(), 1);
  hot_.resize(nodes_.size());

  apply_demand_factor(config_.demand_factor.at(Seconds{0.0}));
  if (!net_.solve(config_.water_temperature))
    throw std::runtime_error("FleetEngine: initial network solve failed");
}

FleetEngine::~FleetEngine() { end_team(); }

void FleetEngine::apply_demand_factor(double factor) {
  for (hydro::WaterNetwork::NodeId n = 0; n < net_.node_count(); ++n)
    if (!net_.node_is_reservoir(n))
      net_.set_demand(n, base_demands_[n] * factor);
}

PipeState FleetEngine::pipe_state_for(const SensorNode& node) const {
  const auto pipe = node.placement().pipe;
  PipeState state;
  state.temperature = config_.water_temperature;
  state.mean_velocity_mps = net_.pipe_velocity(pipe).value();
  state.point_velocity_mps =
      state.mean_velocity_mps *
      node.profile_factor_at(state.mean_velocity_mps, state.temperature);
  // Static pressure at the probe: the upstream node's pressure head (the
  // downstream end for a reservoir-fed pipe) on the atmospheric floor.
  auto tap = net_.pipe_from(pipe);
  if (net_.node_is_reservoir(tap)) tap = net_.pipe_to(pipe);
  const double head = net_.node_is_reservoir(tap)
                          ? 0.0
                          : std::max(0.0, net_.node_pressure_head(tap));
  const double rho = phys::water_properties(state.temperature).density;
  state.pressure =
      util::Pascals{config_.atmospheric.value() + rho * kGravity * head};
  return state;
}

void FleetEngine::dispatch(util::ThreadPool* pool,
                           const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(nodes_.size(), body);
  } else {
    for (std::size_t i = 0; i < nodes_.size(); ++i) body(i);
  }
}

void FleetEngine::commission(Seconds settle, util::ThreadPool* pool) {
  AQUA_TRACE_SPAN_SIM("fleet.commission", t_.value());
  std::vector<PipeState> states;
  states.reserve(nodes_.size());
  for (const auto& node : nodes_) states.push_back(pipe_state_for(*node));
  dispatch(pool, [&](std::size_t i) {
    // Power-up built-in self-test first (paper §3's test bus); the test
    // restores the channel bit-exactly, so the settle below is unaffected.
    (void)nodes_[i]->run_self_test();
    nodes_[i]->commission(states[i], settle);
  });
}

isif::ChannelSelfTestResult FleetEngine::recommission(std::size_t i,
                                                      Seconds settle) {
  AQUA_TRACE_SPAN_SIM("fleet.recommission", t_.value());
  nodes_[i]->reboot();
  const isif::ChannelSelfTestResult result = nodes_[i]->run_self_test();
  nodes_[i]->commission(pipe_state_for(*nodes_[i]), settle);
  return result;
}

void FleetEngine::calibrate(std::span<const double> mean_speeds, Seconds dwell,
                            util::ThreadPool* pool) {
  AQUA_TRACE_SPAN_SIM("fleet.calibrate", t_.value());
  std::vector<PipeState> states;
  states.reserve(nodes_.size());
  for (const auto& node : nodes_) states.push_back(pipe_state_for(*node));
  dispatch(pool, [&](std::size_t i) {
    nodes_[i]->calibrate(states[i], mean_speeds, dwell);
  });
}

void FleetEngine::set_shared_fit(const cta::KingFit& fit) {
  for (auto& node : nodes_) node->set_fit(fit, config_.water_temperature);
}

void FleetEngine::begin_team(util::ThreadPool* pool) {
  if (pool == nullptr) return;
  if (team_ != nullptr && team_pool_ == pool) return;
  end_team();
  const std::size_t n = pool->thread_count();
  // Worker w owns shards w, w+n, w+2n, … of whatever plan is current when an
  // epoch is released — so manual plans with more shards than workers still
  // execute completely.
  team_ = std::make_unique<util::WorkerTeam>(
      *pool, n, [this, n](std::size_t w) {
        for (std::size_t s = w; s < plan_.shard_count(); s += n)
          process_shard(s);
      });
  team_pool_ = pool;
}

void FleetEngine::end_team() {
  team_.reset();  // ~WorkerTeam releases and joins the parked tasks
  team_pool_ = nullptr;
}

void FleetEngine::run(Seconds duration, util::ThreadPool* pool) {
  const long long epochs = static_cast<long long>(
      std::ceil(duration.value() / config_.epoch.value()));
  // Persistent-team fast path: park one epoch task per worker for the whole
  // run. If the caller already scoped a TeamSession, reuse it.
  const bool own_team = pool != nullptr && team_ == nullptr;
  struct TeamGuard {
    FleetEngine* engine;
    ~TeamGuard() {
      if (engine != nullptr) engine->end_team();
    }
  } guard{own_team ? this : nullptr};
  if (own_team) begin_team(pool);
  for (long long e = 0; e < epochs; ++e) step_epoch(pool);
}

void FleetEngine::set_cost_hint(std::size_t i, double seconds) {
  hot_.cost_ewma_s[i] = seconds;
}

void FleetEngine::set_shard_plan(ShardPlan plan) {
  if (!plan.is_partition_of(nodes_.size()))
    throw std::invalid_argument(
        "FleetEngine::set_shard_plan: not a partition of the sensor indices");
  plan_ = std::move(plan);
  plan_manual_ = true;
  kShardCount.set(static_cast<double>(plan_.shard_count()));
}

void FleetEngine::clear_shard_plan() { plan_manual_ = false; }

void FleetEngine::rebalance_shards(std::size_t shard_count) {
  plan_ = plan_shards(hot_.cost_ewma_s, shard_count);
  ++rebalances_;
  kRebalances.add(1);
  kShardCount.set(static_cast<double>(plan_.shard_count()));
  kShardImbalance.observe(shard_imbalance(plan_, hot_.cost_ewma_s));
  AQUA_TRACE_INSTANT_SIM("fleet.shard_rebalance", t_.value());
}

void FleetEngine::ensure_plan(std::size_t shard_count) {
  if (plan_manual_) return;  // pinned by set_shard_plan — validated partition
  const bool stale = plan_.shard_count() != shard_count ||
                     plan_.sensor_count() != nodes_.size();
  const long long interval = config_.sharding.rebalance_interval_epochs;
  const bool due =
      interval > 0 && epoch_index_ > 0 && (epoch_index_ % interval) == 0;
  if (stale || due) rebalance_shards(shard_count);
}

void FleetEngine::snapshot_epoch_inputs() {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const PipeState state = pipe_state_for(*nodes_[i]);
    hot_.mean_velocity_mps[i] = state.mean_velocity_mps;
    hot_.point_velocity_mps[i] = state.point_velocity_mps;
    hot_.pressure_pa[i] = state.pressure.value();
    hot_.temperature_k[i] = state.temperature.value();
  }
}

void FleetEngine::publish_sample(std::size_t i) {
  // Publish the sample fields into the SoA mirror (disjoint slot — safe from
  // any worker) so cold readers never chase the node pointer.
  const TraceSample& s = nodes_[i]->trace().back();
  hot_.t_s[i] = s.t_s;
  hot_.bridge_voltage[i] = s.bridge_voltage;
  hot_.filtered_voltage[i] = s.filtered_voltage;
  hot_.estimate_mps[i] = s.estimate_mps;
  hot_.direction[i] = static_cast<std::int8_t>(s.direction);
  hot_.has_sample[i] = 1;
  kSensorSteps.add(1);
}

void FleetEngine::record_cost(std::size_t i, double seconds) {
  kSensorStepWall.observe(seconds);
  if (config_.sharding.measure_costs) {
    const double alpha = config_.sharding.cost_ewma_alpha;
    hot_.cost_ewma_s[i] =
        hot_.cost_ewma_s[i] <= 0.0
            ? seconds
            : (1.0 - alpha) * hot_.cost_ewma_s[i] + alpha * seconds;
  }
}

PipeState FleetEngine::snapshot_state(std::size_t i) const {
  PipeState state;
  state.mean_velocity_mps = hot_.mean_velocity_mps[i];
  state.point_velocity_mps = hot_.point_velocity_mps[i];
  state.pressure = util::Pascals{hot_.pressure_pa[i]};
  state.temperature = util::Kelvin{hot_.temperature_k[i]};
  return state;
}

void FleetEngine::advance_sensor(std::size_t i) {
  const obs::ScopedSpan sensor_span{"fleet.sensor", t_.value(),
                                    static_cast<double>(i)};
  const auto t0 = std::chrono::steady_clock::now();

  nodes_[i]->advance(snapshot_state(i), config_.epoch);
  publish_sample(i);

  const double dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  record_cost(i, dt);
}

void FleetEngine::advance_sensor_group(std::span<const std::uint32_t> ids) {
  // A singleton still goes through the fused kernel: the batch path's noise
  // draw order differs from scalar advance, so falling back for groups of one
  // would make results depend on how the shard planner happened to chunk the
  // fleet — e.g. an LPT plan with more shards than heavy sensors. Lane math
  // is per-sensor, so group composition itself never changes results.
  if (ids.empty()) return;
  const obs::ScopedSpan group_span{"fleet.sensor_group", t_.value(),
                                   static_cast<double>(ids.size())};
  const auto t0 = std::chrono::steady_clock::now();

  thread_local std::vector<SensorNode*> group_nodes;
  thread_local std::vector<PipeState> group_states;
  group_nodes.clear();
  group_states.clear();
  group_nodes.reserve(ids.size());
  group_states.reserve(ids.size());
  for (const std::uint32_t i : ids) {
    group_nodes.push_back(nodes_[i].get());
    group_states.push_back(snapshot_state(i));
  }
  SensorNode::advance_group(group_nodes, group_states, config_.epoch,
                            config_.batch_lane_width);

  // The lanes advance the whole group together, so per-sensor wall time is
  // unobservable — split the group time evenly. The cost model only feeds
  // the shard planner, which is outside the determinism contract anyway.
  const double dt = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - t0)
                        .count() /
                    static_cast<double>(ids.size());
  for (const std::uint32_t i : ids) {
    publish_sample(i);
    record_cost(i, dt);
  }
}

void FleetEngine::advance_sensors(std::span<const std::uint32_t> ids) {
  if (config_.execution != ChannelExecution::kSimdBatch) {
    for (const std::uint32_t i : ids) advance_sensor(i);
    return;
  }
  // Batch mode: frame-aligned sensors form one lane group (ascending shard
  // order); the rest — e.g. a node parked mid-frame by commissioning — step
  // scalar. Either way each sensor consumes exactly its own RNG stream, so
  // the split never perturbs results (DESIGN.md §13).
  thread_local std::vector<std::uint32_t> batch_ids;
  batch_ids.clear();
  batch_ids.reserve(ids.size());
  for (const std::uint32_t i : ids) {
    if (nodes_[i]->batch_eligible())
      batch_ids.push_back(i);
    else
      advance_sensor(i);
  }
  advance_sensor_group(batch_ids);
}

void FleetEngine::process_shard(std::size_t shard) {
  const obs::ScopedSpan shard_span{"fleet.shard", t_.value(),
                                   static_cast<double>(shard)};
  advance_sensors(plan_.shards[shard]);
}

void FleetEngine::step_epoch(util::ThreadPool* pool) {
  const obs::ScopedTimer epoch_timer{kEpochWall};
  AQUA_TRACE_SPAN_SIM("fleet.epoch", t_.value());
  AQUA_TRACE_COUNTER("fleet.sim_time_s", t_.value());
  apply_demand_factor(config_.demand_factor.at(t_));
  {
    AQUA_TRACE_SPAN_SIM("fleet.solve", t_.value());
    if (!net_.solve(config_.water_temperature)) {
      ++solve_failures_;
      kSolveFailures.add(1);
      AQUA_TRACE_INSTANT_SIM("fleet.solve_failure", t_.value());
    }
  }
  // Snapshot serially so every sensor task reads a frozen network state.
  snapshot_epoch_inputs();

  const bool use_team = team_ != nullptr && pool == team_pool_;
  if (use_team) {
    ensure_plan(team_->workers());
    team_->run_epoch();  // barrier out, barrier in — zero enqueues
  } else if (pool != nullptr) {
    // One coarse task per shard per epoch — never a per-sensor micro-task.
    ensure_plan(pool->thread_count());
    std::vector<std::future<void>> futures;
    futures.reserve(plan_.shard_count());
    for (std::size_t s = 0; s < plan_.shard_count(); ++s)
      futures.push_back(pool->submit([this, s] { process_shard(s); }));
    std::exception_ptr first;
    for (auto& f : futures) {
      try {
        f.get();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  } else {
    // Serial epoch: the whole fleet is one "shard" (in batch mode that means
    // one lane group per epoch — chunking differences never change results).
    thread_local std::vector<std::uint32_t> all_ids;
    if (all_ids.size() != nodes_.size()) {
      all_ids.resize(nodes_.size());
      for (std::size_t i = 0; i < nodes_.size(); ++i)
        all_ids[i] = static_cast<std::uint32_t>(i);
    }
    advance_sensors(all_ids);
  }

  t_ += config_.epoch;
  ++epoch_index_;
  kEpochs.add(1);
}

void FleetEngine::write_checkpoint(state::CheckpointWriter& ck) const {
  {
    state::Writer& w = ck.begin_section(kSectionMeta);
    w.u64(config_.root_seed);
    // Validation-only counts travel as bare u64s: Reader::size() bounds a
    // count by the bytes behind it, which is wrong for counts whose elements
    // live in *other* sections.
    w.u64(nodes_.size());
    w.f64(config_.epoch.value());
    w.u8(static_cast<std::uint8_t>(config_.execution));
    w.i32(config_.batch_lane_width);
    w.u64(net_.node_count());
    w.u64(net_.pipe_count());
    ck.end_section();
  }
  {
    // Merged totals of the deterministic counters at the quiescent point.
    state::Writer& w = ck.begin_section(kSectionObs);
    const obs::Snapshot snap = obs::Registry::instance().snapshot();
    w.size(std::size(kCheckpointedCounters));
    for (const char* name : kCheckpointedCounters) {
      std::uint64_t value = 0;
      for (const obs::CounterSnapshot& c : snap.counters)
        if (c.name == name) {
          value = c.value;
          break;
        }
      w.str(name);
      w.u64(value);
    }
    ck.end_section();
  }
  {
    state::Writer& w = ck.begin_section(kSectionNet);
    net_.save_state(w);
    ck.end_section();
  }
  {
    state::Writer& w = ck.begin_section(kSectionEngine);
    w.f64(t_.value());
    w.i64(epoch_index_);
    w.i64(solve_failures_);
    w.i64(rebalances_);
    w.size(estimate_valid_.size());
    for (const std::uint8_t v : estimate_valid_) w.u8(v);
    state::save_f64_vector(w, hot_.mean_velocity_mps);
    state::save_f64_vector(w, hot_.point_velocity_mps);
    state::save_f64_vector(w, hot_.pressure_pa);
    state::save_f64_vector(w, hot_.temperature_k);
    state::save_f64_vector(w, hot_.t_s);
    state::save_f64_vector(w, hot_.bridge_voltage);
    state::save_f64_vector(w, hot_.filtered_voltage);
    state::save_f64_vector(w, hot_.estimate_mps);
    w.size(hot_.direction.size());
    for (const std::int8_t d : hot_.direction)
      w.u8(static_cast<std::uint8_t>(d));
    w.size(hot_.has_sample.size());
    for (const std::uint8_t h : hot_.has_sample) w.u8(h);
    state::save_f64_vector(w, hot_.cost_ewma_s);
    ck.end_section();
  }
  {
    state::Writer& w = ck.begin_section(kSectionNodes);
    w.size(nodes_.size());
    for (const auto& node : nodes_) node->save_state(w);
    ck.end_section();
  }
}

std::vector<std::uint8_t> FleetEngine::checkpoint() const {
  state::CheckpointWriter ck;
  write_checkpoint(ck);
  return ck.finish();
}

void FleetEngine::read_checkpoint(const state::CheckpointReader& ck) {
  {
    state::Reader r = ck.section(kSectionMeta);
    if (r.u64() != config_.root_seed)
      throw state::Error("FleetEngine: checkpoint root seed mismatch");
    if (r.u64() != nodes_.size())
      throw state::Error("FleetEngine: checkpoint sensor count mismatch");
    if (std::bit_cast<std::uint64_t>(r.f64()) !=
        std::bit_cast<std::uint64_t>(config_.epoch.value()))
      throw state::Error("FleetEngine: checkpoint epoch length mismatch");
    if (r.u8() != static_cast<std::uint8_t>(config_.execution))
      throw state::Error("FleetEngine: checkpoint execution mode mismatch");
    if (r.i32() != config_.batch_lane_width)
      throw state::Error("FleetEngine: checkpoint lane width mismatch");
    if (r.u64() != net_.node_count() || r.u64() != net_.pipe_count())
      throw state::Error("FleetEngine: checkpoint network topology mismatch");
    r.expect_end();
  }
  {
    state::Reader r = ck.section(kSectionObs);
    const std::size_t n = r.size(9);
    for (std::size_t i = 0; i < n; ++i) {
      const std::string name = r.str();
      obs::Registry::instance().restore_counter(name, r.u64());
    }
    r.expect_end();
  }
  {
    state::Reader r = ck.section(kSectionNet);
    net_.load_state(r);
    r.expect_end();
  }
  {
    state::Reader r = ck.section(kSectionEngine);
    t_ = Seconds{r.f64()};
    epoch_index_ = r.i64();
    solve_failures_ = r.i64();
    rebalances_ = r.i64();
    if (r.size(1) != estimate_valid_.size())
      throw state::Error("FleetEngine: estimate mask size mismatch");
    for (std::uint8_t& v : estimate_valid_) v = r.u8();
    const auto load_sized = [&](std::vector<double>& v, const char* what) {
      if (r.size(8) != v.size())
        throw state::Error(std::string("FleetEngine: hot array size mismatch: ") +
                           what);
      for (double& x : v) x = r.f64();
    };
    load_sized(hot_.mean_velocity_mps, "mean_velocity");
    load_sized(hot_.point_velocity_mps, "point_velocity");
    load_sized(hot_.pressure_pa, "pressure");
    load_sized(hot_.temperature_k, "temperature");
    load_sized(hot_.t_s, "t_s");
    load_sized(hot_.bridge_voltage, "bridge_voltage");
    load_sized(hot_.filtered_voltage, "filtered_voltage");
    load_sized(hot_.estimate_mps, "estimate");
    if (r.size(1) != hot_.direction.size())
      throw state::Error("FleetEngine: hot array size mismatch: direction");
    for (std::int8_t& d : hot_.direction) d = static_cast<std::int8_t>(r.u8());
    if (r.size(1) != hot_.has_sample.size())
      throw state::Error("FleetEngine: hot array size mismatch: has_sample");
    for (std::uint8_t& h : hot_.has_sample) h = r.u8();
    load_sized(hot_.cost_ewma_s, "cost_ewma");
    r.expect_end();
  }
  {
    state::Reader r = ck.section(kSectionNodes);
    if (r.size(1) != nodes_.size())
      throw state::Error("FleetEngine: checkpoint node count mismatch");
    for (auto& node : nodes_) node->load_state(r);
    r.expect_end();
  }
}

void FleetEngine::restore(std::span<const std::uint8_t> image) {
  const state::CheckpointReader ck{image};
  read_checkpoint(ck);
}

FleetReport FleetEngine::report() const {
  return build_report(net_, nodes_, t_.value());
}

std::vector<double> FleetEngine::latest_estimates() const {
  std::vector<double> estimates;
  estimates.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    estimates.push_back(hot_.has_sample[i] != 0 ? hot_.estimate_mps[i] : 0.0);
  return estimates;
}

std::size_t MaskedEstimates::valid_count() const {
  std::size_t n = 0;
  for (const std::uint8_t v : valid) n += (v != 0) ? 1 : 0;
  return n;
}

MaskedEstimates FleetEngine::latest_estimates_masked() const {
  MaskedEstimates out;
  out.values.reserve(nodes_.size());
  out.valid.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const bool in_service = estimate_valid_[i] != 0;
    const bool has_sample = hot_.has_sample[i] != 0;
    const bool ok = in_service && has_sample;
    // Invalid entries are pinned to 0.0 — never the stale pre-fault sample.
    out.values.push_back(ok ? hot_.estimate_mps[i] : 0.0);
    out.valid.push_back(ok ? 1 : 0);
  }
  return out;
}

std::optional<TraceSample> FleetEngine::latest_sample_view(
    std::size_t i) const {
  if (hot_.has_sample[i] == 0) return std::nullopt;
  TraceSample s;
  s.t_s = hot_.t_s[i];
  s.bridge_voltage = hot_.bridge_voltage[i];
  s.filtered_voltage = hot_.filtered_voltage[i];
  s.estimate_mps = hot_.estimate_mps[i];
  s.true_mean_mps = hot_.mean_velocity_mps[i];
  s.direction = hot_.direction[i];
  return s;
}

void FleetEngine::set_estimate_valid(std::size_t i, bool valid) {
  estimate_valid_[i] = valid ? 1 : 0;
}

}  // namespace aqua::fleet
