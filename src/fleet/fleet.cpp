#include "fleet/fleet.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "phys/fluid.hpp"

namespace aqua::fleet {

using util::Seconds;

namespace {
constexpr double kGravity = 9.80665;

// Fleet-engine telemetry. The latency histograms record wall time — useful
// for scheduling analysis, explicitly outside the determinism contract (the
// counters and the simulation traces are the deterministic part).
const obs::Counter kEpochs{"fleet.epochs"};
const obs::Counter kSolveFailures{"fleet.solve_failures"};
const obs::Counter kSensorSteps{"fleet.sensor_steps"};
const obs::Histogram kEpochWall{"fleet.epoch_wall_seconds",
                                obs::HistogramSpec{1e-5, 100.0, 42, true}};
const obs::Histogram kSensorStepWall{"fleet.sensor_step_wall_seconds",
                                     obs::HistogramSpec{1e-6, 10.0, 42, true}};
}  // namespace

sim::Schedule diurnal_demand_pattern(Seconds day) {
  const double d = day.value();
  sim::Schedule pattern{0.3};
  pattern.hold(Seconds{0.25 * d})                  // night valley
      .ramp_to(1.6, Seconds{0.08 * d})             // morning peak
      .ramp_to(1.0, Seconds{0.10 * d})             // settle to daytime
      .hold(Seconds{0.25 * d})                     // daytime plateau
      .ramp_to(1.3, Seconds{0.10 * d})             // evening peak
      .hold(Seconds{0.12 * d})
      .ramp_to(0.3, Seconds{0.10 * d});            // back to night
  return pattern;
}

FleetEngine::FleetEngine(hydro::WaterNetwork& network,
                         std::span<const SensorPlacement> placements,
                         const FleetConfig& config)
    : net_(network), config_(config) {
  base_demands_.resize(net_.node_count(), 0.0);
  for (hydro::WaterNetwork::NodeId n = 0; n < net_.node_count(); ++n)
    base_demands_[n] = net_.node_demand(n);

  nodes_.reserve(placements.size());
  for (std::size_t i = 0; i < placements.size(); ++i) {
    nodes_.push_back(std::make_unique<SensorNode>(
        i, placements[i], config_.sensor, net_.pipe_diameter(placements[i].pipe),
        util::Rng::stream(config_.root_seed, i)));
  }
  estimate_valid_.assign(nodes_.size(), 1);
  scratch_states_.resize(nodes_.size());

  apply_demand_factor(config_.demand_factor.at(Seconds{0.0}));
  if (!net_.solve(config_.water_temperature))
    throw std::runtime_error("FleetEngine: initial network solve failed");
}

void FleetEngine::apply_demand_factor(double factor) {
  for (hydro::WaterNetwork::NodeId n = 0; n < net_.node_count(); ++n)
    if (!net_.node_is_reservoir(n))
      net_.set_demand(n, base_demands_[n] * factor);
}

PipeState FleetEngine::pipe_state_for(const SensorNode& node) const {
  const auto pipe = node.placement().pipe;
  PipeState state;
  state.temperature = config_.water_temperature;
  state.mean_velocity_mps = net_.pipe_velocity(pipe).value();
  state.point_velocity_mps =
      state.mean_velocity_mps *
      node.profile_factor_at(state.mean_velocity_mps, state.temperature);
  // Static pressure at the probe: the upstream node's pressure head (the
  // downstream end for a reservoir-fed pipe) on the atmospheric floor.
  auto tap = net_.pipe_from(pipe);
  if (net_.node_is_reservoir(tap)) tap = net_.pipe_to(pipe);
  const double head = net_.node_is_reservoir(tap)
                          ? 0.0
                          : std::max(0.0, net_.node_pressure_head(tap));
  const double rho = phys::water_properties(state.temperature).density;
  state.pressure =
      util::Pascals{config_.atmospheric.value() + rho * kGravity * head};
  return state;
}

void FleetEngine::dispatch(util::ThreadPool* pool,
                           const std::function<void(std::size_t)>& body) {
  if (pool != nullptr) {
    pool->parallel_for(nodes_.size(), body);
  } else {
    for (std::size_t i = 0; i < nodes_.size(); ++i) body(i);
  }
}

void FleetEngine::commission(Seconds settle, util::ThreadPool* pool) {
  AQUA_TRACE_SPAN_SIM("fleet.commission", t_.value());
  std::vector<PipeState> states;
  states.reserve(nodes_.size());
  for (const auto& node : nodes_) states.push_back(pipe_state_for(*node));
  dispatch(pool, [&](std::size_t i) {
    // Power-up built-in self-test first (paper §3's test bus); the test
    // restores the channel bit-exactly, so the settle below is unaffected.
    (void)nodes_[i]->run_self_test();
    nodes_[i]->commission(states[i], settle);
  });
}

isif::ChannelSelfTestResult FleetEngine::recommission(std::size_t i,
                                                      Seconds settle) {
  AQUA_TRACE_SPAN_SIM("fleet.recommission", t_.value());
  nodes_[i]->reboot();
  const isif::ChannelSelfTestResult result = nodes_[i]->run_self_test();
  nodes_[i]->commission(pipe_state_for(*nodes_[i]), settle);
  return result;
}

void FleetEngine::calibrate(std::span<const double> mean_speeds, Seconds dwell,
                            util::ThreadPool* pool) {
  AQUA_TRACE_SPAN_SIM("fleet.calibrate", t_.value());
  std::vector<PipeState> states;
  states.reserve(nodes_.size());
  for (const auto& node : nodes_) states.push_back(pipe_state_for(*node));
  dispatch(pool, [&](std::size_t i) {
    nodes_[i]->calibrate(states[i], mean_speeds, dwell);
  });
}

void FleetEngine::set_shared_fit(const cta::KingFit& fit) {
  for (auto& node : nodes_) node->set_fit(fit, config_.water_temperature);
}

void FleetEngine::run(Seconds duration, util::ThreadPool* pool) {
  const long long epochs = static_cast<long long>(
      std::ceil(duration.value() / config_.epoch.value()));
  for (long long e = 0; e < epochs; ++e) step_epoch(pool);
}

void FleetEngine::step_epoch(util::ThreadPool* pool) {
  const obs::ScopedTimer epoch_timer{kEpochWall};
  AQUA_TRACE_SPAN_SIM("fleet.epoch", t_.value());
  AQUA_TRACE_COUNTER("fleet.sim_time_s", t_.value());
  apply_demand_factor(config_.demand_factor.at(t_));
  {
    AQUA_TRACE_SPAN_SIM("fleet.solve", t_.value());
    if (!net_.solve(config_.water_temperature)) {
      ++solve_failures_;
      kSolveFailures.add(1);
      AQUA_TRACE_INSTANT_SIM("fleet.solve_failure", t_.value());
    }
  }
  // Snapshot serially so every sensor task reads a frozen network state.
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    scratch_states_[i] = pipe_state_for(*nodes_[i]);
  dispatch(pool, [&](std::size_t i) {
    const obs::ScopedTimer step_timer{kSensorStepWall};
    const obs::ScopedSpan sensor_span{"fleet.sensor", t_.value(),
                                      static_cast<double>(i)};
    nodes_[i]->advance(scratch_states_[i], config_.epoch);
    kSensorSteps.add(1);
  });
  t_ += config_.epoch;
  kEpochs.add(1);
}

FleetReport FleetEngine::report() const {
  return build_report(net_, nodes_, t_.value());
}

std::vector<double> FleetEngine::latest_estimates() const {
  std::vector<double> estimates;
  estimates.reserve(nodes_.size());
  for (const auto& node : nodes_)
    estimates.push_back(node->trace().empty()
                            ? 0.0
                            : node->trace().back().estimate_mps);
  return estimates;
}

std::size_t MaskedEstimates::valid_count() const {
  std::size_t n = 0;
  for (const std::uint8_t v : valid) n += (v != 0) ? 1 : 0;
  return n;
}

MaskedEstimates FleetEngine::latest_estimates_masked() const {
  MaskedEstimates out;
  out.values.reserve(nodes_.size());
  out.valid.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const bool in_service = estimate_valid_[i] != 0;
    const bool has_sample = !nodes_[i]->trace().empty();
    const bool ok = in_service && has_sample;
    // Invalid entries are pinned to 0.0 — never the stale pre-fault sample.
    out.values.push_back(ok ? nodes_[i]->trace().back().estimate_mps : 0.0);
    out.valid.push_back(ok ? 1 : 0);
  }
  return out;
}

void FleetEngine::set_estimate_valid(std::size_t i, bool valid) {
  estimate_valid_[i] = valid ? 1 : 0;
}

}  // namespace aqua::fleet
