// trace.hpp — time-series recorder for experiments. Channels are registered by
// name; samples may be decimated on capture (experiments run at hundreds of
// kilohertz but reports need hundreds of points). Traces can be dumped as CSV
// for plotting Fig.-11-style series.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace aqua::sim {

class Trace {
 public:
  /// `stride` keeps every stride-th sample per channel (1 = keep all).
  explicit Trace(std::size_t stride = 1);

  void record(const std::string& channel, util::Seconds t, double value);

  [[nodiscard]] bool has(const std::string& channel) const;
  [[nodiscard]] std::span<const double> times(const std::string& channel) const;
  [[nodiscard]] std::span<const double> values(const std::string& channel) const;
  [[nodiscard]] std::vector<std::string> channels() const;
  [[nodiscard]] std::size_t size(const std::string& channel) const;

  /// Last recorded value of a channel (throws if empty).
  [[nodiscard]] double back(const std::string& channel) const;

  /// Mean of the samples of `channel` with time in [t0, t1].
  [[nodiscard]] double mean_between(const std::string& channel, util::Seconds t0,
                                    util::Seconds t1) const;

  /// Writes each channel as its own CSV block — a `t_<name>,<name>` header
  /// row, then one `time,value` row per sample, then a blank line. Channels
  /// may have different lengths; resampling onto a shared time axis is not
  /// attempted. Throws std::runtime_error if the file cannot be opened.
  void write_csv(const std::string& path) const;

  void clear();

 private:
  struct Channel {
    std::vector<double> t;
    std::vector<double> v;
    std::size_t counter = 0;
  };
  const Channel& channel_or_throw(const std::string& name) const;

  std::size_t stride_;
  std::map<std::string, Channel> channels_;
};

}  // namespace aqua::sim
