#include "sim/integrator.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace aqua::sim {

using util::Seconds;

void rk4_step(const OdeRhs& f, double t, Seconds dt, std::span<double> y) {
  const std::size_t n = y.size();
  const double h = dt.value();
  std::vector<double> k1(n), k2(n), k3(n), k4(n), tmp(n);

  f(t, y, k1);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k1[i];
  f(t + 0.5 * h, tmp, k2);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + 0.5 * h * k2[i];
  f(t + 0.5 * h, tmp, k3);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = y[i] + h * k3[i];
  f(t + h, tmp, k4);
  for (std::size_t i = 0; i < n; ++i)
    y[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
}

void euler_step(const OdeRhs& f, double t, Seconds dt, std::span<double> y) {
  std::vector<double> dydt(y.size());
  f(t, y, dydt);
  for (std::size_t i = 0; i < y.size(); ++i) y[i] += dt.value() * dydt[i];
}

FirstOrderLag::FirstOrderLag(double initial, Seconds tau)
    : y_(initial), tau_(tau.value()) {
  if (tau_ < 0.0) throw std::invalid_argument("FirstOrderLag: negative tau");
}

double FirstOrderLag::step(double target, Seconds dt) {
  if (tau_ <= 0.0) {
    y_ = target;
  } else {
    const double a = std::exp(-dt.value() / tau_);
    y_ = target + (y_ - target) * a;
  }
  return y_;
}

double FirstOrderLag::decay(Seconds dt) const {
  return tau_ <= 0.0 ? 0.0 : std::exp(-dt.value() / tau_);
}

void FirstOrderLag::set_tau(Seconds tau) {
  if (tau.value() < 0.0) throw std::invalid_argument("FirstOrderLag: negative tau");
  tau_ = tau.value();
}

}  // namespace aqua::sim
