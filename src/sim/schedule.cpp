#include "sim/schedule.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::sim {

using util::Hertz;
using util::Seconds;

Schedule::Schedule(double initial) : initial_(initial) {}

void Schedule::append(Kind kind, double end_value, Seconds duration,
                      double amplitude, double omega) {
  if (duration.value() < 0.0)
    throw std::invalid_argument("Schedule: negative segment duration");
  const double t0 = segments_.empty() ? 0.0 : segments_.back().t_end;
  const double v0 = final_value();
  segments_.push_back(Segment{kind, v0, end_value, t0, t0 + duration.value(),
                              amplitude, omega});
}

Schedule& Schedule::hold(Seconds duration) {
  append(Kind::kHold, final_value(), duration);
  return *this;
}

Schedule& Schedule::step_to(double value, Seconds duration) {
  append(Kind::kHold, value, duration);
  segments_.back().start_value = value;
  return *this;
}

Schedule& Schedule::ramp_to(double value, Seconds duration) {
  append(Kind::kRamp, value, duration);
  return *this;
}

Schedule& Schedule::sine(double amplitude, Hertz frequency, Seconds duration) {
  constexpr double kTwoPi = 6.283185307179586;
  append(Kind::kSine, final_value(), duration, amplitude,
         kTwoPi * frequency.value());
  return *this;
}

Schedule& Schedule::staircase(std::span<const double> levels, Seconds dwell) {
  for (double level : levels) step_to(level, dwell);
  return *this;
}

double Schedule::at(Seconds t) const {
  const double tt = t.value();
  if (segments_.empty() || tt <= 0.0) return initial_;
  for (const Segment& s : segments_) {
    if (tt > s.t_end) continue;
    switch (s.kind) {
      case Kind::kHold:
        return s.end_value;
      case Kind::kRamp: {
        const double span = s.t_end - s.t_begin;
        if (span <= 0.0) return s.end_value;
        const double f = (tt - s.t_begin) / span;
        return s.start_value + f * (s.end_value - s.start_value);
      }
      case Kind::kSine:
        return s.end_value + s.amplitude * std::sin(s.omega * (tt - s.t_begin));
    }
  }
  return segments_.back().end_value;
}

Seconds Schedule::duration() const {
  return Seconds{segments_.empty() ? 0.0 : segments_.back().t_end};
}

double Schedule::final_value() const {
  return segments_.empty() ? initial_ : segments_.back().end_value;
}

std::vector<double> linspace(double lo, double hi, std::size_t count) {
  if (count == 0) throw std::invalid_argument("linspace: count must be > 0");
  std::vector<double> out(count);
  if (count == 1) {
    out[0] = lo;
    return out;
  }
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i)
    out[i] = lo + step * static_cast<double>(i);
  return out;
}

}  // namespace aqua::sim
