// integrator.hpp — explicit fixed-step ODE integration for the non-stiff
// mechanical models (turbine rotor, valve/pump actuators). The stiff thermal
// side uses phys::ThermalNetwork's exponential-Euler instead.
#pragma once

#include <functional>
#include <span>

#include "util/units.hpp"

namespace aqua::sim {

/// dy/dt = f(t, y) with y and the derivative as spans of equal length.
using OdeRhs =
    std::function<void(double t, std::span<const double> y, std::span<double> dydt)>;

/// One classic RK4 step of size dt, in place.
void rk4_step(const OdeRhs& f, double t, util::Seconds dt, std::span<double> y);

/// One forward-Euler step (for cheap, heavily-oversampled loops).
void euler_step(const OdeRhs& f, double t, util::Seconds dt, std::span<double> y);

/// First-order lag (one-pole) tracker: analytic step of
/// dy/dt = (target − y)/tau. Robust for any dt/tau ratio; the workhorse for
/// actuators, amplifier bandwidth and DAC settling.
class FirstOrderLag {
 public:
  FirstOrderLag(double initial, util::Seconds tau);

  double step(double target, util::Seconds dt);

  /// The per-step decay factor exp(−dt/τ) that step() applies for this dt
  /// (0 when τ ≤ 0, i.e. the lag tracks instantly). Block execution hoists
  /// this out of the per-sample loop: one exp per block instead of one per
  /// sample, with the identical factor — so step_with_decay(t, decay(dt)) is
  /// bit-identical to step(t, dt).
  [[nodiscard]] double decay(util::Seconds dt) const;

  /// One step using a precomputed decay factor (same FP operations as
  /// step()). Inline: this is the innermost loop of the block path.
  double step_with_decay(double target, double a) {
    y_ = (a <= 0.0) ? target : target + (y_ - target) * a;
    return y_;
  }

  [[nodiscard]] double value() const { return y_; }
  void reset(double value) { y_ = value; }
  void set_tau(util::Seconds tau);

 private:
  double y_;
  double tau_;
};

}  // namespace aqua::sim
