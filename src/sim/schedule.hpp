// schedule.hpp — piecewise setpoint profiles. Experiments describe the test
// line as a timeline: "hold 50 cm/s for 20 s, ramp to 250 cm/s over 60 s,
// pressure pulse to 7 bar". A Schedule is a pure function of time built from
// such segments; actuator dynamics (valve lag, turbulence) are applied by the
// hydro layer on top.
#pragma once

#include <span>
#include <vector>

#include "util/units.hpp"

namespace aqua::sim {

class Schedule {
 public:
  /// Starts the profile at `initial` (value before any segment, and the ramp
  /// origin of the first segment).
  explicit Schedule(double initial = 0.0);

  /// Holds the current end value for `duration`.
  Schedule& hold(util::Seconds duration);
  /// Steps immediately to `value` and holds it for `duration`.
  Schedule& step_to(double value, util::Seconds duration);
  /// Ramps linearly from the current end value to `value` over `duration`.
  Schedule& ramp_to(double value, util::Seconds duration);
  /// Sinusoid of `amplitude` and `frequency` superposed on the current end
  /// value for `duration`.
  Schedule& sine(double amplitude, util::Hertz frequency, util::Seconds duration);

  /// Appends a staircase visiting each level for `dwell` (steps, no ramps).
  Schedule& staircase(std::span<const double> levels, util::Seconds dwell);

  /// Value at absolute time t (clamped: before 0 -> initial, after the end ->
  /// final value).
  [[nodiscard]] double at(util::Seconds t) const;

  /// Total duration of all segments.
  [[nodiscard]] util::Seconds duration() const;

  /// Final value of the profile.
  [[nodiscard]] double final_value() const;

 private:
  enum class Kind { kHold, kRamp, kSine };
  struct Segment {
    Kind kind;
    double start_value;
    double end_value;
    double t_begin;
    double t_end;
    double amplitude = 0.0;
    double omega = 0.0;
  };

  void append(Kind kind, double end_value, util::Seconds duration,
              double amplitude = 0.0, double omega = 0.0);

  double initial_;
  std::vector<Segment> segments_;
};

/// Convenience: evenly spaced staircase levels from lo to hi inclusive.
[[nodiscard]] std::vector<double> linspace(double lo, double hi, std::size_t count);

}  // namespace aqua::sim
