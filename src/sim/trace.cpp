#include "sim/trace.hpp"

#include <fstream>
#include <stdexcept>

namespace aqua::sim {

using util::Seconds;

Trace::Trace(std::size_t stride) : stride_(stride == 0 ? 1 : stride) {}

void Trace::record(const std::string& channel, Seconds t, double value) {
  Channel& ch = channels_[channel];
  if (ch.counter++ % stride_ == 0) {
    ch.t.push_back(t.value());
    ch.v.push_back(value);
  }
}

bool Trace::has(const std::string& channel) const {
  return channels_.count(channel) != 0;
}

const Trace::Channel& Trace::channel_or_throw(const std::string& name) const {
  const auto it = channels_.find(name);
  if (it == channels_.end())
    throw std::out_of_range("Trace: unknown channel '" + name + "'");
  return it->second;
}

std::span<const double> Trace::times(const std::string& channel) const {
  return channel_or_throw(channel).t;
}

std::span<const double> Trace::values(const std::string& channel) const {
  return channel_or_throw(channel).v;
}

std::vector<std::string> Trace::channels() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, _] : channels_) names.push_back(name);
  return names;
}

std::size_t Trace::size(const std::string& channel) const {
  return channel_or_throw(channel).v.size();
}

double Trace::back(const std::string& channel) const {
  const Channel& ch = channel_or_throw(channel);
  if (ch.v.empty()) throw std::out_of_range("Trace: channel empty");
  return ch.v.back();
}

double Trace::mean_between(const std::string& channel, Seconds t0,
                           Seconds t1) const {
  const Channel& ch = channel_or_throw(channel);
  double acc = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < ch.t.size(); ++i) {
    if (ch.t[i] >= t0.value() && ch.t[i] <= t1.value()) {
      acc += ch.v[i];
      ++n;
    }
  }
  if (n == 0) throw std::out_of_range("Trace: no samples in window");
  return acc / static_cast<double>(n);
}

void Trace::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Trace: cannot open " + path);
  for (const auto& [name, ch] : channels_) {
    out << "t_" << name << "," << name;
    out << '\n';
    for (std::size_t i = 0; i < ch.t.size(); ++i)
      out << ch.t[i] << ',' << ch.v[i] << '\n';
    out << '\n';
  }
}

void Trace::clear() { channels_.clear(); }

}  // namespace aqua::sim
