#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>

namespace aqua::obs {
namespace {

std::uint64_t wall_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::atomic<bool> TraceRecorder::enabled_{false};

TraceRecorder& TraceRecorder::instance() {
  // Leaked on purpose: worker threads may emit during process teardown, after
  // static destructors would have run (same lifetime trick as obs::Registry).
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::Ring& TraceRecorder::local_ring() {
  thread_local Ring* ring = nullptr;
  if (ring == nullptr) {
    auto owned = std::make_unique<Ring>();
    ring = owned.get();
    const std::lock_guard<std::mutex> lock(mutex_);
    ring->tid = next_tid_++;
    rings_.push_back(std::move(owned));
  }
  return *ring;
}

void TraceRecorder::emit(TraceEventKind kind, const char* name, double sim_s,
                         double value) {
  Ring& ring = local_ring();
  const std::uint64_t w = ring.write.load(std::memory_order_relaxed);
  TraceEvent& slot = ring.events[w % kRingCapacity];
  slot.wall_ns = wall_now_ns();
  slot.sim_s = sim_s;
  slot.value = value;
  slot.name = name;
  slot.kind = kind;
  // Release so a concurrent snapshot that observes index w+1 also observes
  // the slot contents; the writer itself never synchronises on anything.
  ring.write.store(w + 1, std::memory_order_release);
}

void TraceRecorder::set_thread_name(std::string_view name) {
  if (!enabled()) return;
  TraceRecorder& rec = instance();
  Ring& ring = rec.local_ring();
  const std::lock_guard<std::mutex> lock(rec.mutex_);
  ring.name.assign(name);
}

const char* TraceRecorder::intern(std::string_view text) {
  static const char kOverflow[] = "trace.intern_overflow";
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& s : interned_)
    if (*s == text) return s->c_str();
  if (interned_.size() >= kMaxInterned) return kOverflow;
  interned_.push_back(std::make_unique<std::string>(text));
  return interned_.back()->c_str();
}

TraceSnapshot TraceRecorder::snapshot() {
  TraceSnapshot snap;
  const std::lock_guard<std::mutex> lock(mutex_);
  snap.tracks.reserve(rings_.size());
  for (const auto& ring : rings_) {
    const std::uint64_t end = ring->write.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(end, kRingCapacity);
    const std::uint64_t begin = end - count;

    TraceTrack track;
    track.tid = ring->tid;
    track.name = ring->name;
    track.events.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = begin; i < end; ++i)
      track.events.push_back(ring->events[i % kRingCapacity]);

    // The writer may have lapped us during the copy; anything it overtook is
    // possibly torn, so re-read the index and discard the stale prefix.
    const std::uint64_t end2 = ring->write.load(std::memory_order_acquire);
    const std::uint64_t safe_begin =
        end2 > kRingCapacity ? end2 - kRingCapacity : 0;
    if (safe_begin > begin) {
      const std::uint64_t stale =
          std::min<std::uint64_t>(safe_begin - begin, count);
      track.events.erase(track.events.begin(),
                         track.events.begin() + static_cast<std::ptrdiff_t>(stale));
      track.dropped = safe_begin;
    } else {
      track.dropped = begin;
    }
    snap.dropped_total += track.dropped;
    snap.tracks.push_back(std::move(track));
  }
  return snap;
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& ring : rings_)
    ring->write.store(0, std::memory_order_release);
}

}  // namespace aqua::obs
