// metrics.hpp — deterministic, near-zero-overhead telemetry for the datapath
// and the fleet engine: a process-wide registry of named counters, gauges and
// fixed-bin streaming histograms.
//
// Design constraints (DESIGN.md §8):
//
//  * The instrumented code is the bit-reproducible simulation datapath, so a
//    metric update may NEVER perturb it: no RNG draws, no writes to model
//    state, no FP arithmetic feeding back into the simulation. Metrics only
//    *observe* values; disabling collection (set_enabled(false)) changes
//    nothing but the recorded numbers. The fleet determinism suite runs with
//    metrics enabled and still demands bit-identical traces.
//
//  * Sensor tasks run on arbitrary pool threads, so the hot path must be
//    uncontended: every thread writes to its own shard (plain relaxed
//    atomics, no locks, no false sharing across metric kinds) and shards are
//    merged when snapshot() is scraped. A thread that exits donates its shard
//    back to a free list — totals are never lost and shard count is bounded
//    by the peak number of live threads.
//
//  * Registration is by name and idempotent; capacity is fixed at compile
//    time (kMaxCounters/kMaxGauges/kMaxHistograms) so shard storage never
//    reallocates under a concurrent writer.
//
// Typical instrumentation site (function-local static: registers once,
// thread-safe, ~1 branch + 1 relaxed add per event afterwards):
//
//   static const obs::Counter kOverload{"isif.channel.overload_blocks"};
//   if (sample.overload) kOverload.add();
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace aqua::obs {

/// Fixed binning of a streaming histogram. Bins span [lo, hi); samples below
/// lo land in the underflow bucket, samples at or above hi in the overflow
/// bucket. Log-scale bins (decades subdivided evenly in log10) suit latency
/// distributions; linear bins suit bounded physical quantities.
struct HistogramSpec {
  double lo = 1e-6;
  double hi = 1.0;
  int bins = 36;
  bool log_scale = true;
};

struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  HistogramSpec spec{};
  /// Upper edge of each regular bin (size == spec.bins).
  std::vector<double> upper_edges;
  /// Per-bin counts: [0] underflow, [1..bins] regular, [bins+1] overflow.
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;  ///< total observations
  double sum = 0.0;         ///< merge-order dependent; not part of the
                            ///< determinism contract (wall-clock metrics)
  double min = 0.0;         ///< defined only when count > 0
  double max = 0.0;
};

/// One merged scrape of every registered metric, sorted by name.
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class Registry {
 public:
  static constexpr std::uint32_t kMaxCounters = 192;
  static constexpr std::uint32_t kMaxGauges = 64;
  static constexpr std::uint32_t kMaxHistograms = 32;
  static constexpr int kMaxBins = 96;

  /// The process-wide registry (intentionally leaked so thread-local shard
  /// release at late thread exit never races static destruction).
  static Registry& instance();

  /// Registers (or looks up) a metric by name; throws std::length_error past
  /// the fixed capacity. Histogram specs are fixed by the first registration.
  std::uint32_t register_counter(std::string_view name);
  std::uint32_t register_gauge(std::string_view name);
  std::uint32_t register_histogram(std::string_view name,
                                   const HistogramSpec& spec);

  // Hot paths: no-ops while collection is disabled.
  void counter_add(std::uint32_t slot, std::uint64_t delta);
  void gauge_set(std::uint32_t slot, double value);
  void histogram_observe(std::uint32_t slot, double value);

  /// Merges every shard (live and donated) into one snapshot, sorted by name.
  [[nodiscard]] Snapshot snapshot();

  /// Zeroes every metric in every shard. Callers must quiesce instrumented
  /// threads first (e.g. between benchmark modes); concurrent writers would
  /// be partially lost, never corrupted.
  void zero();

  /// Checkpoint support: forces the *merged* value of a named counter to
  /// `value` by writing the compensating (wrapping) delta into the calling
  /// thread's shard — existing shards are never touched, so this is safe
  /// against the free-list. Registers the name if unseen. Callers must
  /// quiesce instrumented threads first, as with zero().
  void restore_counter(std::string_view name, std::uint64_t value);
  /// Checkpoint support: last-write-wins restore of a named gauge.
  void restore_gauge(std::string_view name, double value);

  /// Collection switch (default on). Purely additive: the simulation datapath
  /// is identical either way — that is the determinism guarantee, not a
  /// consequence of this flag.
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

 private:
  struct GaugeCell {
    std::atomic<double> value{0.0};
    std::atomic<std::uint64_t> version{0};  // global write sequence
  };
  struct HistogramCell {
    std::array<std::atomic<std::uint64_t>, kMaxBins + 2> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
    std::atomic<double> min{0.0};
    std::atomic<double> max{0.0};
  };
  struct Shard {
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<GaugeCell, kMaxGauges> gauges{};
    std::array<HistogramCell, kMaxHistograms> histograms{};
  };
  /// Pre-resolved binning of one histogram (immutable after registration).
  struct HistogramMeta {
    HistogramSpec spec{};
    double origin = 0.0;     // lo, or log10(lo) for log bins
    double inv_width = 0.0;  // bins / (span in linear or log10 space)
    std::vector<double> upper_edges;
  };

  Registry();
  Shard& local_shard();
  void release_shard(Shard* shard);
  static void zero_shard(Shard& shard);

  friend struct ShardLease;

  static std::atomic<bool> enabled_;

  std::mutex mutex_;  // registration + shard list + scrape
  std::vector<std::string> counter_names_;
  std::vector<std::string> gauge_names_;
  std::vector<std::string> histogram_names_;
  std::vector<HistogramMeta> histogram_meta_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<Shard*> free_shards_;
  std::atomic<std::uint64_t> gauge_sequence_{0};
};

/// Monotonic event counter. Copyable handle; registration happens once in the
/// constructor.
class Counter {
 public:
  explicit Counter(std::string_view name)
      : slot_(Registry::instance().register_counter(name)) {}
  void add(std::uint64_t delta = 1) const {
    if (Registry::enabled()) Registry::instance().counter_add(slot_, delta);
  }

 private:
  std::uint32_t slot_;
};

/// Last-write-wins instantaneous value (merge picks the most recent write
/// across shards).
class Gauge {
 public:
  explicit Gauge(std::string_view name)
      : slot_(Registry::instance().register_gauge(name)) {}
  void set(double value) const {
    if (Registry::enabled()) Registry::instance().gauge_set(slot_, value);
  }

 private:
  std::uint32_t slot_;
};

/// Fixed-bin streaming histogram.
class Histogram {
 public:
  Histogram(std::string_view name, const HistogramSpec& spec = {})
      : slot_(Registry::instance().register_histogram(name, spec)) {}
  void observe(double value) const {
    if (Registry::enabled()) Registry::instance().histogram_observe(slot_, value);
  }

 private:
  std::uint32_t slot_;
};

/// RAII wall-clock timer: observes the elapsed seconds into a histogram on
/// destruction. Wall time is inherently non-deterministic; it feeds metrics
/// only, never the simulation.
class ScopedTimer {
 public:
  explicit ScopedTimer(const Histogram& histogram);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const Histogram& histogram_;
  std::uint64_t start_ns_;
};

}  // namespace aqua::obs
