#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <set>

namespace aqua::obs {

namespace {
/// Loaded labels must outlive every event that points at them, so they are
/// interned into a leaked process-lifetime pool (labels are a handful of
/// distinct literals in practice, so the pool stays tiny).
const char* intern_label(const std::string& label) {
  static std::mutex mu;
  static auto* pool = new std::set<std::string>();
  const std::lock_guard<std::mutex> lock(mu);
  return pool->insert(label).first->c_str();
}
}  // namespace

const char* flight_kind_name(FlightRecordKind kind) {
  switch (kind) {
    case FlightRecordKind::kFault:
      return "FAULT";
    case FlightRecordKind::kPiSaturationEnter:
      return "PI_SAT_ENTER";
    case FlightRecordKind::kPiSaturationExit:
      return "PI_SAT_EXIT";
    case FlightRecordKind::kAdcOverloadEnter:
      return "ADC_OVERLOAD_ENTER";
    case FlightRecordKind::kAdcOverloadExit:
      return "ADC_OVERLOAD_EXIT";
    case FlightRecordKind::kDriveOn:
      return "DRIVE_ON";
    case FlightRecordKind::kDriveOff:
      return "DRIVE_OFF";
    case FlightRecordKind::kCommission:
      return "COMMISSION";
    case FlightRecordKind::kReset:
      return "RESET";
    case FlightRecordKind::kReboot:
      return "REBOOT";
    case FlightRecordKind::kFaultInjected:
      return "FAULT_INJECTED";
  }
  return "UNKNOWN";
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : ring_(std::max<std::size_t>(capacity, 1)) {}

void FlightRecorder::record(double t_s, FlightRecordKind kind,
                            std::int32_t code, double value,
                            const char* label) {
  FlightEvent& slot = ring_[write_ % ring_.size()];
  slot.t_s = t_s;
  slot.kind = kind;
  slot.code = code;
  slot.value = value;
  slot.label = label;
  ++write_;
  if (write_ > ring_.size()) dropped_ = write_ - ring_.size();
}

std::vector<FlightEvent> FlightRecorder::events() const {
  const std::uint64_t count =
      std::min<std::uint64_t>(write_, ring_.size());
  const std::uint64_t begin = write_ - count;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = begin; i < write_; ++i)
    out.push_back(ring_[i % ring_.size()]);
  return out;
}

std::size_t FlightRecorder::size() const {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(write_, ring_.size()));
}

void FlightRecorder::clear() {
  write_ = 0;
  dropped_ = 0;
}

void FlightRecorder::save_state(state::Writer& w) const {
  w.size(ring_.size());
  w.u64(write_);
  w.u64(dropped_);
  for (const FlightEvent& ev : ring_) {
    w.f64(ev.t_s);
    w.u8(static_cast<std::uint8_t>(ev.kind));
    w.i32(ev.code);
    w.f64(ev.value);
    w.str(ev.label != nullptr ? std::string_view{ev.label}
                              : std::string_view{});
  }
}

void FlightRecorder::load_state(state::Reader& r) {
  if (r.size(29) != ring_.size())
    throw state::Error("FlightRecorder: ring capacity mismatch");
  write_ = r.u64();
  dropped_ = r.u64();
  for (FlightEvent& ev : ring_) {
    ev.t_s = r.f64();
    ev.kind = static_cast<FlightRecordKind>(r.u8());
    ev.code = r.i32();
    ev.value = r.f64();
    const std::string label = r.str();
    ev.label = label.empty() ? nullptr : intern_label(label);
  }
}

std::string FlightRecorder::dump_text(const std::string& header) const {
  std::string out;
  if (!header.empty()) {
    out += header;
    out += '\n';
  }
  char line[160];
  if (dropped_ > 0) {
    std::snprintf(line, sizeof(line),
                  "  ... %llu earlier event(s) dropped (ring wrapped)\n",
                  static_cast<unsigned long long>(dropped_));
    out += line;
  }
  for (const FlightEvent& ev : events()) {
    std::snprintf(line, sizeof(line), "  t=%12.6f s  %-18s code=%-4d v=%g",
                  ev.t_s, flight_kind_name(ev.kind), ev.code, ev.value);
    out += line;
    if (ev.label != nullptr) {
      out += "  ";
      out += ev.label;
    }
    out += '\n';
  }
  if (size() == 0) out += "  (empty)\n";
  return out;
}

}  // namespace aqua::obs
