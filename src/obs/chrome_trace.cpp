#include "obs/chrome_trace.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "obs/json.hpp"

namespace aqua::obs {
namespace {

constexpr int kPid = 1;

std::string quote(std::string_view s) {
  return "\"" + escape_json_string(s) + "\"";
}

/// Microseconds with sub-µs precision, relative to the snapshot origin.
std::string fmt_ts(std::uint64_t wall_ns, std::uint64_t origin_ns) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(wall_ns - origin_ns) / 1e3);
  return buf;
}

std::string args_json(double sim_s, bool with_value = false,
                      double value = 0.0) {
  std::string out = "{";
  bool first = true;
  if (sim_s != kNoSimTime) {
    out += "\"sim_s\": " + json_double(sim_s);
    first = false;
  }
  if (with_value) {
    if (!first) out += ", ";
    out += "\"value\": " + json_double(value);
    first = false;
  }
  out += "}";
  return out;
}

void append_event(std::string& out, bool& first, const std::string& body) {
  if (!first) out += ",";
  out += "\n    " + body;
  first = false;
}

}  // namespace

std::string to_chrome_json(const TraceSnapshot& snapshot) {
  // Normalise timestamps so the trace starts near t=0 regardless of the
  // steady clock's arbitrary epoch.
  std::uint64_t origin_ns = std::numeric_limits<std::uint64_t>::max();
  for (const TraceTrack& track : snapshot.tracks)
    for (const TraceEvent& ev : track.events)
      origin_ns = std::min(origin_ns, ev.wall_ns);
  if (origin_ns == std::numeric_limits<std::uint64_t>::max()) origin_ns = 0;

  std::string out = "{\n  \"traceEvents\": [";
  bool first = true;

  append_event(out, first,
               "{\"ph\": \"M\", \"pid\": " + std::to_string(kPid) +
                   ", \"name\": \"process_name\", \"args\": {\"name\": "
                   "\"aquacta\"}}");

  for (const TraceTrack& track : snapshot.tracks) {
    const std::string tid = std::to_string(track.tid);
    const std::string thread_name =
        track.name.empty() ? "thread-" + tid : track.name;
    append_event(out, first,
                 "{\"ph\": \"M\", \"pid\": " + std::to_string(kPid) +
                     ", \"tid\": " + tid +
                     ", \"name\": \"thread_name\", \"args\": {\"name\": " +
                     quote(thread_name) + "}}");

    // Match begin/end pairs into complete ("X") events. Spans nest properly
    // on a single thread (they come from RAII scopes), so a stack suffices.
    // Orphans are a fact of life with drop-oldest rings: an end whose begin
    // was overwritten is discarded; a begin whose end fell outside the
    // snapshot is closed at the track's last timestamp.
    struct OpenSpan {
      const TraceEvent* begin;
    };
    std::vector<OpenSpan> stack;
    const std::uint64_t last_ns =
        track.events.empty() ? origin_ns : track.events.back().wall_ns;

    auto emit_complete = [&](const TraceEvent& begin, std::uint64_t end_ns) {
      char dur[48];
      std::snprintf(dur, sizeof dur, "%.3f",
                    static_cast<double>(end_ns - begin.wall_ns) / 1e3);
      append_event(out, first,
                   "{\"ph\": \"X\", \"pid\": " + std::to_string(kPid) +
                       ", \"tid\": " + tid + ", \"name\": " +
                       quote(begin.name != nullptr ? begin.name : "?") +
                       ", \"ts\": " + fmt_ts(begin.wall_ns, origin_ns) +
                       ", \"dur\": " + dur +
                       ", \"args\": " + args_json(begin.sim_s) + "}");
    };

    for (const TraceEvent& ev : track.events) {
      switch (ev.kind) {
        case TraceEventKind::kSpanBegin:
          stack.push_back(OpenSpan{&ev});
          break;
        case TraceEventKind::kSpanEnd:
          if (!stack.empty()) {
            emit_complete(*stack.back().begin, ev.wall_ns);
            stack.pop_back();
          }
          break;
        case TraceEventKind::kInstant:
          append_event(
              out, first,
              "{\"ph\": \"i\", \"s\": \"t\", \"pid\": " + std::to_string(kPid) +
                  ", \"tid\": " + tid + ", \"name\": " +
                  quote(ev.name != nullptr ? ev.name : "?") +
                  ", \"ts\": " + fmt_ts(ev.wall_ns, origin_ns) +
                  ", \"args\": " + args_json(ev.sim_s) + "}");
          break;
        case TraceEventKind::kCounter:
          append_event(
              out, first,
              "{\"ph\": \"C\", \"pid\": " + std::to_string(kPid) +
                  ", \"tid\": " + tid + ", \"name\": " +
                  quote(ev.name != nullptr ? ev.name : "?") +
                  ", \"ts\": " + fmt_ts(ev.wall_ns, origin_ns) +
                  ", \"args\": " + args_json(ev.sim_s, true, ev.value) + "}");
          break;
      }
    }
    while (!stack.empty()) {
      emit_complete(*stack.back().begin, last_ns);
      stack.pop_back();
    }
  }

  out += "\n  ],\n";
  out += "  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"otherData\": {\"dropped_events\": " +
         std::to_string(snapshot.dropped_total) + "}\n";
  out += "}";
  return out;
}

void write_chrome_trace(const std::string& path,
                        const TraceSnapshot& snapshot) {
  write_file(path, to_chrome_json(snapshot));
}

}  // namespace aqua::obs
