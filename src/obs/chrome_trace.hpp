// chrome_trace.hpp — renders a TraceSnapshot as Chrome trace-event JSON
// (the "JSON Object Format": {"traceEvents": [...], ...}) loadable in
// Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Mapping:
//  * span begin/end pairs are matched per track into "X" (complete) events —
//    robust against drop-oldest: orphaned ends are discarded, still-open
//    begins are closed at the track's last timestamp;
//  * instants become "i" events (thread-scoped);
//  * counter samples become "C" events, which Perfetto draws as a graph —
//    the fleet engine's "fleet.sim_time_s" counter is the sim-time track;
//  * each track gets a thread_name metadata event; the process is "aquacta".
// Timestamps are microseconds relative to the earliest event in the
// snapshot; events carry a "sim_s" arg where the site knew simulation time.
#pragma once

#include <string>

#include "obs/trace.hpp"

namespace aqua::obs {

[[nodiscard]] std::string to_chrome_json(const TraceSnapshot& snapshot);

/// Serialises `snapshot` with to_chrome_json and writes it to `path`
/// (truncating). Throws std::runtime_error on I/O failure.
void write_chrome_trace(const std::string& path, const TraceSnapshot& snapshot);

}  // namespace aqua::obs
