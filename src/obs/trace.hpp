// trace.hpp — event tracing for the simulation stack: a process-wide recorder
// of time-stamped POD events (span begin/end, instants, counter samples) that
// turns "why did sensor 17 latch a fault at t=203 s?" from a printf hunt into
// a timeline you can open in Perfetto (see chrome_trace.hpp).
//
// The recorder lives under the same hard contract as the metrics registry
// (DESIGN.md §8/§10): instrumentation may NEVER perturb the bit-reproducible
// datapath. An event only *observes* values the simulation already computed —
// no RNG draws, no FP feedback, no writes to model state — so the fleet
// determinism suite passes bit-identically with tracing enabled, and the
// kill-switch (set_enabled(false)) changes nothing but the recorded events.
//
// Hot-path design:
//
//  * Every emitting thread owns a fixed-capacity ring of POD events; emit()
//    is a handful of plain stores plus one release store of the write index —
//    no locks, no allocation, no contention. Rings are registered once under
//    a mutex and kept for the recorder's lifetime, so a finished pool's task
//    spans still export.
//
//  * The ring drops oldest: the writer simply wraps, and snapshot() reports
//    how many events each track lost. Capacity is a compile-time constant
//    (kRingCapacity) so the ring never reallocates under its writer.
//
//  * Collection is OFF by default. Every AQUA_TRACE_* macro and the
//    ScopedSpan constructor check one relaxed atomic — the disabled cost is
//    ~1 branch per site, which ci/bench_compare.py gates (the channel block
//    throughput with tracing compiled in but disabled must stay within the
//    usual 20% envelope).
//
//  * Events are dual-stamped: a wall-clock nanosecond stamp (steady clock,
//    for the Perfetto timeline) and the simulation time where the site has
//    one in scope (kNoSimTime otherwise). Wall time is inherently
//    non-deterministic; it feeds telemetry only, never the simulation.
//
// snapshot() is wait-free for writers but best-effort for the scraper: take
// it at a quiescent point (end of a run, after wait_idle) like
// Registry::zero(); events overwritten mid-copy are detected and dropped,
// never corrupted.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace aqua::obs {

enum class TraceEventKind : std::uint8_t {
  kSpanBegin = 0,  ///< opened by ScopedSpan / AQUA_TRACE_SPAN*
  kSpanEnd = 1,    ///< closed by the matching scope exit
  kInstant = 2,    ///< a point event on the emitting thread's track
  kCounter = 3,    ///< a sampled value (renders as a counter track)
};

/// Sim-time stamp for events emitted where no simulation clock is in scope
/// (thread-pool internals, log mirroring). Legitimate sim times are >= 0.
inline constexpr double kNoSimTime = -1.0;

/// One fixed-size POD trace event. `name` must point at storage that outlives
/// the recorder: a string literal, or a string interned via
/// TraceRecorder::intern().
struct TraceEvent {
  std::uint64_t wall_ns = 0;  ///< steady-clock stamp (epoch arbitrary)
  double sim_s = kNoSimTime;  ///< simulation time, or kNoSimTime
  double value = 0.0;         ///< counter value / span payload (sensor index…)
  const char* name = nullptr;
  TraceEventKind kind = TraceEventKind::kInstant;
};

/// One thread's slice of a snapshot, oldest event first.
struct TraceTrack {
  std::uint32_t tid = 0;
  std::string name;
  std::uint64_t dropped = 0;  ///< events lost to ring wrap on this track
  std::vector<TraceEvent> events;
};

struct TraceSnapshot {
  std::vector<TraceTrack> tracks;
  std::uint64_t dropped_total = 0;
};

class TraceRecorder {
 public:
  /// Events retained per thread (drop-oldest past this). 8192 × 40 B = 320 KiB
  /// per emitting thread — enough for minutes of coarse-grained fleet events.
  static constexpr std::size_t kRingCapacity = 8192;
  /// Dynamic strings interned at most (log mirroring); beyond this, events
  /// reuse a generic overflow name instead of growing without bound.
  static constexpr std::size_t kMaxInterned = 4096;

  /// The process-wide recorder (intentionally leaked, like obs::Registry, so
  /// emits from late thread exit never race static destruction).
  static TraceRecorder& instance();

  /// Collection switch (default OFF). Purely additive: the simulation
  /// datapath is identical either way — that is the determinism guarantee,
  /// not a consequence of this flag.
  static void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Appends one event to the calling thread's ring (lock-free; allocates the
  /// ring on this thread's first emit). Callers normally go through the
  /// AQUA_TRACE_* macros, which skip the call entirely while disabled.
  void emit(TraceEventKind kind, const char* name, double sim_s = kNoSimTime,
            double value = 0.0);

  /// Names the calling thread's track in exports ("pool-3", "main"). No-op
  /// while collection is disabled (avoids allocating rings that never emit).
  static void set_thread_name(std::string_view name);

  /// Copies `text` into recorder-lifetime storage and returns a pointer
  /// usable as an event name. Takes a mutex — for rare events (warn/error log
  /// mirroring), not hot paths. Past kMaxInterned entries a shared overflow
  /// name is returned instead.
  const char* intern(std::string_view text);

  /// Merges every track into one snapshot. Writers are never blocked; events
  /// a writer overtakes during the copy are dropped (counted), not torn.
  /// Scrape at quiescent points for complete results.
  [[nodiscard]] TraceSnapshot snapshot();

  /// Rewinds every ring. Callers must quiesce emitting threads first (same
  /// contract as Registry::zero()).
  void clear();

 private:
  struct Ring {
    std::array<TraceEvent, kRingCapacity> events{};
    std::atomic<std::uint64_t> write{0};
    std::uint32_t tid = 0;
    std::string name;  // guarded by the recorder mutex
  };

  TraceRecorder() = default;
  Ring& local_ring();

  static std::atomic<bool> enabled_;

  std::mutex mutex_;  // ring list + names + interning + snapshot
  std::vector<std::unique_ptr<Ring>> rings_;
  std::vector<std::unique_ptr<std::string>> interned_;
  std::uint32_t next_tid_ = 1;
};

/// RAII span on the calling thread's track. If collection is enabled at
/// construction, the end event is emitted at scope exit even if collection
/// was disabled in between — exports never see orphaned begins from the
/// kill-switch.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, double sim_s = kNoSimTime,
                      double value = 0.0) {
    if (TraceRecorder::enabled()) {
      name_ = name;
      sim_s_ = sim_s;
      TraceRecorder::instance().emit(TraceEventKind::kSpanBegin, name, sim_s,
                                     value);
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr)
      TraceRecorder::instance().emit(TraceEventKind::kSpanEnd, name_, sim_s_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  double sim_s_ = kNoSimTime;
};

// Instrumentation macros: ~1 branch per site while collection is disabled.
// `name` must be a string literal (or interned pointer).
#define AQUA_TRACE_CONCAT_INNER(a, b) a##b
#define AQUA_TRACE_CONCAT(a, b) AQUA_TRACE_CONCAT_INNER(a, b)

/// Span over the enclosing scope on the calling thread's track.
#define AQUA_TRACE_SPAN(name)                                       \
  const ::aqua::obs::ScopedSpan AQUA_TRACE_CONCAT(aqua_trace_span_, \
                                                  __LINE__) {       \
    name                                                            \
  }
/// Span dual-stamped with the simulation time at entry.
#define AQUA_TRACE_SPAN_SIM(name, sim_s)                            \
  const ::aqua::obs::ScopedSpan AQUA_TRACE_CONCAT(aqua_trace_span_, \
                                                  __LINE__) {       \
    name, sim_s                                                     \
  }

#define AQUA_TRACE_INSTANT(name)                                     \
  do {                                                               \
    if (::aqua::obs::TraceRecorder::enabled())                       \
      ::aqua::obs::TraceRecorder::instance().emit(                   \
          ::aqua::obs::TraceEventKind::kInstant, name);              \
  } while (0)
#define AQUA_TRACE_INSTANT_SIM(name, sim_s)                          \
  do {                                                               \
    if (::aqua::obs::TraceRecorder::enabled())                       \
      ::aqua::obs::TraceRecorder::instance().emit(                   \
          ::aqua::obs::TraceEventKind::kInstant, name, sim_s);       \
  } while (0)

/// Samples `value` onto a counter track (Perfetto renders it as a graph).
#define AQUA_TRACE_COUNTER(name, value)                              \
  do {                                                               \
    if (::aqua::obs::TraceRecorder::enabled())                       \
      ::aqua::obs::TraceRecorder::instance().emit(                   \
          ::aqua::obs::TraceEventKind::kCounter, name,               \
          ::aqua::obs::kNoSimTime, value);                           \
  } while (0)

}  // namespace aqua::obs
