// json.hpp — machine-readable export of an obs::Snapshot. The emitted object
// is the `metrics` block of the BENCH_fleet.json schema (see bench_fleet and
// DESIGN.md §8): counters and gauges as name→value maps, histograms as
// {edges, counts, count, sum, min, max}. Keys are sorted, doubles are printed
// round-trip exact (%.17g), so the output is stable for diffing between runs.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace aqua::obs {

/// Serialises one snapshot as a JSON object. `indent` spaces per level; the
/// result has no trailing newline.
[[nodiscard]] std::string to_json(const Snapshot& snapshot, int indent = 2);

/// Writes `text` to `path` (truncating), appending a final newline. Throws
/// std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& text);

}  // namespace aqua::obs
