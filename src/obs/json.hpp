// json.hpp — machine-readable export of an obs::Snapshot. The emitted object
// is the `metrics` block of the BENCH_fleet.json schema (see bench_fleet and
// DESIGN.md §8): counters and gauges as name→value maps, histograms as
// {edges, counts, count, sum, min, max}. Keys are sorted, doubles are printed
// round-trip exact (%.17g), so the output is stable for diffing between runs.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace aqua::obs {

/// Serialises one snapshot as a JSON object. `indent` spaces per level; the
/// result has no trailing newline.
[[nodiscard]] std::string to_json(const Snapshot& snapshot, int indent = 2);

/// Returns `s` with JSON string escaping applied (quote, backslash, and all
/// control characters below 0x20), without surrounding quotes. Shared by the
/// metrics and Chrome-trace exporters.
[[nodiscard]] std::string escape_json_string(std::string_view s);

/// Round-trip-exact double rendering (%.17g): strtod of the result yields
/// the same bits back.
[[nodiscard]] std::string json_double(double v);

/// Writes `text` to `path` (truncating), appending a final newline. Throws
/// std::runtime_error on I/O failure.
void write_file(const std::string& path, const std::string& text);

}  // namespace aqua::obs
