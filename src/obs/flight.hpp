// flight.hpp — per-sensor flight recorder: a tiny always-on blackbox ring of
// the loop events that matter when a deployed node misbehaves (fault codes,
// PI saturation entry/exit, ADC overload episodes, pulsed-drive phase
// changes, commissioning/reset marks). Where the TraceRecorder answers "what
// was the *process* doing", the flight recorder answers "what did *this
// sensor* live through" — and it keeps answering after the trace rings have
// wrapped, because fault-adjacent events are rare.
//
// Determinism contract (DESIGN.md §8/§10): events are stamped with simulation
// time only — no wall clock, no RNG, no allocation after construction — so
// recording is itself bit-reproducible and two runs of the same seed produce
// identical blackboxes. Single-threaded by design: a sensor is owned by one
// thread at a time (the fleet engine's dispatch guarantees this), so no
// atomics are needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "state/serial.hpp"

namespace aqua::obs {

enum class FlightRecordKind : std::uint8_t {
  kFault = 0,              ///< HealthMonitor raised a fault code
  kPiSaturationEnter = 1,  ///< controller output pinned at a rail
  kPiSaturationExit = 2,
  kAdcOverloadEnter = 3,   ///< ISIF channel reported clipping this frame
  kAdcOverloadExit = 4,
  kDriveOn = 5,            ///< pulsed-drive heater phase transitions
  kDriveOff = 6,
  kCommission = 7,         ///< commissioning completed (value = iterations)
  kReset = 8,              ///< sensor reset to bootstrap state
  kReboot = 9,             ///< electronics rebooted in the field (die/package
                           ///< state untouched); the supervisor's recovery move
  kFaultInjected = 10,     ///< a fault campaign injected a fault here
};

[[nodiscard]] const char* flight_kind_name(FlightRecordKind kind);

/// One blackbox entry. `label` must be a string literal (or otherwise
/// immortal) — the recorder stores the pointer, never a copy.
struct FlightEvent {
  double t_s = 0.0;  ///< simulation time of the event
  FlightRecordKind kind = FlightRecordKind::kFault;
  std::int32_t code = 0;  ///< fault code / phase detail, kind-specific
  double value = 0.0;     ///< kind-specific payload (e.g. rail the PI hit)
  const char* label = nullptr;  ///< optional human-readable note
};

/// Fixed-capacity drop-oldest event ring. Capacity is set at construction
/// and all storage is preallocated; record() never allocates or throws.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 64);

  void record(double t_s, FlightRecordKind kind, std::int32_t code = 0,
              double value = 0.0, const char* label = nullptr);

  /// Retained events, oldest first.
  [[nodiscard]] std::vector<FlightEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  void clear();

  /// Renders the blackbox as a human-readable table, one event per line,
  /// prefixed with `header` when non-empty. Intended for fault-latch dumps
  /// and `examples/diagnostics`.
  [[nodiscard]] std::string dump_text(const std::string& header = {}) const;

  /// Checkpoint support: the full ring (labels serialised by value and
  /// interned on load, since live events hold immortal pointers only).
  void save_state(state::Writer& w) const;
  void load_state(state::Reader& r);

 private:
  std::vector<FlightEvent> ring_;
  std::uint64_t write_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace aqua::obs
