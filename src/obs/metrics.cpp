#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

namespace aqua::obs {

std::atomic<bool> Registry::enabled_{true};

namespace {

/// Relaxed CAS min/max for the per-shard extrema. Only the owning thread
/// writes in practice, so the loop almost never retries.
void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// Registers `name` in `names` (idempotent); returns its slot.
std::uint32_t intern(std::vector<std::string>& names, std::string_view name,
                     std::size_t capacity, const char* kind) {
  for (std::uint32_t i = 0; i < names.size(); ++i)
    if (names[i] == name) return i;
  if (names.size() >= capacity)
    throw std::length_error(std::string("obs::Registry: too many ") + kind +
                            " metrics");
  names.emplace_back(name);
  return static_cast<std::uint32_t>(names.size() - 1);
}

}  // namespace

/// Thread-local lease on a shard: acquired on first metric write from this
/// thread, donated back to the free list on thread exit (keeping its values,
/// so totals survive the thread).
struct ShardLease {
  Registry::Shard* shard = nullptr;
  ~ShardLease() {
    if (shard != nullptr) Registry::instance().release_shard(shard);
  }
};

namespace {
thread_local ShardLease tl_lease;
}  // namespace

Registry::Registry() {
  // histogram_observe reads histogram_meta_ without the lock; fixed capacity
  // guarantees registration never reallocates under a concurrent observer.
  histogram_meta_.reserve(kMaxHistograms);
}

Registry& Registry::instance() {
  static Registry* registry = new Registry();  // leaked by design, see header
  return *registry;
}

Registry::Shard& Registry::local_shard() {
  if (tl_lease.shard == nullptr) {
    std::lock_guard lock{mutex_};
    if (!free_shards_.empty()) {
      tl_lease.shard = free_shards_.back();
      free_shards_.pop_back();
    } else {
      shards_.push_back(std::make_unique<Shard>());
      tl_lease.shard = shards_.back().get();
    }
  }
  return *tl_lease.shard;
}

void Registry::release_shard(Shard* shard) {
  std::lock_guard lock{mutex_};
  free_shards_.push_back(shard);
}

std::uint32_t Registry::register_counter(std::string_view name) {
  std::lock_guard lock{mutex_};
  return intern(counter_names_, name, kMaxCounters, "counter");
}

std::uint32_t Registry::register_gauge(std::string_view name) {
  std::lock_guard lock{mutex_};
  return intern(gauge_names_, name, kMaxGauges, "gauge");
}

std::uint32_t Registry::register_histogram(std::string_view name,
                                           const HistogramSpec& spec) {
  std::lock_guard lock{mutex_};
  const auto before = histogram_names_.size();
  const std::uint32_t slot =
      intern(histogram_names_, name, kMaxHistograms, "histogram");
  if (histogram_names_.size() == before) return slot;  // already registered

  if (!(spec.lo < spec.hi) || spec.bins < 1 || spec.bins > kMaxBins ||
      (spec.log_scale && spec.lo <= 0.0))
    throw std::invalid_argument("obs::Registry: bad histogram spec for " +
                                std::string(name));
  HistogramMeta meta;
  meta.spec = spec;
  if (spec.log_scale) {
    meta.origin = std::log10(spec.lo);
    meta.inv_width = spec.bins / (std::log10(spec.hi) - meta.origin);
  } else {
    meta.origin = spec.lo;
    meta.inv_width = spec.bins / (spec.hi - spec.lo);
  }
  meta.upper_edges.reserve(static_cast<std::size_t>(spec.bins));
  for (int b = 1; b <= spec.bins; ++b) {
    const double x = meta.origin + b / meta.inv_width;
    meta.upper_edges.push_back(spec.log_scale ? std::pow(10.0, x) : x);
  }
  meta.upper_edges.back() = spec.hi;  // exact upper bound despite rounding
  histogram_meta_.push_back(std::move(meta));
  return slot;
}

void Registry::counter_add(std::uint32_t slot, std::uint64_t delta) {
  local_shard().counters[slot].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::gauge_set(std::uint32_t slot, double value) {
  GaugeCell& cell = local_shard().gauges[slot];
  // Version before value: a torn scrape can at worst attribute a fresh value
  // to an older version, never invent one.
  const std::uint64_t v =
      gauge_sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  cell.value.store(value, std::memory_order_relaxed);
  cell.version.store(v, std::memory_order_relaxed);
}

void Registry::histogram_observe(std::uint32_t slot, double value) {
  // Binning meta is immutable after registration; read it without the lock.
  const HistogramMeta& meta = histogram_meta_[slot];
  std::size_t bucket;
  if (!(value >= meta.spec.lo)) {  // also catches NaN
    bucket = 0;
  } else if (value >= meta.spec.hi) {
    bucket = static_cast<std::size_t>(meta.spec.bins) + 1;
  } else {
    const double x = meta.spec.log_scale ? std::log10(value) : value;
    const int b = std::clamp(static_cast<int>((x - meta.origin) * meta.inv_width),
                             0, meta.spec.bins - 1);
    bucket = static_cast<std::size_t>(b) + 1;
  }
  HistogramCell& cell = local_shard().histograms[slot];
  cell.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  if (cell.count.fetch_add(1, std::memory_order_relaxed) == 0) {
    cell.min.store(value, std::memory_order_relaxed);
    cell.max.store(value, std::memory_order_relaxed);
  } else {
    atomic_min(cell.min, value);
    atomic_max(cell.max, value);
  }
  atomic_add(cell.sum, value);
}

Snapshot Registry::snapshot() {
  std::lock_guard lock{mutex_};
  Snapshot snap;

  snap.counters.resize(counter_names_.size());
  for (std::size_t i = 0; i < counter_names_.size(); ++i)
    snap.counters[i].name = counter_names_[i];
  snap.gauges.resize(gauge_names_.size());
  for (std::size_t i = 0; i < gauge_names_.size(); ++i)
    snap.gauges[i].name = gauge_names_[i];
  snap.histograms.resize(histogram_names_.size());
  for (std::size_t i = 0; i < histogram_names_.size(); ++i) {
    HistogramSnapshot& h = snap.histograms[i];
    h.name = histogram_names_[i];
    h.spec = histogram_meta_[i].spec;
    h.upper_edges = histogram_meta_[i].upper_edges;
    h.counts.assign(static_cast<std::size_t>(h.spec.bins) + 2, 0);
  }

  std::vector<std::uint64_t> gauge_versions(gauge_names_.size(), 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i < snap.counters.size(); ++i)
      snap.counters[i].value +=
          shard->counters[i].load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
      const std::uint64_t v =
          shard->gauges[i].version.load(std::memory_order_relaxed);
      if (v > gauge_versions[i]) {
        gauge_versions[i] = v;
        snap.gauges[i].value =
            shard->gauges[i].value.load(std::memory_order_relaxed);
      }
    }
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
      HistogramSnapshot& h = snap.histograms[i];
      const HistogramCell& cell = shard->histograms[i];
      const std::uint64_t n = cell.count.load(std::memory_order_relaxed);
      if (n == 0) continue;
      for (std::size_t b = 0; b < h.counts.size(); ++b)
        h.counts[b] += cell.buckets[b].load(std::memory_order_relaxed);
      const double mn = cell.min.load(std::memory_order_relaxed);
      const double mx = cell.max.load(std::memory_order_relaxed);
      if (h.count == 0 || mn < h.min) h.min = mn;
      if (h.count == 0 || mx > h.max) h.max = mx;
      h.count += n;
      h.sum += cell.sum.load(std::memory_order_relaxed);
    }
  }

  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

void Registry::zero_shard(Shard& shard) {
  for (auto& c : shard.counters) c.store(0, std::memory_order_relaxed);
  for (auto& g : shard.gauges) {
    g.value.store(0.0, std::memory_order_relaxed);
    g.version.store(0, std::memory_order_relaxed);
  }
  for (auto& h : shard.histograms) {
    for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    h.count.store(0, std::memory_order_relaxed);
    h.sum.store(0.0, std::memory_order_relaxed);
    h.min.store(0.0, std::memory_order_relaxed);
    h.max.store(0.0, std::memory_order_relaxed);
  }
}

void Registry::restore_counter(std::string_view name, std::uint64_t value) {
  const std::uint32_t slot = register_counter(name);
  Shard& mine = local_shard();  // may lock; acquire before the scrape lock
  std::uint64_t current = 0;
  {
    std::lock_guard lock{mutex_};
    for (const auto& shard : shards_)
      current += shard->counters[slot].load(std::memory_order_relaxed);
  }
  // Unsigned wrap-around makes the delta-add exact even when the current
  // merged total already exceeds the checkpointed value.
  mine.counters[slot].fetch_add(value - current, std::memory_order_relaxed);
}

void Registry::restore_gauge(std::string_view name, double value) {
  gauge_set(register_gauge(name), value);
}

void Registry::zero() {
  std::lock_guard lock{mutex_};
  for (const auto& shard : shards_) zero_shard(*shard);
  gauge_sequence_.store(0, std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(const Histogram& histogram)
    : histogram_(histogram),
      start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

ScopedTimer::~ScopedTimer() {
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  histogram_.observe(static_cast<double>(now - start_ns_) * 1e-9);
}

}  // namespace aqua::obs
