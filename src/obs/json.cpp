#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace aqua::obs {

std::string escape_json_string(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  // JSON has no NaN/Infinity literals; emitting printf's "nan"/"inf" would
  // produce a document every conforming parser rejects. A non-finite metric
  // (poisoned gauge, uninitialised min/max) becomes null so the export stays
  // machine-readable and the hole stays visible.
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

namespace {

std::string fmt_double(double v) { return json_double(v); }

std::string quote(const std::string& s) {
  return "\"" + escape_json_string(s) + "\"";
}

class Writer {
 public:
  explicit Writer(int indent) : indent_(indent) {}

  void line(const std::string& text) {
    out_.append(static_cast<std::size_t>(depth_ * indent_), ' ');
    out_ += text;
    out_.push_back('\n');
  }
  void open(const std::string& prefix, char bracket) {
    line(prefix + bracket);
    ++depth_;
  }
  void close(char bracket, bool trailing_comma) {
    --depth_;
    line(std::string(1, bracket) + (trailing_comma ? "," : ""));
  }
  [[nodiscard]] std::string str() {
    if (!out_.empty() && out_.back() == '\n') out_.pop_back();
    return std::move(out_);
  }

 private:
  std::string out_;
  int indent_;
  int depth_ = 0;
};

template <class Range, class Emit>
void emit_map(Writer& w, const std::string& key, const Range& range, Emit emit,
              bool trailing_comma) {
  w.open(quote(key) + ": ", '{');
  for (std::size_t i = 0; i < range.size(); ++i)
    emit(range[i], i + 1 < range.size());
  w.close('}', trailing_comma);
}

template <class T>
std::string array_of(const std::vector<T>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out += ", ";
    if constexpr (std::is_floating_point_v<T>)
      out += fmt_double(xs[i]);
    else
      out += std::to_string(xs[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string to_json(const Snapshot& snapshot, int indent) {
  Writer w(indent);
  w.open("", '{');

  emit_map(w, "counters", snapshot.counters,
           [&](const CounterSnapshot& c, bool comma) {
             w.line(quote(c.name) + ": " + std::to_string(c.value) +
                    (comma ? "," : ""));
           },
           true);
  emit_map(w, "gauges", snapshot.gauges,
           [&](const GaugeSnapshot& g, bool comma) {
             w.line(quote(g.name) + ": " + fmt_double(g.value) +
                    (comma ? "," : ""));
           },
           true);
  emit_map(w, "histograms", snapshot.histograms,
           [&](const HistogramSnapshot& h, bool comma) {
             w.open(quote(h.name) + ": ", '{');
             w.line("\"upper_edges\": " + array_of(h.upper_edges) + ",");
             w.line("\"counts\": " + array_of(h.counts) + ",");
             w.line("\"count\": " + std::to_string(h.count) + ",");
             w.line("\"sum\": " + fmt_double(h.sum) + ",");
             w.line("\"min\": " + fmt_double(h.count > 0 ? h.min : 0.0) + ",");
             w.line("\"max\": " + fmt_double(h.count > 0 ? h.max : 0.0));
             w.close('}', comma);
           },
           false);

  w.close('}', false);
  return w.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("obs::write_file: cannot open " + path);
  out << text << '\n';
  if (!out) throw std::runtime_error("obs::write_file: write failed for " + path);
}

}  // namespace aqua::obs
