#include "isif/firmware.hpp"

#include <stdexcept>

namespace aqua::isif {

Firmware::Firmware(const LeonSpec& leon, util::Hertz base_rate)
    : leon_(leon), base_rate_(base_rate) {
  if (base_rate.value() <= 0.0 || leon.clock.value() <= 0.0)
    throw std::invalid_argument("Firmware: bad rates");
  cycles_per_tick_budget_ = leon_.clock.value() / base_rate_.value();
}

void Firmware::add_task(std::string name, int divisor, int cycles,
                        std::function<void()> body) {
  if (divisor < 1) throw std::invalid_argument("Firmware: divisor must be >= 1");
  if (cycles < 0) throw std::invalid_argument("Firmware: negative cycle cost");
  tasks_.push_back(Task{std::move(name), divisor, cycles, std::move(body)});
}

void Firmware::inject_overrun_cycles(double cycles) {
  if (cycles < 0.0)
    throw std::invalid_argument("Firmware: negative overrun cycles");
  pending_overrun_cycles_ += cycles;
}

void Firmware::tick() {
  double tick_cycles = 0.0;
  if (pending_overrun_cycles_ > 0.0) {
    tick_cycles = pending_overrun_cycles_;
    pending_overrun_cycles_ = 0.0;
  }
  for (Task& t : tasks_) {
    if (ticks_ % t.divisor == 0) {
      t.body();
      tick_cycles += t.cycles;
    }
  }
  ++ticks_;
  total_cycles_ += tick_cycles;
  if (tick_cycles > peak_tick_cycles_) peak_tick_cycles_ = tick_cycles;
  if (tick_cycles > cycles_per_tick_budget_) watchdog_ = true;
}

void Firmware::reset() {
  ticks_ = 0;
  total_cycles_ = 0.0;
  peak_tick_cycles_ = 0.0;
  pending_overrun_cycles_ = 0.0;
  watchdog_ = false;
}

double Firmware::average_load() const {
  if (ticks_ == 0) return 0.0;
  return total_cycles_ / (static_cast<double>(ticks_) * cycles_per_tick_budget_);
}

double Firmware::peak_load() const {
  return peak_tick_cycles_ / cycles_per_tick_budget_;
}

}  // namespace aqua::isif
