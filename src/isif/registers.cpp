#include "isif/registers.hpp"

#include <stdexcept>

namespace aqua::isif {

void RegisterFile::define(const std::string& reg, std::vector<FieldSpec> fields) {
  if (regs_.count(reg))
    throw std::invalid_argument("RegisterFile: duplicate register " + reg);
  for (const auto& f : fields) {
    if (f.lsb < 0 || f.width <= 0 || f.lsb + f.width > 32)
      throw std::invalid_argument("RegisterFile: bad field geometry in " + reg);
  }
  regs_[reg] = Register{0, std::move(fields)};
}

bool RegisterFile::has(const std::string& reg) const { return regs_.count(reg); }

const RegisterFile::Register& RegisterFile::get(const std::string& reg) const {
  const auto it = regs_.find(reg);
  if (it == regs_.end())
    throw std::out_of_range("RegisterFile: unknown register " + reg);
  return it->second;
}

RegisterFile::Register& RegisterFile::get(const std::string& reg) {
  return const_cast<Register&>(static_cast<const RegisterFile*>(this)->get(reg));
}

void RegisterFile::write_raw(const std::string& reg, std::uint32_t value) {
  get(reg).value = value;
}

std::uint32_t RegisterFile::read_raw(const std::string& reg) const {
  return get(reg).value;
}

const FieldSpec& RegisterFile::find_field(const Register& r,
                                          const std::string& reg,
                                          const std::string& field) {
  for (const auto& f : r.fields)
    if (f.name == field) return f;
  throw std::out_of_range("RegisterFile: unknown field " + reg + "." + field);
}

void RegisterFile::write_field(const std::string& reg, const std::string& field,
                               std::uint32_t value) {
  Register& r = get(reg);
  const FieldSpec& f = find_field(r, reg, field);
  const std::uint32_t mask =
      f.width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << f.width) - 1);
  if (value > mask)
    throw std::invalid_argument("RegisterFile: value does not fit " + reg + "." +
                                field);
  r.value = (r.value & ~(mask << f.lsb)) | (value << f.lsb);
}

std::uint32_t RegisterFile::read_field(const std::string& reg,
                                       const std::string& field) const {
  const Register& r = get(reg);
  const FieldSpec& f = find_field(r, reg, field);
  const std::uint32_t mask =
      f.width == 32 ? 0xFFFFFFFFu : ((std::uint32_t{1} << f.width) - 1);
  return (r.value >> f.lsb) & mask;
}

std::vector<std::string> RegisterFile::register_names() const {
  std::vector<std::string> names;
  names.reserve(regs_.size());
  for (const auto& [name, _] : regs_) names.push_back(name);
  return names;
}

}  // namespace aqua::isif
