// firmware.hpp — the LEON firmware scheduler. Control laws register as
// periodic tasks at divisors of the channel output rate; the scheduler runs
// them, accounts their declared cycle cost against the CPU budget and trips a
// watchdog if a tick's work exceeds the cycle budget of one period (the
// real-time feasibility check behind the paper's claim that software IPs give
// the LEON "required computational power for real-time implementation").
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "state/serial.hpp"
#include "util/units.hpp"

namespace aqua::isif {

struct LeonSpec {
  util::Hertz clock = util::hertz(40e6);  ///< 0.35 µm-era LEON system clock
};

class Firmware {
 public:
  /// `base_rate` is the rate at which tick() is called (the decimated channel
  /// rate in the MAF application).
  Firmware(const LeonSpec& leon, util::Hertz base_rate);

  /// Registers a task that runs every `divisor` base ticks and reports
  /// costing `cycles` per invocation (use the IP blocks' cycles_per_sample).
  void add_task(std::string name, int divisor, int cycles,
                std::function<void()> body);

  /// Runs due tasks for this base tick.
  void tick();

  /// Clears the tick counter, load accounting, watchdog and any pending
  /// injected overrun; the registered task table (configuration, not state)
  /// is kept.
  void reset();

  /// Fault-injection port (src/fault): steals `cycles` extra cycles on the
  /// next tick (a runaway interrupt handler). If the stolen cycles push the
  /// tick past the per-period budget the watchdog latches through the normal
  /// accounting path; reset() (a reboot) clears it.
  void inject_overrun_cycles(double cycles);

  /// Average CPU load (fraction of available cycles) since construction.
  [[nodiscard]] double average_load() const;
  /// Worst single-tick load observed.
  [[nodiscard]] double peak_load() const;
  /// True once any tick exceeded the per-period cycle budget.
  [[nodiscard]] bool watchdog_tripped() const { return watchdog_; }

  [[nodiscard]] util::Hertz base_rate() const { return base_rate_; }
  [[nodiscard]] long long ticks() const { return ticks_; }

  /// Checkpoint support: tick counter, load accounting, pending overrun and
  /// watchdog. The task table is configuration and is rebuilt by the owner.
  void save_state(state::Writer& w) const {
    w.i64(ticks_);
    w.f64(total_cycles_);
    w.f64(peak_tick_cycles_);
    w.f64(pending_overrun_cycles_);
    w.boolean(watchdog_);
  }
  void load_state(state::Reader& r) {
    ticks_ = r.i64();
    total_cycles_ = r.f64();
    peak_tick_cycles_ = r.f64();
    pending_overrun_cycles_ = r.f64();
    watchdog_ = r.boolean();
  }

 private:
  struct Task {
    std::string name;
    int divisor;
    int cycles;
    std::function<void()> body;
  };

  LeonSpec leon_;
  util::Hertz base_rate_;
  double cycles_per_tick_budget_;
  std::vector<Task> tasks_;
  long long ticks_ = 0;
  double total_cycles_ = 0.0;
  double peak_tick_cycles_ = 0.0;
  double pending_overrun_cycles_ = 0.0;
  bool watchdog_ = false;
};

}  // namespace aqua::isif
