// platform.hpp — the ISIF platform SoC model (paper §3, Fig. 3): four analog
// input channels, six thermometer-DAC drive outputs (four 12-bit, two
// 10-bit), the LEON firmware scheduler, and the configuration register file
// that crosses the digital/analog boundary. This is the composition root the
// MAF application wires its loop onto.
#pragma once

#include <array>
#include <memory>

#include "isif/channel.hpp"
#include "isif/dac_ctrl.hpp"
#include "isif/firmware.hpp"
#include "isif/registers.hpp"
#include "util/rng.hpp"

namespace aqua::isif {

struct IsifConfig {
  ChannelConfig channel{};
  analog::ThermometerDacSpec dac12{12, util::volts(8.0), 2e-4,
                                   util::Seconds{2e-6}};
  analog::ThermometerDacSpec dac10{10, util::volts(8.0), 2e-4,
                                   util::Seconds{2e-6}};
  LeonSpec leon{};
  int dac_slew_codes = 0;  ///< per-update DAC slew limit (0 = off)
};

class Isif {
 public:
  static constexpr int kChannelCount = 4;
  static constexpr int kDacCount = 6;  ///< 0..3 are 12-bit, 4..5 are 10-bit

  Isif(const IsifConfig& config, util::Rng rng);

  [[nodiscard]] InputChannel& channel(int index);
  [[nodiscard]] DacController& dac(int index);
  [[nodiscard]] Firmware& firmware() { return firmware_; }
  [[nodiscard]] const Firmware& firmware() const { return firmware_; }
  [[nodiscard]] RegisterFile& registers() { return regs_; }
  [[nodiscard]] const IsifConfig& config() const { return config_; }

  /// Pushes the CHn_CFG register fields (gain_sel: gain = 2^sel) into the
  /// analog blocks — the JLCC-style configuration crossing.
  void apply_registers();

  /// Platform-wide return to the post-construction state: all channels, all
  /// DAC controllers and the firmware scheduler. Register contents and the
  /// per-part mismatch draws persist, as they would through a chip reset.
  void reset();

  /// Checkpoint support: all channels, DAC controllers, firmware accounting
  /// and register contents.
  void save_state(state::Writer& w) const {
    for (const auto& ch : channels_) ch->save_state(w);
    for (const auto& dac : dacs_) dac->save_state(w);
    firmware_.save_state(w);
    regs_.save_state(w);
  }
  void load_state(state::Reader& r) {
    for (const auto& ch : channels_) ch->load_state(r);
    for (const auto& dac : dacs_) dac->load_state(r);
    firmware_.load_state(r);
    regs_.load_state(r);
  }

 private:
  IsifConfig config_;
  std::array<std::unique_ptr<InputChannel>, kChannelCount> channels_;
  std::array<std::unique_ptr<DacController>, kDacCount> dacs_;
  Firmware firmware_;
  RegisterFile regs_;
};

}  // namespace aqua::isif
