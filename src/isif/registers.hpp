// registers.hpp — the ISIF configuration register file. The platform's analog
// blocks are configured through digital words shipped across the JLCC-style
// digital/analog boundary (paper §3); this model keeps a flat map of named
// 32-bit registers with declared bit-fields so firmware and tests configure
// the channel the way the real part would (field writes, read-back,
// out-of-range rejection).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "state/serial.hpp"

namespace aqua::isif {

struct FieldSpec {
  std::string name;
  int lsb;    ///< least significant bit position
  int width;  ///< bits
};

class RegisterFile {
 public:
  /// Declares a register with its fields; initial raw value 0.
  void define(const std::string& reg, std::vector<FieldSpec> fields);

  [[nodiscard]] bool has(const std::string& reg) const;

  void write_raw(const std::string& reg, std::uint32_t value);
  [[nodiscard]] std::uint32_t read_raw(const std::string& reg) const;

  /// Writes one named field; throws if the value does not fit the field.
  void write_field(const std::string& reg, const std::string& field,
                   std::uint32_t value);
  [[nodiscard]] std::uint32_t read_field(const std::string& reg,
                                         const std::string& field) const;

  [[nodiscard]] std::vector<std::string> register_names() const;

  /// Checkpoint support: name → raw value pairs. Field declarations are
  /// configuration; a loaded name that was never define()d is corruption.
  void save_state(state::Writer& w) const {
    w.size(regs_.size());
    for (const auto& [name, reg] : regs_) {
      w.str(name);
      w.u32(reg.value);
    }
  }
  void load_state(state::Reader& r) {
    const std::size_t n = r.size(12);
    if (n != regs_.size())
      throw state::Error("RegisterFile: register count mismatch");
    for (std::size_t i = 0; i < n; ++i) {
      const std::string name = r.str();
      const auto it = regs_.find(name);
      if (it == regs_.end())
        throw state::Error("RegisterFile: unknown register " + name);
      it->second.value = r.u32();
    }
  }

 private:
  struct Register {
    std::uint32_t value = 0;
    std::vector<FieldSpec> fields;
  };
  const Register& get(const std::string& reg) const;
  Register& get(const std::string& reg);
  static const FieldSpec& find_field(const Register& r, const std::string& reg,
                                     const std::string& field);

  std::map<std::string, Register> regs_;
};

}  // namespace aqua::isif
