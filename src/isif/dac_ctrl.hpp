// dac_ctrl.hpp — DAC controller IP. The ISIF digital section exposes "6 DAC
// controllers" that move words from the control loop to the thermometer DACs;
// this model adds the register interface and an optional slew limit (codes
// per update) that the hardware uses to keep the bridge supply glitch-free.
#pragma once

#include "analog/dac.hpp"
#include "state/serial.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::isif {

class DacController {
 public:
  DacController(const analog::ThermometerDacSpec& spec, util::Rng rng,
                int max_step_codes = 0);  ///< 0 = unlimited slew

  /// Requests a target code; the controller slews toward it on update().
  void request_code(int code);
  void request_voltage(util::Volts v);

  /// One control-rate update (applies slew limiting), then `dt` of analog
  /// settling; returns the DAC output voltage.
  util::Volts update(util::Seconds dt);

  /// Post-construction state: target 0 and the DAC's own reset. A supply
  /// droop (environmental, see set_supply_droop) is not cleared — a chip
  /// reset does not restore a browned-out rail.
  void reset();

  /// Fault-injection port (src/fault): scales the analog output rail by
  /// `factor` in (0, 1] — a supply brownout. 1.0 restores the nominal rail;
  /// at 1.0 the output path executes no extra floating-point operation, so a
  /// compiled-in-but-inactive brownout cannot perturb the bitstream.
  void set_supply_droop(double factor);
  [[nodiscard]] double supply_droop() const { return droop_; }

  [[nodiscard]] int current_code() const { return dac_.code(); }
  [[nodiscard]] int target_code() const { return target_; }
  [[nodiscard]] const analog::ThermometerDac& dac() const { return dac_; }

  /// Checkpoint support: DAC state, slew target and supply droop (the droop
  /// survives reset, so it must survive a crash too).
  void save_state(state::Writer& w) const {
    dac_.save_state(w);
    w.i32(target_);
    w.f64(droop_);
  }
  void load_state(state::Reader& r) {
    dac_.load_state(r);
    target_ = r.i32();
    droop_ = r.f64();
  }

 private:
  analog::ThermometerDac dac_;
  int target_ = 0;
  int max_step_;
  double droop_ = 1.0;
};

}  // namespace aqua::isif
