// dac_ctrl.hpp — DAC controller IP. The ISIF digital section exposes "6 DAC
// controllers" that move words from the control loop to the thermometer DACs;
// this model adds the register interface and an optional slew limit (codes
// per update) that the hardware uses to keep the bridge supply glitch-free.
#pragma once

#include "analog/dac.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::isif {

class DacController {
 public:
  DacController(const analog::ThermometerDacSpec& spec, util::Rng rng,
                int max_step_codes = 0);  ///< 0 = unlimited slew

  /// Requests a target code; the controller slews toward it on update().
  void request_code(int code);
  void request_voltage(util::Volts v);

  /// One control-rate update (applies slew limiting), then `dt` of analog
  /// settling; returns the DAC output voltage.
  util::Volts update(util::Seconds dt);

  /// Post-construction state: target 0 and the DAC's own reset.
  void reset();

  [[nodiscard]] int current_code() const { return dac_.code(); }
  [[nodiscard]] int target_code() const { return target_; }
  [[nodiscard]] const analog::ThermometerDac& dac() const { return dac_; }

 private:
  analog::ThermometerDac dac_;
  int target_ = 0;
  int max_step_;
};

}  // namespace aqua::isif
