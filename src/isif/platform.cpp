#include "isif/platform.hpp"

#include <stdexcept>
#include <string>

namespace aqua::isif {

Isif::Isif(const IsifConfig& config, util::Rng rng)
    : config_(config),
      firmware_(config.leon, util::Hertz{config.channel.modulator_clock.value() /
                                         config.channel.decimation}) {
  for (int i = 0; i < kChannelCount; ++i)
    channels_[i] = std::make_unique<InputChannel>(config.channel, rng.split());
  for (int i = 0; i < kDacCount; ++i) {
    const auto& spec = (i < 4) ? config.dac12 : config.dac10;
    dacs_[i] = std::make_unique<DacController>(spec, rng.split(),
                                               config.dac_slew_codes);
  }
  for (int i = 0; i < kChannelCount; ++i) {
    regs_.define("CH" + std::to_string(i) + "_CFG",
                 {FieldSpec{"gain_sel", 0, 3}, FieldSpec{"enable", 3, 1}});
  }
  regs_.define("DAC_CFG", {FieldSpec{"slew_limit", 0, 12}});
}

InputChannel& Isif::channel(int index) {
  if (index < 0 || index >= kChannelCount)
    throw std::out_of_range("Isif: channel index");
  return *channels_[index];
}

DacController& Isif::dac(int index) {
  if (index < 0 || index >= kDacCount)
    throw std::out_of_range("Isif: dac index");
  return *dacs_[index];
}

void Isif::reset() {
  for (auto& ch : channels_) ch->reset();
  for (auto& dac : dacs_) dac->reset();
  firmware_.reset();
}

void Isif::apply_registers() {
  for (int i = 0; i < kChannelCount; ++i) {
    const auto sel =
        regs_.read_field("CH" + std::to_string(i) + "_CFG", "gain_sel");
    channels_[i]->set_gain(static_cast<double>(1u << sel));
  }
}

}  // namespace aqua::isif
