// ip.hpp — the ISIF hardware-IP / software-IP duality (paper §3): every DSP
// block exists both as dedicated silicon and as a LEON software routine "with
// an exact matching with hardware devices", so a control law validated in
// firmware can be moved to hardware "with low risks". Three implementations
// are modelled:
//
//   kHardwareFixed — the silicon datapath: Q23 fixed-point, zero CPU cost;
//   kSoftwareFixed — the bit-exact emulation routine: same Q23 math on the
//                    LEON, costs cycles (this is the paper's "exact match");
//   kSoftwareFloat — a quick-prototyping float routine: cheapest to write,
//                    costs cycles and does NOT bit-match the silicon.
//
// Experiment E12 quantifies both the match and the LEON cycle budget.
#pragma once

#include <memory>
#include <vector>

#include "dsp/biquad.hpp"
#include "dsp/fixed_point.hpp"
#include "dsp/pid.hpp"
#include "util/units.hpp"

namespace aqua::isif {

enum class IpImpl { kHardwareFixed, kSoftwareFixed, kSoftwareFloat };

/// LEON-2-class cycle costs per processed sample (SPARC V8 with the hardware
/// MUL/DIV the paper highlights). Rough figures from integer DSP kernels.
struct CycleCosts {
  int per_biquad_section = 42;
  int per_fir_tap = 7;
  int pi_controller = 65;
  int sample_overhead = 30;  ///< load/store/loop per task invocation
};

/// A second-order-sections IIR that can run as any of the three
/// implementations. Fixed-point variants quantise coefficients and state to
/// Q23 so hardware and bit-exact software produce identical codes.
class IirIp {
 public:
  IirIp(std::vector<dsp::BiquadCoefficients> sections, IpImpl impl,
        const CycleCosts& costs = {});

  double process(double x);
  void reset();

  [[nodiscard]] IpImpl implementation() const { return impl_; }
  /// LEON cycles consumed per sample (0 for the hardware IP).
  [[nodiscard]] int cycles_per_sample() const;

  /// Checkpoint support: both paths' delay states (only one is live per
  /// implementation, but saving both keeps the format implementation-blind).
  void save_state(state::Writer& w) const {
    float_path_.save_state(w);
    w.size(fixed_path_.size());
    for (const FixedSection& s : fixed_path_) {
      w.i32(s.s1.raw());
      w.i32(s.s2.raw());
    }
  }
  void load_state(state::Reader& r) {
    float_path_.load_state(r);
    if (r.size(8) != fixed_path_.size())
      throw state::Error("IirIp: fixed section count mismatch");
    for (FixedSection& s : fixed_path_) {
      s.s1 = dsp::Q23::from_raw(r.i32());
      s.s2 = dsp::Q23::from_raw(r.i32());
    }
  }

 private:
  struct FixedSection {
    dsp::Q23 b0, b1, b2, a1, a2;
    dsp::Q23 s1{}, s2{};
  };
  IpImpl impl_;
  CycleCosts costs_;
  dsp::BiquadCascade float_path_;
  std::vector<FixedSection> fixed_path_;
  std::size_t section_count_;
};

/// PI controller IP with the same three implementations.
class PiIp {
 public:
  PiIp(const dsp::PidGains& gains, const dsp::PidLimits& limits,
       util::Hertz rate, IpImpl impl, const CycleCosts& costs = {});

  double update(double error);
  /// Bumpless restart: the next update() with error ≈ `error` reproduces
  /// `output` (clamped). See dsp::PidController::reset for the
  /// back-calculation; the fixed path applies the same identity in Q23.
  void reset(double output = 0.0, double error = 0.0);

  [[nodiscard]] IpImpl implementation() const { return impl_; }
  [[nodiscard]] int cycles_per_sample() const;
  [[nodiscard]] double output() const;

  /// Checkpoint support: float-path controller, Q23 integrator, last output.
  void save_state(state::Writer& w) const {
    float_path_.save_state(w);
    w.i32(integral_.raw());
    w.f64(last_output_);
  }
  void load_state(state::Reader& r) {
    float_path_.load_state(r);
    integral_ = dsp::Q23::from_raw(r.i32());
    last_output_ = r.f64();
  }

 private:
  IpImpl impl_;
  CycleCosts costs_;
  dsp::PidController float_path_;
  // Fixed path state (Q23 integrator, quantised gains).
  dsp::Q23 ki_dt_{}, kp_{};
  dsp::Q23 integral_{};
  double out_min_, out_max_;
  double last_output_ = 0.0;
};

}  // namespace aqua::isif
