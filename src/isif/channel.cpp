#include "isif/channel.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace aqua::isif {

namespace {
// Channel-level telemetry: decimated samples produced and modulator-overload
// blocks observed. Counters only read state the datapath already computes, so
// enabling them cannot perturb the bitstream (DESIGN.md §8).
const obs::Counter kSamples{"isif.channel.samples"};
const obs::Counter kOverloadBlocks{"isif.channel.overload_blocks"};
}  // namespace

using util::Hertz;
using util::Kelvin;
using util::Seconds;
using util::Volts;

InputChannel::InputChannel(const ChannelConfig& config, util::Rng rng)
    : config_(config),
      amp_(config.amp, config.modulator_clock, rng.split()),
      lpf_(config.anti_alias_cutoff, config.anti_alias_poles),
      adc_(config.adc, rng.split()),
      cic_(config.cic_order, config.decimation) {
  if (config.modulator_clock.value() <= 0.0)
    throw std::invalid_argument("InputChannel: bad modulator clock");
  if (config.output_bits < 8 || config.output_bits > 24)
    throw std::invalid_argument("InputChannel: output bits out of range [8,24]");
}

std::optional<ChannelSample> InputChannel::tick(Volts differential_input,
                                                Kelvin ambient) {
  const Seconds dt = tick_period();
  const double amplified = amp_.step(differential_input, dt, ambient);
  const double filtered = lpf_.step(amplified, dt);
  const int bit = adc_.step(Volts{filtered});
  overload_latch_ = overload_latch_ || adc_.overloaded();

  const auto decimated = cic_.push(static_cast<double>(bit));
  if (!decimated) return std::nullopt;

  // CIC output is the recovered signal normalised to ±1 of the ADC full
  // scale; quantise to the channel's output word.
  const double normalised = *decimated;
  const std::int32_t code =
      dsp::quantize_code(normalised, 1.0, config_.output_bits);
  const double adc_input_volts =
      dsp::dequantize_code(code, config_.adc.full_scale.value(),
                           config_.output_bits);
  ChannelSample sample{code, adc_input_volts / amp_.gain(), overload_latch_};
  kSamples.add(1);
  if (overload_latch_) kOverloadBlocks.add(1);
  overload_latch_ = false;
  return sample;
}

Hertz InputChannel::output_rate() const {
  return Hertz{config_.modulator_clock.value() / config_.decimation};
}

Seconds InputChannel::tick_period() const {
  return Seconds{1.0 / config_.modulator_clock.value()};
}

Volts InputChannel::input_referred_lsb() const {
  return Volts{dsp::lsb_size(config_.adc.full_scale.value(),
                             config_.output_bits) /
               amp_.gain()};
}

void InputChannel::reset() {
  amp_.reset();
  lpf_.reset();
  adc_.reset();
  cic_.reset();
  overload_latch_ = false;
}

}  // namespace aqua::isif
