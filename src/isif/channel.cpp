#include "isif/channel.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace aqua::isif {

namespace {
// Channel-level telemetry: decimated samples produced and modulator-overload
// blocks observed. Counters only read state the datapath already computes, so
// enabling them cannot perturb the bitstream (DESIGN.md §8).
const obs::Counter kSamples{"isif.channel.samples"};
const obs::Counter kOverloadBlocks{"isif.channel.overload_blocks"};
}  // namespace

using util::Hertz;
using util::Kelvin;
using util::Seconds;
using util::Volts;

InputChannel::InputChannel(const ChannelConfig& config, util::Rng rng)
    : config_(config),
      amp_(config.amp, config.modulator_clock, rng.split()),
      lpf_(config.anti_alias_cutoff, config.anti_alias_poles),
      adc_(config.adc, rng.split()),
      cic_(config.cic_order, config.decimation) {
  if (config.modulator_clock.value() <= 0.0)
    throw std::invalid_argument("InputChannel: bad modulator clock");
  if (config.output_bits < 8 || config.output_bits > 24)
    throw std::invalid_argument("InputChannel: output bits out of range [8,24]");
}

ChannelSample InputChannel::make_sample(double normalised) {
  // Injected front-end offset drift, referred to the channel input. Guarded
  // so the healthy path runs zero extra FP operations (adding 0.0 would flip
  // the sign bit of a −0.0 sample and break bit-reproducibility).
  if (fault_.offset_volts != 0.0)
    normalised +=
        fault_.offset_volts * amp_.gain() / config_.adc.full_scale.value();
  // CIC output is the recovered signal normalised to ±1 of the ADC full
  // scale; quantise to the channel's output word.
  std::int32_t code = dsp::quantize_code(normalised, 1.0, config_.output_bits);
  if (fault_.stuck_high != 0 || fault_.stuck_low != 0) {
    // Stuck bits act on the offset-binary word the readout register holds.
    const std::uint32_t half = 1u << (config_.output_bits - 1);
    std::uint32_t raw =
        static_cast<std::uint32_t>(code + static_cast<std::int32_t>(half));
    raw |= fault_.stuck_high;
    raw &= ~fault_.stuck_low;
    raw &= (half << 1) - 1;
    code = static_cast<std::int32_t>(raw) - static_cast<std::int32_t>(half);
  }
  const double adc_input_volts =
      dsp::dequantize_code(code, config_.adc.full_scale.value(),
                           config_.output_bits);
  ChannelSample sample{code, adc_input_volts / amp_.gain(), overload_latch_};
  kSamples.add(1);
  if (overload_latch_) kOverloadBlocks.add(1);
  // Overload *episodes* (runs of overloaded frames) on the trace timeline;
  // the counter above already totals the individual blocks.
  if (overload_latch_ != overload_episode_) {
    if (overload_latch_)
      AQUA_TRACE_INSTANT("isif.channel.overload_begin");
    else
      AQUA_TRACE_INSTANT("isif.channel.overload_end");
    overload_episode_ = overload_latch_;
  }
  overload_latch_ = false;
  return sample;
}

std::optional<ChannelSample> InputChannel::tick(Volts differential_input,
                                                Kelvin ambient) {
  const Seconds dt = tick_period();
  const double amplified = amp_.step(differential_input, dt, ambient);
  const double filtered = lpf_.step(amplified, dt);
  const int bit = adc_.step(Volts{filtered});
  overload_latch_ = overload_latch_ || adc_.overloaded();
  if (++frame_phase_ >= config_.decimation) frame_phase_ = 0;

  const auto decimated = cic_.push(static_cast<double>(bit));
  if (!decimated) return std::nullopt;
  return make_sample(*decimated);
}

InputChannel::FrameKernels InputChannel::begin_frame(Kelvin ambient) {
  if (frame_phase_ != 0)
    throw std::logic_error(
        "InputChannel: process_frame needs a frame-aligned channel "
        "(frame_phase() == 0); advance with tick() to the boundary first");
  const Seconds dt = tick_period();
  return FrameKernels{amp_.begin_noise_block(), adc_.begin_dither_block(),
                      amp_.begin_block(dt, ambient), lpf_.begin_block(dt),
                      adc_.begin_block(), cic_.begin_block()};
}

ChannelSample InputChannel::commit_frame(const FrameKernels& k,
                                         double decimated) {
  amp_.commit_noise_block(k.noise);
  adc_.commit_dither_block(k.dither);
  amp_.commit_block(k.amp);
  lpf_.commit_block(k.rc);
  adc_.commit_block(k.adc);
  cic_.commit_block(k.cic);
  overload_latch_ = overload_latch_ || k.adc.any_overload;
  return make_sample(decimated);
}

ChannelSample InputChannel::process_frame(
    std::span<const double> differential_volts, Kelvin ambient) {
  if (differential_volts.size() !=
      static_cast<std::size_t>(config_.decimation))
    throw std::logic_error("InputChannel: frame size must equal decimation");

  FrameKernels k = begin_frame(ambient);
  const std::size_t n = differential_volts.size();

  // Fully fused sample-major loop: per sample the draws and stages run in
  // exactly the order (and with exactly the FP operations) of tick() — white,
  // flicker, amp, RC, dither, ΣΔ, CIC — but on register-resident kernel state
  // with every loop-invariant hoisted and no per-stage staging buffers.
  // Sample-major matters for throughput: the stage recurrences (amp pole, RC
  // poles, ΣΔ integrators) overlap like a systolic pipeline instead of
  // serialising stage by stage, and the noise draws hide under the recurrence
  // latency.
  double decimated = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double white = k.noise.white.draw();
    const double flicker = k.noise.flicker.draw();
    const double amplified = k.amp.step(differential_volts[i], white, flicker);
    const double filtered = k.rc.step(amplified);
    const double bit = k.adc.step(filtered, k.dither.draw());
    if (k.cic.push_bit(bit)) decimated = emit_frame_output(k.cic);
  }
  return commit_frame(k, decimated);
}

Hertz InputChannel::output_rate() const {
  return Hertz{config_.modulator_clock.value() / config_.decimation};
}

Seconds InputChannel::tick_period() const {
  return Seconds{1.0 / config_.modulator_clock.value()};
}

Volts InputChannel::input_referred_lsb() const {
  return Volts{dsp::lsb_size(config_.adc.full_scale.value(),
                             config_.output_bits) /
               amp_.gain()};
}

void InputChannel::reset() {
  amp_.reset();
  lpf_.reset();
  adc_.reset();
  cic_.reset();
  overload_latch_ = false;
  overload_episode_ = false;
  frame_phase_ = 0;
}

}  // namespace aqua::isif
