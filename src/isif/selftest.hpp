// selftest.hpp — built-in self-test over the ISIF test bus. The platform
// provides "an input/output test bus ... to supply stimuli and to probe
// output signals for each block" (paper §3); pairing the sine-generator IP
// with a Goertzel detector lets firmware verify an input channel's whole
// conversion chain (amp → LPF → ΣΔ → CIC) without touching the sensor — the
// diagnostic a field-deployed water meter runs at power-up.
#pragma once

#include "dsp/goertzel.hpp"
#include "dsp/nco.hpp"
#include "isif/channel.hpp"
#include "util/units.hpp"

namespace aqua::isif {

struct ChannelSelfTest {
  util::Hertz tone = util::hertz(100.0);      ///< must be « output rate / 2
  util::Volts amplitude = util::millivolts(5.0);
  int periods = 40;                           ///< integration length
  double gain_tolerance = 0.05;               ///< pass window on |H|, ±5 %
};

struct ChannelSelfTestResult {
  double measured_gain;  ///< channel transfer at the tone (input-referred ≈ 1)
  double gain_error;     ///< measured_gain − 1
  bool pass;
};

/// Drives the channel input from the sine IP and measures the decimated
/// output with Goertzel. The channel is reset afterwards so normal operation
/// resumes cleanly.
[[nodiscard]] ChannelSelfTestResult run_channel_self_test(
    InputChannel& channel, const ChannelSelfTest& config = {});

}  // namespace aqua::isif
