#include "isif/ip.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace aqua::isif {

using dsp::Q23;

namespace {
// CTA-loop PI telemetry: output-clamp events and anti-windup holds (ticks
// where the conditional integrator discarded its increment). Observers only —
// they never feed back into the control arithmetic.
const obs::Counter kPiSaturation{"cta.pi.saturation_events"};
const obs::Counter kPiAntiWindup{"cta.pi.antiwindup_holds"};
}  // namespace

IirIp::IirIp(std::vector<dsp::BiquadCoefficients> sections, IpImpl impl,
             const CycleCosts& costs)
    : impl_(impl),
      costs_(costs),
      float_path_(sections),
      section_count_(sections.size()) {
  if (sections.empty()) throw std::invalid_argument("IirIp: no sections");
  for (const auto& c : sections) {
    FixedSection f;
    f.b0 = Q23::from_double(c.b0);
    f.b1 = Q23::from_double(c.b1);
    f.b2 = Q23::from_double(c.b2);
    f.a1 = Q23::from_double(c.a1);
    f.a2 = Q23::from_double(c.a2);
    fixed_path_.push_back(f);
  }
}

double IirIp::process(double x) {
  if (impl_ == IpImpl::kSoftwareFloat) return float_path_.process(x);
  // Q23 transposed direct form II — the silicon datapath and its bit-exact
  // software twin run exactly this code.
  Q23 v = Q23::from_double(x);
  for (auto& s : fixed_path_) {
    const Q23 y = s.b0 * v + s.s1;
    s.s1 = s.b1 * v - s.a1 * y + s.s2;
    s.s2 = s.b2 * v - s.a2 * y;
    v = y;
  }
  return v.to_double();
}

void IirIp::reset() {
  float_path_.reset();
  for (auto& s : fixed_path_) {
    s.s1 = Q23{};
    s.s2 = Q23{};
  }
}

int IirIp::cycles_per_sample() const {
  if (impl_ == IpImpl::kHardwareFixed) return 0;
  return costs_.sample_overhead +
         costs_.per_biquad_section * static_cast<int>(section_count_);
}

PiIp::PiIp(const dsp::PidGains& gains, const dsp::PidLimits& limits,
           util::Hertz rate, IpImpl impl, const CycleCosts& costs)
    : impl_(impl),
      costs_(costs),
      float_path_(gains, limits, rate),
      out_min_(limits.out_min),
      out_max_(limits.out_max) {
  kp_ = Q23::from_double(gains.kp);
  ki_dt_ = Q23::from_double(gains.ki / rate.value());
}

double PiIp::update(double error) {
  if (impl_ == IpImpl::kSoftwareFloat) {
    const double integral_before = float_path_.integrator();
    last_output_ = float_path_.update(error);
    if (last_output_ >= out_max_ || last_output_ <= out_min_) {
      kPiSaturation.add(1);
      if (float_path_.integrator() == integral_before) kPiAntiWindup.add(1);
    }
    return last_output_;
  }
  const Q23 e = Q23::from_double(error);
  const Q23 tentative = integral_ + ki_dt_ * e;
  double u = (kp_ * e + tentative).to_double();
  if (u > out_max_) {
    u = out_max_;
    if ((ki_dt_ * e).to_double() < 0.0)
      integral_ = tentative;
    else
      kPiAntiWindup.add(1);
    kPiSaturation.add(1);
  } else if (u < out_min_) {
    u = out_min_;
    if ((ki_dt_ * e).to_double() > 0.0)
      integral_ = tentative;
    else
      kPiAntiWindup.add(1);
    kPiSaturation.add(1);
  } else {
    integral_ = tentative;
  }
  last_output_ = u;
  return u;
}

void PiIp::reset(double output, double error) {
  float_path_.reset(output, error);
  const double u = std::clamp(output, out_min_, out_max_);
  // Same back-calculation as the float path, in the datapath's own Q23
  // arithmetic so hardware and bit-exact software resume identically.
  integral_ = Q23::from_double(u) - kp_ * Q23::from_double(error);
  last_output_ = u;
}

int PiIp::cycles_per_sample() const {
  if (impl_ == IpImpl::kHardwareFixed) return 0;
  return costs_.sample_overhead + costs_.pi_controller;
}

double PiIp::output() const { return last_output_; }

}  // namespace aqua::isif
