// channel.hpp — one ISIF analog input channel (paper Fig. 4): readout stage
// programmed as an instrument amplifier, analog low-pass for anti-aliasing, a
// 16-bit ΣΔ ADC, and the digital decimation that recovers the word. The
// channel runs at the modulator clock; a decimated sample (signed code +
// engineering value) pops out every `decimation` ticks.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "analog/amplifier.hpp"
#include "analog/rc_filter.hpp"
#include "analog/sigma_delta.hpp"
#include "dsp/cic.hpp"
#include "dsp/fixed_point.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::isif {

struct ChannelConfig {
  analog::InstrumentAmpSpec amp{};
  util::Hertz anti_alias_cutoff = util::hertz(20e3);
  int anti_alias_poles = 2;
  analog::SigmaDeltaSpec adc{};
  util::Hertz modulator_clock = util::hertz(256e3);
  int cic_order = 3;
  int decimation = 128;  ///< output rate = modulator_clock / decimation
  int output_bits = 16;  ///< the "16 bits Sigma Delta ADC" word width
};

/// One decimated conversion result.
struct ChannelSample {
  std::int32_t code;   ///< signed `output_bits`-wide code
  double value;        ///< code scaled back to volts at the channel input
  bool overload;       ///< modulator overloaded during the block
};

/// Hardware defect injected into the conversion result (src/fault): stuck
/// output bits (a cracked bond wire or latched flip-flop in the decimator
/// readout) and/or an input-referred offset drift (front-end bias shift from
/// moisture or temperature). Masks act on the offset-binary output word.
/// Defaults are identity; while identity the sample path executes no extra
/// floating-point operation, so a compiled-in-but-inactive fault cannot
/// perturb the bitstream.
struct ChannelFault {
  std::uint32_t stuck_high = 0;  ///< bits forced to 1
  std::uint32_t stuck_low = 0;   ///< bits forced to 0
  double offset_volts = 0.0;     ///< input-referred offset
  [[nodiscard]] bool any() const {
    return stuck_high != 0 || stuck_low != 0 || offset_volts != 0.0;
  }
};

class InputChannel {
 public:
  InputChannel(const ChannelConfig& config, util::Rng rng);

  /// One modulator-clock tick with the given differential input at the pins.
  /// Returns a sample every `decimation` ticks.
  std::optional<ChannelSample> tick(util::Volts differential_input,
                                    util::Kelvin ambient = util::celsius(25.0));

  /// Block execution: advances one full decimation frame in a single call —
  /// exactly `decimation` modulator ticks with the per-tick differential
  /// inputs given in volts — and returns the one decimated sample the frame
  /// produces. Bit-identical to `decimation` tick() calls (same noise/dither
  /// draw order per stream, same FP operation order in every stage, same
  /// overload latching), but the whole chain — noise draws, amp, RC, ΣΔ, CIC
  /// — runs as one fused loop on register-resident kernel state with every
  /// per-block constant hoisted (DESIGN.md §9). Preconditions: inputs.size()
  /// == decimation, and the channel is frame-aligned (a whole number of
  /// frames ticked since construction or reset) — throws std::logic_error
  /// otherwise. No allocation, no per-stage staging buffers.
  ChannelSample process_frame(std::span<const double> differential_volts,
                              util::Kelvin ambient = util::celsius(25.0));

  /// Modulator ticks since the last frame boundary (0 = frame-aligned, so
  /// process_frame() may be called).
  [[nodiscard]] int frame_phase() const { return frame_phase_; }

  /// Everything one decimation frame of this channel needs, as register-
  /// resident kernel state outside the object: the two noise draw streams,
  /// the dither stream, and the amp/RC/ΣΔ/CIC stage kernels. process_frame()
  /// is begin_frame() + the fused loop + commit_frame(); the cross-sensor
  /// SIMD layer (simd::ChannelBatch, DESIGN.md §13) uses the same pair to
  /// gather N channels' state into structure-of-arrays lanes, run the fused
  /// loop W sensors per instruction, and scatter the advanced state back.
  struct FrameKernels {
    analog::InstrumentAmp::NoiseKernel noise;
    analog::SigmaDeltaModulator::DitherKernel dither;
    analog::InstrumentAmp::BlockKernel amp;
    analog::RcLowpass::BlockKernel rc;
    analog::SigmaDeltaModulator::BlockKernel adc;
    dsp::CicDecimator::BlockKernel cic;
  };
  /// Captures the frame kernels (hoisted per-block constants + live state).
  /// Requires frame alignment (frame_phase() == 0) — throws std::logic_error
  /// otherwise, exactly like process_frame.
  [[nodiscard]] FrameKernels begin_frame(
      util::Kelvin ambient = util::celsius(25.0));
  /// Runs the comb cascade on the kernel's newest integrator word — call
  /// exactly once per frame, when the CIC kernel reports an output due.
  double emit_frame_output(const dsp::CicDecimator::BlockKernel& k) {
    return cic_.emit(k);
  }
  /// Writes the advanced kernel state back and produces the frame's sample
  /// (overload latch, fault handling, quantisation, telemetry) — the exact
  /// tail of process_frame.
  ChannelSample commit_frame(const FrameKernels& k, double decimated);

  void set_gain(double gain) { amp_.set_gain(gain); }
  [[nodiscard]] double gain() const { return amp_.gain(); }

  /// Installs (or, with a default-constructed fault, removes) a hardware
  /// defect on the conversion result. A physical defect is not cleared by
  /// reset() — a chip reset does not re-solder a bond wire; only the injector
  /// that modelled the defect removes it.
  void inject_fault(const ChannelFault& fault) { fault_ = fault; }
  void clear_fault() { fault_ = ChannelFault{}; }
  [[nodiscard]] const ChannelFault& injected_fault() const { return fault_; }

  [[nodiscard]] const ChannelConfig& config() const { return config_; }
  [[nodiscard]] util::Hertz output_rate() const;
  [[nodiscard]] util::Seconds tick_period() const;
  /// Smallest input-referred step the channel can represent (1 output LSB).
  [[nodiscard]] util::Volts input_referred_lsb() const;

  void reset();

  /// Checkpoint support: every streaming stage plus the injected fault (a
  /// physical defect persists through reset, so it must persist through a
  /// crash too) and the frame/overload bookkeeping.
  void save_state(state::Writer& w) const {
    amp_.save_state(w);
    lpf_.save_state(w);
    adc_.save_state(w);
    cic_.save_state(w);
    w.u32(fault_.stuck_high);
    w.u32(fault_.stuck_low);
    w.f64(fault_.offset_volts);
    w.boolean(overload_latch_);
    w.boolean(overload_episode_);
    w.i32(frame_phase_);
  }
  void load_state(state::Reader& r) {
    amp_.load_state(r);
    lpf_.load_state(r);
    adc_.load_state(r);
    cic_.load_state(r);
    fault_.stuck_high = r.u32();
    fault_.stuck_low = r.u32();
    fault_.offset_volts = r.f64();
    overload_latch_ = r.boolean();
    overload_episode_ = r.boolean();
    frame_phase_ = r.i32();
  }

 private:
  ChannelSample make_sample(double normalised);

  ChannelConfig config_;
  analog::InstrumentAmp amp_;
  analog::RcLowpass lpf_;
  analog::SigmaDeltaModulator adc_;
  dsp::CicDecimator cic_;
  ChannelFault fault_{};
  bool overload_latch_ = false;
  bool overload_episode_ = false;  // edge detector for trace instants only
  int frame_phase_ = 0;
};

}  // namespace aqua::isif
