#include "isif/dac_ctrl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::isif {

using util::Seconds;
using util::Volts;

DacController::DacController(const analog::ThermometerDacSpec& spec,
                             util::Rng rng, int max_step_codes)
    : dac_(spec, rng), max_step_(max_step_codes) {
  if (max_step_codes < 0)
    throw std::invalid_argument("DacController: negative slew limit");
}

void DacController::request_code(int code) {
  target_ = std::clamp(code, 0, dac_.max_code());
}

void DacController::request_voltage(Volts v) {
  const double frac = v.value() / dac_.ideal_output(dac_.max_code()).value();
  request_code(static_cast<int>(std::lround(frac * dac_.max_code())));
}

void DacController::reset() {
  target_ = 0;
  dac_.reset();
}

void DacController::set_supply_droop(double factor) {
  if (factor <= 0.0 || factor > 1.0)
    throw std::invalid_argument("DacController: supply droop outside (0,1]");
  droop_ = factor;
}

Volts DacController::update(Seconds dt) {
  int next = target_;
  if (max_step_ > 0) {
    const int delta = std::clamp(target_ - dac_.code(), -max_step_, max_step_);
    next = dac_.code() + delta;
  }
  dac_.write_code(next);
  const Volts out = dac_.step(dt);
  if (droop_ != 1.0) return Volts{out.value() * droop_};
  return out;
}

}  // namespace aqua::isif
