#include "isif/selftest.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::isif {

using util::Hertz;
using util::Volts;

ChannelSelfTestResult run_channel_self_test(InputChannel& channel,
                                            const ChannelSelfTest& config) {
  const double out_rate = channel.output_rate().value();
  if (config.tone.value() <= 0.0 || config.tone.value() >= 0.25 * out_rate)
    throw std::invalid_argument(
        "run_channel_self_test: tone must be well below the output Nyquist");
  if (config.periods < 4)
    throw std::invalid_argument("run_channel_self_test: need >= 4 periods");

  const Hertz mod_clock = channel.config().modulator_clock;
  dsp::Nco stimulus{config.tone, mod_clock, config.amplitude.value()};

  // Coherent Goertzel block on the decimated stream.
  const auto samples_per_period =
      static_cast<std::size_t>(std::lround(out_rate / config.tone.value()));
  const std::size_t block = samples_per_period * config.periods;
  dsp::Goertzel detector{config.tone, Hertz{out_rate}, block};

  channel.reset();
  // Let the pipeline fill before integrating (one extra period).
  const long long warmup_ticks =
      channel.config().decimation * static_cast<long long>(samples_per_period);
  for (long long i = 0; i < warmup_ticks; ++i)
    (void)channel.tick(Volts{stimulus.next()});

  bool complete = false;
  double measured = 0.0;
  while (!complete) {
    const auto sample = channel.tick(Volts{stimulus.next()});
    if (sample && detector.push(sample->value)) {
      measured = detector.amplitude();
      complete = true;
    }
  }
  channel.reset();

  const double gain = measured / config.amplitude.value();
  const double error = gain - 1.0;
  return ChannelSelfTestResult{gain, error,
                               std::abs(error) <= config.gain_tolerance};
}

}  // namespace aqua::isif
