#include "simd/channel_batch.hpp"

#include <cstdint>
#include <stdexcept>

#include "simd/gauss_lanes.hpp"
#include "simd/lanes.hpp"

namespace aqua::simd {

namespace {

using isif::InputChannel;

/// One lane group of W channels through one fused decimation frame. Per tick
/// the stages run in exactly the scalar process_frame order — white draw,
/// flicker draw, amp, RC, dither draw, ΣΔ, CIC — and each stage performs the
/// element-wise operations of its scalar BlockKernel (same expression order,
/// no contraction), so a lane's chain output for given noise values is
/// 0-ULP identical to the scalar kernel's. Only the Voss-McCartney flicker
/// chain (inherently sequential row updates) and the per-frame CIC comb run
/// per-lane scalar.
template <int W>
void process_group(const ChannelFrameInput* in, isif::ChannelSample* out) {
  using L = Lanes<W>;
  using vd = typename L::vd;
  using vu = typename L::vu;

  InputChannel::FrameKernels k[W];
  for (int w = 0; w < W; ++w) k[w] = in[w].channel->begin_frame(in[w].ambient);

  const int decimation = in[0].channel->config().decimation;
  const int poles = k[0].rc.poles;
  const int order = k[0].cic.order;
  for (int w = 0; w < W; ++w) {
    if (k[w].rc.poles != poles || k[w].cic.order != order ||
        k[w].cic.decimation != decimation || k[w].cic.phase != 0)
      throw std::invalid_argument(
          "ChannelBatch: channels in a batch must share decimation, RC pole "
          "count and CIC order, and start frame-aligned");
    if (in[w].differential_volts.size() != static_cast<std::size_t>(decimation))
      throw std::logic_error("ChannelBatch: frame size must equal decimation");
  }

  // ---- gather: SoA lanes from the W channels' frame kernels ---------------
  util::Rng::State st_white[W], st_flick[W], st_dith[W];
  for (int w = 0; w < W; ++w) {
    st_white[w] = k[w].noise.white.rng.state();
    st_flick[w] = k[w].noise.flicker.rng.state();
    st_dith[w] = k[w].dither.rng.state();
  }
  auto g_white = detail::GaussLanes<W>::gather(st_white);
  auto g_flick = detail::GaussLanes<W>::gather(st_flick);
  auto g_dith = detail::GaussLanes<W>::gather(st_dith);

  vd sigma_w{}, sigma_d{};
  vd a_off{}, a_drift{}, a_gain{}, a_hr{}, a_a{}, a_y{};
  vd r_a[4] = {}, r_y[4] = {};
  vd s_fs{}, s_leak{}, s_sat{}, s_s1{}, s_s2{}, s_fb{};
  vu s_lastov{}, s_anyov{};
  vu c_acc[8] = {};
  for (int w = 0; w < W; ++w) {
    sigma_w[w] = k[w].noise.white.sigma;
    sigma_d[w] = k[w].dither.dither;
    a_off[w] = k[w].amp.offset;
    a_drift[w] = k[w].amp.drift;
    a_gain[w] = k[w].amp.gain;
    a_hr[w] = k[w].amp.half_rail;
    a_a[w] = k[w].amp.a;
    a_y[w] = k[w].amp.y;
    for (int p = 0; p < poles; ++p) {
      r_a[p][w] = k[w].rc.a[static_cast<std::size_t>(p)];
      r_y[p][w] = k[w].rc.y[static_cast<std::size_t>(p)];
    }
    s_fs[w] = k[w].adc.fs;
    s_leak[w] = k[w].adc.leak;
    s_sat[w] = k[w].adc.sat;
    s_s1[w] = k[w].adc.s1;
    s_s2[w] = k[w].adc.s2;
    s_fb[w] = k[w].adc.fb;
    s_lastov[w] = k[w].adc.last_overload ? ~0ull : 0ull;
    s_anyov[w] = k[w].adc.any_overload ? ~0ull : 0ull;
    for (int j = 0; j < order; ++j)
      c_acc[j][w] = k[w].cic.acc[static_cast<std::size_t>(j)];
  }
  // Loop-invariant per-lane branch masks of the scalar kernels' (a <= 0)
  // pole-bypass conditionals.
  const vu amp_pole_off = (vu)(a_a <= 0.0);
  vu rc_pole_off[4] = {};
  for (int p = 0; p < poles; ++p) rc_pole_off[p] = (vu)(r_a[p] <= 0.0);
  // ±1.0 modulator bits quantise to one of two exact Q31 constants
  // (CicDecimator::BlockKernel::push_bit) — a sign-mask select per tick.
  constexpr std::int64_t kQ = 2147483648ll;  // 2^31, the CIC input scale
  const vu q_pos = L::splat_u(static_cast<std::uint64_t>(kQ));
  const vu q_neg = L::splat_u(static_cast<std::uint64_t>(-kQ));

  // ---- the fused frame loop, W sensors per instruction --------------------
  for (int i = 0; i < decimation; ++i) {
    const vd gw = g_white.draw();
    const vd gf = g_flick.draw();
    const vd white = L::splat(0.0) + sigma_w * gw;
    vd flick{};
    for (int w = 0; w < W; ++w)
      flick[w] = k[w].noise.flicker.draw_with(gf[w]);
    vd volts{};
    for (int w = 0; w < W; ++w)
      volts[w] = in[w].differential_volts[static_cast<std::size_t>(i)];

    // InstrumentAmp::BlockKernel::step
    const vd input = volts + a_off + a_drift + white + flick;
    const vd target = a_gain * input;
    a_y = L::select(amp_pole_off, target, target + (a_y - target) * a_a);
    vd x = L::clamp(a_y, -a_hr, a_hr);

    // RcLowpass::BlockKernel::step
    for (int p = 0; p < poles; ++p) {
      r_y[p] = L::select(rc_pole_off[p], x, x + (r_y[p] - x) * r_a[p]);
      x = r_y[p];
    }

    // SigmaDeltaModulator::BlockKernel::step (1-bit quantiser = sign select)
    const vd gd = g_dith.draw();
    const vd dither = L::splat(0.0) + sigma_d * gd;
    vd u = x / s_fs;
    s_lastov = (vu)(L::vabs(u) > 0.9);
    s_anyov |= s_lastov;
    u = L::clamp(u, L::splat(-1.0), L::splat(1.0));
    u = u + dither;
    s_s1 = s_leak * s_s1 + 0.5 * (u - s_fb);
    s_s1 = L::clamp(s_s1, -s_sat, s_sat);
    s_s2 = s_leak * s_s2 + 0.5 * (s_s1 - s_fb);
    s_s2 = L::clamp(s_s2, -s_sat, s_sat);
    s_fb = L::select((vu)(s_s2 >= 0.0), L::splat(1.0), L::splat(-1.0));

    // CicDecimator::BlockKernel::push_bit — exact u64 lane adds
    vu v = L::select_u((vu)(s_fb >= 0.0), q_pos, q_neg);
    for (int j = 0; j < order; ++j) {
      c_acc[j] += v;
      v = c_acc[j];
    }
  }
  // The amp's `saturated` flag reflects the LAST sample only; recompute once.
  const vu a_sat_last = (vu)(L::vabs(a_y) > a_hr);

  // ---- scatter: lanes back into the kernels, commit per channel -----------
  g_white.scatter(st_white);
  g_flick.scatter(st_flick);
  g_dith.scatter(st_dith);
  for (int w = 0; w < W; ++w) {
    k[w].noise.white.rng.set_state(st_white[w]);
    k[w].noise.flicker.rng.set_state(st_flick[w]);
    k[w].dither.rng.set_state(st_dith[w]);
    k[w].amp.y = a_y[w];
    k[w].amp.saturated = a_sat_last[w] != 0;
    for (int p = 0; p < poles; ++p)
      k[w].rc.y[static_cast<std::size_t>(p)] = r_y[p][w];
    k[w].adc.s1 = s_s1[w];
    k[w].adc.s2 = s_s2[w];
    k[w].adc.fb = s_fb[w];
    k[w].adc.last_overload = s_lastov[w] != 0;
    k[w].adc.any_overload = s_anyov[w] != 0;
    for (int j = 0; j < order; ++j)
      k[w].cic.acc[static_cast<std::size_t>(j)] = c_acc[j][w];
    k[w].cic.phase = 0;  // exactly `decimation` pushes: wrapped to 0
    // Comb cascade + sample production exactly once per frame, per lane.
    const double decimated = in[w].channel->emit_frame_output(k[w].cic);
    out[w] = in[w].channel->commit_frame(k[w], decimated);
  }
}

}  // namespace

void ChannelBatch::process_frames(std::span<const ChannelFrameInput> in,
                                  std::span<isif::ChannelSample> out,
                                  int lane_width) {
  if (in.size() != out.size())
    throw std::invalid_argument("ChannelBatch: in/out size mismatch");
  if (in.empty()) return;
  int width = lane_width == 0 ? detail::kCompiledLaneWidth : lane_width;
  if (width != 1 && width != 2 && width != 4 && width != 8)
    throw std::invalid_argument("ChannelBatch: lane width must be 0, 1, 2, 4 or 8");
  const std::size_t n = in.size();
  const std::size_t w = static_cast<std::size_t>(width);
  std::size_t i = 0;
  // Full lane groups at the configured width, remainder one channel at a
  // time (every lane is a pure function of its own channel's state, so any
  // chunking produces identical per-channel results).
  switch (width) {
    case 2:
      for (; i + w <= n; i += w) process_group<2>(&in[i], &out[i]);
      break;
    case 4:
      for (; i + w <= n; i += w) process_group<4>(&in[i], &out[i]);
      break;
    case 8:
      for (; i + w <= n; i += w) process_group<8>(&in[i], &out[i]);
      break;
    default:
      break;
  }
  for (; i < n; ++i) process_group<1>(&in[i], &out[i]);
}

namespace {

template <int W>
double sigma_delta_lanes_bench(int ticks) {
  using L = Lanes<W>;
  using vd = typename L::vd;
  using vu = typename L::vu;
  vd s1{}, s2{}, fb = L::splat(1.0);
  const vd fs = L::splat(1.6), leak = L::splat(1.0), sat = L::splat(4.0);
  vu anyov{};
  vd x{};
  for (int w = 0; w < W; ++w) x[w] = 0.1 * (w + 1);
  for (int t = 0; t < ticks; ++t) {
    vd u = x / fs;
    anyov |= (vu)(L::vabs(u) > 0.9);
    u = L::clamp(u, L::splat(-1.0), L::splat(1.0));
    s1 = leak * s1 + 0.5 * (u - fb);
    s1 = L::clamp(s1, -sat, sat);
    s2 = leak * s2 + 0.5 * (s1 - fb);
    s2 = L::clamp(s2, -sat, sat);
    fb = L::select((vu)(s2 >= 0.0), L::splat(1.0), L::splat(-1.0));
    x = -x;  // alternate the input so the quantiser keeps toggling
  }
  double sink = 0.0;
  for (int w = 0; w < W; ++w) sink += s1[w] + s2[w] + fb[w];
  return sink;
}

template <int W>
double cic_lanes_bench(int ticks, int order) {
  using L = Lanes<W>;
  using vu = typename L::vu;
  vu acc[8] = {};
  constexpr std::int64_t kQ = 2147483648ll;
  const vu q_pos = L::splat_u(static_cast<std::uint64_t>(kQ));
  const vu q_neg = L::splat_u(static_cast<std::uint64_t>(-kQ));
  vu bit = q_pos;
  for (int t = 0; t < ticks; ++t) {
    vu v = bit;
    for (int j = 0; j < order; ++j) {
      acc[j] += v;
      v = acc[j];
    }
    bit = L::select_u((vu)(v >> 63 != 0), q_pos, q_neg);
  }
  double sink = 0.0;
  for (int w = 0; w < W; ++w)
    sink += static_cast<double>(static_cast<std::int64_t>(acc[order - 1][w]));
  return sink;
}

}  // namespace

double run_sigma_delta_lanes(int ticks, int width) {
  const int w = width == 0 ? detail::kCompiledLaneWidth : width;
  switch (w) {
    case 1: return sigma_delta_lanes_bench<1>(ticks);
    case 2: return sigma_delta_lanes_bench<2>(ticks);
    case 4: return sigma_delta_lanes_bench<4>(ticks);
    case 8: return sigma_delta_lanes_bench<8>(ticks);
    default:
      throw std::invalid_argument("run_sigma_delta_lanes: bad lane width");
  }
}

double run_cic_lanes(int ticks, int order, int decimation, int width) {
  (void)decimation;
  if (order < 1 || order > 8)
    throw std::invalid_argument("run_cic_lanes: order out of range");
  const int w = width == 0 ? detail::kCompiledLaneWidth : width;
  switch (w) {
    case 1: return cic_lanes_bench<1>(ticks, order);
    case 2: return cic_lanes_bench<2>(ticks, order);
    case 4: return cic_lanes_bench<4>(ticks, order);
    case 8: return cic_lanes_bench<8>(ticks, order);
    default:
      throw std::invalid_argument("run_cic_lanes: bad lane width");
  }
}

}  // namespace aqua::simd
