// lanes.hpp — lane-width-generic SIMD pack abstraction (DESIGN.md §13). One
// template over the GNU vector extensions gives the same source for SSE2
// (W = 2), AVX2 (W = 4), AVX-512 (W = 8), NEON (W = 2) and a portable
// single-lane build (W = 1, one-element vectors): the compiler lowers the
// generic operators to whatever the translation unit's -march allows, and
// every operation used here is element-wise IEEE-754 double arithmetic or
// exact integer/bit manipulation — so a lane computes the identical bits at
// every width, the property the lane-count-invariant determinism checksum
// rests on. No FMA contraction may be introduced (the SIMD objects build with
// -ffp-contract=off); keep vector-typed values out of cross-TU signatures
// (the public simd API is scalar spans) so the vector ABI never leaks.
#pragma once

#include <cstdint>

namespace aqua::simd {

namespace detail {

// The vector_size argument must be a literal at class-template parse time
// (GCC defers dependent attribute arguments and falls back to the scalar base
// type otherwise), so the widths are enumerated as full specializations.
template <int W>
struct VecTypes;
template <>
struct VecTypes<1> {
  typedef double vd __attribute__((vector_size(8)));
  typedef std::uint64_t vu __attribute__((vector_size(8)));
  typedef std::int64_t vi __attribute__((vector_size(8)));
};
template <>
struct VecTypes<2> {
  typedef double vd __attribute__((vector_size(16)));
  typedef std::uint64_t vu __attribute__((vector_size(16)));
  typedef std::int64_t vi __attribute__((vector_size(16)));
};
template <>
struct VecTypes<4> {
  typedef double vd __attribute__((vector_size(32)));
  typedef std::uint64_t vu __attribute__((vector_size(32)));
  typedef std::int64_t vi __attribute__((vector_size(32)));
};
template <>
struct VecTypes<8> {
  typedef double vd __attribute__((vector_size(64)));
  typedef std::uint64_t vu __attribute__((vector_size(64)));
  typedef std::int64_t vi __attribute__((vector_size(64)));
};

}  // namespace detail

template <int W>
struct Lanes {
  static_assert(W == 1 || W == 2 || W == 4 || W == 8,
                "lane width must be 1, 2, 4 or 8 doubles");
  static constexpr int kWidth = W;

  using vd = typename detail::VecTypes<W>::vd;
  using vu = typename detail::VecTypes<W>::vu;
  using vi = typename detail::VecTypes<W>::vi;

  /// Broadcast a scalar into every lane. An explicit per-lane store (not the
  /// `vd{} + x` idiom: 0.0 + (−0.0) is +0.0, which would lose the sign of a
  /// negative-zero broadcast); the compiler lowers it to a single broadcast.
  static vd splat(double x) {
    vd r{};
    for (int w = 0; w < W; ++w) r[w] = x;
    return r;
  }
  static vu splat_u(std::uint64_t x) {
    vu r{};
    for (int w = 0; w < W; ++w) r[w] = x;
    return r;
  }

  /// Per-lane select: mask lanes are all-ones (pick a) or all-zeros (pick b),
  /// exactly what vector comparisons produce.
  static vd select(vu mask, vd a, vd b) {
    return (vd)((mask & (vu)a) | (~mask & (vu)b));
  }
  static vu select_u(vu mask, vu a, vu b) { return (mask & a) | (~mask & b); }

  /// |x| by clearing the sign bit — the bit-exact vector form of std::abs.
  static vd vabs(vd x) { return (vd)((vu)x & splat_u(0x7fffffffffffffffull)); }

  /// std::clamp(x, lo, hi) lane-wise with the same comparison order (and the
  /// same −0.0 pass-through) as the scalar kernels it mirrors.
  static vd clamp(vd x, vd lo, vd hi) {
    vd r = select((vu)(x < lo), lo, x);
    return select((vu)(hi < r), hi, r);
  }

  /// Element-wise sqrt; -fno-math-errno lets this lower to the vector sqrt
  /// instruction (IEEE-correctly-rounded at every width).
  static vd vsqrt(vd x) {
    vd r = x;
    for (int w = 0; w < W; ++w) r[w] = __builtin_sqrt(x[w]);
    return r;
  }

  static vu rotl(vu x, int k) { return (x << k) | (x >> (64 - k)); }

  static bool all_lanes(vu mask) {
    bool all = true;
    for (int w = 0; w < W; ++w) all = all && mask[w] != 0;
    return all;
  }
};

/// The lane width (doubles per vector) the SIMD objects were compiled to use:
/// 8 on AVX-512, 4 on AVX2, 2 on SSE2/NEON, 1 otherwise or when the build
/// forced the scalar path (AQUA_SIMD=OFF). Batch results do not depend on it
/// — every lane is a pure function of its own gathered state — so builds of
/// any width reproduce the same committed batch checksum.
[[nodiscard]] int active_lane_width();

}  // namespace aqua::simd
