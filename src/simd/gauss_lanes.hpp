// gauss_lanes.hpp — internal (simd/*.cpp only) lane-parallel math kernels:
// vector log, vector sin/cos-of-turns and the W-lane Gaussian generator the
// batch channel path draws its noise from. Header-only templates over
// Lanes<W>; keep this out of public headers so vector types never cross a TU
// boundary (vector ABI / -Wpsabi hygiene).
//
// Numerics contract (DESIGN.md §13): every operation is element-wise IEEE-754
// double +,−,×,÷, sqrt or exact integer/bit manipulation — no libm, no FMA
// (these TUs build with -ffp-contract=off) — so each lane's result depends
// only on that lane's inputs and is identical at every lane width and on
// every ISA. Accuracy (verified by tests/simd/test_gauss.cpp): vlog ≤ 2.0 ulp
// of std::log on (2⁻⁵³, 1]; vsincos_2pi ≤ 2e-16 absolute of
// sin/cos(2πu) on [0, 1).
#pragma once

#include <cstdint>

#include "simd/lanes.hpp"
#include "util/rng.hpp"

namespace aqua::simd::detail {

/// Natural log for x ∈ (0, 1] (the Box-Muller radius argument 1 − u). The
/// classic atanh-series kernel: decompose x = m·2^e with the mantissa break
/// at √0.5 so m ∈ [√0.5, √2), then log m = 2·atanh(z), z = (m−1)/(m+1),
/// |z| ≤ 0.1716, via its odd series through z¹⁹; e·ln2 is added in split
/// high/low parts. Pure bit-twiddling exponent extraction — branch-free.
template <int W>
inline typename Lanes<W>::vd vlog(typename Lanes<W>::vd x) {
  using L = Lanes<W>;
  using vd = typename L::vd;
  using vu = typename L::vu;
  using vi = typename L::vi;
  const vu bits = (vu)x;
  // Offset so the exponent field splits at √0.5 (musl-style reduction).
  const vu tmp = bits - L::splat_u(0x3fe6a09e667f3bcdull);
  const vi e = (vi)tmp >> 52;  // arithmetic shift: signed unbiased exponent
  const vu mbits = bits - (tmp & L::splat_u(0xfffull << 52));
  const vd m = (vd)mbits;
  const vd ef = __builtin_convertvector(e, vd);
  const vd z = (m - 1.0) / (m + 1.0);
  const vd z2 = z * z;
  vd p = L::splat(2.0 / 19.0);
  p = p * z2 + 2.0 / 17.0;
  p = p * z2 + 2.0 / 15.0;
  p = p * z2 + 2.0 / 13.0;
  p = p * z2 + 2.0 / 11.0;
  p = p * z2 + 2.0 / 9.0;
  p = p * z2 + 2.0 / 7.0;
  p = p * z2 + 2.0 / 5.0;
  p = p * z2 + 2.0 / 3.0;
  p = p * z2 + 2.0;
  const vd ln2_hi = L::splat(0x1.62e42fee00000p-1);
  const vd ln2_lo = L::splat(0x1.a39ef35793c76p-33);
  return ef * ln2_lo + z * p + ef * ln2_hi;
}

/// sin(2πu) and cos(2πu) for u ∈ [0, 1), computed in turns: quadrant index
/// k = round(4u) via the 2⁵²+2⁵¹ magic-number round-to-nearest, residual
/// r = u − k/4 ∈ [−⅛, ⅛] turns, θ = 2πr ∈ [−π/4, π/4], Taylor series (sin
/// through 1/15!, cos through 1/14! — term ratio ≤ (π/4)² ≈ 0.62 of machine
/// epsilon at the tail), then the k mod 4 swap/negate fixup with sign-mask
/// XORs. Branch-free.
template <int W>
inline void vsincos_2pi(typename Lanes<W>::vd u, typename Lanes<W>::vd& s_out,
                        typename Lanes<W>::vd& c_out) {
  using L = Lanes<W>;
  using vd = typename L::vd;
  using vu = typename L::vu;
  using vi = typename L::vi;
  const vd magic = L::splat(0x1.8p52);
  const vd kf = (4.0 * u + magic) - magic;
  const vi k = __builtin_convertvector(kf, vi);
  const vd r = u - kf * 0.25;  // exact: kf/4 is representable, |r| ≤ u's ulp scale
  const vd t = r * 6.283185307179586476925286766559;
  const vd t2 = t * t;
  vd p = L::splat(-1.0 / 1307674368000.0);  // −1/15!
  p = p * t2 + 1.0 / 6227020800.0;          // +1/13!
  p = p * t2 - 1.0 / 39916800.0;            // −1/11!
  p = p * t2 + 1.0 / 362880.0;              // +1/9!
  p = p * t2 - 1.0 / 5040.0;                // −1/7!
  p = p * t2 + 1.0 / 120.0;                 // +1/5!
  p = p * t2 - 1.0 / 6.0;                   // −1/3!
  const vd sn = t + t * t2 * p;
  vd q = L::splat(1.0 / 87178291200.0);     // +1/14!
  q = q * t2 - 1.0 / 479001600.0;           // −1/12!
  q = q * t2 + 1.0 / 3628800.0;             // +1/10!
  q = q * t2 - 1.0 / 40320.0;               // −1/8!
  q = q * t2 + 1.0 / 720.0;                 // +1/6!
  q = q * t2 - 1.0 / 24.0;                  // −1/4!
  q = q * t2 + 0.5;                         // +1/2!
  const vd cs = 1.0 - t2 * q;
  // Quadrant fixup. k mod 4: 0 → (s, c); 1 → (c, −s); 2 → (−s, −c);
  // 3 → (−c, s). Swap on odd k; sin negated for k ∈ {2, 3}, cos for {1, 2}.
  const vu odd = (vu)((k & 1) != 0);
  const vd s_sw = L::select(odd, cs, sn);
  const vd c_sw = L::select(odd, sn, cs);
  const vu sign = L::splat_u(0x8000000000000000ull);
  const vu neg_s = (vu)((k & 2) != 0) & sign;
  const vu neg_c = (vu)(((k + 1) & 2) != 0) & sign;
  s_out = (vd)((vu)s_sw ^ neg_s);
  c_out = (vd)((vu)c_sw ^ neg_c);
}

/// W parallel standard-normal streams, one xoshiro256++ generator per lane,
/// gathered from / scattered to util::Rng::State (exact round-trip). Uses the
/// branch-free Box-Muller form — r = √(−2·ln(1−u₁)), z₀ = r·cos(2πu₂),
/// z₁ = r·sin(2πu₂) — with z₁ cached as the lane's spare, consuming exactly
/// two raw u64 draws per lane per pair. Lanes holding a spare (including a
/// polar spare inherited from scalar execution) return it without advancing
/// their stream, exactly like the scalar generator's cache; a lane's draw
/// sequence is therefore a pure function of that lane's own initial state —
/// the lane-count-invariance anchor. Note the *values* differ from the scalar
/// rejection-sampling polar transform: the batch path owns its own committed
/// checksum instead of bit-matching the legacy scalar one (DESIGN.md §13).
template <int W>
struct GaussLanes {
  using L = Lanes<W>;
  using vd = typename L::vd;
  using vu = typename L::vu;

  vu s0, s1, s2, s3;
  vd spare;
  vu has_spare;  // all-ones / all-zeros per lane

  static GaussLanes gather(const util::Rng::State* st) {
    GaussLanes g{};
    for (int w = 0; w < W; ++w) {
      g.s0[w] = st[w].s[0];
      g.s1[w] = st[w].s[1];
      g.s2[w] = st[w].s[2];
      g.s3[w] = st[w].s[3];
      g.spare[w] = st[w].spare;
      g.has_spare[w] = st[w].has_spare ? ~0ull : 0ull;
    }
    return g;
  }

  void scatter(util::Rng::State* st) const {
    for (int w = 0; w < W; ++w) {
      st[w].s = {s0[w], s1[w], s2[w], s3[w]};
      st[w].spare = spare[w];
      st[w].has_spare = has_spare[w] != 0;
    }
  }

  /// xoshiro256++ next(), all lanes — the exact scalar recurrence per lane.
  vu next() {
    const vu result = L::rotl(s0 + s3, 23) + s0;
    const vu t = s1 << 17;
    s2 ^= s0;
    s3 ^= s1;
    s1 ^= s2;
    s0 ^= s3;
    s2 ^= t;
    s3 = L::rotl(s3, 45);
    return result;
  }

  /// One standard normal per lane.
  vd draw() {
    if (L::all_lanes(has_spare)) {  // fast path: every lane holds a spare
      has_spare = vu{};
      return spare;
    }
    // Generate a fresh pair on a copy; lanes that already hold a spare keep
    // their stream position and return the spare instead.
    GaussLanes c = *this;
    const vu b1 = c.next();
    const vu b2 = c.next();
    const vd u1 = __builtin_convertvector(b1 >> 11, vd) * 0x1.0p-53;
    const vd u2 = __builtin_convertvector(b2 >> 11, vd) * 0x1.0p-53;
    // 1 − u₁ ∈ (2⁻⁵³, 1]: log finite, r = 0 only when u₁ = 0 exactly.
    const vd r = L::vsqrt(-2.0 * vlog<W>(1.0 - u1));
    vd sn, cs;
    vsincos_2pi<W>(u2, sn, cs);
    const vd out = L::select(has_spare, spare, r * cs);
    spare = L::select(has_spare, spare, r * sn);
    s0 = L::select_u(has_spare, s0, c.s0);
    s1 = L::select_u(has_spare, s1, c.s1);
    s2 = L::select_u(has_spare, s2, c.s2);
    s3 = L::select_u(has_spare, s3, c.s3);
    has_spare = ~has_spare;
    return out;
  }
};

/// The width this translation unit's SIMD objects prefer, resolved from the
/// compile flags the aqua_simd target was built with.
#if defined(AQUA_FORCE_SCALAR_LANES)
inline constexpr int kCompiledLaneWidth = 1;
#elif defined(__AVX512F__)
inline constexpr int kCompiledLaneWidth = 8;
#elif defined(__AVX2__)
inline constexpr int kCompiledLaneWidth = 4;
#elif defined(__SSE2__) || defined(__ARM_NEON) || defined(__aarch64__)
inline constexpr int kCompiledLaneWidth = 2;
#else
inline constexpr int kCompiledLaneWidth = 1;
#endif

}  // namespace aqua::simd::detail
