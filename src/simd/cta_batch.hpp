// cta_batch.hpp — one decimation frame for N whole CTA loops (DESIGN.md §13).
// Per modulator tick every loop stages its scalar physics (package, DAC,
// bridge solves, heater powers, conductance update), then ALL dies relax
// through one phys::ThermalNetwork::step_batch sweep over the shared CSR
// adjacency; after the tick loop both ISIF channels of every loop run through
// simd::ChannelBatch in cross-sensor lanes, and each loop finishes its frame
// (firmware tick, blackbox edges). The scalar CtaAnemometer::tick_frame is
// the W = 1 instance of exactly this flow, so the physics staging is shared
// source — the only divergence between modes is the channel noise generator
// (see channel_batch.hpp).
#pragma once

#include <span>

#include "core/cta.hpp"
#include "maf/environment.hpp"

namespace aqua::simd {

class CtaFrameBatch {
 public:
  /// Advances every loop by one decimation frame under its environment.
  /// Requirements (std::logic_error / std::invalid_argument otherwise): all
  /// loops frame-aligned (tick_phase() == 0), spans equally sized, and every
  /// loop sharing the same tick period and decimation — which a fleet built
  /// from one SensorNodeConfig satisfies by construction.
  static void process_frame(std::span<cta::CtaAnemometer* const> loops,
                            std::span<const maf::Environment> envs,
                            int lane_width = 0);
};

}  // namespace aqua::simd
