// gauss.hpp — public (scalar-typed) face of the lane-parallel Gaussian
// generator and its math kernels. The fast path lives in ChannelBatch, which
// keeps lanes register-resident across a whole frame; this API exists for the
// accuracy / lane-invariance tests and for callers that want batched draws
// over explicit util::Rng::State streams without touching vector types.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace aqua::simd {

/// Test hooks: the vector ln / sin-cos-of-turns kernels evaluated lane-wise
/// at `width` (0 = the compiled width). x must be in (0, 1] for vlog_lanes,
/// u in [0, 1) for vsincos_2pi_lanes; spans must be equally sized.
void vlog_lanes(std::span<const double> x, std::span<double> out,
                int width = 0);
void vsincos_2pi_lanes(std::span<const double> u, std::span<double> sin_out,
                       std::span<double> cos_out, int width = 0);

/// N parallel standard-normal streams in lane groups of `width`. Each
/// stream's draw sequence is a pure function of its own initial Rng::State —
/// independent of width, grouping or the order streams were packed — so any
/// two GaussBatch configurations over the same states produce identical
/// per-stream values (the property tests/simd/test_gauss.cpp pins down).
/// Spares already cached in a gathered state (e.g. by scalar polar draws) are
/// consumed first; scatter() hands the advanced streams back for scalar
/// execution to resume exactly where the batch stopped.
class GaussBatch {
 public:
  /// width: 1, 2, 4, 8, or 0 for the compiled width (active_lane_width()).
  explicit GaussBatch(std::span<const util::Rng::State> states, int width = 0);

  /// One standard normal per stream; out.size() must equal the stream count.
  void draw(std::span<double> out);

  /// Copies the advanced stream states out (size must match).
  void scatter(std::span<util::Rng::State> out) const;

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] std::size_t size() const { return states_.size(); }

 private:
  std::vector<util::Rng::State> states_;
  int width_;
};

}  // namespace aqua::simd
