#include "simd/cta_batch.hpp"

#include <stdexcept>
#include <vector>

#include "phys/thermal.hpp"
#include "simd/channel_batch.hpp"

namespace aqua::simd {

void CtaFrameBatch::process_frame(std::span<cta::CtaAnemometer* const> loops,
                                  std::span<const maf::Environment> envs,
                                  int lane_width) {
  if (loops.size() != envs.size())
    throw std::invalid_argument("CtaFrameBatch: loops/envs size mismatch");
  if (loops.empty()) return;
  const std::size_t n = loops.size();

  const util::Seconds dt = loops[0]->tick_period();
  const int frame = loops[0]->platform().config().channel.decimation;
  for (cta::CtaAnemometer* loop : loops) {
    loop->begin_batch_frame();
    if (loop->tick_period().value() != dt.value() ||
        loop->platform().config().channel.decimation != frame)
      throw std::invalid_argument(
          "CtaFrameBatch: loops in a batch must share tick period and "
          "decimation");
  }

  // Per-frame scratch, reused across frames on this thread (a fleet shard
  // calls this once per decimation frame per lane group).
  thread_local std::vector<phys::ThermalNetwork*> nets;
  thread_local std::vector<ChannelFrameInput> ch_in;
  thread_local std::vector<isif::ChannelSample> samples_a, samples_b;
  nets.clear();
  nets.reserve(n);
  for (cta::CtaAnemometer* loop : loops)
    nets.push_back(&loop->die().thermal_network());

  // Tick loop: scalar pre-thermal staging per loop, one batched thermal
  // relaxation over all dies (bit-identical per die to its own step()), then
  // the scalar post-thermal remainder.
  for (int i = 0; i < frame; ++i) {
    for (std::size_t j = 0; j < n; ++j)
      loops[j]->stage_tick_pre_thermal(envs[j], i);
    phys::ThermalNetwork::step_batch(nets, dt);
    for (std::size_t j = 0; j < n; ++j)
      loops[j]->stage_tick_post_thermal(envs[j]);
  }

  // Both channels of every loop through the cross-sensor lanes: channel 0
  // (measurement bridge) across all loops, then channel 1 (direction).
  samples_a.resize(n);
  samples_b.resize(n);
  for (int channel = 0; channel < 2; ++channel) {
    ch_in.clear();
    ch_in.reserve(n);
    for (std::size_t j = 0; j < n; ++j)
      ch_in.push_back(ChannelFrameInput{
          &loops[j]->platform().channel(channel),
          channel == 0 ? loops[j]->staged_diff_a() : loops[j]->staged_diff_b(),
          envs[j].fluid_temperature});
    ChannelBatch::process_frames(ch_in, channel == 0 ? std::span(samples_a)
                                                     : std::span(samples_b),
                                 lane_width);
  }

  for (std::size_t j = 0; j < n; ++j)
    loops[j]->finish_batch_frame(samples_a[j], samples_b[j]);
}

}  // namespace aqua::simd
