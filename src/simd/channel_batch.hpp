// channel_batch.hpp — cross-sensor SIMD execution of the fused ISIF channel
// frame (DESIGN.md §13). N channels' FrameKernels are gathered into
// structure-of-arrays lanes — noise/dither RNG streams, amp pole, RC cascade,
// ΣΔ integrators (1-bit quantiser as a sign-mask select), CIC integrator
// words — and one fused loop steps W sensors per instruction through the
// whole chain; the advanced state is scattered back through the channels'
// commit_frame, so scalar execution can resume any channel afterwards.
//
// Determinism: every lane is a pure function of its own channel's state (the
// chain stages are element-wise identical to the scalar kernels; the batch
// Gaussian generator is per-lane pure), so results are independent of lane
// width, group boundaries and processing order — the batch path's committed
// checksum reproduces at W = 1/2/4/8 and any thread count. The *noise values*
// come from the branch-free Box-Muller generator, not the scalar polar
// transform, so batch output intentionally differs from the scalar reference
// (which stays the bit-identity baseline, DESIGN.md §9).
#pragma once

#include <cstddef>
#include <span>

#include "isif/channel.hpp"
#include "util/units.hpp"

namespace aqua::simd {

/// One channel's share of a batch frame.
struct ChannelFrameInput {
  isif::InputChannel* channel = nullptr;
  /// Per-tick differential inputs, size == the channel's decimation.
  std::span<const double> differential_volts{};
  util::Kelvin ambient = util::celsius(25.0);
};

class ChannelBatch {
 public:
  /// Advances one decimation frame for every channel in `in`, writing the
  /// decimated samples to `out` (same order; sizes must match). Channels are
  /// processed in lane groups of `lane_width` (0 = compiled width) with the
  /// remainder at W = 1 — identical results at any chunking. All channels
  /// must be frame-aligned and share the same structural configuration
  /// (decimation, RC pole count, CIC order); throws std::logic_error /
  /// std::invalid_argument otherwise.
  static void process_frames(std::span<const ChannelFrameInput> in,
                             std::span<isif::ChannelSample> out,
                             int lane_width = 0);
};

/// Stage-isolation hooks for bench_micro_dsp: run `ticks` steps of just the
/// ΣΔ quantiser loop / just the CIC integrator cascade across one lane group
/// of `width` (0 = compiled width), returning a value-dependent sink so the
/// loop cannot be optimised away. Inputs are synthetic but representative
/// (±full-scale sinusoid-ish sweep / alternating bit pattern).
double run_sigma_delta_lanes(int ticks, int width = 0);
double run_cic_lanes(int ticks, int order, int decimation, int width = 0);

}  // namespace aqua::simd
