#include "simd/gauss.hpp"

#include <stdexcept>

#include "simd/gauss_lanes.hpp"
#include "simd/lanes.hpp"

namespace aqua::simd {

int active_lane_width() { return detail::kCompiledLaneWidth; }

namespace {

int resolve_width(int width) {
  if (width == 0) return detail::kCompiledLaneWidth;
  if (width != 1 && width != 2 && width != 4 && width != 8)
    throw std::invalid_argument("simd: lane width must be 0, 1, 2, 4 or 8");
  return width;
}

// Element-wise kernels are pure per lane, so a short tail can be processed at
// W = 1 (or, for the function hooks, padded) without changing any value.
template <int W>
void vlog_groups(std::span<const double> x, std::span<double> out) {
  using L = Lanes<W>;
  std::size_t i = 0;
  for (; i + W <= x.size(); i += W) {
    typename L::vd v{};
    for (int w = 0; w < W; ++w) v[w] = x[i + static_cast<std::size_t>(w)];
    const typename L::vd r = detail::vlog<W>(v);
    for (int w = 0; w < W; ++w) out[i + static_cast<std::size_t>(w)] = r[w];
  }
  for (; i < x.size(); ++i) {
    typename Lanes<1>::vd v{};
    v[0] = x[i];
    out[i] = detail::vlog<1>(v)[0];
  }
}

template <int W>
void vsincos_groups(std::span<const double> u, std::span<double> s,
                    std::span<double> c) {
  using L = Lanes<W>;
  std::size_t i = 0;
  for (; i + W <= u.size(); i += W) {
    typename L::vd v{};
    for (int w = 0; w < W; ++w) v[w] = u[i + static_cast<std::size_t>(w)];
    typename L::vd sn, cs;
    detail::vsincos_2pi<W>(v, sn, cs);
    for (int w = 0; w < W; ++w) {
      s[i + static_cast<std::size_t>(w)] = sn[w];
      c[i + static_cast<std::size_t>(w)] = cs[w];
    }
  }
  for (; i < u.size(); ++i) {
    typename Lanes<1>::vd v{};
    v[0] = u[i];
    typename Lanes<1>::vd sn, cs;
    detail::vsincos_2pi<1>(v, sn, cs);
    s[i] = sn[0];
    c[i] = cs[0];
  }
}

template <int W>
void draw_group(util::Rng::State* st, double* out) {
  auto lanes = detail::GaussLanes<W>::gather(st);
  const typename Lanes<W>::vd v = lanes.draw();
  lanes.scatter(st);
  for (int w = 0; w < W; ++w) out[w] = v[w];
}

}  // namespace

void vlog_lanes(std::span<const double> x, std::span<double> out, int width) {
  if (x.size() != out.size())
    throw std::invalid_argument("vlog_lanes: span size mismatch");
  switch (resolve_width(width)) {
    case 1: vlog_groups<1>(x, out); break;
    case 2: vlog_groups<2>(x, out); break;
    case 4: vlog_groups<4>(x, out); break;
    default: vlog_groups<8>(x, out); break;
  }
}

void vsincos_2pi_lanes(std::span<const double> u, std::span<double> sin_out,
                       std::span<double> cos_out, int width) {
  if (u.size() != sin_out.size() || u.size() != cos_out.size())
    throw std::invalid_argument("vsincos_2pi_lanes: span size mismatch");
  switch (resolve_width(width)) {
    case 1: vsincos_groups<1>(u, sin_out, cos_out); break;
    case 2: vsincos_groups<2>(u, sin_out, cos_out); break;
    case 4: vsincos_groups<4>(u, sin_out, cos_out); break;
    default: vsincos_groups<8>(u, sin_out, cos_out); break;
  }
}

GaussBatch::GaussBatch(std::span<const util::Rng::State> states, int width)
    : states_(states.begin(), states.end()), width_(resolve_width(width)) {}

void GaussBatch::draw(std::span<double> out) {
  if (out.size() != states_.size())
    throw std::invalid_argument("GaussBatch::draw: span size mismatch");
  const std::size_t n = states_.size();
  const std::size_t w = static_cast<std::size_t>(width_);
  std::size_t i = 0;
  switch (width_) {
    case 2:
      for (; i + w <= n; i += w) draw_group<2>(&states_[i], &out[i]);
      break;
    case 4:
      for (; i + w <= n; i += w) draw_group<4>(&states_[i], &out[i]);
      break;
    case 8:
      for (; i + w <= n; i += w) draw_group<8>(&states_[i], &out[i]);
      break;
    default:
      break;
  }
  for (; i < n; ++i) draw_group<1>(&states_[i], &out[i]);
}

void GaussBatch::scatter(std::span<util::Rng::State> out) const {
  if (out.size() != states_.size())
    throw std::invalid_argument("GaussBatch::scatter: span size mismatch");
  for (std::size_t i = 0; i < states_.size(); ++i) out[i] = states_[i];
}

}  // namespace aqua::simd
