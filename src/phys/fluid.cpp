#include "phys/fluid.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::phys {

using util::Kelvin;
using util::Pascals;

FluidProperties water_properties(Kelvin t) {
  const double tc = util::to_celsius(t);
  if (tc < -5.0 || tc > 120.0)
    throw std::invalid_argument("water_properties: temperature outside fit range");
  const double tk = t.value();

  // Density: Kell (1975) fit for air-free water at 1 atm, kg/m^3.
  const double density =
      1000.0 * (1.0 - (tc + 288.9414) / (508929.2 * (tc + 68.12963)) *
                          (tc - 3.9863) * (tc - 3.9863));

  // Dynamic viscosity: Vogel–Fulcher–Tammann form (Pa·s), good to ~2 % 0–90 °C.
  const double viscosity = 2.414e-5 * std::pow(10.0, 247.8 / (tk - 140.0));

  // Thermal conductivity: quadratic fit to IAPWS data, W/(m·K), 0–90 °C.
  const double conductivity = 0.5706 + 1.756e-3 * tc - 6.46e-6 * tc * tc;

  // Isobaric specific heat: polynomial fit (J/(kg·K)), 0–90 °C.
  const double cp = 4217.4 - 3.720283 * tc + 0.1412855 * tc * tc -
                    2.654387e-3 * tc * tc * tc + 2.093236e-5 * tc * tc * tc * tc;

  return FluidProperties{density, viscosity, conductivity, cp};
}

FluidProperties air_properties(Kelvin t, Pascals p) {
  const double tk = t.value();
  if (tk < 200.0 || tk > 500.0)
    throw std::invalid_argument("air_properties: temperature outside fit range");

  constexpr double kGasConstantAir = 287.05;  // J/(kg·K)
  const double density = p.value() / (kGasConstantAir * tk);

  // Sutherland's law for viscosity and conductivity.
  const double viscosity =
      1.716e-5 * std::pow(tk / 273.15, 1.5) * (273.15 + 110.4) / (tk + 110.4);
  const double conductivity =
      0.0241 * std::pow(tk / 273.15, 1.5) * (273.15 + 194.0) / (tk + 194.0);

  constexpr double cp = 1005.0;  // ~constant over the range of interest
  return FluidProperties{density, viscosity, conductivity, cp};
}

FluidProperties properties(Medium medium, Kelvin t, Pascals p) {
  switch (medium) {
    case Medium::kWater: return water_properties(t);
    case Medium::kAir: return air_properties(t, p);
  }
  throw std::invalid_argument("properties: unknown medium");
}

}  // namespace aqua::phys
