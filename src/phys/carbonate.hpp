// carbonate.hpp — calcium-carbonate scaling chemistry (paper Eq. 3):
//   Ca(HCO3)2 -> CaCO3 + CO2 + H2O
// CaCO3 is an inverse-solubility salt: solubility *falls* with temperature, so
// deposition concentrates on the hottest surface in the system — the heater.
// The model computes a saturation ratio from water hardness and wall
// temperature and integrates a deposit-thickness ODE; the deposit adds a
// series thermal resistance that biases the anemometer (experiment E8).
#pragma once

#include "util/units.hpp"

namespace aqua::phys {

/// Bulk water chemistry relevant to scaling.
struct WaterChemistry {
  double hardness_mg_per_l = 250.0;   ///< as CaCO3; Tuscan potable water is hard
  double alkalinity_mg_per_l = 200.0; ///< as CaCO3
  double ph = 7.6;
};

/// Effective CaCO3 solubility (mg/L as CaCO3) at the given temperature in
/// CO2-equilibrated potable water. Retrograde fit anchored at ~330 mg/L at
/// 15 °C, so typical hard distribution water is near-saturated at bulk
/// temperature and scales only on heated surfaces.
[[nodiscard]] double caco3_solubility_mg_per_l(util::Kelvin t);

/// Saturation ratio S = [driving hardness]/[solubility at wall temperature].
/// S > 1 means the wall scales; S ≤ 1 means deposits slowly redissolve.
[[nodiscard]] double saturation_ratio(const WaterChemistry& chem,
                                      util::Kelvin wall_temperature);

/// Kinetics of deposit growth on a heated wall.
struct ScalingKinetics {
  /// Linear growth-rate constant (m/s per unit of supersaturation (S−1)) for
  /// a bare, reactive surface: ~0.7 µm/day per unit of (S−1), consistent with
  /// fouling rates reported for heated surfaces in hard water.
  double growth_rate = 8.0e-12;
  /// Dissolution rate constant (m/s per unit undersaturation) when S < 1.
  double dissolution_rate = 2.0e-12;
  /// Surface reactivity multiplier: 1 for a bare metal surface; the paper's
  /// PECVD SiN passivation suppresses nucleation — use ~0.02.
  double surface_reactivity = 1.0;
};

/// Deposit growth rate dδ/dt (m/s) for the given state.
[[nodiscard]] double deposit_growth_rate(const ScalingKinetics& kinetics,
                                         const WaterChemistry& chem,
                                         util::Kelvin wall_temperature,
                                         double current_thickness_m);

/// Thermal resistance (K/W) added by a deposit layer of the given thickness
/// over the given area. Calcite conductivity ~2.2 W/(m·K).
[[nodiscard]] double deposit_thermal_resistance(double thickness_m,
                                                util::SquareMetres area);

}  // namespace aqua::phys
