// convection.hpp — forced-convection heat transfer from a thin heated wire in
// crossflow. This is the physical origin of King's law (paper Eq. 2):
//
//   Q = h·A_s·(T_w − T_f),  with  Nu = h·d/k  following the Kramers
//   correlation  Nu = 0.42·Pr^0.20 + 0.57·Pr^(1/3)·Re^0.50,
//
// which expands to  Q = ΔT·(A + B·v^n) with n = 0.5 — King's empirical form.
// We expose both the instantaneous film coefficient (used by the die thermal
// model) and the derived King coefficients (used to sanity-check calibration).
#pragma once

#include "phys/fluid.hpp"
#include "util/units.hpp"

namespace aqua::phys {

/// Geometry of one heated wire element exposed to the flow.
struct WireGeometry {
  util::Metres diameter;  ///< hydraulic diameter of the bridge element
  util::Metres length;    ///< exposed length

  [[nodiscard]] util::SquareMetres surface_area() const {
    // Lateral surface of a cylinder; the end faces are attached to the leads.
    constexpr double kPi = 3.14159265358979323846;
    return util::SquareMetres{kPi * diameter.value() * length.value()};
  }
};

/// Reynolds number rho·v·d/mu for a cylinder of diameter d in crossflow.
[[nodiscard]] double reynolds(const FluidProperties& fluid,
                              util::MetresPerSecond speed, util::Metres diameter);

/// Kramers (1946) Nusselt correlation for a heated cylinder in crossflow,
/// valid for 0.01 < Re < 10^4 over liquids and gases. At Re = 0 it degrades
/// gracefully to the conduction/natural-convection floor (the 0.42·Pr^0.2
/// term), which is exactly King's "A" constant.
[[nodiscard]] double kramers_nusselt(double reynolds_number, double prandtl_number);

/// Film heat-transfer coefficient h = Nu·k/d (W/(m^2·K)). Properties should be
/// evaluated at the film temperature (T_w + T_f)/2 for best accuracy.
[[nodiscard]] double film_coefficient(const FluidProperties& fluid,
                                      util::MetresPerSecond speed,
                                      const WireGeometry& wire);

/// King's-law coefficients  Q/ΔT = A + B·v^n  derived from the Kramers
/// correlation for the given fluid state and wire geometry.
struct KingCoefficients {
  double a;  ///< W/K — conduction/natural-convection floor
  double b;  ///< W/(K·(m/s)^n)
  double n;  ///< velocity exponent (0.5 for Kramers)
};

[[nodiscard]] KingCoefficients king_coefficients(const FluidProperties& fluid,
                                                 const WireGeometry& wire);

/// Total convective loss Q = ΔT·(A + B·v^n) in watts.
[[nodiscard]] util::Watts convective_loss(const FluidProperties& fluid,
                                          const WireGeometry& wire,
                                          util::MetresPerSecond speed,
                                          util::Kelvin overtemperature);

}  // namespace aqua::phys
