#include "phys/resistor.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::phys {

using util::Kelvin;
using util::Ohms;

TcrResistor::TcrResistor(const TcrResistorSpec& spec)
    : spec_(spec), r0_(spec.nominal) {
  if (spec.nominal.value() <= 0.0)
    throw std::invalid_argument("TcrResistor: non-positive nominal resistance");
}

TcrResistor::TcrResistor(const TcrResistorSpec& spec, util::Rng& rng)
    : TcrResistor(spec) {
  r0_ += Ohms{rng.uniform(-spec.tolerance.value(), spec.tolerance.value())};
}

Ohms TcrResistor::resistance(Kelvin t) const {
  const double dt = t.value() - spec_.reference.value();
  return Ohms{r0_.value() * (1.0 + spec_.alpha * dt + spec_.beta * dt * dt)};
}

Kelvin TcrResistor::temperature_for(Ohms r) const {
  const double ratio = r.value() / r0_.value() - 1.0;
  if (spec_.beta == 0.0) {
    return Kelvin{spec_.reference.value() + ratio / spec_.alpha};
  }
  // beta·dt² + alpha·dt − ratio = 0; take the physical (smaller-|dt|) root.
  const double disc = spec_.alpha * spec_.alpha + 4.0 * spec_.beta * ratio;
  if (disc < 0.0)
    throw std::invalid_argument("TcrResistor::temperature_for: no real solution");
  const double dt = (-spec_.alpha + std::sqrt(disc)) / (2.0 * spec_.beta);
  return Kelvin{spec_.reference.value() + dt};
}

}  // namespace aqua::phys
