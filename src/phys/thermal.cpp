#include "phys/thermal.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace aqua::phys {

using util::Kelvin;
using util::Seconds;
using util::Watts;

ThermalNetwork::NodeId ThermalNetwork::add_node(double capacitance,
                                                Kelvin initial) {
  if (capacitance <= 0.0)
    throw std::invalid_argument("ThermalNetwork: capacitance must be positive");
  nodes_.push_back(Node{capacitance, initial.value(), 0.0, false, initial.value()});
  adjacency_valid_ = false;
  return nodes_.size() - 1;
}

ThermalNetwork::NodeId ThermalNetwork::add_boundary(Kelvin temperature) {
  nodes_.push_back(Node{0.0, temperature.value(), 0.0, true, temperature.value()});
  adjacency_valid_ = false;
  return nodes_.size() - 1;
}

ThermalNetwork::EdgeId ThermalNetwork::connect(NodeId a, NodeId b,
                                               double conductance) {
  check_node(a);
  check_node(b);
  if (conductance < 0.0)
    throw std::invalid_argument("ThermalNetwork: negative conductance");
  edges_.push_back(Edge{a, b, conductance, conductance});
  adjacency_valid_ = false;
  return edges_.size() - 1;
}

void ThermalNetwork::ensure_adjacency() const {
  if (adjacency_valid_) return;
  const std::size_t n = nodes_.size();
  adjacency_start_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++adjacency_start_[e.a + 1];
    ++adjacency_start_[e.b + 1];
  }
  for (std::size_t i = 0; i < n; ++i)
    adjacency_start_[i + 1] += adjacency_start_[i];
  adjacency_.resize(2 * edges_.size());
  std::vector<std::size_t> cursor(adjacency_start_.begin(),
                                  adjacency_start_.end() - 1);
  // Filling in edge order keeps each node's incidence list sorted by edge id,
  // matching the edge-major accumulation order (FP-order preservation).
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    adjacency_[cursor[edges_[e].a]++] = Incidence{e, edges_[e].b};
    adjacency_[cursor[edges_[e].b]++] = Incidence{e, edges_[e].a};
  }
  adjacency_valid_ = true;
}

void ThermalNetwork::set_conductance(EdgeId e, double conductance) {
  if (e >= edges_.size()) throw std::out_of_range("ThermalNetwork: bad edge id");
  if (conductance < 0.0)
    throw std::invalid_argument("ThermalNetwork: negative conductance");
  edges_[e].g = conductance;
}

double ThermalNetwork::conductance(EdgeId e) const {
  if (e >= edges_.size()) throw std::out_of_range("ThermalNetwork: bad edge id");
  return edges_[e].g;
}

void ThermalNetwork::set_boundary_temperature(NodeId n, Kelvin t) {
  check_node(n);
  if (!nodes_[n].boundary)
    throw std::invalid_argument("ThermalNetwork: node is not a boundary");
  nodes_[n].temperature = t.value();
}

void ThermalNetwork::set_power(NodeId n, Watts p) {
  check_node(n);
  nodes_[n].power = p.value();
}

void ThermalNetwork::step(Seconds dt) {
  ensure_adjacency();
  const std::size_t n = nodes_.size();
  if (decay_arg_.size() != n) {
    decay_arg_.assign(n, std::numeric_limits<double>::quiet_NaN());
    decay_val_.assign(n, 0.0);
  }
  new_temps_.resize(n);

  // Jacobi update: every node relaxes against its neighbours' temperatures
  // at the start of the step, so the new values are staged and committed
  // after the sweep.
  for (std::size_t i = 0; i < n; ++i) {
    const Node& node = nodes_[i];
    if (node.boundary) {
      new_temps_[i] = node.temperature;
      continue;
    }
    double sum_g = 0.0, sum_gt = 0.0;
    const std::size_t end = adjacency_start_[i + 1];
    for (std::size_t k = adjacency_start_[i]; k < end; ++k) {
      const Incidence& inc = adjacency_[k];
      const double g = edges_[inc.edge].g;
      sum_g += g;
      sum_gt += g * nodes_[inc.other].temperature;
    }
    if (sum_g <= 0.0) {
      // Isolated node: pure integration of injected power.
      new_temps_[i] = node.temperature + node.power * dt.value() / node.capacitance;
      continue;
    }
    const double t_inf = (sum_gt + node.power) / sum_g;
    // Memoized decay: recompute the exponential only when its exact argument
    // changed (flow-dependent conductances); bit-identical either way.
    const double arg = -dt.value() * sum_g / node.capacitance;
    if (arg != decay_arg_[i]) {
      decay_arg_[i] = arg;
      decay_val_[i] = std::exp(arg);
    }
    new_temps_[i] = t_inf + (node.temperature - t_inf) * decay_val_[i];
  }
  for (std::size_t i = 0; i < n; ++i) nodes_[i].temperature = new_temps_[i];
}

void ThermalNetwork::step_batch(std::span<ThermalNetwork* const> nets,
                                Seconds dt) {
  if (nets.empty()) return;
  ThermalNetwork& ref = *nets[0];
  ref.ensure_adjacency();
  const std::size_t n = ref.nodes_.size();
  for (ThermalNetwork* net_ptr : nets) {
    ThermalNetwork& net = *net_ptr;
    if (net.nodes_.size() != n || net.edges_.size() != ref.edges_.size())
      throw std::invalid_argument(
          "ThermalNetwork::step_batch: topology mismatch (size)");
    for (std::size_t i = 0; i < n; ++i)
      if (net.nodes_[i].boundary != ref.nodes_[i].boundary)
        throw std::invalid_argument(
            "ThermalNetwork::step_batch: topology mismatch (boundary)");
    for (std::size_t e = 0; e < ref.edges_.size(); ++e)
      if (net.edges_[e].a != ref.edges_[e].a ||
          net.edges_[e].b != ref.edges_[e].b)
        throw std::invalid_argument(
            "ThermalNetwork::step_batch: topology mismatch (edges)");
    if (net.decay_arg_.size() != n) {
      net.decay_arg_.assign(n, std::numeric_limits<double>::quiet_NaN());
      net.decay_val_.assign(n, 0.0);
    }
    net.new_temps_.resize(n);
    // The batch walks ref's adjacency for every net (same netlist ⇒ same
    // index, so sharing ref's is exact); each net still materialises its own
    // so a later per-net step()/settle() finds it built.
    if (net_ptr != nets[0]) net.ensure_adjacency();
  }

  // Node-major outer loop, nets inner: one neighbour-list walk per node feeds
  // every net's update, and per net the expressions below are character-for-
  // character those of step() — same accumulation order, same memoized exp,
  // hence bit-identical results.
  for (std::size_t i = 0; i < n; ++i) {
    const bool boundary = ref.nodes_[i].boundary;
    const std::size_t begin = ref.adjacency_start_[i];
    const std::size_t end = ref.adjacency_start_[i + 1];
    for (ThermalNetwork* net_ptr : nets) {
      ThermalNetwork& net = *net_ptr;
      const Node& node = net.nodes_[i];
      if (boundary) {
        net.new_temps_[i] = node.temperature;
        continue;
      }
      double sum_g = 0.0, sum_gt = 0.0;
      for (std::size_t k = begin; k < end; ++k) {
        const Incidence& inc = ref.adjacency_[k];
        const double g = net.edges_[inc.edge].g;
        sum_g += g;
        sum_gt += g * net.nodes_[inc.other].temperature;
      }
      if (sum_g <= 0.0) {
        net.new_temps_[i] =
            node.temperature + node.power * dt.value() / node.capacitance;
        continue;
      }
      const double t_inf = (sum_gt + node.power) / sum_g;
      const double arg = -dt.value() * sum_g / node.capacitance;
      if (arg != net.decay_arg_[i]) {
        net.decay_arg_[i] = arg;
        net.decay_val_[i] = std::exp(arg);
      }
      net.new_temps_[i] = t_inf + (node.temperature - t_inf) * net.decay_val_[i];
    }
  }
  for (ThermalNetwork* net_ptr : nets)
    for (std::size_t i = 0; i < n; ++i)
      net_ptr->nodes_[i].temperature = net_ptr->new_temps_[i];
}

void ThermalNetwork::settle() {
  // Gauss-Seidel relaxation to the algebraic steady state; the networks used
  // here are tiny (≤ 8 nodes) and diagonally dominant, so this converges
  // fast. Each node's incident edges come from the precomputed CSR index
  // (O(N + E) per sweep instead of the O(N·E) edge rescan).
  ensure_adjacency();
  for (int iter = 0; iter < 500; ++iter) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      if (node.boundary) continue;
      double g = 0.0, gt = 0.0;
      const std::size_t end = adjacency_start_[i + 1];
      for (std::size_t k = adjacency_start_[i]; k < end; ++k) {
        const Incidence& inc = adjacency_[k];
        g += edges_[inc.edge].g;
        gt += edges_[inc.edge].g * nodes_[inc.other].temperature;
      }
      if (g <= 0.0) continue;
      const double t_new = (gt + node.power) / g;
      max_delta = std::max(max_delta, std::abs(t_new - node.temperature));
      node.temperature = t_new;
    }
    if (max_delta < 1e-9) break;
  }
}

void ThermalNetwork::reset() {
  for (Node& node : nodes_) {
    node.temperature = node.initial_temperature;
    node.power = 0.0;
  }
  for (Edge& e : edges_) e.g = e.initial_g;
}

Kelvin ThermalNetwork::temperature(NodeId n) const {
  check_node(n);
  return Kelvin{nodes_[n].temperature};
}

void ThermalNetwork::check_node(NodeId n) const {
  if (n >= nodes_.size()) throw std::out_of_range("ThermalNetwork: bad node id");
}

}  // namespace aqua::phys
