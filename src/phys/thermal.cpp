#include "phys/thermal.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::phys {

using util::Kelvin;
using util::Seconds;
using util::Watts;

ThermalNetwork::NodeId ThermalNetwork::add_node(double capacitance,
                                                Kelvin initial) {
  if (capacitance <= 0.0)
    throw std::invalid_argument("ThermalNetwork: capacitance must be positive");
  nodes_.push_back(Node{capacitance, initial.value(), 0.0, false, initial.value()});
  return nodes_.size() - 1;
}

ThermalNetwork::NodeId ThermalNetwork::add_boundary(Kelvin temperature) {
  nodes_.push_back(Node{0.0, temperature.value(), 0.0, true, temperature.value()});
  return nodes_.size() - 1;
}

ThermalNetwork::EdgeId ThermalNetwork::connect(NodeId a, NodeId b,
                                               double conductance) {
  check_node(a);
  check_node(b);
  if (conductance < 0.0)
    throw std::invalid_argument("ThermalNetwork: negative conductance");
  edges_.push_back(Edge{a, b, conductance, conductance});
  return edges_.size() - 1;
}

void ThermalNetwork::set_conductance(EdgeId e, double conductance) {
  if (e >= edges_.size()) throw std::out_of_range("ThermalNetwork: bad edge id");
  if (conductance < 0.0)
    throw std::invalid_argument("ThermalNetwork: negative conductance");
  edges_[e].g = conductance;
}

double ThermalNetwork::conductance(EdgeId e) const {
  if (e >= edges_.size()) throw std::out_of_range("ThermalNetwork: bad edge id");
  return edges_[e].g;
}

void ThermalNetwork::set_boundary_temperature(NodeId n, Kelvin t) {
  check_node(n);
  if (!nodes_[n].boundary)
    throw std::invalid_argument("ThermalNetwork: node is not a boundary");
  nodes_[n].temperature = t.value();
}

void ThermalNetwork::set_power(NodeId n, Watts p) {
  check_node(n);
  nodes_[n].power = p.value();
}

void ThermalNetwork::step(Seconds dt) {
  const std::size_t n = nodes_.size();
  sum_g_.assign(n, 0.0);
  sum_gt_.assign(n, 0.0);
  for (const Edge& e : edges_) {
    sum_g_[e.a] += e.g;
    sum_g_[e.b] += e.g;
    sum_gt_[e.a] += e.g * nodes_[e.b].temperature;
    sum_gt_[e.b] += e.g * nodes_[e.a].temperature;
  }
  for (std::size_t i = 0; i < n; ++i) {
    Node& node = nodes_[i];
    if (node.boundary) continue;
    if (sum_g_[i] <= 0.0) {
      // Isolated node: pure integration of injected power.
      node.temperature += node.power * dt.value() / node.capacitance;
      continue;
    }
    const double t_inf = (sum_gt_[i] + node.power) / sum_g_[i];
    const double decay = std::exp(-dt.value() * sum_g_[i] / node.capacitance);
    node.temperature = t_inf + (node.temperature - t_inf) * decay;
  }
}

void ThermalNetwork::settle() {
  // Gauss-Seidel relaxation to the algebraic steady state; the networks used
  // here are tiny (≤ 8 nodes) and diagonally dominant, so this converges fast.
  for (int iter = 0; iter < 500; ++iter) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node& node = nodes_[i];
      if (node.boundary) continue;
      double g = 0.0, gt = 0.0;
      for (const Edge& e : edges_) {
        if (e.a == i) {
          g += e.g;
          gt += e.g * nodes_[e.b].temperature;
        } else if (e.b == i) {
          g += e.g;
          gt += e.g * nodes_[e.a].temperature;
        }
      }
      if (g <= 0.0) continue;
      const double t_new = (gt + node.power) / g;
      max_delta = std::max(max_delta, std::abs(t_new - node.temperature));
      node.temperature = t_new;
    }
    if (max_delta < 1e-9) break;
  }
}

void ThermalNetwork::reset() {
  for (Node& node : nodes_) {
    node.temperature = node.initial_temperature;
    node.power = 0.0;
  }
  for (Edge& e : edges_) e.g = e.initial_g;
}

Kelvin ThermalNetwork::temperature(NodeId n) const {
  check_node(n);
  return Kelvin{nodes_[n].temperature};
}

void ThermalNetwork::check_node(NodeId n) const {
  if (n >= nodes_.size()) throw std::out_of_range("ThermalNetwork: bad node id");
}

}  // namespace aqua::phys
