// thermal.hpp — lumped-parameter thermal network with exponential-Euler
// stepping. The MAF die model is a stiff system (a ~2 µm membrane element in
// water has a time constant of tens of microseconds while experiments run for
// minutes), so each capacitive node is relaxed analytically toward the
// temperature implied by its neighbours over the step:
//
//   T⁺ = T∞ + (T − T∞)·exp(−dt·ΣG/C),  T∞ = (Σ G_i·T_i + P) / ΣG
//
// which is unconditionally stable and exact for a single node with frozen
// neighbours. Conductances may be updated every step (flow-dependent film
// coefficients, growing deposits).
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "state/serial.hpp"
#include "util/units.hpp"

namespace aqua::phys {

class ThermalNetwork {
 public:
  using NodeId = std::size_t;
  using EdgeId = std::size_t;

  /// Adds a capacitive node (state variable). Capacitance in J/K.
  NodeId add_node(double capacitance, util::Kelvin initial);

  /// Adds a boundary node with a prescribed temperature (infinite capacitance).
  NodeId add_boundary(util::Kelvin temperature);

  /// Connects two nodes with thermal conductance g (W/K). Returns an edge id
  /// whose conductance can be updated later.
  EdgeId connect(NodeId a, NodeId b, double conductance);

  void set_conductance(EdgeId e, double conductance);
  [[nodiscard]] double conductance(EdgeId e) const;

  void set_boundary_temperature(NodeId n, util::Kelvin t);

  /// Sets the power (W) injected into a node for subsequent steps (Joule
  /// heating of the bridge resistors). Persists until changed.
  void set_power(NodeId n, util::Watts p);

  /// Advances all capacitive nodes by dt. The per-node decay factor
  /// exp(−dt·ΣG/C) is memoized on its exact argument: a node whose incident
  /// conductances (and dt) are bit-identical to the previous step reuses the
  /// cached exponential, while any change — e.g. a flow-dependent film
  /// coefficient — recomputes it exactly. Same results either way; the cache
  /// only skips recomputing a value that is already known.
  void step(util::Seconds dt);

  /// Advances several networks with identical topology by the same dt in one
  /// node-major sweep: the CSR adjacency is built once (on nets[0]) and every
  /// node's neighbour walk is shared across the batch, so a fleet of dies
  /// stamped from the same netlist pays the index and loop overhead once
  /// instead of per die. Per-net values (conductances, powers, temperatures,
  /// decay memo) stay per-net, and each net's per-node expressions run in
  /// exactly step()'s operand order — bit-identical to calling nets[k]->
  /// step(dt) for each k. Throws std::invalid_argument if any network's
  /// topology (node count, boundary pattern, edge endpoints) differs from
  /// nets[0]'s.
  static void step_batch(std::span<ThermalNetwork* const> nets,
                         util::Seconds dt);

  /// Solves the steady state (all capacitive nodes relaxed) in place. Used by
  /// the quasi-static path of long-duration experiments.
  void settle();

  /// Restores every node temperature, boundary temperature, injected power and
  /// edge conductance to its as-built value. Topology is untouched.
  void reset();

  [[nodiscard]] util::Kelvin temperature(NodeId n) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Checkpoint support: per-node temperature and power, per-edge
  /// conductance. Topology, adjacency and the decay memo are not serialised —
  /// the memo is a pure cache (exp() of the same argument recomputes to the
  /// same bits), so a restored network replays bit-identically.
  void save_state(state::Writer& w) const {
    w.size(nodes_.size());
    for (const Node& n : nodes_) {
      w.f64(n.temperature);
      w.f64(n.power);
    }
    w.size(edges_.size());
    for (const Edge& e : edges_) w.f64(e.g);
  }
  void load_state(state::Reader& r) {
    if (r.size(16) != nodes_.size())
      throw state::Error("ThermalNetwork: node count mismatch");
    for (Node& n : nodes_) {
      n.temperature = r.f64();
      n.power = r.f64();
    }
    if (r.size(8) != edges_.size())
      throw state::Error("ThermalNetwork: edge count mismatch");
    for (Edge& e : edges_) e.g = r.f64();
    // The decay memo needs no serialising: it maps an exact argument to its
    // exp(), so a post-restore hit returns the same bits a recompute would.
    // Clearing it anyway keeps restored and freshly-built networks in the
    // same (empty-cache) starting state.
    decay_arg_.assign(decay_arg_.size(), std::nan(""));
  }

 private:
  struct Node {
    double capacitance;  // J/K; <= 0 marks a boundary node
    double temperature;  // K
    double power = 0.0;  // W
    bool boundary = false;
    double initial_temperature = 0.0;  // K, as built (for reset)
  };
  struct Edge {
    NodeId a, b;
    double g;
    double initial_g;  // as built (for reset)
  };
  /// One node→edge incidence entry: the edge and the node on its far side.
  struct Incidence {
    EdgeId edge;
    NodeId other;
  };

  void check_node(NodeId n) const;
  /// (Re)builds the CSR-style node→edge index if topology changed since the
  /// last build. Per node, incident edges appear in increasing edge id — the
  /// same order the edge-major scan visits them, so switching the sweeps to
  /// the index preserves FP accumulation order.
  void ensure_adjacency() const;

  std::vector<Node> nodes_;
  std::vector<Edge> edges_;

  // CSR adjacency: incidence entries of node n live at
  // adjacency_[adjacency_start_[n] .. adjacency_start_[n+1]). Built lazily on
  // first step()/settle(), invalidated by connect()/add_node/add_boundary.
  mutable std::vector<Incidence> adjacency_;
  mutable std::vector<std::size_t> adjacency_start_;
  mutable bool adjacency_valid_ = false;

  // Decay memo: exp(decay_arg_[n]) == decay_val_[n] for the last argument
  // −dt·ΣG/C seen at node n (NaN = never computed).
  std::vector<double> decay_arg_;
  std::vector<double> decay_val_;
  std::vector<double> new_temps_;  // scratch: staged temperatures for step()
};

}  // namespace aqua::phys
