#include "phys/membrane.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::phys {

using util::Metres;
using util::Pascals;
using util::SquareMetres;

namespace {
void validate(const MembraneSpec& spec) {
  if (spec.side.value() <= 0.0 || spec.thickness.value() <= 0.0)
    throw std::invalid_argument("MembraneSpec: non-positive geometry");
}
constexpr double kCavityDepth = 400e-6;  // KOH-etched through a standard wafer
}  // namespace

double peak_stress(const MembraneSpec& spec, Pascals pressure) {
  validate(spec);
  const double a = 0.5 * spec.side.value();  // half-span
  const double t = spec.thickness.value();
  // Clamped square plate, uniform load: sigma_max = 0.308·p·(a/t)². An
  // unsupported 1 mm × 2 µm stack sees gigapascals already at 1 bar — which
  // is precisely why the paper fills the backside cavity: the (nearly
  // incompressible) organic fill carries almost all of the load and the
  // membrane only bends with the fill's compliance (~2 % residual share).
  const double load_share = spec.backside_filled ? 0.02 : 1.0;
  const double bending =
      0.308 * load_share * std::abs(pressure.value()) * (a / t) * (a / t);
  return bending;
}

double pressure_safety_factor(const MembraneSpec& spec, Pascals pressure) {
  const double total = spec.residual_stress_pa + peak_stress(spec, pressure);
  return spec.fracture_strength_pa / total;
}

bool survives(const MembraneSpec& spec, Pascals pressure) {
  return pressure_safety_factor(spec, pressure) >= 2.0;
}

double center_deflection(const MembraneSpec& spec, Pascals pressure) {
  validate(spec);
  // Clamped square plate small-deflection solution: w0 = 0.00126·p·L⁴/D with
  // D = E·t³/(12(1−ν²)); SiN-dominated stack E ≈ 250 GPa, ν ≈ 0.23. The
  // backside fill shares the load when present (stiffening factor ~5).
  constexpr double kYoung = 250e9, kPoisson = 0.23;
  const double t = spec.thickness.value();
  const double d = kYoung * t * t * t / (12.0 * (1.0 - kPoisson * kPoisson));
  const double l = spec.side.value();
  double w0 = 0.00126 * std::abs(pressure.value()) * l * l * l * l / d;
  if (spec.backside_filled) w0 /= 5.0;
  return w0;
}

double edge_conductance(const MembraneSpec& spec, Metres heater_length) {
  validate(spec);
  // Heat leaves the heater strip through the membrane sheet toward the rim on
  // both sides: G = 2·k·(w·t)/path, path ≈ half the free span.
  const double path = 0.5 * (0.5 * spec.side.value());
  return 2.0 * spec.stack_conductivity * heater_length.value() *
         spec.thickness.value() / path;
}

double backside_conductance(const MembraneSpec& spec,
                            SquareMetres heater_footprint) {
  validate(spec);
  const double k = spec.backside_filled ? 0.2 : 0.6;
  return k * heater_footprint.value() / kCavityDepth;
}

}  // namespace aqua::phys
