#include "phys/saturation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::phys {

using util::Kelvin;
using util::Pascals;

Pascals vapour_pressure(Kelvin t) {
  const double tc = util::to_celsius(t);
  if (tc < 0.0 || tc > 150.0)
    throw std::invalid_argument("vapour_pressure: outside Antoine fit range");
  // Antoine constants for water, 1–100 °C, P in mmHg, T in °C.
  const double log10_mmhg = 8.07131 - 1730.63 / (233.426 + tc);
  return Pascals{std::pow(10.0, log10_mmhg) * 133.322};
}

Kelvin saturation_temperature(Pascals p) {
  if (p.value() <= 0.0)
    throw std::invalid_argument("saturation_temperature: non-positive pressure");
  const double mmhg = p.value() / 133.322;
  const double tc = 1730.63 / (8.07131 - std::log10(mmhg)) - 233.426;
  return util::celsius(tc);
}

double relative_gas_solubility(Kelvin t) {
  // Air solubility roughly halves between 0 °C and 30 °C; exponential fit
  // anchored at 25 °C.
  constexpr double kDecayPerKelvin = 0.025;
  return std::exp(-kDecayPerKelvin * (t.value() - 298.15));
}

Kelvin bubble_onset_overtemperature(Kelvin bulk_temperature, Pascals pressure,
                                    double dissolved_gas_saturation) {
  if (dissolved_gas_saturation < 0.0)
    throw std::invalid_argument("bubble_onset: negative gas saturation");
  constexpr double kDecayPerKelvin = 0.025;
  // Heterogeneous nucleation needs ~1.5x local supersaturation before bubbles
  // hold on to the (smooth, passivated) surface.
  constexpr double kNucleationBarrier = 1.5;
  constexpr double kAtmosphere = 101325.0;

  double outgassing_onset;
  if (dissolved_gas_saturation < 1e-6) {
    outgassing_onset = 1e9;  // fully degassed: no outgassing, only boiling
  } else {
    // Gas comes out of solution at the wall once
    //   sigma > (p/p0)·s(T_wall)/s(T_bulk)·barrier
    // with s(T) the exponential solubility fit, giving the closed form below.
    outgassing_onset =
        std::log(kNucleationBarrier * pressure.value() /
                 (dissolved_gas_saturation * kAtmosphere)) /
        kDecayPerKelvin;
    outgassing_onset = std::max(0.0, outgassing_onset);
  }
  const double boiling_onset =
      saturation_temperature(pressure).value() - bulk_temperature.value();
  return Kelvin{std::min(outgassing_onset, std::max(0.0, boiling_onset))};
}

}  // namespace aqua::phys
