// resistor.hpp — temperature-dependent thin-film resistor model (paper Eq. 1):
//   R(T) = R0·(1 + α·(T − T0) + β·(T − T0)²)
// The MAF die uses Ti/TiN films, which the paper notes show "no drift due to
// electrical or temperature stress"; a drift term is still modelled so the
// fouling/aging experiments can inject it.
#pragma once

#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::phys {

struct TcrResistorSpec {
  util::Ohms nominal;             ///< R0 at the reference temperature
  util::Ohms tolerance;           ///< absolute manufacturing tolerance (± value)
  util::Kelvin reference;         ///< T0
  double alpha;                   ///< linear TCR (1/K), Ti ~ 3.5e-3
  double beta = 0.0;              ///< quadratic TCR (1/K²), small
};

class TcrResistor {
 public:
  /// Constructs with the exact nominal value (no tolerance applied).
  explicit TcrResistor(const TcrResistorSpec& spec);

  /// Constructs with a tolerance draw from `rng` (uniform within ±tolerance),
  /// as a production part would arrive.
  TcrResistor(const TcrResistorSpec& spec, util::Rng& rng);

  /// Resistance at the given absolute element temperature.
  [[nodiscard]] util::Ohms resistance(util::Kelvin t) const;

  /// Inverts R(T) for the element temperature implied by the given resistance
  /// (linear term only when beta == 0, quadratic solve otherwise).
  [[nodiscard]] util::Kelvin temperature_for(util::Ohms r) const;

  /// Permanently shifts R0 by `delta` (aging/stress injection for tests).
  void apply_drift(util::Ohms delta) { r0_ += delta; }

  [[nodiscard]] util::Ohms r0() const { return r0_; }
  [[nodiscard]] const TcrResistorSpec& spec() const { return spec_; }

 private:
  TcrResistorSpec spec_;
  util::Ohms r0_;
};

}  // namespace aqua::phys
