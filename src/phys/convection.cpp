#include "phys/convection.hpp"

#include <cmath>
#include <stdexcept>

namespace aqua::phys {

using util::Kelvin;
using util::Metres;
using util::MetresPerSecond;
using util::Watts;

double reynolds(const FluidProperties& fluid, MetresPerSecond speed,
                Metres diameter) {
  return fluid.density * std::abs(speed.value()) * diameter.value() /
         fluid.dynamic_viscosity;
}

double kramers_nusselt(double reynolds_number, double prandtl_number) {
  if (reynolds_number < 0.0 || prandtl_number <= 0.0)
    throw std::invalid_argument("kramers_nusselt: non-physical inputs");
  return 0.42 * std::pow(prandtl_number, 0.20) +
         0.57 * std::cbrt(prandtl_number) * std::sqrt(reynolds_number);
}

double film_coefficient(const FluidProperties& fluid, MetresPerSecond speed,
                        const WireGeometry& wire) {
  const double re = reynolds(fluid, speed, wire.diameter);
  const double nu = kramers_nusselt(re, fluid.prandtl());
  return nu * fluid.thermal_conductivity / wire.diameter.value();
}

KingCoefficients king_coefficients(const FluidProperties& fluid,
                                   const WireGeometry& wire) {
  // Q = Nu·k/d · (pi·d·L) · ΔT = pi·L·k·Nu·ΔT, so with Kramers:
  //   A = pi·L·k·0.42·Pr^0.2
  //   B = pi·L·k·0.57·Pr^(1/3)·sqrt(rho·d/mu)
  constexpr double kPi = 3.14159265358979323846;
  const double common = kPi * wire.length.value() * fluid.thermal_conductivity;
  const double pr = fluid.prandtl();
  return KingCoefficients{
      common * 0.42 * std::pow(pr, 0.20),
      common * 0.57 * std::cbrt(pr) *
          std::sqrt(fluid.density * wire.diameter.value() / fluid.dynamic_viscosity),
      0.5};
}

Watts convective_loss(const FluidProperties& fluid, const WireGeometry& wire,
                      MetresPerSecond speed, Kelvin overtemperature) {
  const auto [a, b, n] = king_coefficients(fluid, wire);
  const double v = std::abs(speed.value());
  return Watts{overtemperature.value() * (a + b * std::pow(v, n))};
}

}  // namespace aqua::phys
