#include "phys/carbonate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::phys {

using util::Kelvin;
using util::SquareMetres;

double caco3_solubility_mg_per_l(Kelvin t) {
  const double tc = util::to_celsius(t);
  // Effective (CO2-equilibrated) solubility of CaCO3 in potable water,
  // retrograde with temperature. Anchored so that typical hard tap water
  // (~250-300 mg/L as CaCO3) sits near saturation at distribution
  // temperatures and becomes supersaturated on heated walls — the regime the
  // paper's heater operates in (Eq. 3).
  return 330.0 * std::exp(-0.022 * (tc - 15.0));
}

double saturation_ratio(const WaterChemistry& chem, Kelvin wall_temperature) {
  // The scaling-prone fraction of hardness is limited by carbonate
  // availability (alkalinity) and boosted/suppressed by pH around 7.5
  // (carbonate speciation), captured by a logistic factor.
  const double driving =
      std::min(chem.hardness_mg_per_l, chem.alkalinity_mg_per_l);
  const double ph_factor = 1.0 / (1.0 + std::exp(-(chem.ph - 7.0) * 2.0));
  const double solubility = caco3_solubility_mg_per_l(wall_temperature);
  return driving * ph_factor / solubility;
}

double deposit_growth_rate(const ScalingKinetics& kinetics,
                           const WaterChemistry& chem, Kelvin wall_temperature,
                           double current_thickness_m) {
  if (current_thickness_m < 0.0)
    throw std::invalid_argument("deposit_growth_rate: negative thickness");
  const double s = saturation_ratio(chem, wall_temperature);
  if (s >= 1.0) {
    // Growth slows as the deposit insulates the surface and its own outer face
    // cools: first-order saturation with a 10 µm characteristic thickness.
    const double self_limit = std::exp(-current_thickness_m / 10e-6);
    return kinetics.surface_reactivity * kinetics.growth_rate * (s - 1.0) *
           self_limit;
  }
  // Undersaturated: existing deposit slowly redissolves (never below zero —
  // the caller clamps thickness).
  return current_thickness_m > 0.0 ? -kinetics.dissolution_rate * (1.0 - s) : 0.0;
}

double deposit_thermal_resistance(double thickness_m, SquareMetres area) {
  if (thickness_m < 0.0 || area.value() <= 0.0)
    throw std::invalid_argument("deposit_thermal_resistance: bad inputs");
  constexpr double kCalciteConductivity = 2.2;  // W/(m·K)
  return thickness_m / (kCalciteConductivity * area.value());
}

}  // namespace aqua::phys
