// saturation.hpp — water vapour pressure / boiling point and dissolved-gas
// outgassing thresholds. Bubbles on the MAF heater (paper Fig. 7) are not
// boiling bubbles: at 1–3 bar a wall a few kelvin above ambient outgasses
// dissolved air, because gas solubility falls steeply with temperature. Both
// mechanisms are modelled; the fouling model uses whichever onset is lower.
#pragma once

#include "util/units.hpp"

namespace aqua::phys {

/// Saturated vapour pressure of water (Antoine equation, 1–100 °C).
[[nodiscard]] util::Pascals vapour_pressure(util::Kelvin t);

/// Boiling temperature at the given absolute pressure (inverse Antoine).
[[nodiscard]] util::Kelvin saturation_temperature(util::Pascals p);

/// Relative air solubility in water vs 25 °C (dimensionless, falls with T);
/// Henry's-law temperature dependence for O2/N2 mixtures.
[[nodiscard]] double relative_gas_solubility(util::Kelvin t);

/// Wall overtemperature (K above the bulk temperature) at which gas bubbles
/// start to nucleate, for water with the given dissolved-gas saturation
/// (1.0 = air-saturated at bulk conditions) at absolute pressure p. Higher
/// pressure re-dissolves gas and raises the onset; degassed water raises it
/// strongly. Clamped below by 0 (already supersaturated) and above by the
/// boiling onset.
[[nodiscard]] util::Kelvin bubble_onset_overtemperature(
    util::Kelvin bulk_temperature, util::Pascals pressure,
    double dissolved_gas_saturation = 1.0);

}  // namespace aqua::phys
