// fluid.hpp — temperature-dependent thermophysical properties of the media the
// MAF sensor operates in: potable water (the paper's target) and air (the
// die's original automotive application).
//
// Property fits are standard engineering correlations valid over 0–90 °C
// (water) and −40…+125 °C (air); sources are noted per function. All values
// are coherent SI.
#pragma once

#include "util/units.hpp"

namespace aqua::phys {

enum class Medium { kWater, kAir };

/// Thermophysical state of a fluid at one temperature (and pressure for gas
/// density).
struct FluidProperties {
  double density;               ///< kg/m^3
  double dynamic_viscosity;     ///< Pa·s
  double thermal_conductivity;  ///< W/(m·K)
  double specific_heat;         ///< J/(kg·K), isobaric

  /// Prandtl number cp·mu/k.
  [[nodiscard]] double prandtl() const {
    return specific_heat * dynamic_viscosity / thermal_conductivity;
  }
  /// Kinematic viscosity mu/rho.
  [[nodiscard]] double kinematic_viscosity() const {
    return dynamic_viscosity / density;
  }
  /// Thermal diffusivity k/(rho·cp).
  [[nodiscard]] double thermal_diffusivity() const {
    return thermal_conductivity / (density * specific_heat);
  }
};

/// Liquid water at temperature `t` (validated 0–90 °C). Pressure dependence of
/// liquid properties is negligible at the paper's 0–7 bar and is ignored.
[[nodiscard]] FluidProperties water_properties(util::Kelvin t);

/// Dry air at temperature `t` and absolute pressure `p`.
[[nodiscard]] FluidProperties air_properties(util::Kelvin t,
                                             util::Pascals p = util::bar(1.01325));

/// Dispatch helper for code that is generic over the medium.
[[nodiscard]] FluidProperties properties(Medium medium, util::Kelvin t,
                                         util::Pascals p = util::bar(1.01325));

}  // namespace aqua::phys
