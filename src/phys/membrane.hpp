// membrane.hpp — mechanics and thermal isolation of the SiN/SiO2/SiN sensor
// membrane. The paper stresses that (a) the KOH-etched LPCVD stack is only
// slightly tensile and mechanically stable, (b) the backside cavity is filled
// with a low-conductivity organic to survive water pressure and suppress
// backside fluctuations, and (c) the 2 µm stack thermally isolates the wires
// from the chip edge. Experiment E9 checks the pressure margin; the thermal
// terms feed the die model.
#pragma once

#include "util/units.hpp"

namespace aqua::phys {

struct MembraneSpec {
  util::Metres side = util::micrometres(1000.0);     ///< square membrane edge
  util::Metres thickness = util::micrometres(2.0);   ///< full stack incl. passivation
  double residual_stress_pa = 50e6;                  ///< slight tensile (LPCVD)
  double fracture_strength_pa = 6.0e9;               ///< LPCVD SiN ~6 GPa
  double stack_conductivity = 2.5;                   ///< W/(m·K), SiN/SiO2 mix
  double areal_heat_capacity = 4.2e3 * 2.0e-6 * 0.7; ///< J/(m²·K) ≈ ρ·cp·t
  bool backside_filled = true;                       ///< organic fill (water app)
};

/// Peak bending+tension stress (Pa) in a clamped square membrane under uniform
/// differential pressure. Small-deflection plate theory with a membrane-stress
/// correction; coefficient 0.308 for a clamped square plate.
[[nodiscard]] double peak_stress(const MembraneSpec& spec, util::Pascals pressure);

/// Safety factor = fracture strength / (residual + pressure-induced stress).
[[nodiscard]] double pressure_safety_factor(const MembraneSpec& spec,
                                            util::Pascals pressure);

/// True if the membrane survives the given pressure with margin >= 2
/// (engineering criterion used by the packaging qualification experiment).
[[nodiscard]] bool survives(const MembraneSpec& spec, util::Pascals pressure);

/// Center deflection (m) of the clamped square membrane under pressure.
[[nodiscard]] double center_deflection(const MembraneSpec& spec,
                                       util::Pascals pressure);

/// In-plane thermal conductance (W/K) from a heater strip of the given length
/// at the membrane centre to the chip rim (the "edge leak" King's-law A term
/// competes with). Two parallel half-sheets of width `heater_length`.
[[nodiscard]] double edge_conductance(const MembraneSpec& spec,
                                      util::Metres heater_length);

/// Conductance (W/K) through the backside: organic fill if `backside_filled`
/// (k ≈ 0.2 W/(m·K)), otherwise stagnant water (k ≈ 0.6), over the heater
/// footprint. The fill being ~3x less conductive than water is exactly why the
/// paper fills the cavity.
[[nodiscard]] double backside_conductance(const MembraneSpec& spec,
                                          util::SquareMetres heater_footprint);

}  // namespace aqua::phys
