#include "analog/bridge.hpp"

#include <stdexcept>

namespace aqua::analog {

using util::Amperes;
using util::Ohms;
using util::Volts;
using util::Watts;

BridgeSolution solve_bridge(const BridgeArms& arms, Volts supply) {
  const double rta = arms.r_top_a.value(), rba = arms.r_bot_a.value();
  const double rtb = arms.r_top_b.value(), rbb = arms.r_bot_b.value();
  if (rta <= 0.0 || rba <= 0.0 || rtb <= 0.0 || rbb <= 0.0)
    throw std::invalid_argument("solve_bridge: non-positive arm resistance");
  const double vs = supply.value();
  const double ia = vs / (rta + rba);
  const double ib = vs / (rtb + rbb);
  const double va = ia * rba;
  const double vb = ib * rbb;
  return BridgeSolution{Volts{va},
                        Volts{vb},
                        Volts{va - vb},
                        Amperes{ia},
                        Amperes{ib},
                        Watts{ia * ia * rba},
                        Watts{ib * ib * rbb}};
}

Ohms balancing_top_resistor(Ohms r_hot, Ohms r_top_b, Ohms r_ref) {
  if (r_hot.value() <= 0.0 || r_top_b.value() <= 0.0 || r_ref.value() <= 0.0)
    throw std::invalid_argument("balancing_top_resistor: non-positive resistance");
  return Ohms{r_hot.value() * r_top_b.value() / r_ref.value()};
}

}  // namespace aqua::analog
