// amplifier.hpp — ISIF readout stage model. The input channel's operational
// amplifier "can be programmed to implement a charge amplifier, a
// trans-resistive stage or an instrument amplifier" (paper §3); the MAF
// application uses the instrument-amplifier configuration on the bridge taps.
// Modelled non-idealities: programmable gain, input-referred offset with
// drift, white + flicker input noise, single-pole bandwidth, rail saturation.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "analog/noise.hpp"
#include "sim/integrator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::analog {

struct InstrumentAmpSpec {
  double gain = 16.0;                       ///< programmable: 1..128 on ISIF
  /// Residual input offset spread after the ISIF readout stage's auto-zero
  /// trim. (An untrimmed CMOS amp would sit near ±0.5 mV — enough to flip the
  /// sign of the bridge error at low drive and deadlock the CTA bootstrap.)
  util::Volts offset_sigma = util::millivolts(0.1);
  double offset_drift_per_k = 2e-6;          ///< V/K of ambient drift
  double noise_density = 20e-9;              ///< V/√Hz white, input-referred
  double flicker_density_1hz = 200e-9;       ///< V/√Hz at 1 Hz
  util::Hertz bandwidth = util::hertz(200e3);
  util::Volts rail = util::volts(3.3);       ///< output saturates at ±rail/2
                                             ///< around mid-supply (bipolar model)
};

class InstrumentAmp {
 public:
  /// `sample_rate` is the rate at which step() will be called (the analog
  /// solver tick); the noise generators are scaled to it. The offset is drawn
  /// once from `rng`, as a physical part's would be.
  InstrumentAmp(const InstrumentAmpSpec& spec, util::Hertz sample_rate,
                util::Rng rng);

  /// Processes one differential input sample; returns the amplified output.
  double step(util::Volts differential_input, util::Seconds dt,
              util::Kelvin ambient = util::celsius(25.0));

  /// Block execution: amplifies in.size() samples (volts, one per tick of
  /// `dt`) into `out`. Bit-identical to in.size() step() calls — same noise
  /// draw order, same FP operation order per sample — but the noise draws are
  /// batched into an internal scratch buffer and the bandwidth pole's decay
  /// factor is computed once per block instead of once per sample. The
  /// scratch grows to the largest block seen and is then reused (no
  /// steady-state allocation).
  void process_block(std::span<const double> in, std::span<double> out,
                     util::Seconds dt,
                     util::Kelvin ambient = util::celsius(25.0));

  /// Register-resident per-block state for fused frame kernels
  /// (isif::InputChannel::process_frame and this class's process_block).
  /// Build with begin_block(), call step() once per sample with that
  /// sample's pre-drawn noise values, then commit_block(). step() performs
  /// the identical FP operations, in the identical order, as
  /// InstrumentAmp::step() — the block-execution contract (DESIGN.md §9).
  struct BlockKernel {
    double offset, drift, gain, half_rail, a, y;
    bool saturated;
    double step(double in, double white, double flicker) {
      const double input = in + offset + drift + white + flicker;
      const double target = gain * input;
      y = (a <= 0.0) ? target : target + (y - target) * a;
      saturated = std::abs(y) > half_rail;
      return std::clamp(y, -half_rail, half_rail);
    }
  };
  /// Captures hoisted per-block constants (drift, gain, pole decay for `dt`)
  /// and the live pole/saturation state.
  [[nodiscard]] BlockKernel begin_block(util::Seconds dt,
                                        util::Kelvin ambient) const;
  /// Writes a kernel's state (pole value, saturation flag) back.
  void commit_block(const BlockKernel& k);
  /// Batched draws from the amp's two independent noise streams — exactly the
  /// values out.size() interleaved step() calls would consume.
  void fill_noise(std::span<double> white, std::span<double> flicker);

  /// Draw kernels for fully fused frame loops: the amp's two noise streams as
  /// register-resident state, drawn one sample at a time in the same
  /// white-then-flicker order as step() (DESIGN.md §9).
  struct NoiseKernel {
    WhiteNoise::BlockKernel white;
    FlickerNoise::BlockKernel flicker;
  };
  [[nodiscard]] NoiseKernel begin_noise_block() const {
    return NoiseKernel{white_.begin_block(), flicker_.begin_block()};
  }
  void commit_noise_block(const NoiseKernel& k) {
    white_.commit_block(k.white);
    flicker_.commit_block(k.flicker);
  }

  /// Returns the stage to its post-construction state: pole discharged,
  /// saturation flag cleared, noise streams rewound. The offset is a one-time
  /// physical draw (a part property, not state) and survives reset.
  void reset();

  void set_gain(double gain);
  [[nodiscard]] double gain() const { return spec_.gain; }
  [[nodiscard]] util::Volts offset() const { return offset_; }
  [[nodiscard]] bool saturated() const { return saturated_; }

  /// Checkpoint support: noise streams, pole value and saturation flag. The
  /// offset is a part draw, reproduced by reconstruction — never serialised.
  void save_state(state::Writer& w) const {
    white_.save_state(w);
    flicker_.save_state(w);
    w.f64(pole_.value());
    w.boolean(saturated_);
  }
  void load_state(state::Reader& r) {
    white_.load_state(r);
    flicker_.load_state(r);
    pole_.reset(r.f64());
    saturated_ = r.boolean();
  }

 private:
  InstrumentAmpSpec spec_;
  util::Volts offset_;
  WhiteNoise white_;
  FlickerNoise flicker_;
  sim::FirstOrderLag pole_;
  bool saturated_ = false;
  std::vector<double> white_scratch_;    // block-path noise staging
  std::vector<double> flicker_scratch_;
};

}  // namespace aqua::analog
