// amplifier.hpp — ISIF readout stage model. The input channel's operational
// amplifier "can be programmed to implement a charge amplifier, a
// trans-resistive stage or an instrument amplifier" (paper §3); the MAF
// application uses the instrument-amplifier configuration on the bridge taps.
// Modelled non-idealities: programmable gain, input-referred offset with
// drift, white + flicker input noise, single-pole bandwidth, rail saturation.
#pragma once

#include "analog/noise.hpp"
#include "sim/integrator.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::analog {

struct InstrumentAmpSpec {
  double gain = 16.0;                       ///< programmable: 1..128 on ISIF
  /// Residual input offset spread after the ISIF readout stage's auto-zero
  /// trim. (An untrimmed CMOS amp would sit near ±0.5 mV — enough to flip the
  /// sign of the bridge error at low drive and deadlock the CTA bootstrap.)
  util::Volts offset_sigma = util::millivolts(0.1);
  double offset_drift_per_k = 2e-6;          ///< V/K of ambient drift
  double noise_density = 20e-9;              ///< V/√Hz white, input-referred
  double flicker_density_1hz = 200e-9;       ///< V/√Hz at 1 Hz
  util::Hertz bandwidth = util::hertz(200e3);
  util::Volts rail = util::volts(3.3);       ///< output saturates at ±rail/2
                                             ///< around mid-supply (bipolar model)
};

class InstrumentAmp {
 public:
  /// `sample_rate` is the rate at which step() will be called (the analog
  /// solver tick); the noise generators are scaled to it. The offset is drawn
  /// once from `rng`, as a physical part's would be.
  InstrumentAmp(const InstrumentAmpSpec& spec, util::Hertz sample_rate,
                util::Rng rng);

  /// Processes one differential input sample; returns the amplified output.
  double step(util::Volts differential_input, util::Seconds dt,
              util::Kelvin ambient = util::celsius(25.0));

  /// Returns the stage to its post-construction state: pole discharged,
  /// saturation flag cleared, noise streams rewound. The offset is a one-time
  /// physical draw (a part property, not state) and survives reset.
  void reset();

  void set_gain(double gain);
  [[nodiscard]] double gain() const { return spec_.gain; }
  [[nodiscard]] util::Volts offset() const { return offset_; }
  [[nodiscard]] bool saturated() const { return saturated_; }

 private:
  InstrumentAmpSpec spec_;
  util::Volts offset_;
  WhiteNoise white_;
  FlickerNoise flicker_;
  sim::FirstOrderLag pole_;
  bool saturated_ = false;
};

}  // namespace aqua::analog
