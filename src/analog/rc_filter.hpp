// rc_filter.hpp — continuous-time anti-aliasing filter model (the ISIF channel
// has "low-pass filtering for anti-aliasing purpose" ahead of the ΣΔ ADC).
// Modelled as one or two cascaded RC poles stepped analytically, so it is
// exact for piecewise-constant inputs at any dt.
#pragma once

#include <vector>

#include "sim/integrator.hpp"
#include "util/units.hpp"

namespace aqua::analog {

class RcLowpass {
 public:
  /// `poles` identical first-order sections at cutoff `fc`.
  RcLowpass(util::Hertz fc, int poles = 1);

  double step(double input, util::Seconds dt);
  void reset(double value = 0.0);
  [[nodiscard]] double value() const;
  [[nodiscard]] util::Hertz cutoff() const { return fc_; }

 private:
  util::Hertz fc_;
  std::vector<sim::FirstOrderLag> stages_;
};

}  // namespace aqua::analog
