// rc_filter.hpp — continuous-time anti-aliasing filter model (the ISIF channel
// has "low-pass filtering for anti-aliasing purpose" ahead of the ΣΔ ADC).
// Modelled as one or two cascaded RC poles stepped analytically, so it is
// exact for piecewise-constant inputs at any dt.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "sim/integrator.hpp"
#include "state/serial.hpp"
#include "util/units.hpp"

namespace aqua::analog {

class RcLowpass {
 public:
  /// `poles` identical first-order sections at cutoff `fc`.
  RcLowpass(util::Hertz fc, int poles = 1);

  double step(double input, util::Seconds dt);

  /// Filters the block in place, one sample per tick of `dt`. Stage-major:
  /// each pole sweeps the whole block with its decay factor hoisted out of
  /// the loop. Per sample each stage applies the identical FP update as
  /// step(), so the result is bit-identical to per-sample stepping.
  void process_block(std::span<double> inout, util::Seconds dt);

  /// Register-resident per-block state for fused frame kernels (DESIGN.md
  /// §9). step() applies the identical FP update as the scalar step() for
  /// every pole; the constructor caps poles at 4, so fixed arrays suffice.
  struct BlockKernel {
    std::array<double, 4> a{}, y{};
    int poles = 0;
    double step(double x) {
      for (int i = 0; i < poles; ++i) {
        const std::size_t s = static_cast<std::size_t>(i);
        y[s] = (a[s] <= 0.0) ? x : x + (y[s] - x) * a[s];
        x = y[s];
      }
      return x;
    }
  };
  [[nodiscard]] BlockKernel begin_block(util::Seconds dt) const;
  void commit_block(const BlockKernel& k);

  void reset(double value = 0.0);
  [[nodiscard]] double value() const;
  [[nodiscard]] util::Hertz cutoff() const { return fc_; }

  /// Checkpoint support: one pole value per stage (stage count is config).
  void save_state(state::Writer& w) const {
    w.size(stages_.size());
    for (const sim::FirstOrderLag& stage : stages_) w.f64(stage.value());
  }
  void load_state(state::Reader& r) {
    if (r.size(8) != stages_.size())
      throw state::Error("RcLowpass: stage count mismatch");
    for (sim::FirstOrderLag& stage : stages_) stage.reset(r.f64());
  }

 private:
  util::Hertz fc_;
  std::vector<sim::FirstOrderLag> stages_;
};

}  // namespace aqua::analog
