// bridge.hpp — Wheatstone bridge electrical solver. The MAF half-bridges are
// wired as a classic four-arm bridge (paper Fig. 5): one leg carries a fixed
// top resistor and the heater Rh, the other a fixed top resistor and the
// ambient reference Rt. The CTA loop nulls the tap-to-tap voltage by driving
// the bridge supply.
//
//            supply
//        r_top_a  r_top_b
//   tap_a +        + tap_b       error = v_tap_a − v_tap_b
//        r_bot_a  r_bot_b        (Rh in arm A, Rt in arm B)
//            ground
#pragma once

#include "util/units.hpp"

namespace aqua::analog {

struct BridgeArms {
  util::Ohms r_top_a;
  util::Ohms r_bot_a;  ///< heater Rh
  util::Ohms r_top_b;
  util::Ohms r_bot_b;  ///< reference Rt
};

struct BridgeSolution {
  util::Volts v_tap_a;
  util::Volts v_tap_b;
  util::Volts differential;  ///< v_tap_a − v_tap_b
  util::Amperes i_arm_a;
  util::Amperes i_arm_b;
  util::Watts p_bot_a;  ///< Joule heating in Rh
  util::Watts p_bot_b;  ///< Joule heating in Rt
};

/// Solves the (unloaded-tap) bridge for the given supply. Throws on
/// non-positive arm resistance.
[[nodiscard]] BridgeSolution solve_bridge(const BridgeArms& arms,
                                          util::Volts supply);

/// Fixed top resistor for arm A such that the bridge balances when the heater
/// reaches `r_hot` while arm B reads `r_ref` under top resistor `r_top_b`:
///   r_top_a = r_hot · r_top_b / r_ref.
[[nodiscard]] util::Ohms balancing_top_resistor(util::Ohms r_hot,
                                                util::Ohms r_top_b,
                                                util::Ohms r_ref);

}  // namespace aqua::analog
