#include "analog/dac.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace aqua::analog {

using util::Rng;
using util::Seconds;
using util::Volts;

ThermometerDac::ThermometerDac(const ThermometerDacSpec& spec, Rng rng)
    : spec_(spec), buffer_(0.0, spec.settling_tau) {
  if (spec.bits < 4 || spec.bits > 14)
    throw std::invalid_argument("ThermometerDac: bits out of range [4,14]");
  if (spec.full_scale.value() <= 0.0)
    throw std::invalid_argument("ThermometerDac: bad full scale");
  const std::size_t n = std::size_t{1} << spec.bits;
  element_weights_.resize(n);
  cumulative_.resize(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    element_weights_[i] = 1.0 + rng.gaussian(0.0, spec.element_mismatch_sigma);
    cumulative_[i + 1] = cumulative_[i] + element_weights_[i];
  }
  total_weight_ = cumulative_[n];
}

void ThermometerDac::write_code(int code) {
  code_ = std::clamp(code, 0, max_code());
}

void ThermometerDac::write_voltage(Volts v) {
  const double frac = v.value() / spec_.full_scale.value();
  write_code(static_cast<int>(std::lround(frac * max_code())));
}

Volts ThermometerDac::step(Seconds dt) {
  return Volts{buffer_.step(static_output().value(), dt)};
}

void ThermometerDac::reset() {
  code_ = 0;
  buffer_.reset(0.0);
}

int ThermometerDac::max_code() const {
  return static_cast<int>((std::size_t{1} << spec_.bits) - 1);
}

Volts ThermometerDac::ideal_output(int code) const {
  const int c = std::clamp(code, 0, max_code());
  return Volts{spec_.full_scale.value() * static_cast<double>(c) /
               static_cast<double>(max_code())};
}

Volts ThermometerDac::static_output() const {
  // Thermometer decode: the first `code_` unit elements are on. Normalising by
  // the measured total weight models a trimmed full-scale reference.
  const double frac = cumulative_[static_cast<std::size_t>(code_)] /
                      total_weight_ * static_cast<double>(element_weights_.size()) /
                      static_cast<double>(max_code());
  return Volts{spec_.full_scale.value() * frac};
}

double ThermometerDac::inl_lsb(int code) const {
  const int c = std::clamp(code, 0, max_code());
  const double lsb = spec_.full_scale.value() / static_cast<double>(max_code());
  const double actual = spec_.full_scale.value() *
                        cumulative_[static_cast<std::size_t>(c)] / total_weight_ *
                        static_cast<double>(element_weights_.size()) /
                        static_cast<double>(max_code());
  return (actual - ideal_output(c).value()) / lsb;
}

}  // namespace aqua::analog
