// noise.hpp — noise sources for the analog front-end models. White noise is
// specified as a density (V/√Hz) and scaled by the simulation bandwidth;
// flicker (1/f) noise is generated with the Voss-McCartney algorithm and
// scaled to a corner frequency, the way amplifier datasheets specify it.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <span>

#include "state/rng_io.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::analog {

/// Gaussian white noise with a flat spectral density.
class WhiteNoise {
 public:
  /// density in V/√Hz (or any unit/√Hz); the per-sample sigma at sample rate
  /// fs is density·√(fs/2).
  WhiteNoise(double density, util::Hertz sample_rate, util::Rng rng);

  double sample();
  /// Batched draw: writes out.size() consecutive samples, advancing the
  /// stream exactly as out.size() sample() calls would (bit-identical values
  /// and stream position — the block-execution contract, DESIGN.md §9).
  void fill(std::span<double> out);
  /// Rewinds the draw stream to its construction state, so a reset component
  /// replays bit-identically (the library-wide reset contract, DESIGN.md §8).
  void reset();
  [[nodiscard]] double sigma() const { return sigma_; }

  /// Register-resident draw state for fused frame kernels (DESIGN.md §9):
  /// draw() is sample() on a local copy of the stream, inline in the caller's
  /// loop. commit_block() writes the advanced stream back.
  struct BlockKernel {
    util::Rng rng;
    double sigma;
    double draw() { return rng.gaussian(0.0, sigma); }
  };
  [[nodiscard]] BlockKernel begin_block() const { return {rng_, sigma_}; }
  void commit_block(const BlockKernel& k) { rng_ = k.rng; }

  /// Checkpoint support (DESIGN.md §14): the stream position is the only
  /// evolving state; sigma and the rewind anchor are construction-time.
  void save_state(state::Writer& w) const { state::save_rng(w, rng_); }
  void load_state(state::Reader& r) { state::load_rng(r, rng_); }

 private:
  double sigma_;
  util::Rng rng_;
  util::Rng initial_rng_;
};

/// Pink (1/f) noise via Voss-McCartney row updates, normalised so that the
/// density equals `density_at_corner` at `corner` Hz.
class FlickerNoise {
 public:
  FlickerNoise(double density_at_corner, util::Hertz corner,
               util::Hertz sample_rate, util::Rng rng);

  double sample();
  /// Batched draw; same contract as WhiteNoise::fill — bit-identical to
  /// out.size() consecutive sample() calls.
  void fill(std::span<double> out);
  /// Restores rows, counter and draw stream to their construction state.
  void reset();

  static constexpr int kRows = 16;
  // The BlockKernel folds /√kRows into its scale; that is only bit-identical
  // to sample() when √kRows is a power of two (exact scaling).
  static_assert(std::has_single_bit(unsigned{kRows}) &&
                    std::countr_zero(unsigned{kRows}) % 2 == 0,
                "kRows must be an even power of two so √kRows scales exactly");

  /// Register-resident draw state for fused frame kernels (DESIGN.md §9).
  /// Carries the suffix-partial cache of the Voss-McCartney chain: each draw
  /// replaces exactly one row, so only the chain tail below the replaced row
  /// is re-added — on average ~2 additions instead of kRows. Every addition
  /// performed uses the same operands in the same order as sample(), so
  /// draws are bit-identical; the first draw of a block pays the full chain.
  struct BlockKernel {
    util::Rng rng;
    std::array<double, kRows> rows;
    std::array<double, kRows + 1> partial;  // partial[j] = Σ rows[kRows-1..j]
    unsigned counter;
    double norm;  // scale/√kRows, folded: one multiply replaces sample()'s
                  // mul+div. √16 = 4, and scaling by a power of two is exact
                  // and commutes with rounding, so scale·Σ/4 and Σ·(scale/4)
                  // round to the same bits (normal range) — still within the
                  // bit-identity contract.
    bool primed;
    /// draw() with the row's Gaussian supplied by the caller instead of drawn
    /// from the kernel's own stream. The cross-sensor SIMD layer uses this to
    /// feed lane-parallel Gaussian draws through the (inherently sequential)
    /// Voss–McCartney chain; draw() is exactly draw_with(rng.gaussian()) —
    /// the row draw is the kernel's only stream use, so hoisting it to the
    /// call site changes no value and no stream position.
    double draw_with(double row_gaussian) {
      ++counter;
      const int row = std::countr_zero(counter) % kRows;
      rows[static_cast<std::size_t>(row)] = row_gaussian;
      const int top = primed ? row : kRows - 1;
      for (int j = top; j >= 0; --j)
        partial[static_cast<std::size_t>(j)] =
            partial[static_cast<std::size_t>(j) + 1] +
            rows[static_cast<std::size_t>(j)];
      primed = true;
      return partial[0] * norm;
    }
    double draw() { return draw_with(rng.gaussian()); }
  };
  [[nodiscard]] BlockKernel begin_block() const {
    BlockKernel k{rng_, rows_, {}, counter_,
                  scale_ / std::sqrt(static_cast<double>(kRows)), false};
    k.partial[kRows] = 0.0;
    return k;
  }
  void commit_block(const BlockKernel& k) {
    rng_ = k.rng;
    rows_ = k.rows;
    counter_ = k.counter;
  }

  /// Checkpoint support: rows, row counter and stream position evolve; the
  /// rewind anchors are construction-time.
  void save_state(state::Writer& w) const {
    for (const double row : rows_) w.f64(row);
    w.u32(counter_);
    state::save_rng(w, rng_);
  }
  void load_state(state::Reader& r) {
    for (double& row : rows_) row = r.f64();
    counter_ = r.u32();
    state::load_rng(r, rng_);
  }

 private:
  std::array<double, kRows> rows_{};
  std::array<double, kRows> initial_rows_{};
  unsigned counter_ = 0;
  double scale_;
  util::Rng rng_;
  util::Rng initial_rng_;
};

/// Johnson–Nyquist thermal noise density of a resistor: √(4·kB·T·R) in V/√Hz.
[[nodiscard]] double thermal_noise_density(util::Ohms resistance, util::Kelvin t);

}  // namespace aqua::analog
