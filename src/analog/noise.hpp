// noise.hpp — noise sources for the analog front-end models. White noise is
// specified as a density (V/√Hz) and scaled by the simulation bandwidth;
// flicker (1/f) noise is generated with the Voss-McCartney algorithm and
// scaled to a corner frequency, the way amplifier datasheets specify it.
#pragma once

#include <array>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::analog {

/// Gaussian white noise with a flat spectral density.
class WhiteNoise {
 public:
  /// density in V/√Hz (or any unit/√Hz); the per-sample sigma at sample rate
  /// fs is density·√(fs/2).
  WhiteNoise(double density, util::Hertz sample_rate, util::Rng rng);

  double sample();
  /// Rewinds the draw stream to its construction state, so a reset component
  /// replays bit-identically (the library-wide reset contract, DESIGN.md §8).
  void reset();
  [[nodiscard]] double sigma() const { return sigma_; }

 private:
  double sigma_;
  util::Rng rng_;
  util::Rng initial_rng_;
};

/// Pink (1/f) noise via Voss-McCartney row updates, normalised so that the
/// density equals `density_at_corner` at `corner` Hz.
class FlickerNoise {
 public:
  FlickerNoise(double density_at_corner, util::Hertz corner,
               util::Hertz sample_rate, util::Rng rng);

  double sample();
  /// Restores rows, counter and draw stream to their construction state.
  void reset();

 private:
  static constexpr int kRows = 16;
  std::array<double, kRows> rows_{};
  std::array<double, kRows> initial_rows_{};
  unsigned counter_ = 0;
  double scale_;
  util::Rng rng_;
  util::Rng initial_rng_;
};

/// Johnson–Nyquist thermal noise density of a resistor: √(4·kB·T·R) in V/√Hz.
[[nodiscard]] double thermal_noise_density(util::Ohms resistance, util::Kelvin t);

}  // namespace aqua::analog
