// dac.hpp — thermometer-coded DAC model. The ISIF "sensor driving stage ... is
// provided by a set of configurable 12 bit and 10 bit thermometer DACs"
// (paper §3); the CTA loop actuates the bridge supply through one of them.
// Thermometer coding makes the transfer inherently monotonic; element
// mismatch appears as INL, modelled as a seeded random walk over the unit
// elements. A first-order settling lag models the output buffer.
#pragma once

#include <vector>

#include "sim/integrator.hpp"
#include "state/serial.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace aqua::analog {

struct ThermometerDacSpec {
  int bits = 12;                         ///< 12 or 10 on ISIF
  util::Volts full_scale = util::volts(8.0);
  double element_mismatch_sigma = 2e-4;  ///< relative unit-element spread
  util::Seconds settling_tau = util::Seconds{2e-6};
};

class ThermometerDac {
 public:
  ThermometerDac(const ThermometerDacSpec& spec, util::Rng rng);

  /// Latches a new input code (clamped to [0, 2^bits − 1]).
  void write_code(int code);

  /// Convenience: latches the code closest to the requested voltage.
  void write_voltage(util::Volts v);

  /// Advances the output buffer by dt and returns the settled output voltage.
  util::Volts step(util::Seconds dt);

  /// Returns to the post-construction state: code 0, buffer discharged. The
  /// element-mismatch draw is a part property and survives reset.
  void reset();

  [[nodiscard]] int code() const { return code_; }
  [[nodiscard]] int max_code() const;
  [[nodiscard]] util::Volts ideal_output(int code) const;
  /// Static (settled) output for the current code including mismatch.
  [[nodiscard]] util::Volts static_output() const;
  /// Integral nonlinearity at a code, in LSB.
  [[nodiscard]] double inl_lsb(int code) const;

  /// Checkpoint support: latched code and buffer voltage. The element
  /// mismatch is a part draw, reproduced by reconstruction.
  void save_state(state::Writer& w) const {
    w.i32(code_);
    w.f64(buffer_.value());
  }
  void load_state(state::Reader& r) {
    code_ = r.i32();
    buffer_.reset(r.f64());
  }

 private:
  ThermometerDacSpec spec_;
  std::vector<double> element_weights_;  // unit element values, nominal 1.0
  std::vector<double> cumulative_;       // prefix sums of weights
  double total_weight_;
  int code_ = 0;
  sim::FirstOrderLag buffer_;
};

}  // namespace aqua::analog
